(* Benchmark harness: regenerates the paper's evaluation artifacts.

   Experiments (DESIGN.md Section 3):
     e1  Figure 1  strategy lattice for the motivating query
     e3  Figures 6/7  SegmentApply plans and timings for Q17
     e4  Figure 8 analog  per-configuration elapsed-time table
     e5  Figure 9 left  Q2 across configurations and scale factors
     e6  Figure 9 right  Q17 across configurations and scale factors
     e7  syntax independence (Section 1.2)
     e8  ablations: outerjoin simplification, eager aggregation,
         GroupBy reordering
   (e2, the Figures 2/3/5 tree shapes, is asserted structurally in
   test/test_normalize.ml and printed by examples/decorrelation_walkthrough.)

   Usage:
     bench/main.exe            -- run everything, paper-style tables
     bench/main.exe e5 e6      -- selected experiments
     bench/main.exe --bechamel -- statistically robust timings (Bechamel)
     bench/main.exe --smoke    -- tiny-scale CI sweep (row + vector), writes BENCH_7.json
     bench/main.exe --properties -- property-rewrite operator census (before/after
                                  the symbolic property engine), writes BENCH_9.json
     bench/main.exe --concurrent -- service scaling at 1/2/4/8 domains (clamped
                                  to the host's cores), writes BENCH_6.json
     bench/main.exe --durability -- WAL/snapshot write, recovery and replay
                                  timings, writes BENCH_8.json
     bench/main.exe --cache      -- caching tier: warm plan-phase speedup and
                                  the query_many batch CSE win, writes BENCH_10.json
*)

let fmt = Printf.printf

(* --- infrastructure -------------------------------------------------- *)

let db_cache : (float, Storage.Database.t) Hashtbl.t = Hashtbl.create 4

let database sf =
  match Hashtbl.find_opt db_cache sf with
  | Some db -> db
  | None ->
      let db = Datagen.Tpch_gen.database ~sf () in
      Hashtbl.replace db_cache sf db;
      db

type run = {
  label : string;
  elapsed : float;
  rows : int;
  applies : int;
  cost : float;
  result : string list;  (* sorted row renderings, for equality checks *)
}

let run_config label ?(config = Optimizer.Config.full) ?must ?(repeat = 1) db sql : run =
  let eng = Engine.create db in
  let p = Engine.prepare ~config ?must eng sql in
  let e = Engine.execute eng p in
  (* take the fastest of [repeat] executions (warm caches, less noise) *)
  let e =
    let best = ref e in
    for _ = 2 to repeat do
      let e' = Engine.execute eng p in
      if e'.elapsed_s < !best.elapsed_s then best := e'
    done;
    !best
  in
  let rendered =
    List.sort compare
      (List.map
         (fun r ->
           String.concat "|" (Array.to_list (Array.map Relalg.Value.to_string r)))
         e.result.rows)
  in
  { label;
    elapsed = e.elapsed_s;
    rows = List.length e.result.rows;
    applies = e.apply_invocations;
    cost = p.plan_cost;
    result = rendered;
  }

let check_consistent (runs : run list) =
  match runs with
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun r ->
          if r.result <> first.result then begin
            Printf.eprintf "INCONSISTENT RESULTS between %s and %s\n%!" first.label r.label;
            exit 2
          end)
        rest

let print_table header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map String.length header)
      rows
  in
  let line cells =
    fmt "| %s |\n"
      (String.concat " | " (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths cells))
  in
  line header;
  fmt "|%s|\n" (String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter line rows

let seconds f = Printf.sprintf "%.3f" f

let geomean = function
  | [] -> 0.
  | xs ->
      exp (List.fold_left (fun a x -> a +. log (Float.max 1e-6 x)) 0. xs
           /. float_of_int (List.length xs))

(* configurations = the "query processor technology levels" of DESIGN.md *)
let configs =
  [ ("correlated", Optimizer.Config.correlated_only);
    ("decorrelated", Optimizer.Config.decorrelated_only);
    ("full", Optimizer.Config.full)
  ]

(* --- E1: Figure 1, the strategy lattice ------------------------------ *)

let e1 () =
  fmt "\n=== E1 (Figure 1): strategy lattice for the motivating query ===\n";
  fmt "Each strategy is forced via a SQL formulation + optimizer level; SF=0.02.\n\n";
  let db = database 0.02 in
  let no_oj = { Optimizer.Config.decorrelated_only with simplify_oj = false } in
  let strategies =
    [ ("correlated execution", Workloads.q1_subquery, Optimizer.Config.correlated_only);
      ("outerjoin then aggregate (Dayal)", Workloads.q1_subquery, no_oj);
      ("simplified: join then aggregate", Workloads.q1_subquery,
       Optimizer.Config.decorrelated_only);
      ("aggregate then join (Kim)", Workloads.q1_derived, Optimizer.Config.decorrelated_only);
      ("cost-based choice (full)", Workloads.q1_subquery, Optimizer.Config.full)
    ]
  in
  let runs =
    List.map (fun (label, sql, config) -> run_config label ~config db sql) strategies
  in
  check_consistent runs;
  print_table
    [ "strategy"; "elapsed (s)"; "rows"; "apply invocations" ]
    (List.map (fun r -> [ r.label; seconds r.elapsed; string_of_int r.rows; string_of_int r.applies ]) runs);
  fmt "\nAll strategies returned identical results (%d rows).\n" (List.hd runs).rows

(* --- E3: Figures 6/7, SegmentApply on Q17 ----------------------------- *)

let e3 () =
  fmt "\n=== E3 (Figures 6/7): segmented execution of Q17 ===\n";
  let db = database 0.02 in
  let eng = Engine.create db in
  let has_sa_op o =
    Relalg.Op.exists_op
      (function Relalg.Algebra.SegmentApply _ -> true | _ -> false)
      o
  in
  let sa_only =
    { Optimizer.Config.full with correlated_exec = false; local_agg = false }
  in
  let p = Engine.prepare ~config:sa_only ~must:has_sa_op eng Workloads.q17_all_parts in
  fmt "SegmentApply present in chosen plan: %b\n" (has_sa_op p.plan);
  fmt "\nChosen plan (compare with the paper's Figure 7):\n%s\n" (Relalg.Pp.to_string p.plan);
  let runs =
    [ run_config "correlated" ~config:Optimizer.Config.correlated_only db Workloads.q17_all_parts;
      run_config "decorrelated (flattened)" ~config:Optimizer.Config.decorrelated_only db
        Workloads.q17_all_parts;
      run_config "segmented (SegmentApply)" ~config:sa_only ~must:has_sa_op db
        Workloads.q17_all_parts;
      run_config "full (cost-based)" db Workloads.q17_all_parts
    ]
  in
  check_consistent runs;
  print_table
    [ "strategy"; "elapsed (s)"; "speedup vs correlated" ]
    (let base = (List.hd runs).elapsed in
     List.map
       (fun r ->
         [ r.label; seconds r.elapsed;
           Printf.sprintf "%.1fx" (base /. Float.max 1e-6 r.elapsed) ])
       runs)

(* --- E4: Figure 8 analog ---------------------------------------------- *)

let e4 () =
  fmt "\n=== E4 (Figure 8 analog): per-configuration elapsed times, SF=0.02 ===\n";
  fmt "The paper's table compares DBMS products; we compare optimizer\n";
  fmt "technology levels of this engine on identical hardware.\n\n";
  let db = database 0.02 in
  let rows =
    List.map
      (fun (qname, sql) ->
        let per_config =
          List.map (fun (cname, config) -> (cname, run_config cname ~config db sql)) configs
        in
        check_consistent (List.map snd per_config);
        (qname, per_config))
      Workloads.all_named
  in
  print_table
    ([ "query" ] @ List.map fst configs)
    (List.map
       (fun (qname, per_config) ->
         qname :: List.map (fun (_, r) -> seconds r.elapsed) per_config)
       rows);
  fmt "\n";
  print_table
    ([ "metric" ] @ List.map fst configs)
    [ "geometric mean (s)"
      :: List.mapi
           (fun i _ ->
             Printf.sprintf "%.4f"
               (geomean (List.map (fun (_, pc) -> (snd (List.nth pc i)).elapsed) rows)))
           configs
    ]

(* --- E5/E6: Figure 9 -------------------------------------------------- *)

let sweep name sql sfs () =
  fmt "\n=== %s across configurations and scale factors ===\n" name;
  fmt "(the paper's x-axis is processor count on vendor hardware; ours is\n";
  fmt " the optimizer technology level, swept over data scale)\n\n";
  let rows =
    List.map
      (fun sf ->
        let db = database sf in
        let per_config =
          List.map (fun (cname, config) -> run_config cname ~config db sql) configs
        in
        check_consistent per_config;
        (sf, per_config))
      sfs
  in
  print_table
    ([ "SF"; "rows" ] @ List.map fst configs @ [ "full speedup" ])
    (List.map
       (fun (sf, per_config) ->
         let elapsed = List.map (fun r -> r.elapsed) per_config in
         let corr = List.nth elapsed 0 and full = List.nth elapsed 2 in
         (Printf.sprintf "%.3f" sf
          :: string_of_int (List.hd per_config).rows
          :: List.map seconds elapsed)
         @ [ Printf.sprintf "%.0fx" (corr /. Float.max 1e-6 full) ])
       rows)

let e5 = sweep "E5 (Figure 9, left): TPC-H Q2" Workloads.q2 [ 0.02; 0.05; 0.1 ]
let e6 = sweep "E6 (Figure 9, right): TPC-H Q17" Workloads.q17_all_parts [ 0.01; 0.02; 0.05 ]

(* --- E7: syntax independence ------------------------------------------ *)

let e7 () =
  fmt "\n=== E7: syntax independence (Section 1.2) ===\n";
  let db = database 0.02 in
  let eng = Engine.create db in
  let formulations =
    [ ("correlated subquery", Workloads.q1_subquery);
      ("outerjoin + aggregate", Workloads.q1_outerjoin_agg);
      ("join + aggregate", Workloads.q1_join_agg);
      ("derived table (Kim)", Workloads.q1_derived)
    ]
  in
  let prepared = List.map (fun (n, sql) -> (n, Engine.prepare eng sql)) formulations in
  let runs = List.map (fun (n, sql) -> run_config n db sql) formulations in
  check_consistent runs;
  print_table
    [ "formulation"; "elapsed (s)"; "plan cost"; "rows" ]
    (List.map2
       (fun (n, _) r ->
         [ n; seconds r.elapsed; Printf.sprintf "%.0f" r.cost;
           string_of_int r.rows ])
       prepared runs);
  let canons =
    List.map (fun (_, p) -> Optimizer.Search.canonical p.Engine.plan) prepared
  in
  let distinct = List.length (List.sort_uniq compare canons) in
  fmt "\ndistinct chosen plans among 4 formulations: %d (1-2 expected: the\n" distinct;
  fmt "derived-table form may pick an equivalent-cost lattice member)\n"

(* --- E8: ablations ----------------------------------------------------- *)

let e8 () =
  fmt "\n=== E8: ablations of individual primitives ===\n";
  let db = database 0.02 in
  (* (a) outerjoin simplification *)
  let no_oj = { Optimizer.Config.decorrelated_only with simplify_oj = false } in
  let a_on =
    run_config "oj-simplify on" ~config:Optimizer.Config.decorrelated_only ~repeat:7 db
      Workloads.q1_subquery
  in
  let a_off = run_config "oj-simplify off" ~config:no_oj ~repeat:7 db Workloads.q1_subquery in
  check_consistent [ a_on; a_off ];
  (* (b) eager local aggregation *)
  let no_local =
    { Optimizer.Config.full with local_agg = false; segment_apply = false;
      correlated_exec = false }
  in
  let with_local = { no_local with local_agg = true } in
  let b_on = run_config "eager agg on" ~config:with_local ~repeat:7 db Workloads.revenue_per_nation in
  let b_off = run_config "eager agg off" ~config:no_local ~repeat:7 db Workloads.revenue_per_nation in
  check_consistent [ b_on; b_off ];
  (* (c) GroupBy reordering *)
  let no_reorder =
    { Optimizer.Config.full with groupby_reorder = false; local_agg = false;
      segment_apply = false }
  in
  let c_on = run_config "groupby reorder on" ~repeat:7 db Workloads.q2 in
  let c_off = run_config "groupby reorder off" ~config:no_reorder ~repeat:7 db Workloads.q2 in
  check_consistent [ c_on; c_off ];
  print_table
    [ "ablation"; "variant"; "elapsed (s)" ]
    [ [ "outerjoin simplification"; "on"; seconds a_on.elapsed ];
      [ ""; "off"; seconds a_off.elapsed ];
      [ "eager local aggregation"; "on"; seconds b_on.elapsed ];
      [ ""; "off"; seconds b_off.elapsed ];
      [ "GroupBy reordering"; "on"; seconds c_on.elapsed ];
      [ ""; "off"; seconds c_off.elapsed ]
    ]

(* --- smoke mode: BENCH_7.json ------------------------------------------ *)

(* CI artifact: run every named workload under every configuration at a
   tiny scale factor — in both execution modes (row interpreter and the
   vectorized engine) — and dump per-run counters as JSON, plus a
   metrics-enabled row-mode re-run of the full configuration to measure
   the observability layer's overhead.  The two modes' result bags are
   cross-checked on every run; a disagreement aborts the bench.

   Two regression gates guard the vectorized engine: every cell must
   run at >= 0.95x the row engine (batched Apply killed the last
   systematic vector-mode regressions), and no plan may cross the
   row-engine bridge (bridge_crossings = 0 — every bench plan is fully
   vectorized). *)

let smoke ?(out = "BENCH_7.json") () =
  let sf = 0.01 in
  let db = database sf in
  let eng = Engine.create db in
  let repeat = 15 in
  let time_execute ?collect_metrics ?mode p =
    (* fastest of [repeat]: warm caches, less scheduler noise; the
       smoke queries run sub-millisecond at SF 0.01, so a small sample
       is dominated by scheduler jitter *)
    let best = ref (Engine.execute ?collect_metrics ?mode eng p) in
    for _ = 2 to repeat do
      let e = Engine.execute ?collect_metrics ?mode eng p in
      if e.Engine.elapsed_s < !best.Engine.elapsed_s then best := e
    done;
    !best
  in
  let bag (e : Engine.execution) =
    List.sort compare
      (List.map
         (fun r -> String.concat "|" (Array.to_list (Array.map Relalg.Value.to_string r)))
         e.Engine.result.rows)
  in
  let regressions = ref [] in
  let entries =
    List.concat_map
      (fun (qname, sql) ->
        List.concat_map
          (fun (cname, config) ->
            let p = Engine.prepare ~config eng sql in
            let e_row = time_execute ~mode:`Row p in
            let e_vec = time_execute ~mode:`Vector p in
            if bag e_row <> bag e_vec then begin
              Printf.eprintf "ROW/VECTOR DISAGREEMENT on %s under %s\n%!" qname cname;
              exit 2
            end;
            if e_vec.Engine.bridge_crossings > 0 then begin
              Printf.eprintf
                "BRIDGE CROSSING on %s under %s: %d subtrees fell back to the row \
                 engine (bench plans must vectorize fully)\n%!"
                qname cname e_vec.Engine.bridge_crossings;
              exit 2
            end;
            let speedup_vs_row =
              e_row.Engine.elapsed_s /. Float.max 1e-9 e_vec.Engine.elapsed_s
            in
            if speedup_vs_row < 0.95 then
              regressions := (qname, cname, speedup_vs_row) :: !regressions;
            let entry mode (e : Engine.execution) extra =
              Printf.sprintf
                "  {\"query\":%s,\"config\":%s,\"exec_mode\":%s,\"elapsed_s\":%.6f,\
                 \"rows\":%d,\"apply_invocations\":%d,\"rows_processed\":%d,\
                 \"plan_cost\":%.2f%s}"
                (Exec.Metrics.json_string qname)
                (Exec.Metrics.json_string cname)
                (Exec.Metrics.json_string mode)
                e.Engine.elapsed_s (List.length e.Engine.result.rows)
                e.Engine.apply_invocations e.Engine.rows_processed p.Engine.plan_cost
                extra
            in
            let metrics_elapsed =
              (* overhead probe only on the plan we actually ship *)
              if cname = "full" then
                Printf.sprintf ",\"elapsed_s_with_metrics\":%.6f"
                  (time_execute ~collect_metrics:true p).Engine.elapsed_s
              else ""
            in
            let vector_extra =
              Printf.sprintf
                ",\"speedup_vs_row\":%.2f,\"bridge_crossings\":%d,\"apply_batches\":%d,\
                 \"apply_bindings\":%d,\"apply_dedup_hits\":%d"
                speedup_vs_row e_vec.Engine.bridge_crossings e_vec.Engine.apply_batches
                e_vec.Engine.apply_bindings e_vec.Engine.apply_dedup_hits
            in
            [ entry "row" e_row metrics_elapsed; entry "vector" e_vec vector_extra ])
          configs)
      Workloads.all_named
  in
  let json =
    Printf.sprintf "{\"sf\":%.3f,\"repeat\":%d,\"runs\":[\n%s\n]}\n" sf repeat
      (String.concat ",\n" entries)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  fmt "wrote %s (%d runs: %d workloads x %d configs x 2 exec modes, SF %.3f)\n" out
    (List.length entries) (List.length Workloads.all_named) (List.length configs) sf;
  if !regressions <> [] then begin
    List.iter
      (fun (q, c, s) ->
        Printf.eprintf
          "VECTOR REGRESSION: %s/%s ran at %.2fx the row engine (>= 0.95x required)\n%!"
          q c s)
      (List.rev !regressions);
    exit 2
  end

(* --- properties mode: BENCH_9.json ------------------------------------- *)

(* CI artifact for the symbolic property engine: compile every workload
   (the standard named set plus the property-targeted ones) with the
   property-proven rewrites off and on, and record the operator census
   of both chosen plans — GroupBys, Max1rows, outer joins, total nodes
   — together with costs and row counts.  Both plans execute and the
   bags are cross-checked (a disagreement aborts).  The gate: at least
   one workload's final plan must demonstrably lose a GroupBy, a
   Max1row or an outer join. *)

let properties ?(out = "BENCH_9.json") () =
  let sf = 0.01 in
  let db = database sf in
  let eng = Engine.create db in
  let count_ops o =
    let open Relalg.Algebra in
    let groupbys = ref 0
    and max1rows = ref 0
    and outerjoins = ref 0
    and nodes = ref 0 in
    let rec walk op =
      incr nodes;
      (match op with
      | GroupBy _ -> incr groupbys
      | Max1row _ -> incr max1rows
      | Join { kind = LeftOuter; _ } | Apply { kind = LeftOuter; _ } ->
          incr outerjoins
      | _ -> ());
      List.iter walk (Relalg.Op.children op)
    in
    walk o;
    (!groupbys, !max1rows, !outerjoins, !nodes)
  in
  let bag (e : Engine.execution) =
    List.sort compare
      (List.map
         (fun r -> String.concat "|" (Array.to_list (Array.map Relalg.Value.to_string r)))
         e.Engine.result.rows)
  in
  let before_cfg = { Optimizer.Config.full with property_rewrites = false } in
  let after_cfg = Optimizer.Config.full in
  let wins = ref 0 in
  let entries =
    List.map
      (fun (qname, sql) ->
        let p_before = Engine.prepare ~config:before_cfg eng sql in
        let p_after = Engine.prepare ~config:after_cfg eng sql in
        let e_before = Engine.execute eng p_before in
        let e_after = Engine.execute eng p_after in
        if bag e_before <> bag e_after then begin
          Printf.eprintf "PROPERTY-REWRITE DISAGREEMENT on %s\n%!" qname;
          exit 2
        end;
        let gb0, m0, oj0, n0 = count_ops p_before.Engine.plan in
        let gb1, m1, oj1, n1 = count_ops p_after.Engine.plan in
        let lost_operator = gb1 < gb0 || m1 < m0 || oj1 < oj0 in
        if lost_operator then incr wins;
        fmt
          "  %-14s groupbys %d->%d  max1rows %d->%d  outerjoins %d->%d  nodes \
           %d->%d  cost %.0f->%.0f%s\n%!"
          qname gb0 gb1 m0 m1 oj0 oj1 n0 n1 p_before.Engine.plan_cost
          p_after.Engine.plan_cost
          (if lost_operator then "  [operator eliminated]" else "");
        Printf.sprintf
          "  {\"query\":%s,\"rows\":%d,\"operator_eliminated\":%b,\
           \"before\":{\"groupbys\":%d,\"max1rows\":%d,\"outerjoins\":%d,\
           \"nodes\":%d,\"cost\":%.2f},\
           \"after\":{\"groupbys\":%d,\"max1rows\":%d,\"outerjoins\":%d,\
           \"nodes\":%d,\"cost\":%.2f}}"
          (Exec.Metrics.json_string qname)
          (List.length e_after.Engine.result.rows)
          lost_operator gb0 m0 oj0 n0 p_before.Engine.plan_cost gb1 m1 oj1 n1
          p_after.Engine.plan_cost)
      Workloads.property_named
  in
  let json =
    Printf.sprintf
      "{\"sf\":%.3f,\"workloads\":%d,\"operator_eliminations\":%d,\"runs\":[\n%s\n]}\n"
      sf
      (List.length Workloads.property_named)
      !wins
      (String.concat ",\n" entries)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  fmt "wrote %s (%d workloads, %d with an operator eliminated; bags cross-checked)\n"
    out
    (List.length Workloads.property_named)
    !wins;
  if !wins = 0 then begin
    Printf.eprintf
      "PROPERTY BENCH GATE: no workload lost a GroupBy, Max1row or outer join \
       under the property rewrites\n%!";
    exit 2
  end

(* --- concurrent mode: BENCH_6.json ------------------------------------- *)

(* CI artifact for the service layer: drive the concurrent query
   service at 1/2/4/8 worker domains over the Apply-free workloads
   (detected from the chosen plans: zero Apply invocations under the
   full configuration) and record throughput and latency percentiles
   per domain count.  Every reply is still differentially checked
   against the single-threaded row oracle — a wrong bag aborts.

   Requested domain counts are clamped to the host's cores and each
   distinct clamped count runs once: oversubscribed counts measure
   scheduler interleaving, not scaling — minutes of bench time for a
   misleadingly sub-1x row.  Clamped or skipped rows carry
   ["oversubscribed": true] in the artifact so downstream dashboards
   don't read them as regressions.

   The scaling assertion (4-domain throughput >= 2x single-domain) only
   fires when the host actually has >= 4 cores; on smaller hosts the
   domain counts interleave on one core and the artifact records the
   (physically expected) flat profile together with the core count. *)

let concurrent ?(out = "BENCH_6.json") () =
  let sf = 0.01 in
  let db = database sf in
  let eng = Engine.create db in
  let bag rows =
    List.sort compare
      (List.map
         (fun r -> String.concat "|" (Array.to_list (Array.map Relalg.Value.to_string r)))
         rows)
  in
  (* Apply-free = the full configuration's chosen plan executes zero
     Apply invocations (fully decorrelated); these are the workloads
     whose parallel speedup the paper's techniques unlock *)
  let apply_free =
    List.filter_map
      (fun (name, sql) ->
        let p = Engine.prepare eng sql in
        let e = Engine.execute ~mode:`Row eng p in
        if e.Engine.apply_invocations = 0 then
          Some (name, sql, bag e.Engine.result.rows)
        else None)
      Workloads.all_named
  in
  if apply_free = [] then begin
    Printf.eprintf "no Apply-free workloads found\n%!";
    exit 2
  end;
  let requests = 160 in
  let cores = Domain.recommended_domain_count () in
  let run_at domains =
    let config =
      { Service.default_config with domains; max_queue = requests + 8 }
    in
    let t = Service.create ~config db in
    let reqs =
      List.init requests (fun i ->
          let name, sql, oracle = List.nth apply_free (i mod List.length apply_free) in
          ( name,
            oracle,
            Service.request ~session:(Printf.sprintf "s%d" (i mod (2 * domains))) sql ))
    in
    let started = Unix.gettimeofday () in
    let replies = Service.run_many t (List.map (fun (_, _, r) -> r) reqs) in
    let elapsed = Unix.gettimeofday () -. started in
    List.iter2
      (fun (name, oracle, _) (r : Service.reply) ->
        match r.Service.outcome with
        | Ok e ->
            if bag e.Engine.result.Exec.Executor.rows <> oracle then begin
              Printf.eprintf "CONCURRENT DISAGREEMENT on %s at %d domains\n%!" name
                domains;
              exit 2
            end
        | Error err ->
            Printf.eprintf "request failed on %s at %d domains: %s\n%!" name domains
              (Service.error_to_string err);
            exit 2)
      reqs replies;
    let s = Service.stats t in
    Service.shutdown t;
    let throughput = float_of_int requests /. elapsed in
    fmt "  %d domain(s): %6.1f req/s  (%.2fs, %s)\n%!" domains throughput elapsed
      (Service.Stats.percentiles_to_string s.Service.Stats.latency);
    (domains, elapsed, throughput, s)
  in
  fmt "concurrent service bench: %d requests over %s (SF %.3f, %d cores)\n%!" requests
    (String.concat ", " (List.map (fun (n, _, _) -> n) apply_free))
    sf cores;
  let plan =
    let seen = Hashtbl.create 4 in
    List.map
      (fun want ->
        let domains = min want cores in
        if (want = 8 && cores < 2) || Hashtbl.mem seen domains then (want, None)
        else begin
          Hashtbl.add seen domains ();
          (want, Some domains)
        end)
      [ 1; 2; 4; 8 ]
  in
  let runs =
    List.map
      (fun (want, action) ->
        match action with
        | None ->
            fmt "  %d domain(s): skipped (host has %d core(s))\n%!" want cores;
            (want, None)
        | Some domains -> (want, Some (run_at domains)))
      plan
  in
  let speedup =
    let rps d =
      List.find_map
        (fun (_, r) ->
          match r with
          | Some (d', _, t, _) when d' = d -> Some t
          | _ -> None)
        runs
    in
    match (rps 1, rps 4) with
    | Some r1, Some r4 when r1 > 0. -> r4 /. r1
    | _ -> 0.
  in
  let json =
    Printf.sprintf
      "{\"sf\":%.3f,\"requests\":%d,\"cores\":%d,\"workloads\":[%s],\
       \"speedup_4_vs_1\":%.2f,\"runs\":[\n%s\n]}\n"
      sf requests cores
      (String.concat ","
         (List.map (fun (n, _, _) -> Exec.Metrics.json_string n) apply_free))
      speedup
      (String.concat ",\n"
         (List.map
            (fun (want, r) ->
              match r with
              | None ->
                  Printf.sprintf
                    "  {\"requested\":%d,\"skipped\":true,\"oversubscribed\":true}"
                    want
              | Some (domains, elapsed, throughput, s) ->
                  Printf.sprintf
                    "  {\"requested\":%d,\"domains\":%d,\"oversubscribed\":%b,\
                     \"elapsed_s\":%.3f,\"throughput_rps\":%.1f,\
                     \"latency\":%s,\"retried\":%d,\"degraded\":%d}"
                    want domains (want > domains) elapsed throughput
                    (Service.Stats.percentiles_to_json s.Service.Stats.latency)
                    s.Service.Stats.retried s.Service.Stats.degraded)
            runs))
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  fmt "wrote %s (speedup 4-vs-1: %.2fx on %d cores)\n" out speedup cores;
  if cores >= 4 && speedup < 2.0 then begin
    Printf.eprintf
      "SCALING REGRESSION: 4-domain throughput only %.2fx single-domain (>= 2x \
       required on %d cores)\n%!"
      speedup cores;
    exit 2
  end

(* --- durability mode: BENCH_8.json ------------------------------------- *)

(* Durability-layer bench: journaled table loads and per-append fsync
   throughput through the WAL, snapshot write and snapshot-based
   recovery, and cold recovery from a WAL alone (replay), at two scale
   factors.  Every recovery is gated on restoring exactly the source
   row counts — a wrong recovered state aborts the bench. *)

let durability ?(out = "BENCH_8.json") () =
  let module Durable = Storage.Durable in
  let module Table = Storage.Table in
  let module Db = Storage.Database in
  let appends = 300 in
  let now = Unix.gettimeofday in
  let rec rm_rf path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let scratch name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sq-bench-dur-%d-%s" (Unix.getpid ()) name)
  in
  let dir_bytes ~(suffix : string) (dir : string) =
    Array.fold_left
      (fun acc f ->
        if Filename.check_suffix f suffix then
          acc + (Unix.stat (Filename.concat dir f)).Unix.st_size
        else acc)
      0 (Sys.readdir dir)
  in
  let cat = Catalog.tpch () in
  let tables = List.sort compare (Catalog.table_names cat) in
  let marker i =
    [| Relalg.Value.Int (20_000_000 + i); Relalg.Value.Int 1; Relalg.Value.Str "F";
       Relalg.Value.Float 1000.; Relalg.Value.Date 9000; Relalg.Value.Str "bench"
    |]
  in
  let cell sf =
    let db = database sf in
    let rows_of t = Table.to_rows (Db.table db t) in
    let total_rows =
      List.fold_left (fun a t -> a + Table.row_count (Db.table db t)) 0 tables
    in
    (* the recovery gate: exactly the committed state, nothing else *)
    let expect_counts what (st : Durable.t) ~(extra_orders : int) =
      List.iter
        (fun t ->
          let want =
            Table.row_count (Db.table db t)
            + if t = "orders" then extra_orders else 0
          in
          let got = Table.row_count (Db.table (Durable.db st) t) in
          if got <> want then begin
            Printf.eprintf
              "DURABILITY RECOVERY MISMATCH (%s, SF %.2f): table %s has %d rows, \
               want %d\n%!"
              what sf t got want;
            exit 2
          end)
        tables
    in
    let journal dir =
      let st = Durable.open_db ~dir cat in
      let t0 = now () in
      List.iter (fun t -> Durable.load st t (rows_of t)) tables;
      let load_s = now () -. t0 in
      let t0 = now () in
      for i = 1 to appends do
        Durable.append st "orders" (marker i)
      done;
      (st, load_s, now () -. t0)
    in
    (* snapshot path: rotate, then recover from the anchor *)
    let dir = scratch (Printf.sprintf "snap-%.2f" sf) in
    let st, load_s, append_s = journal dir in
    let wal_bytes = dir_bytes ~suffix:".log" dir in
    let t0 = now () in
    ignore (Durable.rotate st);
    let snapshot_write_s = now () -. t0 in
    let snapshot_bytes =
      (Unix.stat (Storage.Snapshot.snapshot_path ~dir 1)).Unix.st_size
    in
    Durable.close st;
    let t0 = now () in
    let st2 = Durable.open_db ~dir cat in
    let snapshot_recover_s = now () -. t0 in
    expect_counts "snapshot recovery" st2 ~extra_orders:appends;
    Durable.close st2;
    rm_rf dir;
    (* replay path: the same mutations recovered from the WAL alone *)
    let dir2 = scratch (Printf.sprintf "wal-%.2f" sf) in
    let st3, _, _ = journal dir2 in
    Durable.close st3;
    let t0 = now () in
    let st4 = Durable.open_db ~dir:dir2 cat in
    let wal_replay_s = now () -. t0 in
    expect_counts "WAL replay" st4 ~extra_orders:appends;
    let replayed = (Durable.recovery_info st4).Durable.rec_entries_replayed in
    Durable.close st4;
    rm_rf dir2;
    let mutations = List.length tables + appends in
    if replayed <> mutations then begin
      Printf.eprintf "DURABILITY REPLAY MISMATCH (SF %.2f): %d entries, want %d\n%!"
        sf replayed mutations;
      exit 2
    end;
    fmt
      "SF %.2f: %6d rows  load %.3fs  %d appends %.3fs (%.0f/s)  snapshot %.3fs \
       (%d B)  snap-recover %.3fs  wal-replay %.3fs (%.0f rows/s)\n%!"
      sf total_rows load_s appends append_s
      (float_of_int appends /. Float.max 1e-9 append_s)
      snapshot_write_s snapshot_bytes snapshot_recover_s wal_replay_s
      (float_of_int (total_rows + appends) /. Float.max 1e-9 wal_replay_s);
    Printf.sprintf
      "  {\"sf\":%.2f,\"rows\":%d,\"appends\":%d,\"journal_load_s\":%.6f,\
       \"journal_rows_per_s\":%.0f,\"append_s\":%.6f,\"appends_per_s\":%.0f,\
       \"wal_bytes\":%d,\"snapshot_write_s\":%.6f,\"snapshot_bytes\":%d,\
       \"snapshot_recover_s\":%.6f,\"wal_replay_s\":%.6f,\"replay_rows_per_s\":%.0f,\
       \"entries_replayed\":%d}"
      sf total_rows appends load_s
      (float_of_int total_rows /. Float.max 1e-9 load_s)
      append_s
      (float_of_int appends /. Float.max 1e-9 append_s)
      wal_bytes snapshot_write_s snapshot_bytes snapshot_recover_s wal_replay_s
      (float_of_int (total_rows + appends) /. Float.max 1e-9 wal_replay_s)
      replayed
  in
  let cells = List.map cell [ 0.01; 0.1 ] in
  let json =
    Printf.sprintf "{\"appends\":%d,\"cells\":[\n%s\n]}\n" appends
      (String.concat ",\n" cells)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  fmt "wrote %s (%d scale factors; every recovery row-count gated)\n" out
    (List.length cells)

(* --- cache mode: BENCH_10.json ------------------------------------------ *)

(* CI artifact for the caching tier.  Two halves:

   (a) plan-phase speedup: for every named workload, the cold path
       (parse -> normalize -> cost-based search -> verify) is timed
       against the warm path (parse -> canonicalize -> template rebind,
       search and verification skipped) on a cache-enabled engine.
       Warm prepares must report a plan-cache hit and the cached plan's
       result bag must equal a fresh uncached optimization's.
       Gate: geometric-mean speedup >= 5x.

   (b) batch CSE win: the q17 family with the global-average threshold
       — three statements sharing the decorrelated aggregate over
       lineitem — executed via [Engine.query_many] (shared subplans
       materialized once) against the same prepared statements executed
       sequentially.  Plans are warm on both sides, so the ratio
       isolates the execution-phase CSE effect; each rep runs on a
       fresh engine so materialization cost is inside the measurement.
       Item bags are cross-checked against the sequential runs.
       Gates: median win >= 1.2x, >= 1 CSE selected, >= 1
       materialization. *)

let cache_bench ?(out = "BENCH_10.json") () =
  let bag rows =
    List.sort compare
      (List.map
         (fun r -> String.concat "|" (Array.to_list (Array.map Relalg.Value.to_string r)))
         rows)
  in
  (* (a) plan-phase: cold optimization vs warm template rebind *)
  let sf_plan = 0.01 in
  let db = database sf_plan in
  let eng = Engine.create db in
  Engine.enable_cache eng;
  let time_best n f =
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let plan_rows =
    List.map
      (fun (qname, sql) ->
        let cold_s =
          time_best 3 (fun () -> ignore (Engine.prepare ~use_cache:false eng sql))
        in
        ignore (Engine.prepare eng sql);
        (* prime: template inserted *)
        let warm_p = ref None in
        let warm_s = time_best 10 (fun () -> warm_p := Some (Engine.prepare eng sql)) in
        let p = Option.get !warm_p in
        if p.Engine.cache <> Some `Hit then begin
          Printf.eprintf "CACHE BENCH: warm prepare of %s was not a plan-cache hit\n%!"
            qname;
          exit 2
        end;
        let cached_bag = bag (Engine.execute eng p).Engine.result.rows in
        let fresh_bag =
          bag
            (Engine.execute eng (Engine.prepare ~use_cache:false eng sql))
              .Engine.result.rows
        in
        if cached_bag <> fresh_bag then begin
          Printf.eprintf "CACHE BENCH: cached plan of %s returned a different bag\n%!"
            qname;
          exit 2
        end;
        let speedup = cold_s /. Float.max 1e-9 warm_s in
        fmt "  %-14s cold %7.3f ms  warm %7.3f ms  speedup %6.1fx\n%!" qname
          (cold_s *. 1e3) (warm_s *. 1e3) speedup;
        (qname, cold_s, warm_s, speedup))
      Workloads.all_named
  in
  let plan_geomean = geomean (List.map (fun (_, _, _, s) -> s) plan_rows) in
  fmt "plan-phase speedup (geomean over %d workloads): %.1fx\n%!"
    (List.length plan_rows) plan_geomean;
  (* (b) batch CSE win on the q17 family (global-average threshold) *)
  let sf_batch = 0.02 in
  let db = database sf_batch in
  let shared = "(select 0.2 * avg(l2.l_quantity) from lineitem l2)" in
  let family =
    [ Printf.sprintf
        "select sum(l_extendedprice) / 7.0 as avg_yearly from lineitem, part \
         where p_partkey = l_partkey and p_brand = 'Brand#23' and l_quantity < %s"
        shared;
      Printf.sprintf "select count(*) as small_lines from lineitem where l_quantity < %s"
        shared;
      Printf.sprintf
        "select l_returnflag, sum(l_extendedprice) as rev from lineitem \
         where l_quantity < %s group by l_returnflag"
        shared
    ]
  in
  let eng_seq = Engine.create db in
  let seq_preps = List.map (Engine.prepare ~use_cache:false eng_seq) family in
  let seq_bags =
    List.map (fun p -> bag (Engine.execute eng_seq p).Engine.result.rows) seq_preps
  in
  let reps = 7 in
  let cells =
    List.init reps (fun rep ->
        let eng = Engine.create db in
        Engine.enable_cache eng;
        List.iter (fun sql -> ignore (Engine.prepare eng sql)) family;
        let t0 = Unix.gettimeofday () in
        let b = Engine.query_many eng family in
        let batch_s = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        List.iter (fun p -> ignore (Engine.execute eng_seq p)) seq_preps;
        let seq_s = Unix.gettimeofday () -. t1 in
        List.iteri
          (fun i (it : Engine.batch_item) ->
            if bag it.Engine.item_execution.Engine.result.rows <> List.nth seq_bags i
            then begin
              Printf.eprintf "CACHE BENCH: batch item %d returned a different bag\n%!" i;
              exit 2
            end)
          b.Engine.items;
        let s = Option.get (Engine.cache_stats eng) in
        let win = seq_s /. Float.max 1e-9 batch_s in
        fmt
          "  rep %d: batch %.3fs  sequential %.3fs  win %.2fx  (%d CSEs, %d \
           substitutions, %d materializations)\n%!"
          (rep + 1) batch_s seq_s win b.Engine.cse_count b.Engine.cse_substitutions
          s.Engine.cse_materializations;
        (batch_s, seq_s, win, b.Engine.cse_count, b.Engine.cse_substitutions,
         s.Engine.cse_materializations))
  in
  let wins = List.map (fun (_, _, w, _, _, _) -> w) cells in
  let win_median = List.nth (List.sort compare wins) (reps / 2) in
  let _, _, _, cse_count, substitutions, materializations = List.hd cells in
  fmt "batch CSE win (median of %d reps): %.2fx\n%!" reps win_median;
  let json =
    Printf.sprintf
      "{\"sf_plan\":%.3f,\"sf_batch\":%.3f,\"plan_speedup_geomean\":%.2f,\
       \"plan_cache\":[\n%s\n],\
       \"batch\":{\"family_size\":%d,\"reps\":%d,\"win_median\":%.3f,\
       \"cse_count\":%d,\"substitutions\":%d,\"materializations\":%d,\
       \"cells\":[\n%s\n]}}\n"
      sf_plan sf_batch plan_geomean
      (String.concat ",\n"
         (List.map
            (fun (q, c, w, s) ->
              Printf.sprintf
                "  {\"query\":%s,\"cold_s\":%.6f,\"warm_s\":%.6f,\"speedup\":%.2f}"
                (Exec.Metrics.json_string q) c w s)
            plan_rows))
      (List.length family) reps win_median cse_count substitutions materializations
      (String.concat ",\n"
         (List.map
            (fun (b, s, w, _, _, _) ->
              Printf.sprintf "  {\"batch_s\":%.6f,\"seq_s\":%.6f,\"win\":%.2f}" b s w)
            cells))
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  fmt "wrote %s (plan-phase geomean %.1fx, batch win median %.2fx)\n" out plan_geomean
    win_median;
  if plan_geomean < 5.0 then begin
    Printf.eprintf
      "CACHE BENCH GATE: plan-phase speedup %.1fx below the 5x floor\n%!" plan_geomean;
    exit 2
  end;
  if cse_count < 1 || materializations < 1 then begin
    Printf.eprintf "CACHE BENCH GATE: the batch selected no CSE (count %d, mats %d)\n%!"
      cse_count materializations;
    exit 2
  end;
  if win_median < 1.2 then begin
    Printf.eprintf
      "CACHE BENCH GATE: batch CSE win %.2fx below the 1.2x floor\n%!" win_median;
    exit 2
  end

(* --- Bechamel mode ----------------------------------------------------- *)

let run_bechamel () =
  let open Bechamel in
  let db = database 0.01 in
  let eng = Engine.create db in
  let bench name config sql =
    let p = Engine.prepare ~config eng sql in
    Test.make ~name (Staged.stage (fun () -> ignore (Engine.execute eng p)))
  in
  let tests =
    [ bench "e1-lattice/correlated" Optimizer.Config.correlated_only Workloads.q1_subquery;
      bench "e1-lattice/full" Optimizer.Config.full Workloads.q1_subquery;
      bench "e3-q17seg/full" Optimizer.Config.full Workloads.q17_all_parts;
      bench "e4-exists/full" Optimizer.Config.full Workloads.exists_workload;
      bench "e5-q2/correlated" Optimizer.Config.correlated_only Workloads.q2;
      bench "e5-q2/full" Optimizer.Config.full Workloads.q2;
      bench "e6-q17/correlated" Optimizer.Config.correlated_only Workloads.q17;
      bench "e6-q17/full" Optimizer.Config.full Workloads.q17;
      bench "e7-ojform/full" Optimizer.Config.full Workloads.q1_outerjoin_agg;
      bench "e8-revenue/full" Optimizer.Config.full Workloads.revenue_per_nation
    ]
  in
  let test = Test.make_grouped ~name:"subquery-opt" tests in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  fmt "\n=== Bechamel timings (ns per run, OLS estimate) ===\n";
  let entries = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with Some [ e ] -> e | _ -> Float.nan
      in
      entries := (name, est) :: !entries)
    results;
  List.iter
    (fun (name, est) -> fmt "%-28s %14.0f ns/run\n" name est)
    (List.sort compare !entries)

(* --- driver ------------------------------------------------------------- *)

let all_experiments =
  [ ("e1", e1); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7); ("e8", e8) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--smoke" args then smoke ()
  else if List.mem "--properties" args then properties ()
  else if List.mem "--concurrent" args then concurrent ()
  else if List.mem "--durability" args then durability ()
  else if List.mem "--cache" args then cache_bench ()
  else if List.mem "--bechamel" args then run_bechamel ()
  else begin
    let selected =
      match List.filter (fun a -> List.mem_assoc a all_experiments) args with
      | [] -> all_experiments
      | names -> List.map (fun n -> (n, List.assoc n all_experiments)) names
    in
    fmt "Orthogonal Optimization of Subqueries and Aggregation - benchmark harness\n";
    fmt "(reproducing the evaluation of Galindo-Legaria & Joshi, SIGMOD 2001)\n";
    List.iter (fun (_, f) -> f ()) selected;
    fmt "\nAll experiment result sets were cross-checked between configurations.\n"
  end
