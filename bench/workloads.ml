(* Benchmark workloads: the paper's queries on the TPC-H schema.

   Thresholds are scaled to the generator's laptop-scale data (the
   shapes of the distributions match dbgen; absolute money amounts
   differ by the scale factor). *)

(* the motivating query of Section 1.1 ("customers who have ordered more
   than $X"), in its four equivalent formulations (Figure 1's lattice) *)
let lattice_threshold = 500_000

let q1_subquery =
  Printf.sprintf
    "select c_custkey from customer where %d < (select sum(o_totalprice) from orders where o_custkey = c_custkey)"
    lattice_threshold

let q1_outerjoin_agg =
  Printf.sprintf
    "select c_custkey from customer left outer join orders on o_custkey = c_custkey \
     group by c_custkey having %d < sum(o_totalprice)"
    lattice_threshold

let q1_join_agg =
  Printf.sprintf
    "select c_custkey from customer join orders on o_custkey = c_custkey \
     group by c_custkey having %d < sum(o_totalprice)"
    lattice_threshold

let q1_derived =
  Printf.sprintf
    "select c_custkey from customer, (select o_custkey, sum(o_totalprice) as total \
     from orders group by o_custkey) a where o_custkey = c_custkey and %d < total"
    lattice_threshold

(* TPC-H Query 2 (the paper's Section 5), full form *)
let q2 =
  "select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment \
   from part, supplier, partsupp, nation, region \
   where p_partkey = ps_partkey and s_suppkey = ps_suppkey \
   and p_size = 15 and p_type like '%BRASS' \
   and s_nationkey = n_nationkey and n_regionkey = r_regionkey and r_name = 'EUROPE' \
   and ps_supplycost = (select min(ps_supplycost) from partsupp, supplier, nation, region \
       where p_partkey = ps_partkey and s_suppkey = ps_suppkey \
       and s_nationkey = n_nationkey and n_regionkey = r_regionkey and r_name = 'EUROPE') \
   order by s_acctbal desc, n_name, s_name, p_partkey limit 100"

(* TPC-H Query 17 (Sections 3.4 and 5) *)
let q17 =
  "select sum(l_extendedprice) / 7.0 as avg_yearly \
   from lineitem, part \
   where p_partkey = l_partkey and p_brand = 'Brand#23' and p_container = 'MED BOX' \
   and l_quantity < (select 0.2 * avg(l_quantity) from lineitem l2 \
                     where l2.l_partkey = part.p_partkey)"

(* a relaxed Q17 touching every part, to stress segmented execution *)
let q17_all_parts =
  "select sum(l_extendedprice) / 7.0 as avg_yearly \
   from lineitem, part \
   where p_partkey = l_partkey \
   and l_quantity < (select 0.5 * avg(l_quantity) from lineitem l2 \
                     where l2.l_partkey = part.p_partkey)"

(* an aggregation-heavy join for the eager-aggregation ablation:
   revenue per nation *)
let revenue_per_nation =
  "select n_name, sum(l_extendedprice) as revenue, count(*) as lines \
   from nation, supplier, lineitem \
   where s_nationkey = n_nationkey and l_suppkey = s_suppkey \
   group by n_name order by n_name"

(* existential workload: suppliers with a high-stock part *)
let exists_workload =
  "select s_name from supplier where exists \
   (select ps_suppkey from partsupp where ps_suppkey = s_suppkey and ps_availqty > 9000) \
   order by s_name"

(* a Q18-flavoured workload: large orders found through a correlated
   HAVING-style subquery *)
let big_orders =
  "select o_orderkey, o_totalprice from orders \
   where o_totalprice > (select 2 * avg(o2.o_totalprice) from orders o2 \
                         where o2.o_custkey = orders.o_custkey) \
   order by o_totalprice desc limit 20"

(* a Q22-flavoured anti-join workload: customers without orders whose
   balance is above their nation's average *)
let inactive_customers =
  "select c_custkey from customer \
   where not exists (select o_orderkey from orders where o_custkey = c_custkey) \
   and c_acctbal > (select avg(c2.c_acctbal) from customer c2 \
                    where c2.c_nationkey = customer.c_nationkey) \
   order by c_custkey"

let all_named =
  [ ("lattice", q1_subquery); ("q2", q2); ("q17", q17);
    ("q17-all-parts", q17_all_parts); ("revenue", revenue_per_nation);
    ("exists", exists_workload); ("big-orders", big_orders);
    ("inactive", inactive_customers)
  ]

(* workloads for the property-rewrite bench (BENCH_9): plans whose
   final shape loses an operator once the symbolic property engine
   proves it redundant.  Kept out of [all_named] so the smoke sweep's
   vector-engine gates are unaffected. *)

(* GroupBy on the orders primary key: every group is a single row, so
   the GroupBy collapses to per-row scalar expressions *)
let groupby_on_key =
  "select o_orderkey, sum(o_totalprice) as total from orders \
   group by o_orderkey order by total desc limit 5"

(* LEFT OUTER JOIN against a reference table whose columns are never
   projected: the join predicate pins nation's primary key, so the
   join neither duplicates nor filters and can be dropped whole *)
let unused_lookup_join =
  "select c_custkey, c_name from customer \
   left outer join nation on n_nationkey = c_nationkey \
   order by c_custkey limit 10"

let property_named =
  all_named @ [ ("groupby-key", groupby_on_key); ("lookup-join", unused_lookup_join) ]
