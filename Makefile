# Convenience targets; `make verify` is the tier-1 gate.

.PHONY: all verify test faults bench clean

all:
	dune build

verify:
	dune build && dune runtest

test:
	dune runtest

# fault-injection sweep across several seeds (see test/faults_main.ml)
faults:
	dune build @faults

bench:
	dune exec bench/main.exe

clean:
	dune clean
