# Convenience targets; `make verify` is the tier-1 gate.

.PHONY: all verify test faults fuzz fuzz-smoke fuzz-cache-smoke fuzz-cache vexec-smoke bench bench-smoke bench-properties bench-concurrent bench-durability bench-cache cache-hammer recover-smoke soak-smoke soak prove-rules lint-smoke clean

all:
	dune build

verify:
	dune build && dune runtest && $(MAKE) prove-rules && $(MAKE) fuzz-smoke && $(MAKE) fuzz-cache-smoke && $(MAKE) vexec-smoke && $(MAKE) bench-smoke && $(MAKE) bench-properties && $(MAKE) bench-cache && $(MAKE) cache-hammer && $(MAKE) recover-smoke

# bounded rule-soundness prover: every registered rewrite rule checked
# for bag equivalence over all databases with <= 2 rows per table
# (including NULLs); fails on any counterexample, untested rule, or a
# rule whose templates are all vacuous; writes the coverage table
# (templates / firings / databases / vacuity per rule) as an artifact
prove-rules:
	dune exec test/prove_main.exe -- 2 --coverage-out PROVER_COVERAGE.txt

# static plan analysis over the built-in TPC-H workloads; fails on any
# ERROR-severity finding
lint-smoke:
	dune exec bin/subquery_opt_cli.exe -- lint --sf 0.01

test:
	dune runtest

# fault-injection sweep across several seeds (see test/faults_main.ml)
faults:
	dune build @faults

# differential fuzzing: random correlated-subquery SQL, full optimizer
# vs. the correlated oracle (see test/fuzz_main.ml and lib/testgen/)
# 200 cases over 5 fixed seeds; replay one with
#   dune exec bin/subquery_opt_cli.exe -- fuzz --seed N --case M -v
fuzz-smoke:
	dune exec test/fuzz_main.exe -- 40 1 2 3 4 5

# the larger sweep behind the @fuzz alias (2000 cases, 10 seeds)
fuzz:
	dune build @fuzz

# caching-tier contract fuzz: every generated query runs cold and then
# warm with perturbed literals on a cache-enabled engine, each run
# bag-compared to a fresh uncached optimization of the same SQL
fuzz-cache-smoke:
	dune exec test/fuzz_main.exe -- --cache 40 1 2 3 4 5

# the full caching-tier sweep: 2000 cases over 5 seeds
fuzz-cache:
	dune exec test/fuzz_main.exe -- --cache 400 1 2 3 4 5

# row-vs-vector differential check: every workload x config executed in
# both modes and bag-compared, plus a vector-mode fuzz sweep
vexec-smoke:
	dune exec test/vexec_main.exe -- 40 1 2 3 4 5

bench:
	dune exec bench/main.exe

# tiny-scale sweep of every workload x config in both exec modes;
# writes BENCH_7.json and gates on bridge_crossings = 0 and per-cell
# vector speedup >= 0.95x row
bench-smoke:
	dune exec bench/main.exe -- --smoke

# property-rewrite operator census: every workload compiled with the
# symbolic property engine's rewrites off and on, operator counts and
# costs recorded, bags cross-checked; writes BENCH_9.json and gates on
# at least one workload losing a GroupBy / Max1row / outer join
bench-properties:
	dune exec bench/main.exe -- --properties

# concurrent service scaling at 1/2/4/8 worker domains over the
# Apply-free workloads; writes BENCH_6.json (the >= 2x scaling
# assertion fires only on hosts with >= 4 cores)
bench-concurrent:
	dune exec bench/main.exe -- --concurrent

# durability micro-bench: WAL journaling/append throughput, snapshot
# write, snapshot recovery and cold WAL replay at SF 0.01 and 0.1;
# writes BENCH_8.json; every recovery is row-count gated
bench-durability:
	dune exec bench/main.exe -- --durability

# caching tier bench: warm plan-phase speedup (gated >= 5x geomean)
# and the query_many batch CSE win on the q17 family (gated >= 1.2x
# median with >= 1 materialization); writes BENCH_10.json
bench-cache:
	dune exec bench/main.exe -- --cache

# 4-domain cache-coherence hammer: mutators race cached plan hits and
# CSE batch reads; monotone-envelope checks during the race, exact
# bag comparison against a fresh engine after quiescing
cache-hammer:
	dune build @cache-hammer

# crash-recovery chaos sweep: the scripted writer is killed at every
# I/O operation under short-write / torn-write / bit-flip / fsync-lie
# faults; after each crash the store is reopened and all 8 benchmark
# workloads are bag-compared against the row oracle applied to exactly
# the committed mutation prefix (see test/recover_main.ml)
recover-smoke:
	dune build @recover

# chaos soak of the concurrent query service: 2000 requests, 4 worker
# domains, injected faults, tight deadlines, forced overload and
# worker-killing chaos hooks; every success differentially checked
# against the single-threaded row oracle (see test/soak_main.ml)
soak-smoke:
	dune exec test/soak_main.exe -- 2000 4 1

# the longer sweep: 10000 requests across 8 domains
soak:
	dune exec test/soak_main.exe -- 10000 8 1

clean:
	dune clean
