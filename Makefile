# Convenience targets; `make verify` is the tier-1 gate.

.PHONY: all verify test faults bench bench-smoke clean

all:
	dune build

verify:
	dune build && dune runtest && $(MAKE) bench-smoke

test:
	dune runtest

# fault-injection sweep across several seeds (see test/faults_main.ml)
faults:
	dune build @faults

bench:
	dune exec bench/main.exe

# tiny-scale sweep of every workload x config; writes BENCH_2.json
bench-smoke:
	dune exec bench/main.exe -- --smoke

clean:
	dune clean
