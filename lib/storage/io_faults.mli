(** Fault-injectable file I/O for the durability layer: every byte
    {!Wal} and {!Snapshot} persist goes through an [env], so a seeded
    fault spec can kill the writer at an exact I/O operation and the
    crash-recovery chaos harness can sweep every crash point.

    Crash simulation is in-process: the targeted operation raises
    {!Crash}; the harness catches it, calls {!crash_cleanup} (which
    applies the fault kind's survival semantics and closes every fd),
    then reopens the store with a fresh environment. *)

type kind =
  | Short_write  (** process dies mid-write; the prefix survives *)
  | Torn_write  (** full-length write with a garbage tail, then death *)
  | Bit_flip  (** one bit of one write flipped; the writer continues *)
  | Fsync_lie
      (** fsync reports success but persists nothing; the crash hits
          at the next I/O op and the unsynced suffix of every file is
          lost (power-loss semantics) *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type spec = {
  kind : kind;
  at_op : int;
      (** 1-based index of the targeted operation (writes and fsyncs
          share one counter; [Fsync_lie] counts fsyncs only) *)
  seed : int;  (** positions the torn-tail garbage / flipped bit *)
}

exception Crash of { kind : kind; op : int }

val crash_to_string : kind -> int -> string

(** ["io:torn-write:17"], ["io:bit-flip:4:seed:9"]. *)
val parse : string -> (spec, string) result

val spec_to_string : spec -> string

(** {2 Environments and files} *)

type env
type file

(** Fresh environment; no [spec] = transparent pass-through I/O. *)
val env : ?spec:spec -> unit -> env

(** Writes + fsyncs performed so far (harness dry-runs size their
    crash-point sweep with this). *)
val op_count : env -> int

(** True once {!Crash} was raised (or {!crash_cleanup} ran); every
    further operation re-raises. *)
val crashed : env -> bool

(** Open for writing, truncating any existing content. *)
val create_file : env -> string -> file

(** Open for appending; [trunc_to] first truncates to that many bytes
    (recovery drops a torn WAL tail this way). *)
val open_append : env -> string -> trunc_to:int option -> file

val write : file -> Bytes.t -> unit
val fsync : file -> unit
val close : file -> unit
val rename : env -> string -> string -> unit

(** Simulate the post-crash filesystem: apply the armed kind's
    survival semantics (truncate unsynced suffixes under [Fsync_lie])
    and close every fd. *)
val crash_cleanup : env -> unit
