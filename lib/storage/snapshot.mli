(** Checksummed, versioned binary database snapshots: column-major
    per-table pages with a CRC per page and a whole-file commit
    footer, written temp-file-then-rename.  See the .ml header for
    the byte layout.  A snapshot is all-or-nothing: any failing
    checksum rejects the whole file and recovery falls back to the
    previous epoch. *)

val snapshot_name : int -> string
val snapshot_path : dir:string -> int -> string

(** Epochs of the snapshot files present in the directory, ascending.
    Empty if the directory does not exist. *)
val list_epochs : dir:string -> int list

(** Write the whole database as the given epoch through the
    fault-injectable I/O layer (temp file, fsync, rename); returns the
    final path.  The caller must hold the store lock so row data is
    quiescent. *)
val write : Io_faults.env -> dir:string -> epoch:int -> Database.t -> string

type table_state = {
  ts_name : string;
  ts_generation : int;  (** table mutation generation at snapshot time *)
  ts_rows : Relalg.Value.t array array;
}

(** Parse and fully validate a snapshot: (epoch, per-table states).
    @raise Codec.Storage_corrupt on any defect — bad magic, failing
    CRC at any level, truncation, trailing bytes, or a shape that
    disagrees with the catalog. *)
val read : Catalog.t -> string -> int * table_state list
