(* Durable store: a database backed by checksummed snapshots plus a
   write-ahead log, with crash recovery.

   Directory layout ([dir]):

     snap-<epoch>.snap   full-state anchor written at rotation
     wal-<epoch>.log     mutations since snapshot <epoch>

   Epoch 0 is the implicit empty database — no snapshot file exists
   for it, only [wal-00000000.log].  Rotation ([rotate]) writes
   snapshot e+1 (which embeds every mutation of wal-e), starts
   wal-(e+1) at the continuing global sequence number, and prunes
   epochs <= e-1.  The previous epoch's pair is retained on purpose:
   if snapshot e+1 is later found corrupt (a doctored or bit-rotted
   file), recovery falls back to snapshot e and replays wal-e in full
   followed by wal-(e+1) — no acknowledged mutation is lost to a bad
   snapshot.

   Recovery ([open_db]):

   1. delete leftover [*.tmp] files (crashed snapshot writes);
   2. open the newest snapshot that validates, skipping (and
      counting) corrupt ones;
   3. replay every WAL of epoch >= the restored snapshot's, in epoch
      order, checking the global sequence is dense across files and
      each record's generation tag continues the table's generation
      (a discontinuity means a hole — refuse with [Storage_corrupt]);
      a torn tail is tolerated only on the final log (and truncated);
      a file too short to hold its header is the residue of a torn
      creation and is tolerated (recreated) only as the final log;
   4. rebuild the declared indexes and reopen the final log for
      appending.

   Mutation protocol (the durability contract): serialize, write,
   fsync, *then* apply in memory and acknowledge.  A crash before the
   fsync completes loses only the unacknowledged record. *)

module Value = Relalg.Value

type recovery = {
  rec_snapshot_epoch : int option;
      (** epoch restored from; [None] = started from the empty db *)
  rec_snapshots_rejected : (int * string) list;
      (** corrupt snapshots skipped, newest first, with the defect *)
  rec_entries_replayed : int;
  rec_torn_bytes : int;  (** bytes truncated from the final WAL's tail *)
  rec_wal_recreated : bool;
      (** final WAL was missing or torn at creation and was recreated *)
}

let recovery_to_string (r : recovery) : string =
  Printf.sprintf
    "snapshot=%s rejected=%d replayed=%d torn_bytes=%d wal_recreated=%b"
    (match r.rec_snapshot_epoch with None -> "none" | Some e -> string_of_int e)
    (List.length r.rec_snapshots_rejected)
    r.rec_entries_replayed r.rec_torn_bytes r.rec_wal_recreated

type t = {
  dir : string;
  env : Io_faults.env;
  db : Database.t;
  mutable epoch : int;
  mutable wal : Wal.writer;
  mutable mutations : int;  (** records in the current epoch's WAL *)
  mutable snapshots_taken : int;
  recovery : recovery;
  lock : Mutex.t;
}

let db (t : t) = t.db
let dir (t : t) = t.dir
let epoch (t : t) = t.epoch
let mutations (t : t) = Mutex.protect t.lock (fun () -> t.mutations)
let recovery_info (t : t) = t.recovery

let wal_name (epoch : int) = Printf.sprintf "wal-%08d.log" epoch
let wal_path ~(dir : string) (epoch : int) = Filename.concat dir (wal_name epoch)

(* "wal-00000042.log" -> Some 42 *)
let wal_epoch_of_name (f : string) : int option =
  let pre = "wal-" and suf = ".log" in
  let n = String.length f in
  if n > String.length pre + String.length suf
     && String.sub f 0 (String.length pre) = pre
     && Filename.check_suffix f suf
  then
    let digits = String.sub f (String.length pre) (n - String.length pre - String.length suf) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      int_of_string_opt digits
    else None
  else None

let list_wal_epochs ~(dir : string) : int list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map wal_epoch_of_name
    |> List.sort compare

(* ---------------- recovery ---------------------------------------- *)

let apply_entry (db : Database.t) (e : Wal.entry) : unit =
  let tname = Wal.op_table e.Wal.op in
  let tb =
    match Database.table_opt db tname with
    | Some tb -> tb
    | None -> Codec.corrupt "WAL replay: record for unknown table %s" tname
  in
  (* The generation tag is the continuity check: each record must take
     the table from gen g to g+1.  A mismatch means the chain has a
     hole (lost snapshot or skipped records) and replay would build a
     state that never existed. *)
  let expect = Table.generation tb + 1 in
  if e.Wal.gen <> expect then
    Codec.corrupt
      "WAL replay: generation discontinuity on table %s (record seq %d has gen \
       %d, table expects %d)"
      tname e.Wal.seq e.Wal.gen expect;
  (match e.Wal.op with
  | Wal.Load (_, rows) -> Table.load tb rows
  | Wal.Append (_, row) -> Table.append tb row)

let file_size (path : string) : int =
  try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* Open (or create) the store rooted at [dir], running recovery.
   Raises [Codec.Storage_corrupt] when the on-disk state cannot be
   restored to an exact committed prefix. *)
let open_db ?(env : Io_faults.env option) ~(dir : string) (catalog : Catalog.t) : t
    =
  let env = match env with Some e -> e | None -> Io_faults.env () in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  (* leftover temp files are crashed snapshot writes: never valid *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  let db = Database.create catalog in
  (* newest snapshot that validates, counting rejects *)
  let rejected = ref [] in
  let rec pick = function
    | [] -> None
    | e :: rest -> (
        let path = Snapshot.snapshot_path ~dir e in
        match Snapshot.read catalog path with
        | se, tables ->
            if se <> e then begin
              rejected := (e, Printf.sprintf "embedded epoch %d, file named %d" se e)
                          :: !rejected;
              pick rest
            end
            else Some (e, tables)
        | exception Codec.Storage_corrupt msg ->
            rejected := (e, msg) :: !rejected;
            pick rest)
  in
  let snap = pick (List.rev (Snapshot.list_epochs ~dir)) in
  let snap_epoch = match snap with Some (e, _) -> e | None -> 0 in
  (match snap with
  | None -> ()
  | Some (_, tables) ->
      List.iter
        (fun (s : Snapshot.table_state) ->
          match Database.table_opt db s.Snapshot.ts_name with
          | Some tb ->
              Table.restore tb ~generation:s.Snapshot.ts_generation s.Snapshot.ts_rows
          | None ->
              (* Snapshot.read already checked names against the
                 catalog, so this cannot happen. *)
              Codec.corrupt "snapshot table %s not in database" s.Snapshot.ts_name)
        tables);
  (* WAL chain: every log of epoch >= the restored snapshot's *)
  let all_wals = list_wal_epochs ~dir in
  let chain = List.filter (fun e -> e >= snap_epoch) all_wals in
  let nchain = List.length chain in
  let current_epoch = List.fold_left max snap_epoch chain in
  let replayed = ref 0 in
  let torn_bytes = ref 0 in
  let final_trunc = ref None in
  let wal_recreated = ref false in
  let last_seq = ref None in
  List.iteri
    (fun i e ->
      let is_final = i = nchain - 1 in
      let path = wal_path ~dir e in
      let size = file_size path in
      if size < Wal.header_len then begin
        (* Torn creation: the header write never became durable, so no
           record in this file was ever acknowledged.  Only legitimate
           for the final log of the chain. *)
        if is_final then wal_recreated := true
        else
          Codec.corrupt
            "WAL %s: truncated header (%d bytes) but later epochs exist" path size
      end
      else begin
        match Wal.read path with
        | exception Codec.Storage_corrupt _
          when is_final && size = Wal.header_len ->
            (* A header-sized file whose header does not validate is the
               residue of a torn header write: the file never held a
               record, so nothing acknowledged is lost by recreating it.
               Beyond header size, records may follow the bad header —
               that stays a hard corruption. *)
            wal_recreated := true
        | log ->
        if log.Wal.log_epoch <> e then
          Codec.corrupt "WAL %s: embedded epoch %d, file named %d" path
            log.Wal.log_epoch e;
        (match !last_seq with
        | Some ls when log.Wal.log_start_seq <> ls + 1 ->
            Codec.corrupt
              "WAL %s: sequence discontinuity across epochs (starts at %d, \
               previous log ended at %d)"
              path log.Wal.log_start_seq ls
        | _ -> ());
        (match log.Wal.log_tail with
        | Wal.Clean -> ()
        | Wal.Torn valid ->
            if is_final then begin
              torn_bytes := log.Wal.log_size - valid;
              final_trunc := Some valid
            end
            else
              Codec.corrupt
                "WAL %s: torn tail at offset %d but later epochs exist — \
                 acknowledged data would be lost"
                path valid);
        List.iter (apply_entry db) log.Wal.log_entries;
        replayed := !replayed + List.length log.Wal.log_entries;
        last_seq :=
          Some
            (match List.rev log.Wal.log_entries with
            | last :: _ -> last.Wal.seq
            | [] -> log.Wal.log_start_seq - 1)
      end)
    chain;
  (* Global sequence for new records.  When the chain held no record —
     e.g. a crash landed between snapshot rename and new-log creation
     — fall back to the newest pre-snapshot log for the watermark. *)
  let next_seq =
    match !last_seq with
    | Some ls -> ls + 1
    | None -> (
        match List.rev (List.filter (fun e -> e < snap_epoch) all_wals) with
        | [] -> 1
        | e :: _ -> (
            let log = Wal.read (wal_path ~dir e) in
            match List.rev log.Wal.log_entries with
            | last :: _ -> last.Wal.seq + 1
            | [] -> log.Wal.log_start_seq))
  in
  Database.build_declared_indexes db;
  let wpath = wal_path ~dir current_epoch in
  let wal =
    if (not (Sys.file_exists wpath)) || !wal_recreated then begin
      wal_recreated := true;
      if Sys.file_exists wpath then Sys.remove wpath;
      Wal.create env ~path:wpath ~epoch:current_epoch ~next_seq
    end
    else
      Wal.reopen env ~path:wpath ~epoch:current_epoch ~next_seq
        ~trunc_to:!final_trunc
  in
  let recovery =
    { rec_snapshot_epoch = (match snap with Some (e, _) -> Some e | None -> None);
      rec_snapshots_rejected = !rejected;
      rec_entries_replayed = !replayed;
      rec_torn_bytes = !torn_bytes;
      rec_wal_recreated = !wal_recreated;
    }
  in
  { dir;
    env;
    db;
    epoch = current_epoch;
    wal;
    mutations = 0;
    snapshots_taken = 0;
    recovery;
    lock = Mutex.create ();
  }

(* ---------------- journaled mutations ----------------------------- *)

(* Both mutators follow the same protocol: journal (write + fsync)
   first, apply in memory second.  If the journal write crashes, the
   in-memory state is untouched and the caller never acknowledges. *)

let load (t : t) (table : string) (rows : Value.t array list) : unit =
  Mutex.protect t.lock (fun () ->
      let tb = Database.table t.db table in
      let gen = Table.generation tb + 1 in
      ignore (Wal.append t.wal ~gen (Wal.Load (table, rows)));
      Table.load tb rows;
      t.mutations <- t.mutations + 1);
  (* [Table.load] drops that table's indexes; restore the declared
     set so index-backed plans keep working. *)
  Database.build_declared_indexes t.db

let append (t : t) (table : string) (row : Value.t array) : unit =
  Mutex.protect t.lock (fun () ->
      let tb = Database.table t.db table in
      let gen = Table.generation tb + 1 in
      ignore (Wal.append t.wal ~gen (Wal.Append (table, row)));
      Table.append tb row;
      t.mutations <- t.mutations + 1)

(* ---------------- rotation ---------------------------------------- *)

(* Write snapshot e+1, start wal-(e+1), prune epochs <= e-1 (the pair
   for epoch e is retained as the fallback for a corrupt snapshot
   e+1).  Returns the new epoch. *)
let rotate (t : t) : int =
  Mutex.protect t.lock (fun () ->
      let e' = t.epoch + 1 in
      ignore (Snapshot.write t.env ~dir:t.dir ~epoch:e' t.db);
      let next_seq = Wal.next_seq t.wal in
      let fresh = Wal.create t.env ~path:(wal_path ~dir:t.dir e') ~epoch:e' ~next_seq in
      Wal.close t.wal;
      t.wal <- fresh;
      t.epoch <- e';
      t.mutations <- 0;
      t.snapshots_taken <- t.snapshots_taken + 1;
      let rm p = try Sys.remove p with Sys_error _ -> () in
      List.iter
        (fun e -> if e <= e' - 2 then rm (Snapshot.snapshot_path ~dir:t.dir e))
        (Snapshot.list_epochs ~dir:t.dir);
      List.iter
        (fun e -> if e <= e' - 2 then rm (wal_path ~dir:t.dir e))
        (list_wal_epochs ~dir:t.dir);
      e')

let snapshots_taken (t : t) = t.snapshots_taken
let close (t : t) : unit = Wal.close t.wal
