(** In-memory row store.

    A table is a growable array of rows (value arrays, positionally
    matching the catalog column order) plus optional single-column
    hash indexes — enough for the index-lookup-join execution
    alternative of the paper's Section 4.  The backing array
    over-allocates (capacity doubling), so WAL replay of N appends is
    amortized O(N); read rows through {!rows_view}, never past the
    logical count. *)

type index = {
  idx_col : int;  (** column position *)
  idx_map : (Relalg.Value.t, int list) Hashtbl.t;
}

type t = {
  def : Catalog.table;
  mutable rows : Relalg.Value.t array array;
      (** backing store; physical length is the capacity, logical size
          is [nrows] — use {!rows_view} instead of reading this *)
  mutable nrows : int;
  mutable indexes : index list;
  col_pos : (string, int) Hashtbl.t;
  mutable generation : int;
      (** bumped on every row mutation; lets derived caches (columnar
          extraction, NDV statistics) detect staleness *)
  mutable col_cache : (int * Relalg.Value.t array array) option;
  lock : Mutex.t;
      (** guards mutations and derived-state (columnar cache, indexes,
          distinct-count) refreshes against concurrent sessions; row
          data is read-only while queries run *)
}

val create : Catalog.table -> t
val name : t -> string
val row_count : t -> int

(** Consistent (backing array, logical row count) pair for scans; only
    indices below the count are valid rows. *)
val rows_view : t -> Relalg.Value.t array array * int

(** The logical rows as a list (row order preserved). *)
val to_rows : t -> Relalg.Value.t array list

val column_position : t -> string -> int option

(** Current mutation generation; changes whenever rows change. *)
val generation : t -> int

(** Replace the table contents (drops indexes, bumps the generation). *)
val load : t -> Relalg.Value.t array list -> unit

(** Restore persisted state wholesale (snapshot recovery): rows and
    the saved mutation generation; indexes are dropped for the caller
    to rebuild. *)
val restore : t -> generation:int -> Relalg.Value.t array array -> unit

(** Append one row (bumps the generation; existing indexes are
    maintained incrementally). *)
val append : t -> Relalg.Value.t array -> unit

(** Column-major view of the rows (one array per catalog column),
    built lazily and invalidated on row mutation. *)
val columns : t -> Relalg.Value.t array array

(** Build a hash index on one column.
    @raise Invalid_argument for unknown columns. *)
val build_index : t -> string -> unit

val find_index : t -> string -> index option
val index_lookup : index -> t -> Relalg.Value.t -> Relalg.Value.t array list

(** Exact distinct count of a column (cached by Optimizer.Stats). *)
val distinct_count : t -> string -> int
