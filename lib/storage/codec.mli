(** Binary (de)serialization shared by {!Wal} and {!Snapshot}, plus
    the typed corruption error of the durability layer.

    Everything is little-endian; floats are stored as IEEE-754 bit
    patterns so [-0.0], subnormals and NaNs round-trip bit-exactly. *)

(** Raised by storage-layer readers on checksum mismatch, torn or
    truncated input, unknown tags, or an on-disk/catalog mismatch. *)
exception Storage_corrupt of string

(** [corrupt fmt ...] raises {!Storage_corrupt} with a formatted
    message. *)
val corrupt : ('a, unit, string, 'b) format4 -> 'a

(** {2 Writers} *)

val add_u8 : Buffer.t -> int -> unit
val add_u32 : Buffer.t -> int -> unit

(** Two's-complement i64; also used for non-negative u64 counts. *)
val add_i64 : Buffer.t -> int -> unit

(** Length-prefixed (u32) string. *)
val add_str : Buffer.t -> string -> unit

val add_value : Buffer.t -> Relalg.Value.t -> unit

(** u32 width + values. *)
val add_row : Buffer.t -> Relalg.Value.t array -> unit

(** {2 Readers}

    All readers bounds-check before consuming and raise
    {!Storage_corrupt} (never [Invalid_argument]) on truncation. *)

type cursor = { src : string; mutable pos : int }

val cursor : string -> cursor
val remaining : cursor -> int

(** Raise {!Storage_corrupt} unless [n] bytes remain. *)
val need : cursor -> int -> what:string -> unit

val get_u8 : cursor -> what:string -> int
val get_u32 : cursor -> what:string -> int
val get_i64 : cursor -> what:string -> int
val get_str : cursor -> what:string -> string
val get_value : cursor -> Relalg.Value.t
val get_row : cursor -> Relalg.Value.t array
