(* A database: a catalog plus loaded tables. *)

type t = {
  catalog : Catalog.t;
  tables : (string, Table.t) Hashtbl.t;
}

let create (catalog : Catalog.t) : t =
  let tables = Hashtbl.create 16 in
  List.iter
    (fun name ->
      match Catalog.find_table catalog name with
      | Some def -> Hashtbl.replace tables name (Table.create def)
      | None ->
          (* A name with no definition is a malformed catalog; skipping
             it silently would surface later as a confusing
             unknown-table error at query time. *)
          invalid_arg ("Database.create: catalog lists table " ^ name
                       ^ " but has no definition for it"))
    (Catalog.table_names catalog);
  { catalog; tables }

let table t name : Table.t =
  match Hashtbl.find_opt t.tables name with
  | Some tb -> tb
  | None -> invalid_arg ("Database.table: unknown table " ^ name)

let table_opt t name = Hashtbl.find_opt t.tables name

(* Build every index declared in the catalog (PK single-column indexes
   plus declared secondary indexes). *)
let build_declared_indexes t =
  Hashtbl.iter
    (fun _ (tb : Table.t) ->
      let decl =
        (match tb.def.primary_key with [ c ] -> [ [ c ] ] | _ -> []) @ tb.def.indexes
      in
      List.iter
        (function
          | [ c ] -> if Table.find_index tb c = None then Table.build_index tb c
          | _ -> () (* only single-column hash indexes *))
        decl)
    t.tables
