(** Write-ahead log: journals [load]/[append] mutations with
    per-record checksums and generation tags, fsync'd before the
    mutation is acknowledged.  One log file per snapshot epoch; see
    the .ml header for the byte layout and the torn-tail vs mid-log
    corruption classification. *)

type op =
  | Load of string * Relalg.Value.t array list
      (** replace the named table's contents *)
  | Append of string * Relalg.Value.t array  (** append one row *)

type entry = {
  seq : int;  (** global sequence number, dense across epochs *)
  gen : int;  (** table mutation generation after applying *)
  op : op;
}

val op_table : op -> string

(** WAL file header size in bytes; a file shorter than this never held
    an acknowledged record (torn creation). *)
val header_len : int

(** {2 Writer} *)

type writer

val path : writer -> string

(** Sequence number the next appended record will carry. *)
val next_seq : writer -> int

(** Fresh log for a new epoch; the file header is written and fsync'd
    immediately. *)
val create :
  Io_faults.env -> path:string -> epoch:int -> next_seq:int -> writer

(** Reopen the current epoch's log after recovery; [trunc_to] first
    cuts a torn tail at that byte offset. *)
val reopen :
  Io_faults.env ->
  path:string ->
  epoch:int ->
  next_seq:int ->
  trunc_to:int option ->
  writer

(** Write + fsync one record; returns its sequence number.  The record
    is durable before this returns — only then may the caller apply
    and acknowledge the mutation. *)
val append : writer -> gen:int -> op -> int

val close : writer -> unit

(** {2 Reader} *)

type tail =
  | Clean  (** every byte parsed into valid records *)
  | Torn of int
      (** valid prefix ends at this byte offset; the rest is the
          residue of a crashed append and must be truncated *)

type log = {
  log_epoch : int;
  log_start_seq : int;  (** seq the first record carries *)
  log_entries : entry list;  (** valid entries, in order *)
  log_tail : tail;
  log_size : int;  (** file size in bytes *)
}

(** Parse a log file.
    @raise Codec.Storage_corrupt on a bad file header, or when a
    corrupt record is followed by valid ones (acknowledged data would
    be lost). *)
val read : string -> log
