(* Binary (de)serialization shared by the WAL and the snapshot format,
   plus the one typed error the whole durability layer speaks.

   Layout rules: everything is little-endian; integers that can be
   negative (Int, Date payloads) are stored as two's-complement i64,
   sizes and counts as u32/u64.  Floats are stored as their IEEE-754
   bit pattern, so -0.0, subnormals and NaNs round-trip bit-exactly —
   the row oracle distinguishes -0.0 from 0.0 in aggregate seeding, so
   the storage layer must too.

   Readers never trust a length field before bounds-checking it
   against the remaining input: a corrupt length must surface as
   [Storage_corrupt], not as an [Invalid_argument] escape from
   [String.sub] (let alone a huge allocation). *)

module Value = Relalg.Value

(* Raised by every storage-layer reader on checksum mismatch, torn or
   truncated input, unknown tags, or an on-disk/catalog disagreement.
   [Engine.Errors] classifies it as an unrecoverable [Storage] error:
   no replanning of the same SQL can repair a corrupt store. *)
exception Storage_corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Storage_corrupt m)) fmt

(* ---------------- writers (Buffer-based) -------------------------- *)

let add_u8 (b : Buffer.t) (v : int) = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u32 (b : Buffer.t) (v : int) =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.add_u32: out of range";
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

(* i64 two's-complement; also used for non-negative u64 counts. *)
let add_i64 (b : Buffer.t) (v : int) =
  let v = Int64.of_int v in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let add_str (b : Buffer.t) (s : string) =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_value (b : Buffer.t) (v : Value.t) =
  match v with
  | Value.Null -> add_u8 b 0
  | Value.Int i ->
      add_u8 b 1;
      add_i64 b i
  | Value.Float f ->
      add_u8 b 2;
      let bits = Int64.bits_of_float f in
      for i = 0 to 7 do
        Buffer.add_char b
          (Char.chr
             (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
      done
  | Value.Str s ->
      add_u8 b 3;
      add_str b s
  | Value.Bool x ->
      add_u8 b 4;
      add_u8 b (if x then 1 else 0)
  | Value.Date d ->
      add_u8 b 5;
      add_i64 b d

let add_row (b : Buffer.t) (row : Value.t array) =
  add_u32 b (Array.length row);
  Array.iter (add_value b) row

(* ---------------- readers (string + cursor) ----------------------- *)

type cursor = { src : string; mutable pos : int }

let cursor (src : string) : cursor = { src; pos = 0 }
let remaining (c : cursor) = String.length c.src - c.pos

let need (c : cursor) (n : int) ~(what : string) =
  if n < 0 || remaining c < n then
    corrupt "truncated input: %s needs %d bytes, %d remain at offset %d" what n
      (remaining c) c.pos

let get_u8 (c : cursor) ~what : int =
  need c 1 ~what;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 (c : cursor) ~what : int =
  need c 4 ~what;
  let b i = Char.code c.src.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_i64 (c : cursor) ~what : int =
  need c 8 ~what;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.src.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  Int64.to_int !v

let get_str (c : cursor) ~what : string =
  let n = get_u32 c ~what in
  need c n ~what;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_value (c : cursor) : Value.t =
  match get_u8 c ~what:"value tag" with
  | 0 -> Value.Null
  | 1 -> Value.Int (get_i64 c ~what:"int value")
  | 2 ->
      need c 8 ~what:"float value";
      let bits = ref 0L in
      for i = 7 downto 0 do
        bits :=
          Int64.logor (Int64.shift_left !bits 8)
            (Int64.of_int (Char.code c.src.[c.pos + i]))
      done;
      c.pos <- c.pos + 8;
      Value.Float (Int64.float_of_bits !bits)
  | 3 -> Value.Str (get_str c ~what:"string value")
  | 4 -> Value.Bool (get_u8 c ~what:"bool value" <> 0)
  | 5 -> Value.Date (get_i64 c ~what:"date value")
  | t -> corrupt "unknown value tag %d at offset %d" t (c.pos - 1)

let get_row (c : cursor) : Value.t array =
  let n = get_u32 c ~what:"row width" in
  (* each value is at least one tag byte; reject absurd widths before
     allocating *)
  need c n ~what:"row values";
  Array.init n (fun _ -> get_value c)
