(** A database: a catalog plus loaded tables. *)

type t = {
  catalog : Catalog.t;
  tables : (string, Table.t) Hashtbl.t;
}

(** @raise Invalid_argument if the catalog lists a table name without a
    definition (malformed catalog). *)
val create : Catalog.t -> t

(** @raise Invalid_argument for unknown tables. *)
val table : t -> string -> Table.t

val table_opt : t -> string -> Table.t option

(** Build every single-column index declared in the catalog (primary
    keys and secondary indexes). *)
val build_declared_indexes : t -> unit
