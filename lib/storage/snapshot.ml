(* Checksummed, versioned binary snapshots of whole databases.

   A snapshot is the periodic full-state anchor the WAL extends: write
   one, rotate the log, and recovery replays only the mutations since.
   The format is column-major — per-table sections of per-column pages
   — matching the vectorized engine's access pattern and keeping each
   checksum over a bounded, cache-friendly extent.

   On-disk layout (little-endian; Codec encoding):

     file header:  magic "SQSNAP01" (8) | version u32 | epoch i64
                   | ntables u32 | hcrc u32
     per table:    section header: magic "TSEC" | name (u32+bytes)
                   | generation i64 | nrows i64 | ncols u32 | hcrc u32
                   (hcrc covers the section header bytes before it)
       per column: pages of up to [page_rows] rows:
                   magic "PAGE" | col u32 | first_row i64 | count u32
                   | plen u32 | pcrc u32 | hcrc u32 | payload
     footer:       magic "SEND" | body_crc u32 | hcrc u32
                   (body_crc is the running CRC-32 of every byte
                   before the footer — the commit record)

   Write protocol: everything goes to [<final>.tmp] through the
   fault-injectable I/O layer, is fsync'd, then renamed into place.  A
   crash mid-write leaves only a .tmp (ignored and deleted by
   recovery); a torn rename target cannot exist.  A file without a
   valid footer — or with any failing CRC, or trailing bytes after the
   footer — is rejected wholesale with [Storage_corrupt]: snapshots
   are all-or-nothing, there is no partial replay.  Recovery then
   falls back to the previous epoch's snapshot + WAL chain. *)

module Value = Relalg.Value

let file_magic = "SQSNAP01"
let section_magic = "TSEC"
let page_magic = "PAGE"
let footer_magic = "SEND"
let version = 1

(* Rows per page: bounds each checksum extent and each reader
   allocation; small enough that a torn page invalidates little, large
   enough that header overhead vanishes. *)
let page_rows = 4096

let snapshot_name (epoch : int) = Printf.sprintf "snap-%08d.snap" epoch
let snapshot_path ~(dir : string) (epoch : int) = Filename.concat dir (snapshot_name epoch)

(* "snap-00000042.snap" -> Some 42 *)
let epoch_of_name (f : string) : int option =
  let pre = "snap-" and suf = ".snap" in
  let n = String.length f in
  if n > String.length pre + String.length suf
     && String.sub f 0 (String.length pre) = pre
     && Filename.check_suffix f suf
  then
    let digits = String.sub f (String.length pre) (n - String.length pre - String.length suf) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      int_of_string_opt digits
    else None
  else None

(* Epochs of the snapshot files present in [dir], ascending. *)
let list_epochs ~(dir : string) : int list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map epoch_of_name
    |> List.sort compare

(* ---------------- writer ------------------------------------------ *)

(* The writer tracks a running CRC of everything it emits; the footer
   seals it.  Buffers are flushed per table section so memory stays
   bounded by one section, not the whole database. *)
type out = {
  file : Io_faults.file;
  mutable body_crc : int;
  buf : Buffer.t;
}

let flush (o : out) : unit =
  if Buffer.length o.buf > 0 then begin
    let s = Buffer.contents o.buf in
    o.body_crc <- Checksum.string ~init:o.body_crc s ~pos:0 ~len:(String.length s);
    Io_faults.write o.file (Buffer.to_bytes o.buf);
    Buffer.clear o.buf
  end

let add_page (b : Buffer.t) ~(col : int) ~(first : int) (values : Value.t array)
    ~(lo : int) ~(hi : int) : unit =
  let pb = Buffer.create 1024 in
  for i = lo to hi - 1 do
    Codec.add_value pb values.(i)
  done;
  let payload = Buffer.contents pb in
  let h = Buffer.create 28 in
  Buffer.add_string h page_magic;
  Codec.add_u32 h col;
  Codec.add_i64 h first;
  Codec.add_u32 h (hi - lo);
  Codec.add_u32 h (String.length payload);
  Codec.add_u32 h (Checksum.of_string payload);
  let hs = Buffer.contents h in
  Buffer.add_string b hs;
  Codec.add_u32 b (Checksum.of_string hs);
  Buffer.add_string b payload

(* Write the whole database as epoch [epoch]; returns the final path.
   The caller (Durable) holds the store lock, so the row data is
   quiescent. *)
let write (env : Io_faults.env) ~(dir : string) ~(epoch : int) (db : Database.t) :
    string =
  let final = snapshot_path ~dir epoch in
  let tmp = final ^ ".tmp" in
  let names = List.sort compare (Catalog.table_names db.Database.catalog) in
  let file = Io_faults.create_file env tmp in
  let o = { file; body_crc = 0; buf = Buffer.create 65536 } in
  (* file header *)
  Buffer.add_string o.buf file_magic;
  Codec.add_u32 o.buf version;
  Codec.add_i64 o.buf epoch;
  Codec.add_u32 o.buf (List.length names);
  let hdr = Buffer.contents o.buf in
  Codec.add_u32 o.buf (Checksum.of_string hdr);
  flush o;
  (* table sections *)
  List.iter
    (fun name ->
      let tb = Database.table db name in
      let rows, nrows = Table.rows_view tb in
      let ncols = List.length tb.Table.def.Catalog.columns in
      let sh = Buffer.create 64 in
      Buffer.add_string sh section_magic;
      Codec.add_str sh name;
      Codec.add_i64 sh (Table.generation tb);
      Codec.add_i64 sh nrows;
      Codec.add_u32 sh ncols;
      let shs = Buffer.contents sh in
      Buffer.add_string o.buf shs;
      Codec.add_u32 o.buf (Checksum.of_string shs);
      (* column-major pages; extract one column at a time *)
      let colv = Array.make nrows Value.Null in
      for c = 0 to ncols - 1 do
        for i = 0 to nrows - 1 do
          colv.(i) <- rows.(i).(c)
        done;
        let lo = ref 0 in
        while !lo < nrows do
          let hi = min nrows (!lo + page_rows) in
          add_page o.buf ~col:c ~first:!lo colv ~lo:!lo ~hi;
          lo := hi
        done
      done;
      flush o)
    names;
  (* footer: seal the running body CRC *)
  let body_crc = o.body_crc in
  Buffer.add_string o.buf footer_magic;
  Codec.add_u32 o.buf body_crc;
  let fs = Buffer.contents o.buf in
  Codec.add_u32 o.buf (Checksum.of_string fs);
  flush o;
  Io_faults.fsync file;
  Io_faults.close file;
  Io_faults.rename env tmp final;
  final

(* ---------------- reader ------------------------------------------ *)

type table_state = {
  ts_name : string;
  ts_generation : int;
  ts_rows : Value.t array array;
}

(* Parse and fully validate a snapshot file.  Any defect — bad magic,
   failing CRC at any level, truncated input, trailing garbage, or a
   shape that disagrees with [catalog] — raises [Storage_corrupt]. *)
let read (catalog : Catalog.t) (path : string) : int * table_state list =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let fail fmt = Codec.corrupt ("snapshot %s: " ^^ fmt) path in
  if len < 24 + 12 then fail "file too short (%d bytes)" len;
  (* footer first: no valid commit record, no snapshot *)
  let flen = 12 in
  let fpos = len - flen in
  if String.sub s fpos 4 <> footer_magic then fail "missing commit footer";
  let fc = Codec.cursor (String.sub s (fpos + 4) 8) in
  let body_crc = Codec.get_u32 fc ~what:"footer body crc" in
  let fcrc = Codec.get_u32 fc ~what:"footer crc" in
  if fcrc <> Checksum.string s ~pos:fpos ~len:8 then fail "footer checksum mismatch";
  if body_crc <> Checksum.string s ~pos:0 ~len:fpos then
    fail "body checksum mismatch (whole-file)";
  (* file header *)
  let c = Codec.cursor s in
  Codec.need c 8 ~what:"snapshot magic";
  if String.sub s 0 8 <> file_magic then fail "bad file magic";
  c.Codec.pos <- 8;
  let ver = Codec.get_u32 c ~what:"version" in
  if ver <> version then fail "unsupported version %d" ver;
  let epoch = Codec.get_i64 c ~what:"epoch" in
  let ntables = Codec.get_u32 c ~what:"table count" in
  let hcrc = Codec.get_u32 c ~what:"header crc" in
  if hcrc <> Checksum.string s ~pos:0 ~len:(c.Codec.pos - 4) then
    fail "file header checksum mismatch";
  (* table sections *)
  let tables = ref [] in
  for _ = 1 to ntables do
    let spos = c.Codec.pos in
    Codec.need c 4 ~what:"section magic";
    if String.sub s c.Codec.pos 4 <> section_magic then
      fail "bad table section magic at offset %d" c.Codec.pos;
    c.Codec.pos <- c.Codec.pos + 4;
    let name = Codec.get_str c ~what:"table name" in
    let generation = Codec.get_i64 c ~what:"table generation" in
    let nrows = Codec.get_i64 c ~what:"table row count" in
    let ncols = Codec.get_u32 c ~what:"table column count" in
    let shcrc = Codec.get_u32 c ~what:"section header crc" in
    if shcrc <> Checksum.string s ~pos:spos ~len:(c.Codec.pos - 4 - spos) then
      fail "table %s: section header checksum mismatch" name;
    if nrows < 0 then fail "table %s: negative row count" name;
    let def =
      match Catalog.find_table catalog name with
      | Some d -> d
      | None -> fail "table %s not in catalog" name
    in
    let want_cols = List.length def.Catalog.columns in
    if ncols <> want_cols then
      fail "table %s: %d columns on disk, catalog declares %d" name ncols want_cols;
    let rows = Array.init nrows (fun _ -> Array.make ncols Value.Null) in
    (* pages, column-major, in write order *)
    for col = 0 to ncols - 1 do
      let filled = ref 0 in
      while !filled < nrows do
        let ppos = c.Codec.pos in
        Codec.need c 4 ~what:"page magic";
        if String.sub s c.Codec.pos 4 <> page_magic then
          fail "table %s: bad page magic at offset %d" name c.Codec.pos;
        c.Codec.pos <- c.Codec.pos + 4;
        let pcol = Codec.get_u32 c ~what:"page column" in
        let first = Codec.get_i64 c ~what:"page first row" in
        let count = Codec.get_u32 c ~what:"page row count" in
        let plen = Codec.get_u32 c ~what:"page payload length" in
        let pcrc = Codec.get_u32 c ~what:"page payload crc" in
        let phcrc = Codec.get_u32 c ~what:"page header crc" in
        if phcrc <> Checksum.string s ~pos:ppos ~len:(c.Codec.pos - 4 - ppos) then
          fail "table %s: page header checksum mismatch at offset %d" name ppos;
        if pcol <> col || first <> !filled || count <= 0 || first + count > nrows
        then
          fail "table %s: page addresses col %d rows %d+%d, expected col %d row %d"
            name pcol first count col !filled;
        Codec.need c plen ~what:"page payload";
        if Checksum.string s ~pos:c.Codec.pos ~len:plen <> pcrc then
          fail "table %s: page payload checksum mismatch (col %d, row %d)" name col
            first;
        let pc = Codec.cursor (String.sub s c.Codec.pos plen) in
        for i = first to first + count - 1 do
          rows.(i).(col) <- Codec.get_value pc
        done;
        if Codec.remaining pc <> 0 then
          fail "table %s: %d trailing bytes in page payload" name (Codec.remaining pc);
        c.Codec.pos <- c.Codec.pos + plen;
        filled := first + count
      done
    done;
    tables := { ts_name = name; ts_generation = generation; ts_rows = rows } :: !tables
  done;
  if c.Codec.pos <> fpos then
    fail "%d unparsed bytes between last section and footer" (fpos - c.Codec.pos);
  (epoch, List.rev !tables)
