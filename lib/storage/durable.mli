(** Durable store: a database backed by checksummed snapshots plus a
    write-ahead log, with crash recovery.  See the .ml header for the
    directory layout, the recovery procedure, and the fallback chain
    that survives a corrupt (or doctored) newest snapshot. *)

type recovery = {
  rec_snapshot_epoch : int option;
      (** epoch restored from; [None] = started from the empty db *)
  rec_snapshots_rejected : (int * string) list;
      (** corrupt snapshots skipped, newest first, with the defect *)
  rec_entries_replayed : int;
  rec_torn_bytes : int;  (** bytes truncated from the final WAL's tail *)
  rec_wal_recreated : bool;
      (** final WAL was missing or torn at creation and was recreated *)
}

val recovery_to_string : recovery -> string

type t

val db : t -> Database.t
val dir : t -> string

(** Current snapshot epoch (0 = the implicit empty baseline). *)
val epoch : t -> int

(** Mutations journaled to the current epoch's WAL. *)
val mutations : t -> int

(** Snapshots written by {!rotate} since open. *)
val snapshots_taken : t -> int

val recovery_info : t -> recovery

(** Open (or create) the store rooted at [dir], running recovery:
    newest valid snapshot, WAL-chain replay up to the first torn
    record, declared-index rebuild.  [env] routes all writes through
    fault-injectable I/O (chaos harness); omitted = real I/O.
    @raise Codec.Storage_corrupt when the on-disk state cannot be
    restored to an exact committed prefix. *)
val open_db : ?env:Io_faults.env -> dir:string -> Catalog.t -> t

(** Replace a table's contents; journaled (write + fsync) before the
    in-memory apply, so once this returns the mutation survives a
    crash. *)
val load : t -> string -> Relalg.Value.t array list -> unit

(** Append one row; same durability contract as {!load}. *)
val append : t -> string -> Relalg.Value.t array -> unit

(** Write a snapshot of the current state as epoch+1, rotate the WAL,
    prune epochs older than the previous one; returns the new epoch. *)
val rotate : t -> int

val close : t -> unit
