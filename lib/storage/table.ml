(* In-memory row store.

   A table is a growable array of rows (value arrays, positionally
   matching the catalog column order) plus optional hash indexes.
   Indexes map a key value (single column) to the list of row
   positions — enough for the index-lookup-join execution alternative
   the paper's Section 4 calls "the simplest and most common"
   correlated execution.

   The backing [rows] array over-allocates (capacity doubling), so a
   stream of [append]s — the WAL-replay workload of recovery — is
   amortized O(1) per row instead of the O(n) full copy [Array.append]
   used to pay.  [nrows] is the logical size; everything past it is
   garbage and must never be read.  Readers outside this module go
   through {!rows_view}, which hands out a consistent (array, count)
   pair.

   Concurrency contract: row data is effectively read-only while
   queries run (a service loads tables before serving), so scans read
   a {!rows_view} without further coordination.  What *does* mutate
   under concurrent readers is the derived state — the
   generation-tagged columnar cache, the index list, and the distinct
   counts computed for the stats cache — so every derived-state
   refresh and every mutation goes through the per-table [lock].
   Without it, two domains racing the first [columns] call after a
   mutation could tear the cache, and a mutation racing a refresh
   could pin a stale extraction under a new generation. *)

module Value = Relalg.Value

type index = {
  idx_col : int;  (** column position *)
  idx_map : (Value.t, int list) Hashtbl.t;
}

type t = {
  def : Catalog.table;
  mutable rows : Value.t array array;
      (** backing store; physical length is the capacity, logical size
          is [nrows] — use {!rows_view} outside this module *)
  mutable nrows : int;
  mutable indexes : index list;
  col_pos : (string, int) Hashtbl.t;
  mutable generation : int;
  mutable col_cache : (int * Value.t array array) option;
      (** column-major extraction tagged with the generation it was
          built against; rebuilt lazily by {!columns} *)
  lock : Mutex.t;
      (** guards mutations and derived-state (col_cache, indexes,
          distinct-count) refreshes against concurrent sessions *)
}

let create (def : Catalog.table) : t =
  let col_pos = Hashtbl.create 8 in
  List.iteri (fun i (c : Catalog.column) -> Hashtbl.replace col_pos c.col_name i) def.columns;
  { def;
    rows = [||];
    nrows = 0;
    indexes = [];
    col_pos;
    generation = 0;
    col_cache = None;
    lock = Mutex.create ();
  }

let name t = t.def.name
let row_count t = t.nrows

(* Consistent (backing array, logical size) pair for lock-free scans.
   Read under the lock so a racing capacity-doubling append can never
   hand out a count that exceeds the array we return. *)
let rows_view t : Value.t array array * int =
  Mutex.protect t.lock (fun () -> (t.rows, t.nrows))

let to_rows t : Value.t array list =
  let rows, n = rows_view t in
  List.init n (fun i -> rows.(i))

let column_position t cname = Hashtbl.find_opt t.col_pos cname

(* Every row mutation bumps the generation so derived state — the
   columnar cache here, the NDV cache in Optimizer.Stats — can detect
   staleness instead of serving values for rows that no longer exist.
   Callers hold [lock]. *)
let touch t =
  t.generation <- t.generation + 1;
  t.col_cache <- None

let generation t = t.generation

let load t (rows : Value.t array list) =
  Mutex.protect t.lock (fun () ->
      t.rows <- Array.of_list rows;
      t.nrows <- Array.length t.rows;
      t.indexes <- [];
      touch t)

(* Restore persisted state wholesale (snapshot recovery): rows and the
   saved mutation generation, exactly as they were at snapshot time.
   Indexes are dropped — recovery rebuilds the declared set. *)
let restore t ~(generation : int) (rows : Value.t array array) =
  Mutex.protect t.lock (fun () ->
      t.rows <- rows;
      t.nrows <- Array.length rows;
      t.indexes <- [];
      t.generation <- generation;
      t.col_cache <- None)

let append t row =
  Mutex.protect t.lock (fun () ->
      let cap = Array.length t.rows in
      if t.nrows = cap then begin
        let grown = Array.make (max 8 (2 * cap)) [||] in
        Array.blit t.rows 0 grown 0 t.nrows;
        t.rows <- grown
      end;
      t.rows.(t.nrows) <- row;
      t.nrows <- t.nrows + 1;
      (* Maintain existing indexes incrementally: an index that missed
         appended rows would make index_lookup silently drop them from
         every index-backed Apply (the stale-index bug). *)
      List.iter
        (fun ix ->
          let v = row.(ix.idx_col) in
          let prev = try Hashtbl.find ix.idx_map v with Not_found -> [] in
          Hashtbl.replace ix.idx_map v ((t.nrows - 1) :: prev))
        t.indexes;
      touch t)

(* Column-major view of the table, for the vectorized scan: one value
   array per catalog column.  Built on first use, invalidated by row
   mutation via the generation counter; the lock makes the
   check-then-rebuild atomic so concurrent scans share one rebuild. *)
let columns t : Value.t array array =
  Mutex.protect t.lock (fun () ->
      match t.col_cache with
      | Some (gen, cols) when gen = t.generation -> cols
      | _ ->
          let n = t.nrows in
          let ncols = List.length t.def.columns in
          let cols = Array.init ncols (fun c -> Array.init n (fun i -> t.rows.(i).(c))) in
          t.col_cache <- Some (t.generation, cols);
          cols)

(* Build one hash index on a single column. *)
let build_index t cname =
  match column_position t cname with
  | None -> invalid_arg ("build_index: no column " ^ cname)
  | Some pos ->
      Mutex.protect t.lock (fun () ->
          let map = Hashtbl.create (max 16 t.nrows) in
          for i = 0 to t.nrows - 1 do
            let v = t.rows.(i).(pos) in
            let prev = try Hashtbl.find map v with Not_found -> [] in
            Hashtbl.replace map v (i :: prev)
          done;
          t.indexes <- { idx_col = pos; idx_map = map } :: t.indexes)

let find_index t cname =
  match column_position t cname with
  | None -> None
  | Some pos -> List.find_opt (fun ix -> ix.idx_col = pos) t.indexes

let index_lookup (ix : index) (t : t) (v : Value.t) : Value.t array list =
  match Hashtbl.find_opt ix.idx_map v with
  | None -> []
  | Some positions -> List.rev_map (fun i -> t.rows.(i)) positions

(* Distinct-count estimate for a column (exact, computed on demand;
   cached by Stats).  Lock-guarded: it walks the rows and must not
   observe a half-applied mutation. *)
let distinct_count t cname =
  match column_position t cname with
  | None -> 0
  | Some pos ->
      Mutex.protect t.lock (fun () ->
          let seen = Hashtbl.create 1024 in
          for i = 0 to t.nrows - 1 do
            Hashtbl.replace seen t.rows.(i).(pos) ()
          done;
          Hashtbl.length seen)
