(* Fault-injectable file I/O for the durability layer.

   Every byte the WAL and snapshot writers persist goes through this
   module, so one seeded fault specification can kill the writer at an
   exact I/O operation and the chaos harness (test/recover_main.ml)
   can sweep every crash point deterministically.  It is the I/O-side
   sibling of the executor's operator fault family in
   [lib/exec/faults.ml] (re-exported there as [Faults.Io]): same
   philosophy — immutable spec, per-run mutable state, splitmix64
   streams — applied to writes and fsyncs instead of operator
   evaluations.

   The four fault kinds model distinct failure physics:

   - [Short_write]: the process dies mid-write; only a prefix of the
     buffer reaches the file.  Data written *before* the crash
     survives (process death does not empty the kernel page cache).
   - [Torn_write]: the write completes at full length but the tail is
     garbage — the classic torn page.  The process dies immediately
     after.
   - [Bit_flip]: one seeded bit of one write is flipped and the writer
     continues, oblivious — media corruption discovered only at
     recovery time, by checksum.
   - [Fsync_lie]: fsync returns success but persists nothing (a
     battery-less write cache on power loss).  The crash happens at
     the next I/O operation; at cleanup, every file is truncated back
     to its last *honest* fsync watermark, so the acknowledged-but-
     lost window is exactly what recovery must cope with.

   Crash simulation is in-process: the targeted operation raises
   [Crash]; the harness catches it, calls [crash_cleanup] (which
   applies the survival semantics above and closes every fd), and then
   reopens the store with a clean environment — the moral equivalent
   of kill -9 + restart, but sweepable and seeded. *)

type kind = Short_write | Torn_write | Bit_flip | Fsync_lie

let kind_to_string = function
  | Short_write -> "short-write"
  | Torn_write -> "torn-write"
  | Bit_flip -> "bit-flip"
  | Fsync_lie -> "fsync-lie"

let kind_of_string = function
  | "short-write" -> Some Short_write
  | "torn-write" -> Some Torn_write
  | "bit-flip" -> Some Bit_flip
  | "fsync-lie" -> Some Fsync_lie
  | _ -> None

type spec = {
  kind : kind;
  at_op : int;
      (** 1-based index of the targeted operation: writes and fsyncs
          share one counter, except [Fsync_lie] which counts fsyncs
          only (targeting a write with a lying fsync is meaningless) *)
  seed : int;  (** positions the torn-tail garbage / flipped bit *)
}

exception Crash of { kind : kind; op : int }

let crash_to_string (kind : kind) (op : int) =
  Printf.sprintf "injected I/O crash: %s at operation #%d" (kind_to_string kind) op

(* "io:torn-write:17", "io:bit-flip:4:seed:9" — the harness / CLI
   surface syntax, deliberately shaped like Exec.Faults specs. *)
let parse (s : string) : (spec, string) result =
  let int_of v = try Ok (int_of_string v) with _ -> Error ("bad integer: " ^ v) in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "io"; k; n ] | [ "io"; k; n; "seed"; _ ] as parts -> (
      match kind_of_string k with
      | None -> Error ("unknown I/O fault kind: " ^ k)
      | Some kind ->
          let* at_op = int_of n in
          let* seed =
            match parts with
            | [ _; _; _; _; sd ] -> int_of sd
            | _ -> Ok 0
          in
          Ok { kind; at_op; seed })
  | _ -> Error ("cannot parse I/O fault spec: " ^ s)

let spec_to_string (s : spec) =
  if s.seed = 0 then Printf.sprintf "io:%s:%d" (kind_to_string s.kind) s.at_op
  else Printf.sprintf "io:%s:%d:seed:%d" (kind_to_string s.kind) s.at_op s.seed

(* Splitmix64, matching the stream discipline of Exec.Faults.Rng
   (storage cannot depend on exec — the executor scans tables — so the
   few lines are duplicated rather than the dependency inverted). *)
let mix (state : int64 ref) : int64 =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Per-file bookkeeping.  [written] and [synced] are absolute offsets;
   [synced] only advances on an honest fsync, so [crash_cleanup] can
   truncate a lied-to file back to its durable prefix. *)
type tracked = {
  path : string;
  mutable fd : Unix.file_descr option;  (** [None] once closed *)
  mutable written : int;
  mutable synced : int;
}

type env = {
  spec : spec option;
  mutable ops : int;  (** writes + fsyncs *)
  mutable fsyncs : int;
  mutable lied : bool;  (** a lying fsync happened; crash at next op *)
  mutable dead : bool;  (** after [Crash]: every further op re-raises *)
  rng : int64 ref;
  mutable files : tracked list;  (** every file touched, newest first *)
}

let env ?spec () : env =
  let seed = match spec with Some s -> s.seed | None -> 0 in
  { spec;
    ops = 0;
    fsyncs = 0;
    lied = false;
    dead = false;
    rng = ref (Int64.of_int ((seed * 2) + 1));
    files = [];
  }

let op_count (e : env) = e.ops
let crashed (e : env) = e.dead

type file = { env : env; t : tracked }

let die (e : env) (kind : kind) : 'a =
  e.dead <- true;
  raise (Crash { kind; op = e.ops })

(* Raised before performing any operation once the environment is dead
   or a lying fsync armed the crash: the caller's next touch of the
   disk is where the process "dies". *)
let check_alive (e : env) : unit =
  if e.dead then
    die e (match e.spec with Some s -> s.kind | None -> Short_write)
  else
    match e.spec with
    | Some { kind = Fsync_lie; _ } when e.lied -> die e Fsync_lie
    | _ -> ()

let track (e : env) (path : string) (fd : Unix.file_descr) ~(written : int) : file =
  let t = { path; fd = Some fd; written; synced = written } in
  e.files <- t :: e.files;
  { env = e; t }

let create_file (e : env) (path : string) : file =
  check_alive e;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  track e path fd ~written:0

let open_append (e : env) (path : string) ~(trunc_to : int option) : file =
  check_alive e;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let size =
    match trunc_to with
    | Some n ->
        Unix.ftruncate fd n;
        n
    | None -> (Unix.fstat fd).Unix.st_size
  in
  ignore (Unix.lseek fd size Unix.SEEK_SET);
  track e path fd ~written:size

let fd_exn (f : file) : Unix.file_descr =
  match f.t.fd with
  | Some fd -> fd
  | None -> invalid_arg ("Io_faults: operation on closed file " ^ f.t.path)

let write_all (fd : Unix.file_descr) (b : Bytes.t) (len : int) : unit =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let write (f : file) (b : Bytes.t) : unit =
  let e = f.env in
  check_alive e;
  e.ops <- e.ops + 1;
  let len = Bytes.length b in
  let fd = fd_exn f in
  match e.spec with
  | Some ({ kind = Short_write; at_op; _ } as s) when e.ops = at_op ->
      let keep = len / 2 in
      write_all fd b keep;
      f.t.written <- f.t.written + keep;
      die e s.kind
  | Some ({ kind = Torn_write; at_op; _ } as s) when e.ops = at_op ->
      (* full-length write, garbage tail: the torn page *)
      let torn = Bytes.copy b in
      let from = len / 2 in
      for i = from to len - 1 do
        Bytes.set torn i (Char.chr (Int64.to_int (Int64.logand (mix e.rng) 0xFFL)))
      done;
      write_all fd torn len;
      f.t.written <- f.t.written + len;
      die e s.kind
  | Some { kind = Bit_flip; at_op; seed = _ } when e.ops = at_op && len > 0 ->
      let flipped = Bytes.copy b in
      let byte = Int64.to_int (Int64.rem (Int64.shift_right_logical (mix e.rng) 1)
                                  (Int64.of_int len)) in
      let bit = Int64.to_int (Int64.logand (mix e.rng) 7L) in
      Bytes.set flipped byte
        (Char.chr (Char.code (Bytes.get flipped byte) lxor (1 lsl bit)));
      write_all fd flipped len;
      f.t.written <- f.t.written + len
      (* no crash: the writer sails on, none the wiser *)
  | _ ->
      write_all fd b len;
      f.t.written <- f.t.written + len

let fsync (f : file) : unit =
  let e = f.env in
  check_alive e;
  e.ops <- e.ops + 1;
  e.fsyncs <- e.fsyncs + 1;
  match e.spec with
  | Some { kind = Fsync_lie; at_op; _ } when e.fsyncs = at_op ->
      (* report success, persist nothing; the next op crashes *)
      e.lied <- true
  | _ ->
      Unix.fsync (fd_exn f);
      f.t.synced <- f.t.written

let close (f : file) : unit =
  match f.t.fd with
  | None -> ()
  | Some fd ->
      Unix.close fd;
      f.t.fd <- None

let rename (e : env) (src : string) (dst : string) : unit =
  check_alive e;
  Unix.rename src dst

(* Apply the survival semantics of the armed fault kind and close
   every fd, simulating what the filesystem holds after the process is
   gone.  Under [Fsync_lie] the unsynced suffix of every file vanishes
   (power loss); under the other kinds everything written survives
   (process death keeps the page cache). *)
let crash_cleanup (e : env) : unit =
  let lose_unsynced =
    match e.spec with Some { kind = Fsync_lie; _ } -> true | _ -> false
  in
  List.iter
    (fun (t : tracked) ->
      (match t.fd with
      | Some fd ->
          Unix.close fd;
          t.fd <- None
      | None -> ());
      if lose_unsynced && Sys.file_exists t.path then begin
        let fd = Unix.openfile t.path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd (min t.synced (Unix.fstat fd).Unix.st_size);
        Unix.close fd
      end)
    e.files;
  e.files <- [];
  e.dead <- true
