(** CRC-32 (IEEE 802.3) over strings and bytes, kept as an [int]
    masked to 32 bits.  Covers every durable byte the storage layer
    writes; see {!Codec}, {!Wal} and {!Snapshot}. *)

(** [string ?init s ~pos ~len] folds the byte range into a running
    CRC; chain regions by passing the previous result as [init].
    @raise Invalid_argument when the range is out of bounds. *)
val string : ?init:int -> string -> pos:int -> len:int -> int

val bytes : ?init:int -> Bytes.t -> pos:int -> len:int -> int

(** CRC of a whole string. *)
val of_string : string -> int
