(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

   Every durable byte this storage layer writes — WAL record headers
   and payloads, snapshot page payloads, snapshot section headers, the
   whole-file commit footer — is covered by one of these checksums, so
   a torn write, a bit flip or a misdirected read is detected instead
   of being replayed into the database as data.

   Checksums are kept as OCaml [int]s masked to 32 bits: the values fit
   a 63-bit immediate, avoid Int32 boxing on the WAL hot path (one
   append = one fsync; the CRC must never be what shows up in a
   profile), and serialize as plain u32 little-endian. *)

let table : int array =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let mask = 0xFFFFFFFF

(* Fold [len] bytes of [s] starting at [pos] into a running CRC.
   [init] defaults to the empty-string CRC so independent regions can
   be checksummed with a single call; chain calls by passing the
   previous result. *)
let string ?(init = 0) (s : string) ~(pos : int) ~(len : int) : int =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Checksum.string: range out of bounds";
  let c = ref (lnot init land mask) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  lnot !c land mask

let bytes ?init (b : Bytes.t) ~pos ~len : int =
  string ?init (Bytes.unsafe_to_string b) ~pos ~len

let of_string (s : string) : int = string s ~pos:0 ~len:(String.length s)
