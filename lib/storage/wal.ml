(* Write-ahead log: the journal that makes load/append mutations
   durable before they are acknowledged.

   One WAL file per snapshot epoch ([wal-<epoch>.log]); a mutation is
   serialized, written and fsync'd *before* the in-memory table is
   touched, so an acknowledged mutation is always on disk and a crash
   mid-write loses only the unacknowledged record at the tail.

   On-disk layout (everything little-endian; see Codec):

     file header (28 bytes):
       magic    8   "SQWAL001"
       epoch    8   snapshot epoch this log extends
       start    8   sequence number of the first record this log will
                    hold (so an empty-but-valid log still pins the
                    global sequence for recovery)
       hcrc     4   CRC-32 of the 24 bytes above

     record (32-byte header + payload):
       magic    4   "WREC"
       seq      8   global sequence number (dense across epochs)
       gen      8   table mutation generation AFTER applying
       len      4   payload length
       pcrc     4   CRC-32 of the payload
       hcrc     4   CRC-32 of the 28 bytes above (magic..pcrc)
       payload      op tag, table name, rows (Codec encoding)

   Reading distinguishes the two ways a log can be bad:

   - Torn tail: the last record is short, or its checksum fails and
     nothing valid follows.  That is the expected residue of a crash
     mid-append — the record was never acknowledged — so recovery
     truncates it and replays the clean prefix.
   - Mid-log corruption: a record fails its checksum but a *valid*
     record (magic + header CRC + advancing seq) exists beyond it.
     Records after the bad one were acknowledged and cannot be
     replayed without a hole, so recovery must refuse with
     [Storage_corrupt] rather than silently drop acknowledged data.

   The resync scan that tells them apart searches the remaining bytes
   for the record magic and validates the candidate header — the same
   trick journaled filesystems and Raft logs use.

   Note the inherent ambiguity this leaves (documented in DESIGN.md
   §14): a bit flip inside the *final* record is indistinguishable
   from a torn write of that record, so it is truncated as a torn
   tail.  The lost record was acknowledged, but every surviving prefix
   is still exact — corruption never manufactures wrong rows. *)

module Value = Relalg.Value

let file_magic = "SQWAL001"
let record_magic = "WREC"
let header_len = 28
let rec_header_len = 32

type op =
  | Load of string * Value.t array list  (** replace table contents *)
  | Append of string * Value.t array  (** append one row *)

type entry = { seq : int; gen : int; op : op }

let op_table = function Load (t, _) -> t | Append (t, _) -> t

(* ---------------- serialization ----------------------------------- *)

let encode_op (op : op) : string =
  let b = Buffer.create 64 in
  (match op with
  | Load (table, rows) ->
      Codec.add_u8 b 0;
      Codec.add_str b table;
      Codec.add_i64 b (List.length rows);
      List.iter (Codec.add_row b) rows
  | Append (table, row) ->
      Codec.add_u8 b 1;
      Codec.add_str b table;
      Codec.add_row b row);
  Buffer.contents b

let decode_op (payload : string) : op =
  let c = Codec.cursor payload in
  let op =
    match Codec.get_u8 c ~what:"WAL op tag" with
    | 0 ->
        let table = Codec.get_str c ~what:"WAL table name" in
        let n = Codec.get_i64 c ~what:"WAL load row count" in
        if n < 0 then Codec.corrupt "negative WAL load row count %d" n;
        (* explicit loop: List.init's application order is unspecified
           and the cursor reads are side-effecting *)
        let rows = ref [] in
        for _ = 1 to n do
          rows := Codec.get_row c :: !rows
        done;
        Load (table, List.rev !rows)
    | 1 ->
        let table = Codec.get_str c ~what:"WAL table name" in
        Append (table, Codec.get_row c)
    | t -> Codec.corrupt "unknown WAL op tag %d" t
  in
  if Codec.remaining c <> 0 then
    Codec.corrupt "%d trailing bytes after WAL op" (Codec.remaining c);
  op

let encode_record ~(seq : int) ~(gen : int) (op : op) : Bytes.t =
  let payload = encode_op op in
  let b = Buffer.create (rec_header_len + String.length payload) in
  Buffer.add_string b record_magic;
  Codec.add_i64 b seq;
  Codec.add_i64 b gen;
  Codec.add_u32 b (String.length payload);
  Codec.add_u32 b (Checksum.of_string payload);
  let hcrc = Checksum.string (Buffer.contents b) ~pos:0 ~len:28 in
  Codec.add_u32 b hcrc;
  Buffer.add_string b payload;
  Buffer.to_bytes b

let encode_file_header ~(epoch : int) ~(start_seq : int) : Bytes.t =
  let b = Buffer.create header_len in
  Buffer.add_string b file_magic;
  Codec.add_i64 b epoch;
  Codec.add_i64 b start_seq;
  Codec.add_u32 b (Checksum.string (Buffer.contents b) ~pos:0 ~len:24);
  Buffer.to_bytes b

(* ---------------- writer ------------------------------------------ *)

type writer = {
  file : Io_faults.file;
  path : string;
  mutable next_seq : int;
}

let path (w : writer) = w.path
let next_seq (w : writer) = w.next_seq

(* Fresh log for a new epoch: header written and fsync'd immediately,
   so an empty-but-valid log is distinguishable from a missing one. *)
let create (env : Io_faults.env) ~(path : string) ~(epoch : int) ~(next_seq : int) :
    writer =
  let file = Io_faults.create_file env path in
  Io_faults.write file (encode_file_header ~epoch ~start_seq:next_seq);
  Io_faults.fsync file;
  { file; path; next_seq }

(* Reopen the current epoch's log for appending after recovery;
   [trunc_to] first cuts a torn tail at that byte offset. *)
let reopen (env : Io_faults.env) ~(path : string) ~(epoch : int) ~(next_seq : int)
    ~(trunc_to : int option) : writer =
  ignore epoch;
  let file = Io_faults.open_append env path ~trunc_to in
  { file; path; next_seq }

(* The durability contract: the record is on disk (write + fsync)
   before [append] returns, so the caller may acknowledge and apply
   the mutation.  One write call per record — the torn-write fault
   tears *within* a record, as a real sector-spanning write would. *)
let append (w : writer) ~(gen : int) (op : op) : int =
  let seq = w.next_seq in
  Io_faults.write w.file (encode_record ~seq ~gen op);
  Io_faults.fsync w.file;
  w.next_seq <- seq + 1;
  seq

let close (w : writer) : unit = Io_faults.close w.file

(* ---------------- reader ------------------------------------------ *)

type tail =
  | Clean  (** every byte parsed into valid records *)
  | Torn of int
      (** valid prefix ends at this byte offset; the rest is the
          residue of a crashed append and must be truncated *)

(* Is there a valid-looking record header at [pos] whose seq advances
   past [after_seq]?  Used to tell mid-log corruption from a torn
   tail. *)
let valid_header_at (s : string) (pos : int) ~(after_seq : int) : bool =
  String.length s - pos >= rec_header_len
  && String.sub s pos 4 = record_magic
  &&
  let c = Codec.cursor (String.sub s pos rec_header_len) in
  c.Codec.pos <- 4;
  let seq = Codec.get_i64 c ~what:"resync seq" in
  let _gen = Codec.get_i64 c ~what:"resync gen" in
  let _len = Codec.get_u32 c ~what:"resync len" in
  let _pcrc = Codec.get_u32 c ~what:"resync pcrc" in
  let hcrc = Codec.get_u32 c ~what:"resync hcrc" in
  hcrc = Checksum.string s ~pos ~len:28 && seq > after_seq

(* Scan forward for any valid record header after [pos]: finding one
   means acknowledged records exist beyond the corruption. *)
let exists_record_beyond (s : string) (pos : int) ~(after_seq : int) : bool =
  let n = String.length s in
  let rec scan i =
    if i + rec_header_len > n then false
    else
      match String.index_from_opt s i record_magic.[0] with
      | None -> false
      | Some j ->
          if j + rec_header_len > n then false
          else if valid_header_at s j ~after_seq then true
          else scan (j + 1)
  in
  scan pos

type log = {
  log_epoch : int;
  log_start_seq : int;
  log_entries : entry list;
  log_tail : tail;
  log_size : int;  (** file size in bytes *)
}

(* Parse a whole log file.  Raises [Storage_corrupt] on a bad file
   header or mid-log corruption. *)
let read (path : string) : log =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  if len < header_len then
    Codec.corrupt "WAL %s: truncated file header (%d bytes)" path len;
  if String.sub s 0 8 <> file_magic then
    Codec.corrupt "WAL %s: bad file magic" path;
  let hc = Codec.cursor (String.sub s 8 20) in
  let epoch = Codec.get_i64 hc ~what:"WAL epoch" in
  let start_seq = Codec.get_i64 hc ~what:"WAL start seq" in
  let hcrc = Codec.get_u32 hc ~what:"WAL header crc" in
  if hcrc <> Checksum.string s ~pos:0 ~len:24 then
    Codec.corrupt "WAL %s: file header checksum mismatch" path;
  let entries = ref [] in
  (* seed the density check: the first record must carry [start_seq] *)
  let last_seq = ref (start_seq - 1) in
  let rec loop (pos : int) : tail =
    if pos = len then Clean
    else
      (* Classify a parse failure at [pos]: torn tail if nothing valid
         follows, mid-log corruption otherwise. *)
      let bad (why : string) ~(scan_from : int) : tail =
        if exists_record_beyond s scan_from ~after_seq:!last_seq then
          Codec.corrupt
            "WAL %s: corrupt record at offset %d (%s) with valid records beyond \
             it — acknowledged data would be lost"
            path pos why
        else Torn pos
      in
      if len - pos < rec_header_len then bad "short header" ~scan_from:(pos + 1)
      else if String.sub s pos 4 <> record_magic then
        bad "bad record magic" ~scan_from:(pos + 1)
      else begin
        let hc = Codec.cursor (String.sub s (pos + 4) (rec_header_len - 4)) in
        let seq = Codec.get_i64 hc ~what:"record seq" in
        let gen = Codec.get_i64 hc ~what:"record gen" in
        let plen = Codec.get_u32 hc ~what:"record len" in
        let pcrc = Codec.get_u32 hc ~what:"record pcrc" in
        let hcrc = Codec.get_u32 hc ~what:"record hcrc" in
        if hcrc <> Checksum.string s ~pos ~len:28 then
          (* header untrustworthy, plen included: resync from pos+1 *)
          bad "header checksum mismatch" ~scan_from:(pos + 1)
        else if seq <> !last_seq + 1 then
          bad (Printf.sprintf "sequence gap (%d after %d)" seq !last_seq)
            ~scan_from:(pos + 1)
        else if len - pos - rec_header_len < plen then
          bad "short payload" ~scan_from:(pos + 1)
        else begin
          let payload = String.sub s (pos + rec_header_len) plen in
          if Checksum.of_string payload <> pcrc then
            (* header is valid so the extent is known: anything beyond
               this record decides torn vs corrupt *)
            bad "payload checksum mismatch" ~scan_from:(pos + rec_header_len + plen)
          else begin
            let op = decode_op payload in
            entries := { seq; gen; op } :: !entries;
            last_seq := seq;
            loop (pos + rec_header_len + plen)
          end
        end
      end
  in
  let tail = loop header_len in
  { log_epoch = epoch;
    log_start_seq = start_seq;
    log_entries = List.rev !entries;
    log_tail = tail;
    log_size = len;
  }
