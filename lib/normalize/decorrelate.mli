(** Removal of Apply — the paper's Section 2.3, Figure 4.

    Apply operators are pushed towards the leaves until the right child
    no longer references the left child's columns, then degenerate into
    join variants (identities (1)/(2)).  Identities (3)-(9) handle the
    operators in between; Class 2 identities (5)-(7), which duplicate
    the outer, only fire when [class2] is set, matching the paper's
    normalization policy.  Residual Applies execute correlated. *)

open Relalg
open Relalg.Algebra

type config = { env : Props.env; class2 : bool }

(** A broken internal invariant of the pass, with the offending
    expression/plan rendered — diagnosable instead of an anonymous
    assert.  Classified by [Engine.Errors.of_exn] (Normalize phase,
    recoverable: the correlated fallback plan skips the pass). *)
exception Internal_error of string

val contains_apply : op -> bool

(** Rewrite every decorrelatable Apply in the tree. *)
val remove : config -> op -> op

(** Push a single Apply node ([kind], [pred], left, right) downward.
    Exposed for unit tests. *)
val push : config -> join_kind -> expr -> op -> op -> op
