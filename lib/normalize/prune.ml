(* Column pruning.

   Decorrelation (identities (8)/(9)) groups by ALL columns of the
   outer relation; only a key plus the referenced columns are actually
   needed.  This pass walks top-down with the set of columns required
   by the context and

   - narrows GroupBy/LocalGroupBy grouping keys: a non-required
     grouping column may be dropped when the remaining keys still
     contain a key of the input (the key functionally determines the
     dropped column, so the groups are unchanged);
   - drops unreferenced aggregates and projection items.

   Pruning does not cross UnionAll/Except (positional operators). *)

open Relalg
open Relalg.Algebra

let expr_cols e = Expr.cols e

let rec prune ~(env : Props.env) (required : Col.Set.t) (o : op) : op =
  let p = prune ~env in
  match o with
  | TableScan _ | ConstTable _ | SegmentHole _ | CseScan _ -> o
  | Select (pred, i) -> Select (pred, p (Col.Set.union required (expr_cols pred)) i)
  | Project (projs, i) ->
      let kept = List.filter (fun pr -> Col.Set.mem pr.out required) projs in
      let kept = if kept = [] then [ List.hd projs ] else kept in
      let below =
        List.fold_left
          (fun acc pr -> Col.Set.union acc (expr_cols pr.expr))
          Col.Set.empty kept
      in
      Project (kept, p below i)
  | Join { kind; pred; left; right } ->
      let req = Col.Set.union required (expr_cols pred) in
      Join { kind; pred; left = p req left; right = p req right }
  | Apply { kind; pred; left; right } ->
      (* the right side's outer references must survive in the left *)
      let req =
        Col.Set.union required (Col.Set.union (expr_cols pred) (Op.free_cols right))
      in
      Apply { kind; pred; left = p req left; right = p req right }
  | SegmentApply { seg_cols; outer; inner } ->
      let hole_srcs =
        let acc = ref Col.Set.empty in
        let rec walk o =
          (match o with
          | SegmentHole { src; _ } -> acc := Col.Set.union !acc (Col.Set.of_list src)
          | _ -> ());
          List.iter walk (Op.children o)
        in
        walk inner;
        !acc
      in
      let req_outer =
        Col.Set.union required (Col.Set.union (Col.Set.of_list seg_cols) hole_srcs)
      in
      SegmentApply { seg_cols; outer = p req_outer outer; inner = p required inner }
  | GroupBy { keys; aggs; input } ->
      let keys', aggs', below = prune_group ~env required keys aggs input in
      GroupBy { keys = keys'; aggs = aggs'; input = p below input }
  | LocalGroupBy { keys; aggs; input } ->
      let keys', aggs', below = prune_group ~env required keys aggs input in
      LocalGroupBy { keys = keys'; aggs = aggs'; input = p below input }
  | ScalarAgg { aggs; input } ->
      let aggs' = List.filter (fun (a : agg) -> Col.Set.mem a.out required) aggs in
      let aggs' = if aggs' = [] then [ List.hd aggs ] else aggs' in
      let below =
        List.fold_left
          (fun acc (a : agg) ->
            match agg_input_expr a.fn with
            | None -> acc
            | Some e -> Col.Set.union acc (expr_cols e))
          Col.Set.empty aggs'
      in
      ScalarAgg { aggs = aggs'; input = p below input }
  | UnionAll (l, r) ->
      (* positional: keep full width on both sides *)
      UnionAll (p (Op.schema_set l) l, p (Op.schema_set r) r)
  | Except (l, r) -> Except (p (Op.schema_set l) l, p (Op.schema_set r) r)
  | Max1row i -> Max1row (p required i)
  | Rownum { out; input } -> Rownum { out; input = p required input }

and prune_group ~env required keys (aggs : agg list) input =
  let aggs' = List.filter (fun (a : agg) -> Col.Set.mem a.out required) aggs in
  let needed = List.filter (fun k -> Col.Set.mem k required) keys in
  (* a grouping column may be dropped when the kept columns functionally
     determine it — the groups are then exactly the same *)
  let closure = Props.fd_closure ~env input (Col.Set.of_list needed) in
  let keys' =
    needed
    @ List.filter
        (fun k -> (not (List.exists (Col.equal k) needed)) && not (Col.Set.mem k closure))
        keys
  in
  (* grouping with no keys at all would change semantics (vector vs
     scalar aggregation); keep at least one *)
  let keys' = if keys' = [] && keys <> [] then [ List.hd keys ] else keys' in
  let below =
    List.fold_left
      (fun acc (a : agg) ->
        match agg_input_expr a.fn with
        | None -> acc
        | Some e -> Col.Set.union acc (expr_cols e))
      (Col.Set.of_list keys') aggs'
  in
  (keys', aggs', below)
