(** Query normalization driver (Section 4, "Query normalization").

    Pipeline:
    1. remove scalar/relational mutual recursion (Apply introduction) —
       always possible;
    2. remove correlations (Apply removal) — usually possible; Class 2/3
       subqueries remain as residual Applies;
    3. simplify outerjoins into joins under derived null-rejection;
    4. cleanup: merge/eliminate trivial operators, push selections.

    The {!stages} record exposes each intermediate tree so that callers
    (tests, the EXPLAIN facility, the decorrelation walkthrough example)
    can observe the Figure 5 progression. *)

open Relalg

(** The pass modules, re-exported: [normalize.ml] is the library's root
    module, so submodules are reachable only through these aliases. *)
module Apply_intro = Apply_intro

module Decorrelate = Decorrelate
module Oj_simplify = Oj_simplify
module Simplify = Simplify
module Prune = Prune
module Classify = Classify

type stages = {
  bound : Algebra.op;  (** binder output: mutual recursion *)
  applied : Algebra.op;  (** after Apply introduction (Figure 2 shape) *)
  decorrelated : Algebra.op;  (** after Apply removal (Figure 5, line 2) *)
  oj_simplified : Algebra.op;  (** after outerjoin simplification (line 4) *)
  normalized : Algebra.op;  (** after cleanup/pushdown: the optimizer input *)
  subquery_class : Classify.cls;
}

type options = {
  env : Props.env;
  decorrelate : bool;  (** master switch for Apply removal *)
  simplify_oj : bool;
  class2 : bool;  (** allow identities (5)-(7) during normalization *)
}

val default_options : Props.env -> options

(** Run the full pipeline, keeping every intermediate tree. *)
val run : options -> Algebra.op -> stages

(** [run], returning only the normalized tree. *)
val normalize : options -> Algebra.op -> Algebra.op
