(* Outerjoin simplification (Section 1.2, "Simplify outerjoin").

   A left outerjoin is simplified to a join when some filter above it
   rejects NULL on a column of the join's inner (right) side: the padded
   rows would be filtered anyway.  The framework is Galindo-Legaria &
   Rosenthal (TODS 22(1)); the paper adds the derivation of
   null-rejection THROUGH GroupBy operators, which is what fires on the
   decorrelated tree of Figure 5 (the filter 1000000 < X rejects NULL
   on the aggregate output X = sum(o_totalprice), hence on
   o_totalprice below the GroupBy, hence the outerjoin becomes a join).

   The pass walks top-down carrying the set of columns on which NULLs
   are known to be rejected by the context. *)

open Relalg
open Relalg.Algebra

let restrict (rejected : Col.Set.t) (o : op) = Col.Set.inter rejected (Op.schema_set o)

let rec simplify_with (rejected : Col.Set.t) (o : op) : op =
  match o with
  | Select (p, i) ->
      let rejected = Col.Set.union rejected (Expr.null_rejected_cols p) in
      Select (p, simplify_with (restrict rejected i) i)
  | Project (projs, i) ->
      (* a rejected output column whose defining expression is strict
         rejects the expression's input columns *)
      let below =
        List.fold_left
          (fun acc p ->
            if Col.Set.mem p.out rejected then Col.Set.union acc (Expr.strict_cols p.expr)
            else acc)
          Col.Set.empty projs
      in
      Project (projs, simplify_with (restrict below i) i)
  | Join { kind; pred; left; right } ->
      let pred_rejects = Expr.null_rejected_cols pred in
      let kind =
        match kind with
        | LeftOuter
          when not (Col.Set.is_empty (Col.Set.inter rejected (Op.schema_set right))) ->
            Inner
        | k -> k
      in
      let lrej, rrej =
        match kind with
        | Inner ->
            ( Col.Set.union rejected pred_rejects,
              Col.Set.union rejected pred_rejects )
        | LeftOuter ->
            (* the join keeps left rows regardless of pred; context
               rejections flow to both sides (right-side rows with a
               rejected column NULL either join and die above, or do
               not join — in which case fresh padding replaces them,
               identically filtered above) *)
            (Col.Set.union rejected pred_rejects, rejected)
        | Semi -> (Col.Set.union rejected pred_rejects, pred_rejects)
        | Anti -> (rejected, Col.Set.empty)
      in
      Join
        { kind;
          pred;
          left = simplify_with (restrict lrej left) left;
          right = simplify_with (restrict rrej right) right
        }
  | Apply { kind; pred; left; right } ->
      (* same variant logic; the right side starts a fresh context *)
      let pred_rejects = Expr.null_rejected_cols pred in
      let kind =
        match kind with
        | LeftOuter
          when not (Col.Set.is_empty (Col.Set.inter rejected (Op.schema_set right))) ->
            Inner
        | k -> k
      in
      let lrej =
        match kind with
        | Inner | Semi -> Col.Set.union rejected pred_rejects
        | LeftOuter -> Col.Set.union rejected pred_rejects
        | Anti -> rejected
      in
      Apply
        { kind;
          pred;
          left = simplify_with (restrict lrej left) left;
          right = simplify_with Col.Set.empty right
        }
  | GroupBy { keys; aggs; input } ->
      (* null-rejection THROUGH GroupBy (the paper's extension):
         - a rejected grouping column passes through;
         - a rejected aggregate output for sum/min/max/avg with strict
           input rejects the input columns below, PROVIDED no
           count-star aggregate is computed (dropping an all-NULL
           padding row must not change any other aggregate; NULL-strict
           aggregates skip it, count-star would not) *)
      let from_keys = Col.Set.inter rejected (Col.Set.of_list keys) in
      (* A column c may be marked rejected below iff
         (i) every aggregate skips rows where c is NULL — its input is
             strict and mentions c (count-star never skips, so its
             presence empties the set), and
         (ii) some REJECTED aggregate output is NULL-yielding
             (sum/min/max/avg), so that a group consisting only of
             dropped rows was filtered above anyway. *)
      let per_agg_cols =
        List.map
          (fun (a : agg) ->
            match a.fn with
            | CountStar -> Col.Set.empty
            | Count e | Sum e | Min e | Max e | Avg e ->
                if Expr.strict e then Expr.strict_cols e else Col.Set.empty)
          aggs
      in
      let candidate =
        match per_agg_cols with
        | [] -> Col.Set.empty
        | s :: rest -> List.fold_left Col.Set.inter s rest
      in
      let some_rejected_null_yielding =
        List.exists
          (fun (a : agg) ->
            Col.Set.mem a.out rejected
            && match a.fn with Sum _ | Min _ | Max _ | Avg _ -> true | _ -> false)
          aggs
      in
      let from_aggs = if some_rejected_null_yielding then candidate else Col.Set.empty in
      let below = Col.Set.union from_keys from_aggs in
      GroupBy { keys; aggs; input = simplify_with (restrict below input) input }
  | LocalGroupBy { keys; aggs; input } ->
      LocalGroupBy { keys; aggs; input = simplify_with Col.Set.empty input }
  | ScalarAgg { aggs; input } ->
      ScalarAgg { aggs; input = simplify_with Col.Set.empty input }
  | SegmentApply { seg_cols; outer; inner } ->
      SegmentApply
        { seg_cols;
          outer = simplify_with (restrict rejected outer) outer;
          inner = simplify_with Col.Set.empty inner
        }
  | UnionAll (l, r) -> UnionAll (simplify_with Col.Set.empty l, simplify_with Col.Set.empty r)
  | Except (l, r) -> Except (simplify_with Col.Set.empty l, simplify_with Col.Set.empty r)
  | Max1row i -> Max1row (simplify_with rejected i)
  | Rownum r -> Rownum { r with input = simplify_with (restrict rejected r.input) r.input }
  | TableScan _ | ConstTable _ | SegmentHole _ | CseScan _ -> o

let simplify (o : op) : op = simplify_with Col.Set.empty o
