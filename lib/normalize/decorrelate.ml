(* Removal of Apply — the paper's Section 2.3, Figure 4.

   Apply operators are pushed towards the leaves until the right child
   no longer references the left child's columns, at which point the
   Apply degenerates into the corresponding join variant:

   (1) R A⊗ E            = R ⊗true E            if E uncorrelated
   (2) R A⊗ (σp E)       = R ⊗p E               if E uncorrelated
   (3) R A× (σp E)       = σp (R A× E)          — realized by merging p
                                                  into the Apply's
                                                  predicate slot
   (4) R A× (πv E)       = πv∪cols(R) (R A× E)
   (5) R A× (E1 ∪ E2)    = (R A× E1) ∪ (R A× E2)         [Class 2]
   (6) R A× (E1 − E2)    = (R A× E1) − (R A× E2)         [Class 2]
   (7) R A× (E1 × E2)    = (R A× E1) ⋈R.key (R A× E2)    [Class 2]
   (8) R A× (G_{A,F} E)  = G_{A∪cols(R),F} (R A× E)
   (9) R A× (G¹_F E)     = G_{cols(R),F'} (R A^LOJ E)

   Our Apply carries a predicate slot (R A⊗ (σpred E) is one node), so
   (2)/(3) become predicate merging, for every join variant at once.

   Identities (7)-(9) require a key on R; when none is derivable a
   Rownum manufactures one.  Identity (9) rewrites count aggregates
   over a non-nullable column of E to detect outerjoin padding; when E
   exposes no such column the Apply is kept (it still executes,
   correlated).

   Class 2 identities (5)-(7) duplicate R; following the paper they are
   NOT applied during normalization (the subquery stays correlated) but
   can be enabled for cost-based exploration via [~class2:true].

   One-sided correlated joins below a cross Apply need no duplication:
       R A× (E1 ⋈q E2) = (R A× E1) ⋈q E2       if E2 uncorrelated
   (and symmetrically, with a column-reordering projection). *)

open Relalg
open Relalg.Algebra

type config = { env : Props.env; class2 : bool }

(* A broken internal invariant (a route reached with an impossible
   Apply flavor, a keyed subtree without a key) — typed so that
   fuzzer-found crashes are diagnosable instead of anonymous asserts.
   Classified by [Engine.Errors.of_exn] into the Normalize phase. *)
exception Internal_error of string

let internal fmt = Format.kasprintf (fun s -> raise (Internal_error s)) fmt

let contains_apply o =
  Op.exists_op (function Apply _ -> true | _ -> false) o

(* Ensure R exposes a key; manufacture one with Rownum if needed. *)
let with_key cfg (r : op) : op =
  if Props.has_key ~env:cfg.env r then r
  else Rownum { out = Col.fresh "rn" Value.TInt; input = r }

(* Rewrite aggregates for identity (9): valid when agg(empty) =
   agg({null}), i.e. everything except count; counts become counts of a
   non-nullable column of E so that outerjoin padding yields 0. *)
let adjust_aggs_for_loj ~(env : Props.env) (aggs : agg list) (e : op) : agg list option =
  let nn = Col.Set.inter (Props.nonnullable ~env e) (Op.schema_set e) in
  let probe = Col.Set.choose_opt nn in
  let ecols = Op.schema_set e in
  (* NULL-padding nulls exactly E's columns; the aggregate input must go
     NULL with them *)
  let strict_on_e e' = not (Col.Set.is_empty (Col.Set.inter (Expr.strict_cols e') ecols)) in
  let count_probe (a : agg) =
    match probe with
    | Some c ->
        Some
          { a with
            fn = Count (Case ([ (Not (IsNull (ColRef c)), Const (Value.Int 1)) ], None))
          }
    | None -> None
  in
  let adjust (a : agg) =
    match a.fn with
    | CountStar -> count_probe a
    | Count e' ->
        (* count of non-null e': on the padded row a strict e' is NULL
           and the count is 0 naturally; a non-null constant counts
           exactly the matched rows, which the probe rewrite computes *)
        if strict_on_e e' then Some a
        else (
          match e' with
          | Const v when not (Value.is_null v) -> count_probe a
          | _ -> None)
    | Sum e' | Min e' | Max e' | Avg e' ->
        (* identity (9) needs agg({null}) = agg(empty) = NULL: true for
           strict inputs *)
        if strict_on_e e' then Some a else None
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | a :: rest -> ( match adjust a with Some a' -> go (a' :: acc) rest | None -> None)
  in
  go [] aggs

(* positional projection wrapper: force output columns [cols] *)
let project_to (cols : Col.t list) (o : op) : op =
  Project (List.map (fun c -> { expr = ColRef c; out = c }) cols, o)

let rec remove cfg (o : op) : op =
  match o with
  | Apply { kind; pred; left; right } ->
      let left = remove cfg left and right = remove cfg right in
      push cfg kind pred left right
  | o -> Op.with_children o (List.map (remove cfg) (Op.children o))

(* Push one Apply node downwards. *)
and push cfg kind pred (r : op) (e : op) : op =
  if not (Op.correlated_with e r) then
    (* identities (1)/(2): degenerate into a join variant *)
    Join { kind; pred; left = r; right = e }
  else
    match e with
    | Select (q, e1) ->
        (* predicate merge: covers (2)/(3) for every variant *)
        push cfg kind (conj pred q) r e1
    | Project (projs, e1) -> push_project cfg kind pred r projs e1
    | ScalarAgg { aggs; input } -> push_scalar_agg cfg kind pred r aggs input
    | GroupBy { keys; aggs; input } when kind = Inner ->
        push_vector_groupby cfg pred r keys aggs input
    | Max1row e1 when Props.max_one_row ~env:cfg.env e1 ->
        (* the compiler detects a single row from keys: elide Max1row *)
        push cfg kind pred r e1
    | Join { kind = jk; pred = q; left = e1; right = e2 } when kind = Inner ->
        push_inner_join cfg pred r jk q e1 e2
    | UnionAll (e1, e2) when kind = Inner && cfg.class2 ->
        (* identity (5): duplicates R — Class 2 *)
        let arity_cols o = Op.schema o in
        let b1 = push cfg Inner pred r e1 in
        let r2, m = Op.clone_fresh r in
        let e2' = Op.rename m e2 in
        let pred2 = Expr.rename ~map_op:Op.rename m pred in
        (* pred references e2's columns directly (not e1's): the apply
           predicate was written against the union's schema = e1's
           cols; remap positionally e1 -> e2 *)
        let pos_map =
          List.fold_left2
            (fun acc (c1 : Col.t) (c2 : Col.t) -> Col.IdMap.add c1.id c2 acc)
            Col.IdMap.empty (Op.schema e1) (Op.schema e2)
        in
        let pred2 = Expr.rename ~map_op:Op.rename pos_map pred2 in
        let b2 = push cfg Inner pred2 r2 e2' in
        (* realign branch 2 positionally to branch 1's schema *)
        let c1 = arity_cols b1 in
        let b2 = project_to_positional c1 (Op.schema b2) b2 in
        UnionAll (project_to c1 b1, b2)
    | Except (e1, e2) when kind = Inner && cfg.class2 ->
        (* identity (6) *)
        let b1 = push cfg Inner pred r e1 in
        let r2, m = Op.clone_fresh r in
        let e2' = Op.rename m e2 in
        let pos_map =
          List.fold_left2
            (fun acc (c1 : Col.t) (c2 : Col.t) -> Col.IdMap.add c1.id c2 acc)
            Col.IdMap.empty (Op.schema e1) (Op.schema e2)
        in
        let pred2 = Expr.rename ~map_op:Op.rename m (Expr.rename ~map_op:Op.rename pos_map pred) in
        let b2 = push cfg Inner pred2 r2 e2' in
        let c1 = Op.schema b1 in
        Except (project_to c1 b1, project_to_positional c1 (Op.schema b2) b2)
    | _ -> (
        (* generic fallbacks per variant *)
        match kind with
        | Semi | Anti -> push_semi_anti_generic cfg kind pred r e
        | Inner | LeftOuter ->
            (* stuck: keep the Apply (Class 2/3 or unsupported shape);
               it still executes correlated *)
            Apply { kind; pred; left = r; right = e })

(* positional re-projection: produce [target] cols from [source] cols *)
and project_to_positional (target : Col.t list) (source : Col.t list) (o : op) : op =
  let n = List.length target in
  let src = ref source in
  let projs =
    List.map
      (fun (t : Col.t) ->
        match !src with
        | s :: rest ->
            src := rest;
            { expr = ColRef s; out = t }
        | [] -> invalid_arg "project_to_positional: arity mismatch")
      target
  in
  ignore n;
  Project (projs, o)

(* --- identity (4): Apply over Project ------------------------------- *)

and push_project cfg kind pred r projs e1 =
  let sub = Expr.subst_of_projs projs in
  let pred' = Expr.subst sub pred in
  match kind with
  | Semi | Anti ->
      (* E's columns are discarded by the semijoin: drop the projection *)
      push cfg kind pred' r e1
  | Inner ->
      let inner = push cfg Inner pred' r e1 in
      let pass = List.map (fun c -> { expr = ColRef c; out = c }) (Op.schema r) in
      Project (pass @ projs, inner)
  | LeftOuter ->
      (* pulling the projection above the outerjoin evaluates it on the
         NULL padding; sound when every projected expression goes NULL
         as soon as some column OF THE INNER SIDE is NULL (outer-only
         expressions would survive the padding and must be guarded) *)
      let e1cols = Op.schema_set e1 in
      let strict_on_inner p =
        not (Col.Set.is_empty (Col.Set.inter (Expr.strict_cols p.expr) e1cols))
      in
      if List.for_all strict_on_inner projs then begin
        let inner = push cfg LeftOuter pred' r e1 in
        let pass = List.map (fun c -> { expr = ColRef c; out = c }) (Op.schema r) in
        Project (pass @ projs, inner)
      end
      else if contains_apply (push cfg LeftOuter pred' r e1) then
        Apply { kind; pred; left = r; right = Project (projs, e1) }
      else begin
        (* non-strict projection above a decorrelatable tree: guard each
           expression with a match indicator from a non-nullable inner
           column so padding still yields NULL *)
        match Col.Set.choose_opt (Props.nonnullable ~env:cfg.env e1) with
        | Some probe when Col.Set.mem probe (Op.schema_set e1) ->
            let inner = push cfg LeftOuter pred' r e1 in
            let pass = List.map (fun c -> { expr = ColRef c; out = c }) (Op.schema r) in
            let guard p =
              { p with
                expr = Case ([ (Not (IsNull (ColRef probe)), p.expr) ], None)
              }
            in
            Project (pass @ List.map guard projs, inner)
        | _ -> Apply { kind; pred; left = r; right = Project (projs, e1) }
      end

(* --- identity (9): Apply over ScalarAgg ----------------------------- *)

(* Class-2 unnesting of a scalar aggregate over UNION ALL without
   duplicating the outer: aggregate each branch separately (chaining
   two Applies over the SAME outer) and combine the partial results
   scalar-wise.  Equivalent in effect to identity (5) + (9) but avoids
   the common subexpression, which is why it is our preferred class-2
   strategy when [class2] is enabled. *)
and push_scalar_agg_over_union cfg kind pred r (aggs : agg list) e1 e2 : op option =
  if List.length (Op.schema e1) <> List.length (Op.schema e2) then None
  else
  let pos_map =
    List.fold_left2
      (fun acc (c1 : Col.t) (c2 : Col.t) -> Col.IdMap.add c1.id c2 acc)
      Col.IdMap.empty (Op.schema e1) (Op.schema e2)
  in
  let combine fn a b =
    let null_chain x y op_else =
      Case ([ (IsNull x, y); (IsNull y, x) ], Some op_else)
    in
    match fn with
    | Sum _ -> Some (null_chain a b (Arith (Add, a, b)))
    | Min _ -> Some (null_chain a b (Case ([ (Cmp (Le, a, b), a) ], Some b)))
    | Max _ -> Some (null_chain a b (Case ([ (Cmp (Ge, a, b), a) ], Some b)))
    | CountStar | Count _ -> Some (Arith (Add, a, b))
    | Avg _ -> None
  in
  let fresh_branch_aggs rename =
    List.map
      (fun (a : agg) ->
        let fn =
          match agg_input_expr a.fn with
          | None -> a.fn
          | Some e -> agg_with_input a.fn (rename e)
        in
        { fn; out = Col.clone a.out })
      aggs
  in
  let aggs1 = fresh_branch_aggs (fun e -> e) in
  let aggs2 = fresh_branch_aggs (Expr.rename ~map_op:Op.rename pos_map) in
  let combined =
    List.map2
      (fun (a : agg) ((a1 : agg), (a2 : agg)) ->
        Option.map
          (fun e -> { expr = e; out = a.out })
          (combine a.fn (ColRef a1.out) (ColRef a2.out)))
      aggs
      (List.combine aggs1 aggs2)
  in
  if List.exists Option.is_none combined then None
  else begin
    let a1 = push cfg Inner true_ r (ScalarAgg { aggs = aggs1; input = e1 }) in
    if contains_apply a1 then None
    else begin
      let a2 = push cfg Inner true_ a1 (ScalarAgg { aggs = aggs2; input = e2 }) in
      if contains_apply a2 then None
      else begin
        let pass = List.map (fun c -> { expr = ColRef c; out = c }) (Op.schema r) in
        let proj = Project (pass @ List.map Option.get combined, a2) in
        let guarded = if is_true_const pred then proj else Select (pred, proj) in
        match kind with
        | Inner | LeftOuter -> Some guarded
        | Semi -> Some (project_to (Op.schema r) guarded)
        | Anti -> None
      end
    end
  end

and push_scalar_agg cfg kind pred r aggs input =
  match input, kind with
  | UnionAll (e1, e2), (Inner | LeftOuter) when cfg.class2 -> (
      match push_scalar_agg_over_union cfg kind pred r aggs e1 e2 with
      | Some t -> t
      | None -> push_scalar_agg_plain cfg kind pred r aggs input)
  | _ -> push_scalar_agg_plain cfg kind pred r aggs input

and push_scalar_agg_plain cfg kind pred r aggs input =
  match kind with
  | Inner | LeftOuter -> (
      (* a scalar aggregate returns exactly one row, so cross and outer
         Apply coincide *)
      match adjust_aggs_for_loj ~env:cfg.env aggs input with
      | None -> Apply { kind; pred; left = r; right = ScalarAgg { aggs; input } }
      | Some aggs' ->
          let r' = with_key cfg r in
          let inner = push cfg LeftOuter true_ r' input in
          if contains_apply inner then
            (* could not fully decorrelate below: keep original *)
            Apply { kind; pred; left = r; right = ScalarAgg { aggs; input } }
          else begin
            let g = GroupBy { keys = Op.schema r'; aggs = aggs'; input = inner } in
            if is_true_const pred then g else Select (pred, g)
          end)
  | Semi | Anti ->
      (* exactly one row: semi keeps r iff pred holds on it, anti iff it
         does not hold (pred FALSE or UNKNOWN) *)
      let cross = push cfg Inner true_ r (ScalarAgg { aggs; input }) in
      if contains_apply cross then
        Apply { kind; pred; left = r; right = ScalarAgg { aggs; input } }
      else
        let cond =
          match kind with
          | Semi -> pred
          | Anti -> Or (Not pred, IsNull pred)
          | Inner | LeftOuter ->
              internal
                "push_scalar_agg: %s Apply reached the semi/anti route (pred %s over %s)"
                (join_kind_name kind) (Expr.to_string pred) (Pp.label r)
        in
        project_to (Op.schema r) (Select (cond, cross))

(* --- identity (8): cross Apply over vector GroupBy ------------------ *)

and push_vector_groupby cfg pred r keys aggs input =
  let r' = with_key cfg r in
  let inner = push cfg Inner true_ r' input in
  if contains_apply inner then
    Apply { kind = Inner; pred; left = r; right = GroupBy { keys; aggs; input } }
  else begin
    let g = GroupBy { keys = Op.schema r' @ keys; aggs; input = inner } in
    if is_true_const pred then g else Select (pred, g)
  end

(* --- one-sided correlated joins under cross Apply ------------------- *)

and push_inner_join cfg pred r jk q e1 e2 =
  let q_corr = not (Col.Set.is_empty (Col.Set.inter (Expr.cols q) (Op.schema_set r))) in
  let e1corr = Op.correlated_with e1 r and e2corr = Op.correlated_with e2 r in
  match jk with
  | Inner ->
      if e2corr && not e1corr && not q_corr then begin
        (* R A× (E1 ⋈q E2) = π(E1 ⋈q (R A× E2)) reordered to R,E1,E2 *)
        let inner = push cfg Inner true_ r e2 in
        if contains_apply inner then
          Apply { kind = Inner; pred; left = r;
                  right = Join { kind = jk; pred = q; left = e1; right = e2 } }
        else begin
          let j = Join { kind = Inner; pred = q; left = e1; right = inner } in
          let target = Op.schema r @ Op.schema e1 @ Op.schema e2 in
          let reordered = project_to target j in
          if is_true_const pred then reordered else Select (pred, reordered)
        end
      end
      else if (e1corr || q_corr) && not e2corr then begin
        (* fold q into the Apply of the left component *)
        let inner = push cfg Inner true_ r e1 in
        if contains_apply inner then
          Apply { kind = Inner; pred; left = r;
                  right = Join { kind = jk; pred = q; left = e1; right = e2 } }
        else
          let j = Join { kind = Inner; pred = q; left = inner; right = e2 } in
          if is_true_const pred then j else Select (pred, j)
      end
      else if cfg.class2 then begin
        (* identity (7): both sides correlated — duplicate R on a key *)
        let r' = with_key cfg r in
        let key =
          match Props.keys ~env:cfg.env r' with
          | k :: _ -> Col.Set.elements k
          | [] ->
              internal "identity (7): with_key produced a keyless outer:\n%s"
                (Pp.to_string r')
        in
        let b1 = push cfg Inner true_ r' e1 in
        let r2, m = Op.clone_fresh r' in
        let e2' = Op.rename m e2 in
        let b2 = push cfg Inner true_ r2 e2' in
        let key2 = List.map (fun (c : Col.t) ->
            match Col.IdMap.find_opt c.id m with Some c' -> c' | None -> c) key in
        let key_pred =
          conj_list
            (List.map2 (fun (a : Col.t) (b : Col.t) -> Cmp (Eq, ColRef a, ColRef b)) key key2)
        in
        let q' = Expr.rename ~map_op:Op.rename m q in
        (* q references e2 columns: they were renamed; e1 columns and R
           columns: R columns in q resolve to the first copy (kept) *)
        let j = Join { kind = Inner; pred = conj key_pred q'; left = b1; right = b2 } in
        (* project away the duplicated R copy, restore R,E1,E2 order *)
        let e2_cols_renamed =
          List.map (fun (c : Col.t) ->
              match Col.IdMap.find_opt c.id m with Some c' -> c' | None -> c)
            (Op.schema e2)
        in
        let target_src = Op.schema r' @ Op.schema e1 @ e2_cols_renamed in
        let target_out = Op.schema r' @ Op.schema e1 @ Op.schema e2 in
        let projs =
          List.map2 (fun (src : Col.t) (out : Col.t) -> { expr = ColRef src; out }) target_src target_out
        in
        let reordered = Project (projs, j) in
        if is_true_const pred then reordered else Select (pred, reordered)
      end
      else
        Apply { kind = Inner; pred; left = r;
                right = Join { kind = jk; pred = q; left = e1; right = e2 } }
  | LeftOuter ->
      if e1corr && (not e2corr) && not q_corr then begin
        (* R A× (E1 LOJq E2) = (R A× E1) LOJq E2 when only E1 correlated *)
        let inner = push cfg Inner true_ r e1 in
        if contains_apply inner then
          Apply { kind = Inner; pred; left = r;
                  right = Join { kind = jk; pred = q; left = e1; right = e2 } }
        else
          let j = Join { kind = LeftOuter; pred = q; left = inner; right = e2 } in
          if is_true_const pred then j else Select (pred, j)
      end
      else
        Apply { kind = Inner; pred; left = r;
                right = Join { kind = jk; pred = q; left = e1; right = e2 } }
  | Semi | Anti ->
      if (e1corr || q_corr) && not e2corr then begin
        let inner = push cfg Inner true_ r e1 in
        if contains_apply inner then
          Apply { kind = Inner; pred; left = r;
                  right = Join { kind = jk; pred = q; left = e1; right = e2 } }
        else
          let j = Join { kind = jk; pred = q; left = inner; right = e2 } in
          if is_true_const pred then j else Select (pred, j)
      end
      else
        Apply { kind = Inner; pred; left = r;
                right = Join { kind = jk; pred = q; left = e1; right = e2 } }

(* --- generic count-based removal for semi/anti Apply ----------------- *)

and push_semi_anti_generic cfg kind pred r e =
  (* Primary route, via the paper's count rewrite:
       R A^semi_p E = π_R (σ_{cnt>0} (G_{cols(R')}[cnt := count(probe)]
                                        (R' A^LOJ_p E)))
     and anti with cnt = 0.  Needs a key on R, a non-nullable probe
     column on E, and a fully decorrelatable LOJ Apply.

     Secondary route for semijoins when the LOJ stalls (e.g. E is a
     vector GroupBy): distinct over the cross Apply,
       R A^semi_p E = π_R (G_{cols(R')} (π_{R'} (σ_p (R' A× E)))),
     which needs no padding and therefore composes with identity (8). *)
  let count_route () =
    match
      Col.Set.choose_opt (Col.Set.inter (Props.nonnullable ~env:cfg.env e) (Op.schema_set e))
    with
    | None -> None
    | Some probe ->
        let r' = with_key cfg r in
        let inner = push cfg LeftOuter pred r' e in
        if contains_apply inner then None
        else begin
          let cnt = { fn = Count (ColRef probe); out = Col.fresh "cnt" Value.TInt } in
          let g = GroupBy { keys = Op.schema r'; aggs = [ cnt ]; input = inner } in
          let cond =
            match kind with
            | Semi -> Cmp (Gt, ColRef cnt.out, Const (Value.Int 0))
            | Anti -> Cmp (Eq, ColRef cnt.out, Const (Value.Int 0))
            | Inner | LeftOuter ->
                internal
                  "push_semi_anti: %s Apply reached the count route (pred %s over %s)"
                  (join_kind_name kind) (Expr.to_string pred) (Pp.label e)
          in
          Some (project_to (Op.schema r) (Select (cond, g)))
        end
  in
  let distinct_route () =
    if kind <> Semi then None
    else begin
      let r' = with_key cfg r in
      let cross = push cfg Inner pred r' e in
      if contains_apply cross then None
      else
        Some
          (project_to (Op.schema r)
             (GroupBy
                { keys = Op.schema r'; aggs = []; input = project_to (Op.schema r') cross }))
    end
  in
  match count_route () with
  | Some t -> t
  | None -> (
      match distinct_route () with
      | Some t -> t
      | None -> Apply { kind; pred; left = r; right = e })
