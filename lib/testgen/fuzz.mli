(** Differential fuzzing driver.

    Each case: generate a correlated-subquery query ({!Qgen}), run it
    under the full optimizer and under the correlated-only oracle, and
    compare result bags ({!Engine.check}).  The properties checked are
    the paper's orthogonality claim (every decorrelated plan computes
    the correlated plan's bag) and the robustness contract of this
    codebase (no untyped exception ever escapes the pipeline).

    Under fault injection the differential check is replaced by the
    resilience property of the fault sweep: a fault-injected query
    either agrees with the clean correlated oracle (possibly after
    degrading) or dies with a typed error.

    Every case is identified by its (seed, case) pair; failures shrink
    to a structurally minimal reproducer before reporting. *)

type outcome =
  | Agree  (** bags matched (or, under faults, the contract held) *)
  | Mismatch of string  (** differential disagreement; formatted report *)
  | Skipped of string  (** budget trip / injected fault — no verdict *)
  | Failed of string  (** generator bug, invalid plan, or untyped crash *)

type case_result = {
  seed : int;
  case : int;
  sql : string;
  outcome : outcome;
  minimized : string option;  (** shrunken reproducer, for failures *)
}

type summary = {
  total : int;
  agreed : int;
  skipped : int;
  failures : case_result list;  (** mismatches, pipeline failures, crashes *)
}

type config = {
  seed : int;
  cases : int;  (** run cases 0 .. cases-1 *)
  only_case : int option;  (** replay a single case *)
  budget : Exec.Budget.t option;
  fault : Exec.Faults.spec option;
  shrink : bool;
  exec_mode : Engine.exec_mode;
      (** engine for the candidate side of every differential check;
          [`Vector] turns the sweep into a row-vs-vector harness *)
  candidate : Optimizer.Config.t;
      (** optimizer config for the candidate side; the reference stays
          the correlated-only oracle *)
  property_check : bool;
      (** assert the symbolic property engine's inferred facts (derived
          keys, non-nullability, cardinality intervals) against the
          candidate's actual result bag on every case *)
  cache : bool;
      (** caching-tier contract instead of the differential check:
          every case runs twice against a cache-enabled engine — cold,
          then with perturbed literals so the warm run rebinds the
          cached template — and each run is bag-compared against a
          fresh uncached optimization of the same SQL *)
}

val default_config : seed:int -> cases:int -> config

(** Significant digits for float comparison: plans that join in a
    different order sum floats in a different order, and the fuzzer
    must not report that last-ulp drift as a disagreement. *)
val float_digits : int

(** Classify one SQL string under the differential contract. *)
val classify :
  ?budget:Exec.Budget.t ->
  ?mode:Engine.exec_mode ->
  ?candidate:Optimizer.Config.t ->
  ?property_check:bool ->
  Engine.t ->
  string ->
  outcome

val is_failure : outcome -> bool

(** Generate, classify and (on failure) shrink one case. *)
val run_case : config -> Engine.t -> case:int -> case_result

val format_case : case_result -> string

(** Run the configured sweep.  [on_case] observes each result as it
    lands (progress reporting); the summary aggregates at the end. *)
val run : ?on_case:(case_result -> unit) -> config -> Engine.t -> summary

val format_summary : summary -> string
