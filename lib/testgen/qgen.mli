(** Seeded random generation of correlated-subquery SQL.

    The generator walks the TPC-H foreign-key graph to produce queries
    in the paper's territory: nested EXISTS / NOT EXISTS, IN, scalar
    aggregate comparisons, LEFT OUTER JOINs and GROUP BY/HAVING — with
    correlation always along a real FK link, so every query is
    semantically meaningful against the bench catalog.

    Everything is derived from a splitmix64 stream ({!Exec.Faults.Rng}),
    so a failing case is identified by its (seed, case) pair alone and
    replays bit-identically.  Specs are a small IR first, SQL second:
    shrinking works on the IR (delete a predicate, a subquery, a join, a
    grouping) and re-renders, which keeps every shrink candidate
    well-formed. *)

module Rng = Exec.Faults.Rng

(** Catalog model of one table: numeric columns with plausible constant
    ranges, and a representative key column. *)
type tmodel = {
  tname : string;
  key : string;  (** representative key column (first of the primary key) *)
  nums : (string * bool * float * float) list;
      (** (column, integer?, low, high) — constants for predicates are
          drawn from \[low, high\] *)
}

val model : tmodel list

(** @raise Not_found on a table outside the bench catalog. *)
val find_model : string -> tmodel

(** Tables reachable from [t] in one FK hop:
    (other table, my column, other column). *)
val neighbors : string -> (string * string * string) list

(** {2 Query IR} *)

type cmp = Lt | Gt | Le | Ge

val cmp_to_string : cmp -> string

type aggf = Sum | Min | Max | Avg | Count

val agg_to_string : aggf -> string

(** A numeric conjunct: <alias-qualified column> <cmp> <constant>. *)
type num_pred = {
  n_alias : string;
  n_col : string;
  n_cmp : cmp;
  n_const : float;
  n_int : bool;
}

(** A subquery block.  [b_alias = ""] marks the top-level scope, whose
    column references render unqualified; subquery blocks get a fresh
    alias because they may repeat an outer table. *)
type block = {
  b_tbl : tmodel;
  b_alias : string;
  b_correl : (string * string) option;
      (** (my column, rendered outer reference): the correlation equality *)
  b_nums : num_pred list;
  b_subs : sub list;
}

and sub =
  | SExists of bool * block  (** negated?, subquery *)
  | SIn of string * block * string
      (** outer reference IN (select inner column …) *)
  | SAggCmp of string * cmp * aggf * string option * block
      (** outer reference <cmp> (select agg(col) …); [None] = count star *)

type join_spec = {
  j_tbl : tmodel;
  j_my : string;  (** join column on the joined table *)
  j_outer : string;  (** join column on the outer table *)
  j_left : bool;  (** LEFT OUTER JOIN when set, plain JOIN otherwise *)
}

type group_spec = {
  g_key : string;  (** grouping column (on the outer table) *)
  g_agg : aggf;
  g_agg_col : string option;
      (** aggregated column (join side); [None] = count star *)
  g_having : (cmp * float) option;
}

type spec = {
  s_body : block;  (** outer table, its predicates and subqueries *)
  s_join : join_spec option;
  s_join_nums : num_pred list;  (** numeric conjuncts on the joined table *)
  s_group : group_spec option;  (** only generated when a join is present *)
}

(** Render a spec as SQL. *)
val render : spec -> string

(** The deterministic spec for a (seed, case) pair. *)
val spec_of : seed:int -> case:int -> spec

(** [render (spec_of ~seed ~case)]. *)
val sql_of : seed:int -> case:int -> string

(** One-step shrink candidates: each is the spec with one predicate,
    subquery, join or grouping removed (or simplified), so every
    candidate is well-formed SQL. *)
val shrink_spec : spec -> spec list

(** Greedy shrinking: repeatedly take the first {!shrink_spec}
    candidate that still satisfies [still_failing], up to [max_steps]
    (default 200) rounds. *)
val minimize : ?max_steps:int -> (spec -> bool) -> spec -> spec
