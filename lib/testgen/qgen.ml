(* Seeded random generation of correlated-subquery SQL.

   The generator walks the TPC-H foreign-key graph to produce queries
   in the paper's territory: nested EXISTS / NOT EXISTS, IN, scalar
   aggregate comparisons, LEFT OUTER JOINs and GROUP BY/HAVING — with
   correlation always along a real FK link, so every query is
   semantically meaningful against the bench catalog.

   Everything is derived from a splitmix64 stream ({!Exec.Faults.Rng},
   the same generator the fault-injection harness uses), so a failing
   case is identified by its (seed, case) pair alone and replays
   bit-identically.  Specs are a small IR first, SQL second: shrinking
   works on the IR (delete a predicate, a subquery, a join, a grouping)
   and re-renders, which keeps every shrink candidate well-formed. *)

module Rng = Exec.Faults.Rng

(* ------------------------------------------------------------------ *)
(* Catalog model: numeric columns with plausible constant ranges, and  *)
(* the FK links correlation can ride on.                               *)
(* ------------------------------------------------------------------ *)

type tmodel = {
  tname : string;
  key : string;  (** representative key column (first of the primary key) *)
  nums : (string * bool * float * float) list;
      (** (column, integer?, low, high) — constants for predicates are
          drawn from \[low, high\] *)
}

let model : tmodel list =
  [ { tname = "customer";
      key = "c_custkey";
      nums = [ ("c_acctbal", false, -999., 9999.); ("c_custkey", true, 1., 300.) ]
    };
    { tname = "orders";
      key = "o_orderkey";
      nums = [ ("o_totalprice", false, 1000., 450000.); ("o_orderkey", true, 1., 3000.) ]
    };
    { tname = "lineitem";
      key = "l_orderkey";
      nums =
        [ ("l_quantity", false, 1., 50.);
          ("l_extendedprice", false, 900., 100000.);
          ("l_discount", false, 0., 0.1)
        ]
    };
    { tname = "part";
      key = "p_partkey";
      nums = [ ("p_size", true, 1., 50.); ("p_retailprice", false, 900., 2000.) ]
    };
    { tname = "supplier"; key = "s_suppkey"; nums = [ ("s_acctbal", false, -999., 9999.) ] };
    { tname = "partsupp";
      key = "ps_partkey";
      nums = [ ("ps_availqty", true, 1., 9999.); ("ps_supplycost", false, 1., 1000.) ]
    };
    { tname = "nation"; key = "n_nationkey"; nums = [ ("n_nationkey", true, 0., 24.) ] };
    { tname = "region"; key = "r_regionkey"; nums = [ ("r_regionkey", true, 0., 4.) ] }
  ]

let find_model name = List.find (fun m -> m.tname = name) model

(* FK links, stated once; [neighbors] looks both directions. *)
let links : (string * string * string * string) list =
  [ ("orders", "o_custkey", "customer", "c_custkey");
    ("lineitem", "l_orderkey", "orders", "o_orderkey");
    ("lineitem", "l_partkey", "part", "p_partkey");
    ("lineitem", "l_suppkey", "supplier", "s_suppkey");
    ("customer", "c_nationkey", "nation", "n_nationkey");
    ("supplier", "s_nationkey", "nation", "n_nationkey");
    ("partsupp", "ps_partkey", "part", "p_partkey");
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey");
    ("nation", "n_regionkey", "region", "r_regionkey")
  ]

(* tables reachable from [t] in one FK hop: (other, my column, other column) *)
let neighbors (t : string) : (string * string * string) list =
  List.filter_map
    (fun (a, ca, b, cb) ->
      if a = t then Some (b, ca, cb) else if b = t then Some (a, cb, ca) else None)
    links

(* ------------------------------------------------------------------ *)
(* Query IR                                                            *)
(* ------------------------------------------------------------------ *)

type cmp = Lt | Gt | Le | Ge

let cmp_to_string = function Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="

type aggf = Sum | Min | Max | Avg | Count

let agg_to_string = function
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"
  | Count -> "count"

(* a numeric conjunct: <alias-qualified column> <cmp> <constant> *)
type num_pred = { n_alias : string; n_col : string; n_cmp : cmp; n_const : float; n_int : bool }

(* A subquery block.  [b_alias = ""] marks the top-level scope, whose
   column references render unqualified (every block holds exactly one
   table, and TPC-H column names are globally unique, so unqualified
   references in the outer block are unambiguous; subquery blocks get a
   fresh alias because they may repeat an outer table). *)
type block = {
  b_tbl : tmodel;
  b_alias : string;
  b_correl : (string * string) option;
      (** (my column, rendered outer reference): the correlation equality *)
  b_nums : num_pred list;
  b_subs : sub list;
}

and sub =
  | SExists of bool * block  (** negated?, subquery *)
  | SIn of string * block * string  (** outer reference IN (select inner column …) *)
  | SAggCmp of string * cmp * aggf * string option * block
      (** outer reference <cmp> (select agg(col) …); [None] = count star *)

type join_spec = {
  j_tbl : tmodel;
  j_my : string;  (** join column on the joined table *)
  j_outer : string;  (** join column on the outer table *)
  j_left : bool;  (** LEFT OUTER JOIN when set, plain JOIN otherwise *)
}

type group_spec = {
  g_key : string;  (** grouping column (on the outer table) *)
  g_agg : aggf;
  g_agg_col : string option;  (** aggregated column (join side); [None] = count star *)
  g_having : (cmp * float) option;
}

type spec = {
  s_body : block;  (** outer table, its predicates and subqueries *)
  s_join : join_spec option;
  s_join_nums : num_pred list;  (** numeric conjuncts on the joined table *)
  s_group : group_spec option;  (** only generated when a join is present *)
}

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let ref_col (alias : string) (col : string) : string =
  if alias = "" then col else alias ^ "." ^ col

let const_to_string ~(is_int : bool) (v : float) : string =
  if is_int then string_of_int (int_of_float v) else Printf.sprintf "%.2f" v

let render_num (n : num_pred) : string =
  Printf.sprintf "%s %s %s" (ref_col n.n_alias n.n_col) (cmp_to_string n.n_cmp)
    (const_to_string ~is_int:n.n_int n.n_const)

let rec block_conjuncts (b : block) : string list =
  (match b.b_correl with
  | Some (my, outer) -> [ Printf.sprintf "%s = %s" (ref_col b.b_alias my) outer ]
  | None -> [])
  @ List.map render_num b.b_nums
  @ List.map render_sub b.b_subs

and render_select (sel : string) (b : block) : string =
  let cs = block_conjuncts b in
  Printf.sprintf "select %s from %s %s%s" sel b.b_tbl.tname b.b_alias
    (if cs = [] then "" else " where " ^ String.concat " and " cs)

and render_sub = function
  | SExists (neg, b) ->
      Printf.sprintf "%sexists (%s)"
        (if neg then "not " else "")
        (render_select (ref_col b.b_alias b.b_tbl.key) b)
  | SIn (outer_ref, b, inner_col) ->
      Printf.sprintf "%s in (%s)" outer_ref (render_select (ref_col b.b_alias inner_col) b)
  | SAggCmp (outer_ref, c, agg, col, b) ->
      let agg_exp =
        match col with
        | None -> "count(*)"
        | Some col -> Printf.sprintf "%s(%s)" (agg_to_string agg) (ref_col b.b_alias col)
      in
      Printf.sprintf "%s %s (%s)" outer_ref (cmp_to_string c) (render_select agg_exp b)

let render (s : spec) : string =
  let where =
    List.map render_num s.s_body.b_nums
    @ List.map render_num s.s_join_nums
    @ List.map render_sub s.s_body.b_subs
  in
  let from =
    s.s_body.b_tbl.tname
    ^
    match s.s_join with
    | None -> ""
    | Some j ->
        Printf.sprintf " %sjoin %s on %s = %s"
          (if j.j_left then "left outer " else "")
          j.j_tbl.tname j.j_my j.j_outer
  in
  let where_s = if where = [] then "" else " where " ^ String.concat " and " where in
  match s.s_group with
  | None ->
      let m = s.s_body.b_tbl in
      let extra =
        match m.nums with (c, _, _, _) :: _ when c <> m.key -> ", " ^ c | _ -> ""
      in
      Printf.sprintf "select %s%s from %s%s" m.key extra from where_s
  | Some g ->
      let agg_exp =
        match g.g_agg_col with
        | None -> "count(*)"
        | Some c -> Printf.sprintf "%s(%s)" (agg_to_string g.g_agg) c
      in
      let having =
        match g.g_having with
        | None -> ""
        | Some (c, v) ->
            (* the workload-proven HAVING shape: constant <cmp> aggregate *)
            Printf.sprintf " having %s %s %s"
              (const_to_string ~is_int:false v)
              (cmp_to_string c) agg_exp
      in
      Printf.sprintf "select %s, %s as agg0 from %s%s group by %s%s" g.g_key agg_exp from
        where_s g.g_key having

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let gen_cmp (rng : Rng.t) : cmp = Rng.pick rng [ Lt; Gt; Le; Ge ]

let gen_num (rng : Rng.t) (alias : string) (m : tmodel) : num_pred =
  let col, is_int, lo, hi = Rng.pick rng m.nums in
  let v = lo +. (Rng.float rng *. (hi -. lo)) in
  let v = if is_int then Float.of_int (int_of_float v) else v in
  { n_alias = alias; n_col = col; n_cmp = gen_cmp rng; n_const = v; n_int = is_int }

let rec gen_nums (rng : Rng.t) (alias : string) (m : tmodel) (n : int) : num_pred list =
  if n <= 0 then [] else gen_num rng alias m :: gen_nums rng alias m (n - 1)

(* Generate one subquery predicate against a scope of visible tables
   ((alias, model); alias "" = the top level).  Correlation rides an FK
   link from a visible table to the subquery's table. *)
let rec gen_sub (rng : Rng.t) ~(fresh : unit -> string) ~(depth : int)
    ~(scope : (string * tmodel) list) : sub option =
  let candidates = List.filter (fun (_, m) -> neighbors m.tname <> []) scope in
  if candidates = [] then None
  else begin
    let oalias, om = Rng.pick rng candidates in
    let itname, ocol, icol = Rng.pick rng (neighbors om.tname) in
    let im = find_model itname in
    let alias = fresh () in
    let correl =
      if Rng.bool rng 0.85 then Some (icol, ref_col oalias ocol) else None
    in
    match Rng.int rng 4 with
    | 0 | 1 ->
        let b = gen_block rng ~fresh ~depth ~alias ~tbl:im ~correl in
        Some (SExists (Rng.bool rng 0.4, b))
    | 2 ->
        (* IN is itself the correlation: outer link column against the
           subquery's select column *)
        let b = gen_block rng ~fresh ~depth ~alias ~tbl:im ~correl:None in
        Some (SIn (ref_col oalias ocol, b, icol))
    | _ ->
        let ocol_n, _, _, _ = Rng.pick rng om.nums in
        let agg = Rng.pick rng [ Sum; Min; Max; Avg; Count ] in
        let agg_col =
          match agg with
          | Count -> None
          | _ ->
              let c, _, _, _ = Rng.pick rng im.nums in
              Some c
        in
        let b = gen_block rng ~fresh ~depth ~alias ~tbl:im ~correl in
        Some (SAggCmp (ref_col oalias ocol_n, gen_cmp rng, agg, agg_col, b))
  end

and gen_block (rng : Rng.t) ~fresh ~depth ~(alias : string) ~(tbl : tmodel)
    ~(correl : (string * string) option) : block =
  let nums = gen_nums rng alias tbl (Rng.int rng 3) in
  let subs =
    (* nest one level deeper with decaying probability; depth caps at 2 *)
    if depth < 2 && Rng.bool rng 0.35 then
      match gen_sub rng ~fresh ~depth:(depth + 1) ~scope:[ (alias, tbl) ] with
      | Some s -> [ s ]
      | None -> []
    else []
  in
  { b_tbl = tbl; b_alias = alias; b_correl = correl; b_nums = nums; b_subs = subs }

let outer_tables = [ "customer"; "orders"; "lineitem"; "part"; "supplier"; "partsupp" ]

let gen_spec (rng : Rng.t) : spec =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "x%d" !counter
  in
  let body_tbl = find_model (Rng.pick rng outer_tables) in
  let join =
    if Rng.bool rng 0.3 then
      match neighbors body_tbl.tname with
      | [] -> None
      | ns ->
          let jt, my, other = Rng.pick rng ns in
          Some { j_tbl = find_model jt; j_my = other; j_outer = my; j_left = Rng.bool rng 0.5 }
    else None
  in
  let join_nums =
    match join with
    | Some j when Rng.bool rng 0.5 -> gen_nums rng "" j.j_tbl 1
    | _ -> []
  in
  let group =
    match join with
    | Some j when Rng.bool rng 0.4 ->
        let agg = Rng.pick rng [ Sum; Min; Max; Avg; Count ] in
        let agg_col, lo, hi =
          match agg with
          | Count -> (None, 1., 10.)
          | _ ->
              let c, _, lo, hi = Rng.pick rng j.j_tbl.nums in
              (Some c, lo, hi)
        in
        let having =
          if Rng.bool rng 0.5 then
            (* SUM scales with group size; stretch its range *)
            let hi = match agg with Sum -> hi *. 10. | _ -> hi in
            Some (gen_cmp rng, lo +. (Rng.float rng *. (hi -. lo)))
          else None
        in
        Some { g_key = body_tbl.key; g_agg = agg; g_agg_col = agg_col; g_having = having }
    | _ -> None
  in
  let scope =
    ("", body_tbl) :: (match join with Some j -> [ ("", j.j_tbl) ] | None -> [])
  in
  let nsubs = 1 + (if Rng.bool rng 0.4 then 1 else 0) in
  let subs =
    List.filter_map
      (fun _ -> gen_sub rng ~fresh ~depth:1 ~scope)
      (List.init nsubs (fun i -> i))
  in
  let body =
    { b_tbl = body_tbl;
      b_alias = "";
      b_correl = None;
      b_nums = gen_nums rng "" body_tbl (Rng.int rng 3);
      b_subs = subs;
    }
  in
  { s_body = body; s_join = join; s_join_nums = join_nums; s_group = group }

(* Deterministic (seed, case) → spec: one fresh stream per case, so a
   case replays identically regardless of which cases ran before it. *)
let spec_of ~(seed : int) ~(case : int) : spec =
  let rng = Rng.create ((seed * 1_000_003) + case) in
  gen_spec rng

let sql_of ~(seed : int) ~(case : int) : string = render (spec_of ~seed ~case)

(* ------------------------------------------------------------------ *)
(* Shrinking: every candidate is one structural deletion away.         *)
(* ------------------------------------------------------------------ *)

let remove_nth i l = List.filteri (fun j _ -> j <> i) l

let replace_nth i x l = List.mapi (fun j y -> if j = i then x else y) l

let rec shrink_block (b : block) : block list =
  List.mapi (fun i _ -> { b with b_nums = remove_nth i b.b_nums }) b.b_nums
  @ List.mapi (fun i _ -> { b with b_subs = remove_nth i b.b_subs }) b.b_subs
  @ List.concat
      (List.mapi
         (fun i s -> List.map (fun s' -> { b with b_subs = replace_nth i s' b.b_subs }) (shrink_sub s))
         b.b_subs)

and shrink_sub (s : sub) : sub list =
  match s with
  | SExists (neg, b) ->
      (if neg then [ SExists (false, b) ] else [])
      @ List.map (fun b' -> SExists (neg, b')) (shrink_block b)
  | SIn (o, b, c) -> List.map (fun b' -> SIn (o, b', c)) (shrink_block b)
  | SAggCmp (o, cm, a, col, b) ->
      List.map (fun b' -> SAggCmp (o, cm, a, col, b')) (shrink_block b)

(* does any top-level subquery or correlation reference a column of the
   joined table?  (References into the top scope render as bare column
   names; nested references carry an "xN." prefix and can never collide.) *)
let references_join (s : spec) : bool =
  match s.s_join with
  | None -> false
  | Some j ->
      let jcols = List.map (fun (c, _, _, _) -> c) j.j_tbl.nums @ [ j.j_tbl.key; j.j_my ] in
      let uses_ref r = List.mem r jcols in
      let rec block_uses (b : block) =
        (match b.b_correl with Some (_, outer) -> uses_ref outer | None -> false)
        || List.exists sub_uses b.b_subs
      and sub_uses = function
        | SExists (_, b) -> block_uses b
        | SIn (o, b, _) -> uses_ref o || block_uses b
        | SAggCmp (o, _, _, _, b) -> uses_ref o || block_uses b
      in
      List.exists sub_uses s.s_body.b_subs

let shrink_spec (s : spec) : spec list =
  (* drop HAVING, then GROUP BY, then the join (with everything that
     depends on it), then individual predicates/subqueries *)
  (match s.s_group with
  | Some g when g.g_having <> None -> [ { s with s_group = Some { g with g_having = None } } ]
  | _ -> [])
  @ (match s.s_group with Some _ -> [ { s with s_group = None } ] | None -> [])
  @ (match s.s_join with
    | Some _ when not (references_join s) ->
        [ { s with s_join = None; s_join_nums = []; s_group = None } ]
    | _ -> [])
  @ List.mapi (fun i _ -> { s with s_join_nums = remove_nth i s.s_join_nums }) s.s_join_nums
  @ List.map (fun b -> { s with s_body = b }) (shrink_block s.s_body)

(* Greedy minimization: keep taking the first one-step shrink that
   still satisfies [still_failing], up to a step bound. *)
let minimize ?(max_steps = 200) (still_failing : spec -> bool) (s : spec) : spec =
  let rec go steps s =
    if steps >= max_steps then s
    else
      match List.find_opt still_failing (shrink_spec s) with
      | Some s' -> go (steps + 1) s'
      | None -> s
  in
  go 0 s
