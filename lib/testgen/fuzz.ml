(* Differential fuzzing driver.

   Each case: generate a correlated-subquery query ({!Qgen}), run it
   under the full optimizer and under the correlated-only oracle, and
   compare result bags ({!Engine.check}).  The properties checked are
   the paper's orthogonality claim (every decorrelated plan computes
   the correlated plan's bag) and the robustness contract of this
   codebase (no untyped exception ever escapes the pipeline).

   Under fault injection the differential check is replaced by the
   resilience property of the fault sweep: a fault-injected query
   either agrees with the clean correlated oracle (possibly after
   degrading) or dies with a typed error.

   Every case is identified by its (seed, case) pair; failures shrink
   to a structurally minimal reproducer before reporting. *)

type outcome =
  | Agree  (** bags matched (or, under faults, the contract held) *)
  | Mismatch of string  (** differential disagreement; formatted report *)
  | Skipped of string  (** budget trip / injected fault — no verdict *)
  | Failed of string  (** generator bug, invalid plan, or untyped crash *)

type case_result = {
  seed : int;
  case : int;
  sql : string;
  outcome : outcome;
  minimized : string option;  (** shrunken reproducer, for failures *)
}

type summary = {
  total : int;
  agreed : int;
  skipped : int;
  failures : case_result list;  (** mismatches, pipeline failures, crashes *)
}

type config = {
  seed : int;
  cases : int;  (** run cases 0 .. cases-1 *)
  only_case : int option;  (** replay a single case *)
  budget : Exec.Budget.t option;
  fault : Exec.Faults.spec option;
  shrink : bool;
  exec_mode : Engine.exec_mode;
      (** engine for the candidate side of every differential check;
          [`Vector] turns the sweep into a row-vs-vector harness *)
  candidate : Optimizer.Config.t;
      (** optimizer config for the candidate side; the reference stays
          the correlated-only oracle.  [correlated_only] here makes the
          candidate retain its Apply operators, so a [`Vector] sweep
          exercises the batched-Apply paths instead of decorrelated
          joins *)
  property_check : bool;
      (** assert the symbolic property engine's inferred facts (derived
          keys, non-nullability, cardinality intervals) against the
          candidate's actual result bag on every case *)
  cache : bool;
      (** caching-tier contract instead of the differential check:
          every case runs twice against a cache-enabled engine — cold,
          then with perturbed literals so the warm run rebinds the
          cached template — and each run is bag-compared against a
          fresh uncached optimization of the same SQL *)
}

let default_config ~seed ~cases =
  { seed;
    cases;
    only_case = None;
    budget = None;
    fault = None;
    shrink = true;
    exec_mode = `Row;
    candidate = Optimizer.Config.full;
    property_check = false;
    cache = false;
  }

(* ------------------------------------------------------------------ *)

(* Floats rendered to 6 significant digits: plans that join in a
   different order sum floats in a different order, and the fuzzer must
   not report that last-ulp drift as a semantic disagreement. *)
let float_digits = 6

let bag rows =
  let value_to_string = function
    | Relalg.Value.Float f -> Printf.sprintf "%.*g" float_digits f
    | v -> Relalg.Value.to_string v
  in
  List.sort compare
    (List.map
       (fun r -> String.concat "|" (Array.to_list (Array.map value_to_string r)))
       rows)

(* Differential classification.  Budget and fault trips carry no
   verdict; everything else that is not agreement is a failure — in a
   fuzzer, even a Bind error is a bug (the generator emitted SQL the
   front end rejects). *)
let classify ?budget ?mode ?candidate ?property_check (eng : Engine.t) (sql : string) :
    outcome =
  match
    try
      `R
        (Engine.Errors.protect ~sql (fun () ->
             Engine.check ?candidate ?budget ?property_check ?mode ~float_digits eng sql))
    with exn -> `Exn exn
  with
  | `R (Ok r) when r.Engine.agree && r.Engine.lint_errors <> [] ->
      (* the bags agree, but the linter proved the plan statically
         broken (e.g. a comparison that can never be satisfied): a
         pipeline bug even when the data does not expose it *)
      Failed ("lint: " ^ String.concat "; " r.Engine.lint_errors)
  | `R (Ok r) when r.Engine.agree -> Agree
  | `R (Ok r) -> Mismatch (Engine.format_check_report r)
  | `R (Error e) -> (
      match e.Engine.Errors.phase with
      | Budget | Fault -> Skipped (Engine.Errors.phase_to_string e.phase)
      | _ -> Failed (Engine.Errors.to_string e))
  | `Exn exn -> Failed ("untyped exception: " ^ Printexc.to_string exn)

(* Resilience classification under an armed fault plan: the result must
   match the clean correlated oracle or die typed. *)
let classify_fault ?budget ~(fspec : Exec.Faults.spec) (eng : Engine.t) (sql : string) :
    outcome =
  match
    Engine.query_checked ~config:Optimizer.Config.correlated_only ?budget eng sql
  with
  | Error e -> (
      match e.Engine.Errors.phase with
      | Budget -> Skipped "budget"
      | _ -> Failed ("oracle: " ^ Engine.Errors.to_string e))
  | Ok oracle -> (
      match
        try
          `R
            (Engine.query_resilient_checked ?budget
               ~faults:(Exec.Faults.create fspec) eng sql)
        with exn -> `Exn exn
      with
      | `R (Ok r) ->
          if bag r.Engine.execution.result.rows = bag oracle.rows then Agree
          else
            Mismatch
              (Printf.sprintf "under fault %s: %d rows vs oracle %d (served by %s)"
                 (Exec.Faults.spec_to_string fspec)
                 (List.length r.Engine.execution.result.rows)
                 (List.length oracle.rows) r.Engine.served_by)
      | `R (Error e) ->
          (* both paths killed: acceptable, but must be typed *)
          Skipped ("killed: " ^ Engine.Errors.phase_to_string e.Engine.Errors.phase)
      | `Exn exn -> Failed ("untyped exception: " ^ Printexc.to_string exn))

(* Deterministically perturb the literal tokens of a SQL string so a
   warm cache run exercises template rebinding with fresh values.
   Both sides of the comparison run the *same* perturbed text, so the
   perturbation cannot change the verdict — only which plan-cache
   entry serves it.  Date literals (STRING right after the DATE
   keyword) are left alone so the text stays parseable. *)
let perturb_literals ~(salt : int) (sql : string) : string =
  let state = ref (((salt * 2654435761) + 97) land 0x3FFFFFFF) in
  let next n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod n
  in
  let rec go prev acc = function
    | [] -> List.rev acc
    | t :: rest ->
        let t' =
          match (prev, t) with
          | Some (Sqlfront.Token.KEYWORD "DATE"), _ -> t
          | _, Sqlfront.Token.INT n -> Sqlfront.Token.INT (n + 1 + next 7)
          | _, Sqlfront.Token.FLOAT f ->
              (* keep the result non-integral: [Token.to_string] renders an
                 integral float as "9024.", which re-tokenizes as INT DOT *)
              let f' = f +. (0.5 *. float_of_int (1 + next 5)) in
              Sqlfront.Token.FLOAT
                (if Float.is_integer f' then f' +. 0.5 else f')
          | _, Sqlfront.Token.STRING s -> Sqlfront.Token.STRING (s ^ "x")
          | _ -> t
        in
        go (Some t) (t' :: acc) rest
  in
  Sqlfront.Parser.tokenize sql
  |> List.filter (fun t -> t <> Sqlfront.Token.EOF)
  |> go None []
  |> List.map Sqlfront.Token.to_string
  |> String.concat " "

(* Caching-tier contract for one SQL text: the cache-enabled engine
   and a fresh uncached optimization of the same text must produce the
   same bag. *)
let classify_cache ?budget ~mode ~candidate ~(salt : int) (eng : Engine.t)
    (sql : string) : outcome =
  let compare_on sql =
    match
      try
        `R
          (Engine.Errors.protect ~sql (fun () ->
               let cached = Engine.query ~config:candidate ?budget ~mode eng sql in
               let fresh =
                 Engine.query ~config:candidate ?budget ~mode ~use_cache:false eng sql
               in
               (bag cached.Exec.Executor.rows, bag fresh.Exec.Executor.rows)))
      with exn -> `Exn exn
    with
    | `R (Ok (a, b)) ->
        if a = b then Agree
        else
          Mismatch
            (Printf.sprintf "cached plan bag: %d rows vs fresh optimization %d rows"
               (List.length a) (List.length b))
    | `R (Error e) -> (
        match e.Engine.Errors.phase with
        | Budget | Fault -> Skipped (Engine.Errors.phase_to_string e.phase)
        | _ -> Failed (Engine.Errors.to_string e))
    | `Exn exn -> Failed ("untyped exception: " ^ Printexc.to_string exn)
  in
  match compare_on sql with
  | Agree -> compare_on (perturb_literals ~salt sql)
  | o -> o

let classify_spec (cfg : config) (eng : Engine.t) (spec : Qgen.spec) : outcome =
  let sql = Qgen.render spec in
  match cfg.fault with
  | None when cfg.cache ->
      Engine.enable_cache eng;
      classify_cache ?budget:cfg.budget ~mode:cfg.exec_mode ~candidate:cfg.candidate
        ~salt:(cfg.seed + Hashtbl.hash sql) eng sql
  | None ->
      classify ?budget:cfg.budget ~mode:cfg.exec_mode ~candidate:cfg.candidate
        ~property_check:cfg.property_check eng sql
  | Some fspec -> classify_fault ?budget:cfg.budget ~fspec eng sql

let is_failure = function Mismatch _ | Failed _ -> true | Agree | Skipped _ -> false

let run_case (cfg : config) (eng : Engine.t) ~(case : int) : case_result =
  let spec = Qgen.spec_of ~seed:cfg.seed ~case in
  let sql = Qgen.render spec in
  let outcome = classify_spec cfg eng spec in
  let minimized =
    if is_failure outcome && cfg.shrink then begin
      let still_failing s = is_failure (classify_spec cfg eng s) in
      let small = Qgen.minimize still_failing spec in
      let msql = Qgen.render small in
      if msql = sql then None else Some msql
    end
    else None
  in
  { seed = cfg.seed; case; sql; outcome; minimized }

let outcome_label = function
  | Agree -> "agree"
  | Mismatch _ -> "MISMATCH"
  | Skipped s -> "skipped (" ^ s ^ ")"
  | Failed _ -> "FAILED"

let format_case (r : case_result) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "[%d:%d] %s\n  %s\n" r.seed r.case (outcome_label r.outcome) r.sql);
  (match r.outcome with
  | Mismatch d | Failed d -> Buffer.add_string b ("  " ^ d ^ "\n")
  | _ -> ());
  (match r.minimized with
  | Some m ->
      Buffer.add_string b
        (Printf.sprintf "  minimized: %s\n  replay: fuzz %d --case %d\n" m r.seed r.case)
  | None ->
      if is_failure r.outcome then
        Buffer.add_string b (Printf.sprintf "  replay: fuzz %d --case %d\n" r.seed r.case));
  Buffer.contents b

(* Run the configured sweep.  [on_case] observes each result as it
   lands (progress reporting); the summary aggregates at the end. *)
let run ?(on_case = fun (_ : case_result) -> ()) (cfg : config) (eng : Engine.t) : summary =
  let cases =
    match cfg.only_case with
    | Some c -> [ c ]
    | None -> List.init cfg.cases (fun i -> i)
  in
  let agreed = ref 0 and skipped = ref 0 and failures = ref [] in
  List.iter
    (fun case ->
      let r = run_case cfg eng ~case in
      (match r.outcome with
      | Agree -> incr agreed
      | Skipped _ -> incr skipped
      | Mismatch _ | Failed _ -> failures := r :: !failures);
      on_case r)
    cases;
  { total = List.length cases;
    agreed = !agreed;
    skipped = !skipped;
    failures = List.rev !failures;
  }

let format_summary (s : summary) : string =
  Printf.sprintf "%d cases: %d agree, %d skipped, %d failures" s.total s.agreed s.skipped
    (List.length s.failures)
