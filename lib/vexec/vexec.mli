(** Batch-at-a-time columnar executor over optimized plans.

    Operators pull {!Batch.t} values (full columns plus a selection
    vector) through compiled pipelines; scalar expressions evaluate
    column-wise with the row interpreter's exact semantics.  Apply and
    SegmentApply run natively as batched nested iteration: the outer
    batch's correlation-parameter tuples are deduplicated and the inner
    plan is evaluated once per distinct binding (or rewritten at exec
    time into one hash-probe pass when the inner is a non-indexed
    filtered scan), then the results are scattered back under each
    variant's bag semantics.  Subtrees the engine does not vectorize
    (Max1row, Rownum, subquery-bearing expressions) are
    executed by the row interpreter and bridged back into batches, so
    every plan runs in either mode with bag-identical results — the
    row engine remains the semantic oracle.

    Budget accounting and fault injection tick per batch per operator;
    metrics record batches produced and bridge crossings alongside the
    row-mode counters, so EXPLAIN ANALYZE covers both modes. *)

module Batch = Batch

open Relalg.Algebra

(** Dense slot-indexed column-wise evaluation of an expression over a
    batch, given a schema position table (column id -> column index). *)
val eval_cols :
  Batch.t -> (int, int) Hashtbl.t -> expr -> Relalg.Value.t array

(** [true] when the expression contains no relational children. *)
val vectorizable_expr : expr -> bool

(** Node-local coverage: can this operator itself run vectorized? *)
val node_supported : op -> bool

(** (native nodes, bridged subtrees) for a plan. *)
val coverage : op -> int * int

val default_batch_size : int

(** Execute a plan, returning rows positionally per [Op.schema] —
    interchangeable with [Exec.Executor.run ctx empty_lookup]. *)
val run : ?batch_size:int -> Exec.Executor.ctx -> op -> Exec.Executor.row list
