(* Batch-at-a-time columnar executor.

   Operators are pull sources ([unit -> Batch.t option]) compiled from
   the same logical trees the row interpreter runs.  Scalar expressions
   evaluate column-wise over dense slot-indexed arrays with the row
   engine's exact semantics (3VL comparisons, Kleene AND/OR, NULL-strict
   arithmetic) minus short-circuiting, which is observationally
   equivalent on type-correct plans.

   Apply and SegmentApply execute natively as *batched nested
   iteration* (Guravannavar): collect an outer batch, deduplicate the
   correlation-parameter tuples (NULL-safe value hashing), evaluate
   the inner plan once per distinct binding through the row engine's
   parameterized entry point — or, when the inner is a non-indexed
   filterable scan, rewrite at exec time into one hash-probe pass over
   the table against the batched bindings — then scatter the inner
   results back through the selection vector with the bag semantics of
   each Apply variant (cross/outer/semi/anti, SegmentApply's
   per-segment grouping).

   Coverage is per node: any subtree rooted at an operator this engine
   does not vectorize (Max1row, Rownum,
   subquery-bearing expressions) is handed to the row interpreter
   wholesale and its rows converted back into batches — the bridge
   keeps the two engines bag-identical on every plan while letting the
   vectorized operators carry the decorrelated fast paths.

   Budget accounting and fault injection run at batch granularity:
   every pull of every compiled operator ticks the operator's fault
   kind and re-checks the budget, so resource limits trip inside
   vectorized pipelines just as they do row by row. *)

module Batch = Batch
module Value = Relalg.Value
module Col = Relalg.Col
module Op = Relalg.Op
module Ex = Exec.Executor
module Metrics = Exec.Metrics
open Relalg.Algebra

type source = unit -> Batch.t option

type vctx = { ctx : Ex.ctx; batch_size : int }

let runtime_error fmt = Printf.ksprintf (fun s -> raise (Ex.Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Column-wise scalar evaluation                                      *)
(* ------------------------------------------------------------------ *)

(* Expressions the columnar evaluator covers: everything except the
   binder-only scalar operators with relational children. *)
let rec vectorizable_expr = function
  | ColRef _ | Const _ -> true
  | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      vectorizable_expr a && vectorizable_expr b
  | Not a | IsNull a | Like (a, _) -> vectorizable_expr a
  | Case (branches, els) ->
      List.for_all (fun (c, v) -> vectorizable_expr c && vectorizable_expr v) branches
      && (match els with Some e -> vectorizable_expr e | None -> true)
  | Subquery _ | Exists _ | InSub _ | QuantCmp _ -> false

let positions (schema : Col.t list) : (int, int) Hashtbl.t =
  let h = Hashtbl.create (List.length schema * 2) in
  List.iteri
    (fun i (c : Col.t) -> if not (Hashtbl.mem h c.id) then Hashtbl.add h c.id i)
    schema;
  h

let kleene_and a b =
  match (a, b) with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | (Value.Bool _ | Value.Null), (Value.Bool _ | Value.Null) -> Value.Null
  | v, _ -> runtime_error "AND applied to non-boolean %s" (Value.to_string v)

let kleene_or a b =
  match (a, b) with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | (Value.Bool _ | Value.Null), (Value.Bool _ | Value.Null) -> Value.Null
  | v, _ -> runtime_error "OR applied to non-boolean %s" (Value.to_string v)

(* Evaluate [e] over every live row of [b]; the result is a dense
   slot-indexed array aligned with the selection vector. *)
let rec eval_cols (b : Batch.t) (pos : (int, int) Hashtbl.t) (e : expr) : Value.t array =
  let n = Batch.length b in
  match e with
  | ColRef c -> (
      match Hashtbl.find_opt pos c.Col.id with
      | Some i -> Batch.gather b i
      | None -> runtime_error "unbound column in vectorized eval: %s#%d" c.Col.name c.Col.id)
  | Const v -> Array.make n v
  | Arith (op, x, y) ->
      let vx = eval_cols b pos x and vy = eval_cols b pos y in
      let o =
        match op with
        | Add -> `Add
        | Sub -> `Sub
        | Mul -> `Mul
        | Div -> `Div
        | Mod -> `Mod
      in
      Array.init n (fun i -> Value.arith o vx.(i) vy.(i))
  | Cmp (op, x, y) ->
      let vx = eval_cols b pos x and vy = eval_cols b pos y in
      Array.init n (fun i ->
          match Value.cmp_sql vx.(i) vy.(i) with
          | None -> Value.Null
          | Some c ->
              Value.Bool
                (match op with
                | Eq -> c = 0
                | Ne -> c <> 0
                | Lt -> c < 0
                | Le -> c <= 0
                | Gt -> c > 0
                | Ge -> c >= 0))
  | And (x, y) ->
      let vx = eval_cols b pos x and vy = eval_cols b pos y in
      Array.init n (fun i -> kleene_and vx.(i) vy.(i))
  | Or (x, y) ->
      let vx = eval_cols b pos x and vy = eval_cols b pos y in
      Array.init n (fun i -> kleene_or vx.(i) vy.(i))
  | Not x ->
      let vx = eval_cols b pos x in
      Array.map
        (function
          | Value.Bool bv -> Value.Bool (not bv)
          | Value.Null -> Value.Null
          | v -> runtime_error "NOT applied to non-boolean %s" (Value.to_string v))
        vx
  | IsNull x ->
      let vx = eval_cols b pos x in
      Array.map (fun v -> Value.Bool (Value.is_null v)) vx
  | Like (x, pattern) ->
      let vx = eval_cols b pos x in
      Array.map
        (function
          | Value.Null -> Value.Null
          | Value.Str s -> Value.Bool (Exec.Like.matches ~pattern s)
          | v -> runtime_error "LIKE applied to non-string %s" (Value.to_string v))
        vx
  | Case (branches, els) ->
      let vbranches =
        List.map (fun (c, v) -> (eval_cols b pos c, eval_cols b pos v)) branches
      in
      let velse = Option.map (eval_cols b pos) els in
      Array.init n (fun i ->
          let rec go = function
            | [] -> ( match velse with Some v -> v.(i) | None -> Value.Null)
            | (c, v) :: rest -> (
                match c.(i) with Value.Bool true -> v.(i) | _ -> go rest)
          in
          go vbranches)
  | Subquery _ | Exists _ | InSub _ | QuantCmp _ ->
      runtime_error "vectorized eval reached a subquery expression"

(* Predicate evaluation straight to keep flags, skipping the boxed
   [Value.Bool] intermediates: a filter keeps exactly the TRUE rows, so
   UNKNOWN collapses to "drop" — and under that reading strict boolean
   AND/OR over flags coincides with Kleene AND/OR on type-correct
   predicates.  Operators without that property (NOT, CASE, bare
   boolean columns) fall back to the 3VL column evaluator. *)
let rec eval_flags (b : Batch.t) (pos : (int, int) Hashtbl.t) (e : expr) : bool array =
  let n = Batch.length b in
  match e with
  | Const (Value.Bool v) -> Array.make n v
  | Const Value.Null -> Array.make n false
  | Cmp (op, x, y) ->
      let vx = eval_cols b pos x and vy = eval_cols b pos y in
      Array.init n (fun i ->
          match Value.cmp_sql vx.(i) vy.(i) with
          | None -> false
          | Some c -> (
              match op with
              | Eq -> c = 0
              | Ne -> c <> 0
              | Lt -> c < 0
              | Le -> c <= 0
              | Gt -> c > 0
              | Ge -> c >= 0))
  | And (x, y) ->
      (* batch-level short-circuit: evaluate [y] only on rows surviving
         [x] — the row engine's lazy AND, column-at-a-time, so a cheap
         selective first conjunct keeps an expensive second one (LIKE,
         arithmetic) proportional to survivors *)
      let fx = eval_flags b pos x in
      let m = ref 0 in
      Array.iter (fun f -> if f then incr m) fx;
      if !m = n then eval_flags b pos y
      else if !m = 0 then fx
      else begin
        let idx = Array.make !m 0 in
        let j = ref 0 in
        for i = 0 to n - 1 do
          if fx.(i) then begin
            idx.(!j) <- i;
            incr j
          end
        done;
        let fy = eval_flags (Batch.take b idx) pos y in
        let out = Array.make n false in
        for j = 0 to !m - 1 do
          out.(idx.(j)) <- fy.(j)
        done;
        out
      end
  | Or (x, y) ->
      let fx = eval_flags b pos x and fy = eval_flags b pos y in
      Array.init n (fun i -> fx.(i) || fy.(i))
  | IsNull x ->
      let vx = eval_cols b pos x in
      Array.map Value.is_null vx
  | Like (x, pattern) ->
      let vx = eval_cols b pos x in
      Array.map
        (function
          | Value.Null -> false
          | Value.Str s -> Exec.Like.matches ~pattern s
          | v -> runtime_error "LIKE applied to non-string %s" (Value.to_string v))
        vx
  | _ ->
      let vx = eval_cols b pos e in
      Array.map (function Value.Bool true -> true | _ -> false) vx

(* ------------------------------------------------------------------ *)
(* Coverage                                                           *)
(* ------------------------------------------------------------------ *)

(* Node-local coverage check; a node whose own shape the engine cannot
   vectorize routes its whole subtree over the bridge.  Joins with an
   equi-conjunct take the hash path; cross and pure theta joins run as
   a batch nested loop. *)
let node_supported (o : op) : bool =
  match o with
  | TableScan _ | ConstTable _ | CseScan _ | UnionAll _ | Except _ -> true
  | Select (p, _) -> vectorizable_expr p
  | Project (projs, _) -> List.for_all (fun (p : proj) -> vectorizable_expr p.expr) projs
  | Join { pred; _ } -> vectorizable_expr pred
  | GroupBy { aggs; _ } | LocalGroupBy { aggs; _ } | ScalarAgg { aggs; _ } ->
      List.for_all
        (fun (a : agg) ->
          match agg_input_expr a.fn with
          | None -> true
          | Some e -> vectorizable_expr e)
        aggs
  | Apply { pred; _ } -> vectorizable_expr pred
  | SegmentApply _ | SegmentHole _ -> true
  | Max1row _ | Rownum _ -> false

(* ------------------------------------------------------------------ *)
(* Growable int arrays (join pair collection)                         *)
(* ------------------------------------------------------------------ *)

module Ints = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let push t x =
    if t.n = Array.length t.a then begin
      let a' = Array.make (2 * t.n) 0 in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let to_array t = Array.sub t.a 0 t.n
end

(* ------------------------------------------------------------------ *)
(* Instrumentation: metrics, budget, faults per pull                  *)
(* ------------------------------------------------------------------ *)

let metrics_node (v : vctx) (o : op) : Metrics.node option =
  match v.ctx.Ex.metrics with None -> None | Some m -> Metrics.find m o

(* Wrap an operator's pull: tick the fault plan, re-check the budget,
   account produced rows, and attribute time/rows/batches to the
   operator's metrics node (inclusive of children, like the row
   engine). *)
let instrument (v : vctx) (o : op) (node : Metrics.node option) (pull : source) : source =
  let fault_kind = Ex.op_fault_kind o in
  fun () ->
    (match v.ctx.Ex.faults with None -> () | Some f -> Exec.Faults.tick f fault_kind);
    Ex.check_budget v.ctx;
    match node with
    | None ->
        let r = pull () in
        (match r with Some b -> Ex.account_rows v.ctx (Batch.length b) | None -> ());
        r
    | Some nd ->
        let t0 = Unix.gettimeofday () in
        let r =
          try pull ()
          with e ->
            Metrics.record nd ~elapsed_s:(Unix.gettimeofday () -. t0) ~rows_out:0;
            raise e
        in
        (match r with
        | Some b ->
            Metrics.record nd
              ~elapsed_s:(Unix.gettimeofday () -. t0)
              ~rows_out:(Batch.length b);
            Metrics.add_batch nd;
            Ex.account_rows v.ctx (Batch.length b)
        | None -> Metrics.record nd ~elapsed_s:(Unix.gettimeofday () -. t0) ~rows_out:0);
        r

(* Count the rows an operator consumes from a child source. *)
let consuming (node : Metrics.node option) (src : source) : source =
  match node with
  | None -> src
  | Some nd ->
      fun () ->
        let r = src () in
        (match r with Some b -> Metrics.add_rows_in nd (Batch.length b) | None -> ());
        r

(* ------------------------------------------------------------------ *)
(* Bridge: unsupported subtree -> row interpreter -> batches          *)
(* ------------------------------------------------------------------ *)

let bridge (v : vctx) (o : op) : source =
  let node = metrics_node v o in
  let schema = Op.schema o in
  let state = ref None in
  fun () ->
    let remaining =
      match !state with
      | Some bs -> bs
      | None ->
          (match node with Some nd -> Metrics.add_bridge nd | None -> ());
          v.ctx.Ex.bridge_crossings <- v.ctx.Ex.bridge_crossings + 1;
          (* The row interpreter does its own fault/budget/metrics
             accounting for the whole subtree. *)
          let rows = Ex.run v.ctx Ex.empty_lookup o in
          Batch.chunks ~size:v.batch_size (Batch.of_rows_lazy schema rows)
    in
    match remaining with
    | [] ->
        state := Some [];
        None
    | b :: rest ->
        state := Some rest;
        Some b

(* ------------------------------------------------------------------ *)
(* Operator compilation                                               *)
(* ------------------------------------------------------------------ *)

(* Drain a source into one dense batch (blocking operators). *)
let drain (schema : Col.t list) (src : source) : Batch.t =
  let rec go acc = match src () with None -> List.rev acc | Some b -> go (b :: acc) in
  Batch.concat schema (go [])

(* Emit a precomputed result chunk by chunk. *)
let emit (make : unit -> Batch.t list) : source =
  let state = ref None in
  fun () ->
    let remaining = match !state with Some bs -> bs | None -> make () in
    match remaining with
    | [] ->
        state := Some [];
        None
    | b :: rest ->
        state := Some rest;
        Some b

let key_gather (b : Batch.t) (pos : (int, int) Hashtbl.t) (keys : Col.t list) :
    Value.t array list =
  List.map
    (fun (c : Col.t) ->
      match Hashtbl.find_opt pos c.Col.id with
      | Some i -> Batch.gather b i
      | None -> runtime_error "grouping column missing: %s" c.Col.name)
    keys

(* Aggregate input columns, pre-evaluated once per mega-batch. *)
let agg_inputs (b : Batch.t) (pos : (int, int) Hashtbl.t) (aggs : agg list) :
    Value.t array option list =
  List.map
    (fun (a : agg) -> Option.map (eval_cols b pos) (agg_input_expr a.fn))
    aggs

(* Hash table keyed on a single value — the dominant single-column
   grouping/join-key case skips the per-row key-list allocation of the
   row engine's [VTbl]. *)
module VTbl1 = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Int view of a key column, the columnar engine's main edge over the
   row interpreter: when every live value is [Int] the keys drop into a
   flat [int array] and hashing needs no boxed values at all.
   [min_int] is the table sentinel, so columns containing it (or any
   non-int value) fall back to the generic value-keyed path; NULLs are
   admitted only when the caller gives the sentinel a NULL-consistent
   meaning — "no key" for join keys (NULL never matches), "NULL class"
   for multi-column grouping keys (NULL groups with NULL, matching
   [Value.equal]). *)
let int_sentinel = min_int

let int_key_view ~nulls_ok (col : Value.t array) : int array option =
  let n = Array.length col in
  let out = Array.make n 0 in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    (match col.(!i) with
    | Value.Int k when k <> int_sentinel -> out.(!i) <- k
    | Value.Null when nulls_ok -> out.(!i) <- int_sentinel
    | _ -> ok := false);
    incr i
  done;
  if !ok then Some out else None

(* Open-addressing int -> int map (linear probing, power-of-two
   capacity, [min_int] = empty).  Sized at twice the maximum insert
   count, so probes always terminate. *)
module IntTbl = struct
  type t = { keys : int array; vals : int array; mask : int }

  let create (n : int) : t =
    let cap = ref 64 in
    while !cap < 2 * (n + 1) do
      cap := !cap * 2
    done;
    { keys = Array.make !cap min_int; vals = Array.make !cap 0; mask = !cap - 1 }

  (* index of [k]'s slot: either holds [k] or is empty *)
  let slot (t : t) (k : int) : int =
    let h = k * 0x9E3779B1 land max_int in
    let i = ref (h land t.mask) in
    while t.keys.(!i) <> min_int && t.keys.(!i) <> k do
      i := (!i + 1) land t.mask
    done;
    !i
end

(* ------------------------------------------------------------------ *)
(* Grouped aggregation: group-index arrays + typed kernels            *)
(* ------------------------------------------------------------------ *)

(* Map every row slot to a dense group index (first-appearance order).
   Returns [(gidx, ngroups, out_key_cols)] where [out_key_cols] holds
   one column of length [ngroups] per grouping key. *)
let group_indices (key_cols : Value.t array list) (n : int) :
    int array * int * Value.t array list =
  let gidx = Array.make n 0 in
  match key_cols with
  | [ kc ] ->
      let keys_out = ref (Array.make 64 Value.Null) in
      let ng = ref 0 in
      let push_key k =
        if !ng >= Array.length !keys_out then begin
          let a = Array.make (2 * !ng) Value.Null in
          Array.blit !keys_out 0 a 0 !ng;
          keys_out := a
        end;
        !keys_out.(!ng) <- k;
        incr ng
      in
      (match int_key_view ~nulls_ok:false kc with
      | Some ik ->
          (* pure-int keys: flat-array hashing *)
          let t = IntTbl.create n in
          for s = 0 to n - 1 do
            let i = IntTbl.slot t ik.(s) in
            if t.IntTbl.keys.(i) = min_int then begin
              t.IntTbl.keys.(i) <- ik.(s);
              t.IntTbl.vals.(i) <- !ng;
              push_key kc.(s)
            end;
            gidx.(s) <- t.IntTbl.vals.(i)
          done
      | None ->
          (* single-column key: hash the value directly, no key lists *)
          let groups = VTbl1.create 256 in
          for s = 0 to n - 1 do
            let g =
              match VTbl1.find_opt groups kc.(s) with
              | Some g -> g
              | None ->
                  let g = !ng in
                  VTbl1.add groups kc.(s) g;
                  push_key kc.(s);
                  g
            in
            gidx.(s) <- g
          done);
      (gidx, !ng, [ Array.sub !keys_out 0 !ng ])
  | key_cols ->
      (* multi-column keys: open addressing over representative slots —
         rows compare column-wise against each group's first row, so no
         per-row key list is ever allocated (the row engine's [VTbl]
         path allocates one per input row, which dominated wide-key
         grouping) *)
      let cols = Array.of_list key_cols in
      let k = Array.length cols in
      let cap = ref 64 in
      while !cap < 2 * (n + 1) do
        cap := !cap * 2
      done;
      let table = Array.make !cap (-1) in
      let mask = !cap - 1 in
      let reps = ref (Array.make 64 0) in
      let ng = ref 0 in
      (* per-column int views (NULL -> sentinel: NULL groups with NULL,
         exactly [Value.equal]'s answer) let both hashing and equality
         run on flat ints; hashes accumulate column-major into one
         per-row array, so the boxed [Value.hash] only runs on columns
         that are genuinely non-int *)
      let views = Array.map (int_key_view ~nulls_ok:true) cols in
      let hrow = Array.make n 7 in
      for c = 0 to k - 1 do
        match views.(c) with
        | Some iv ->
            for s = 0 to n - 1 do
              hrow.(s) <- (hrow.(s) * 31) + (iv.(s) * 0x9E3779B1 land max_int)
            done
        | None ->
            let col = cols.(c) in
            for s = 0 to n - 1 do
              hrow.(s) <- (hrow.(s) * 31) + Value.hash col.(s)
            done
      done;
      let equal_rows a b =
        let rec go c =
          c >= k
          || ((match views.(c) with
             | Some iv -> iv.(a) = iv.(b)
             | None -> Value.equal cols.(c).(a) cols.(c).(b))
             && go (c + 1))
        in
        go 0
      in
      for s = 0 to n - 1 do
        let i = ref (hrow.(s) land max_int land mask) in
        let g = ref (-1) in
        while !g < 0 do
          match table.(!i) with
          | -1 ->
              if !ng >= Array.length !reps then begin
                let a = Array.make (2 * !ng) 0 in
                Array.blit !reps 0 a 0 !ng;
                reps := a
              end;
              !reps.(!ng) <- s;
              table.(!i) <- !ng;
              g := !ng;
              incr ng
          | g0 when equal_rows !reps.(g0) s -> g := g0
          | _ -> i := (!i + 1) land mask
        done;
        gidx.(s) <- !g
      done;
      let reps = Array.sub !reps 0 !ng in
      let out = List.map (fun kc -> Array.map (fun s -> kc.(s)) reps) key_cols in
      (gidx, !ng, out)

(* Kernel dispatch: a numeric column whose live values are all Float
   (or all Int) aggregates over unboxed accumulators; anything mixed or
   non-numeric falls back to the row engine's accumulators. *)
type col_class = AllFloat | AllInt | Mixed

let classify_col (col : Value.t array) : col_class =
  let n = Array.length col in
  let rec go i f iv =
    if i >= n then if f && iv then Mixed else if iv then AllInt else AllFloat
    else
      match col.(i) with
      | Value.Float _ -> if iv then Mixed else go (i + 1) true iv
      | Value.Int _ -> if f then Mixed else go (i + 1) f true
      | Value.Null -> go (i + 1) f iv
      | _ -> Mixed
  in
  go 0 false false

(* One aggregate over all groups.  Every kernel reproduces the row
   accumulator's exact fold: same accumulation order (row order), same
   first-value seeding, and final Avg division through [Value.arith],
   so results are bit-identical to the row engine. *)
let agg_grouped (fn : agg_fn) (input : Value.t array option) (gidx : int array)
    (ng : int) (n : int) : Value.t array =
  match input with
  | None ->
      (* count-star: rows per group *)
      let counts = Array.make ng 0 in
      for s = 0 to n - 1 do
        counts.(gidx.(s)) <- counts.(gidx.(s)) + 1
      done;
      Array.map (fun c -> Value.Int c) counts
  | Some col -> (
      let generic () =
        let accs = Array.init ng (fun _ -> Ex.fresh_acc ()) in
        for s = 0 to n - 1 do
          Ex.acc_add accs.(gidx.(s)) col.(s)
        done;
        Array.map (Ex.acc_result fn) accs
      in
      match fn with
      | CountStar | Count _ ->
          let counts = Array.make ng 0 in
          for s = 0 to n - 1 do
            if not (Value.is_null col.(s)) then
              counts.(gidx.(s)) <- counts.(gidx.(s)) + 1
          done;
          Array.map (fun c -> Value.Int c) counts
      | Sum _ | Avg _ -> (
          match classify_col col with
          | AllFloat ->
              let sums = Array.make ng 0.0 and counts = Array.make ng 0 in
              for s = 0 to n - 1 do
                match col.(s) with
                | Value.Float f ->
                    let g = gidx.(s) in
                    (* seed with the first value so -0.0 survives *)
                    sums.(g) <- (if counts.(g) = 0 then f else sums.(g) +. f);
                    counts.(g) <- counts.(g) + 1
                | _ -> ()
              done;
              Array.init ng (fun g ->
                  if counts.(g) = 0 then Value.Null
                  else
                    match fn with
                    | Sum _ -> Value.Float sums.(g)
                    | _ -> Value.arith `Div (Value.Float sums.(g)) (Value.Int counts.(g)))
          | AllInt ->
              let sums = Array.make ng 0 and counts = Array.make ng 0 in
              for s = 0 to n - 1 do
                match col.(s) with
                | Value.Int k ->
                    let g = gidx.(s) in
                    sums.(g) <- sums.(g) + k;
                    counts.(g) <- counts.(g) + 1
                | _ -> ()
              done;
              Array.init ng (fun g ->
                  if counts.(g) = 0 then Value.Null
                  else
                    match fn with
                    | Sum _ -> Value.Int sums.(g)
                    | _ -> Value.arith `Div (Value.Int sums.(g)) (Value.Int counts.(g)))
          | Mixed -> generic ())
      | Min _ | Max _ -> (
          let want_min = match fn with Min _ -> true | _ -> false in
          match classify_col col with
          | AllFloat ->
              let best = Array.make ng 0.0 and seen = Array.make ng false in
              for s = 0 to n - 1 do
                match col.(s) with
                | Value.Float f ->
                    let g = gidx.(s) in
                    if not seen.(g) then begin
                      best.(g) <- f;
                      seen.(g) <- true
                    end
                    else begin
                      let c = Stdlib.compare f best.(g) in
                      if (want_min && c < 0) || ((not want_min) && c > 0) then
                        best.(g) <- f
                    end
                | _ -> ()
              done;
              Array.init ng (fun g ->
                  if seen.(g) then Value.Float best.(g) else Value.Null)
          | AllInt ->
              let best = Array.make ng 0 and seen = Array.make ng false in
              for s = 0 to n - 1 do
                match col.(s) with
                | Value.Int k ->
                    let g = gidx.(s) in
                    if not seen.(g) then begin
                      best.(g) <- k;
                      seen.(g) <- true
                    end
                    else if (want_min && k < best.(g)) || ((not want_min) && k > best.(g))
                    then best.(g) <- k
                | _ -> ()
              done;
              Array.init ng (fun g ->
                  if seen.(g) then Value.Int best.(g) else Value.Null)
          | Mixed -> generic ()))

(* ------------------------------------------------------------------ *)
(* Batched Apply: batched nested iteration over distinct bindings     *)
(* ------------------------------------------------------------------ *)

(* Exec-time hash-join rewrite: the inner is a filtered scan (possibly
   under a projection) with an equality conjunct between a scan column
   and an outer-only expression, and the column has NO index — an
   indexed key already gets O(1) probes per binding through the row
   engine's fast path, so the rewrite targets exactly the case where
   the row engine re-scans the table once per outer row.  One
   hash-probe pass over the table per outer batch serves every
   distinct binding at once. *)
type apply_rewrite = {
  rw_table : string;
  rw_cols : Col.t list;  (** scan schema *)
  rw_key : int;  (** scan-side key column position *)
  rw_probe : expr;  (** outer-only key expression *)
  rw_residual : expr;  (** remaining scan-filter conjuncts *)
  rw_projs : proj list option;  (** Project wrapper, if any *)
}

let detect_apply_rewrite (v : vctx) (right : op) : apply_rewrite option =
  let try_scan projs pred table cols =
    let tb = Storage.Database.table v.ctx.Ex.db table in
    let scan_set = Col.Set.of_list cols in
    let spos = positions cols in
    let conj = conjuncts pred in
    let indexed (c : Col.t) = Storage.Table.find_index tb c.Col.name <> None in
    List.find_map
      (fun cj ->
        let candidate (c : Col.t) e =
          if
            List.exists (Col.equal c) cols
            && Col.Set.is_empty (Col.Set.inter (Relalg.Expr.cols e) scan_set)
            && not (indexed c)
          then
            Option.map
              (fun key ->
                { rw_table = table;
                  rw_cols = cols;
                  rw_key = key;
                  rw_probe = e;
                  rw_residual = conj_list (List.filter (fun x -> x != cj) conj);
                  rw_projs = projs;
                })
              (Hashtbl.find_opt spos c.Col.id)
          else None
        in
        match cj with
        | Cmp (Eq, ColRef c, e) -> candidate c e
        | Cmp (Eq, e, ColRef c) -> candidate c e
        | _ -> None)
      conj
  in
  match right with
  | Select (p, TableScan { table; cols }) -> try_scan None p table cols
  | Project (projs, Select (p, TableScan { table; cols })) ->
      try_scan (Some projs) p table cols
  | _ -> None

(* Evaluate the rewrite for [ng] distinct bindings: hash the binding
   keys, scan the table once, bucket matching rows per binding in table
   order (the row engine's output order for a filtered scan).  Budget
   accounting matches one row-mode Apply iteration per binding, so
   cooperative cancellation fires exactly as in [Ex.run_inner].
   [Value.equal]/[Value.hash] agree with [cmp_sql] on non-NULL values
   (Int/Float coercion included), so hash matching is exact. *)
let run_rewrite (v : vctx) (rw : apply_rewrite) (ng : int) (env_of : int -> Ex.lookup) :
    Ex.row array array =
  let ctx = v.ctx in
  let tb = Storage.Database.table ctx.Ex.db rw.rw_table in
  let spos = positions rw.rw_cols in
  let envs = Array.init ng env_of in
  let build = VTbl1.create (max 16 (2 * ng)) in
  for g = 0 to ng - 1 do
    ctx.Ex.apply_invocations <- ctx.Ex.apply_invocations + 1;
    ctx.Ex.rows_processed <- ctx.Ex.rows_processed + 1;
    Ex.check_budget ctx;
    let k = Ex.eval ctx envs.(g) rw.rw_probe in
    if not (Value.is_null k) then
      VTbl1.replace build k (g :: (try VTbl1.find build k with Not_found -> []))
  done;
  let rows, nrows = Storage.Table.rows_view tb in
  Ex.account_rows ctx nrows;
  let residual_true = is_true_const rw.rw_residual in
  let out = Array.make (max 1 ng) [] in
  for i = 0 to nrows - 1 do
    let r = rows.(i) in
    let key = r.(rw.rw_key) in
    if not (Value.is_null key) then
      match VTbl1.find_opt build key with
      | None -> ()
      | Some gs ->
          List.iter
            (fun g ->
              let lenv id =
                match Hashtbl.find_opt spos id with
                | Some ix -> Some r.(ix)
                | None -> envs.(g) id
              in
              if residual_true || Ex.eval_pred ctx lenv rw.rw_residual then
                out.(g) <- r :: out.(g))
            gs
  done;
  Array.init ng (fun g ->
      let matched = List.rev out.(g) in
      match rw.rw_projs with
      | None -> Array.of_list matched
      | Some projs ->
          Array.of_list
            (List.map
               (fun (r : Ex.row) ->
                 let lenv id =
                   match Hashtbl.find_opt spos id with
                   | Some ix -> Some r.(ix)
                   | None -> envs.(g) id
                 in
                 Array.of_list
                   (List.map (fun (p : proj) -> Ex.eval ctx lenv p.expr) projs))
               matched))

let rec compile (v : vctx) (o : op) : source =
  if not (node_supported o) then bridge v o
  else begin
    let node = metrics_node v o in
    let src =
      match o with
      | TableScan { table; cols } -> compile_scan v table cols
      | ConstTable { cols; rows } ->
          emit (fun () -> Batch.chunks ~size:v.batch_size (Batch.of_rows cols rows))
      | CseScan { id; cols; _ } ->
          emit (fun () ->
              let rows =
                match v.ctx.Ex.cse with
                | None -> runtime_error "CseScan without a CSE store: %s" id
                | Some fetch -> fetch id
              in
              Ex.account_rows v.ctx (List.length rows);
              Batch.chunks ~size:v.batch_size (Batch.of_rows cols rows))
      | Select (p, i) -> compile_select v node p i
      | Project (projs, i) -> compile_project v node projs i
      | Join { kind; pred; left; right } -> compile_join v node kind pred left right
      | GroupBy { keys; aggs; input } | LocalGroupBy { keys; aggs; input } ->
          compile_group_by v node keys aggs input
      | ScalarAgg { aggs; input } -> compile_scalar_agg v node aggs input
      | UnionAll (l, r) -> compile_union v node (Op.schema o) l r
      | Except (l, r) -> compile_except v node l r
      | Apply { kind; pred; left; right } -> compile_apply v node kind pred left right
      | SegmentApply { seg_cols; outer; inner } ->
          compile_segment_apply v node seg_cols outer inner
      | SegmentHole { cols; src } -> compile_segment_hole v cols src
      | Max1row _ | Rownum _ ->
          (* node_supported routes these to the bridge; reaching here is
             a coverage bug, but one the service can degrade from *)
          runtime_error "vectorized compile reached unsupported operator: %s"
            (Relalg.Pp.label o)
    in
    instrument v o node src
  end

(* Scan: batches alias the table's columnar cache; only the selection
   vector is fresh per batch. *)
and compile_scan (v : vctx) (table : string) (cols : Col.t list) : source =
  let tb = Storage.Database.table v.ctx.Ex.db table in
  (* one shared lazy wrapper per execution, so chunked scan batches
     alias the same column array and re-concatenate without copying *)
  let tcols = Array.map Lazy.from_val (Storage.Table.columns tb) in
  let n = Storage.Table.row_count tb in
  let pos = ref 0 in
  fun () ->
    if !pos >= n then None
    else begin
      let start = !pos in
      let stop = min n (start + v.batch_size) in
      pos := stop;
      Some
        { Batch.schema = cols;
          cols = tcols;
          sel = Array.init (stop - start) (fun i -> start + i)
        }
    end

(* Filter: evaluate the predicate column-wise, keep the TRUE slots by
   compacting the selection vector; columns are untouched. *)
and compile_select (v : vctx) node (p : expr) (i : op) : source =
  let child = consuming node (compile v i) in
  let pos = positions (Op.schema i) in
  fun () ->
    match child () with
    | None -> None
    | Some b ->
        let flags = eval_flags b pos p in
        let n = Batch.length b in
        let keep = Array.make n 0 in
        let k = ref 0 in
        for s = 0 to n - 1 do
          if flags.(s) then begin
            keep.(!k) <- b.Batch.sel.(s);
            incr k
          end
        done;
        Some { b with Batch.sel = Array.sub keep 0 !k }

and compile_project (v : vctx) node (projs : proj list) (i : op) : source =
  let child = consuming node (compile v i) in
  let pos = positions (Op.schema i) in
  let schema = List.map (fun (p : proj) -> p.out) projs in
  let pure_refs =
    List.for_all (fun (p : proj) -> match p.expr with ColRef _ -> true | _ -> false) projs
  in
  if pure_refs then
    (* rename-only projection: alias the input's physical columns under
       the output schema and keep its selection vector — zero copying *)
    fun () ->
      match child () with
      | None -> None
      | Some b ->
          let cols =
            Array.of_list
              (List.map
                 (fun (p : proj) ->
                   match p.expr with
                   | ColRef c -> (
                       match Hashtbl.find_opt pos c.Col.id with
                       | Some i -> b.Batch.cols.(i)
                       | None ->
                           runtime_error "unbound column in projection: %s#%d"
                             c.Col.name c.Col.id)
                   | _ ->
                       runtime_error
                         "vectorized projection reached a computed expression on \
                          the rename-only path")
                 projs)
          in
          Some { Batch.schema; cols; sel = b.Batch.sel }
  else
    fun () ->
      match child () with
      | None -> None
      | Some b ->
          (* eager: computed projections evaluate now, like the row
             engine, so runtime errors surface at the same point *)
          let cols =
            Array.of_list
              (List.map
                 (fun (p : proj) -> Lazy.from_val (eval_cols b pos p.expr))
                 projs)
          in
          Some { Batch.schema; cols; sel = Batch.iota (Batch.length b) }

(* Hash join.  Both inputs are drained into dense batches; keys are
   evaluated column-wise; matching (left, right) slot pairs are
   collected into int vectors, the residual predicate filters the
   gathered pair batch, and the output is emitted per join kind.  NULL
   keys never match, exactly as in the row engine. *)
and compile_join (v : vctx) node (kind : join_kind) (pred : expr) (left : op) (right : op)
    : source =
  let lsrc = consuming node (compile v left) in
  let rsrc = consuming node (compile v right) in
  let lschema = Op.schema left and rschema = Op.schema right in
  emit (fun () ->
      let lb = drain lschema lsrc and rb = drain rschema rsrc in
      let lpos = positions lschema and rpos = positions rschema in
      let equi, residual =
        Ex.split_equi_conjuncts pred (Col.Set.of_list lschema) (Col.Set.of_list rschema)
      in
      let nr = Batch.length rb and nl = Batch.length lb in
      let built = ref 0 in
      let pls = Ints.create () and prs = Ints.create () in
      (match equi with
      | [] ->
          (* no equi-conjunct (cross or pure theta join): every (l, r)
             pair, with the whole predicate as residual — the row
             engine's nested loop, batch-at-a-time *)
          for s = 0 to nl - 1 do
            for t = 0 to nr - 1 do
              Ints.push pls s;
              Ints.push prs t
            done
          done
      | [ (ae, be) ] -> (
          let rkey = eval_cols rb rpos be in
          let lkey = eval_cols lb lpos ae in
          match
            (int_key_view ~nulls_ok:true rkey, int_key_view ~nulls_ok:true lkey)
          with
          | Some rk, Some lk ->
              (* both key columns are pure ints: flat-array hash join
                 with build-side duplicate chains in [next] *)
              let t = IntTbl.create nr in
              let next = Array.make (max 1 nr) (-1) in
              for s = 0 to nr - 1 do
                let k = rk.(s) in
                if k <> int_sentinel then begin
                  incr built;
                  let i = IntTbl.slot t k in
                  if t.IntTbl.keys.(i) = min_int then begin
                    t.IntTbl.keys.(i) <- k;
                    t.IntTbl.vals.(i) <- s
                  end
                  else begin
                    next.(s) <- t.IntTbl.vals.(i);
                    t.IntTbl.vals.(i) <- s
                  end
                end
              done;
              for s = 0 to nl - 1 do
                let k = lk.(s) in
                if k <> int_sentinel then begin
                  let i = IntTbl.slot t k in
                  if t.IntTbl.keys.(i) = k then begin
                    let rs = ref t.IntTbl.vals.(i) in
                    while !rs >= 0 do
                      Ints.push pls s;
                      Ints.push prs !rs;
                      rs := next.(!rs)
                    done
                  end
                end
              done
          | _ ->
              (* single-column key: hash the value directly, no key lists *)
              let build = VTbl1.create (max 16 (2 * nr)) in
              for s = 0 to nr - 1 do
                let k = rkey.(s) in
                if not (Value.is_null k) then begin
                  incr built;
                  VTbl1.replace build k
                    (s :: (try VTbl1.find build k with Not_found -> []))
                end
              done;
              for s = 0 to nl - 1 do
                let k = lkey.(s) in
                if not (Value.is_null k) then
                  match VTbl1.find_opt build k with
                  | None -> ()
                  | Some cands ->
                      List.iter (fun rs -> Ints.push pls s; Ints.push prs rs) cands
              done)
      | _ ->
          (* build side: right *)
          let rkeys = List.map (fun (_, be) -> eval_cols rb rpos be) equi in
          let build = Ex.VTbl.create (max 16 (2 * nr)) in
          for s = 0 to nr - 1 do
            let key = List.map (fun kc -> kc.(s)) rkeys in
            if not (List.exists Value.is_null key) then begin
              incr built;
              Ex.VTbl.replace build key
                (s :: (try Ex.VTbl.find build key with Not_found -> []))
            end
          done;
          (* probe side: left *)
          let lkeys = List.map (fun (ae, _) -> eval_cols lb lpos ae) equi in
          for s = 0 to nl - 1 do
            let key = List.map (fun kc -> kc.(s)) lkeys in
            if not (List.exists Value.is_null key) then
              match Ex.VTbl.find_opt build key with
              | None -> ()
              | Some cands ->
                  List.iter (fun rs -> Ints.push pls s; Ints.push prs rs) cands
          done);
      (match node with Some nd -> Metrics.add_hash_build nd !built | None -> ());
      let pls = Ints.to_array pls and prs = Ints.to_array prs in
      let combined_of pls prs =
        let lpart = Batch.take lb pls and rpart = Batch.take rb prs in
        { Batch.schema = lschema @ rschema;
          cols = Array.append lpart.Batch.cols rpart.Batch.cols;
          sel = Batch.iota (Array.length pls)
        }
      in
      (* residual predicate over the surviving pairs *)
      let pls, prs =
        match residual with
        | [] -> (pls, prs)
        | _ ->
            let combined = combined_of pls prs in
            let cpos = positions (lschema @ rschema) in
            let flags = eval_flags combined cpos (conj_list residual) in
            let keep = Ints.create () in
            Array.iteri (fun s f -> if f then Ints.push keep s) flags;
            let keep = Ints.to_array keep in
            ( Array.map (fun s -> pls.(s)) keep,
              Array.map (fun s -> prs.(s)) keep )
      in
      let result =
        match kind with
        | Inner -> combined_of pls prs
        | Semi | Anti ->
            let matched = Array.make nl false in
            Array.iter (fun s -> matched.(s) <- true) pls;
            let want = kind = Semi in
            let keep = Ints.create () in
            for s = 0 to nl - 1 do
              if matched.(s) = want then Ints.push keep s
            done;
            Batch.take lb (Ints.to_array keep)
        | LeftOuter ->
            let matched = Array.make nl false in
            Array.iter (fun s -> matched.(s) <- true) pls;
            let unmatched = Ints.create () in
            for s = 0 to nl - 1 do
              if not matched.(s) then Ints.push unmatched s
            done;
            let unmatched = Ints.to_array unmatched in
            let inner = combined_of pls prs in
            let lpart = Batch.take lb unmatched in
            let nulls =
              Array.map
                (fun (_ : Col.t) ->
                  lazy (Array.make (Array.length unmatched) Value.Null))
                (Array.of_list rschema)
            in
            let padded =
              { Batch.schema = lschema @ rschema;
                cols = Array.append lpart.Batch.cols nulls;
                sel = Batch.iota (Array.length unmatched)
              }
            in
            Batch.concat (lschema @ rschema) [ inner; padded ]
      in
      Batch.chunks ~size:v.batch_size result)

and compile_group_by (v : vctx) node (keys : Col.t list) (aggs : agg list) (input : op) :
    source =
  let child = consuming node (compile v input) in
  let ischema = Op.schema input in
  emit (fun () ->
      let mb = drain ischema child in
      let pos = positions ischema in
      let n = Batch.length mb in
      let gidx, ng, key_out = group_indices (key_gather mb pos keys) n in
      (match node with Some nd -> Metrics.add_hash_build nd ng | None -> ());
      let inputs = agg_inputs mb pos aggs in
      let agg_out =
        List.map2
          (fun (a : agg) input -> agg_grouped a.fn input gidx ng n)
          aggs inputs
      in
      let schema = keys @ List.map (fun (a : agg) -> a.out) aggs in
      Batch.chunks ~size:v.batch_size
        { Batch.schema;
          cols = Array.of_list (List.map Lazy.from_val (key_out @ agg_out));
          sel = Batch.iota ng
        })

and compile_scalar_agg (v : vctx) node (aggs : agg list) (input : op) : source =
  let child = consuming node (compile v input) in
  let ischema = Op.schema input in
  emit (fun () ->
      let mb = drain ischema child in
      let pos = positions ischema in
      let n = Batch.length mb in
      let schema = List.map (fun (a : agg) -> a.out) aggs in
      let row =
        if n = 0 then Array.of_list (List.map (fun (a : agg) -> agg_on_empty a.fn) aggs)
        else begin
          (* one group spanning every row: reuse the grouped kernels *)
          let gidx = Array.make n 0 in
          let inputs = agg_inputs mb pos aggs in
          Array.of_list
            (List.map2
               (fun (a : agg) input -> (agg_grouped a.fn input gidx 1 n).(0))
               aggs inputs)
        end
      in
      [ Batch.of_rows schema [ row ] ])

(* UNION ALL streams: all left batches, then all right batches,
   relabelled to the union's output schema. *)
and compile_union (v : vctx) node (schema : Col.t list) (l : op) (r : op) : source =
  let ls = consuming node (compile v l) in
  let rs = consuming node (compile v r) in
  let on_right = ref false in
  let rec pull () =
    if !on_right then
      match rs () with None -> None | Some b -> Some { b with Batch.schema }
    else
      match ls () with
      | Some b -> Some { b with Batch.schema }
      | None ->
          on_right := true;
          pull ()
  in
  pull

(* Bag difference: drain the right side into occurrence counts, then
   stream left batches, dropping one occurrence per counted row. *)
and compile_except (v : vctx) node (l : op) (r : op) : source =
  let ls = consuming node (compile v l) in
  let rs = consuming node (compile v r) in
  let counts = lazy (
    let counts = Ex.VTbl.create 64 in
    let rec go () =
      match rs () with
      | None -> ()
      | Some b ->
          for s = 0 to Batch.length b - 1 do
            let k = Batch.row_list b s in
            Ex.VTbl.replace counts k (1 + try Ex.VTbl.find counts k with Not_found -> 0)
          done;
          go ()
    in
    go ();
    counts)
  in
  fun () ->
    let counts = Lazy.force counts in
    match ls () with
    | None -> None
    | Some b ->
        let n = Batch.length b in
        let keep = Array.make n 0 in
        let k = ref 0 in
        for s = 0 to n - 1 do
          let key = Batch.row_list b s in
          match Ex.VTbl.find_opt counts key with
          | Some c when c > 0 -> Ex.VTbl.replace counts key (c - 1)
          | _ ->
              keep.(!k) <- b.Batch.sel.(s);
              incr k
        done;
        Some { b with Batch.sel = Array.sub keep 0 !k }

(* Batched Apply.  Per outer batch: deduplicate the correlation
   parameter tuples (NULL-safe, same value equality as grouping),
   evaluate the inner plan once per *distinct* binding — via the
   exec-time hash-join rewrite when the inner is a non-indexed filtered
   scan, else through the row engine's parameterized entry point (which
   itself memoizes the index-probe fast path) — then scatter the inner
   rows back against the outer selection vector.  Pairs are emitted
   slot-major (outer order) with inner rows in inner order, matching
   the row engine's Apply output order exactly. *)
and compile_apply (v : vctx) node (kind : join_kind) (pred : expr) (left : op)
    (right : op) : source =
  let child = consuming node (compile v left) in
  let lschema = Op.schema left and rschema = Op.schema right in
  let out_schema = lschema @ rschema in
  let free = Op.free_cols right in
  (* correlation parameters: outer columns the inner tree references *)
  let params =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (c : Col.t) ->
        Col.Set.mem c free
        && not (Hashtbl.mem seen c.Col.id)
        && (Hashtbl.add seen c.Col.id ();
            true))
      lschema
  in
  let lpos = positions lschema in
  let param_ids = Array.of_list (List.map (fun (c : Col.t) -> c.Col.id) params) in
  let nparams = Array.length param_ids in
  let rewrite = if nparams = 0 then None else detect_apply_rewrite v right in
  let true_pred = is_true_const pred in
  let cpos = lazy (positions out_schema) in
  let ctx = v.ctx in
  (* hoist the probe-path cache lookup out of the per-binding loop —
     the row engine's [exec_apply] does the same for its per-row loop *)
  let probe = Ex.probe_path ctx right in
  let run_binding : (Ex.lookup -> Ex.row list) =
    match probe with
    | Some f ->
        fun env ->
          ctx.Ex.apply_invocations <- ctx.Ex.apply_invocations + 1;
          ctx.Ex.rows_processed <- ctx.Ex.rows_processed + 1;
          Ex.check_budget ctx;
          (match node with Some nd -> Metrics.add_fast_hit nd | None -> ());
          f env
    | None -> fun env -> fst (Ex.run_inner ctx env right)
  in
  (* Semi/Anti under a constant-true predicate only need existence per
     binding — no pair construction, no row materialization; with an
     index on the whole inner predicate, not even a row list *)
  let existence_only =
    match kind with Semi | Anti -> true_pred | _ -> false
  in
  let exists_probe =
    if existence_only then Ex.probe_exists_path ctx right else None
  in
  let param_pos =
    Array.of_list
      (List.map
         (fun (c : Col.t) ->
           match Hashtbl.find_opt lpos c.Col.id with
           | Some i -> i
           | None -> runtime_error "correlation parameter missing: %s" c.Col.name)
         params)
  in
  let process (lb : Batch.t) : Batch.t list =
    let n = Batch.length lb in
    let pcols = Array.map (fun i -> Batch.gather lb i) param_pos in
    let gidx, ng, _ = group_indices (Array.to_list pcols) n in
    (match node with
    | Some nd -> Metrics.add_apply_batch nd ~bindings:ng ~dedup_hits:(n - ng)
    | None -> ());
    ctx.Ex.apply_batches <- ctx.Ex.apply_batches + 1;
    ctx.Ex.apply_bindings <- ctx.Ex.apply_bindings + ng;
    ctx.Ex.apply_dedup_hits <- ctx.Ex.apply_dedup_hits + (n - ng);
    (* representative outer slot per binding *)
    let reps = Array.make (max 1 ng) 0 in
    for s = n - 1 downto 0 do
      reps.(gidx.(s)) <- s
    done;
    let env_of g =
      let s = reps.(g) in
      fun id ->
        let rec go k =
          if k >= nparams then None
          else if param_ids.(k) = id then Some pcols.(k).(s)
          else go (k + 1)
        in
        go 0
    in
    (* one reusable binding environment for the eager per-binding calls
       (a closure per binding only matters at this scale because the
       whole query is tens of microseconds); [run_rewrite] keeps
       [env_of] — it retains one env per binding *)
    let cursor = ref 0 in
    let cursor_env : Ex.lookup =
      if nparams = 1 then (
        let id0 = param_ids.(0) and col0 = pcols.(0) in
        fun id -> if id = id0 then Some col0.(reps.(!cursor)) else None)
      else
        fun id ->
          let s = reps.(!cursor) in
          let rec go k =
            if k >= nparams then None
            else if param_ids.(k) = id then Some pcols.(k).(s)
            else go (k + 1)
          in
          go 0
    in
    let result =
      match rewrite with
      | None when existence_only ->
          (* existence only: no pair construction, no predicate pass,
             and the inner row lists are never materialized as arrays *)
          let want = kind = Semi in
          let nonempty =
            match exists_probe with
            | Some f ->
                Array.init ng (fun g ->
                    cursor := g;
                    ctx.Ex.apply_invocations <- ctx.Ex.apply_invocations + 1;
                    ctx.Ex.rows_processed <- ctx.Ex.rows_processed + 1;
                    Ex.check_budget ctx;
                    (match node with
                    | Some nd -> Metrics.add_fast_hit nd
                    | None -> ());
                    f cursor_env)
            | None ->
                Array.init ng (fun g ->
                    cursor := g;
                    match run_binding cursor_env with
                    | [] -> false
                    | _ :: _ -> true)
          in
          let keep = Ints.create () in
          for s = 0 to n - 1 do
            if nonempty.(gidx.(s)) = want then Ints.push keep s
          done;
          Batch.take lb (Ints.to_array keep)
      | _ ->
          let group_rows =
            match rewrite with
            | Some rw -> run_rewrite v rw ng env_of
            | None ->
                Array.init ng (fun g ->
                    cursor := g;
                    Array.of_list (run_binding cursor_env))
          in
          (match kind with
          | (Semi | Anti) when true_pred ->
              (* existence only off the rewrite's per-group arrays *)
              let want = kind = Semi in
              let keep = Ints.create () in
              for s = 0 to n - 1 do
                if Array.length group_rows.(gidx.(s)) > 0 = want then
                  Ints.push keep s
              done;
              Batch.take lb (Ints.to_array keep)
          | Inner when true_pred ->
              (* every (outer slot, inner row) pair survives: build the
                 output columns in one pass straight off the group row
                 arrays — outer values replicate run-length per slot, no
                 pair-index/row/option intermediates.  This is the hot
                 shape (correlated scan feeding an aggregate). *)
              let counts = Array.make (max 1 n) 0 in
              let npairs = ref 0 in
              for s = 0 to n - 1 do
                let m = Array.length group_rows.(gidx.(s)) in
                counts.(s) <- m;
                npairs := !npairs + m
              done;
              let npairs = !npairs in
              let lcols =
                Array.map
                  (fun col ->
                    lazy
                      (let src = Lazy.force col in
                       let out = Array.make npairs Value.Null in
                       let p = ref 0 in
                       for s = 0 to n - 1 do
                         let v = src.(lb.Batch.sel.(s)) in
                         for _ = 1 to counts.(s) do
                           out.(!p) <- v;
                           incr p
                         done
                       done;
                       out))
                  lb.Batch.cols
              in
              let rcols =
                Array.init (List.length rschema) (fun c ->
                    lazy
                      (let out = Array.make npairs Value.Null in
                       let p = ref 0 in
                       for s = 0 to n - 1 do
                         let rows = group_rows.(gidx.(s)) in
                         for j = 0 to Array.length rows - 1 do
                           out.(!p) <- rows.(j).(c);
                           incr p
                         done
                       done;
                       out))
              in
              { Batch.schema = out_schema;
                cols = Array.append lcols rcols;
                sel = Batch.iota npairs
              }
          | _ ->
          (* scatter: one (outer slot, inner row) pair list, slot-major *)
          let starts = Array.make (n + 1) 0 in
          for s = 0 to n - 1 do
            starts.(s + 1) <- starts.(s) + Array.length group_rows.(gidx.(s))
          done;
          let npairs = starts.(n) in
          let pair_slots = Array.make npairs 0 in
          let pair_rows = Array.make (max 1 npairs) [||] in
          for s = 0 to n - 1 do
            let rows = group_rows.(gidx.(s)) in
            let base = starts.(s) in
            Array.iteri
              (fun j r ->
                pair_slots.(base + j) <- s;
                pair_rows.(base + j) <- r)
              rows
          done;
          let flags =
            if true_pred then [||] (* unused: every pair is kept *)
            else begin
              let lpart = Batch.take lb pair_slots in
              let rpart =
                Batch.scatter rschema (Array.init npairs (fun p -> Some pair_rows.(p)))
              in
              let combined =
                { Batch.schema = out_schema;
                  cols = Array.append lpart.Batch.cols rpart.Batch.cols;
                  sel = Batch.iota npairs
                }
              in
              eval_flags combined (Lazy.force cpos) pred
            end
          in
          let kept p = true_pred || flags.(p) in
          let paired slots rows =
            let lpart = Batch.take lb slots and rpart = Batch.scatter rschema rows in
            { Batch.schema = out_schema;
              cols = Array.append lpart.Batch.cols rpart.Batch.cols;
              sel = Batch.iota (Array.length slots)
            }
          in
          (match kind with
          | Inner ->
              let keep = Ints.create () in
              Array.iteri (fun p f -> if f then Ints.push keep p) flags;
              let keep = Ints.to_array keep in
              paired
                (Array.map (fun p -> pair_slots.(p)) keep)
                (Array.map (fun p -> Some pair_rows.(p)) keep)
          | LeftOuter ->
              (* matched pairs in place; an unmatched outer slot emits one
                 NULL-padded row ([Batch.scatter] expands [None]) *)
              let slots = Ints.create () and rows = ref [] in
              for s = 0 to n - 1 do
                let matched = ref false in
                for p = starts.(s) to starts.(s + 1) - 1 do
                  if kept p then begin
                    matched := true;
                    Ints.push slots s;
                    rows := Some pair_rows.(p) :: !rows
                  end
                done;
                if not !matched then begin
                  Ints.push slots s;
                  rows := None :: !rows
                end
              done;
              paired (Ints.to_array slots) (Array.of_list (List.rev !rows))
          | Semi | Anti ->
              let want = kind = Semi in
              let keep = Ints.create () in
              for s = 0 to n - 1 do
                let matched = ref false in
                for p = starts.(s) to starts.(s + 1) - 1 do
                  if kept p then matched := true
                done;
                if !matched = want then Ints.push keep s
              done;
              Batch.take lb (Ints.to_array keep)))
    in
    Batch.chunks ~size:v.batch_size result
  in
  let pending = ref [] in
  let rec pull () =
    match !pending with
    | b :: rest ->
        pending := rest;
        Some b
    | [] -> (
        match child () with
        | None -> None
        | Some lb ->
            if Batch.length lb = 0 then pull ()
            else begin
              pending := process lb;
              pull ()
            end)
  in
  pull

(* SegmentApply: drain the outer, partition by the segment columns
   (first-seen order, like the row engine), run the inner once per
   segment with [ctx.seg] bound, and pair each inner row with the
   segment's proto row — segment key columns carry the defining values,
   other outer columns are NULL. *)
and compile_segment_apply (v : vctx) node (seg_cols : Col.t list) (outer : op)
    (inner : op) : source =
  let osrc = consuming node (compile v outer) in
  let oschema = Op.schema outer and ischema = Op.schema inner in
  let out_schema = oschema @ ischema in
  let oarity = List.length oschema in
  emit (fun () ->
      let ob = drain oschema osrc in
      let opos = positions oschema in
      let seg_pos =
        Array.of_list
          (List.map
             (fun (c : Col.t) ->
               match Hashtbl.find_opt opos c.Col.id with
               | Some i -> i
               | None -> runtime_error "segment column missing: %s" c.Col.name)
             seg_cols)
      in
      let n = Batch.length ob in
      let key_cols = Array.map (Batch.gather ob) seg_pos in
      let gidx, ng, _ = group_indices (Array.to_list key_cols) n in
      (match node with
      | Some nd -> Metrics.add_apply_batch nd ~bindings:ng ~dedup_hits:(n - ng)
      | None -> ());
      v.ctx.Ex.apply_batches <- v.ctx.Ex.apply_batches + 1;
      v.ctx.Ex.apply_bindings <- v.ctx.Ex.apply_bindings + ng;
      v.ctx.Ex.apply_dedup_hits <- v.ctx.Ex.apply_dedup_hits + (n - ng);
      (* member slots per segment, in row order *)
      let members = Array.make (max 1 ng) [] in
      for s = n - 1 downto 0 do
        members.(gidx.(s)) <- s :: members.(gidx.(s))
      done;
      let out = ref [] in
      for g = 0 to ng - 1 do
        let slots = members.(g) in
        let seg_rows = List.map (Batch.row ob) slots in
        let rep = List.hd slots in
        let saved = v.ctx.Ex.seg in
        v.ctx.Ex.seg <- Some (oschema, seg_rows);
        let ib =
          Fun.protect
            ~finally:(fun () -> v.ctx.Ex.seg <- saved)
            (fun () -> drain ischema (compile v inner))
        in
        let m = Batch.length ib in
        if m > 0 then begin
          let proto = Array.make oarity Value.Null in
          Array.iteri (fun k p -> proto.(p) <- key_cols.(k).(rep)) seg_pos;
          let lcols = Array.init oarity (fun c -> lazy (Array.make m proto.(c))) in
          let ibd = Batch.take ib (Batch.iota m) in
          out :=
            { Batch.schema = out_schema;
              cols = Array.append lcols ibd.Batch.cols;
              sel = Batch.iota m
            }
            :: !out
        end
      done;
      List.concat_map (Batch.chunks ~size:v.batch_size) (List.rev !out))

(* SegmentHole: the leaf inside a SegmentApply inner tree that reads
   the current segment.  [ctx.seg] is consulted at pull time, so each
   per-segment compilation of the inner sees its own segment. *)
and compile_segment_hole (v : vctx) (cols : Col.t list) (src : Col.t list) : source =
  emit (fun () ->
      match v.ctx.Ex.seg with
      | None -> runtime_error "SegmentHole outside SegmentApply"
      | Some (layout, rows) ->
          let pos = positions layout in
          let idx =
            List.map
              (fun (c : Col.t) ->
                match Hashtbl.find_opt pos c.Col.id with
                | Some i -> i
                | None -> runtime_error "segment source column missing: %s" c.Col.name)
              src
          in
          let projected =
            List.map
              (fun (r : Ex.row) -> Array.of_list (List.map (fun i -> r.(i)) idx))
              rows
          in
          Batch.chunks ~size:v.batch_size (Batch.of_rows cols projected))

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let default_batch_size = 1024

let run ?(batch_size = default_batch_size) (ctx : Ex.ctx) (o : op) : Ex.row list =
  let v = { ctx; batch_size = max 1 batch_size } in
  let src = compile v o in
  let rec go acc =
    match src () with None -> List.concat (List.rev acc) | Some b -> go (Batch.to_rows b :: acc)
  in
  go []

(* Fraction of plan nodes the vectorized engine runs natively (the
   rest cross the bridge); EXPLAIN-side diagnostics and tests. *)
let coverage (o : op) : int * int =
  let native = ref 0 and bridged = ref 0 in
  let rec go o =
    if node_supported o then begin
      incr native;
      List.iter go (Op.children o)
    end
    else bridged := !bridged + 1
  in
  go o;
  (!native, !bridged)
