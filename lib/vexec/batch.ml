(* Columnar batches.

   A batch is a set of full physical columns plus a selection vector of
   live physical row indices.  Filters compact only the selection
   vector; the column arrays are shared unchanged (for a table scan
   they alias the table's columnar cache directly).  Row order within a
   batch is the selection-vector order, so streaming operators preserve
   the row interpreter's ordering and the two engines are
   bag-comparable without sorting surprises.

   Columns are lazy: materializing operators (hash join pair gathers,
   sub-batch takes) describe every output column but pay for one only
   when a consumer actually reads it.  Renaming projections alias
   columns without forcing them, so a wide join under a narrow
   projection gathers just the columns the query touches — column
   pruning without a rewrite pass. *)

module Value = Relalg.Value
module Col = Relalg.Col

type col = Value.t array Lazy.t

type t = {
  schema : Col.t list;
  cols : col array;
      (** column-major; [cols.(c)] forces to a full physical column *)
  sel : int array;  (** physical indices of live rows, in output order *)
}

let length b = Array.length b.sel
let iota n = Array.init n (fun i -> i)

let is_iota sel =
  let n = Array.length sel in
  let rec go i = i >= n || (sel.(i) = i && go (i + 1)) in
  go 0

let empty schema = { schema; cols = [||]; sel = [||] }

let of_cols (schema : Col.t list) (cols : Value.t array array) (sel : int array) : t =
  { schema; cols = Array.map Lazy.from_val cols; sel }

(* Row-major -> batch (dense). *)
let of_rows (schema : Col.t list) (rows : Value.t array list) : t =
  let n = List.length rows in
  let arity = List.length schema in
  let cols = Array.init arity (fun _ -> Array.make n Value.Null) in
  List.iteri
    (fun i r ->
      for c = 0 to arity - 1 do
        cols.(c).(i) <- r.(c)
      done)
    rows;
  of_cols schema cols (iota n)

(* Row-major -> batch with per-column lazy extraction: a wide row set
   crossing into the columnar engine only transposes the columns the
   consumers actually read. *)
let of_rows_lazy (schema : Col.t list) (rows : Value.t array list) : t =
  let rows = Array.of_list rows in
  let n = Array.length rows in
  let cols =
    Array.init (List.length schema) (fun c ->
        lazy (Array.map (fun (r : Value.t array) -> r.(c)) rows))
  in
  { schema; cols; sel = iota n }

(* One logical row (slot index into the selection vector). *)
let row b slot : Value.t array =
  let i = b.sel.(slot) in
  Array.map (fun col -> (Lazy.force col).(i)) b.cols

let row_list b slot : Value.t list =
  let i = b.sel.(slot) in
  Array.fold_right (fun col acc -> (Lazy.force col).(i) :: acc) b.cols []

let to_rows b : Value.t array list =
  let cols = Array.map Lazy.force b.cols in
  List.init (length b) (fun s ->
      let i = b.sel.(s) in
      Array.map (fun col -> col.(i)) cols)

(* Column [c] gathered into a dense slot-indexed array. *)
let gather b c : Value.t array =
  let col = Lazy.force b.cols.(c) in
  Array.map (fun i -> col.(i)) b.sel

(* Row-major scatter: columns over an array of source rows, extracted
   lazily per column; [None] entries expand to all-NULL rows (the
   padding side of outer Apply).  This is how batched Apply scatters
   inner-plan results back against the outer selection vector. *)
let scatter (schema : Col.t list) (rows : Value.t array option array) : t =
  let n = Array.length rows in
  let cols =
    Array.init (List.length schema) (fun c ->
        lazy
          (Array.map
             (function Some (r : Value.t array) -> r.(c) | None -> Value.Null)
             rows))
  in
  { schema; cols; sel = iota n }

(* Sub-batch of the given slots (slot indices, not physical); columns
   gather lazily, only if read. *)
let take b (slots : int array) : t =
  { schema = b.schema;
    cols =
      Array.map
        (fun col ->
          lazy
            (let c = Lazy.force col in
             Array.map (fun s -> c.(b.sel.(s))) slots))
        b.cols;
    sel = iota (Array.length slots)
  }

(* Concatenate into one batch under [schema] (all inputs must share its
   arity).  A single already-dense input is reused as is, and chunks
   that alias the same physical columns (a chunked table scan, or
   filters over one) are re-joined by concatenating only their
   selection vectors — no column copying.  The general case copies
   lazily, per column read. *)
let concat (schema : Col.t list) (bs : t list) : t =
  let arity = List.length schema in
  let total = List.fold_left (fun n b -> n + length b) 0 bs in
  let shared_cols =
    match bs with
    | [] -> None
    | b0 :: rest ->
        if List.for_all (fun b -> b.cols == b0.cols) rest then Some b0.cols else None
  in
  match (bs, shared_cols) with
  | [ b ], _ when is_iota b.sel && Array.length b.cols = arity -> { b with schema }
  | _, Some cols ->
      (* physical columns may be a superset of the schema (a scan
         aliasing the table cache); trim so column index = schema
         position stays true for consumers that append column sets *)
      let cols = if Array.length cols > arity then Array.sub cols 0 arity else cols in
      { schema; cols; sel = Array.concat (List.map (fun b -> b.sel) bs) }
  | _, None ->
      let cols =
        Array.init arity (fun c ->
            lazy
              (let dst = Array.make total Value.Null in
               let off = ref 0 in
               List.iter
                 (fun b ->
                   let src = Lazy.force b.cols.(c) in
                   Array.iteri (fun s i -> dst.(!off + s) <- src.(i)) b.sel;
                   off := !off + length b)
                 bs;
               dst))
      in
      { schema; cols; sel = iota total }

(* Split into batches of at most [size] rows, sharing the columns. *)
let chunks ~size b : t list =
  let n = length b in
  if n = 0 then []
  else begin
    let size = max 1 size in
    let out = ref [] in
    let start = ref 0 in
    while !start < n do
      let stop = min n (!start + size) in
      out := { b with sel = Array.sub b.sel !start (stop - !start) } :: !out;
      start := stop
    done;
    List.rev !out
  end
