(** Columnar batches: full physical columns plus a selection vector of
    live physical row indices.  Filters compact only the selection
    vector; column arrays are shared (table scans alias the storage
    layer's columnar cache).  Columns are lazy — materializing
    operators describe their output columns and pay for one only when
    a consumer reads it, which prunes never-touched columns. *)

type col = Relalg.Value.t array Lazy.t

type t = {
  schema : Relalg.Col.t list;
  cols : col array;
      (** column-major; [cols.(c)] forces to a full physical column *)
  sel : int array;  (** physical indices of live rows, in output order *)
}

(** Live row count. *)
val length : t -> int

val iota : int -> int array
val empty : Relalg.Col.t list -> t

(** Wrap eager physical columns (shared, not copied). *)
val of_cols : Relalg.Col.t list -> Relalg.Value.t array array -> int array -> t

val of_rows : Relalg.Col.t list -> Relalg.Value.t array list -> t

(** Like {!of_rows}, but each column transposes lazily on first read. *)
val of_rows_lazy : Relalg.Col.t list -> Relalg.Value.t array list -> t

(** One logical row, by slot index into the selection vector. *)
val row : t -> int -> Relalg.Value.t array

val row_list : t -> int -> Relalg.Value.t list
val to_rows : t -> Relalg.Value.t array list

(** Column [c] gathered into a dense slot-indexed array. *)
val gather : t -> int -> Relalg.Value.t array

(** Row-major scatter: lazy columns over an array of source rows;
    [None] entries expand to all-NULL rows (outer-Apply padding). *)
val scatter :
  Relalg.Col.t list -> Relalg.Value.t array option array -> t

(** Dense sub-batch of the given slot indices. *)
val take : t -> int array -> t

(** Concatenate into one dense batch under the given schema. *)
val concat : Relalg.Col.t list -> t list -> t

(** Split into batches of at most [size] rows, sharing the columns. *)
val chunks : size:int -> t -> t list
