(** Fault injection for the executor.

    A fault plan decides, at every operator evaluation, whether to kill
    the query with {!Injected}.  Plans are deterministic given their
    {!spec}: nth-call and every-nth modes count matching operator
    evaluations, and the probabilistic mode draws from a splitmix64
    stream seeded by [seed], so a failing run is always reproducible.

    Specs are immutable and shareable; the armed state ({!t}) is
    strictly per-query — create a fresh one per execution and never
    share it between concurrent queries (the call counter and PRNG
    stream are unsynchronized by design). *)

(** Operator kinds, mirroring [Relalg.Algebra.op] constructors. *)
type op_kind =
  | Scan
  | ConstTable
  | SegmentHole
  | Select
  | Project
  | Join
  | Apply
  | SegmentApply
  | GroupBy
  | ScalarAgg
  | UnionAll
  | Except
  | Max1row
  | Rownum

val op_kind_to_string : op_kind -> string
val op_kind_of_string : string -> op_kind option

type target = Any | Kind of op_kind

type mode =
  | Nth of int  (** fail exactly on the nth matching evaluation (1-based) *)
  | Every of int  (** fail on every nth matching evaluation *)
  | Probabilistic of float  (** per-evaluation failure probability *)

type spec = { target : target; mode : mode; seed : int }

exception Injected of { kind : op_kind; call : int }

val injected_to_string : op_kind -> int -> string

(** Seeded splitmix64 stream, shared by the probabilistic fault mode,
    the query fuzzer ({!Testgen.Qgen}) and the service's backoff
    jitter: one generator, one reproducibility story.  Streams are
    unsynchronized — use one per domain. *)
module Rng : sig
  type t

  val create : int -> t
  val next : t -> int64

  (** uniform in [0, 1) *)
  val float : t -> float

  (** uniform-enough in [0, bound); bound <= 0 yields 0 *)
  val int : t -> int -> int

  val pick : t -> 'a list -> 'a
  val bool : t -> float -> bool
end

(** Armed per-query fault state: matching-call counter + PRNG stream. *)
type t

val create : spec -> t

(** A spec whose probabilistic stream is decorrelated from [spec]'s by
    [salt] (e.g. a request id): one service-level fault spec fans out
    into independent, individually replayable per-query streams. *)
val derive : spec -> salt:int -> spec

val next_float : t -> float

(** Called by the executor at each operator evaluation; raises
    {!Injected} when the plan says this evaluation dies. *)
val tick : t -> op_kind -> unit

(** ["join:nth:3"], ["any:p:0.01:seed:7"], ["groupby:every:10"] — the
    CLI and test-harness surface syntax. *)
val parse : string -> (spec, string) result

val spec_to_string : spec -> string

(** The I/O fault family (crash injection for the durability layer),
    re-exported from {!Storage.Io_faults} so harnesses have one
    [Faults] namespace for both operator and I/O fault specs. *)
module Io = Storage.Io_faults
