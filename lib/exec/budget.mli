(** Cooperative query budgets.

    A budget bounds the resources one query may consume: rows processed,
    Apply invocations, wall-clock time per execution ([timeout_s]), and
    an absolute admission deadline ([deadline_at]).  The executor (row
    and vector engines alike) calls {!check} at every operator
    boundary; a violated limit raises {!Exceeded} with the progress
    counters accumulated so far, which makes cancellation cooperative:
    a query stops at the next operator boundary after its limit trips,
    never mid-row.

    Timeout vs deadline: [timeout_s] is measured from executor start
    and bounds one attempt; [deadline_at] is an absolute point in time
    fixed at service admission, so queueing, retries and backoff sleeps
    all consume it.  They raise distinct {!trip} values so callers can
    distinguish an attempt that ran long ([Timeout]) from a request
    whose overall deadline passed ([Deadline]). *)

type t = {
  max_rows : int option;  (** cap on total rows processed by operators *)
  max_apply : int option;  (** cap on Apply invocations (correlated work) *)
  timeout_s : float option;  (** wall-clock limit per execution, in seconds *)
  deadline_at : float option;
      (** absolute Unix time the whole request must finish by *)
}

val unlimited : t

val make :
  ?max_rows:int -> ?max_apply:int -> ?timeout_s:float -> ?deadline_at:float -> unit -> t

val is_unlimited : t -> bool

(** Narrow a budget to an admission deadline; an existing earlier
    deadline wins. *)
val with_deadline : t -> float -> t

(** Which resource tripped. *)
type trip = Rows | Applies | Timeout | Deadline

(** Partial-progress counters at the moment the budget tripped.
    [overdue_s] is how far past the admission deadline the trip
    happened — 0 unless the trip is [Deadline] — so error reports and
    service metrics can separate shed-before-start from cancelled
    mid-execution. *)
type progress = {
  rows_processed : int;
  apply_invocations : int;
  elapsed_s : float;
  overdue_s : float;
}

exception Exceeded of trip * progress

val trip_to_string : trip -> string
val to_string : trip -> progress -> string

(** Cooperative check; raises {!Exceeded} on the first violated limit.
    [started] is the Unix time at executor start. *)
val check : t -> started:float -> rows_processed:int -> apply_invocations:int -> unit
