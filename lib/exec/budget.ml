(* Query budgets: cooperative resource limits checked inside the
   executor's row loops.

   A budget bounds three resources that runaway plans consume —
   rows flowing through operators, Apply invocations (the unit of
   correlated work), and wall-clock time.  The executor checks the
   budget at every operator boundary and raises [Exceeded] with the
   progress counters accumulated so far, so callers can report how far
   a query got before it was cut off (and, via
   [Engine.query_resilient], retry on a cheaper plan shape). *)

type t = {
  max_rows : int option;  (** cap on total rows processed by operators *)
  max_apply : int option;  (** cap on Apply invocations (correlated work) *)
  timeout_s : float option;  (** wall-clock limit in seconds *)
}

let unlimited = { max_rows = None; max_apply = None; timeout_s = None }

let make ?max_rows ?max_apply ?timeout_s () = { max_rows; max_apply; timeout_s }

let is_unlimited b = b.max_rows = None && b.max_apply = None && b.timeout_s = None

(* Which resource tripped. *)
type trip = Rows | Applies | Timeout

(* Partial-progress counters at the moment the budget tripped. *)
type progress = {
  rows_processed : int;
  apply_invocations : int;
  elapsed_s : float;
}

exception Exceeded of trip * progress

let trip_to_string = function
  | Rows -> "row budget"
  | Applies -> "apply budget"
  | Timeout -> "timeout"

let to_string (t : trip) (p : progress) =
  Printf.sprintf "%s exceeded after %d rows, %d apply invocations, %.3fs"
    (trip_to_string t) p.rows_processed p.apply_invocations p.elapsed_s

(* Cooperative check.  [started] is the Unix time at executor start;
   counters are the executor's running totals. *)
let check (b : t) ~started ~rows_processed ~apply_invocations =
  let progress trip =
    raise
      (Exceeded
         ( trip,
           { rows_processed;
             apply_invocations;
             elapsed_s = Unix.gettimeofday () -. started;
           } ))
  in
  (match b.max_rows with
  | Some n when rows_processed > n -> progress Rows
  | _ -> ());
  (match b.max_apply with
  | Some n when apply_invocations > n -> progress Applies
  | _ -> ());
  (* [>=] so a zero timeout means "trip at the first check" even when
     the clock has not advanced a full microsecond yet *)
  match b.timeout_s with
  | Some limit when Unix.gettimeofday () -. started >= limit -> progress Timeout
  | _ -> ()
