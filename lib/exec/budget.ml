(* Query budgets: cooperative resource limits checked inside the
   executor's row loops.

   A budget bounds four resources that runaway plans consume — rows
   flowing through operators, Apply invocations (the unit of correlated
   work), wall-clock time since the executor started, and wall-clock
   time since the request was *admitted* (the service deadline).  The
   executor checks the budget at every operator boundary and raises
   [Exceeded] with the progress counters accumulated so far, so callers
   can report how far a query got before it was cut off (and, via
   [Engine.query_resilient] or the service's degradation ladder, retry
   on a cheaper plan shape).

   [timeout_s] and [deadline_at] answer different questions.  A timeout
   is relative to executor start: "this attempt may burn at most N
   seconds".  A deadline is an absolute point in time fixed when the
   request was admitted to a service queue: queueing delay, retries and
   backoff sleeps all consume it, so a request cannot ride its retry
   policy past the caller's patience.  They trip as distinct [trip]
   values ([Timeout] vs [Deadline]) so error reports and service
   metrics can tell an attempt that ran too long from a request that
   ran out of admission deadline. *)

type t = {
  max_rows : int option;  (** cap on total rows processed by operators *)
  max_apply : int option;  (** cap on Apply invocations (correlated work) *)
  timeout_s : float option;  (** wall-clock limit per execution, in seconds *)
  deadline_at : float option;
      (** absolute Unix time the whole request must finish by; measured
          from admission, not from executor start *)
}

let unlimited = { max_rows = None; max_apply = None; timeout_s = None; deadline_at = None }

let make ?max_rows ?max_apply ?timeout_s ?deadline_at () =
  { max_rows; max_apply; timeout_s; deadline_at }

let is_unlimited b =
  b.max_rows = None && b.max_apply = None && b.timeout_s = None && b.deadline_at = None

(* Narrow an existing budget to an admission deadline (the service's
   per-request cancellation point); an existing earlier deadline wins. *)
let with_deadline (b : t) (deadline_at : float) : t =
  match b.deadline_at with
  | Some d when d <= deadline_at -> b
  | _ -> { b with deadline_at = Some deadline_at }

(* Which resource tripped. *)
type trip = Rows | Applies | Timeout | Deadline

(* Partial-progress counters at the moment the budget tripped. *)
type progress = {
  rows_processed : int;
  apply_invocations : int;
  elapsed_s : float;  (** since executor start *)
  overdue_s : float;
      (** how far past the admission deadline the trip happened;
          0 unless the trip is [Deadline] *)
}

exception Exceeded of trip * progress

let trip_to_string = function
  | Rows -> "row budget"
  | Applies -> "apply budget"
  | Timeout -> "timeout"
  | Deadline -> "deadline"

let to_string (t : trip) (p : progress) =
  match t with
  | Deadline ->
      Printf.sprintf
        "deadline exceeded (%.3fs past admission deadline) after %d rows, %d apply \
         invocations, %.3fs in executor"
        p.overdue_s p.rows_processed p.apply_invocations p.elapsed_s
  | _ ->
      Printf.sprintf "%s exceeded after %d rows, %d apply invocations, %.3fs"
        (trip_to_string t) p.rows_processed p.apply_invocations p.elapsed_s

(* Cooperative check.  [started] is the Unix time at executor start;
   counters are the executor's running totals. *)
let check (b : t) ~started ~rows_processed ~apply_invocations =
  let progress ?(overdue_s = 0.) trip =
    raise
      (Exceeded
         ( trip,
           { rows_processed;
             apply_invocations;
             elapsed_s = Unix.gettimeofday () -. started;
             overdue_s;
           } ))
  in
  (match b.max_rows with
  | Some n when rows_processed > n -> progress Rows
  | _ -> ());
  (match b.max_apply with
  | Some n when apply_invocations > n -> progress Applies
  | _ -> ());
  (* [>=] so a zero timeout means "trip at the first check" even when
     the clock has not advanced a full microsecond yet *)
  (match b.timeout_s with
  | Some limit when Unix.gettimeofday () -. started >= limit -> progress Timeout
  | _ -> ());
  match b.deadline_at with
  | Some d ->
      let now = Unix.gettimeofday () in
      if now >= d then progress ~overdue_s:(now -. d) Deadline
  | None -> ()
