(* Fault injection for the executor.

   A fault plan decides, at every operator evaluation, whether to kill
   the query with [Injected].  Plans are deterministic given their
   specification: nth-call and every-nth modes count matching operator
   evaluations, and the probabilistic mode draws from a splitmix64
   stream seeded by [seed], so a failing run is always reproducible.

   Targeting by operator kind is what makes the harness useful for the
   degradation logic: injecting into [Join] (or [GroupBy]) kills
   decorrelated plans while leaving the Apply-shaped correlated plan
   untouched, which is exactly the situation [Engine.query_resilient]
   must survive. *)

(* Operator kinds, mirroring [Relalg.Algebra.op] constructors. *)
type op_kind =
  | Scan
  | ConstTable
  | SegmentHole
  | Select
  | Project
  | Join
  | Apply
  | SegmentApply
  | GroupBy
  | ScalarAgg
  | UnionAll
  | Except
  | Max1row
  | Rownum

let op_kind_to_string = function
  | Scan -> "scan"
  | ConstTable -> "const"
  | SegmentHole -> "hole"
  | Select -> "select"
  | Project -> "project"
  | Join -> "join"
  | Apply -> "apply"
  | SegmentApply -> "segment-apply"
  | GroupBy -> "groupby"
  | ScalarAgg -> "scalar-agg"
  | UnionAll -> "union"
  | Except -> "except"
  | Max1row -> "max1row"
  | Rownum -> "rownum"

let op_kind_of_string = function
  | "scan" -> Some Scan
  | "const" -> Some ConstTable
  | "hole" -> Some SegmentHole
  | "select" -> Some Select
  | "project" -> Some Project
  | "join" -> Some Join
  | "apply" -> Some Apply
  | "segment-apply" -> Some SegmentApply
  | "groupby" -> Some GroupBy
  | "scalar-agg" -> Some ScalarAgg
  | "union" -> Some UnionAll
  | "except" -> Some Except
  | "max1row" -> Some Max1row
  | "rownum" -> Some Rownum
  | _ -> None

type target = Any | Kind of op_kind

type mode =
  | Nth of int  (** fail exactly on the nth matching evaluation (1-based) *)
  | Every of int  (** fail on every nth matching evaluation *)
  | Probabilistic of float  (** per-evaluation failure probability *)

type spec = { target : target; mode : mode; seed : int }

exception Injected of { kind : op_kind; call : int }

let injected_to_string (kind : op_kind) (call : int) =
  Printf.sprintf "injected fault at %s evaluation #%d" (op_kind_to_string kind) call

(* Seeded splitmix64 stream, shared by the probabilistic fault mode and
   the query fuzzer (lib/testgen): one generator, one reproducibility
   story. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create (seed : int) : t = { state = Int64.of_int ((seed * 2) + 1) }

  (* one splitmix64 step *)
  let next (g : t) : int64 =
    let open Int64 in
    g.state <- add g.state 0x9E3779B97F4A7C15L;
    let z = g.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (* uniform float in [0, 1) *)
  let float (g : t) : float =
    Int64.to_float (Int64.shift_right_logical (next g) 11) /. 9007199254740992.0

  (* uniform-enough int in [0, bound); bound <= 0 yields 0 *)
  let int (g : t) (bound : int) : int =
    if bound <= 0 then 0
    else Int64.to_int (Int64.rem (Int64.shift_right_logical (next g) 1) (Int64.of_int bound))

  let pick (g : t) (l : 'a list) : 'a = List.nth l (int g (List.length l))

  let bool (g : t) (p : float) : bool = float g < p
end

(* Mutable plan state: matching-call counter and PRNG stream.

   The state is strictly per-query: a [t] must be created fresh (from
   an immutable [spec]) for each query execution and never shared
   between concurrent queries — the call counter and the splitmix64
   stream are unsynchronized by design, so a shared [t] would both
   race across domains and destroy replayability.  Services that run
   many queries from one configured spec derive a per-request spec
   with [derive] and arm a fresh [t] per execution. *)
type t = { spec : spec; mutable calls : int; rng : Rng.t }

let create (spec : spec) : t = { spec; calls = 0; rng = Rng.create spec.seed }

(* A spec whose probabilistic stream is decorrelated from [spec]'s by
   [salt] (e.g. a request id): one service-level fault spec fans out
   into independent, individually replayable per-query streams.
   Deterministic modes (nth/every) count per-query evaluations and are
   unaffected by the seed. *)
let derive (spec : spec) ~(salt : int) : spec =
  let mixed =
    let g = Rng.create ((spec.seed * 0x1000193) lxor salt) in
    Int64.to_int (Int64.shift_right_logical (Rng.next g) 2)
  in
  { spec with seed = mixed }

let next_float (f : t) : float = Rng.float f.rng

let matches (f : t) (kind : op_kind) =
  match f.spec.target with Any -> true | Kind k -> k = kind

(* Called by the executor at each operator evaluation; raises [Injected]
   when the plan says this evaluation dies. *)
let tick (f : t) (kind : op_kind) : unit =
  if matches f kind then begin
    f.calls <- f.calls + 1;
    let die =
      match f.spec.mode with
      | Nth n -> f.calls = n
      | Every n -> n > 0 && f.calls mod n = 0
      | Probabilistic p -> next_float f < p
    in
    if die then raise (Injected { kind; call = f.calls })
  end

(* "join:nth:3", "any:p:0.01:seed:7", "groupby:every:10" — the CLI and
   test-harness surface syntax. *)
let parse (s : string) : (spec, string) result =
  let parts = String.split_on_char ':' s in
  let target_of k =
    if k = "any" then Ok Any
    else
      match op_kind_of_string k with
      | Some kind -> Ok (Kind kind)
      | None -> Error ("unknown operator kind: " ^ k)
  in
  let int_of v = try Ok (int_of_string v) with _ -> Error ("bad integer: " ^ v) in
  let float_of v = try Ok (float_of_string v) with _ -> Error ("bad float: " ^ v) in
  let ( let* ) = Result.bind in
  match parts with
  | [ k; "nth"; n ] ->
      let* target = target_of k in
      let* n = int_of n in
      Ok { target; mode = Nth n; seed = 0 }
  | [ k; "every"; n ] ->
      let* target = target_of k in
      let* n = int_of n in
      Ok { target; mode = Every n; seed = 0 }
  | [ k; "p"; p ] ->
      let* target = target_of k in
      let* p = float_of p in
      Ok { target; mode = Probabilistic p; seed = 0 }
  | [ k; "p"; p; "seed"; seed ] ->
      let* target = target_of k in
      let* p = float_of p in
      let* seed = int_of seed in
      Ok { target; mode = Probabilistic p; seed }
  | _ -> Error ("cannot parse fault spec: " ^ s)

let spec_to_string (s : spec) =
  let k = match s.target with Any -> "any" | Kind k -> op_kind_to_string k in
  match s.mode with
  | Nth n -> Printf.sprintf "%s:nth:%d" k n
  | Every n -> Printf.sprintf "%s:every:%d" k n
  | Probabilistic p -> Printf.sprintf "%s:p:%g:seed:%d" k p s.seed

(* The I/O fault family lives in [Storage.Io_faults] (the storage
   layer cannot depend on exec); re-exported here so harnesses have
   one [Faults] namespace for both operator and I/O fault specs. *)
module Io = Storage.Io_faults
