(** Per-operator runtime metrics (EXPLAIN ANALYZE).

    A metrics tree mirrors the plan tree; the executor attributes
    invocations, rows in/out, inclusive wall time, Apply fast-path hits
    and hash-build sizes to the node of the operator being evaluated.
    Lookup is by physical identity of the plan node, so the layer is
    exact for the immutable plan the executor runs and costs one
    [match] per operator evaluation when disabled. *)

open Relalg.Algebra

(** Hashtable keyed on physical identity of plan nodes (also used by
    the executor to memoize per-operator schema position tables). *)
module PhysTbl : Hashtbl.S with type key = op

type node = {
  label : string Lazy.t;
      (** operator rendering, [Pp.label]; forced only when rendered *)
  mutable invocations : int;  (** times the operator was evaluated *)
  mutable rows_in : int;  (** cumulative input rows consumed *)
  mutable rows_out : int;  (** cumulative output rows produced *)
  mutable elapsed_s : float;  (** cumulative wall time, inclusive of children *)
  mutable fast_path_hits : int;  (** Apply index-probe uses (inner tree skipped) *)
  mutable hash_build_rows : int;  (** hash-join build rows / aggregation groups *)
  mutable batches : int;  (** vectorized batches produced (vector mode) *)
  mutable bridge_crossings : int;
      (** times the vectorized engine handed this subtree to the row
          interpreter and converted the rows back into batches *)
  mutable apply_batches : int;  (** outer batches processed by batched Apply *)
  mutable apply_bindings : int;  (** distinct correlation-parameter sets evaluated *)
  mutable apply_dedup_hits : int;
      (** outer rows served by an already-evaluated binding *)
  children : node list;
}

type t

(** Build the metrics tree for a plan, including nodes for subquery
    trees embedded in scalar expressions (the bound tree). *)
val create : op -> t

val root : t -> node
val find : t -> op -> node option

(** One completed evaluation of the operator. *)
val record : node -> elapsed_s:float -> rows_out:int -> unit

val add_rows_in : node -> int -> unit
val add_fast_hit : node -> unit
val add_hash_build : node -> int -> unit

(** One vectorized batch produced by the operator. *)
val add_batch : node -> unit

(** One batch↔row bridge crossing (vector mode fell back to the row
    interpreter for this subtree). *)
val add_bridge : node -> unit

(** One batched-Apply outer batch: [bindings] distinct
    correlation-parameter sets evaluated, [dedup_hits] outer rows that
    reused an already-evaluated binding. *)
val add_apply_batch : node -> bindings:int -> dedup_hits:int -> unit

(** Sum a counter over the whole tree (bench artifacts). *)
val total : (node -> int) -> node -> int

(** rows_out / rows_in, when the node consumed any input. *)
val selectivity : node -> float option

(** Annotated plan, one operator per line.  [times:false] omits
    wall-clock figures (stable output for golden tests). *)
val render : ?times:bool -> node -> string

(** JSON object escaping helper (shared by the CLI and benches). *)
val json_string : string -> string

val to_json : node -> string
