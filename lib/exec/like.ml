(* SQL LIKE pattern matching: % matches any sequence, _ any single
   character.  No escape syntax (not needed by the workloads).

   Greedy two-pointer wildcard matching with backtracking to the last
   %: linear on typical inputs, no allocation.  The vectorized engine
   evaluates LIKE over whole columns (no short-circuiting AND to hide
   behind), so per-call cost is hot there. *)

let matches ~(pattern : string) (s : string) : bool =
  let np = String.length pattern and ns = String.length s in
  let pi = ref 0 and si = ref 0 in
  (* last % position and the string position it is currently matched to *)
  let star = ref (-1) and mark = ref 0 in
  let result = ref None in
  while !result = None do
    if !si < ns then
      if !pi < np && (pattern.[!pi] = '_' || pattern.[!pi] = s.[!si]) then begin
        incr pi;
        incr si
      end
      else if !pi < np && pattern.[!pi] = '%' then begin
        star := !pi;
        mark := !si;
        incr pi
      end
      else if !star >= 0 then begin
        (* extend the last %'s match by one character and retry *)
        pi := !star + 1;
        incr mark;
        si := !mark
      end
      else result := Some false
    else begin
      (* string exhausted: any remaining pattern must be all % *)
      while !pi < np && pattern.[!pi] = '%' do
        incr pi
      done;
      result := Some (!pi = np)
    end
  done;
  !result = Some true
