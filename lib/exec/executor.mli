(** The execution engine: a materializing interpreter over logical
    operator trees.

    It executes every stage of the compilation pipeline — the binder's
    output (scalar/relational mutual recursion, paper Section 2.1),
    Apply trees (correlated nested loops with an index-probe fast path
    when the inner is a filtered indexed scan), and fully decorrelated
    trees (hash joins on equi-conjuncts, hash aggregation,
    SegmentApply).  Being able to run the unoptimized tree makes the
    interpreter the semantic ground truth for every rewrite. *)

open Relalg
open Relalg.Algebra

exception Runtime_error of string

type row = Value.t array

(** Correlation environment: column id -> value. *)
type lookup = int -> Value.t option

val empty_lookup : lookup

type ctx = {
  db : Storage.Database.t;
  mutable seg : (Col.t list * row list) option;
      (** current SegmentApply segment (outer layout, rows) *)
  mutable apply_invocations : int;  (** statistics for benches/tests *)
  mutable rows_processed : int;
  mutable bridge_crossings : int;
      (** vector mode: subtrees handed to this row interpreter *)
  mutable apply_batches : int;  (** vector mode: batched-Apply outer batches *)
  mutable apply_bindings : int;  (** vector mode: distinct parameter sets evaluated *)
  mutable apply_dedup_hits : int;
      (** vector mode: outer rows that reused an evaluated binding *)
  budget : Budget.t option;  (** cooperative resource limits *)
  faults : Faults.t option;  (** fault-injection plan (tests/harness) *)
  started : float;  (** Unix time at context creation, for timeouts *)
  metrics : Metrics.t option;  (** per-operator metrics tree (EXPLAIN ANALYZE) *)
  mutable mnode : Metrics.node option;
      (** metrics node of the operator currently being evaluated *)
  pos_cache : (int, int) Hashtbl.t Metrics.PhysTbl.t;
      (** schema position tables, memoized per plan node *)
  probe_cache : (lookup -> row list) option Metrics.PhysTbl.t;
      (** Apply index fast paths, memoized per inner tree *)
  mutable cse : (string -> row list) option;
      (** resolver for [CseScan] ids, installed by the engine when a
          CSE store is active; plans containing [CseScan] fail without
          one *)
}

(** [make_ctx ?budget ?faults ?metrics db] — a budget makes the
    executor raise {!Budget.Exceeded} mid-query when a limit trips; a
    fault plan makes it raise {!Faults.Injected} per the plan's
    schedule; a metrics tree (built with {!Metrics.create} from the
    plan about to run) makes every operator evaluation attribute
    invocations, rows and wall time to its node. *)
val make_ctx :
  ?budget:Budget.t -> ?faults:Faults.t -> ?metrics:Metrics.t -> Storage.Database.t -> ctx

(** Cooperative budget check against the context's running counters.
    @raise Budget.Exceeded when a limit trips. *)
val check_budget : ctx -> unit

(** Account [n] rows processed and re-check the budget. *)
val account_rows : ctx -> int -> unit

(** The fault-injection kind an operator evaluation ticks. *)
val op_fault_kind : Relalg.Algebra.op -> Faults.op_kind

(** Hashtable over grouping keys (value lists), shared with the
    vectorized engine so both modes group and join identically. *)
module VTbl : Hashtbl.S with type key = Value.t list

(** Aggregate accumulation, shared with the vectorized engine. *)
type acc = {
  mutable count : int;
  mutable sum : Value.t;
  mutable min_ : Value.t;
  mutable max_ : Value.t;
}

val fresh_acc : unit -> acc
val acc_add : acc -> Value.t -> unit
val acc_result : agg_fn -> acc -> Value.t

(** Partition a join predicate into equi-conjuncts (left expr, right
    expr) across the given column sets, plus the residual conjuncts. *)
val split_equi_conjuncts :
  expr -> Col.Set.t -> Col.Set.t -> (expr * expr) list * expr list

(** Scalar evaluation under 3-valued logic; UNKNOWN is [Value.Null].
    Subquery expression nodes recurse into {!run} (mutual recursion). *)
val eval : ctx -> lookup -> expr -> Value.t

(** [true] iff the predicate evaluates to TRUE (not FALSE/UNKNOWN). *)
val eval_pred : ctx -> lookup -> expr -> bool

(** Execute a tree; rows are positional per {!Op.schema}. *)
val run : ctx -> lookup -> op -> row list

(** One evaluation of an Apply inner tree under a binding of its
    correlation parameters (the environment).  Shared with the
    vectorized engine's batched Apply, which calls it once per distinct
    parameter set; accounts budget/counters like one row-mode Apply
    iteration.  Returns the inner rows and whether the memoized index
    fast path served them. *)
val run_inner : ctx -> lookup -> op -> row list * bool

(** The memoized index fast path for an Apply inner tree, when one
    exists: [Some f] probes the index under a binding instead of
    interpreting the tree.  Exposed so the vectorized engine can hoist
    the (hash-consed but still per-call) cache lookup out of its
    per-binding loop, as [exec_apply] does for its per-row loop; callers
    taking this path must account budget/counters per invocation
    themselves. *)
val probe_path : ctx -> op -> (lookup -> row list) option

(** Existence variant of the index fast path, for Semi/Anti Apply under
    a constant-true predicate: [Some f] tests whether any inner row
    matches a binding, stopping at the first candidate that passes the
    residual filter.  Only offered when the residual (and any Project
    wrapper) is subquery-free, so early exit cannot skip a
    data-dependent error the materializing path would raise. *)
val probe_exists_path : ctx -> op -> (lookup -> bool) option

type result = { col_names : string list; rows : row list }

val sort_rows : Col.t list -> (Col.t * bool) list -> row list -> row list
val truncate : int option -> row list -> row list

(** Run, sort, limit and project away hidden order-by columns. *)
val run_query :
  ?budget:Budget.t ->
  ?faults:Faults.t ->
  ?metrics:Metrics.t ->
  Storage.Database.t ->
  op:op ->
  outputs:(string * Col.t) list ->
  order:(Col.t * bool) list ->
  limit:int option ->
  result
