(* Per-operator runtime metrics (EXPLAIN ANALYZE).

   A metrics tree mirrors the plan tree: one node per operator, plus
   one node per subquery embedded in a scalar expression (the bound
   tree's mutual recursion).  The executor looks nodes up by the
   *physical* identity of the plan node — the plan is immutable during
   execution, so pointer equality is exact and the lookup never
   confuses two structurally identical subtrees.

   Counters are cumulative across invocations (an Apply re-runs its
   inner tree per outer row): invocations, rows in/out, inclusive wall
   time, Apply index-probe fast-path hits, and hash-table build sizes
   for hash joins and hash aggregation.  When no metrics tree is
   installed in the executor context the whole layer costs one [match]
   per operator evaluation. *)

open Relalg
open Relalg.Algebra

(* Hashing by physical identity: [Hashtbl.hash] is depth-limited (so
   cheap on deep plans) and stable for a given pointer; collisions
   between structurally similar subtrees are resolved by [==]. *)
module PhysTbl = Hashtbl.Make (struct
  type t = op

  let equal = ( == )
  let hash (o : op) = Hashtbl.hash o
end)

type node = {
  label : string Lazy.t;
      (** operator rendering, [Pp.label] — lazy because rendering every
          node eagerly made [create] the dominant fixed cost of
          metrics-enabled execution on sub-millisecond queries *)
  mutable invocations : int;  (** times the operator was evaluated *)
  mutable rows_in : int;  (** cumulative input rows consumed *)
  mutable rows_out : int;  (** cumulative output rows produced *)
  mutable elapsed_s : float;  (** cumulative wall time, inclusive of children *)
  mutable fast_path_hits : int;  (** Apply index-probe uses (inner tree skipped) *)
  mutable hash_build_rows : int;  (** hash-join build rows / aggregation groups *)
  mutable batches : int;  (** vectorized batches produced (vector mode) *)
  mutable bridge_crossings : int;
      (** times the vectorized engine handed this subtree to the row
          interpreter and converted the rows back into batches *)
  mutable apply_batches : int;  (** outer batches processed by batched Apply *)
  mutable apply_bindings : int;  (** distinct correlation-parameter sets evaluated *)
  mutable apply_dedup_hits : int;
      (** outer rows served by an already-evaluated binding (batched
          Apply dedup; row mode evaluates the inner once per row) *)
  children : node list;
}

type t = { root : node; index : node PhysTbl.t }

(* Subquery trees embedded in a scalar expression (binder output):
   they execute through [run] too, so they get metrics nodes. *)
let rec expr_subqueries (e : expr) : op list =
  match e with
  | ColRef _ | Const _ -> []
  | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      expr_subqueries a @ expr_subqueries b
  | Not a | IsNull a | Like (a, _) -> expr_subqueries a
  | Case (branches, els) ->
      List.concat_map (fun (c, v) -> expr_subqueries c @ expr_subqueries v) branches
      @ (match els with Some e -> expr_subqueries e | None -> [])
  | Subquery q | Exists q -> [ q ]
  | InSub (a, q) -> expr_subqueries a @ [ q ]
  | QuantCmp (_, _, a, q) -> expr_subqueries a @ [ q ]

let create (plan : op) : t =
  let index = PhysTbl.create 64 in
  let rec build ?(sub = false) (o : op) : node =
    let subs = List.concat_map expr_subqueries (Op.local_exprs o) in
    let node =
      { label = lazy ((if sub then "(sub) " else "") ^ Pp.label o);
        invocations = 0;
        rows_in = 0;
        rows_out = 0;
        elapsed_s = 0.;
        fast_path_hits = 0;
        hash_build_rows = 0;
        batches = 0;
        bridge_crossings = 0;
        apply_batches = 0;
        apply_bindings = 0;
        apply_dedup_hits = 0;
        children =
          List.map (fun c -> build c) (Op.children o)
          @ List.map (build ~sub:true) subs;
      }
    in
    PhysTbl.replace index o node;
    node
  in
  { root = build plan; index }

let root (m : t) : node = m.root
let find (m : t) (o : op) : node option = PhysTbl.find_opt m.index o

let record (n : node) ~(elapsed_s : float) ~(rows_out : int) : unit =
  n.invocations <- n.invocations + 1;
  n.elapsed_s <- n.elapsed_s +. elapsed_s;
  n.rows_out <- n.rows_out + rows_out

let add_rows_in (n : node) (k : int) = n.rows_in <- n.rows_in + k
let add_fast_hit (n : node) = n.fast_path_hits <- n.fast_path_hits + 1
let add_hash_build (n : node) (k : int) = n.hash_build_rows <- n.hash_build_rows + k
let add_batch (n : node) = n.batches <- n.batches + 1
let add_bridge (n : node) = n.bridge_crossings <- n.bridge_crossings + 1

let add_apply_batch (n : node) ~(bindings : int) ~(dedup_hits : int) =
  n.apply_batches <- n.apply_batches + 1;
  n.apply_bindings <- n.apply_bindings + bindings;
  n.apply_dedup_hits <- n.apply_dedup_hits + dedup_hits

(* Tree-wide totals, for bench artifacts that need one number per run. *)
let rec total (f : node -> int) (n : node) : int =
  f n + List.fold_left (fun acc c -> acc + total f c) 0 n.children

(* Output rows per input row, when the node consumed anything; the
   vector-mode rendering reports it as the operator's selectivity. *)
let selectivity (n : node) : float option =
  if n.rows_in <= 0 then None else Some (float_of_int n.rows_out /. float_of_int n.rows_in)

(* --- rendering ------------------------------------------------------- *)

(* [times:false] drops wall-clock figures: golden tests need output
   that is stable run to run. *)
let render ?(times = true) (root : node) : string =
  let buf = Buffer.create 1024 in
  let rec go indent (n : node) =
    Buffer.add_string buf indent;
    Buffer.add_string buf (Lazy.force n.label);
    if n.invocations = 0 then Buffer.add_string buf "  [not executed]"
    else begin
      Buffer.add_string buf
        (Printf.sprintf "  (inv=%d in=%d out=%d" n.invocations n.rows_in n.rows_out);
      if times then Buffer.add_string buf (Printf.sprintf " time=%.3fs" n.elapsed_s);
      if n.fast_path_hits > 0 then
        Buffer.add_string buf (Printf.sprintf " fast-path=%d" n.fast_path_hits);
      if n.hash_build_rows > 0 then
        Buffer.add_string buf (Printf.sprintf " hash-build=%d" n.hash_build_rows);
      if n.batches > 0 then begin
        Buffer.add_string buf (Printf.sprintf " batches=%d" n.batches);
        match selectivity n with
        | Some s -> Buffer.add_string buf (Printf.sprintf " sel=%.2f" s)
        | None -> ()
      end;
      if n.bridge_crossings > 0 then
        Buffer.add_string buf (Printf.sprintf " bridged=%d" n.bridge_crossings);
      if n.apply_batches > 0 then
        Buffer.add_string buf
          (Printf.sprintf " apply-batches=%d bindings=%d dedup-hits=%d" n.apply_batches
             n.apply_bindings n.apply_dedup_hits);
      Buffer.add_string buf ")"
    end;
    Buffer.add_char buf '\n';
    List.iter (go (indent ^ "  ")) n.children
  in
  go "" root;
  Buffer.contents buf

(* --- JSON ------------------------------------------------------------ *)

let json_string (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_json (n : node) : string =
  Printf.sprintf
    "{\"op\":%s,\"invocations\":%d,\"rows_in\":%d,\"rows_out\":%d,\"elapsed_s\":%.6f,\"fast_path_hits\":%d,\"hash_build_rows\":%d,\"batches\":%d,\"bridge_crossings\":%d,\"apply_batches\":%d,\"apply_bindings\":%d,\"apply_dedup_hits\":%d%s,\"children\":[%s]}"
    (json_string (Lazy.force n.label)) n.invocations n.rows_in n.rows_out n.elapsed_s
    n.fast_path_hits n.hash_build_rows n.batches n.bridge_crossings n.apply_batches
    n.apply_bindings n.apply_dedup_hits
    (match selectivity n with
    | Some s when n.batches > 0 -> Printf.sprintf ",\"selectivity\":%.4f" s
    | _ -> "")
    (String.concat "," (List.map to_json n.children))
