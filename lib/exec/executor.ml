(* The execution engine.

   A materializing interpreter over logical operator trees.  It executes
   every stage of the compilation pipeline:

   - the binder's output, where scalar expressions still contain
     relational children — executed with the mutual recursion between
     scalar and relational evaluation described in Section 2.1;
   - Apply trees — executed as correlated nested loops, with an
     index-lookup fast path when the inner expression is a filtered
     scan whose equality column has a hash index (the "simplest and
     most common" correlated execution of Section 4);
   - fully decorrelated trees — joins execute as hash joins when the
     predicate has equi-conjuncts, aggregations as hash aggregates.

   This makes the interpreter the single semantic baseline: tests
   compare results across pipeline stages to validate every rewrite. *)

open Relalg
open Relalg.Algebra

exception Runtime_error of string

type row = Value.t array

(* Correlation environment: column id -> value.  Extended per outer row
   by Apply and by scalar-subquery evaluation. *)
type lookup = int -> Value.t option

let empty_lookup : lookup = fun _ -> None

type ctx = {
  db : Storage.Database.t;
  mutable seg : (Col.t list * row list) option;
      (** current SegmentApply segment: outer layout and segment rows *)
  mutable apply_invocations : int;  (** statistics for tests/benches *)
  mutable rows_processed : int;
  mutable bridge_crossings : int;
      (** vector mode: subtrees handed to this row interpreter *)
  mutable apply_batches : int;  (** vector mode: batched-Apply outer batches *)
  mutable apply_bindings : int;  (** vector mode: distinct parameter sets evaluated *)
  mutable apply_dedup_hits : int;
      (** vector mode: outer rows that reused an evaluated binding *)
  budget : Budget.t option;  (** cooperative resource limits *)
  faults : Faults.t option;  (** fault-injection plan (tests/harness) *)
  started : float;  (** Unix time at context creation, for timeouts *)
  metrics : Metrics.t option;  (** per-operator metrics tree (EXPLAIN ANALYZE) *)
  mutable mnode : Metrics.node option;
      (** metrics node of the operator currently being evaluated *)
  pos_cache : (int, int) Hashtbl.t Metrics.PhysTbl.t;
      (** schema position tables, memoized per plan node *)
  probe_cache : (lookup -> row list) option Metrics.PhysTbl.t;
      (** Apply index fast paths, memoized per inner tree *)
  mutable cse : (string -> row list) option;
      (** resolver for [CseScan] ids, installed by the engine when a
          CSE store is active; plans containing [CseScan] fail without
          one *)
}

let make_ctx ?budget ?faults ?metrics db =
  let budget = match budget with Some b when Budget.is_unlimited b -> None | b -> b in
  { db;
    seg = None;
    apply_invocations = 0;
    rows_processed = 0;
    bridge_crossings = 0;
    apply_batches = 0;
    apply_bindings = 0;
    apply_dedup_hits = 0;
    budget;
    faults;
    started = Unix.gettimeofday ();
    metrics;
    mnode = None;
    pos_cache = Metrics.PhysTbl.create 64;
    probe_cache = Metrics.PhysTbl.create 16;
    cse = None;
  }

(* Cooperative budget check — called wherever the counters advance and
   at every operator evaluation (which bounds timeout drift). *)
let check_budget (ctx : ctx) =
  match ctx.budget with
  | None -> ()
  | Some b ->
      Budget.check b ~started:ctx.started ~rows_processed:ctx.rows_processed
        ~apply_invocations:ctx.apply_invocations

(* Every operator accounts the rows it consumes (TableScan: the rows it
   produces) and re-checks the budget, so [max_rows] trips no matter
   which operator the bulk of the work hides in. *)
let account_rows (ctx : ctx) (n : int) =
  ctx.rows_processed <- ctx.rows_processed + n;
  check_budget ctx

let note_rows_in (ctx : ctx) (n : int) =
  match ctx.mnode with None -> () | Some node -> Metrics.add_rows_in node n

let op_fault_kind : op -> Faults.op_kind = function
  | TableScan _ | CseScan _ -> Faults.Scan
  | ConstTable _ -> Faults.ConstTable
  | SegmentHole _ -> Faults.SegmentHole
  | Select _ -> Faults.Select
  | Project _ -> Faults.Project
  | Join _ -> Faults.Join
  | Apply _ -> Faults.Apply
  | SegmentApply _ -> Faults.SegmentApply
  | GroupBy _ | LocalGroupBy _ -> Faults.GroupBy
  | ScalarAgg _ -> Faults.ScalarAgg
  | UnionAll _ -> Faults.UnionAll
  | Except _ -> Faults.Except
  | Max1row _ -> Faults.Max1row
  | Rownum _ -> Faults.Rownum

(* position map for a schema *)
let positions (schema : Col.t list) : (int, int) Hashtbl.t =
  let h = Hashtbl.create (List.length schema * 2) in
  List.iteri (fun i (c : Col.t) -> if not (Hashtbl.mem h c.id) then Hashtbl.add h c.id i) schema;
  h

(* Memoized [positions (Op.schema o)] keyed on physical node identity.
   Apply re-executes its inner tree once per outer row; rebuilding the
   schema position tables of every inner operator on every invocation
   dominated the correlated slow path. *)
let pos_of (ctx : ctx) (o : op) : (int, int) Hashtbl.t =
  match Metrics.PhysTbl.find_opt ctx.pos_cache o with
  | Some h -> h
  | None ->
      let h = positions (Op.schema o) in
      Metrics.PhysTbl.replace ctx.pos_cache o h;
      h

let row_lookup (pos : (int, int) Hashtbl.t) (r : row) (outer : lookup) : lookup =
 fun id ->
  match Hashtbl.find_opt pos id with
  | Some i -> Some r.(i)
  | None -> outer id

let rows_lookup (pos1 : (int, int) Hashtbl.t) (r1 : row) (pos2 : (int, int) Hashtbl.t)
    (r2 : row) (outer : lookup) : lookup =
 fun id ->
  match Hashtbl.find_opt pos1 id with
  | Some i -> Some r1.(i)
  | None -> (
      match Hashtbl.find_opt pos2 id with Some i -> Some r2.(i) | None -> outer id)

(* ------------------------------------------------------------------ *)
(* Grouping keys: hashtable over value lists                          *)
(* ------------------------------------------------------------------ *)

module VKey = struct
  type t = Value.t list

  let equal a b = try List.for_all2 Value.equal a b with Invalid_argument _ -> false
  let hash l = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 l
end

module VTbl = Hashtbl.Make (VKey)

(* ------------------------------------------------------------------ *)
(* Aggregate accumulation                                             *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable count : int;  (** non-null inputs seen (or rows, for count-star) *)
  mutable sum : Value.t;
  mutable min_ : Value.t;
  mutable max_ : Value.t;
}

let fresh_acc () = { count = 0; sum = Value.Null; min_ = Value.Null; max_ = Value.Null }

let acc_add (a : acc) (v : Value.t) =
  if not (Value.is_null v) then begin
    a.count <- a.count + 1;
    a.sum <- (if Value.is_null a.sum then v else Value.arith `Add a.sum v);
    a.min_ <- (if Value.is_null a.min_ || Value.compare v a.min_ < 0 then v else a.min_);
    a.max_ <- (if Value.is_null a.max_ || Value.compare v a.max_ > 0 then v else a.max_)
  end

let acc_result (fn : agg_fn) (a : acc) : Value.t =
  match fn with
  | CountStar | Count _ -> Value.Int a.count
  | Sum _ -> a.sum
  | Min _ -> a.min_
  | Max _ -> a.max_
  | Avg _ ->
      if a.count = 0 then Value.Null
      else Value.arith `Div a.sum (Value.Int a.count)

(* ------------------------------------------------------------------ *)
(* Scalar evaluation (3VL) — mutually recursive with [run]            *)
(* ------------------------------------------------------------------ *)

let rec eval (ctx : ctx) (env : lookup) (e : expr) : Value.t =
  match e with
  | ColRef c -> (
      match env c.id with
      | Some v -> v
      | None -> raise (Runtime_error (Printf.sprintf "unbound column %s#%d" c.name c.id)))
  | Const v -> v
  | Arith (op, a, b) ->
      let va = eval ctx env a and vb = eval ctx env b in
      let o =
        match op with Add -> `Add | Sub -> `Sub | Mul -> `Mul | Div -> `Div | Mod -> `Mod
      in
      Value.arith o va vb
  | Cmp (op, a, b) -> (
      match Value.cmp_sql (eval ctx env a) (eval ctx env b) with
      | None -> Value.Null
      | Some c ->
          Value.Bool
            (match op with
            | Eq -> c = 0
            | Ne -> c <> 0
            | Lt -> c < 0
            | Le -> c <= 0
            | Gt -> c > 0
            | Ge -> c >= 0))
  (* Kleene AND/OR over {TRUE, FALSE, UNKNOWN}; like [Not], any other
     operand type is a runtime type error (a FALSE/TRUE left operand
     still short-circuits without evaluating the right). *)
  | And (a, b) -> (
      match eval ctx env a with
      | Value.Bool false -> Value.Bool false
      | (Value.Bool true | Value.Null) as va -> (
          match eval ctx env b with
          | Value.Bool false -> Value.Bool false
          | Value.Bool true -> va
          | Value.Null -> Value.Null
          | v -> raise (Runtime_error ("AND applied to non-boolean " ^ Value.to_string v)))
      | v -> raise (Runtime_error ("AND applied to non-boolean " ^ Value.to_string v)))
  | Or (a, b) -> (
      match eval ctx env a with
      | Value.Bool true -> Value.Bool true
      | (Value.Bool false | Value.Null) as va -> (
          match eval ctx env b with
          | Value.Bool true -> Value.Bool true
          | Value.Bool false -> va
          | Value.Null -> Value.Null
          | v -> raise (Runtime_error ("OR applied to non-boolean " ^ Value.to_string v)))
      | v -> raise (Runtime_error ("OR applied to non-boolean " ^ Value.to_string v)))
  | Not a -> (
      match eval ctx env a with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | v -> raise (Runtime_error ("NOT applied to non-boolean " ^ Value.to_string v)))
  | IsNull a -> Value.Bool (Value.is_null (eval ctx env a))
  | Like (a, pattern) -> (
      match eval ctx env a with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Bool (Like.matches ~pattern s)
      | v -> raise (Runtime_error ("LIKE applied to non-string " ^ Value.to_string v)))
  | Case (branches, els) ->
      let rec go = function
        | [] -> ( match els with Some e -> eval ctx env e | None -> Value.Null)
        | (c, v) :: rest -> (
            match eval ctx env c with Value.Bool true -> eval ctx env v | _ -> go rest)
      in
      go branches
  | Subquery q -> (
      (* mutual recursion: scalar evaluation calls back into the
         relational engine (Section 2.1) *)
      match run ctx env q with
      | [] -> Value.Null
      | [ r ] ->
          if Array.length r <> 1 then
            raise (Runtime_error "scalar subquery must return one column");
          r.(0)
      | _ -> raise (Runtime_error "scalar subquery returned more than one row"))
  | Exists q -> Value.Bool (run ctx env q <> [])
  | InSub (a, q) -> eval ctx env (QuantCmp (Eq, Any, a, q))
  | QuantCmp (op, quant, a, q) ->
      let va = eval ctx env a in
      let rows = run ctx env q in
      let results =
        List.map
          (fun (r : row) ->
            if Array.length r <> 1 then
              raise (Runtime_error "quantified subquery must return one column");
            match Value.cmp_sql va r.(0) with
            | None -> Value.Null
            | Some c ->
                Value.Bool
                  (match op with
                  | Eq -> c = 0
                  | Ne -> c <> 0
                  | Lt -> c < 0
                  | Le -> c <= 0
                  | Gt -> c > 0
                  | Ge -> c >= 0))
          rows
      in
      (match quant with
      | Any ->
          if List.exists (fun v -> v = Value.Bool true) results then Value.Bool true
          else if List.exists Value.is_null results then Value.Null
          else Value.Bool false
      | All ->
          if List.exists (fun v -> v = Value.Bool false) results then Value.Bool false
          else if List.exists Value.is_null results then Value.Null
          else Value.Bool true)

and eval_pred ctx env e = eval ctx env e = Value.Bool true

(* ------------------------------------------------------------------ *)
(* Relational execution                                               *)
(* ------------------------------------------------------------------ *)

and run (ctx : ctx) (env : lookup) (o : op) : row list =
  (match ctx.faults with None -> () | Some f -> Faults.tick f (op_fault_kind o));
  check_budget ctx;
  match ctx.metrics with
  | None -> run_node ctx env o
  | Some m -> (
      match Metrics.find m o with
      | None -> run_node ctx env o
      | Some node ->
          let saved = ctx.mnode in
          ctx.mnode <- Some node;
          let t0 = Unix.gettimeofday () in
          let out =
            try run_node ctx env o
            with e ->
              ctx.mnode <- saved;
              Metrics.record node ~elapsed_s:(Unix.gettimeofday () -. t0) ~rows_out:0;
              raise e
          in
          ctx.mnode <- saved;
          Metrics.record node
            ~elapsed_s:(Unix.gettimeofday () -. t0)
            ~rows_out:(List.length out);
          out)

and run_node (ctx : ctx) (env : lookup) (o : op) : row list =
  match o with
  | TableScan { table; _ } ->
      let tb = Storage.Database.table ctx.db table in
      let rows, n = Storage.Table.rows_view tb in
      let out = ref [] in
      for i = n - 1 downto 0 do
        out := rows.(i) :: !out
      done;
      account_rows ctx n;
      !out
  | ConstTable { rows; _ } -> rows
  | CseScan { id; _ } -> (
      match ctx.cse with
      | None -> raise (Runtime_error ("CseScan without a CSE store: " ^ id))
      | Some fetch ->
          let rows = fetch id in
          account_rows ctx (List.length rows);
          rows)
  | SegmentHole { src; _ } -> (
      match ctx.seg with
      | None -> raise (Runtime_error "SegmentHole outside SegmentApply")
      | Some (layout, rows) ->
          let pos = positions layout in
          let idx =
            List.map
              (fun (c : Col.t) ->
                match Hashtbl.find_opt pos c.id with
                | Some i -> i
                | None -> raise (Runtime_error ("segment source column missing: " ^ c.name)))
              src
          in
          List.map (fun r -> Array.of_list (List.map (fun i -> r.(i)) idx)) rows)
  | Select (p, i) ->
      let child = run ctx env i in
      let n = List.length child in
      account_rows ctx n;
      note_rows_in ctx n;
      let pos = pos_of ctx i in
      List.filter (fun r -> eval_pred ctx (row_lookup pos r env) p) child
  | Project (projs, i) ->
      let child = run ctx env i in
      let n = List.length child in
      account_rows ctx n;
      note_rows_in ctx n;
      let pos = pos_of ctx i in
      List.map
        (fun r ->
          let l = row_lookup pos r env in
          Array.of_list (List.map (fun p -> eval ctx l p.expr) projs))
        child
  | Join { kind; pred; left; right } -> exec_join ctx env kind pred left right
  | Apply { kind; pred; left; right } -> exec_apply ctx env kind pred left right
  | SegmentApply { seg_cols; outer; inner } -> exec_segment_apply ctx env seg_cols outer inner
  | GroupBy { keys; aggs; input } | LocalGroupBy { keys; aggs; input } ->
      exec_group_by ctx env keys aggs input
  | ScalarAgg { aggs; input } ->
      let child = run ctx env input in
      let n = List.length child in
      account_rows ctx n;
      note_rows_in ctx n;
      let pos = pos_of ctx input in
      let accs = List.map (fun _ -> fresh_acc ()) aggs in
      List.iter
        (fun r ->
          let l = row_lookup pos r env in
          List.iter2
            (fun (a : agg) acc ->
              match agg_input_expr a.fn with
              | None -> acc.count <- acc.count + 1
              | Some e -> acc_add acc (eval ctx l e))
            aggs accs)
        child;
      if child = [] then [ Array.of_list (List.map (fun (a : agg) -> agg_on_empty a.fn) aggs) ]
      else [ Array.of_list (List.map2 (fun (a : agg) acc -> acc_result a.fn acc) aggs accs) ]
  | UnionAll (l, r) ->
      let lrows = run ctx env l in
      let rrows = run ctx env r in
      let n = List.length lrows + List.length rrows in
      account_rows ctx n;
      note_rows_in ctx n;
      lrows @ rrows
  | Except (l, r) ->
      (* bag difference: remove one left occurrence per right occurrence *)
      let rrows = run ctx env r in
      account_rows ctx (List.length rrows);
      let counts = VTbl.create 64 in
      List.iter
        (fun (r : row) ->
          let k = Array.to_list r in
          VTbl.replace counts k (1 + try VTbl.find counts k with Not_found -> 0))
        rrows;
      let lrows = run ctx env l in
      account_rows ctx (List.length lrows);
      note_rows_in ctx (List.length lrows + List.length rrows);
      List.filter
        (fun (r : row) ->
          let k = Array.to_list r in
          match VTbl.find_opt counts k with
          | Some n when n > 0 ->
              VTbl.replace counts k (n - 1);
              false
          | _ -> true)
        lrows
  | Max1row i -> (
      match run ctx env i with
      | ([] | [ _ ]) as rows -> rows
      | _ -> raise (Runtime_error "subquery returned more than one row (Max1row)"))
  | Rownum { input; _ } ->
      let child = run ctx env input in
      let n = List.length child in
      account_rows ctx n;
      note_rows_in ctx n;
      List.mapi (fun i r -> Array.append r [| Value.Int (i + 1) |]) child

(* --- hash aggregation ------------------------------------------------ *)

and exec_group_by ctx env (keys : Col.t list) (aggs : agg list) (input : op) : row list =
  let mnode = ctx.mnode in
  let child = run ctx env input in
  let n = List.length child in
  account_rows ctx n;
  note_rows_in ctx n;
  let pos = pos_of ctx input in
  let key_idx =
    List.map
      (fun (c : Col.t) ->
        match Hashtbl.find_opt pos c.id with
        | Some i -> i
        | None -> raise (Runtime_error ("grouping column missing: " ^ c.name)))
      keys
  in
  let groups = VTbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (r : row) ->
      let k = List.map (fun i -> r.(i)) key_idx in
      let accs =
        match VTbl.find_opt groups k with
        | Some accs -> accs
        | None ->
            let accs = List.map (fun _ -> fresh_acc ()) aggs in
            VTbl.add groups k accs;
            order := k :: !order;
            accs
      in
      let l = row_lookup pos r env in
      List.iter2
        (fun (a : agg) acc ->
          match agg_input_expr a.fn with
          | None -> acc.count <- acc.count + 1
          | Some e -> acc_add acc (eval ctx l e))
        aggs accs)
    child;
  (match mnode with
  | Some node -> Metrics.add_hash_build node (VTbl.length groups)
  | None -> ());
  List.rev_map
    (fun k ->
      let accs = VTbl.find groups k in
      Array.of_list (k @ List.map2 (fun (a : agg) acc -> acc_result a.fn acc) aggs accs))
    !order

(* --- joins ---------------------------------------------------------- *)

and split_equi_conjuncts pred (lcols : Col.Set.t) (rcols : Col.Set.t) =
  let conj = conjuncts pred in
  let is_subset e s = Col.Set.subset (Expr.cols e) s in
  let equi, residual =
    List.partition_map
      (fun c ->
        match c with
        | Cmp (Eq, a, b) when is_subset a lcols && is_subset b rcols -> Left (a, b)
        | Cmp (Eq, a, b) when is_subset b lcols && is_subset a rcols -> Left (b, a)
        | c -> Right c)
      conj
  in
  (equi, residual)

and exec_join ctx env kind pred left right =
  let mnode = ctx.mnode in
  let lrows = run ctx env left and rrows = run ctx env right in
  let lschema = Op.schema left and rschema = Op.schema right in
  let lpos = pos_of ctx left and rpos = pos_of ctx right in
  let lset = Col.Set.of_list lschema and rset = Col.Set.of_list rschema in
  let rarity = List.length rschema in
  let nin = List.length lrows + List.length rrows in
  account_rows ctx nin;
  note_rows_in ctx nin;
  let equi, residual = split_equi_conjuncts pred lset rset in
  let emit_combined l r = Array.append l r in
  let nulls = Array.make rarity Value.Null in
  if equi <> [] then begin
    (* hash join; NULL keys never match *)
    let res_pred = conj_list residual in
    let build = VTbl.create (List.length rrows * 2) in
    let built = ref 0 in
    List.iter
      (fun (r : row) ->
        let lk = row_lookup rpos r env in
        let key = List.map (fun (_, be) -> eval ctx lk be) equi in
        if not (List.exists Value.is_null key) then begin
          incr built;
          VTbl.replace build key (r :: (try VTbl.find build key with Not_found -> []))
        end)
      rrows;
    (match mnode with Some node -> Metrics.add_hash_build node !built | None -> ());
    let out = ref [] in
    List.iter
      (fun (l : row) ->
        let llk = row_lookup lpos l env in
        let key = List.map (fun (ae, _) -> eval ctx llk ae) equi in
        let matches =
          if List.exists Value.is_null key then []
          else
            match VTbl.find_opt build key with
            | None -> []
            | Some cand ->
                List.filter
                  (fun r -> eval_pred ctx (rows_lookup lpos l rpos r env) res_pred)
                  cand
        in
        match kind with
        | Inner -> List.iter (fun r -> out := emit_combined l r :: !out) matches
        | LeftOuter ->
            if matches = [] then out := emit_combined l nulls :: !out
            else List.iter (fun r -> out := emit_combined l r :: !out) matches
        | Semi -> if matches <> [] then out := l :: !out
        | Anti -> if matches = [] then out := l :: !out)
      lrows;
    List.rev !out
  end
  else begin
    (* nested loops *)
    let out = ref [] in
    List.iter
      (fun (l : row) ->
        let matches =
          List.filter (fun r -> eval_pred ctx (rows_lookup lpos l rpos r env) pred) rrows
        in
        match kind with
        | Inner -> List.iter (fun r -> out := emit_combined l r :: !out) matches
        | LeftOuter ->
            if matches = [] then out := emit_combined l nulls :: !out
            else List.iter (fun r -> out := emit_combined l r :: !out) matches
        | Semi -> if matches <> [] then out := l :: !out
        | Anti -> if matches = [] then out := l :: !out)
      lrows;
    List.rev !out
  end

(* --- Apply: correlated nested-loops execution ----------------------- *)

(* Index fast path: the inner tree is Select(p, TableScan t) (possibly
   under a Project) where p contains an equality between an indexed
   column of t and an expression over outer columns only. *)
and index_eq_pick tb (conj : expr list) (cols : Col.t list) :
    (Col.t * expr * expr) option =
  let scan_set = Col.Set.of_list cols in
  let indexed (c : Col.t) = Storage.Table.find_index tb c.Col.name <> None in
  List.find_map
    (fun cj ->
      let ok c e =
        List.exists (Col.equal c) cols
        && Col.Set.is_empty (Col.Set.inter (Expr.cols e) scan_set)
        && indexed c
      in
      match cj with
      | Cmp (Eq, ColRef c, e) when ok c e -> Some (c, e, cj)
      | Cmp (Eq, e, ColRef c) when ok c e -> Some (c, e, cj)
      | _ -> None)
    conj

and index_probe_path ctx (right : op) :
    (lookup -> row list) option =
  let try_scan pred table cols =
    let tb = Storage.Database.table ctx.db table in
    let conj = conjuncts pred in
    match index_eq_pick tb conj cols with
    | None -> None
    | Some (c, probe_expr, used) ->
        let ix = Option.get (Storage.Table.find_index tb c.Col.name) in
        let residual = conj_list (List.filter (fun x -> x != used) conj) in
        let pos = positions cols in
        Some
          (fun (env : lookup) ->
            let v = eval ctx env probe_expr in
            if Value.is_null v then []
            else
              let cand = Storage.Table.index_lookup ix tb v in
              List.filter (fun r -> eval_pred ctx (row_lookup pos r env) residual) cand)
  in
  match right with
  | Select (p, TableScan { table; cols }) -> try_scan p table cols
  | Project (projs, Select (p, TableScan { table; cols })) -> (
      match try_scan p table cols with
      | None -> None
      | Some f ->
          let pos = positions cols in
          Some
            (fun env ->
              List.map
                (fun r ->
                  let l = row_lookup pos r env in
                  Array.of_list (List.map (fun pr -> eval ctx l pr.expr) projs))
                (f env)))
  | _ -> None

(* The index fast path is a pure function of the inner tree: detect it
   once per plan node, not once per Apply evaluation. *)
and probe_path ctx (right : op) : (lookup -> row list) option =
  match Metrics.PhysTbl.find_opt ctx.probe_cache right with
  | Some f -> f
  | None ->
      let f = index_probe_path ctx right in
      Metrics.PhysTbl.replace ctx.probe_cache right f;
      f

(* Parameterized inner-plan entry point: one evaluation of an Apply
   inner tree under a binding of its correlation parameters.  The
   vectorized engine's batched Apply calls this once per *distinct*
   parameter set; the budget/fault accounting matches one row-mode
   Apply iteration, so cooperative cancellation (deadlines, row and
   apply caps) keeps firing inside batched execution.  Returns the
   inner rows and whether the index fast path served them. *)
(* Existence variant of the index fast path: a Semi/Anti Apply under a
   constant-true predicate only needs to know whether ANY inner row
   matches, so the residual filter can stop at the first candidate that
   passes instead of materializing them all.  Early exit skips residual
   evaluations the materializing path would perform, so it is offered
   only when the residual cannot raise on one row but not another:
   subquery-bearing residuals (Max1row violations are data-dependent)
   are excluded, while comparisons/arithmetic are total by construction
   ([Value.cmp_sql]/[Value.arith]) and boolean/LIKE type errors depend
   only on column types, not row values.  A Project wrapper never
   changes emptiness and its projections are skipped entirely, so the
   same subquery-free condition applies to them. *)
and probe_exists_path ctx (right : op) : (lookup -> bool) option =
  let try_scan pred table cols =
    let tb = Storage.Database.table ctx.db table in
    let conj = conjuncts pred in
    match index_eq_pick tb conj cols with
    | None -> None
    | Some (c, probe_expr, used) ->
        let residual = conj_list (List.filter (fun x -> x != used) conj) in
        if Expr.has_subquery residual then None
        else
          let ix = Option.get (Storage.Table.find_index tb c.Col.name) in
          let pos = positions cols in
          Some
            (fun (env : lookup) ->
              let v = eval ctx env probe_expr in
              (not (Value.is_null v))
              && List.exists
                   (fun r -> eval_pred ctx (row_lookup pos r env) residual)
                   (Storage.Table.index_lookup ix tb v))
  in
  match right with
  | Select (p, TableScan { table; cols }) -> try_scan p table cols
  | Project (projs, Select (p, TableScan { table; cols }))
    when not (List.exists (fun (pr : proj) -> Expr.has_subquery pr.expr) projs)
    ->
      try_scan p table cols
  | _ -> None

and run_inner (ctx : ctx) (env : lookup) (right : op) : row list * bool =
  ctx.apply_invocations <- ctx.apply_invocations + 1;
  ctx.rows_processed <- ctx.rows_processed + 1;
  check_budget ctx;
  match probe_path ctx right with
  | Some f -> (f env, true)
  | None -> (run ctx env right, false)

and exec_apply ctx env kind pred left right =
  let mnode = ctx.mnode in
  let lrows = run ctx env left in
  note_rows_in ctx (List.length lrows);
  let rschema = Op.schema right in
  let lpos = pos_of ctx left and rpos = pos_of ctx right in
  let rarity = List.length rschema in
  let nulls = Array.make rarity Value.Null in
  let fast = probe_path ctx right in
  let out = ref [] in
  List.iter
    (fun (l : row) ->
      ctx.apply_invocations <- ctx.apply_invocations + 1;
      ctx.rows_processed <- ctx.rows_processed + 1;
      check_budget ctx;
      let lenv = row_lookup lpos l env in
      let rrows =
        match fast with
        | Some f ->
            (match mnode with Some node -> Metrics.add_fast_hit node | None -> ());
            f lenv
        | None -> run ctx lenv right
      in
      let matches =
        if is_true_const pred then rrows
        else List.filter (fun r -> eval_pred ctx (rows_lookup lpos l rpos r env) pred) rrows
      in
      match kind with
      | Inner -> List.iter (fun r -> out := Array.append l r :: !out) matches
      | LeftOuter ->
          if matches = [] then out := Array.append l nulls :: !out
          else List.iter (fun r -> out := Array.append l r :: !out) matches
      | Semi -> if matches <> [] then out := l :: !out
      | Anti -> if matches = [] then out := l :: !out)
    lrows;
  List.rev !out

(* --- SegmentApply ---------------------------------------------------- *)

and exec_segment_apply ctx env seg_cols outer inner =
  let orows = run ctx env outer in
  let n = List.length orows in
  account_rows ctx n;
  note_rows_in ctx n;
  let oschema = Op.schema outer in
  let opos = pos_of ctx outer in
  let seg_idx =
    List.map
      (fun (c : Col.t) ->
        match Hashtbl.find_opt opos c.id with
        | Some i -> i
        | None -> raise (Runtime_error ("segment column missing: " ^ c.name)))
      seg_cols
  in
  (* partition preserving first-seen order *)
  let order = ref [] in
  let parts = VTbl.create 64 in
  List.iter
    (fun (r : row) ->
      let k = List.map (fun i -> r.(i)) seg_idx in
      (match VTbl.find_opt parts k with
      | None ->
          order := k :: !order;
          VTbl.add parts k [ r ]
      | Some rs -> VTbl.replace parts k (r :: rs)))
    orows;
  let out = ref [] in
  List.iter
    (fun k ->
      let seg_rows = List.rev (VTbl.find parts k) in
      let saved = ctx.seg in
      ctx.seg <- Some (oschema, seg_rows);
      let inner_rows = run ctx env inner in
      ctx.seg <- saved;
      (* {a} × E(σ_{A=a} R): pair the segment key columns with each
         inner row.  The output schema is outer ++ inner, where the
         outer part carries the segment's defining values; columns of
         the outer not among seg_cols are NULL (they are not
         well-defined per segment and must not be referenced above). *)
      let proto = Array.make (List.length oschema) Value.Null in
      List.iteri (fun _ _ -> ()) seg_idx;
      List.iter2 (fun i v -> proto.(i) <- v) seg_idx k;
      List.iter (fun r -> out := Array.append proto r :: !out) inner_rows)
    (List.rev !order);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Sorting and top-level result production                            *)
(* ------------------------------------------------------------------ *)

type result = { col_names : string list; rows : row list }

let sort_rows (schema : Col.t list) (order : (Col.t * bool) list) (rows : row list) :
    row list =
  if order = [] then rows
  else begin
    let pos = positions schema in
    let keyed =
      List.map
        (fun ((c : Col.t), desc) ->
          match Hashtbl.find_opt pos c.id with
          | Some i -> (i, desc)
          | None -> raise (Runtime_error ("order-by column missing: " ^ c.name)))
        order
    in
    let cmp (a : row) (b : row) =
      let rec go = function
        | [] -> 0
        | (i, desc) :: rest ->
            let c = Value.compare a.(i) b.(i) in
            if c <> 0 then if desc then -c else c else go rest
      in
      go keyed
    in
    List.stable_sort cmp rows
  end

let truncate limit rows =
  match limit with
  | None -> rows
  | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | r :: rest -> r :: take (k - 1) rest
      in
      take n rows

(* Execute a query end to end: run, sort, limit, project away the hidden
   order-by columns ([outputs] lists the visible ones). *)
let run_query ?budget ?faults ?metrics (db : Storage.Database.t) ~(op : op)
    ~(outputs : (string * Col.t) list) ~(order : (Col.t * bool) list)
    ~(limit : int option) : result =
  let ctx = make_ctx ?budget ?faults ?metrics db in
  let rows = run ctx empty_lookup op in
  let schema = Op.schema op in
  let rows = sort_rows schema order rows in
  let rows = truncate limit rows in
  let visible = List.length outputs in
  let rows =
    if List.length schema > visible then List.map (fun r -> Array.sub r 0 visible) rows
    else rows
  in
  { col_names = List.map fst outputs; rows }
