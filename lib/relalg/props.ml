(* Derived logical properties.

   [keys]          candidate keys of an operator's output (sets of columns);
                   identities (7)-(9) and GroupBy pull-up require them.
   [max_one_row]   proof that an expression returns at most one row per
                   invocation; lets the compiler elide Max1row (paper
                   Section 2.4: "the compiler can detect this from
                   information about keys").
   [nonnullable]   output columns that are never NULL; needed to rewrite
                   count-star into count-of-column in identity (9) and to
                   build the compensating project of Section 3.2.

   All properties are sound under-approximations. *)

open Algebra

type key = Col.Set.t

(* base-table keys and nullability are supplied by the environment
   (catalog); trees carry them in the TableScan's column list via these
   callbacks.  [table_nullable] lists the columns that MAY contain NULL
   — the default (none) matches this engine's TPC-H data, where every
   base column is NOT NULL. *)
type env = {
  table_key : string -> string list;
  table_nullable : string -> string list;
}

let default_env = { table_key = (fun _ -> []); table_nullable = (fun _ -> []) }

let rec keys ?(env = default_env) (o : op) : key list =
  let keys = keys ~env in
  match o with
  (* a CSE materialization can be refreshed between reads; claim
     nothing about it *)
  | CseScan _ -> []
  | TableScan { table; cols } -> (
      let names = env.table_key table in
      match names with
      | [] -> []
      | _ ->
          let find n = List.find_opt (fun c -> c.Col.name = n) cols in
          let cs = List.filter_map find names in
          if List.length cs = List.length names then [ Col.Set.of_list cs ] else [])
  | ConstTable { rows; cols } ->
      if List.length rows <= 1 then [ Col.Set.of_list cols ] else []
  | SegmentHole _ -> []
  | Select (_, i) | Max1row i -> keys i
  | Project (projs, i) ->
      (* a key survives projection if every key column is passed through *)
      let passed =
        List.filter_map
          (fun p -> match p.expr with ColRef c -> Some (c, p.out) | _ -> None)
          projs
      in
      let translate k =
        let rec go acc = function
          | [] -> Some acc
          | c :: rest -> (
              match List.find_opt (fun (src, _) -> Col.equal src c) passed with
              | Some (_, out) -> go (Col.Set.add out acc) rest
              | None -> None)
        in
        go Col.Set.empty (Col.Set.elements k)
      in
      List.filter_map translate (keys i)
  | Join { kind; left; right; _ } | Apply { kind; left; right; _ } -> (
      match kind with
      | Semi | Anti -> keys left
      | Inner | LeftOuter ->
          (* key(l) x key(r) is a key of the combined output *)
          List.concat_map
            (fun kl -> List.map (fun kr -> Col.Set.union kl kr) (keys right))
            (keys left))
  | SegmentApply { outer; inner; _ } ->
      List.concat_map
        (fun kl -> List.map (fun kr -> Col.Set.union kl kr) (keys inner))
        (keys outer)
  | GroupBy { keys = gk; _ } | LocalGroupBy { keys = gk; _ } ->
      (* the grouping columns are a key of the (global) GroupBy output;
         NOT of a LocalGroupBy pushed below with extended columns — but
         for LocalGroupBy the grouping cols are still a key of its own
         output since it emits one row per distinct grouping value *)
      [ Col.Set.of_list gk ]
  | ScalarAgg { aggs; _ } -> [ Col.Set.of_list (List.map (fun (a : agg) -> a.out) aggs) ]
  | UnionAll _ -> []
  | Except (l, _) -> keys l
  | Rownum { out; _ } -> [ Col.Set.singleton out ]

let has_key ?env o = keys ?env o <> []

(* Is [cols] a superset of some key of [o]? *)
let covers_key ?env (o : op) (cols : Col.Set.t) =
  List.exists (fun k -> Col.Set.subset k cols) (keys ?env o)

(* ------------------------------------------------------------------ *)

(* Functional-dependency closure of a column set within an operator
   tree: base-table keys determine all columns of the same scan, and
   grouping columns determine aggregate outputs.  Used by column
   pruning to drop grouping columns that are determined by the kept
   ones. *)
let fd_closure ?(env = default_env) (o : op) (seed : Col.Set.t) : Col.Set.t =
  (* collect (determinant, determined) pairs *)
  let deps = ref [] in
  let rec walk o =
    (match o with
    | TableScan { table; cols } -> (
        let names = env.table_key table in
        let find n = List.find_opt (fun c -> c.Col.name = n) cols in
        match List.filter_map find names with
        | [] -> ()
        | key when List.length key = List.length names && names <> [] ->
            deps := (Col.Set.of_list key, Col.Set.of_list cols) :: !deps
        | _ -> ())
    | GroupBy { keys; aggs; _ } | LocalGroupBy { keys; aggs; _ } ->
        deps :=
          (Col.Set.of_list keys, Col.Set.of_list (List.map (fun (a : agg) -> a.out) aggs))
          :: !deps
    | Project (projs, _) ->
        List.iter
          (fun p ->
            match p.expr with
            | ColRef c -> deps := (Col.Set.singleton c, Col.Set.singleton p.out) :: !deps
            | _ -> ())
          projs
    | _ -> ());
    List.iter walk (Op.children o)
  in
  walk o;
  let rec fix s =
    let s' =
      List.fold_left
        (fun acc (det, dep) -> if Col.Set.subset det acc then Col.Set.union acc dep else acc)
        s !deps
    in
    if Col.Set.equal s s' then s else fix s'
  in
  fix seed

let rec max_one_row ?(env = default_env) (o : op) : bool =
  let m1 = max_one_row ~env in
  match o with
  | ScalarAgg _ | Max1row _ -> true
  | CseScan _ -> false
  | ConstTable { rows; _ } -> List.length rows <= 1
  | Select (p, i) ->
      m1 i
      ||
      (* equality on a full key with values constant w.r.t. the input
         (outer references or literals) pins at most one row *)
      let eq_cols =
        List.fold_left
          (fun acc c ->
            match c with
            | Cmp (Eq, ColRef col, rhs) when Col.Set.is_empty (Col.Set.inter (Expr.cols rhs) (Op.schema_set i)) ->
                Col.Set.add col acc
            | Cmp (Eq, lhs, ColRef col) when Col.Set.is_empty (Col.Set.inter (Expr.cols lhs) (Op.schema_set i)) ->
                Col.Set.add col acc
            | _ -> acc)
          Col.Set.empty (conjuncts p)
      in
      covers_key ~env i eq_cols
  | Project (_, i) | Rownum { input = i; _ } -> m1 i
  | GroupBy { input; _ } | LocalGroupBy { input; _ } -> m1 input
  | Join { kind = Semi | Anti; left; _ } | Apply { kind = Semi | Anti; left; _ } ->
      m1 left
  | Join { left; right; _ } -> m1 left && m1 right
  | Apply { left; right; _ } -> m1 left && m1 right
  | SegmentApply _ | UnionAll _ | TableScan _ | SegmentHole _ -> false
  | Except (l, _) -> m1 l

(* ------------------------------------------------------------------ *)

(* Output columns guaranteed non-NULL.  Base-table nullability comes
   from the catalog via [env.table_nullable]; the default env declares
   every base column NOT NULL (matching this engine's TPC-H data).
   NULLs are otherwise introduced by outerjoins, aggregates and scalar
   expressions. *)
let rec nonnullable ?(env = default_env) (o : op) : Col.Set.t =
  let nonnullable o = nonnullable ~env o in
  match o with
  | CseScan _ -> Col.Set.empty
  | TableScan { table; cols } ->
      let nullable = env.table_nullable table in
      Col.Set.of_list
        (List.filter (fun (c : Col.t) -> not (List.mem c.name nullable)) cols)
  | ConstTable { cols; rows } ->
      List.fold_left
        (fun acc (i, c) ->
          if List.for_all (fun r -> not (Value.is_null r.(i))) rows then
            Col.Set.add c acc
          else acc)
        Col.Set.empty
        (List.mapi (fun i c -> (i, c)) cols)
  | SegmentHole { cols; _ } -> Col.Set.of_list cols
  | Select (_, i) | Max1row i -> nonnullable i
  | Project (projs, i) ->
      let below = nonnullable i in
      List.fold_left
        (fun acc p ->
          match p.expr with
          | ColRef c when Col.Set.mem c below -> Col.Set.add p.out acc
          | Const v when not (Value.is_null v) -> Col.Set.add p.out acc
          | _ -> acc)
        Col.Set.empty projs
  | Join { kind; left; right; _ } | Apply { kind; left; right; _ } -> (
      match kind with
      | Semi | Anti -> nonnullable left
      | Inner -> Col.Set.union (nonnullable left) (nonnullable right)
      | LeftOuter -> nonnullable left)
  | SegmentApply { outer; inner; _ } ->
      Col.Set.union (nonnullable outer) (nonnullable inner)
  | GroupBy { keys; aggs; input } | LocalGroupBy { keys; aggs; input } ->
      let below = nonnullable input in
      let keys_nn = List.filter (fun c -> Col.Set.mem c below) keys in
      let aggs_nn =
        List.filter_map
          (fun a ->
            match a.fn with
            | CountStar | Count _ -> Some a.out
            | Sum e | Min e | Max e | Avg e -> (
                (* non-null if the input expression is a non-nullable
                   column (groups are non-empty in vector aggregation) *)
                match e with
                | ColRef c when Col.Set.mem c below -> Some a.out
                | Const v when not (Value.is_null v) -> Some a.out
                | _ -> None))
          aggs
      in
      Col.Set.union (Col.Set.of_list keys_nn) (Col.Set.of_list aggs_nn)
  | ScalarAgg { aggs; _ } ->
      (* scalar aggregation over a possibly-empty input: only counts are
         guaranteed non-null *)
      List.fold_left
        (fun acc a ->
          match a.fn with CountStar | Count _ -> Col.Set.add a.out acc | _ -> acc)
        Col.Set.empty aggs
  | UnionAll (l, r) -> Col.Set.inter (nonnullable l) (nonnullable r)
  | Except (l, _) -> nonnullable l
  | Rownum { out; input } -> Col.Set.add out (nonnullable input)

(* ------------------------------------------------------------------ *)

(* Column equivalence classes: sets of columns that are pairwise equal
   on every output row, in the GROUPING sense (two NULLs count as
   equal).  Sourced from equality conjuncts of inner join/apply/select
   predicates and from pass-through projections; pairs established
   below an operator keep holding above it (columns that leave the
   schema make the claim vacuous there).  The grouping notion matches
   [keys]/[covers_key], whose uniqueness is also up to NULL-equality,
   so the classes can soundly extend a grouping set for key-coverage
   tests. *)

let pred_eq_pairs (p : expr) : (Col.t * Col.t) list =
  List.filter_map
    (function Cmp (Eq, ColRef a, ColRef b) -> Some (a, b) | _ -> None)
    (conjuncts p)

let rec equal_pairs (o : op) : (Col.t * Col.t) list =
  match o with
  | TableScan _ | ConstTable _ | SegmentHole _ | CseScan _ -> []
  | Select (p, i) -> pred_eq_pairs p @ equal_pairs i
  | Max1row i | Rownum { input = i; _ } -> equal_pairs i
  | Project (projs, i) ->
      (* a pass-through output equals its source column *)
      let links =
        List.filter_map
          (fun pr -> match pr.expr with ColRef c -> Some (c, pr.out) | _ -> None)
          projs
      in
      links @ equal_pairs i
  | Join { kind; pred; left; right } | Apply { kind; pred; left; right } -> (
      match kind with
      | Semi | Anti -> equal_pairs left
      | Inner -> pred_eq_pairs pred @ equal_pairs left @ equal_pairs right
      | LeftOuter ->
          (* the predicate only holds on matched rows; pairs internal to
             the padded side survive as NULL ≡ NULL *)
          equal_pairs left @ equal_pairs right)
  | SegmentApply { inner; _ } -> equal_pairs inner
  | GroupBy { input; _ } | LocalGroupBy { input; _ } -> equal_pairs input
  | ScalarAgg _ -> []
  | UnionAll _ -> []
  | Except (l, _) -> equal_pairs l

let equiv_classes (o : op) : Col.Set.t list =
  let merge classes (a, b) =
    let touching, rest =
      List.partition (fun s -> Col.Set.mem a s || Col.Set.mem b s) classes
    in
    let merged =
      List.fold_left Col.Set.union (Col.Set.of_list [ a; b ]) touching
    in
    merged :: rest
  in
  List.filter
    (fun s -> Col.Set.cardinal s >= 2)
    (List.fold_left merge [] (equal_pairs o))

(* Extend [s] with every column equivalent to one of its members (the
   classes are disjoint, so one pass suffices). *)
let equate (classes : Col.Set.t list) (s : Col.Set.t) : Col.Set.t =
  List.fold_left
    (fun acc cls -> if Col.Set.disjoint cls acc then acc else Col.Set.union cls acc)
    s classes

(* ------------------------------------------------------------------ *)

(* Columns bound to a single non-NULL constant on every output row. *)

let pred_const_bindings (p : expr) : Value.t Col.IdMap.t =
  List.fold_left
    (fun acc c ->
      match c with
      | Cmp (Eq, ColRef col, Const v) | Cmp (Eq, Const v, ColRef col)
        when not (Value.is_null v) ->
          Col.IdMap.add col.Col.id v acc
      | _ -> acc)
    Col.IdMap.empty (conjuncts p)

let rec const_bindings (o : op) : Value.t Col.IdMap.t =
  let union = Col.IdMap.union (fun _ v _ -> Some v) in
  match o with
  | TableScan _ | SegmentHole _ | CseScan _ -> Col.IdMap.empty
  | ConstTable { cols; rows } -> (
      match rows with
      | [] -> Col.IdMap.empty
      | first :: rest ->
          List.fold_left
            (fun acc (i, (c : Col.t)) ->
              if
                (not (Value.is_null first.(i)))
                && List.for_all (fun r -> Value.equal r.(i) first.(i)) rest
              then Col.IdMap.add c.id first.(i) acc
              else acc)
            Col.IdMap.empty
            (List.mapi (fun i c -> (i, c)) cols))
  | Select (p, i) -> union (pred_const_bindings p) (const_bindings i)
  | Max1row i | Rownum { input = i; _ } -> const_bindings i
  | Project (projs, i) ->
      let below = const_bindings i in
      List.fold_left
        (fun acc pr ->
          match pr.expr with
          | Const v when not (Value.is_null v) -> Col.IdMap.add pr.out.Col.id v acc
          | ColRef c -> (
              match Col.IdMap.find_opt c.Col.id below with
              | Some v -> Col.IdMap.add pr.out.Col.id v acc
              | None -> acc)
          | _ -> acc)
        Col.IdMap.empty projs
  | Join { kind = Inner; pred; left; right } | Apply { kind = Inner; pred; left; right }
    ->
      union (pred_const_bindings pred)
        (union (const_bindings left) (const_bindings right))
  | Join { kind = LeftOuter | Semi | Anti; left; _ }
  | Apply { kind = LeftOuter | Semi | Anti; left; _ } ->
      (* the padded right side breaks its bindings; the predicate only
         holds on matched rows *)
      const_bindings left
  | GroupBy { keys; input; _ } | LocalGroupBy { keys; input; _ } ->
      Col.IdMap.filter
        (fun id _ -> List.exists (fun (k : Col.t) -> k.id = id) keys)
        (const_bindings input)
  | ScalarAgg _ | UnionAll _ | SegmentApply _ -> Col.IdMap.empty
  | Except (l, _) -> const_bindings l

(* ------------------------------------------------------------------ *)

(* Conjunct-level predicate analysis: is a filter predicate provably
   never satisfied (false or NULL on every row) or provably true on
   every row?  Sound in both directions; [Unknown] is the default. *)

type verdict = Contradiction | Tautology | Unknown

let arith_op = function
  | Add -> `Add
  | Sub -> `Sub
  | Mul -> `Mul
  | Div -> `Div
  | Mod -> `Mod

let cmp_holds op n =
  match op with
  | Eq -> n = 0
  | Ne -> n <> 0
  | Lt -> n < 0
  | Le -> n <= 0
  | Gt -> n > 0
  | Ge -> n >= 0

(* Constant folding with three-valued logic; [None] = not statically
   known.  [consts] supplies column values proven by the input. *)
let rec eval_const (consts : Value.t Col.IdMap.t) (e : expr) : Value.t option =
  let ev = eval_const consts in
  match e with
  | Const v -> Some v
  | ColRef c -> Col.IdMap.find_opt c.Col.id consts
  | Arith (op, a, b) -> (
      match (ev a, ev b) with
      | Some va, Some vb -> Some (Value.arith (arith_op op) va vb)
      | _ -> None)
  | Cmp (op, a, b) -> (
      match (ev a, ev b) with
      | Some va, Some vb -> (
          match Value.cmp_sql va vb with
          | None -> Some Value.Null
          | Some n -> Some (Value.Bool (cmp_holds op n)))
      | _ -> None)
  | And (a, b) -> (
      match (ev a, ev b) with
      | Some (Value.Bool false), _ | _, Some (Value.Bool false) ->
          Some (Value.Bool false)
      | Some (Value.Bool true), x | x, Some (Value.Bool true) -> x
      | Some Value.Null, Some Value.Null -> Some Value.Null
      | _ -> None)
  | Or (a, b) -> (
      match (ev a, ev b) with
      | Some (Value.Bool true), _ | _, Some (Value.Bool true) -> Some (Value.Bool true)
      | Some (Value.Bool false), x | x, Some (Value.Bool false) -> x
      | Some Value.Null, Some Value.Null -> Some Value.Null
      | _ -> None)
  | Not a -> (
      match ev a with
      | Some (Value.Bool b) -> Some (Value.Bool (not b))
      | Some Value.Null -> Some Value.Null
      | _ -> None)
  | IsNull a -> (
      match ev a with Some v -> Some (Value.Bool (Value.is_null v)) | None -> None)
  | Like _ | Case _ | Subquery _ | Exists _ | InSub _ | QuantCmp _ -> None

(* Numeric interval bounds implied by the conjunct set: detects e.g.
   [x > 5 AND x < 3].  Only single-column-vs-constant comparisons
   contribute; a violated bound pair makes the whole conjunction
   unsatisfiable over the reals (hence over the ints too). *)
let bounds_unsat (conjs : expr list) : bool =
  let bounds : (int, (float * bool) option ref * (float * bool) option ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let get id =
    match Hashtbl.find_opt bounds id with
    | Some b -> b
    | None ->
        let b = (ref None, ref None) in
        Hashtbl.add bounds id b;
        b
  in
  let tighten_lo r v strict =
    match !r with
    | Some (v0, s0) when v0 > v || (v0 = v && s0) -> ()
    | _ -> r := Some (v, strict)
  in
  let tighten_hi r v strict =
    match !r with
    | Some (v0, s0) when v0 < v || (v0 = v && s0) -> ()
    | _ -> r := Some (v, strict)
  in
  let record (c : Col.t) op f =
    let lo, hi = get c.Col.id in
    match op with
    | Eq ->
        tighten_lo lo f false;
        tighten_hi hi f false
    | Lt -> tighten_hi hi f true
    | Le -> tighten_hi hi f false
    | Gt -> tighten_lo lo f true
    | Ge -> tighten_lo lo f false
    | Ne -> ()
  in
  let flip = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | (Eq | Ne) as o -> o in
  List.iter
    (fun c ->
      match c with
      | Cmp (op, ColRef col, Const v) -> (
          match Value.to_float v with Some f -> record col op f | None -> ())
      | Cmp (op, Const v, ColRef col) -> (
          match Value.to_float v with Some f -> record col (flip op) f | None -> ())
      | _ -> ())
    conjs;
  Hashtbl.fold
    (fun _ (lo, hi) acc ->
      acc
      ||
      match (!lo, !hi) with
      | Some (l, ls), Some (h, hs) -> l > h || (l = h && (ls || hs))
      | _ -> false)
    bounds false

let conjunct_verdict ~nonnull ~consts (c : expr) : verdict =
  match eval_const consts c with
  | Some (Value.Bool true) -> Tautology
  | Some (Value.Bool false) | Some Value.Null ->
      (* as a filter, a NULL conjunct never passes *)
      Contradiction
  | Some _ -> Unknown
  | None -> (
      match c with
      | IsNull (ColRef col) when Col.Set.mem col nonnull -> Contradiction
      | Not (IsNull (ColRef col)) when Col.Set.mem col nonnull -> Tautology
      | Cmp ((Eq | Le | Ge), ColRef a, ColRef b)
        when Col.equal a b && Col.Set.mem a nonnull ->
          Tautology
      | Cmp ((Ne | Lt | Gt), ColRef a, ColRef b) when Col.equal a b ->
          (* x <> x is false or NULL on every row *)
          Contradiction
      | _ -> Unknown)

let pred_verdict ?(nonnull = Col.Set.empty) ?(consts = Col.IdMap.empty) (p : expr) :
    verdict =
  let cs = conjuncts p in
  let vs = List.map (conjunct_verdict ~nonnull ~consts) cs in
  if List.mem Contradiction vs || bounds_unsat cs then Contradiction
  else if List.for_all (fun v -> v = Tautology) vs then Tautology
  else Unknown
