(* Operations over relational operator trees: output schema, free
   (outer) references, traversal, cloning with fresh column ids. *)

open Algebra

(* ------------------------------------------------------------------ *)
(* Output schema (ordered column list).                               *)
(* ------------------------------------------------------------------ *)

let rec schema (o : op) : Col.t list =
  match o with
  | TableScan { cols; _ } | ConstTable { cols; _ } | SegmentHole { cols; _ }
  | CseScan { cols; _ } ->
      cols
  | Select (_, i) | Max1row i -> schema i
  | Project (projs, _) -> List.map (fun p -> p.out) projs
  | Join { kind; left; right; _ } | Apply { kind; left; right; _ } -> (
      match kind with
      | Semi | Anti -> schema left
      | Inner | LeftOuter -> schema left @ schema right)
  | SegmentApply { outer; inner; _ } -> schema outer @ schema inner
  | GroupBy { keys; aggs; _ } | LocalGroupBy { keys; aggs; _ } ->
      keys @ List.map (fun (a : agg) -> a.out) aggs
  | ScalarAgg { aggs; _ } -> List.map (fun (a : agg) -> a.out) aggs
  | UnionAll (l, _) | Except (l, _) -> schema l
  | Rownum { out; input } -> schema input @ [ out ]

let schema_set o = Col.Set.of_list (schema o)

(* ------------------------------------------------------------------ *)
(* Children and reconstruction.                                       *)
(* ------------------------------------------------------------------ *)

let children = function
  | TableScan _ | ConstTable _ | SegmentHole _ | CseScan _ -> []
  | Select (_, i) | Project (_, i) | Max1row i -> [ i ]
  | GroupBy { input; _ } | LocalGroupBy { input; _ } | ScalarAgg { input; _ }
  | Rownum { input; _ } ->
      [ input ]
  | Join { left; right; _ } | Apply { left; right; _ } -> [ left; right ]
  | SegmentApply { outer; inner; _ } -> [ outer; inner ]
  | UnionAll (l, r) | Except (l, r) -> [ l; r ]

let with_children o cs =
  match o, cs with
  | (TableScan _ | ConstTable _ | SegmentHole _ | CseScan _), [] -> o
  | Select (p, _), [ i ] -> Select (p, i)
  | Project (ps, _), [ i ] -> Project (ps, i)
  | Max1row _, [ i ] -> Max1row i
  | GroupBy g, [ i ] -> GroupBy { g with input = i }
  | LocalGroupBy g, [ i ] -> LocalGroupBy { g with input = i }
  | ScalarAgg g, [ i ] -> ScalarAgg { g with input = i }
  | Rownum r, [ i ] -> Rownum { r with input = i }
  | Join j, [ l; r ] -> Join { j with left = l; right = r }
  | Apply a, [ l; r ] -> Apply { a with left = l; right = r }
  | SegmentApply s, [ o'; i ] -> SegmentApply { s with outer = o'; inner = i }
  | UnionAll _, [ l; r ] -> UnionAll (l, r)
  | Except _, [ l; r ] -> Except (l, r)
  | _ -> invalid_arg "Op.with_children: arity mismatch"

(* The scalar expressions attached directly to an operator (not those of
   its children). *)
let local_exprs = function
  | Select (p, _) -> [ p ]
  | Project (ps, _) -> List.map (fun p -> p.expr) ps
  | Join { pred; _ } | Apply { pred; _ } -> [ pred ]
  | GroupBy { aggs; _ } | LocalGroupBy { aggs; _ } | ScalarAgg { aggs; _ } ->
      List.filter_map (fun a -> agg_input_expr a.fn) aggs
  | TableScan _ | ConstTable _ | SegmentHole _ | CseScan _ | SegmentApply _
  | UnionAll _ | Except _ | Max1row _ | Rownum _ ->
      []

(* ------------------------------------------------------------------ *)
(* Free (outer) references.                                           *)
(*                                                                    *)
(* The set of columns used in a subtree but not produced by it: the   *)
(* correlation of the paper.  Subquery scalar children contribute     *)
(* their own free refs.                                               *)
(* ------------------------------------------------------------------ *)

let rec free_cols (o : op) : Col.Set.t =
  let expr_free acc e =
    Expr.fold_cols
      ~on_op:(fun acc q -> Col.Set.union acc (free_cols q))
      (fun s c -> Col.Set.add c s)
      acc e
  in
  let local = List.fold_left expr_free Col.Set.empty (local_exprs o) in
  let from_children =
    List.fold_left (fun acc c -> Col.Set.union acc (free_cols c)) Col.Set.empty
      (children o)
  in
  let produced_below =
    List.fold_left (fun acc c -> Col.Set.union acc (schema_set c)) Col.Set.empty
      (children o)
  in
  (* A SegmentHole's columns are bound by the enclosing SegmentApply's
     outer side, through [src]. *)
  let hole_srcs =
    match o with
    | SegmentHole { src; _ } -> Col.Set.of_list src
    | _ -> Col.Set.empty
  in
  Col.Set.union hole_srcs
    (Col.Set.diff (Col.Set.union local from_children) produced_below)
  |> fun s ->
  match o with
  | SegmentApply { outer; _ } ->
      (* inner's references to outer's columns are bound here *)
      Col.Set.diff s (schema_set outer)
  | _ -> s

(* [correlated_with inner left]: does [inner] reference columns produced
   by [left]?  The test of identities (1)/(2). *)
let correlated_with (inner : op) (left : op) =
  not (Col.Set.is_empty (Col.Set.inter (free_cols inner) (schema_set left)))

let uses_cols (o : op) (cols : Col.Set.t) =
  not (Col.Set.is_empty (Col.Set.inter (free_cols o) cols))

(* ------------------------------------------------------------------ *)
(* Renaming and cloning.                                              *)
(* ------------------------------------------------------------------ *)

let rec rename (m : Col.t Col.IdMap.t) (o : op) : op =
  let rc c = match Col.IdMap.find_opt c.Col.id m with Some c' -> c' | None -> c in
  let re e = Expr.rename ~map_op:rename m e in
  let ragg a =
    match agg_input_expr a.fn with
    | None -> { a with out = rc a.out }
    | Some e -> { fn = agg_with_input a.fn (re e); out = rc a.out }
  in
  match o with
  | TableScan t -> TableScan { t with cols = List.map rc t.cols }
  | ConstTable t -> ConstTable { t with cols = List.map rc t.cols }
  | CseScan c -> CseScan { c with cols = List.map rc c.cols }
  | SegmentHole h -> SegmentHole { cols = List.map rc h.cols; src = List.map rc h.src }
  | Select (p, i) -> Select (re p, rename m i)
  | Project (ps, i) ->
      Project (List.map (fun p -> { expr = re p.expr; out = rc p.out }) ps, rename m i)
  | Max1row i -> Max1row (rename m i)
  | GroupBy g ->
      GroupBy
        { keys = List.map rc g.keys; aggs = List.map ragg g.aggs; input = rename m g.input }
  | LocalGroupBy g ->
      LocalGroupBy
        { keys = List.map rc g.keys; aggs = List.map ragg g.aggs; input = rename m g.input }
  | ScalarAgg g -> ScalarAgg { aggs = List.map ragg g.aggs; input = rename m g.input }
  | Rownum r -> Rownum { out = rc r.out; input = rename m r.input }
  | Join j -> Join { j with pred = re j.pred; left = rename m j.left; right = rename m j.right }
  | Apply a ->
      Apply { a with pred = re a.pred; left = rename m a.left; right = rename m a.right }
  | SegmentApply s ->
      SegmentApply
        { seg_cols = List.map rc s.seg_cols;
          outer = rename m s.outer;
          inner = rename m s.inner
        }
  | UnionAll (l, r) -> UnionAll (rename m l, rename m r)
  | Except (l, r) -> Except (rename m l, rename m r)

(* Deep copy with fresh ids for every column *produced inside* the
   subtree; free (outer) references are left untouched.  Returns the
   clone plus the mapping old-output-col -> new-output-col, which the
   caller uses to fix up references above.  Required by the identities
   that duplicate a subexpression — (5), (6), (7) — and by SegmentApply
   introduction. *)
let clone_fresh (o : op) : op * Col.t Col.IdMap.t =
  (* collect every column produced by any node of the subtree *)
  let rec produced acc o =
    let acc =
      match o with
      | TableScan { cols; _ } | ConstTable { cols; _ } | CseScan { cols; _ } ->
          cols @ acc
      | SegmentHole { cols; _ } -> cols @ acc
      | Project (ps, _) -> List.map (fun p -> p.out) ps @ acc
      | GroupBy { aggs; _ } | LocalGroupBy { aggs; _ } | ScalarAgg { aggs; _ } ->
          List.map (fun (a : agg) -> a.out) aggs @ acc
      | Rownum { out; _ } -> out :: acc
      | _ -> acc
    in
    List.fold_left produced acc (children o)
  in
  let cols = produced [] o in
  let m =
    List.fold_left
      (fun m c -> Col.IdMap.add c.Col.id (Col.clone c) m)
      Col.IdMap.empty cols
  in
  (rename m o, m)

(* ------------------------------------------------------------------ *)
(* Structural isomorphism up to column renaming.                      *)
(*                                                                    *)
(* Used by SegmentApply introduction (Section 3.4.1) to detect the    *)
(* "two instances of an expression connected by a join" pattern.      *)
(* Returns the column bijection (a's output col -> b's output col) on *)
(* success.                                                           *)
(* ------------------------------------------------------------------ *)

exception Not_iso

let iso (a : op) (b : op) : Col.t Col.IdMap.t option =
  let map = ref Col.IdMap.empty in
  let bind ca cb =
    match Col.IdMap.find_opt ca.Col.id !map with
    | Some c' -> if not (Col.equal c' cb) then raise Not_iso
    | None ->
        if ca.Col.ty <> cb.Col.ty then raise Not_iso;
        map := Col.IdMap.add ca.Col.id cb !map
  in
  let cref ca cb =
    (* either both map through the bijection, or they are the same outer
       reference *)
    match Col.IdMap.find_opt ca.Col.id !map with
    | Some c' -> if not (Col.equal c' cb) then raise Not_iso
    | None -> if not (Col.equal ca cb) then raise Not_iso
  in
  let rec eexpr ea eb =
    match ea, eb with
    | ColRef ca, ColRef cb -> cref ca cb
    | Const va, Const vb -> if not (Value.equal va vb) then raise Not_iso
    | Arith (oa, a1, a2), Arith (ob, b1, b2) ->
        if oa <> ob then raise Not_iso;
        eexpr a1 b1;
        eexpr a2 b2
    | Cmp (oa, a1, a2), Cmp (ob, b1, b2) ->
        if oa <> ob then raise Not_iso;
        eexpr a1 b1;
        eexpr a2 b2
    | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
        eexpr a1 b1;
        eexpr a2 b2
    | Not a1, Not b1 | IsNull a1, IsNull b1 -> eexpr a1 b1
    | Like (a1, p1), Like (b1, p2) ->
        if p1 <> p2 then raise Not_iso;
        eexpr a1 b1
    | Case (ba, ea'), Case (bb, eb') ->
        if List.length ba <> List.length bb then raise Not_iso;
        List.iter2
          (fun (c1, v1) (c2, v2) ->
            eexpr c1 c2;
            eexpr v1 v2)
          ba bb;
        (match ea', eb' with
        | Some x, Some y -> eexpr x y
        | None, None -> ()
        | _ -> raise Not_iso)
    | _ -> raise Not_iso
  in
  let eagg aa ab =
    (match aa.fn, ab.fn with
    | CountStar, CountStar -> ()
    | Count x, Count y | Sum x, Sum y | Min x, Min y | Max x, Max y | Avg x, Avg y ->
        eexpr x y
    | _ -> raise Not_iso);
    bind aa.out ab.out
  in
  let rec egroup (ka, aa, ia) (kb, ab, ib) =
    if List.length ka <> List.length kb then raise Not_iso;
    if List.length aa <> List.length ab then raise Not_iso;
    eop ia ib;
    List.iter2 cref ka kb;
    List.iter2 eagg aa ab
  and eop a b =
    match a, b with
    | TableScan ta, TableScan tb ->
        if ta.table <> tb.table then raise Not_iso;
        List.iter2 bind ta.cols tb.cols
    | ConstTable ta, ConstTable tb ->
        if List.length ta.rows <> List.length tb.rows then raise Not_iso;
        List.iter2
          (fun ra rb -> Array.iter2 (fun x y -> if not (Value.equal x y) then raise Not_iso) ra rb)
          ta.rows tb.rows;
        List.iter2 bind ta.cols tb.cols
    | Select (pa, ia), Select (pb, ib) ->
        eop ia ib;
        eexpr pa pb
    | Project (psa, ia), Project (psb, ib) ->
        if List.length psa <> List.length psb then raise Not_iso;
        eop ia ib;
        List.iter2
          (fun p q ->
            eexpr p.expr q.expr;
            bind p.out q.out)
          psa psb
    | Join ja, Join jb ->
        if ja.kind <> jb.kind then raise Not_iso;
        eop ja.left jb.left;
        eop ja.right jb.right;
        eexpr ja.pred jb.pred
    | Apply aa, Apply ab ->
        if aa.kind <> ab.kind then raise Not_iso;
        eop aa.left ab.left;
        eop aa.right ab.right;
        eexpr aa.pred ab.pred
    | GroupBy ga, GroupBy gb ->
        egroup (ga.keys, ga.aggs, ga.input) (gb.keys, gb.aggs, gb.input)
    | LocalGroupBy ga, LocalGroupBy gb ->
        egroup (ga.keys, ga.aggs, ga.input) (gb.keys, gb.aggs, gb.input)
    | ScalarAgg ga, ScalarAgg gb ->
        if List.length ga.aggs <> List.length gb.aggs then raise Not_iso;
        eop ga.input gb.input;
        List.iter2 eagg ga.aggs gb.aggs
    | UnionAll (l1, r1), UnionAll (l2, r2) | Except (l1, r1), Except (l2, r2) ->
        eop l1 l2;
        eop r1 r2
    | Max1row ia, Max1row ib -> eop ia ib
    | CseScan ca, CseScan cb ->
        if ca.id <> cb.id then raise Not_iso;
        List.iter2 bind ca.cols cb.cols
    | Rownum ra, Rownum rb ->
        eop ra.input rb.input;
        bind ra.out rb.out
    | _ -> raise Not_iso
  in
  try
    eop a b;
    Some !map
  with Not_iso | Invalid_argument _ -> None

(* Generic bottom-up rewrite. *)
let rec map_bottom_up (f : op -> op) (o : op) : op =
  f (with_children o (List.map (map_bottom_up f) (children o)))

let rec exists_op (pred : op -> bool) (o : op) : bool =
  pred o || List.exists (exists_op pred) (children o)

let count_ops (o : op) : int =
  let rec go acc o = List.fold_left go (acc + 1) (children o) in
  go 0 o
