(* The logical algebra: scalar expressions and relational operators.

   The two syntactic categories are mutually recursive, exactly as in the
   paper's Section 2.1: the binder's output contains scalar operators
   with relational children ([Subquery], [Exists], ...).  Normalization
   (lib/normalize) removes this mutual recursion by introducing [Apply],
   and then removes [Apply] itself where possible.

   All operators are bag-oriented; UNION is UNION ALL and duplicate
   removal is an explicit no-aggregate [GroupBy] (paper, Section 1.1,
   footnote 1). *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge
type arithop = Add | Sub | Mul | Div | Mod
type quant = Any | All

(* Join variants.  [Semi]/[Anti] are the left semijoin / antijoin of the
   paper; [FullOuter] is not needed by any technique in the paper and is
   deliberately omitted. *)
type join_kind = Inner | LeftOuter | Semi | Anti

type agg_fn =
  | CountStar
  | Count of expr  (** count of non-null values *)
  | Sum of expr
  | Min of expr
  | Max of expr
  | Avg of expr

and agg = { fn : agg_fn; out : Col.t }

and expr =
  | ColRef of Col.t
  | Const of Value.t
  | Arith of arithop * expr * expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | IsNull of expr
  | Like of expr * string  (** SQL LIKE with %% and _ wildcards *)
  | Case of (expr * expr) list * expr option
      (** CASE WHEN c1 THEN v1 ... [ELSE e] END *)
  (* --- scalar operators with relational children (binder output only,
     removed by Normalize.Apply_intro) --- *)
  | Subquery of op  (** scalar-valued subquery: one column, at most one row *)
  | Exists of op
  | InSub of expr * op
  | QuantCmp of cmpop * quant * expr * op  (** e op ANY/ALL (subquery) *)

and proj = { expr : expr; out : Col.t }

and op =
  | TableScan of { table : string; cols : Col.t list }
      (** one occurrence of a base table; [cols] are fresh per occurrence *)
  | ConstTable of { cols : Col.t list; rows : Value.t array list }
  | Select of expr * op
  | Project of proj list * op
  | Join of { kind : join_kind; pred : expr; left : op; right : op }
  | Apply of { kind : join_kind; pred : expr; left : op; right : op }
      (** [R A⊗(σ_pred E)]: evaluate [right] for each row of [left]
          (free references into [left]'s columns are the correlation),
          filter with [pred], combine per [kind].  [Inner] is the
          paper's A× (cross apply). *)
  | SegmentApply of
      { seg_cols : Col.t list;  (** segmenting columns from [outer] *)
        outer : op;
        inner : op  (** uses [SegmentHole] leaves as the table parameter *)
      }
  | SegmentHole of { cols : Col.t list; src : Col.t list }
      (** placeholder for the table-valued parameter S of SegmentApply;
          [cols] are this occurrence's fresh ids, [src] the outer
          columns they mirror, positionally *)
  | GroupBy of { keys : Col.t list; aggs : agg list; input : op }
      (** vector aggregate G_{A,F}; empty input => empty output *)
  | ScalarAgg of { aggs : agg list; input : op }
      (** scalar aggregate G^1_F; always exactly one output row *)
  | LocalGroupBy of { keys : Col.t list; aggs : agg list; input : op }
      (** partial (local) aggregation; same runtime behaviour as
          GroupBy, distinct operator so that only the LocalGroupBy
          reorderings of Section 3.3 apply to it *)
  | UnionAll of op * op
  | Except of op * op  (** bag difference (EXCEPT ALL) *)
  | Max1row of op
      (** passes rows through; runtime error if input has more than one *)
  | Rownum of { out : Col.t; input : op }
      (** appends a unique integer column: manufactures a key *)
  | CseScan of { id : string; cols : Col.t list; rows_hint : int }
      (** scan of a materialized common subexpression: [id] names an
          entry in the engine's CSE store, [cols] are this occurrence's
          output columns (positionally the store entry's schema),
          [rows_hint] the materialization's estimated cardinality *)

let true_ = Const (Value.Bool true)

let is_true_const = function Const (Value.Bool true) -> true | _ -> false

(* Conjunction that absorbs TRUE, used pervasively by rewrites. *)
let conj a b =
  if is_true_const a then b else if is_true_const b then a else And (a, b)

let conj_list = function
  | [] -> true_
  | e :: rest -> List.fold_left conj e rest

(* Split a predicate into its top-level conjuncts. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let agg_input_expr = function
  | CountStar -> None
  | Count e | Sum e | Min e | Max e | Avg e -> Some e

let agg_with_input fn e =
  match fn with
  | CountStar -> CountStar
  | Count _ -> Count e
  | Sum _ -> Sum e
  | Min _ -> Min e
  | Max _ -> Max e
  | Avg _ -> Avg e

let agg_name = function
  | CountStar -> "count(*)"
  | Count _ -> "count"
  | Sum _ -> "sum"
  | Min _ -> "min"
  | Max _ -> "max"
  | Avg _ -> "avg"

(* agg(∅): the value a scalar aggregate yields on empty input
   (paper, Section 1.1). *)
let agg_on_empty = function
  | CountStar | Count _ -> Value.Int 0
  | Sum _ | Min _ | Max _ | Avg _ -> Value.Null

let join_kind_name = function
  | Inner -> "inner"
  | LeftOuter -> "leftouter"
  | Semi -> "semi"
  | Anti -> "anti"
