(* Column identities.

   Every column produced anywhere in a query gets a globally unique
   integer id at creation time (bind time for base-table occurrences,
   rewrite time for manufactured columns).  Rewrites reference columns
   only through ids, which makes the decorrelation identities immune to
   name capture: two scans of the same table in one query have disjoint
   ids, and cloning a subtree re-instantiates ids through an explicit
   substitution. *)

type t = { id : int; name : string; ty : Value.ty }

(* Atomic: ids are drawn during binding and rewriting, and a concurrent
   query service compiles many queries at once across domains — a racy
   counter would hand two columns the same id, which the id-based
   rewrite machinery silently miscompiles. *)
let counter = Atomic.make 0

(* Tests reset the counter so expected plans print with stable ids. *)
let reset_counter () = Atomic.set counter 0

let fresh name ty = { id = 1 + Atomic.fetch_and_add counter 1; name; ty }

(* A renamed copy of [c] with a fresh id (used when cloning subtrees). *)
let clone c = fresh c.name c.ty

let equal a b = a.id = b.id
let compare a b = Stdlib.compare a.id b.id
let pp fmt c = Format.fprintf fmt "%s#%d" c.name c.id

(* Integer-keyed map from column id, used where only ids are known. *)
module IdMap = Map.Make (Int)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

let set_of_list l = Set.of_list l
let names_of set = Set.elements set |> List.map (fun c -> c.name)
