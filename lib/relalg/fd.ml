(* Symbolic plan-property engine: functional dependencies with
   transitive closure, derived candidate keys, and cardinality
   intervals, inferred bottom-up over an operator tree.

   Everything here is a sound under-approximation in the GROUPING sense
   of equality (NULL ≡ NULL, Int 5 ≡ Float 5.0) — the same notion the
   executor's hash tables use for grouping and duplicate elimination,
   so every inferred property can be asserted against actual result
   bags (see [check_rows]).

   The three property families:

   - [fds]      functional dependencies det → dep that hold on every
                pair of output rows.  An empty determinant encodes a
                column constant across the output.  Dependencies may
                mention "ghost" columns no longer in the schema (a
                Project keeps its input's FDs): each output row still
                corresponds to one input row, so chains through hidden
                columns remain valid for key derivation.
   - [uniques]  strict uniqueness facts: no two output rows agree on
                all columns of the set.  The empty set means the
                operator yields at most one row.  A set K of output
                columns is a *derived key* iff the FD closure of K
                covers some unique set — strictly stronger than
                requiring K to be a superset of a key.
   - [card]     a cardinality interval [lo, hi] on the number of
                output rows ([hi = None] = unbounded).  [lo > hi] is a
                contradiction: the plan cannot execute successfully
                (e.g. Max1row over a provably-multi-row input).

   Inside the right side of Apply/SegmentApply, equalities against
   correlation parameters count as constants: the properties are then
   per-invocation.  The Apply cases re-export only invocation-safe
   facts (the key product, nonnullability), never the raw FDs. *)

open Algebra

type interval = { lo : int; hi : int option }

type fd = { det : Col.Set.t; dep : Col.Set.t }

type t = {
  fds : fd list;
  uniques : Col.Set.t list;
  nonnull : Col.Set.t;
  card : interval;
}

(* --- interval arithmetic (saturating; [None] = unbounded) ----------- *)

let top = { lo = 0; hi = None }

let mul_hi a b =
  match (a, b) with
  | Some 0, _ | _, Some 0 -> Some 0
  | Some x, Some y when x < max_int / y -> Some (x * y)
  | _ -> None

let add_hi a b =
  match (a, b) with
  | Some x, Some y when x < max_int - y -> Some (x + y)
  | _ -> None

let min_hi a b =
  match (a, b) with
  | Some x, Some y -> Some (min x y)
  | Some x, None | None, Some x -> Some x
  | None, None -> None

let mul_lo a b = if a > 0 && b > 0 && a < max_int / b then a * b else min a b

let hi_le (h : int option) n = match h with Some h -> h <= n | None -> false

let contradiction t = match t.card.hi with Some h -> t.card.lo > h | None -> false

let interval_to_string { lo; hi } =
  match hi with
  | Some h -> Printf.sprintf "[%d,%d]" lo h
  | None -> Printf.sprintf "[%d,*]" lo

(* --- rendering ------------------------------------------------------- *)

let cols_to_string (s : Col.Set.t) =
  "{"
  ^ String.concat "," (List.map (Format.asprintf "%a" Col.pp) (Col.Set.elements s))
  ^ "}"

let fd_to_string f =
  Printf.sprintf "%s->%s" (cols_to_string f.det) (cols_to_string f.dep)

(* --- closure and key derivation -------------------------------------- *)

(* Fixpoint of [seed] under [fds], recording which dependencies
   contributed (for rendering proof chains). *)
let closure_trace (fds : fd list) (seed : Col.Set.t) : Col.Set.t * fd list =
  let used = ref [] in
  let rec fix s =
    let s' =
      List.fold_left
        (fun acc f ->
          if Col.Set.subset f.det acc && not (Col.Set.subset f.dep acc) then begin
            used := f :: !used;
            Col.Set.union acc f.dep
          end
          else acc)
        s fds
    in
    if Col.Set.equal s s' then s else fix s'
  in
  let c = fix seed in
  (c, List.rev !used)

let closure t seed = fst (closure_trace t.fds seed)

let covers_key t (cols : Col.Set.t) =
  let c = closure t cols in
  List.exists (fun u -> Col.Set.subset u c) t.uniques

(* The unique set covered by [cols] plus the FD chain proving it. *)
let cover_chain t (cols : Col.Set.t) : (Col.Set.t * fd list) option =
  let c, used = closure_trace t.fds cols in
  match List.find_opt (fun u -> Col.Set.subset u c) t.uniques with
  | None -> None
  | Some u -> Some (u, used)

let max_one t = hi_le t.card.hi 1 || covers_key t Col.Set.empty

(* Greedily minimize a set that covers a key: drop members whose removal
   keeps coverage. *)
let minimize t (k : Col.Set.t) : Col.Set.t =
  List.fold_left
    (fun k c ->
      let k' = Col.Set.remove c k in
      if covers_key t k' then k' else k)
    k (Col.Set.elements k)

(* Derived candidate keys restricted to [schema], minimized for display;
   sorted smallest-first, deduplicated, capped. *)
let derived_keys t ~(schema : Col.t list) : Col.Set.t list =
  let sset = Col.set_of_list schema in
  let candidates =
    List.filter (fun u -> Col.Set.subset u sset) t.uniques
    @ (if covers_key t sset then [ sset ] else [])
  in
  let minimized = List.map (minimize t) candidates in
  let sorted =
    List.sort_uniq
      (fun a b ->
        let c = compare (Col.Set.cardinal a) (Col.Set.cardinal b) in
        if c <> 0 then c else Col.Set.compare a b)
      minimized
  in
  (* drop supersets of an earlier (smaller) key *)
  let rec prune acc = function
    | [] -> List.rev acc
    | k :: rest ->
        if List.exists (fun k' -> Col.Set.subset k' k) acc then prune acc rest
        else prune (k :: acc) rest
  in
  let pruned = prune [] sorted in
  List.filteri (fun i _ -> i < 4) pruned

(* --- bookkeeping ------------------------------------------------------ *)

let fd_cap = 192
let unique_cap = 8

let fd_equal a b = Col.Set.equal a.det b.det && Col.Set.equal a.dep b.dep

let dedup_fds fds =
  let rec go acc = function
    | [] -> List.rev acc
    | f :: rest ->
        if Col.Set.subset f.dep f.det || List.exists (fd_equal f) acc then go acc rest
        else go (f :: acc) rest
  in
  let all = go [] fds in
  List.filteri (fun i _ -> i < fd_cap) all

let dedup_uniques us =
  let sorted =
    List.sort_uniq
      (fun a b ->
        let c = compare (Col.Set.cardinal a) (Col.Set.cardinal b) in
        if c <> 0 then c else Col.Set.compare a b)
      us
  in
  (* keep only minimal facts: a superset of a unique set is redundant *)
  let rec prune acc = function
    | [] -> List.rev acc
    | u :: rest ->
        if List.exists (fun u' -> Col.Set.subset u' u) acc then prune acc rest
        else prune (u :: acc) rest
  in
  let pruned = prune [] sorted in
  List.filteri (fun i _ -> i < unique_cap) pruned

(* Canonicalize a node result: dedup, sync the ≤1-row fact between the
   interval and the uniqueness list. *)
let finish (t : t) : t =
  let t = { t with fds = dedup_fds t.fds; uniques = dedup_uniques t.uniques } in
  let t =
    if hi_le t.card.hi 1 && not (List.exists Col.Set.is_empty t.uniques) then
      { t with uniques = Col.Set.empty :: t.uniques }
    else t
  in
  if covers_key t Col.Set.empty then
    { t with card = { t.card with hi = min_hi t.card.hi (Some 1) } }
  else t

(* --- per-predicate facts ---------------------------------------------- *)

(* FDs contributed by an equality conjunct evaluated over rows with
   schema [sch]: col = col gives a mutual dependency, col = expr whose
   columns all come from outside [sch] (a literal or a correlation
   parameter) pins the column to an (invocation-)constant. *)
let pred_fds (sch : Col.Set.t) (conjs : expr list) : fd list =
  List.concat_map
    (fun c ->
      match c with
      | Cmp (Eq, ColRef a, ColRef b) when Col.Set.mem a sch && Col.Set.mem b sch ->
          [ { det = Col.Set.singleton a; dep = Col.Set.singleton b };
            { det = Col.Set.singleton b; dep = Col.Set.singleton a }
          ]
      | Cmp (Eq, ColRef a, e) | Cmp (Eq, e, ColRef a) ->
          if
            Col.Set.mem a sch
            && (not (Expr.has_subquery e))
            && Col.Set.is_empty (Col.Set.inter (Expr.cols e) sch)
          then [ { det = Col.Set.empty; dep = Col.Set.singleton a } ]
          else []
      | _ -> [])
    conjs

(* Right-side columns pinned by the join predicate: equated to a
   left-side column or to a constant.  If these cover a key of the
   right input, each left row matches at most one right row. *)
let pinned_right (lset : Col.Set.t) (rset : Col.Set.t) (conjs : expr list) :
    Col.Set.t =
  List.fold_left
    (fun acc c ->
      match c with
      | Cmp (Eq, ColRef a, ColRef b) when Col.Set.mem a rset && Col.Set.mem b lset ->
          Col.Set.add a acc
      | Cmp (Eq, ColRef b, ColRef a) when Col.Set.mem a rset && Col.Set.mem b lset ->
          Col.Set.add a acc
      | Cmp (Eq, ColRef a, e) | Cmp (Eq, e, ColRef a) ->
          if
            Col.Set.mem a rset
            && (not (Expr.has_subquery e))
            && Col.Set.is_empty (Col.Set.inter (Expr.cols e) (Col.Set.union lset rset))
          then Col.Set.add a acc
          else acc
      | _ -> acc)
    Col.Set.empty conjs

(* --- the analysis ------------------------------------------------------ *)

(* Memoization on physical node identity: consumers that analyze every
   node of a plan (cardinality clamping, the linter, EXPLAIN) would
   otherwise pay O(n^2); with a memo shared across calls the whole plan
   is analyzed once.  Sound because ops are immutable. *)
module Memo_tbl = Hashtbl.Make (struct
  type nonrec t = op

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type memo = t Memo_tbl.t

let create_memo () : memo = Memo_tbl.create 64

let rec analyze ?(env = Props.default_env) ?memo (o : op) : t =
  match memo with
  | Some m when Memo_tbl.mem m o -> Memo_tbl.find m o
  | _ ->
      let r = analyze_node ~env ?memo o in
      (match memo with Some m -> Memo_tbl.replace m o r | None -> ());
      r

and analyze_node ~env ?memo (o : op) : t =
  let analyze o = analyze ~env ?memo o in
  let verdict ?(nonnull = Col.Set.empty) p = Props.pred_verdict ~nonnull p in
  finish
    (match o with
    | TableScan { table; cols } ->
        let names = env.Props.table_key table in
        let find n = List.find_opt (fun (c : Col.t) -> c.name = n) cols in
        let key = List.filter_map find names in
        let uniques, fds =
          if names <> [] && List.length key = List.length names then
            let ks = Col.Set.of_list key in
            ([ ks ], [ { det = ks; dep = Col.Set.of_list cols } ])
          else ([], [])
        in
        let nullable = env.Props.table_nullable table in
        let nonnull =
          Col.Set.of_list
            (List.filter (fun (c : Col.t) -> not (List.mem c.name nullable)) cols)
        in
        { fds; uniques; nonnull; card = top }
    | ConstTable { cols; rows } ->
        let n = List.length rows in
        let fds =
          List.concat
            (List.mapi
               (fun i (c : Col.t) ->
                 match rows with
                 | [] -> []
                 | first :: rest ->
                     if List.for_all (fun r -> Value.compare r.(i) first.(i) = 0) rest
                     then [ { det = Col.Set.empty; dep = Col.Set.singleton c } ]
                     else [])
               cols)
        in
        let nonnull =
          Col.Set.of_list
            (List.filteri
               (fun i _ ->
                 List.for_all (fun (r : Value.t array) -> not (Value.is_null r.(i))) rows)
               cols)
        in
        { fds;
          uniques = (if n <= 1 then [ Col.Set.empty ] else []);
          nonnull;
          card = { lo = n; hi = Some n }
        }
    | SegmentHole _ ->
        (* a SegmentApply partition: nonempty by construction *)
        { fds = []; uniques = []; nonnull = Col.Set.empty; card = { lo = 1; hi = None } }
    | CseScan _ ->
        (* a CSE materialization can be refreshed between reads; claim
           nothing structural about its contents *)
        { fds = []; uniques = []; nonnull = Col.Set.empty; card = top }
    | Select (p, i) ->
        let ci = analyze i in
        let isch = Op.schema_set i in
        let conjs = conjuncts p in
        let fds = pred_fds isch conjs @ ci.fds in
        let nonnull =
          Col.Set.union ci.nonnull (Col.Set.inter (Expr.null_rejected_cols p) isch)
        in
        let card =
          match verdict ~nonnull:ci.nonnull p with
          | Props.Contradiction -> { lo = 0; hi = Some 0 }
          | Props.Tautology -> ci.card
          | Props.Unknown -> { lo = 0; hi = ci.card.hi }
        in
        let t = { fds; uniques = ci.uniques; nonnull; card } in
        (* equality on a derived key pins at most one row *)
        let pinned =
          List.fold_left
            (fun acc f -> if Col.Set.is_empty f.det then Col.Set.union acc f.dep else acc)
            Col.Set.empty fds
        in
        if covers_key t pinned then { t with card = { card with hi = min_hi card.hi (Some 1) } }
        else t
    | Project (projs, i) ->
        let ci = analyze i in
        let isch = Op.schema_set i in
        let extra =
          List.concat_map
            (fun pr ->
              match pr.expr with
              | ColRef c ->
                  [ { det = Col.Set.singleton c; dep = Col.Set.singleton pr.out };
                    { det = Col.Set.singleton pr.out; dep = Col.Set.singleton c }
                  ]
              | Const _ -> [ { det = Col.Set.empty; dep = Col.Set.singleton pr.out } ]
              | e when not (Expr.has_subquery e) ->
                  (* deterministic scalar: its input columns determine
                     the output; columns bound outside [i] (correlation
                     parameters) are invocation-constants *)
                  [ { det = Col.Set.inter (Expr.cols e) isch;
                      dep = Col.Set.singleton pr.out
                    }
                  ]
              | _ -> [])
            projs
        in
        let nonnull =
          List.fold_left
            (fun acc pr ->
              match pr.expr with
              | ColRef c when Col.Set.mem c ci.nonnull -> Col.Set.add pr.out acc
              | Const v when not (Value.is_null v) -> Col.Set.add pr.out acc
              | _ -> acc)
            Col.Set.empty projs
        in
        (* projection is 1-1 on rows: input FDs and uniqueness facts
           survive as ghost facts even when their columns leave the
           schema *)
        { fds = extra @ ci.fds; uniques = ci.uniques; nonnull; card = ci.card }
    | Join { kind; pred; left; right } ->
        join_props ~env ~apply:false kind pred (analyze left) (analyze right)
          (Op.schema_set left) (Op.schema_set right)
    | Apply { kind; pred; left; right } ->
        join_props ~env ~apply:true kind pred (analyze left) (analyze right)
          (Op.schema_set left) (Op.schema_set right)
    | SegmentApply { seg_cols; outer; inner } ->
        let co = analyze outer in
        let ci = analyze inner in
        let segset = Col.Set.of_list seg_cols in
        let others =
          Col.Set.diff (Op.schema_set outer) segset
        in
        let fds =
          (* non-segment outer columns are padded NULL on every output
             row — constant in the grouping sense *)
          (if Col.Set.is_empty others then []
           else [ { det = Col.Set.empty; dep = others } ])
          @ List.filter
              (fun f -> Col.Set.subset (Col.Set.union f.det f.dep) segset)
              co.fds
        in
        let uniques =
          List.map
            (fun kr -> Col.Set.union segset kr)
            (derived_keys ci ~schema:(Op.schema inner))
        in
        let nonnull =
          Col.Set.union (Col.Set.inter segset co.nonnull) ci.nonnull
        in
        let card =
          { lo = (if co.card.lo >= 1 then ci.card.lo else 0);
            hi = mul_hi co.card.hi ci.card.hi
          }
        in
        { fds; uniques; nonnull; card }
    | GroupBy { keys; aggs; input } | LocalGroupBy { keys; aggs; input } ->
        let ci = analyze input in
        let kset = Col.Set.of_list keys in
        let kept =
          List.filter
            (fun f -> Col.Set.subset (Col.Set.union f.det f.dep) kset)
            ci.fds
        in
        let aouts = Col.Set.of_list (List.map (fun (a : agg) -> a.out) aggs) in
        let fds =
          (if Col.Set.is_empty aouts then [] else [ { det = kset; dep = aouts } ]) @ kept
        in
        let nonnull =
          let keys_nn = Col.Set.inter kset ci.nonnull in
          let aggs_nn =
            List.filter_map
              (fun (a : agg) ->
                match a.fn with
                | CountStar | Count _ -> Some a.out
                | Sum e | Min e | Max e | Avg e -> (
                    (* groups are non-empty in vector aggregation *)
                    match e with
                    | ColRef c when Col.Set.mem c ci.nonnull -> Some a.out
                    | Const v when not (Value.is_null v) -> Some a.out
                    | _ -> None))
              aggs
          in
          Col.Set.union keys_nn (Col.Set.of_list aggs_nn)
        in
        let card =
          if covers_key ci kset then
            (* every input row is its own group: cardinality unchanged *)
            ci.card
          else
            { lo = (if ci.card.lo >= 1 then 1 else 0);
              hi = (if keys = [] then min_hi ci.card.hi (Some 1) else ci.card.hi)
            }
        in
        { fds; uniques = [ kset ]; nonnull; card }
    | ScalarAgg { aggs; _ } ->
        let aouts = Col.Set.of_list (List.map (fun (a : agg) -> a.out) aggs) in
        let nonnull =
          List.fold_left
            (fun acc (a : agg) ->
              match a.fn with CountStar | Count _ -> Col.Set.add a.out acc | _ -> acc)
            Col.Set.empty aggs
        in
        { fds = [ { det = Col.Set.empty; dep = aouts } ];
          uniques = [ Col.Set.empty ];
          nonnull;
          card = { lo = 1; hi = Some 1 }
        }
    | Max1row i ->
        let ci = analyze i in
        (* on successful execution at most one row passes; an input
           lower bound >= 2 makes the interval contradictory — the
           operator always raises *)
        { fds = ci.fds;
          uniques = Col.Set.empty :: ci.uniques;
          nonnull = ci.nonnull;
          card = { lo = ci.card.lo; hi = min_hi ci.card.hi (Some 1) }
        }
    | UnionAll (l, r) ->
        let cl = analyze l and cr = analyze r in
        (* positional: output columns are the left schema's *)
        let nonnull =
          try
            List.fold_left2
              (fun acc (lc : Col.t) (rc : Col.t) ->
                if Col.Set.mem lc cl.nonnull && Col.Set.mem rc cr.nonnull then
                  Col.Set.add lc acc
                else acc)
              Col.Set.empty (Op.schema l) (Op.schema r)
          with Invalid_argument _ -> Col.Set.empty
        in
        (* FDs and keys do not survive the union: a pair with one row
           from each branch is unconstrained *)
        { fds = [];
          uniques = [];
          nonnull;
          card = { lo = cl.card.lo + cr.card.lo; hi = add_hi cl.card.hi cr.card.hi }
        }
    | Except (l, r) ->
        let cl = analyze l and cr = analyze r in
        (* output is a sub-bag of the left input: every property of the
           left survives *)
        let lo =
          match cr.card.hi with Some h -> max 0 (cl.card.lo - h) | None -> 0
        in
        { cl with card = { lo; hi = cl.card.hi } }
    | Rownum { out; input } ->
        let ci = analyze input in
        { fds = { det = Col.Set.singleton out; dep = Op.schema_set input } :: ci.fds;
          uniques = Col.Set.singleton out :: ci.uniques;
          nonnull = Col.Set.add out ci.nonnull;
          card = ci.card
        })

and join_props ~env ~apply kind pred (cl : t) (cr : t) (lset : Col.Set.t)
    (rset : Col.Set.t) : t =
  ignore env;
  let conjs = conjuncts pred in
  let sch = Col.Set.union lset rset in
  let v = Props.pred_verdict ~nonnull:(Col.Set.union cl.nonnull cr.nonnull) pred in
  (* derived keys of the right side, computed before its FDs are
     dropped: per-invocation facts are valid inside one binding, and
     the key product is sound across bindings *)
  let rkeys_raw =
    let ks = derived_keys cr ~schema:(Col.Set.elements rset) in
    if ks = [] then List.filter (fun u -> Col.Set.subset u rset) cr.uniques else ks
  in
  let right_pinned = pinned_right lset rset conjs in
  let right_unique = covers_key cr right_pinned in
  let left_pinned = pinned_right rset lset conjs in
  let left_unique = covers_key cl left_pinned in
  let product kls krs = List.concat_map (fun kl -> List.map (Col.Set.union kl) krs) kls in
  match kind with
  | Inner ->
      let fds =
        pred_fds sch conjs @ cl.fds @ if apply then [] else cr.fds
      in
      let uniques =
        product cl.uniques rkeys_raw
        @ (if right_unique then cl.uniques else [])
        @ if left_unique && not apply then cr.uniques else []
      in
      let nonnull =
        Col.Set.union
          (Col.Set.union cl.nonnull cr.nonnull)
          (Col.Set.inter (Expr.null_rejected_cols pred) sch)
      in
      let card =
        match v with
        | Props.Contradiction -> { lo = 0; hi = Some 0 }
        | Props.Tautology | Props.Unknown ->
            let lo =
              if v = Props.Tautology then mul_lo cl.card.lo cr.card.lo else 0
            in
            let hi =
              if right_unique then cl.card.hi
              else if left_unique && not apply then cr.card.hi
              else mul_hi cl.card.hi cr.card.hi
            in
            { lo; hi }
      in
      { fds; uniques; nonnull; card }
  | LeftOuter ->
      (* padded rows NULL every right column: right FDs survive only
         when their determinant contains a non-nullable right column
         (padding then never aliases a matched row), predicate facts
         not at all *)
      let right_fds =
        if apply then []
        else
          List.filter
            (fun f -> not (Col.Set.disjoint f.det cr.nonnull))
            cr.fds
      in
      let rkeys_nn =
        List.filter (fun kr -> Col.Set.subset kr cr.nonnull) rkeys_raw
      in
      let uniques =
        product cl.uniques rkeys_nn @ if right_unique then cl.uniques else []
      in
      let card =
        { lo = cl.card.lo;
          hi =
            (if right_unique then cl.card.hi
             else
               mul_hi cl.card.hi
                 (match cr.card.hi with Some h -> Some (max 1 h) | None -> None))
        }
      in
      { fds = cl.fds @ right_fds; uniques; nonnull = cl.nonnull; card }
  | Semi ->
      let card =
        if hi_le cr.card.hi 0 || v = Props.Contradiction then { lo = 0; hi = Some 0 }
        else if v = Props.Tautology && cr.card.lo >= 1 then cl.card
        else { lo = 0; hi = cl.card.hi }
      in
      { fds = cl.fds; uniques = cl.uniques; nonnull = cl.nonnull; card }
  | Anti ->
      let card =
        if v = Props.Tautology && cr.card.lo >= 1 then { lo = 0; hi = Some 0 }
        else if hi_le cr.card.hi 0 || v = Props.Contradiction then cl.card
        else { lo = 0; hi = cl.card.hi }
      in
      { fds = cl.fds; uniques = cl.uniques; nonnull = cl.nonnull; card }

(* --- runtime cross-check ---------------------------------------------- *)

module VMap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

(* Assert the inferred properties against an actual result bag.  [rows]
   must be full-width rows in [schema] order (the executor's output
   before the final projection).  Returns human-readable violations;
   an empty list means every checkable property held. *)
let check_rows (t : t) ~(schema : Col.t list) (rows : Value.t array list) :
    string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let n = List.length rows in
  if n < t.card.lo then
    err "cardinality %d below interval %s" n (interval_to_string t.card);
  (match t.card.hi with
  | Some h when n > h ->
      err "cardinality %d above interval %s" n (interval_to_string t.card)
  | _ -> ());
  let pos = Hashtbl.create 16 in
  List.iteri (fun i (c : Col.t) -> Hashtbl.replace pos c.id i) schema;
  let idx_of (s : Col.Set.t) : int list option =
    let ids = Col.Set.elements s in
    let resolved = List.filter_map (fun (c : Col.t) -> Hashtbl.find_opt pos c.id) ids in
    if List.length resolved = List.length ids then Some resolved else None
  in
  (* nonnullability *)
  Col.Set.iter
    (fun c ->
      match Hashtbl.find_opt pos c.Col.id with
      | None -> ()
      | Some i ->
          List.iteri
            (fun rn (r : Value.t array) ->
              if Value.is_null r.(i) then
                err "column %s inferred non-null but row %d is NULL"
                  (Format.asprintf "%a" Col.pp c)
                  rn)
            rows)
    t.nonnull;
  let key_of idxs (r : Value.t array) = List.map (fun i -> r.(i)) idxs in
  (* uniqueness facts (grouping-sense: NULL ≡ NULL, matching the
     executor's hash tables) *)
  List.iter
    (fun u ->
      match idx_of u with
      | None -> ()
      | Some idxs ->
          let seen = ref VMap.empty in
          List.iter
            (fun r ->
              let k = key_of idxs r in
              match VMap.find_opt k !seen with
              | Some () ->
                  err "uniqueness violated on %s (duplicate combination)"
                    (cols_to_string u)
              | None -> seen := VMap.add k () !seen)
            rows)
    t.uniques;
  (* functional dependencies whose columns are all visible *)
  List.iter
    (fun f ->
      match (idx_of f.det, idx_of f.dep) with
      | Some dets, Some deps ->
          let seen = ref VMap.empty in
          List.iter
            (fun r ->
              let k = key_of dets r in
              let v = key_of deps r in
              match VMap.find_opt k !seen with
              | Some v' ->
                  if List.compare Value.compare v v' <> 0 then
                    err "FD %s violated" (fd_to_string f)
              | None -> seen := VMap.add k v !seen)
            rows
      | _ -> ())
    t.fds;
  List.rev !errs

(* One-line summary for EXPLAIN. *)
let summary t ~(schema : Col.t list) : string =
  let keys = derived_keys t ~schema in
  let keys_s =
    match keys with
    | [] -> "none"
    | ks -> String.concat " " (List.map cols_to_string ks)
  in
  let nn = Col.Set.inter t.nonnull (Col.set_of_list schema) in
  Printf.sprintf "card=%s keys=%s fds=%d nonnull=%s%s"
    (interval_to_string t.card) keys_s (List.length t.fds) (cols_to_string nn)
    (if contradiction t then " CONTRADICTION" else "")
