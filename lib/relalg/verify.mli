(** Plan integrity verifier: machine-checked invariants over operator
    trees, so the optimizer can reject an invalid candidate the moment
    a rule emits it instead of shipping wrong answers. *)

open Algebra

type kind =
  | Unresolved_column of Col.t
      (** a reference no child schema nor enclosing binding produces *)
  | Type_clash of Col.t * Col.t
      (** reference vs producing site disagree on type *)
  | Duplicate_column of Col.t  (** one operator outputs an id twice *)
  | Correlated_join of Col.t list
      (** a Join side references the sibling's columns — must be Apply *)
  | Illegal_apply of string
      (** flavor/payload mismatch, e.g. the left side referencing the right *)
  | Union_mismatch of string  (** branch arity or positional type disagreement *)
  | Orphan_hole  (** SegmentHole outside any SegmentApply inner tree *)
  | Hole_src_unbound of Col.t
      (** hole src column not produced by the enclosing SegmentApply's outer *)
  | Segment_col_unbound of Col.t  (** seg_col not in the outer child's schema *)
  | Malformed of string  (** shape errors: const-row arity, hole arity, ... *)
  | Schema_mismatch of string  (** root schema differs from the expected one *)
  | Unsound_rewrite of string
      (** a rule firing whose re-derived precondition does not hold *)

type violation = { kind : kind; node : op }

val kind_to_string : kind -> string

(** One-line summary, for search traces. *)
val violation_summary : violation -> string

(** Full rendering including the offending subtree, for diagnostics. *)
val violation_to_string : violation -> string

(** Structural/semantic invariant check of a whole tree.  With
    [expect_schema], additionally require the root to produce exactly
    that column list (id and type, positionally) — rules must preserve
    the plan's output schema because the executor slices result rows
    positionally.  Returns all violations found, outermost first. *)
val check : ?expect_schema:Col.t list -> op -> violation list

(** Re-derive the semantic preconditions of a named rewrite rule on the
    (before, after) pair of one firing — the paper's Section 3.1
    three-condition push test, the Section 3.2 outerjoin compensation,
    and the semijoin/filter commute conditions.  Rules without a
    registered re-check (and shapes a rule does not emit) pass
    vacuously. *)
val check_rewrite : env:Props.env -> rule:string -> before:op -> after:op -> violation list

(** Replay outerjoin→join simplifications: walk the structurally
    identical before/after trees in lockstep, recompute the
    null-rejection context from scratch, and demand every
    LeftOuter→Inner flip be justified by a rejected column of the
    nullable side. *)
val check_oj_simplification : before:op -> after:op -> violation list
