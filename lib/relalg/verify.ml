(* Plan integrity verifier.

   Rewrite rules compose freely inside the cost-based search, which
   means one subtly wrong firing (a leaked correlation, a violated key
   condition, a bogus null-rejection claim) silently corrupts results
   far downstream.  This module machine-checks the invariants every
   well-formed [Algebra.op] tree must satisfy, so the optimizer can
   reject an invalid candidate the moment a rule emits it instead of
   shipping wrong answers:

   - every column reference resolves in the referencing operator's
     child schemas (or in an enclosing Apply/SegmentApply binding), and
     agrees on the type the producing site declared;
   - no operator outputs the same column id twice, and the two sides
     of a Join/Apply/SegmentApply have disjoint schemas;
   - free outer references appear only under the right side of an
     Apply (a Join evaluates its sides independently — correlation
     across a Join is the bug the Apply operator exists to express);
   - UnionAll/Except branches agree positionally in arity and type
     (the executor concatenates rows positionally);
   - SegmentHole leaves occur only inside a SegmentApply's inner tree,
     mirror outer columns positionally, and segmenting columns come
     from the outer child;
   - the root produces exactly the schema the caller expects (rules
     must preserve the plan's output; the executor slices rows
     positionally).

   Beyond per-tree structure, [check_rewrite] re-derives the semantic
   preconditions of the GroupBy-reordering rules (the paper's
   Section 3.1 three-condition test and the Section 3.2 outerjoin
   compensation) on the actual before/after pair of a rule firing, and
   [check_oj_simplification] replays outerjoin→join simplifications
   against an independently recomputed null-rejection context. *)

open Algebra

type kind =
  | Unresolved_column of Col.t
      (** a reference no child schema nor enclosing binding produces *)
  | Type_clash of Col.t * Col.t  (** reference vs producing site disagree on type *)
  | Duplicate_column of Col.t  (** one operator outputs an id twice *)
  | Correlated_join of Col.t list
      (** a Join side references the sibling's columns — must be Apply *)
  | Illegal_apply of string
      (** flavor/payload mismatch, e.g. the left side referencing the right *)
  | Union_mismatch of string  (** branch arity or positional type disagreement *)
  | Orphan_hole  (** SegmentHole outside any SegmentApply inner tree *)
  | Hole_src_unbound of Col.t
      (** hole src column not produced by the enclosing SegmentApply's outer *)
  | Segment_col_unbound of Col.t  (** seg_col not in the outer child's schema *)
  | Malformed of string  (** shape errors: const-row arity, hole arity, ... *)
  | Schema_mismatch of string  (** root schema differs from the expected one *)
  | Unsound_rewrite of string
      (** a rule firing whose re-derived precondition does not hold *)

type violation = { kind : kind; node : op }

let cols_str cols = String.concat ", " (List.map (fun (c : Col.t) -> Format.asprintf "%a" Col.pp c) cols)

let kind_to_string = function
  | Unresolved_column c -> Printf.sprintf "unresolved column %s" (cols_str [ c ])
  | Type_clash (r, p) ->
      Printf.sprintf "column %s referenced as %s but produced as %s" (cols_str [ r ])
        (Value.ty_name r.Col.ty) (Value.ty_name p.Col.ty)
  | Duplicate_column c -> Printf.sprintf "duplicate output column %s" (cols_str [ c ])
  | Correlated_join cols ->
      Printf.sprintf "join side references sibling columns [%s] (correlation requires Apply)"
        (cols_str cols)
  | Illegal_apply m -> "illegal apply: " ^ m
  | Union_mismatch m -> "union/except branch mismatch: " ^ m
  | Orphan_hole -> "SegmentHole outside a SegmentApply inner tree"
  | Hole_src_unbound c ->
      Printf.sprintf "SegmentHole src %s not produced by the enclosing segment outer"
        (cols_str [ c ])
  | Segment_col_unbound c ->
      Printf.sprintf "segmenting column %s not in the outer child's schema" (cols_str [ c ])
  | Malformed m -> "malformed operator: " ^ m
  | Schema_mismatch m -> "root schema mismatch: " ^ m
  | Unsound_rewrite m -> "unsound rewrite: " ^ m

(* One-line summary (for traces) and full rendering with the offending
   subtree (for diagnostics). *)
let violation_summary (v : violation) : string =
  Printf.sprintf "%s at %s" (kind_to_string v.kind) (Pp.label v.node)

let violation_to_string (v : violation) : string =
  let tree = Pp.to_string v.node in
  let indented =
    String.concat "\n"
      (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' (String.trim tree)))
  in
  Printf.sprintf "%s\n  offending subtree:\n%s" (kind_to_string v.kind) indented

(* Mixed int/float positions are fine across a union: values compare
   numerically.  Everything else must match exactly. *)
let ty_compatible a b =
  a = b
  || match (a, b) with
     | Value.TInt, Value.TFloat | Value.TFloat, Value.TInt -> true
     | _ -> false

(* ------------------------------------------------------------------ *)
(* The structural walk.                                               *)
(* ------------------------------------------------------------------ *)

let to_map cols =
  List.fold_left (fun m (c : Col.t) -> Col.IdMap.add c.Col.id c m) Col.IdMap.empty cols

let merge a b = Col.IdMap.union (fun _ _ y -> Some y) a b

let check ?expect_schema (root : op) : violation list =
  let viols = ref [] in
  let add node kind = viols := { kind; node } :: !viols in
  (* [bound]: columns visible from enclosing operators (the left side of
     an Apply for its right subtree, a SegmentApply's outer for its
     inner, plus everything visible to a subquery expression's host).
     [holes]: columns a SegmentHole's [src] may legally mirror — empty
     outside SegmentApply inner trees. *)
  let rec walk ~(bound : Col.t Col.IdMap.t) ~(holes : Col.t Col.IdMap.t) (o : op) : unit =
    let dup_check cols =
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (c : Col.t) ->
          if Hashtbl.mem seen c.Col.id then add o (Duplicate_column c)
          else Hashtbl.add seen c.Col.id ())
        cols
    in
    let disjoint_check ls rs =
      let l = to_map ls in
      List.iter
        (fun (c : Col.t) -> if Col.IdMap.mem c.Col.id l then add o (Duplicate_column c))
        rs
    in
    (* check every column reference of [e] against [visible] ∪ [bound];
       relational children of the expression (binder-output subqueries)
       are verified recursively with the host's visible columns added to
       their outer bindings *)
    let check_expr visible e =
      Expr.fold_cols
        ~on_op:(fun () q -> walk ~bound:(merge bound visible) ~holes q)
        (fun () (c : Col.t) ->
          let produced =
            match Col.IdMap.find_opt c.Col.id visible with
            | Some _ as p -> p
            | None -> Col.IdMap.find_opt c.Col.id bound
          in
          match produced with
          | Some p -> if p.Col.ty <> c.Col.ty then add o (Type_clash (c, p))
          | None -> add o (Unresolved_column c))
        () e
    in
    let check_key_cols visible (keys : Col.t list) =
      List.iter
        (fun (k : Col.t) ->
          match Col.IdMap.find_opt k.Col.id visible with
          | Some p -> if p.Col.ty <> k.Col.ty then add o (Type_clash (k, p))
          | None -> add o (Unresolved_column k))
        keys
    in
    match o with
    | TableScan { cols; _ } | CseScan { cols; _ } -> dup_check cols
    | ConstTable { cols; rows } ->
        dup_check cols;
        let n = List.length cols in
        List.iter
          (fun r ->
            if Array.length r <> n then
              add o
                (Malformed
                   (Printf.sprintf "const row has %d values for %d columns" (Array.length r) n)))
          rows
    | SegmentHole { cols; src } ->
        dup_check cols;
        if Col.IdMap.is_empty holes then add o Orphan_hole
        else if List.length cols <> List.length src then
          add o
            (Malformed
               (Printf.sprintf "segment hole has %d cols but %d src cols" (List.length cols)
                  (List.length src)))
        else begin
          List.iter2
            (fun (c : Col.t) (s : Col.t) ->
              if c.Col.ty <> s.Col.ty then
                add o
                  (Malformed
                     (Printf.sprintf "segment hole col %s mirrors %s of different type"
                        (cols_str [ c ]) (cols_str [ s ]))))
            cols src;
          List.iter
            (fun (s : Col.t) ->
              if not (Col.IdMap.mem s.Col.id holes) then add o (Hole_src_unbound s))
            src
        end
    | Select (p, i) ->
        check_expr (to_map (Op.schema i)) p;
        walk ~bound ~holes i
    | Project (ps, i) ->
        dup_check (List.map (fun p -> p.out) ps);
        let vis = to_map (Op.schema i) in
        List.iter (fun p -> check_expr vis p.expr) ps;
        walk ~bound ~holes i
    | Join { pred; left; right; _ } ->
        let ls = Op.schema left and rs = Op.schema right in
        disjoint_check ls rs;
        (* a Join evaluates both sides independently: neither side may
           reference the other's columns (that is what Apply is for) *)
        let leak_r = Col.Set.inter (Op.free_cols right) (Col.Set.of_list ls) in
        if not (Col.Set.is_empty leak_r) then
          add o (Correlated_join (Col.Set.elements leak_r));
        let leak_l = Col.Set.inter (Op.free_cols left) (Col.Set.of_list rs) in
        if not (Col.Set.is_empty leak_l) then
          add o (Correlated_join (Col.Set.elements leak_l));
        check_expr (to_map (ls @ rs)) pred;
        (* the leak is already reported at this node: suppress cascaded
           unresolved-column reports in the subtrees *)
        walk ~bound:(merge bound (to_map rs)) ~holes left;
        walk ~bound:(merge bound (to_map ls)) ~holes right
    | Apply { pred; left; right; _ } ->
        let ls = Op.schema left and rs = Op.schema right in
        disjoint_check ls rs;
        (* the binding runs left → right only; a left side referencing
           the right's columns has no evaluation order *)
        let leak_l = Col.Set.inter (Op.free_cols left) (Col.Set.of_list rs) in
        if not (Col.Set.is_empty leak_l) then
          add o
            (Illegal_apply
               (Printf.sprintf "left side references right-side columns [%s]"
                  (cols_str (Col.Set.elements leak_l))));
        check_expr (to_map (ls @ rs)) pred;
        walk ~bound:(merge bound (to_map rs)) ~holes left;
        walk ~bound:(merge bound (to_map ls)) ~holes right
    | SegmentApply { seg_cols; outer; inner } ->
        let os = Op.schema outer and is_ = Op.schema inner in
        disjoint_check os is_;
        let omap = to_map os in
        List.iter
          (fun (c : Col.t) ->
            if not (Col.IdMap.mem c.Col.id omap) then add o (Segment_col_unbound c))
          seg_cols;
        if not (Op.exists_op (function SegmentHole _ -> true | _ -> false) inner) then
          add o (Malformed "segment-apply inner contains no SegmentHole");
        walk ~bound ~holes outer;
        walk ~bound:(merge bound omap) ~holes:(merge holes omap) inner
    | GroupBy { keys; aggs; input } | LocalGroupBy { keys; aggs; input } ->
        dup_check (keys @ List.map (fun (a : agg) -> a.out) aggs);
        let vis = to_map (Op.schema input) in
        check_key_cols vis keys;
        List.iter
          (fun (a : agg) -> Option.iter (check_expr vis) (agg_input_expr a.fn))
          aggs;
        walk ~bound ~holes input
    | ScalarAgg { aggs; input } ->
        dup_check (List.map (fun (a : agg) -> a.out) aggs);
        let vis = to_map (Op.schema input) in
        List.iter
          (fun (a : agg) -> Option.iter (check_expr vis) (agg_input_expr a.fn))
          aggs;
        walk ~bound ~holes input
    | UnionAll (l, r) | Except (l, r) ->
        let ls = Op.schema l and rs = Op.schema r in
        if List.length ls <> List.length rs then
          add o
            (Union_mismatch
               (Printf.sprintf "branch arity %d vs %d" (List.length ls) (List.length rs)))
        else
          List.iteri
            (fun i ((a : Col.t), (b : Col.t)) ->
              if not (ty_compatible a.Col.ty b.Col.ty) then
                add o
                  (Union_mismatch
                     (Printf.sprintf "position %d: %s vs %s" i
                        (Value.ty_name a.Col.ty) (Value.ty_name b.Col.ty))))
            (List.combine ls rs);
        walk ~bound ~holes l;
        walk ~bound ~holes r
    | Max1row i -> walk ~bound ~holes i
    | Rownum { out; input } ->
        if out.Col.ty <> Value.TInt then
          add o (Malformed "rownum output column is not an integer");
        let imap = to_map (Op.schema input) in
        if Col.IdMap.mem out.Col.id imap then add o (Duplicate_column out);
        walk ~bound ~holes input
  in
  walk ~bound:Col.IdMap.empty ~holes:Col.IdMap.empty root;
  (match expect_schema with
  | None -> ()
  | Some expected ->
      let got = Op.schema root in
      if List.length got <> List.length expected then
        add root
          (Schema_mismatch
             (Printf.sprintf "expected %d columns [%s], got %d [%s]" (List.length expected)
                (cols_str expected) (List.length got) (cols_str got)))
      else
        List.iter2
          (fun (e : Col.t) (g : Col.t) ->
            if e.Col.id <> g.Col.id || e.Col.ty <> g.Col.ty then
              add root
                (Schema_mismatch
                   (Printf.sprintf "expected %s, got %s" (cols_str [ e ]) (cols_str [ g ]))))
          expected got);
  List.rev !viols

(* ------------------------------------------------------------------ *)
(* Rule-specific semantic re-checks.                                  *)
(*                                                                    *)
(* The structural walk above cannot tell a legal GroupBy-below-join   *)
(* plan from an unsound one: both are well-formed trees.  For the     *)
(* reordering rules we therefore re-derive the paper's preconditions  *)
(* on the actual (before, after) pair of each firing, independently   *)
(* of the rule's own condition code.  Shapes the rules do not emit    *)
(* pass vacuously — the structural walk still applies to them.        *)
(* ------------------------------------------------------------------ *)

let agg_inputs_within (aggs : agg list) (allowed : Col.Set.t) =
  List.for_all
    (fun (a : agg) ->
      match agg_input_expr a.fn with
      | None -> true
      | Some e -> Col.Set.subset (Expr.cols e) allowed)
    aggs

let pred_free_of_agg_outputs pred (aggs : agg list) =
  let outs = Col.Set.of_list (List.map (fun (a : agg) -> a.out) aggs) in
  Col.Set.is_empty (Col.Set.inter (Expr.cols pred) outs)

(* The Section 3.1 push test, re-derived: original grouping [keys] and
   join [pred] over sides [s] (kept) and [r] (aggregated early with
   pushed keys [pushed_keys]).
   1. every conjunct's r-columns are pushed grouping columns, and every
      pushed column beyond the original grouping columns is equated by
      some conjunct with an s-side expression (the relaxation of the
      formula A ∪ columns(p) − columns(S));
   2. the original grouping columns restricted to S cover a key of S;
   3. aggregate inputs use only columns of R. *)
let recheck_push_conditions ~env node keys (aggs : agg list) pred s r pushed_keys =
  let bad = ref [] in
  let fail m = bad := { kind = Unsound_rewrite m; node } :: !bad in
  let a = Col.Set.of_list keys in
  let rcols = Op.schema_set r and scols = Op.schema_set s in
  let pk = Col.Set.of_list pushed_keys in
  List.iter
    (fun c ->
      let rc = Col.Set.inter (Expr.cols c) rcols in
      if not (Col.Set.subset rc pk) then
        fail
          (Printf.sprintf
             "push condition 1: predicate conjunct %s uses r-columns [%s] outside the pushed grouping columns"
             (Expr.to_string c)
             (cols_str (Col.Set.elements (Col.Set.diff rc pk)))))
    (conjuncts pred);
  Col.Set.iter
    (fun (k : Col.t) ->
      if not (Col.Set.mem k a) then begin
        let equated =
          List.exists
            (fun c ->
              (* two guarded arms, not an or-pattern: when both sides are
                 ColRefs the or-pattern would commit to its first
                 alternative and never try binding [x] to the other side *)
              match c with
              | Cmp (Eq, ColRef x, e) when Col.equal x k ->
                  Col.Set.subset (Expr.cols e) scols
              | Cmp (Eq, e, ColRef x) when Col.equal x k ->
                  Col.Set.subset (Expr.cols e) scols
              | _ -> false)
            (conjuncts pred)
        in
        if not equated then
          fail
            (Printf.sprintf
               "push condition 1: pushed grouping column %s is neither an original grouping column nor equated with the kept side"
               (cols_str [ k ]))
      end)
    pk;
  (let scover = Col.Set.inter a scols in
   if
     not
       (Props.covers_key ~env s scover
       || Fd.covers_key (Fd.analyze ~env s) scover)
   then
     fail "push condition 2: grouping columns do not cover a key of the kept side");
  if not (agg_inputs_within aggs rcols) then
    fail "push condition 3: an aggregate input uses columns outside the aggregated side";
  List.rev !bad

(* The pushed GroupBy carries the original agg records (same output
   ids), which distinguishes it from a GroupBy that was already part of
   the joined subtree. *)
let same_agg_outs (a : agg list) (b : agg list) =
  List.length a = List.length b
  && List.for_all2 (fun (x : agg) (y : agg) -> Col.equal x.out y.out) a b

let check_rewrite ~(env : Props.env) ~(rule : string) ~(before : op) ~(after : op) :
    violation list =
  match rule with
  | "groupby-push-below-join" -> (
      match (before, after) with
      | ( GroupBy { keys; aggs; input = Join { kind = Inner; pred; left = s; right = r } },
          Project (_, Join { kind = Inner; left = jl; right = jr; _ }) ) -> (
          (* recover which input the GroupBy was pushed onto *)
          match (jl, jr) with
          | _, GroupBy g' when same_agg_outs aggs g'.aggs ->
              recheck_push_conditions ~env after keys aggs pred s r g'.keys
          | GroupBy g', _ when same_agg_outs aggs g'.aggs ->
              recheck_push_conditions ~env after keys aggs pred r s g'.keys
          | _ -> [])
      | _ -> [])
  | "groupby-push-below-outerjoin" -> (
      match (before, after) with
      | ( GroupBy { keys; aggs; input = Join { kind = LeftOuter; pred; left = s; right = r } },
          Project (projs, Join { kind = LeftOuter; right = GroupBy g'; _ }) ) ->
          let base = recheck_push_conditions ~env after keys aggs pred s r g'.keys in
          (* Section 3.2: aggregates whose value on the padded row is
             not NULL (counts) need a compensating CASE guarded by a
             non-nullable pushed grouping column *)
          let nn = Props.nonnullable ~env r in
          let compensation_ok (orig : agg) =
            match orig.fn with
            | Sum _ | Min _ | Max _ | Avg _ -> true
            | CountStar | Count _ -> (
                match List.find_opt (fun p -> Col.equal p.out orig.out) projs with
                | Some { expr = Case ([ (Not (IsNull (ColRef m)), _) ], Some _); _ } ->
                    List.exists (Col.equal m) g'.keys && Col.Set.mem m nn
                | _ -> false)
          in
          let comp =
            List.filter_map
              (fun (orig : agg) ->
                if compensation_ok orig then None
                else
                  Some
                    { kind =
                        Unsound_rewrite
                          (Printf.sprintf
                             "outerjoin push: count aggregate %s lacks a padded-row compensation guarded by a non-nullable pushed column"
                             (cols_str [ orig.out ]));
                      node = after
                    })
              aggs
          in
          base @ comp
      | _ -> [])
  | "groupby-pull-above-join" -> (
      match (before, after) with
      | ( Join { kind = Inner; pred; left; right },
          Project (_, GroupBy { keys = keys'; aggs; _ }) ) ->
          (* mirror the rule's own match precedence: the right-side
             GroupBy variant fires first *)
          let g_keys, s =
            match (left, right) with
            | s, GroupBy g -> (g.keys, s)
            | GroupBy g, s -> (g.keys, s)
            | _ -> ([], left)
          in
          let bad = ref [] in
          if not (pred_free_of_agg_outputs pred aggs) then
            bad :=
              { kind = Unsound_rewrite "pull: join predicate uses aggregate outputs";
                node = after
              }
              :: !bad;
          if not (Props.has_key ~env s) then
            bad :=
              { kind = Unsound_rewrite "pull: the non-aggregated side exposes no key";
                node = after
              }
              :: !bad;
          let expected = Col.Set.union (Col.Set.of_list g_keys) (Op.schema_set s) in
          if not (Col.Set.equal (Col.Set.of_list keys') expected) then
            bad :=
              { kind =
                  Unsound_rewrite
                    "pull: pulled grouping columns differ from original keys ∪ joined side";
                node = after
              }
              :: !bad;
          List.rev !bad
      | _ -> [])
  | "semijoin-below-groupby" | "semijoin-above-groupby" -> (
      let payload =
        match (rule, before) with
        | ( "semijoin-below-groupby",
            Join { kind = Semi | Anti; pred; left = GroupBy { keys; aggs; _ }; right = s } )
          ->
            Some (pred, keys, aggs, s)
        | ( "semijoin-above-groupby",
            GroupBy { keys; aggs; input = Join { kind = Semi | Anti; pred; right = s; _ } } )
          ->
            Some (pred, keys, aggs, s)
        | _ -> None
      in
      match payload with
      | None -> []
      | Some (pred, keys, aggs, s) ->
          let bad = ref [] in
          if not (pred_free_of_agg_outputs pred aggs) then
            bad :=
              { kind = Unsound_rewrite "semijoin reorder: predicate uses aggregate outputs";
                node = after
              }
              :: !bad;
          if
            not
              (Col.Set.subset
                 (Col.Set.diff (Expr.cols pred) (Op.schema_set s))
                 (Col.Set.of_list keys))
          then
            bad :=
              { kind =
                  Unsound_rewrite
                    "semijoin reorder: predicate uses non-grouping columns of the aggregated side";
                node = after
              }
              :: !bad;
          List.rev !bad)
  | "filter-below-groupby" | "filter-above-groupby" -> (
      let payload =
        match before with
        | Select (p, GroupBy { keys; _ }) -> Some (p, keys)
        | GroupBy { keys; input = Select (p, _); _ } -> Some (p, keys)
        | _ -> None
      in
      match payload with
      | Some (p, keys)
        when not (Col.Set.subset (Expr.cols p) (Col.Set.of_list keys)) ->
          [ { kind =
                Unsound_rewrite "filter/groupby commute: filter uses non-grouping columns";
              node = after
            }
          ]
      | _ -> [])
  (* --- property-proven rewrites: re-derive each FD/interval fact ----- *)
  | "groupby-eliminate-key" -> (
      match before with
      | GroupBy { keys; input; _ } ->
          if
            keys <> []
            && Fd.covers_key (Fd.analyze ~env input)
                 (Col.Set.of_list keys)
          then []
          else
            [ { kind =
                  Unsound_rewrite
                    "groupby elimination: grouping columns do not derive a key of the input";
                node = after
              }
            ]
      | _ -> [])
  | "max1row-elide" -> (
      match before with
      | Max1row i ->
          if Fd.max_one (Fd.analyze ~env i) then []
          else
            [ { kind =
                  Unsound_rewrite
                    "max1row elision: input not proven to yield at most one row";
                node = after
              }
            ]
      | _ -> [])
  | "semijoin-to-inner" -> (
      match before with
      | Join { kind = Semi; pred; left; right } ->
          let pinned =
            Fd.pinned_right (Op.schema_set left) (Op.schema_set right)
              (conjuncts pred)
          in
          if Fd.covers_key (Fd.analyze ~env right) pinned then []
          else
            [ { kind =
                  Unsound_rewrite
                    "semijoin to inner: predicate does not pin a derived key of the right side";
                node = after
              }
            ]
      | _ -> [])
  | "outerjoin-prune" -> (
      match before with
      | Project (projs, Join { kind = LeftOuter; pred; left; right }) ->
          let rset = Op.schema_set right in
          let clean =
            List.for_all
              (fun p ->
                (not (Expr.has_subquery p.expr))
                && Col.Set.disjoint (Expr.cols p.expr) rset)
              projs
          in
          let pinned =
            Fd.pinned_right (Op.schema_set left) rset (conjuncts pred)
          in
          if clean && Fd.covers_key (Fd.analyze ~env right) pinned then []
          else
            [ { kind =
                  Unsound_rewrite
                    "outerjoin prune: projection references the right side or the predicate does not pin a right key";
                node = after
              }
            ]
      | _ -> [])
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Outerjoin simplification replay.                                   *)
(*                                                                    *)
(* [Oj_simplify] only flips Join/Apply kinds LeftOuter→Inner, so the  *)
(* before/after trees are structurally identical.  Walk them in       *)
(* lockstep, recomputing the null-rejection context from scratch, and *)
(* demand every flip be justified: some context-rejected column must  *)
(* belong to the nullable (right/inner) side.                        *)
(* ------------------------------------------------------------------ *)

let check_oj_simplification ~(before : op) ~(after : op) : violation list =
  let viols = ref [] in
  let restrict rejected o = Col.Set.inter rejected (Op.schema_set o) in
  let rec go (rejected : Col.Set.t) (b : op) (a : op) : unit =
    match (b, a) with
    | Join jb, Join ja when jb.kind = LeftOuter && ja.kind = Inner ->
        if Col.Set.is_empty (Col.Set.inter rejected (Op.schema_set ja.right)) then
          viols :=
            { kind =
                Unsound_rewrite
                  "outerjoin simplified to join with no null-rejecting filter on the inner side";
              node = a
            }
            :: !viols;
        descend rejected b a
    | Apply ab, Apply aa when ab.kind = LeftOuter && aa.kind = Inner ->
        if Col.Set.is_empty (Col.Set.inter rejected (Op.schema_set aa.right)) then
          viols :=
            { kind =
                Unsound_rewrite
                  "outer apply simplified to cross apply with no null-rejecting filter on the inner side";
              node = a
            }
            :: !viols;
        descend rejected b a
    | _ -> descend rejected b a
  (* context propagation mirrors the nullability reasoning of
     Galindo-Legaria & Rosenthal, recomputed here on the AFTER tree so
     a pass bug in context propagation does not vouch for itself *)
  and descend rejected b a =
    let bc = Op.children b and ac = Op.children a in
    if List.length bc <> List.length ac then
      viols :=
        { kind = Unsound_rewrite "outerjoin simplification changed the tree shape"; node = a }
        :: !viols
    else
      let child_ctx =
        match a with
        | Select (p, i) -> [ restrict (Col.Set.union rejected (Expr.null_rejected_cols p)) i ]
        | Project (projs, i) ->
            let below =
              List.fold_left
                (fun acc p ->
                  if Col.Set.mem p.out rejected then
                    Col.Set.union acc (Expr.strict_cols p.expr)
                  else acc)
                Col.Set.empty projs
            in
            [ restrict below i ]
        | Join { kind; pred; left; right } ->
            let pr = Expr.null_rejected_cols pred in
            let lrej, rrej =
              match kind with
              | Inner -> (Col.Set.union rejected pr, Col.Set.union rejected pr)
              | LeftOuter -> (Col.Set.union rejected pr, rejected)
              | Semi -> (Col.Set.union rejected pr, pr)
              | Anti -> (rejected, Col.Set.empty)
            in
            [ restrict lrej left; restrict rrej right ]
        | Apply { kind; pred; left; _ } ->
            let pr = Expr.null_rejected_cols pred in
            let lrej =
              match kind with
              | Inner | Semi | LeftOuter -> Col.Set.union rejected pr
              | Anti -> rejected
            in
            [ restrict lrej left; Col.Set.empty ]
        | GroupBy { keys; aggs; input } ->
            let from_keys = Col.Set.inter rejected (Col.Set.of_list keys) in
            let per_agg =
              List.map
                (fun (ag : agg) ->
                  match ag.fn with
                  | CountStar -> Col.Set.empty
                  | Count e | Sum e | Min e | Max e | Avg e ->
                      if Expr.strict e then Expr.strict_cols e else Col.Set.empty)
                aggs
            in
            let candidate =
              match per_agg with
              | [] -> Col.Set.empty
              | s :: rest -> List.fold_left Col.Set.inter s rest
            in
            let null_yielding_rejected =
              List.exists
                (fun (ag : agg) ->
                  Col.Set.mem ag.out rejected
                  && match ag.fn with Sum _ | Min _ | Max _ | Avg _ -> true | _ -> false)
                aggs
            in
            let from_aggs = if null_yielding_rejected then candidate else Col.Set.empty in
            [ restrict (Col.Set.union from_keys from_aggs) input ]
        | Max1row i -> [ restrict rejected i ]
        | Rownum { input; _ } -> [ restrict rejected input ]
        | SegmentApply { outer; _ } -> [ restrict rejected outer; Col.Set.empty ]
        | _ -> List.map (fun _ -> Col.Set.empty) ac
      in
      List.iter2 (fun ctx (bc, ac) -> go ctx bc ac)
        child_ctx
        (List.combine bc ac)
  in
  go Col.Set.empty before after;
  List.rev !viols
