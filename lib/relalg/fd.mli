(** Symbolic plan-property engine.

    Bottom-up inference of functional dependencies (with transitive
    closure), derived candidate keys, non-nullable columns, and
    per-node cardinality intervals over an operator tree.  All facts
    are sound under-approximations in the grouping sense of equality
    (NULL ≡ NULL), the notion the executor's hash tables use — so
    every inferred property can be asserted against an actual result
    bag with {!check_rows}. *)

open Algebra

(** Cardinality interval; [hi = None] means unbounded. *)
type interval = { lo : int; hi : int option }

(** A functional dependency [det -> dep] over output rows.  An empty
    determinant encodes columns constant across the output. *)
type fd = { det : Col.Set.t; dep : Col.Set.t }

type t = {
  fds : fd list;  (** dependencies, possibly through ghost columns *)
  uniques : Col.Set.t list;
      (** strict uniqueness facts; [Col.Set.empty] = at most one row *)
  nonnull : Col.Set.t;  (** columns never NULL in the output *)
  card : interval;
}

(** Memoization table on physical node identity; pass one [memo] to
    repeated {!analyze} calls over the same plan to make whole-plan
    analysis linear instead of quadratic. *)
type memo

val create_memo : unit -> memo

(** Infer the properties of an operator's output.  [env] supplies
    base-table keys and nullability (see {!Props.env}). *)
val analyze : ?env:Props.env -> ?memo:memo -> op -> t

(** FD closure of a column set. *)
val closure : t -> Col.Set.t -> Col.Set.t

(** Is [cols] a derived key — does its FD closure cover some
    uniqueness fact?  Strictly stronger than {!Props.covers_key}. *)
val covers_key : t -> Col.Set.t -> bool

(** The uniqueness fact covered by [cols] plus the FD chain proving
    it, for rendering diagnostics. *)
val cover_chain : t -> Col.Set.t -> (Col.Set.t * fd list) option

(** Provably at most one output row. *)
val max_one : t -> bool

(** [lo > hi]: the plan cannot execute successfully. *)
val contradiction : t -> bool

(** Minimal derived candidate keys restricted to [schema], smallest
    first (display; capped). *)
val derived_keys : t -> schema:Col.t list -> Col.Set.t list

(** Assert the inferred properties against an actual result bag of
    full-width rows in [schema] order.  Returns human-readable
    violations; empty = all checkable properties held. *)
val check_rows : t -> schema:Col.t list -> Value.t array list -> string list

(** [pinned_right lset rset conjs]: the columns of [rset] pinned by an
    equality conjunct — equated to a column of [lset] or to an
    expression free of both sides (a constant).  If these cover a key
    of the right input, each left row matches at most one right
    row. *)
val pinned_right : Col.Set.t -> Col.Set.t -> expr list -> Col.Set.t

(** One-line rendering for EXPLAIN. *)
val summary : t -> schema:Col.t list -> string

val interval_to_string : interval -> string
val cols_to_string : Col.Set.t -> string
val fd_to_string : fd -> string
