(* Plan rendering, used by EXPLAIN and by tests that assert tree shapes
   (the paper's Figures 2, 3, 5, 6, 7). *)

open Algebra

let agg_to_string (a : agg) =
  let body =
    match agg_input_expr a.fn with
    | None -> agg_name a.fn
    | Some e -> Printf.sprintf "%s(%s)" (agg_name a.fn) (Expr.to_string e)
  in
  Format.asprintf "%a:=%s" Col.pp a.out body

let cols_to_string cols = String.concat "," (List.map (Format.asprintf "%a" Col.pp) cols)

let label (o : op) : string =
  match o with
  | TableScan { table; _ } -> Printf.sprintf "Scan(%s)" table
  | ConstTable { rows; _ } -> Printf.sprintf "Const(%d rows)" (List.length rows)
  | CseScan { id; _ } -> Printf.sprintf "CseScan(%s)" id
  | SegmentHole _ -> "S"
  | Select (p, _) -> Printf.sprintf "Select[%s]" (Expr.to_string p)
  | Project (ps, _) ->
      let item p =
        match p.expr with
        | ColRef c when Col.equal c p.out -> Format.asprintf "%a" Col.pp c
        | e -> Format.asprintf "%a:=%s" Col.pp p.out (Expr.to_string e)
      in
      Printf.sprintf "Project[%s]" (String.concat "," (List.map item ps))
  | Join { kind; pred; _ } ->
      Printf.sprintf "Join(%s)[%s]" (join_kind_name kind) (Expr.to_string pred)
  | Apply { kind; pred; _ } ->
      if is_true_const pred then Printf.sprintf "Apply(%s)" (join_kind_name kind)
      else Printf.sprintf "Apply(%s)[%s]" (join_kind_name kind) (Expr.to_string pred)
  | SegmentApply { seg_cols; _ } ->
      Printf.sprintf "SegmentApply[%s]" (cols_to_string seg_cols)
  | GroupBy { keys; aggs; _ } ->
      Printf.sprintf "GroupBy[%s][%s]" (cols_to_string keys)
        (String.concat "," (List.map agg_to_string aggs))
  | LocalGroupBy { keys; aggs; _ } ->
      Printf.sprintf "LocalGroupBy[%s][%s]" (cols_to_string keys)
        (String.concat "," (List.map agg_to_string aggs))
  | ScalarAgg { aggs; _ } ->
      Printf.sprintf "ScalarAgg[%s]" (String.concat "," (List.map agg_to_string aggs))
  | UnionAll _ -> "UnionAll"
  | Except _ -> "Except"
  | Max1row _ -> "Max1row"
  | Rownum { out; _ } -> Format.asprintf "Rownum[%a]" Col.pp out

let to_string (o : op) : string =
  let buf = Buffer.create 256 in
  let rec go indent o =
    Buffer.add_string buf indent;
    Buffer.add_string buf (label o);
    Buffer.add_char buf '\n';
    List.iter (go (indent ^ "  ")) (Op.children o)
  in
  go "" o;
  Buffer.contents buf

(* A shape-only rendering with no column ids, for tests that should be
   robust against id numbering. *)
let shape (o : op) : string =
  let rec go o =
    let head =
      match o with
      | TableScan { table; _ } -> "scan:" ^ table
      | ConstTable _ -> "const"
      | CseScan { id; _ } -> "csescan:" ^ id
      | SegmentHole _ -> "hole"
      | Select _ -> "select"
      | Project _ -> "project"
      | Join { kind; _ } -> "join:" ^ join_kind_name kind
      | Apply { kind; _ } -> "apply:" ^ join_kind_name kind
      | SegmentApply _ -> "segmentapply"
      | GroupBy _ -> "groupby"
      | LocalGroupBy _ -> "localgroupby"
      | ScalarAgg _ -> "scalaragg"
      | UnionAll _ -> "unionall"
      | Except _ -> "except"
      | Max1row _ -> "max1row"
      | Rownum _ -> "rownum"
    in
    match Op.children o with
    | [] -> head
    | cs -> Printf.sprintf "%s(%s)" head (String.concat "," (List.map go cs))
  in
  go o
