(** Derived logical properties — sound under-approximations.

    These drive the paper's preconditions: identities (7)-(9) need keys,
    identity (9) and the Section 3.2 compensation need non-nullability,
    Max1row elision needs cardinality bounds, and column pruning needs
    functional dependencies. *)

open Algebra

type key = Col.Set.t

(** Base-table keys and nullability come from the environment
    (catalog).  [table_nullable] lists the columns that may contain
    NULL; every other base column is treated as NOT NULL. *)
type env = {
  table_key : string -> string list;
  table_nullable : string -> string list;
}

val default_env : env

(** Candidate keys of the operator's output. *)
val keys : ?env:env -> op -> key list

val has_key : ?env:env -> op -> bool

(** Is [cols] a superset of some key of the output? *)
val covers_key : ?env:env -> op -> Col.Set.t -> bool

(** Functional-dependency closure of a column set within the tree:
    base-table keys determine all columns of their scan, grouping
    columns determine aggregate outputs, pass-through projections
    propagate. *)
val fd_closure : ?env:env -> op -> Col.Set.t -> Col.Set.t

(** Provably at most one output row per invocation (the paper's
    "compiler can detect this from information about keys", used to
    elide Max1row). *)
val max_one_row : ?env:env -> op -> bool

(** Output columns guaranteed non-NULL.  [env] supplies catalog NOT
    NULL declarations for base tables; without it every base column is
    assumed NOT NULL. *)
val nonnullable : ?env:env -> op -> Col.Set.t

(** Column equivalence classes (size ≥ 2): columns pairwise equal on
    every output row in the grouping sense (NULL ≡ NULL), sourced from
    inner-join/select equality conjuncts and pass-through projections.
    The grouping notion matches {!covers_key}, so a class may soundly
    extend a grouping set for key-coverage tests. *)
val equiv_classes : op -> Col.Set.t list

(** Extend a column set with every column equivalent to a member. *)
val equate : Col.Set.t list -> Col.Set.t -> Col.Set.t

(** Columns bound to a single non-NULL constant on every output row. *)
val const_bindings : op -> Value.t Col.IdMap.t

(** Verdict of a filter predicate: [Contradiction] = provably never
    satisfied (false or NULL on every row), [Tautology] = provably true
    on every row.  Sound; [Unknown] is the default. *)
type verdict = Contradiction | Tautology | Unknown

(** Conjunct-level analysis with constant folding, three-valued logic,
    IS NULL against provably non-null columns, and numeric interval
    bounds ([x > 5 AND x < 3]).  [consts] supplies column values proven
    constant by the input (see {!const_bindings}). *)
val pred_verdict : ?nonnull:Col.Set.t -> ?consts:Value.t Col.IdMap.t -> expr -> verdict
