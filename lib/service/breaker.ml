(* Per-session circuit breaker.

   Generalizes [Engine.query_resilient]'s per-call degradation to
   per-session: after [failure_threshold] consecutive failures of the
   primary (optimized/vectorized) path, the breaker opens and the
   session is pinned to the degraded path (row engine / correlated
   fallback) — the service stops paying for doomed primary attempts.
   After [cooldown_s] the breaker half-opens: exactly one trial
   request is allowed back onto the primary path; its success closes
   the breaker, its failure re-opens it for another cooldown.

   The clock is injectable so tests drive the state machine
   deterministically.  All transitions are mutex-guarded: a session's
   requests may run on several worker domains at once. *)

type config = {
  failure_threshold : int;  (** consecutive primary-path failures to open *)
  cooldown_s : float;  (** open duration before a half-open trial *)
}

let default_config = { failure_threshold = 3; cooldown_s = 1.0 }

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  config : config;
  now : unit -> float;
  lock : Mutex.t;
  mutable state_ : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable opens : int;  (** times the breaker tripped open, cumulative *)
}

let create ?(now = Unix.gettimeofday) (config : config) : t =
  { config;
    now;
    lock = Mutex.create ();
    state_ = Closed;
    consecutive_failures = 0;
    opened_at = neg_infinity;
    opens = 0;
  }

let state (t : t) : state = Mutex.protect t.lock (fun () -> t.state_)
let opens (t : t) : int = Mutex.protect t.lock (fun () -> t.opens)

(* May the caller try the primary path?  An open breaker past its
   cooldown transitions to half-open and admits the caller as the
   single trial; while half-open, everyone else is refused until the
   trial resolves via [record_success]/[record_failure]. *)
let allow (t : t) : bool =
  Mutex.protect t.lock (fun () ->
      match t.state_ with
      | Closed -> true
      | Half_open -> false
      | Open ->
          if t.now () -. t.opened_at >= t.config.cooldown_s then begin
            t.state_ <- Half_open;
            true
          end
          else false)

(* The single half-open trial ended without a verdict on primary-path
   health — deadline ran out, the SQL itself was bad, the request was
   shed at dispatch, or the worker crashed.  Return to [Open] without
   counting an open and without refreshing [opened_at]: the cooldown
   has already elapsed, so the next request immediately becomes the
   new trial instead of the session being pinned half-open forever. *)
let abort_trial (t : t) : unit =
  Mutex.protect t.lock (fun () ->
      match t.state_ with
      | Half_open -> t.state_ <- Open
      | Open | Closed -> ())

(* Indistinguishable from a freshly created breaker, so safe to evict
   from a per-session table and recreate on demand. *)
let is_pristine (t : t) : bool =
  Mutex.protect t.lock (fun () -> t.state_ = Closed && t.consecutive_failures = 0)

let record_success (t : t) : unit =
  Mutex.protect t.lock (fun () ->
      t.consecutive_failures <- 0;
      match t.state_ with
      | Half_open | Open -> t.state_ <- Closed
      | Closed -> ())

(* Returns [true] when this failure tripped the breaker open. *)
let record_failure (t : t) : bool =
  Mutex.protect t.lock (fun () ->
      match t.state_ with
      | Half_open ->
          t.state_ <- Open;
          t.opened_at <- t.now ();
          t.opens <- t.opens + 1;
          true
      | Open -> false
      | Closed ->
          t.consecutive_failures <- t.consecutive_failures + 1;
          if t.consecutive_failures >= t.config.failure_threshold then begin
            t.state_ <- Open;
            t.opened_at <- t.now ();
            t.opens <- t.opens + 1;
            true
          end
          else false)
