(** Concurrent query service: sessions over an OCaml-domains worker
    pool with bounded admission, per-request deadlines, retry with
    jittered backoff, per-session circuit breaking, and crash-only
    workers.  Every submission ends in a correct result, a typed
    recoverable error, or an explicit shed/timeout — never a wrong
    answer, never a wedge. *)

module Backoff = Backoff
module Breaker = Breaker
module Stats = Service_stats
module Rng = Exec.Faults.Rng

(** {2 Configuration} *)

type config = {
  domains : int;  (** worker-domain count *)
  max_queue : int;  (** admission bound on queued requests *)
  max_inflight_cost : float option;
      (** optimizer-cost capacity: a planned request is shed when the
          sum of executing plan costs plus its own would exceed this *)
  default_deadline_s : float option;
      (** per-request deadline unless the request overrides it *)
  retry : Backoff.policy;  (** transient-failure retry schedule *)
  breaker : Breaker.config;  (** per-session circuit breaker *)
  poison_threshold : int;  (** worker kills before a request is poisoned *)
  exec_mode : Engine.exec_mode;  (** primary-path engine *)
  opt_config : Optimizer.Config.t;  (** primary-path optimizer level *)
  fallback_config : Optimizer.Config.t;  (** degraded-path optimizer level *)
  seed : int;  (** seeds backoff jitter and per-request fault streams *)
  enable_cache : bool;
      (** switch the engine's caching tier on at creation
          ({!Engine.enable_cache}): every worker then prepares through
          the shared plan cache, and {!query_many} batches share
          materialized common subexpressions *)
}

(** 4 domains, queue bound 128, no cost gate, no default deadline,
    {!Backoff.default} retries, vector engine on the full optimizer
    with correlated/row fallback, caching tier off. *)
val default_config : config

(** {2 Requests and replies} *)

type request = {
  sql : string;
  session : string;
  deadline_s : float option;  (** overrides [default_deadline_s] *)
  budget : Exec.Budget.t option;  (** extra row/apply/timeout caps *)
  fault : Exec.Faults.spec option;
      (** chaos harness: injected executor faults (re-seeded per
          request, so concurrent queries draw independent streams) *)
  chaos : (unit -> unit) option;
      (** chaos harness: runs inside the worker before planning; an
          escaped exception exercises the crash-only worker path *)
}

val request :
  ?session:string ->
  ?deadline_s:float ->
  ?budget:Exec.Budget.t ->
  ?fault:Exec.Faults.spec ->
  ?chaos:(unit -> unit) ->
  string ->
  request

type error =
  | Overloaded of { queue_depth : int; retry_after_s : float }
      (** shed by admission control (queue bound or cost gate) *)
  | Deadline of { stage : [ `Queued | `Running ]; overdue_s : float }
      (** the admission deadline passed — before a worker picked the
          request up ([`Queued]) or cooperatively mid-query ([`Running]) *)
  | Poisoned of { kills : int; last_error : string }
      (** the request crashed [kills] workers and is quarantined *)
  | Failed of Engine.Errors.t  (** typed query error on every attempted path *)
  | Shut_down  (** submitted after {!shutdown} *)

val error_to_string : error -> string

type reply = {
  outcome : (Engine.execution, error) result;
  served_by : string;  (** "config/engine" that produced the result, or "-" *)
  degraded : bool;  (** served by the fallback path *)
  retries : int;  (** transient-failure retries spent *)
  queued_s : float;  (** admission to first worker pickup *)
  total_s : float;  (** admission to reply *)
}

(** {2 Lifecycle} *)

type t

val create : ?config:config -> Storage.Database.t -> t

(** Wrap an existing engine (e.g. one opened durably elsewhere). *)
val create_with : ?config:config -> Engine.t -> t

(** Recovery-then-serve: open the durable store at [dir] (newest valid
    snapshot + WAL replay + index rebuild) before any worker spawns,
    so the first admitted query already sees exactly the committed
    prefix.
    @raise Engine.Errors.Error with phase [Storage] when the on-disk
    state cannot be restored. *)
val create_durable : ?config:config -> dir:string -> Catalog.t -> t

(** Stop admission, drain the queue (every admitted request still gets
    its reply) and join every worker domain. *)
val shutdown : t -> unit

(** {2 Submitting work} *)

type ticket

(** Admission-controlled enqueue; returns immediately.  [Error] means
    the request never entered the queue ([Overloaded] / [Shut_down]). *)
val submit : t -> request -> (ticket, error) result

(** Block until the ticket's request finishes. *)
val await : t -> ticket -> reply

(** [submit] + [await]; admission rejections come back as a reply with
    the error outcome. *)
val run : t -> request -> reply

(** Submit every request before awaiting any, preserving order. *)
val run_many : t -> request list -> reply list

(** Multi-query optimization on the shared engine: the batch is
    planned jointly (shared subplans materialized once, statements
    rewritten to scan them — see {!Engine.query_many}).  Runs on the
    caller's thread; without {!config.enable_cache} it degenerates to
    sequential prepare + execute. *)
val query_many : t -> string list -> Engine.batch

(** {2 Journaled mutations}

    Mutations bypass the query queue and serialize on the store's own
    lock.  On a durable service each call is journaled (write + fsync)
    before it applies in memory and before it returns — an
    acknowledged mutation survives a crash. *)

val load_table : t -> string -> Relalg.Value.t array list -> unit
val append_row : t -> string -> Relalg.Value.t array -> unit

(** Write a snapshot of the current state and rotate the WAL; returns
    the new epoch.
    @raise Engine.Errors.Error with phase [Storage] on in-memory
    services. *)
val snapshot_now : t -> int

(** {2 Introspection} *)

(** Snapshot of the service counters; {!Stats.snapshot.cache} is
    filled from the engine when the caching tier is on. *)
val stats : t -> Stats.snapshot

val engine : t -> Engine.t

(** Current breaker state for a session (a fresh session is [Closed]). *)
val breaker_state : t -> string -> Breaker.state

(** Worker domains currently registered (respawns keep this at the
    configured size). *)
val live_workers : t -> int
