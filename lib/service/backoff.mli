(** Jittered exponential retry backoff.

    Delays grow geometrically per retry, are clamped to a hard
    maximum, and have a configurable fraction randomized from an
    explicit splitmix64 stream — bounded, collision-avoiding, and
    replayable from a seed. *)

type policy = {
  max_retries : int;  (** retry attempts after the first try; 0 disables retry *)
  base_delay_s : float;  (** envelope for the first retry *)
  multiplier : float;  (** envelope growth per retry *)
  max_delay_s : float;  (** hard clamp on any single delay *)
  jitter : float;  (** fraction of the envelope randomized, in [0, 1] *)
}

val default : policy

(** Deterministic upper bound for the [attempt]-th retry (0-based). *)
val envelope : policy -> attempt:int -> float

(** The delay to sleep before the [attempt]-th retry: always within
    [[(1 - jitter) * envelope attempt, envelope attempt]], hence never
    above [max_delay_s]. *)
val delay : policy -> Exec.Faults.Rng.t -> attempt:int -> float
