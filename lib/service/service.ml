(* Concurrent query service: sessions over an OCaml-domains worker
   pool, built so that under overload, faults and concurrency it never
   returns a wrong answer and never wedges — every submission ends in
   a correct result, a typed recoverable error, or an explicit
   shed/timeout.

   The moving parts (DESIGN.md §12):

   - Admission control: a bounded queue.  When the depth reaches
     [max_queue] the submission is rejected *immediately* with
     [Overloaded] and a retry-after hint, instead of queueing
     unboundedly; when [max_inflight_cost] is set, a request whose
     optimizer-estimated plan cost does not fit the remaining cost
     capacity is shed at dispatch, after planning — the cost model is
     the same one the optimizer search minimizes.

   - Deadlines: measured from *admission*, carried into the executor
     as [Budget.deadline_at], so queueing delay, retries and backoff
     sleeps all consume the caller's patience and cancellation stays
     cooperative through both the row and vector engines.

   - Fair scheduling: one FIFO per session, sessions served
     round-robin, one request per turn — a heavy session cannot starve
     the rest, it can only queue behind itself.

   - Degradation ladder (per request): primary path = configured
     optimizer level on the configured engine; on transient failures
     (injected faults, per-attempt timeouts) the same path is retried
     under jittered exponential backoff; on plan-shaped failures
     (runtime errors, row/apply budget trips, normalize/plan/verifier
     rejections) the request degrades to the fallback path (correlated
     plan on the row engine) — [Engine.query_resilient], but with
     retries and a deadline.

   - Circuit breaker (per session): repeated primary-path failures
     open the breaker and pin the session to the fallback path; after
     a cooldown one half-open trial decides whether to close it.
     Per-call degradation generalized to per-session.

   - Crash-only workers: an exception outside the typed vocabulary
     kills only its worker domain; the pool spawns a replacement, the
     victim request is re-queued and retried elsewhere, and a request
     that kills [poison_threshold] workers is poisoned — completed
     with its stored error instead of being retried forever. *)

module Backoff = Backoff
module Breaker = Breaker
module Stats = Service_stats
module Rng = Exec.Faults.Rng

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type config = {
  domains : int;  (** worker-domain count *)
  max_queue : int;  (** admission bound on queued requests *)
  max_inflight_cost : float option;
      (** optimizer-cost capacity: a planned request is shed when the
          sum of executing plan costs plus its own would exceed this *)
  default_deadline_s : float option;  (** per-request deadline unless overridden *)
  retry : Backoff.policy;  (** transient-failure retry schedule *)
  breaker : Breaker.config;  (** per-session circuit breaker *)
  poison_threshold : int;  (** worker kills before a request is poisoned *)
  exec_mode : Engine.exec_mode;  (** primary-path engine *)
  opt_config : Optimizer.Config.t;  (** primary-path optimizer level *)
  fallback_config : Optimizer.Config.t;  (** degraded-path optimizer level *)
  seed : int;  (** seeds backoff jitter and per-request fault streams *)
  enable_cache : bool;
      (** switch the engine's caching tier on at creation: every worker
          then prepares through the shared plan cache, and batch
          submissions share materialized common subexpressions *)
}

let default_config =
  { domains = 4;
    max_queue = 128;
    max_inflight_cost = None;
    default_deadline_s = None;
    retry = Backoff.default;
    breaker = Breaker.default_config;
    poison_threshold = 2;
    exec_mode = `Vector;
    opt_config = Optimizer.Config.full;
    fallback_config = Optimizer.Config.correlated_only;
    seed = 0;
    enable_cache = false;
  }

(* ------------------------------------------------------------------ *)
(* Requests and replies                                               *)
(* ------------------------------------------------------------------ *)

type request = {
  sql : string;
  session : string;
  deadline_s : float option;  (** overrides [default_deadline_s] *)
  budget : Exec.Budget.t option;  (** extra row/apply/timeout caps *)
  fault : Exec.Faults.spec option;  (** chaos harness: injected executor faults *)
  chaos : (unit -> unit) option;
      (** chaos harness: runs inside the worker before planning; an
          escaped exception exercises the crash-only worker path *)
}

let request ?(session = "default") ?deadline_s ?budget ?fault ?chaos sql =
  { sql; session; deadline_s; budget; fault; chaos }

type error =
  | Overloaded of { queue_depth : int; retry_after_s : float }
      (** shed by admission control; retry after the hint *)
  | Deadline of { stage : [ `Queued | `Running ]; overdue_s : float }
      (** the admission deadline passed — before a worker picked the
          request up ([`Queued]) or cooperatively mid-query ([`Running]) *)
  | Poisoned of { kills : int; last_error : string }
      (** the request killed [kills] workers and is quarantined *)
  | Failed of Engine.Errors.t  (** typed query error on every attempted path *)
  | Shut_down  (** submitted after [shutdown] *)

let error_to_string = function
  | Overloaded { queue_depth; retry_after_s } ->
      Printf.sprintf "overloaded: queue depth %d, retry after %.3fs" queue_depth
        retry_after_s
  | Deadline { stage; overdue_s } ->
      Printf.sprintf "deadline exceeded %s (%.3fs overdue)"
        (match stage with `Queued -> "while queued" | `Running -> "while running")
        overdue_s
  | Poisoned { kills; last_error } ->
      Printf.sprintf "poisoned after killing %d workers (last: %s)" kills last_error
  | Failed e -> Engine.Errors.to_string e
  | Shut_down -> "service is shut down"

type reply = {
  outcome : (Engine.execution, error) result;
  served_by : string;  (** "config/engine" that produced the result, or "-" *)
  degraded : bool;  (** served by the fallback path *)
  retries : int;  (** transient-failure retries spent *)
  queued_s : float;  (** admission to first worker pickup *)
  total_s : float;  (** admission to reply *)
}

(* ------------------------------------------------------------------ *)
(* Internal job state                                                 *)
(* ------------------------------------------------------------------ *)

type job = {
  id : int;
  req : request;
  admitted_at : float;
  deadline_at : float option;
  jlock : Mutex.t;  (** guards [reply]; the waiter blocks on [jcond] *)
  jcond : Condition.t;
  mutable reply : reply option;
  mutable picked_up_at : float;  (** when a worker dequeued it (for queued_s) *)
  mutable kills : int;  (** workers this request has crashed *)
  mutable last_kill : string;
}

type ticket = job

type t = {
  cfg : config;
  eng : Engine.t;
  lock : Mutex.t;  (** guards all scheduler state below *)
  work : Condition.t;  (** signalled on enqueue and on shutdown *)
  session_queues : (string, job Queue.t) Hashtbl.t;
  rr : string Queue.t;  (** round-robin rotation of sessions with pending work *)
  mutable queued : int;
  mutable inflight_cost : float;  (** sum of plan costs currently executing *)
  mutable closed : bool;
  mutable next_id : int;
  mutable ema_latency_s : float;  (** recent-latency estimate for retry-after hints *)
  mutable workers : unit Domain.t list;  (** every domain spawned, for joining *)
  mutable live : int;  (** workers currently running (spawned - died - retired) *)
  breakers : (string, Breaker.t) Hashtbl.t;
  worker_seed : int Atomic.t;  (** per-worker jitter streams stay distinct *)
  stats : Stats.t;
}

let stats (t : t) : Stats.snapshot =
  { (Stats.snapshot t.stats) with Stats.cache = Engine.cache_stats t.eng }

let engine (t : t) : Engine.t = t.eng

(* Batch entry point: multi-query optimization on the shared engine
   (common subexpressions picked jointly, see [Engine.query_many]).
   Runs on the caller's thread — batches are a planning-level feature,
   not a scheduling one, so they do not consume worker slots. *)
let query_many (t : t) (sqls : string list) : Engine.batch = Engine.query_many t.eng sqls

(* Per-session breakers are bounded: past this many tracked sessions,
   creating another first sweeps out every pristine breaker (closed,
   no consecutive failures — indistinguishable from a fresh one), so a
   client churning through session names cannot grow the table for the
   service lifetime.  Only sessions carrying real breaker signal
   survive the sweep. *)
let max_tracked_breakers = 1024

let breaker_for (t : t) (session : string) : Breaker.t =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.breakers session with
      | Some b -> b
      | None ->
          if Hashtbl.length t.breakers >= max_tracked_breakers then begin
            let pristine =
              Hashtbl.fold
                (fun s b acc -> if Breaker.is_pristine b then s :: acc else acc)
                t.breakers []
            in
            List.iter (Hashtbl.remove t.breakers) pristine
          end;
          let b = Breaker.create t.cfg.breaker in
          Hashtbl.replace t.breakers session b;
          b)

let breaker_state (t : t) (session : string) : Breaker.state =
  Breaker.state (breaker_for t session)

(* Caller holds [t.lock].  The hint scales the recent-latency estimate
   by the queue backlog per worker: roughly when a freed slot should
   reach work submitted after the backlog drains. *)
let retry_after (t : t) : float =
  let per_worker = (t.queued / max 1 t.cfg.domains) + 1 in
  Float.max 0.001 (t.ema_latency_s *. float_of_int per_worker)

(* ------------------------------------------------------------------ *)
(* Completion                                                         *)
(* ------------------------------------------------------------------ *)

let finish (t : t) (job : job) (reply : reply) : unit =
  let cls : Stats.finish_class =
    match reply.outcome with
    | Ok _ when reply.degraded -> Stats.Degraded
    | Ok _ -> Stats.Completed
    | Error (Deadline { stage = `Queued; _ }) -> Stats.Deadline_queued
    | Error (Deadline { stage = `Running; _ }) -> Stats.Deadline_running
    | Error _ -> Stats.Failed
  in
  Stats.note_finished t.stats ~session:job.req.session ~latency_s:reply.total_s cls;
  Mutex.protect t.lock (fun () ->
      (* retry-after hints track the latency of recently finished work *)
      t.ema_latency_s <- (0.9 *. t.ema_latency_s) +. (0.1 *. reply.total_s));
  Mutex.protect job.jlock (fun () ->
      job.reply <- Some reply;
      Condition.broadcast job.jcond)

(* ------------------------------------------------------------------ *)
(* Admission                                                          *)
(* ------------------------------------------------------------------ *)

(* Caller holds [t.lock]. *)
let enqueue_locked (t : t) (job : job) : unit =
  let q =
    match Hashtbl.find_opt t.session_queues job.req.session with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.session_queues job.req.session q;
        q
  in
  if Queue.is_empty q then Queue.push job.req.session t.rr;
  Queue.push job q;
  t.queued <- t.queued + 1;
  Condition.signal t.work

let submit (t : t) (req : request) : (ticket, error) result =
  Stats.note_submitted t.stats;
  let now = Unix.gettimeofday () in
  let verdict =
    Mutex.protect t.lock (fun () ->
        if t.closed then Error Shut_down
        else if t.queued >= t.cfg.max_queue then begin
          Error (Overloaded { queue_depth = t.queued; retry_after_s = retry_after t })
        end
        else begin
          let deadline_s =
            match req.deadline_s with Some _ as d -> d | None -> t.cfg.default_deadline_s
          in
          let job =
            { id = t.next_id;
              req;
              admitted_at = now;
              deadline_at = Option.map (fun d -> now +. d) deadline_s;
              jlock = Mutex.create ();
              jcond = Condition.create ();
              reply = None;
              picked_up_at = now;
              kills = 0;
              last_kill = "";
            }
          in
          t.next_id <- t.next_id + 1;
          enqueue_locked t job;
          Ok (job, t.queued)
        end)
  in
  match verdict with
  | Ok (job, depth) ->
      Stats.note_admitted t.stats ~depth;
      Ok job
  | Error (Overloaded _ as e) ->
      Stats.note_shed t.stats;
      Error e
  | Error e -> Error e

let await (_t : t) (job : ticket) : reply =
  Mutex.protect job.jlock (fun () ->
      let rec wait () =
        match job.reply with
        | Some r -> r
        | None ->
            Condition.wait job.jcond job.jlock;
            wait ()
      in
      wait ())

let rejected_reply (e : error) : reply =
  { outcome = Error e; served_by = "-"; degraded = false; retries = 0; queued_s = 0.; total_s = 0. }

let run (t : t) (req : request) : reply =
  match submit t req with Ok ticket -> await t ticket | Error e -> rejected_reply e

let run_many (t : t) (reqs : request list) : reply list =
  let tickets = List.map (fun r -> submit t r) reqs in
  List.map (function Ok tk -> await t tk | Error e -> rejected_reply e) tickets

(* ------------------------------------------------------------------ *)
(* Worker side: dequeue, classify, degrade, retry                     *)
(* ------------------------------------------------------------------ *)

(* Blocks until a job is available; [None] = closed and fully drained
   (the drain matters: every admitted request must get a reply). *)
let next_job (t : t) : job option =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.rr) then begin
          let s = Queue.pop t.rr in
          let q = Hashtbl.find t.session_queues s in
          let job = Queue.pop q in
          (* the session goes to the back of the rotation: fairness;
             a drained session's queue is dropped (recreated on its
             next submission) so session-name churn cannot grow the
             table for the service lifetime *)
          if not (Queue.is_empty q) then Queue.push s t.rr
          else Hashtbl.remove t.session_queues s;
          t.queued <- t.queued - 1;
          Some (job, t.queued)
        end
        else if t.closed then None
        else begin
          Condition.wait t.work t.lock;
          wait ()
        end
      in
      match wait () with
      | None -> None
      | Some (job, depth) ->
          job.picked_up_at <- Unix.gettimeofday ();
          Stats.note_dequeued t.stats ~depth;
          Some job)

(* Shed at dispatch by the cost gate (see [with_cost_slot]). *)
exception Shed of { queue_depth : int; retry_after_s : float }

(* Reserve cost capacity for an execution, or shed.  The reservation
   is released however the execution ends. *)
let with_cost_slot (t : t) (plan_cost : float) (f : unit -> 'a) : 'a =
  match t.cfg.max_inflight_cost with
  | None -> f ()
  | Some cap ->
      Mutex.protect t.lock (fun () ->
          if t.inflight_cost +. plan_cost > cap then
            raise (Shed { queue_depth = t.queued; retry_after_s = retry_after t })
          else t.inflight_cost <- t.inflight_cost +. plan_cost);
      Fun.protect
        ~finally:(fun () ->
          Mutex.protect t.lock (fun () -> t.inflight_cost <- t.inflight_cost -. plan_cost))
        f

(* How one attempt died, for the retry/degrade decision. *)
type attempt_failure =
  | Transient of Engine.Errors.t
      (** same path may succeed on retry: injected fault, per-attempt
          timeout under contention *)
  | Plan_shaped of Engine.Errors.t
      (** deterministic for this plan shape: runtime error, row/apply
          budget, normalize/plan/verifier rejection — degrade paths *)
  | Fatal of Engine.Errors.t
      (** property of the SQL text (lex/parse/bind): no path helps *)
  | Deadline_hit of float  (** overdue seconds; the request is out of time *)

let classify (sql : string) (ex : exn) : attempt_failure =
  match ex with
  | Exec.Budget.Exceeded (Exec.Budget.Deadline, p) -> Deadline_hit p.Exec.Budget.overdue_s
  | _ -> (
      match Engine.Errors.of_exn ~sql ex with
      | None -> raise ex (* outside the typed vocabulary: crash-only worker path *)
      | Some err -> (
          match ex with
          | Exec.Budget.Exceeded (Exec.Budget.Timeout, _) -> Transient err
          | Exec.Budget.Exceeded ((Exec.Budget.Rows | Exec.Budget.Applies), _) ->
              Plan_shaped err
          | Exec.Faults.Injected _ -> Transient err
          | _ -> (
              match err.Engine.Errors.phase with
              | Engine.Errors.Lex | Engine.Errors.Parse | Engine.Errors.Bind -> Fatal err
              (* a corrupt store is wrong however the query is planned:
                 retrying or degrading would re-read the same bad state *)
              | Engine.Errors.Storage -> Fatal err
              | Engine.Errors.Fault -> Transient err
              | _ -> Plan_shaped err)))

(* Run one path (config + engine) to completion: prepare once, then
   execute with transient-failure retries under jittered backoff.
   [retries] is shared across paths so the policy bounds the whole
   request, and every backoff sleep is charged against the deadline. *)
let run_path (t : t) (job : job) (rng : Rng.t) ~(retries : int ref)
    ~(config : Optimizer.Config.t) ~(mode : Engine.exec_mode)
    ~(faults : Exec.Faults.t option) : (Engine.execution, attempt_failure) result =
  let sql = job.req.sql in
  let budget =
    let b = Option.value job.req.budget ~default:Exec.Budget.unlimited in
    let b =
      match job.deadline_at with Some d -> Exec.Budget.with_deadline b d | None -> b
    in
    if Exec.Budget.is_unlimited b then None else Some b
  in
  let deadline_left () =
    match job.deadline_at with
    | None -> infinity
    | Some d -> d -. Unix.gettimeofday ()
  in
  match Engine.prepare ~config t.eng sql with
  | exception ex -> Error (classify sql ex)
  | p ->
      with_cost_slot t p.Engine.plan_cost (fun () ->
          let rec exec_attempt () =
            match Engine.execute ?budget ?faults ~mode t.eng p with
            | e -> Ok e
            | exception ex -> (
                match classify sql ex with
                | Transient err ->
                    if !retries >= t.cfg.retry.max_retries then Error (Transient err)
                    else begin
                      let d = Backoff.delay t.cfg.retry rng ~attempt:!retries in
                      if deadline_left () <= d then
                        (* sleeping would outlive the deadline: give up
                           now, reporting how overdue the request would
                           be when the sleep ended *)
                        Error (Deadline_hit (d -. deadline_left ()))
                      else begin
                        incr retries;
                        Stats.note_retry t.stats;
                        Unix.sleepf d;
                        exec_attempt ()
                      end
                    end
                | f -> Error f)
          in
          exec_attempt ())

let path_name (config : Optimizer.Config.t) (mode : Engine.exec_mode) : string =
  Optimizer.Config.name_of config ^ "/" ^ Engine.exec_mode_name mode

(* The full degradation ladder for one request. *)
let process (t : t) (job : job) (rng : Rng.t) : reply =
  let now = Unix.gettimeofday () in
  let queued_s = job.picked_up_at -. job.admitted_at in
  let reply ?(served_by = "-") ?(degraded = false) ?(retries = 0) outcome =
    { outcome;
      served_by;
      degraded;
      retries;
      queued_s;
      total_s = Unix.gettimeofday () -. job.admitted_at;
    }
  in
  match job.deadline_at with
  | Some d when now >= d ->
      (* expired in the queue: shed-vs-timeout stays distinguishable *)
      reply (Error (Deadline { stage = `Queued; overdue_s = now -. d }))
  | _ -> (
      (* chaos hook: escapes here exercise the crash-only worker path *)
      (match job.req.chaos with Some f -> f () | None -> ());
      (* Per-request fault state (never shared across queries or
         domains): one armed plan covering all attempts, so an
         nth-style fault dies once and the retry sails through — the
         transient-fault story the retry policy exists for. *)
      let faults =
        Option.map
          (fun spec -> Exec.Faults.create (Exec.Faults.derive spec ~salt:job.id))
          job.req.fault
      in
      let breaker = breaker_for t job.req.session in
      let retries = ref 0 in
      let fallback ~(primary_error : Engine.Errors.t option) =
        let r =
          run_path t job rng ~retries ~config:t.cfg.fallback_config ~mode:`Row ~faults
        in
        let served_by = path_name t.cfg.fallback_config `Row in
        match r with
        | Ok e ->
            reply ~served_by ~degraded:true ~retries:!retries (Ok e)
        | Error (Deadline_hit overdue_s) ->
            reply ~retries:!retries (Error (Deadline { stage = `Running; overdue_s }))
        | Error (Transient err | Plan_shaped err | Fatal err) ->
            ignore primary_error;
            reply ~retries:!retries (Error (Failed err))
      in
      if Breaker.allow breaker then begin
        (* Every allowed attempt must record exactly one breaker
           outcome, or a half-open trial that ends without a verdict
           (deadline, fatal SQL, cost-gate shed, worker crash) pins
           the session half-open forever: [recorded] tracks whether a
           success/failure was fed in, and the protector aborts the
           trial on every other way out — including the [Shed] and
           crash exceptions that escape this whole match. *)
        let recorded = ref false in
        let record_success () =
          recorded := true;
          Breaker.record_success breaker
        in
        let record_failure () =
          recorded := true;
          if Breaker.record_failure breaker then Stats.note_breaker_trip t.stats
        in
        Fun.protect
          ~finally:(fun () -> if not !recorded then Breaker.abort_trial breaker)
          (fun () ->
            let primary_config = t.cfg.opt_config
            and primary_mode = t.cfg.exec_mode in
            match
              run_path t job rng ~retries ~config:primary_config ~mode:primary_mode
                ~faults
            with
            | Ok e ->
                record_success ();
                reply ~served_by:(path_name primary_config primary_mode)
                  ~retries:!retries (Ok e)
            | Error (Deadline_hit overdue_s) ->
                reply ~retries:!retries
                  (Error (Deadline { stage = `Running; overdue_s }))
            | Error (Fatal err) -> reply ~retries:!retries (Error (Failed err))
            | Error (Transient err | Plan_shaped err) ->
                (* primary path is sick: feed the breaker, degrade *)
                record_failure ();
                if t.cfg.fallback_config = primary_config && primary_mode = `Row then
                  reply ~retries:!retries (Error (Failed err))
                else fallback ~primary_error:(Some err))
      end
      else
        (* breaker open: the session is pinned to the degraded path *)
        fallback ~primary_error:None)

(* ------------------------------------------------------------------ *)
(* Crash-only workers                                                 *)
(* ------------------------------------------------------------------ *)

let rec spawn_worker (t : t) : unit =
  let seed = t.cfg.seed + (1000003 * Atomic.fetch_and_add t.worker_seed 1) in
  let d = Domain.spawn (fun () -> worker_loop t (Rng.create seed)) in
  Mutex.protect t.lock (fun () ->
      t.workers <- d :: t.workers;
      t.live <- t.live + 1)

and worker_loop (t : t) (rng : Rng.t) : unit =
  match next_job t with
  | None ->
      (* closed and drained: the domain retires *)
      Mutex.protect t.lock (fun () -> t.live <- t.live - 1)
  | Some job -> (
      match process t job rng with
      | r ->
          finish t job r;
          worker_loop t rng
      | exception Shed { queue_depth; retry_after_s } ->
          (* already counted admitted, so this is a dispatch-time shed:
             a separate counter keeps submitted = admitted + shed *)
          Stats.note_shed_dispatch t.stats;
          finish t job
            { outcome = Error (Overloaded { queue_depth; retry_after_s });
              served_by = "-";
              degraded = false;
              retries = 0;
              queued_s = job.picked_up_at -. job.admitted_at;
              total_s = Unix.gettimeofday () -. job.admitted_at;
            };
          worker_loop t rng
      | exception ex -> crash t job ex)

(* An exception escaped the typed vocabulary: this worker is presumed
   corrupt and dies.  The victim request is re-queued to run elsewhere
   — unless it has now killed [poison_threshold] workers, in which
   case it is poisoned: completed with its stored error, never retried
   again.  A replacement domain is spawned before this one returns, so
   the pool never shrinks.

   Ordering is load-bearing.  The victim is re-enqueued BEFORE the
   replacement spawns: the replacement's first [next_job] then always
   observes the job (the queue drain runs even when closed), so a
   crash during shutdown cannot land the job in a drained queue after
   every worker — replacement included — has already retired, which
   would block its [await] forever.  On the poison path the order
   flips: respawn before delivering the reply, so once the caller
   observes the outcome the pool is back at size. *)
and crash (t : t) (job : job) (ex : exn) : unit =
  let msg = Printexc.to_string ex in
  Mutex.protect t.lock (fun () -> t.live <- t.live - 1);
  Stats.note_worker_kill t.stats;
  job.kills <- job.kills + 1;
  job.last_kill <- msg;
  if job.kills >= t.cfg.poison_threshold then begin
    Stats.note_worker_respawn t.stats;
    spawn_worker t;
    Stats.note_poisoned t.stats;
    finish t job
      { outcome = Error (Poisoned { kills = job.kills; last_error = job.last_kill });
        served_by = "-";
        degraded = false;
        retries = 0;
        queued_s = job.picked_up_at -. job.admitted_at;
        total_s = Unix.gettimeofday () -. job.admitted_at;
      }
  end
  else begin
    let depth = Mutex.protect t.lock (fun () -> enqueue_locked t job; t.queued) in
    Stats.note_requeued t.stats ~depth;
    Stats.note_worker_respawn t.stats;
    spawn_worker t
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let create_with ?(config = default_config) (eng : Engine.t) : t =
  if config.enable_cache then Engine.enable_cache eng;
  let t =
    { cfg = config;
      eng;
      lock = Mutex.create ();
      work = Condition.create ();
      session_queues = Hashtbl.create 16;
      rr = Queue.create ();
      queued = 0;
      inflight_cost = 0.;
      closed = false;
      next_id = 1;
      ema_latency_s = 0.010;
      workers = [];
      live = 0;
      breakers = Hashtbl.create 16;
      worker_seed = Atomic.make 1;
      stats = Stats.create ();
    }
  in
  for _ = 1 to max 1 config.domains do
    spawn_worker t
  done;
  t

let create ?config (db : Storage.Database.t) : t =
  create_with ?config (Engine.create db)

(* Recovery-then-serve: open the durable store (running crash
   recovery) before any worker is spawned, so the first admitted query
   already sees exactly the committed prefix. *)
let create_durable ?config ~(dir : string) (catalog : Catalog.t) : t =
  create_with ?config (Engine.open_db ~dir catalog)

(* ------------------------------------------------------------------ *)
(* Journaled mutations                                                *)
(* ------------------------------------------------------------------ *)

(* Mutations bypass the query queue: they take the store's own lock,
   so they serialize against each other and against snapshot rotation,
   while running queries keep reading consistent (array, count) views.
   On a durable engine each call is journaled (write + fsync) before
   it applies and before it returns. *)

let load_table (t : t) (table : string) (rows : Relalg.Value.t array list) : unit =
  Engine.load_table t.eng table rows;
  Stats.note_mutation t.stats

let append_row (t : t) (table : string) (row : Relalg.Value.t array) : unit =
  Engine.append_row t.eng table row;
  Stats.note_mutation t.stats

let snapshot_now (t : t) : int =
  let epoch = Engine.snapshot t.eng in
  Stats.note_snapshot t.stats;
  epoch

(* Stop admission, drain the queue (every admitted request still gets
   its reply), and join every worker domain — including replacements
   spawned by crashes while we were joining. *)
let shutdown (t : t) : unit =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.work);
  let rec join_all () =
    let ds =
      Mutex.protect t.lock (fun () ->
          let ds = t.workers in
          t.workers <- [];
          ds)
    in
    match ds with
    | [] -> ()
    | ds ->
        List.iter Domain.join ds;
        join_all ()
  in
  join_all ();
  (* every journaled mutation is already fsync'd, so closing only
     releases the descriptor *)
  Engine.close_store t.eng

let live_workers (t : t) : int = Mutex.protect t.lock (fun () -> t.live)
