(* Service-level metrics: admission counters, queue depth high-water
   mark, degradation/retry/poison counters, and per-session latency
   distributions with p50/p95/p99 — the service-granularity sibling of
   the per-operator [Exec.Metrics] tree.

   All updates are mutex-guarded (workers and submitters touch the
   same counters from many domains); reads take a [snapshot] under the
   same lock so a render never shows a half-applied update. *)

(* Growable latency sample buffer; thousands of requests at 8 bytes a
   sample, so exact percentiles are cheaper than they sound. *)
type series = { mutable samples : float array; mutable n : int }

let series_create () = { samples = Array.make 256 0.; n = 0 }

let series_add (s : series) (v : float) =
  if s.n = Array.length s.samples then begin
    let bigger = Array.make (2 * s.n) 0. in
    Array.blit s.samples 0 bigger 0 s.n;
    s.samples <- bigger
  end;
  s.samples.(s.n) <- v;
  s.n <- s.n + 1

type percentiles = { count : int; p50 : float; p95 : float; p99 : float; max : float }

let percentiles_of (sorted : float array) : percentiles =
  let n = Array.length sorted in
  if n = 0 then { count = 0; p50 = 0.; p95 = 0.; p99 = 0.; max = 0. }
  else
    let at p =
      let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) i))
    in
    { count = n; p50 = at 0.50; p95 = at 0.95; p99 = at 0.99; max = sorted.(n - 1) }

type t = {
  lock : Mutex.t;
  mutable submitted : int;
  mutable admitted : int;
  mutable shed : int;
      (** rejected at admission (queue full) — never entered the queue,
          so [submitted = admitted + shed + shutdown rejects] *)
  mutable shed_dispatch : int;
      (** admitted, then shed by the inflight-cost gate at dispatch;
          overlaps [admitted], never [shed] *)
  mutable requeued : int;
      (** crash victims put back on the queue to retry elsewhere (not
          new admissions — [admitted] counts each request once) *)
  mutable completed : int;  (** replies carrying a result *)
  mutable failed : int;  (** replies carrying a typed query error *)
  mutable deadline_queued : int;  (** deadline passed before a worker picked it up *)
  mutable deadline_running : int;  (** deadline tripped cooperatively mid-query *)
  mutable retried : int;  (** transient-failure retries performed *)
  mutable degraded : int;  (** replies served by the fallback path *)
  mutable breaker_trips : int;  (** circuit-breaker open transitions *)
  mutable poisoned : int;  (** requests quarantined after repeated worker kills *)
  mutable worker_kills : int;  (** workers lost to escaped exceptions *)
  mutable worker_respawns : int;  (** replacement workers spawned *)
  mutable queue_depth : int;
  mutable queue_high_water : int;
  mutable mutations_journaled : int;
      (** load/append mutations acknowledged through the WAL *)
  mutable snapshots_written : int;  (** durable snapshot rotations *)
  global : series;  (** end-to-end latency of every finished request *)
  sessions : (string, series) Hashtbl.t;
}

let create () =
  { lock = Mutex.create ();
    submitted = 0;
    admitted = 0;
    shed = 0;
    shed_dispatch = 0;
    requeued = 0;
    completed = 0;
    failed = 0;
    deadline_queued = 0;
    deadline_running = 0;
    retried = 0;
    degraded = 0;
    breaker_trips = 0;
    poisoned = 0;
    worker_kills = 0;
    worker_respawns = 0;
    queue_depth = 0;
    queue_high_water = 0;
    mutations_journaled = 0;
    snapshots_written = 0;
    global = series_create ();
    sessions = Hashtbl.create 16;
  }

let locked (t : t) (f : unit -> 'a) : 'a = Mutex.protect t.lock f

let note_submitted t = locked t (fun () -> t.submitted <- t.submitted + 1)
let note_shed t = locked t (fun () -> t.shed <- t.shed + 1)

let note_admitted t ~depth =
  locked t (fun () ->
      t.admitted <- t.admitted + 1;
      t.queue_depth <- depth;
      if depth > t.queue_high_water then t.queue_high_water <- depth)

let note_shed_dispatch t = locked t (fun () -> t.shed_dispatch <- t.shed_dispatch + 1)

let note_requeued t ~depth =
  locked t (fun () ->
      t.requeued <- t.requeued + 1;
      t.queue_depth <- depth;
      if depth > t.queue_high_water then t.queue_high_water <- depth)

let note_dequeued t ~depth = locked t (fun () -> t.queue_depth <- depth)
let note_retry t = locked t (fun () -> t.retried <- t.retried + 1)
let note_breaker_trip t = locked t (fun () -> t.breaker_trips <- t.breaker_trips + 1)
let note_poisoned t = locked t (fun () -> t.poisoned <- t.poisoned + 1)
let note_worker_kill t = locked t (fun () -> t.worker_kills <- t.worker_kills + 1)
let note_worker_respawn t = locked t (fun () -> t.worker_respawns <- t.worker_respawns + 1)
let note_mutation t = locked t (fun () -> t.mutations_journaled <- t.mutations_journaled + 1)
let note_snapshot t = locked t (fun () -> t.snapshots_written <- t.snapshots_written + 1)

type finish_class = Completed | Degraded | Failed | Deadline_queued | Deadline_running

(* Per-session series are bounded: a client that varies session names
   unboundedly must not grow the table for the service lifetime, so
   once [max_tracked_sessions] distinct names exist, further new names
   pool into one overflow bucket. *)
let max_tracked_sessions = 1024
let overflow_session = "(other)"

(* One finished request: classify it and record its end-to-end latency
   under the session.  Sheds are not finishes — they never entered the
   queue. *)
let note_finished t ~(session : string) ~(latency_s : float) (cls : finish_class) =
  locked t (fun () ->
      (match cls with
      | Completed -> t.completed <- t.completed + 1
      | Degraded ->
          t.completed <- t.completed + 1;
          t.degraded <- t.degraded + 1
      | Failed -> t.failed <- t.failed + 1
      | Deadline_queued -> t.deadline_queued <- t.deadline_queued + 1
      | Deadline_running -> t.deadline_running <- t.deadline_running + 1);
      series_add t.global latency_s;
      let session =
        if Hashtbl.mem t.sessions session
           || Hashtbl.length t.sessions < max_tracked_sessions
        then session
        else overflow_session
      in
      let s =
        match Hashtbl.find_opt t.sessions session with
        | Some s -> s
        | None ->
            let s = series_create () in
            Hashtbl.replace t.sessions session s;
            s
      in
      series_add s latency_s)

(* --- snapshots -------------------------------------------------------- *)

type snapshot = {
  submitted : int;
  admitted : int;
  shed : int;
  shed_dispatch : int;
  requeued : int;
  completed : int;
  failed : int;
  deadline_queued : int;
  deadline_running : int;
  retried : int;
  degraded : int;
  breaker_trips : int;
  poisoned : int;
  worker_kills : int;
  worker_respawns : int;
  queue_depth : int;
  queue_high_water : int;
  mutations_journaled : int;
  snapshots_written : int;
  latency : percentiles;  (** all sessions pooled *)
  per_session : (string * percentiles) list;  (** sorted by session name *)
  cache : Engine.cache_stats option;
      (** engine caching-tier counters; [None] when the tier is off.
          Filled by [Service.stats], not by {!snapshot} (the stats
          store does not hold the engine). *)
}

let snapshot (t : t) : snapshot =
  locked t (fun () ->
      let freeze (s : series) =
        let a = Array.sub s.samples 0 s.n in
        Array.sort compare a;
        percentiles_of a
      in
      { submitted = t.submitted;
        admitted = t.admitted;
        shed = t.shed;
        shed_dispatch = t.shed_dispatch;
        requeued = t.requeued;
        completed = t.completed;
        failed = t.failed;
        deadline_queued = t.deadline_queued;
        deadline_running = t.deadline_running;
        retried = t.retried;
        degraded = t.degraded;
        breaker_trips = t.breaker_trips;
        poisoned = t.poisoned;
        worker_kills = t.worker_kills;
        worker_respawns = t.worker_respawns;
        queue_depth = t.queue_depth;
        queue_high_water = t.queue_high_water;
        mutations_journaled = t.mutations_journaled;
        snapshots_written = t.snapshots_written;
        latency = freeze t.global;
        per_session =
          Hashtbl.fold (fun name s acc -> (name, freeze s) :: acc) t.sessions []
          |> List.sort compare;
        cache = None;
      })

(* --- rendering -------------------------------------------------------- *)

let ms f = Printf.sprintf "%.2fms" (1000. *. f)

let percentiles_to_string (p : percentiles) : string =
  Printf.sprintf "n=%d p50=%s p95=%s p99=%s max=%s" p.count (ms p.p50) (ms p.p95)
    (ms p.p99) (ms p.max)

(* explain-style text block *)
let render (s : snapshot) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "== service stats ==\n";
  Buffer.add_string b
    (Printf.sprintf
       "submitted %d  admitted %d  shed %d  shed-at-dispatch %d  completed %d  failed %d\n"
       s.submitted s.admitted s.shed s.shed_dispatch s.completed s.failed);
  Buffer.add_string b
    (Printf.sprintf
       "deadline: queued %d  running %d   retried %d  degraded %d  breaker-trips %d\n"
       s.deadline_queued s.deadline_running s.retried s.degraded s.breaker_trips);
  Buffer.add_string b
    (Printf.sprintf "poisoned %d  requeued %d  worker-kills %d  worker-respawns %d\n"
       s.poisoned s.requeued s.worker_kills s.worker_respawns);
  Buffer.add_string b
    (Printf.sprintf "queue depth %d (high water %d)\n" s.queue_depth s.queue_high_water);
  if s.mutations_journaled > 0 || s.snapshots_written > 0 then
    Buffer.add_string b
      (Printf.sprintf "durability: mutations journaled %d  snapshots written %d\n"
         s.mutations_journaled s.snapshots_written);
  (match s.cache with
  | None -> ()
  | Some c ->
      Buffer.add_string b
        (Printf.sprintf
           "cache: plan hits %d  misses %d  stale %d  evicted %d  waits %d  entries %d (%d bytes)  verify-skips %d\n"
           c.Engine.plan_hits c.Engine.plan_misses c.Engine.plan_invalidations
           c.Engine.plan_evictions c.Engine.plan_single_flight_waits
           c.Engine.plan_entries c.Engine.plan_bytes c.Engine.verify_skips);
      Buffer.add_string b
        (Printf.sprintf
           "cse:   hits %d  materializations %d  stale %d  evicted %d  entries %d (%d bytes)\n"
           c.Engine.cse_hits c.Engine.cse_materializations c.Engine.cse_invalidations
           c.Engine.cse_evictions c.Engine.cse_entries c.Engine.cse_bytes));
  Buffer.add_string b
    (Printf.sprintf "latency: %s\n" (percentiles_to_string s.latency));
  List.iter
    (fun (name, p) ->
      Buffer.add_string b (Printf.sprintf "  session %-12s %s\n" name (percentiles_to_string p)))
    s.per_session;
  Buffer.contents b

let percentiles_to_json (p : percentiles) : string =
  Printf.sprintf "{\"count\":%d,\"p50_s\":%.6f,\"p95_s\":%.6f,\"p99_s\":%.6f,\"max_s\":%.6f}"
    p.count p.p50 p.p95 p.p99 p.max

let cache_to_json (c : Engine.cache_stats) : string =
  Printf.sprintf
    "{\"plan_hits\":%d,\"plan_misses\":%d,\"plan_invalidations\":%d,\
     \"plan_evictions\":%d,\"plan_single_flight_waits\":%d,\
     \"plan_entries\":%d,\"plan_bytes\":%d,\"verify_skips\":%d,\
     \"cse_hits\":%d,\"cse_materializations\":%d,\"cse_invalidations\":%d,\
     \"cse_evictions\":%d,\"cse_entries\":%d,\"cse_bytes\":%d}"
    c.Engine.plan_hits c.Engine.plan_misses c.Engine.plan_invalidations
    c.Engine.plan_evictions c.Engine.plan_single_flight_waits c.Engine.plan_entries
    c.Engine.plan_bytes c.Engine.verify_skips c.Engine.cse_hits
    c.Engine.cse_materializations c.Engine.cse_invalidations c.Engine.cse_evictions
    c.Engine.cse_entries c.Engine.cse_bytes

let to_json (s : snapshot) : string =
  Printf.sprintf
    "{\"submitted\":%d,\"admitted\":%d,\"shed\":%d,\"shed_dispatch\":%d,\
     \"requeued\":%d,\"completed\":%d,\"failed\":%d,\
     \"deadline_queued\":%d,\"deadline_running\":%d,\"retried\":%d,\"degraded\":%d,\
     \"breaker_trips\":%d,\"poisoned\":%d,\"worker_kills\":%d,\"worker_respawns\":%d,\
     \"queue_depth\":%d,\"queue_high_water\":%d,\
     \"mutations_journaled\":%d,\"snapshots_written\":%d,\
     \"cache\":%s,\"latency\":%s,\"sessions\":{%s}}"
    s.submitted s.admitted s.shed s.shed_dispatch s.requeued s.completed s.failed
    s.deadline_queued s.deadline_running s.retried s.degraded s.breaker_trips
    s.poisoned s.worker_kills s.worker_respawns s.queue_depth s.queue_high_water
    s.mutations_journaled s.snapshots_written
    (match s.cache with Some c -> cache_to_json c | None -> "null")
    (percentiles_to_json s.latency)
    (String.concat ","
       (List.map
          (fun (name, p) ->
            Printf.sprintf "%s:%s" (Exec.Metrics.json_string name) (percentiles_to_json p))
          s.per_session))
