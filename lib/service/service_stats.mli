(** Service-level metrics: admission/degradation counters, queue-depth
    high-water mark, and per-session latency percentiles.  Updates are
    mutex-guarded; reads take a consistent {!snapshot}. *)

type t

val create : unit -> t

(** {2 Recording (called by the service)} *)

val note_submitted : t -> unit

(** Rejected at admission (queue full): the request never entered the
    queue, so [submitted = admitted + shed + shutdown rejects]. *)
val note_shed : t -> unit

(** Admitted, then shed by the inflight-cost gate at dispatch.
    Overlaps [admitted] (the request was counted there), never
    [shed]. *)
val note_shed_dispatch : t -> unit

(** [depth] is the queue depth just after the admission. *)
val note_admitted : t -> depth:int -> unit

(** A crash victim put back on the queue to retry elsewhere; [depth]
    is the queue depth just after the re-enqueue.  Not an admission —
    [admitted] counts each request once. *)
val note_requeued : t -> depth:int -> unit

(** [depth] is the queue depth just after the removal. *)
val note_dequeued : t -> depth:int -> unit

val note_retry : t -> unit
val note_breaker_trip : t -> unit
val note_poisoned : t -> unit
val note_worker_kill : t -> unit
val note_worker_respawn : t -> unit

(** A load/append mutation acknowledged through the WAL. *)
val note_mutation : t -> unit

(** A durable snapshot rotation completed. *)
val note_snapshot : t -> unit

type finish_class = Completed | Degraded | Failed | Deadline_queued | Deadline_running

(** One finished request: classify and record its end-to-end latency
    (admission to reply) under [session].  At most 1024 distinct
    session series are tracked; later new names pool into an
    ["(other)"] overflow bucket so unbounded session churn cannot grow
    the table forever. *)
val note_finished : t -> session:string -> latency_s:float -> finish_class -> unit

(** {2 Reading} *)

type percentiles = { count : int; p50 : float; p95 : float; p99 : float; max : float }

type snapshot = {
  submitted : int;
  admitted : int;
  shed : int;  (** admission-time rejections (queue full) *)
  shed_dispatch : int;  (** post-admission cost-gate sheds; overlap [admitted] *)
  requeued : int;  (** crash victims re-enqueued to retry elsewhere *)
  completed : int;
  failed : int;
  deadline_queued : int;
  deadline_running : int;
  retried : int;
  degraded : int;
  breaker_trips : int;
  poisoned : int;
  worker_kills : int;
  worker_respawns : int;
  queue_depth : int;
  queue_high_water : int;
  mutations_journaled : int;  (** WAL-acknowledged load/append mutations *)
  snapshots_written : int;  (** durable snapshot rotations *)
  latency : percentiles;
  per_session : (string * percentiles) list;
  cache : Engine.cache_stats option;
      (** engine caching-tier counters; always [None] from {!snapshot}
          (the stats store does not hold the engine) — [Service.stats]
          fills it in *)
}

val snapshot : t -> snapshot
val percentiles_to_string : percentiles -> string

(** Explain-style text block ([== service stats ==] ...). *)
val render : snapshot -> string

val percentiles_to_json : percentiles -> string
val to_json : snapshot -> string
