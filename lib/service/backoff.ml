(* Retry backoff: jittered exponential delays.

   The envelope grows geometrically from [base_delay_s] by
   [multiplier] per retry and is clamped to [max_delay_s]; a [jitter]
   fraction of the envelope is randomized per draw from the caller's
   splitmix64 stream.  Jitter is what keeps a thundering herd from
   re-colliding: when many requests die of the same transient cause
   (an injected fault wave, a contention spike), deterministic delays
   would retry them in lockstep.

   Draws come from an explicit {!Exec.Faults.Rng} stream, so a
   service's whole retry schedule is replayable from its seed. *)

type policy = {
  max_retries : int;  (** retry attempts after the first try; 0 disables retry *)
  base_delay_s : float;  (** envelope for the first retry *)
  multiplier : float;  (** envelope growth per retry *)
  max_delay_s : float;  (** hard clamp on any single delay *)
  jitter : float;  (** fraction of the envelope randomized, in [0, 1] *)
}

let default =
  { max_retries = 3; base_delay_s = 0.002; multiplier = 2.0; max_delay_s = 0.1; jitter = 0.5 }

(* Deterministic upper bound for the [attempt]-th retry (0-based). *)
let envelope (p : policy) ~(attempt : int) : float =
  Float.min p.max_delay_s (p.base_delay_s *. (p.multiplier ** float_of_int attempt))

(* The actual delay to sleep: envelope shrunk by up to [jitter].
   Always in [(1 - jitter) * envelope, envelope], so it is bounded by
   [max_delay_s] no matter the attempt number. *)
let delay (p : policy) (rng : Exec.Faults.Rng.t) ~(attempt : int) : float =
  let cap = envelope p ~attempt in
  let fixed = cap *. (1. -. p.jitter) in
  fixed +. (cap *. p.jitter *. Exec.Faults.Rng.float rng)
