(** Per-session circuit breaker: closed → open after a run of primary
    path failures → half-open (one trial) after a cooldown → closed on
    trial success / re-open on trial failure.

    Thread-safe; the clock is injectable for deterministic tests. *)

type config = {
  failure_threshold : int;  (** consecutive primary-path failures to open *)
  cooldown_s : float;  (** open duration before a half-open trial *)
}

val default_config : config

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

val create : ?now:(unit -> float) -> config -> t
val state : t -> state

(** Times the breaker tripped open, cumulative. *)
val opens : t -> int

(** May the caller try the primary path?  An open breaker past its
    cooldown half-opens and admits the caller as the single trial. *)
val allow : t -> bool

val record_success : t -> unit

(** Returns [true] when this failure tripped the breaker open. *)
val record_failure : t -> bool
