(** Per-session circuit breaker: closed → open after a run of primary
    path failures → half-open (one trial) after a cooldown → closed on
    trial success / re-open on trial failure.

    Thread-safe; the clock is injectable for deterministic tests. *)

type config = {
  failure_threshold : int;  (** consecutive primary-path failures to open *)
  cooldown_s : float;  (** open duration before a half-open trial *)
}

val default_config : config

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

val create : ?now:(unit -> float) -> config -> t
val state : t -> state

(** Times the breaker tripped open, cumulative. *)
val opens : t -> int

(** May the caller try the primary path?  An open breaker past its
    cooldown half-opens and admits the caller as the single trial. *)
val allow : t -> bool

(** The admitted trial ended without a verdict on primary-path health
    (deadline, fatal SQL error, dispatch shed, worker crash): return
    [Half_open] to [Open] without counting an open or restarting the
    cooldown, so the next request becomes the new trial.  No-op in any
    other state.  Every [allow] that returned [true] must be matched
    by exactly one of [record_success], [record_failure] or
    [abort_trial], or a half-open breaker wedges. *)
val abort_trial : t -> unit

(** [Closed] with no consecutive failures — indistinguishable from a
    fresh breaker, so safe to evict and recreate on demand. *)
val is_pristine : t -> bool

val record_success : t -> unit

(** Returns [true] when this failure tripped the breaker open. *)
val record_failure : t -> bool
