(** SQL abstract syntax. *)

type cmpop = Relalg.Algebra.cmpop
type quant = Relalg.Algebra.quant

type expr =
  | EInt of int
  | EFloat of float
  | EStr of string
  | EDate of string  (** DATE 'yyyy-mm-dd' *)
  | EBool of bool
  | ENull
  | ECol of string option * string  (** optional qualifier, column name *)
  | EArith of Relalg.Algebra.arithop * expr * expr
  | ENeg of expr
  | ECmp of cmpop * expr * expr
  | EAnd of expr * expr
  | EOr of expr * expr
  | ENot of expr
  | EIsNull of bool * expr  (** negated?, operand *)
  | EBetween of bool * expr * expr * expr
  | ELike of bool * expr * string
  | EInList of bool * expr * expr list
  | EInSub of bool * expr * query
  | EExists of query
  | EScalarSub of query
  | EQuant of cmpop * quant * expr * query
  | ECase of (expr * expr) list * expr option
  | EAgg of string * bool * expr option
      (** name (count/sum/avg/min/max), distinct?, argument (None = star) *)

and select_item = SStar | SExpr of expr * string option

and table_ref =
  | TTable of string * string option  (** table, alias *)
  | TDerived of query * string  (** derived table with required alias *)
  | TJoin of table_ref * join_type * table_ref * expr  (** ... ON expr *)

and join_type = JInner | JLeft

and query = {
  distinct : bool;
  select : select_item list;
  from : table_ref list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  union_all : query list;  (** additional UNION ALL blocks *)
  order_by : (expr * bool) list;  (** expr, descending? *)
  limit : int option;
}

val mk_query :
  ?distinct:bool ->
  ?from:table_ref list ->
  ?where:expr ->
  ?group_by:expr list ->
  ?having:expr ->
  ?union_all:query list ->
  ?order_by:(expr * bool) list ->
  ?limit:int ->
  select_item list ->
  query
