(** Hand-written SQL lexer. *)

exception Lex_error of string * int  (** message, position *)

(** Tokenize a SQL string; the result always ends with {!Token.EOF}.
    @raise Lex_error on an unexpected character or unterminated string. *)
val tokenize : string -> Token.t list
