(** SQL tokens. *)

type t =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string  (** lower-cased *)
  | KEYWORD of string  (** upper-cased, from the keyword list *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

(** The reserved words, upper-cased. *)
val keywords : string list

(** Case-insensitive membership in {!keywords}. *)
val is_keyword : string -> bool

val to_string : t -> string
