(* Recursive-descent SQL parser.

   Expression precedence, loosest first:
     OR < AND < NOT < (comparison | IS | IN | BETWEEN | LIKE | quantified)
        < + - < * / % < unary minus < primary *)

exception Parse_error of string

type state = { mutable toks : Token.t list }

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.toks with [] -> Token.EOF | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Token.EOF

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let eat st tok =
  if peek st = tok then advance st
  else fail "expected %s but found %s" (Token.to_string tok) (Token.to_string (peek st))

let eat_kw st kw =
  match peek st with
  | Token.KEYWORD k when k = kw -> advance st
  | t -> fail "expected %s but found %s" kw (Token.to_string t)

let is_kw st kw = match peek st with Token.KEYWORD k -> k = kw | _ -> false

let accept_kw st kw = if is_kw st kw then (advance st; true) else false

let ident st =
  match peek st with
  | Token.IDENT s -> advance st; s
  | t -> fail "expected identifier but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)

let cmp_of_token = function
  | Token.EQ -> Some Relalg.Algebra.Eq
  | Token.NE -> Some Relalg.Algebra.Ne
  | Token.LT -> Some Relalg.Algebra.Lt
  | Token.LE -> Some Relalg.Algebra.Le
  | Token.GT -> Some Relalg.Algebra.Gt
  | Token.GE -> Some Relalg.Algebra.Ge
  | _ -> None

let agg_names = [ "count"; "sum"; "avg"; "min"; "max" ]

let rec parse_core st : Ast.query =
  eat_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let select = parse_select_list st in
  let from = if accept_kw st "FROM" then parse_from_list st else [] in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if is_kw st "GROUP" then begin
      eat_kw st "GROUP";
      eat_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  { distinct; select; from; where; group_by; having; union_all = [];
    order_by = []; limit = None }

and parse_query st : Ast.query =
  let first = parse_core st in
  let rec unions acc =
    if accept_kw st "UNION" then begin
      eat_kw st "ALL";
      unions (parse_core st :: acc)
    end
    else List.rev acc
  in
  let union_all = unions [] in
  let order_by =
    if is_kw st "ORDER" then begin
      eat_kw st "ORDER";
      eat_kw st "BY";
      let item () =
        let e = parse_expr st in
        if accept_kw st "DESC" then (e, true)
        else begin
          ignore (accept_kw st "ASC");
          (e, false)
        end
      in
      let rec items acc =
        let it = item () in
        if peek st = Token.COMMA then (advance st; items (it :: acc))
        else List.rev (it :: acc)
      in
      items []
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then
      match peek st with
      | Token.INT i -> advance st; Some i
      | t -> fail "expected integer after LIMIT, found %s" (Token.to_string t)
    else None
  in
  { first with union_all; order_by; limit }

and parse_select_list st =
  let item () =
    if peek st = Token.STAR then (advance st; Ast.SStar)
    else begin
      let e = parse_expr st in
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with Token.IDENT s -> advance st; Some s | _ -> None
      in
      Ast.SExpr (e, alias)
    end
  in
  let rec items acc =
    let it = item () in
    if peek st = Token.COMMA then (advance st; items (it :: acc)) else List.rev (it :: acc)
  in
  items []

and parse_expr_list st =
  let rec items acc =
    let e = parse_expr st in
    if peek st = Token.COMMA then (advance st; items (e :: acc)) else List.rev (e :: acc)
  in
  items []

and parse_from_list st =
  let rec items acc =
    let t = parse_table_ref st in
    if peek st = Token.COMMA then (advance st; items (t :: acc)) else List.rev (t :: acc)
  in
  items []

and parse_table_ref st =
  let primary () =
    if peek st = Token.LPAREN then begin
      advance st;
      let q = parse_query st in
      eat st Token.RPAREN;
      ignore (accept_kw st "AS");
      let alias = ident st in
      Ast.TDerived (q, alias)
    end
    else begin
      let name = ident st in
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with Token.IDENT s -> advance st; Some s | _ -> None
      in
      Ast.TTable (name, alias)
    end
  in
  let rec joins left =
    if is_kw st "JOIN" || is_kw st "INNER" || is_kw st "LEFT" then begin
      let jt =
        if accept_kw st "LEFT" then begin
          ignore (accept_kw st "OUTER");
          Ast.JLeft
        end
        else begin
          ignore (accept_kw st "INNER");
          Ast.JInner
        end
      in
      eat_kw st "JOIN";
      let right = primary () in
      eat_kw st "ON";
      let cond = parse_expr st in
      joins (Ast.TJoin (left, jt, right, cond))
    end
    else left
  in
  joins (primary ())

and parse_expr st = parse_or st

and parse_or st =
  let l = parse_and st in
  if accept_kw st "OR" then Ast.EOr (l, parse_or st) else l

and parse_and st =
  let l = parse_not st in
  if accept_kw st "AND" then Ast.EAnd (l, parse_and st) else l

and parse_not st =
  if accept_kw st "NOT" then Ast.ENot (parse_not st) else parse_predicate st

(* comparison / IS NULL / IN / BETWEEN / LIKE / quantified, all
   non-associative over additive expressions *)
and parse_predicate st =
  let l = parse_additive st in
  match peek st with
  | Token.KEYWORD "IS" ->
      advance st;
      let negated = accept_kw st "NOT" in
      eat_kw st "NULL";
      Ast.EIsNull (negated, l)
  | Token.KEYWORD "NOT" -> (
      advance st;
      match peek st with
      | Token.KEYWORD "IN" -> advance st; parse_in st ~negated:true l
      | Token.KEYWORD "BETWEEN" -> advance st; parse_between st ~negated:true l
      | Token.KEYWORD "LIKE" -> advance st; parse_like st ~negated:true l
      | t -> fail "expected IN/BETWEEN/LIKE after NOT, found %s" (Token.to_string t))
  | Token.KEYWORD "IN" -> advance st; parse_in st ~negated:false l
  | Token.KEYWORD "BETWEEN" -> advance st; parse_between st ~negated:false l
  | Token.KEYWORD "LIKE" -> advance st; parse_like st ~negated:false l
  | t -> (
      match cmp_of_token t with
      | None -> l
      | Some op -> (
          advance st;
          (* quantified comparison? *)
          match peek st with
          | Token.KEYWORD ("ANY" | "SOME") ->
              advance st;
              eat st Token.LPAREN;
              let q = parse_query st in
              eat st Token.RPAREN;
              Ast.EQuant (op, Relalg.Algebra.Any, l, q)
          | Token.KEYWORD "ALL" ->
              advance st;
              eat st Token.LPAREN;
              let q = parse_query st in
              eat st Token.RPAREN;
              Ast.EQuant (op, Relalg.Algebra.All, l, q)
          | _ -> Ast.ECmp (op, l, parse_additive st)))

and parse_in st ~negated l =
  eat st Token.LPAREN;
  if is_kw st "SELECT" then begin
    let q = parse_query st in
    eat st Token.RPAREN;
    Ast.EInSub (negated, l, q)
  end
  else begin
    let es = parse_expr_list st in
    eat st Token.RPAREN;
    Ast.EInList (negated, l, es)
  end

and parse_between st ~negated l =
  let lo = parse_additive st in
  eat_kw st "AND";
  let hi = parse_additive st in
  Ast.EBetween (negated, l, lo, hi)

and parse_like st ~negated l =
  match peek st with
  | Token.STRING s -> advance st; Ast.ELike (negated, l, s)
  | t -> fail "LIKE requires a string literal pattern, found %s" (Token.to_string t)

and parse_additive st =
  let rec go l =
    match peek st with
    | Token.PLUS -> advance st; go (Ast.EArith (Relalg.Algebra.Add, l, parse_multiplicative st))
    | Token.MINUS -> advance st; go (Ast.EArith (Relalg.Algebra.Sub, l, parse_multiplicative st))
    | _ -> l
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go l =
    match peek st with
    | Token.STAR -> advance st; go (Ast.EArith (Relalg.Algebra.Mul, l, parse_unary st))
    | Token.SLASH -> advance st; go (Ast.EArith (Relalg.Algebra.Div, l, parse_unary st))
    | Token.PERCENT -> advance st; go (Ast.EArith (Relalg.Algebra.Mod, l, parse_unary st))
    | _ -> l
  in
  go (parse_unary st)

and parse_unary st =
  if peek st = Token.MINUS then (advance st; Ast.ENeg (parse_unary st))
  else parse_primary st

and parse_primary st =
  match peek st with
  | Token.INT i -> advance st; Ast.EInt i
  | Token.FLOAT f -> advance st; Ast.EFloat f
  | Token.STRING s -> advance st; Ast.EStr s
  | Token.KEYWORD "NULL" -> advance st; Ast.ENull
  | Token.KEYWORD "TRUE" -> advance st; Ast.EBool true
  | Token.KEYWORD "FALSE" -> advance st; Ast.EBool false
  | Token.KEYWORD "DATE" -> (
      advance st;
      match peek st with
      | Token.STRING s -> advance st; Ast.EDate s
      | t -> fail "expected date literal string, found %s" (Token.to_string t))
  | Token.KEYWORD "CASE" ->
      advance st;
      let rec branches acc =
        if accept_kw st "WHEN" then begin
          let c = parse_expr st in
          eat_kw st "THEN";
          let v = parse_expr st in
          branches ((c, v) :: acc)
        end
        else List.rev acc
      in
      let bs = branches [] in
      let els = if accept_kw st "ELSE" then Some (parse_expr st) else None in
      eat_kw st "END";
      Ast.ECase (bs, els)
  | Token.KEYWORD "EXISTS" ->
      advance st;
      eat st Token.LPAREN;
      let q = parse_query st in
      eat st Token.RPAREN;
      Ast.EExists q
  | Token.LPAREN ->
      advance st;
      if is_kw st "SELECT" then begin
        let q = parse_query st in
        eat st Token.RPAREN;
        Ast.EScalarSub q
      end
      else begin
        let e = parse_expr st in
        eat st Token.RPAREN;
        e
      end
  | Token.IDENT name when List.mem name agg_names && peek2 st = Token.LPAREN ->
      advance st;
      eat st Token.LPAREN;
      let distinct = accept_kw st "DISTINCT" in
      if peek st = Token.STAR then begin
        advance st;
        eat st Token.RPAREN;
        if name <> "count" then fail "only count accepts *";
        Ast.EAgg ("count", distinct, None)
      end
      else begin
        let e = parse_expr st in
        eat st Token.RPAREN;
        Ast.EAgg (name, distinct, Some e)
      end
  | Token.IDENT name ->
      advance st;
      if peek st = Token.DOT then begin
        advance st;
        let col = ident st in
        Ast.ECol (Some name, col)
      end
      else Ast.ECol (None, name)
  | t -> fail "unexpected token %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)

(* Lexer rejections surface as [Parse_error] with position context —
   callers that handle parse failures handle lex failures for free. *)
let tokenize (src : string) : Token.t list =
  try Lexer.tokenize src
  with Lexer.Lex_error (msg, pos) ->
    let n = String.length src in
    let from = max 0 (pos - 20) and upto = min n (pos + 20) in
    fail "%s at position %d: ...%s..." msg pos (String.sub src from (upto - from))

let parse (src : string) : Ast.query =
  let st = { toks = tokenize src } in
  let q = parse_query st in
  (if peek st = Token.SEMI then advance st);
  (match peek st with
  | Token.EOF -> ()
  | t -> fail "trailing input at %s" (Token.to_string t));
  q

let parse_expr_string (src : string) : Ast.expr =
  let st = { toks = tokenize src } in
  let e = parse_expr st in
  (match peek st with
  | Token.EOF -> ()
  | t -> fail "trailing input at %s" (Token.to_string t));
  e
