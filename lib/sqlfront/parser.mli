(** Recursive-descent SQL parser over {!Lexer} tokens. *)

exception Parse_error of string

(** Tokenize, converting {!Lexer.Lex_error} into [Parse_error] with
    position context — callers that handle parse failures handle lex
    failures for free.
    @raise Parse_error *)
val tokenize : string -> Token.t list

(** Parse one SQL query (an optional trailing ';' is consumed).
    @raise Parse_error on syntax errors or trailing input. *)
val parse : string -> Ast.query

(** Parse a standalone scalar expression (test helper).
    @raise Parse_error *)
val parse_expr_string : string -> Ast.expr
