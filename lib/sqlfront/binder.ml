(* Name resolution and algebrization.

   Produces the "direct algebraic representation" of Section 2.1: an
   operator tree in which scalar expressions may still contain
   relational children (Subquery / Exists / InSub / QuantCmp nodes).
   Normalization removes those.

   Conventions established here, following the paper:
   - DISTINCT becomes a no-aggregate GroupBy (Section 1.1, footnote 1).
   - IN (subquery) becomes =ANY; NOT IN becomes <>ALL; NOT is pushed
     through the boolean structure (sound in 3VL because SQL's filter
     semantics treat FALSE and UNKNOWN alike and negation of a
     comparison maps UNKNOWN to UNKNOWN).
   - Every base-table occurrence gets fresh column ids. *)

open Relalg
open Relalg.Algebra

exception Bind_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Bind_error s)) fmt

type scope_entry = { alias : string; entry_cols : (string * Col.t) list }
type scope = scope_entry list

type bound = {
  op : op;
  outputs : (string * Col.t) list;  (** display name, column *)
  order : (Col.t * bool) list;  (** sort column, descending? *)
  limit : int option;
}

(* mode for expression binding *)
type mode = {
  scopes : scope list;  (** innermost first; entries beyond the head are outer *)
  group_cols : Col.Set.t option;  (** Some = grouped context: bare columns must come from here *)
  collector : (agg list ref * scope list) option;
      (** aggregate collector and the pre-group scopes agg args bind in *)
}

(* ------------------------------------------------------------------ *)
(* Column resolution                                                  *)
(* ------------------------------------------------------------------ *)

let resolve_in_scope (sc : scope) qual name : Col.t option =
  match qual with
  | Some q -> (
      match List.find_opt (fun e -> e.alias = q) sc with
      | None -> None
      | Some e -> List.assoc_opt name e.entry_cols)
  | None -> (
      let hits =
        List.filter_map (fun e -> List.assoc_opt name e.entry_cols) sc
      in
      match hits with
      | [] -> None
      | [ c ] -> Some c
      | _ -> fail "ambiguous column reference %s" name)

let resolve (scopes : scope list) qual name : Col.t =
  let rec go = function
    | [] ->
        fail "unknown column %s%s" (match qual with Some q -> q ^ "." | None -> "") name
    | sc :: rest -> ( match resolve_in_scope sc qual name with Some c -> c | None -> go rest)
  in
  go scopes

(* ------------------------------------------------------------------ *)
(* NOT pushdown (3VL-sound)                                           *)
(* ------------------------------------------------------------------ *)

let negate_cmp = function Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt
let negate_quant = function Any -> All | All -> Any

let rec push_not (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.EAnd (a, b) -> Ast.EOr (push_not a, push_not b)
  | Ast.EOr (a, b) -> Ast.EAnd (push_not a, push_not b)
  | Ast.ENot a -> a
  | Ast.ECmp (op, a, b) -> Ast.ECmp (negate_cmp op, a, b)
  | Ast.EIsNull (n, a) -> Ast.EIsNull (not n, a)
  | Ast.EQuant (op, q, a, sub) -> Ast.EQuant (negate_cmp op, negate_quant q, a, sub)
  | Ast.EInSub (n, a, sub) -> Ast.EInSub (not n, a, sub)
  | Ast.EInList (n, a, es) -> Ast.EInList (not n, a, es)
  | Ast.EBetween (n, a, lo, hi) -> Ast.EBetween (not n, a, lo, hi)
  | Ast.ELike (n, a, p) -> Ast.ELike (not n, a, p)
  | e -> Ast.ENot e

(* ------------------------------------------------------------------ *)
(* Expression binding                                                 *)
(* ------------------------------------------------------------------ *)

let agg_of_name name (arg : expr option) : agg_fn =
  match name, arg with
  | "count", None -> CountStar
  | "count", Some e -> Count e
  | "sum", Some e -> Sum e
  | "avg", Some e -> Avg e
  | "min", Some e -> Min e
  | "max", Some e -> Max e
  | n, _ -> fail "unknown aggregate %s" n

(* bind_query is mutually recursive with expression binding because of
   subqueries *)
let rec bind_expr (cat : Catalog.t) (m : mode) (e : Ast.expr) : expr =
  let be = bind_expr cat m in
  match e with
  | Ast.EInt i -> Const (Value.Int i)
  | Ast.EFloat f -> Const (Value.Float f)
  | Ast.EStr s -> Const (Value.Str s)
  | Ast.EBool b -> Const (Value.Bool b)
  | Ast.ENull -> Const Value.Null
  | Ast.EDate s -> (
      match Value.date_of_string s with
      | Some d -> Const (Value.Date d)
      | None -> fail "invalid date literal '%s'" s)
  | Ast.ECol (qual, name) ->
      let c = resolve m.scopes qual name in
      (match m.group_cols with
      | Some gs when not (Col.Set.mem c gs) ->
          (* bare column in a grouped context must be a grouping column;
             outer references (resolved beyond the current scope) are
             parameters and exempt *)
          let in_current =
            match m.scopes with
            | sc :: _ -> resolve_in_scope sc qual name <> None
            | [] -> false
          in
          if in_current then
            fail "column %s must appear in GROUP BY or inside an aggregate" name
      | _ -> ());
      ColRef c
  | Ast.EArith (op, a, b) -> Arith (op, be a, be b)
  | Ast.ENeg a -> Arith (Sub, Const (Value.Int 0), be a)
  | Ast.ECmp (op, a, b) -> Cmp (op, be a, be b)
  | Ast.EAnd (a, b) -> And (be a, be b)
  | Ast.EOr (a, b) -> Or (be a, be b)
  | Ast.ENot a -> (
      match push_not a with
      | Ast.ENot a' -> Not (be a')  (* irreducible *)
      | pushed -> be pushed)
  | Ast.EIsNull (false, a) -> IsNull (be a)
  | Ast.EIsNull (true, a) -> Not (IsNull (be a))
  | Ast.EBetween (false, a, lo, hi) ->
      let ba = be a in
      And (Cmp (Ge, ba, be lo), Cmp (Le, ba, be hi))
  | Ast.EBetween (true, a, lo, hi) ->
      let ba = be a in
      Or (Cmp (Lt, ba, be lo), Cmp (Gt, ba, be hi))
  | Ast.ELike (false, a, p) -> Like (be a, p)
  | Ast.ELike (true, a, p) -> Not (Like (be a, p))
  | Ast.EInList (false, a, es) ->
      let ba = be a in
      List.fold_left
        (fun acc e -> Or (acc, Cmp (Eq, ba, be e)))
        (Const (Value.Bool false))
        es
  | Ast.EInList (true, a, es) ->
      let ba = be a in
      List.fold_left
        (fun acc e -> And (acc, Cmp (Ne, ba, be e)))
        (Const (Value.Bool true))
        es
  | Ast.ECase (branches, els) ->
      Case (List.map (fun (c, v) -> (be c, be v)) branches, Option.map be els)
  | Ast.EAgg (name, distinct, arg) -> (
      if distinct then fail "DISTINCT aggregates are not supported";
      match m.collector with
      | None -> fail "aggregate %s is not allowed in this context" name
      | Some (collected, arg_scopes) ->
          let arg_mode = { scopes = arg_scopes; group_cols = None; collector = None } in
          let barg = Option.map (bind_expr cat arg_mode) arg in
          let fn = agg_of_name name barg in
          (* reuse an existing identical aggregate *)
          let existing =
            List.find_opt (fun a -> agg_same a.fn fn) !collected
          in
          let a =
            match existing with
            | Some a -> a
            | None ->
                let out = Col.fresh (agg_display name) Value.TFloat in
                let a = { fn; out } in
                collected := !collected @ [ a ];
                a
          in
          ColRef a.out)
  | Ast.EScalarSub q ->
      let b = bind_query cat m.scopes q in
      (match b.outputs with
      | [ _ ] -> Subquery b.op
      | _ -> fail "scalar subquery must return exactly one column")
  | Ast.EExists q ->
      let b = bind_query cat m.scopes q in
      Exists b.op
  | Ast.EInSub (negated, a, q) ->
      let b = bind_query cat m.scopes q in
      (match b.outputs with
      | [ _ ] -> ()
      | _ -> fail "IN subquery must return exactly one column");
      let ba = be a in
      if negated then QuantCmp (Ne, All, ba, b.op) else QuantCmp (Eq, Any, ba, b.op)
  | Ast.EQuant (op, quant, a, q) ->
      let b = bind_query cat m.scopes q in
      (match b.outputs with
      | [ _ ] -> ()
      | _ -> fail "quantified subquery must return exactly one column");
      QuantCmp (op, quant, be a, b.op)

and agg_same a b =
  match a, b with
  | CountStar, CountStar -> true
  | Count x, Count y | Sum x, Sum y | Min x, Min y | Max x, Max y | Avg x, Avg y -> x = y
  | _ -> false

and agg_display = function "count" -> "cnt" | n -> n

(* ------------------------------------------------------------------ *)
(* FROM binding                                                       *)
(* ------------------------------------------------------------------ *)

and bind_table_ref (cat : Catalog.t) (outer : scope list) (t : Ast.table_ref) :
    op * scope =
  match t with
  | Ast.TTable (name, alias) -> (
      match Catalog.find_table cat name with
      | None -> fail "unknown table %s" name
      | Some def ->
          let cols =
            List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty) def.columns
          in
          let entry_cols = List.map (fun (c : Col.t) -> (c.name, c)) cols in
          ( TableScan { table = name; cols },
            [ { alias = Option.value ~default:name alias; entry_cols } ] ))
  | Ast.TDerived (q, alias) ->
      let b = bind_query cat outer q in
      (b.op, [ { alias; entry_cols = b.outputs } ])
  | Ast.TJoin (l, jt, r, on) ->
      let lop, lsc = bind_table_ref cat outer l in
      let rop, rsc = bind_table_ref cat outer r in
      let sc = lsc @ rsc in
      let m = { scopes = sc :: outer; group_cols = None; collector = None } in
      let pred = bind_expr cat m on in
      let kind = match jt with Ast.JInner -> Inner | Ast.JLeft -> LeftOuter in
      (Join { kind; pred; left = lop; right = rop }, sc)

(* ------------------------------------------------------------------ *)
(* Query binding                                                      *)
(* ------------------------------------------------------------------ *)

and bind_query (cat : Catalog.t) (outer : scope list) (q : Ast.query) : bound =
  (* FROM: comma list is a cross join *)
  let from_op, scope =
    match q.from with
    | [] -> (ConstTable { cols = []; rows = [ [||] ] }, [])
    | t :: rest ->
        List.fold_left
          (fun (lop, lsc) tr ->
            let rop, rsc = bind_table_ref cat outer tr in
            (Join { kind = Inner; pred = true_; left = lop; right = rop }, lsc @ rsc))
          (bind_table_ref cat outer t)
          rest
  in
  let scopes = scope :: outer in
  let pre_mode = { scopes; group_cols = None; collector = None } in
  (* WHERE *)
  let where_op =
    match q.where with
    | None -> from_op
    | Some w -> Select (bind_expr cat pre_mode w, from_op)
  in
  (* grouping analysis *)
  let rec ast_has_agg (e : Ast.expr) =
    match e with
    | Ast.EAgg _ -> true
    | Ast.EArith (_, a, b) | Ast.ECmp (_, a, b) | Ast.EAnd (a, b) | Ast.EOr (a, b)
    | Ast.EBetween (_, a, _, b) ->
        ast_has_agg a || ast_has_agg b
    | Ast.ENot a | Ast.ENeg a | Ast.EIsNull (_, a) | Ast.ELike (_, a, _) -> ast_has_agg a
    | Ast.ECase (bs, els) ->
        List.exists (fun (c, v) -> ast_has_agg c || ast_has_agg v) bs
        || (match els with Some e -> ast_has_agg e | None -> false)
    | Ast.EInList (_, a, es) -> ast_has_agg a || List.exists ast_has_agg es
    | Ast.EInSub (_, a, _) | Ast.EQuant (_, _, a, _) -> ast_has_agg a
    | _ -> false
  in
  let select_exprs =
    List.filter_map (function Ast.SExpr (e, _) -> Some e | Ast.SStar -> None) q.select
  in
  let any_agg =
    q.group_by <> []
    || List.exists ast_has_agg select_exprs
    || (match q.having with Some h -> ast_has_agg h | None -> false)
    || List.exists (fun (e, _) -> ast_has_agg e) q.order_by
  in
  let grouped_op, group_cols, aggs_ref, post_scopes =
    if not any_agg then (where_op, None, None, scopes)
    else begin
      (* bind grouping expressions; non-column expressions get a
         pre-projection *)
      let pre_projs = ref [] in
      let keys =
        List.map
          (fun ge ->
            match bind_expr cat pre_mode ge with
            | ColRef c -> c
            | e ->
                let out = Col.fresh "gexpr" Value.TStr in
                pre_projs := { expr = e; out } :: !pre_projs;
                out)
          q.group_by
      in
      let input =
        match !pre_projs with
        | [] -> where_op
        | ps ->
            let pass =
              List.map (fun c -> { expr = ColRef c; out = c }) (Op.schema where_op)
            in
            Project (pass @ List.rev ps, where_op)
      in
      let aggs = ref [] in
      (* operator built after select/having/order binding fills aggs *)
      (input, Some keys, Some aggs, scopes)
    end
  in
  let collector =
    match aggs_ref with Some r -> Some (r, post_scopes) | None -> None
  in
  let post_mode =
    { scopes = post_scopes;
      group_cols = Option.map Col.Set.of_list group_cols;
      collector
    }
  in
  (* HAVING *)
  let having_bound = Option.map (bind_expr cat post_mode) q.having in
  (* SELECT list *)
  let expand_star () =
    List.concat_map (fun e -> List.map (fun (n, c) -> (n, ColRef c)) e.entry_cols) scope
  in
  let items =
    List.concat_map
      (function
        | Ast.SStar -> expand_star ()
        | Ast.SExpr (e, alias) ->
            let name =
              match alias, e with
              | Some a, _ -> a
              | None, Ast.ECol (_, n) -> n
              | None, Ast.EAgg (n, _, _) -> n
              | None, _ -> "expr"
            in
            [ (name, bind_expr cat post_mode e) ])
      q.select
  in
  (* ORDER BY: reuse a select item when the AST matches an alias or the
     same expression; otherwise bind as a hidden extra output *)
  let order_bound =
    List.map
      (fun (e, desc) ->
        let matching =
          match e with
          | Ast.ECol (None, n) -> (
              match List.find_opt (fun (name, _) -> name = n) items with
              | Some (_, be) -> Some be
              | None -> None)
          | _ -> None
        in
        let be = match matching with Some b -> b | None -> bind_expr cat post_mode e in
        (be, desc))
      q.order_by
  in
  (* assemble: grouping operator *)
  let op_after_group =
    match group_cols, aggs_ref with
    | None, _ -> grouped_op
    | Some [], Some aggs when !aggs <> [] -> ScalarAgg { aggs = !aggs; input = grouped_op }
    | Some [], Some _ ->
        (* aggregate-free GROUP BY () cannot happen; treat as scalar agg
           over nothing *)
        grouped_op
    | Some keys, Some aggs -> GroupBy { keys; aggs = !aggs; input = grouped_op }
    | Some keys, None ->
        fail "internal: GROUP BY %s bound without an aggregate collector (query: %s)"
          (String.concat ", " (List.map (fun (c : Col.t) -> c.name) keys))
          (String.concat ", " (List.map (function Ast.SStar -> "*" | Ast.SExpr _ -> "expr") q.select))
  in
  let op_after_having =
    match having_bound with
    | None -> op_after_group
    | Some h -> Select (h, op_after_group)
  in
  (* final projection, with hidden order-by columns appended *)
  let projs =
    List.map
      (fun (name, e) ->
        let ty =
          match e with ColRef c -> c.Col.ty | Const (Value.Int _) -> Value.TInt | _ -> Value.TFloat
        in
        (name, { expr = e; out = Col.fresh name ty }))
      items
  in
  let order_projs =
    List.map
      (fun (e, desc) ->
        match
          List.find_opt (fun (_, p) -> p.expr = e) projs
        with
        | Some (_, p) -> ({ expr = ColRef p.out; out = p.out }, desc, true)
        | None -> ({ expr = e; out = Col.fresh "orderkey" Value.TFloat }, desc, false))
      order_bound
  in
  let extra = List.filter_map (fun (p, _, reused) -> if reused then None else Some p) order_projs in
  let proj_op = Project (List.map snd projs @ extra, op_after_having) in
  (* DISTINCT: a no-aggregate GroupBy over the visible outputs *)
  let final_op =
    if q.distinct then begin
      if extra <> [] then fail "ORDER BY items must appear in the select list when DISTINCT is used";
      GroupBy { keys = List.map (fun (_, p) -> p.out) projs; aggs = []; input = proj_op }
    end
    else proj_op
  in
  (* UNION ALL blocks: bind each independently, combine positionally *)
  let final_op =
    if q.union_all = [] then final_op
    else begin
      if extra <> [] then
        fail "ORDER BY expressions must appear in the select list when UNION ALL is used";
      List.fold_left
        (fun acc block ->
          let bb = bind_query cat outer { block with union_all = [] } in
          if List.length bb.outputs <> List.length items then
            fail "UNION ALL blocks must have the same number of columns";
          UnionAll (acc, bb.op))
        final_op q.union_all
    end
  in
  { op = final_op;
    outputs = List.map (fun (n, p) -> (n, p.out)) projs;
    order = List.map (fun (p, desc, _) -> (p.out, desc)) order_projs;
    limit = q.limit
  }

(* Convenience: parse and bind. *)
let bind_sql (cat : Catalog.t) (sql : string) : bound =
  bind_query cat [] (Parser.parse sql)
