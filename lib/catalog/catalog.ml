(* The catalog: table definitions, primary keys, declared indexes.

   TPC-H imposes strict limits on indexing (the paper leans on this in
   Section 5); we declare the TPC-H-legal indexes: primary keys plus
   foreign-key single-column indexes. *)

type column = {
  col_name : string;
  col_ty : Relalg.Value.ty;
  col_nullable : bool;  (** true when the column may contain NULL *)
}

(* column constructor; columns are NOT NULL unless said otherwise *)
let col ?(nullable = false) col_name col_ty = { col_name; col_ty; col_nullable = nullable }

type table = {
  name : string;
  columns : column list;
  primary_key : string list;
  indexes : string list list;  (** each entry: the column(s) of one index *)
}

type t = { tables : (string, table) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let add_table t table = Hashtbl.replace t.tables table.name table

let find_table t name = Hashtbl.find_opt t.tables name

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort compare

(* property environment for Relalg.Props *)
let props_env (t : t) : Relalg.Props.env =
  { table_key =
      (fun name ->
        match find_table t name with Some tb -> tb.primary_key | None -> []);
    table_nullable =
      (fun name ->
        match find_table t name with
        | Some tb ->
            List.filter_map
              (fun c -> if c.col_nullable then Some c.col_name else None)
              tb.columns
        | None -> []);
  }

let column_ty table cname =
  match List.find_opt (fun c -> c.col_name = cname) table.columns with
  | Some c -> Some c.col_ty
  | None -> None

(* ------------------------------------------------------------------ *)
(* TPC-H schema (the subset of columns our workloads touch, which is   *)
(* most of them).                                                      *)
(* ------------------------------------------------------------------ *)

let tpch () : t =
  let open Relalg.Value in
  let c n ty = col n ty in
  let cat = create () in
  add_table cat
    { name = "region";
      columns = [ c "r_regionkey" TInt; c "r_name" TStr; c "r_comment" TStr ];
      primary_key = [ "r_regionkey" ];
      indexes = []
    };
  add_table cat
    { name = "nation";
      columns =
        [ c "n_nationkey" TInt; c "n_name" TStr; c "n_regionkey" TInt; c "n_comment" TStr ];
      primary_key = [ "n_nationkey" ];
      indexes = [ [ "n_regionkey" ] ]
    };
  add_table cat
    { name = "supplier";
      columns =
        [ c "s_suppkey" TInt;
          c "s_name" TStr;
          c "s_address" TStr;
          c "s_nationkey" TInt;
          c "s_phone" TStr;
          c "s_acctbal" TFloat;
          c "s_comment" TStr
        ];
      primary_key = [ "s_suppkey" ];
      indexes = [ [ "s_nationkey" ] ]
    };
  add_table cat
    { name = "customer";
      columns =
        [ c "c_custkey" TInt;
          c "c_name" TStr;
          c "c_address" TStr;
          c "c_nationkey" TInt;
          c "c_phone" TStr;
          c "c_acctbal" TFloat;
          c "c_mktsegment" TStr
        ];
      primary_key = [ "c_custkey" ];
      indexes = [ [ "c_nationkey" ] ]
    };
  add_table cat
    { name = "part";
      columns =
        [ c "p_partkey" TInt;
          c "p_name" TStr;
          c "p_mfgr" TStr;
          c "p_brand" TStr;
          c "p_type" TStr;
          c "p_size" TInt;
          c "p_container" TStr;
          c "p_retailprice" TFloat
        ];
      primary_key = [ "p_partkey" ];
      indexes = []
    };
  add_table cat
    { name = "partsupp";
      columns =
        [ c "ps_partkey" TInt;
          c "ps_suppkey" TInt;
          c "ps_availqty" TInt;
          c "ps_supplycost" TFloat
        ];
      primary_key = [ "ps_partkey"; "ps_suppkey" ];
      indexes = [ [ "ps_partkey" ]; [ "ps_suppkey" ] ]
    };
  add_table cat
    { name = "orders";
      columns =
        [ c "o_orderkey" TInt;
          c "o_custkey" TInt;
          c "o_orderstatus" TStr;
          c "o_totalprice" TFloat;
          c "o_orderdate" TDate;
          c "o_orderpriority" TStr
        ];
      primary_key = [ "o_orderkey" ];
      indexes = [ [ "o_custkey" ] ]
    };
  add_table cat
    { name = "lineitem";
      columns =
        [ c "l_orderkey" TInt;
          c "l_partkey" TInt;
          c "l_suppkey" TInt;
          c "l_linenumber" TInt;
          c "l_quantity" TFloat;
          c "l_extendedprice" TFloat;
          c "l_discount" TFloat;
          c "l_tax" TFloat;
          c "l_returnflag" TStr;
          c "l_shipdate" TDate
        ];
      primary_key = [ "l_orderkey"; "l_linenumber" ];
      indexes = [ [ "l_orderkey" ]; [ "l_partkey" ]; [ "l_suppkey" ] ]
    };
  cat
