(** The catalog: table definitions, primary keys, declared indexes.

    TPC-H imposes strict limits on indexing (the paper leans on this in
    Section 5); {!tpch} declares the TPC-H-legal indexes: primary keys
    plus single-column foreign-key indexes. *)

type column = {
  col_name : string;
  col_ty : Relalg.Value.ty;
  col_nullable : bool;  (** true when the column may contain NULL *)
}

(** Column constructor; columns are NOT NULL unless [~nullable:true]. *)
val col : ?nullable:bool -> string -> Relalg.Value.ty -> column

type table = {
  name : string;
  columns : column list;
  primary_key : string list;
  indexes : string list list;  (** each entry: the column(s) of one index *)
}

type t

val create : unit -> t
val add_table : t -> table -> unit
val find_table : t -> string -> table option
val table_names : t -> string list

(** Property environment handing base-table keys to {!Relalg.Props}. *)
val props_env : t -> Relalg.Props.env

val column_ty : table -> string -> Relalg.Value.ty option

(** The TPC-H schema (the paper's evaluation workload). *)
val tpch : unit -> t
