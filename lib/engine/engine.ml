(* The query engine facade: parse → bind → normalize → cost-based
   optimization → execution (the compilation pipeline of the paper's
   Section 4). *)

open Relalg

(* [engine.ml] is the library root; submodules are reachable only
   through these aliases. *)
module Errors = Errors

type t = {
  db : Storage.Database.t;
  stats : Optimizer.Stats.t;
  props_env : Props.env;
  store : Storage.Durable.t option;
      (** durable backing when opened from disk; [None] = in-memory *)
  mutable caches : caches option;
      (** shared caching tier (plan cache + CSE store); [None] until
          {!enable_cache} *)
}

(* The caching tier: a plan cache keyed on the canonical parameterized
   query form, and a store of materialized common subexpressions that
   [query_many] shares across a batch.  Lives on the engine so every
   entry point — direct queries, the service's worker pool, the REPL —
   sees the same entries. *)
and caches = {
  plans : centry Cache.Plan_cache.t;
  cse : Cache.Cse.t;
  verify_skips : int Atomic.t;
      (** verifier runs skipped because the plan came from the cache
          (it was verified when the entry was inserted) *)
}

(* Under a canonical key the cache holds either a parameterized
   template (plan compiled with per-slot sentinel literals, rebound on
   every hit) or the [NonParam] verdict that the query's plan shape
   depends on its literal values — those plans are cached under an
   exact key that includes the literal vector, as [Exact]. *)
and centry = Param of slotted | NonParam | Exact of prepared_

and slotted = { template : prepared_; sentinels : Value.t array }

and prepared_ = {
  sql : string;
  bound : Sqlfront.Binder.bound;
  stages : Normalize.stages;  (** normalization pipeline snapshots *)
  plan : Algebra.op;  (** the chosen plan *)
  plan_cost : float;
  seed_cost : float;
  explored : int;
  config : Optimizer.Config.t;
  trace : Optimizer.Search.trace option;  (** rule firings, when requested *)
  quarantined : (string * string) list;
      (** rules the verifier disabled during the search (rule, violation) *)
  lint : Analysis.Lint.finding list;
      (** static findings on the chosen plan, most severe first *)
  cache : [ `Hit | `Miss | `Stale ] option;
      (** provenance when the plan cache served this prepare: [`Hit]
          rebound a cached template, [`Miss] populated the cache,
          [`Stale] recomputed after a generation moved; [None] = cache
          disabled or bypassed *)
}

let create (db : Storage.Database.t) : t =
  { db;
    stats = Optimizer.Stats.create db;
    props_env = Catalog.props_env db.Storage.Database.catalog;
    store = None;
    caches = None;
  }

(* Open a durable engine rooted at [dir], running crash recovery
   (newest valid snapshot + WAL replay + index rebuild).  [io_env]
   routes storage I/O through the fault-injection layer (chaos
   harness).  Corruption surfaces as a typed [Storage] error. *)
let open_db ?(io_env : Storage.Io_faults.env option) ~(dir : string)
    (catalog : Catalog.t) : t =
  let store =
    try Storage.Durable.open_db ?env:io_env ~dir catalog
    with Storage.Codec.Storage_corrupt m ->
      raise (Errors.Error (Errors.make Errors.Storage m))
  in
  let db = Storage.Durable.db store in
  { db;
    stats = Optimizer.Stats.create db;
    props_env = Catalog.props_env catalog;
    store = Some store;
    caches = None;
  }

let database (t : t) = t.db
let store (t : t) = t.store
let recovery (t : t) = Option.map Storage.Durable.recovery_info t.store

(* Mutations go through the store when one is attached — journaled
   (write + fsync) before the in-memory apply — and fall back to plain
   table operations for in-memory engines.  Either way the declared
   indexes survive the mutation. *)
let load_table (t : t) (table : string) (rows : Value.t array list) : unit =
  match t.store with
  | Some s -> Storage.Durable.load s table rows
  | None ->
      Storage.Table.load (Storage.Database.table t.db table) rows;
      Storage.Database.build_declared_indexes t.db

let append_row (t : t) (table : string) (row : Value.t array) : unit =
  match t.store with
  | Some s -> Storage.Durable.append s table row
  | None -> Storage.Table.append (Storage.Database.table t.db table) row

(* Snapshot the current state and rotate the WAL; returns the new
   epoch. *)
let snapshot (t : t) : int =
  match t.store with
  | Some s -> Storage.Durable.rotate s
  | None ->
      raise
        (Errors.Error
           (Errors.make Errors.Storage "engine is in-memory: no durable store to snapshot"))

let close_store (t : t) : unit =
  match t.store with Some s -> Storage.Durable.close s | None -> ()

type prepared = prepared_ = {
  sql : string;
  bound : Sqlfront.Binder.bound;
  stages : Normalize.stages;
  plan : Algebra.op;
  plan_cost : float;
  seed_cost : float;
  explored : int;
  config : Optimizer.Config.t;
  trace : Optimizer.Search.trace option;
  quarantined : (string * string) list;
  lint : Analysis.Lint.finding list;
  cache : [ `Hit | `Miss | `Stale ] option;
}

(* Raise a typed [Invalid_plan] error for the first violation, with the
   offending subtree rendered.  [query_resilient] classifies it as
   recoverable, so a plan the verifier rejects degrades to the
   correlated fallback instead of executing a broken tree. *)
let reject_invalid ~(what : string) (sql : string) (vs : Verify.violation list) : unit =
  match vs with
  | [] -> ()
  | v :: _ ->
      let n = List.length vs in
      let msg =
        Printf.sprintf "%s failed integrity verification (%d violation%s)\n%s" what n
          (if n = 1 then "" else "s")
          (Verify.violation_to_string v)
      in
      raise (Errors.Error (Errors.make ~sql Errors.Invalid_plan msg))

(* Convert untyped escapes (failwith, Invalid_argument, Not_found) from
   a pipeline stage into a typed [Errors.Error] tagged with the stage's
   phase.  Typed exceptions pass through untouched and are classified
   later by [Errors.of_exn]. *)
let stage_guard (phase : Errors.phase) (sql : string) (f : unit -> 'a) : 'a =
  try f () with
  | Failure m -> raise (Errors.Error (Errors.make ~sql phase m))
  | Invalid_argument m ->
      raise (Errors.Error (Errors.make ~sql phase ("invalid argument: " ^ m)))
  | Not_found -> raise (Errors.Error (Errors.make ~sql phase "internal lookup failed"))

(* The full parse-to-search pipeline on a pre-bound query; every
   prepare — cached or not — ends up here for the plans it actually
   compiles. *)
let prepare_bound ?(config = Optimizer.Config.full) ?must ?(record_trace = false)
    ?(verify = true) (t : t) ~(sql : string) (bound : Sqlfront.Binder.bound) : prepared =
  let opts =
    { Normalize.env = t.props_env;
      decorrelate = config.decorrelate;
      simplify_oj = config.simplify_oj;
      class2 = config.class2;
    }
  in
  let stages = stage_guard Errors.Normalize sql (fun () -> Normalize.run opts bound.op) in
  if verify then begin
    reject_invalid ~what:"normalized plan" sql (Verify.check stages.normalized);
    reject_invalid ~what:"outerjoin simplification" sql
      (Verify.check_oj_simplification ~before:stages.decorrelated
         ~after:stages.oj_simplified)
  end;
  let outcome =
    stage_guard Errors.Plan sql (fun () ->
        if config.max_rounds = 0 then
          { Optimizer.Search.best = stages.normalized;
            best_cost = Optimizer.Cost.of_plan t.stats stages.normalized;
            explored = 1;
            seed_cost = Optimizer.Cost.of_plan t.stats stages.normalized;
            trace = None;
            quarantined = [];
          }
        else
          Optimizer.Search.optimize ?must ~record_trace ~verify config t.stats
            ~env:t.props_env stages.normalized)
  in
  (* The search verifies each candidate as it is produced, but the final
     choice is re-checked against the normalized schema: the executor
     slices result rows positionally, so a schema drift in the chosen
     plan would silently return wrong columns. *)
  if verify then
    reject_invalid ~what:"chosen plan" sql
      (Verify.check ~expect_schema:(Op.schema stages.normalized) outcome.best);
  let lint =
    Analysis.Lint.run
      ~expect:(Analysis.Lint.of_config config)
      ~env:t.props_env outcome.best
  in
  { sql;
    bound;
    stages;
    plan = outcome.best;
    plan_cost = outcome.best_cost;
    seed_cost = outcome.seed_cost;
    explored = outcome.explored;
    config;
    trace = outcome.trace;
    quarantined = outcome.quarantined;
    lint;
    cache = None;
  }

(* ------------------------------------------------------------------ *)
(* The caching tier.                                                  *)
(* ------------------------------------------------------------------ *)

let enable_cache ?(plan_bytes = 8 * 1024 * 1024) ?(cse_bytes = 64 * 1024 * 1024) (t : t)
    : unit =
  match t.caches with
  | Some _ -> ()
  | None ->
      t.caches <-
        Some
          { plans = Cache.Plan_cache.create ~max_bytes:plan_bytes ();
            cse = Cache.Cse.create ~max_bytes:cse_bytes ();
            verify_skips = Atomic.make 0;
          }

let cache_enabled (t : t) : bool = t.caches <> None

let current_gen (t : t) (table : string) : int =
  match Storage.Database.table_opt t.db table with
  | Some tb -> Storage.Table.generation tb
  | None -> -1

(* The generation vector a plan-cache entry carries: one (table,
   generation) pair per base table the plan reads. *)
let plan_gens (t : t) (plan : Algebra.op) : (string * int) list =
  List.map (fun table -> (table, current_gen t table)) (Cache.Cse.tables_of plan)

(* Rough retained size of a cached template, for the byte budget. *)
let plan_bytes_of (p : prepared) : int =
  512 + (Op.count_ops p.plan * 128) + String.length p.sql

(* Cached prepare: canonicalize, look the canonical form up, rebind a
   template's sentinel constants to this query's literals on a hit.
   The template is compiled with per-slot sentinel literals whose
   pairwise order and equality REPLICATE the real literals' (see
   [Canon.sentinels]); the literals' order pattern is part of the key,
   so every value-dependent conclusion the optimizer drew from the
   sentinels (interval contradiction, bound subsumption) also holds
   for any literal vector the entry is rebound to.  If a slot's
   sentinel no longer appears in the optimized plan, constant folding
   consumed it, so the form is declared [NonParam] and the query is
   cached under an exact key that includes its literal vector.
   Rebinding performs no re-verification: the template was verified
   when the entry was inserted, and the verifier's judgment is
   independent of the values inside [Const] leaves. *)
let cached_prepare (c : caches) ~(config : Optimizer.Config.t) (t : t) (sql : string) :
    prepared =
  let cat = t.db.Storage.Database.catalog in
  let ast = Sqlfront.Parser.parse sql in
  let canon = Cache.Canon.analyze ast in
  let ckey =
    Optimizer.Config.fingerprint config
    ^ "|" ^ canon.key
    ^ "|" ^ Cache.Canon.order_pattern canon.literals
  in
  let cg = current_gen t in
  let finish status p =
    if status = `Hit then Atomic.incr c.verify_skips;
    { p with sql; cache = Some status }
  in
  let exact_path () =
    let ekey = ckey ^ "|exact|" ^ Cache.Canon.signature canon.literals in
    match
      Cache.Plan_cache.find_or_compute c.plans ~key:ekey ~current_gen:cg
        ~compute:(fun () ->
          let p = prepare_bound ~config t ~sql (Sqlfront.Binder.bind_query cat [] ast) in
          (Exact p, plan_gens t p.plan, plan_bytes_of p))
    with
    | `Hit (Exact p) -> finish `Hit p
    | `Miss (Exact p) -> finish `Miss p
    | `Stale (Exact p) -> finish `Stale p
    | _ -> assert false (* exact keys only ever hold [Exact] *)
  in
  let reals = List.map Cache.Canon.value_of_lit canon.literals in
  if
    List.exists Option.is_none reals
    (* unparseable date literal: prepare verbatim so the binder
       reports it *)
    || Cache.Canon.mixed_numeric_tie canon.literals
    (* an int slot numerically equal to a float slot: the sentinel
       grid cannot realize that equality, so a template could bake in
       a strict-order conclusion the reals violate *)
  then exact_path ()
  else begin
    let reals = List.filter_map Fun.id reals in
    let sent_lits = Cache.Canon.sentinels canon.literals in
    let sent_vals = List.filter_map Cache.Canon.value_of_lit sent_lits in
    let opaque_vals = List.filter_map Cache.Canon.value_of_lit canon.opaque in
    (* a sentinel value that also appears as a non-lifted literal would
       make rebinding rewrite the wrong constant — refuse the form *)
    let collision =
      List.length sent_vals <> List.length sent_lits
      || List.exists (fun s -> List.exists (Value.equal s) opaque_vals) sent_vals
    in
    let rebind status (s : slotted) =
      let pairs = List.combine (Array.to_list s.sentinels) reals in
      let swap v =
        Option.map snd (List.find_opt (fun (sv, _) -> Value.equal sv v) pairs)
      in
      let plan =
        if pairs = [] then s.template.plan else Cache.Consts.map_op swap s.template.plan
      in
      finish status { s.template with plan }
    in
    match
      Cache.Plan_cache.find_or_compute c.plans ~key:ckey ~current_gen:cg
        ~compute:(fun () ->
          if collision then (NonParam, [], 64)
          else
            let sq = Cache.Canon.with_literals ast sent_lits in
            let p = prepare_bound ~config t ~sql (Sqlfront.Binder.bind_query cat [] sq) in
            let counts = Cache.Consts.count sent_vals p.plan in
            if List.for_all (fun n -> n > 0) counts then
              ( Param { template = p; sentinels = Array.of_list sent_vals },
                plan_gens t p.plan,
                plan_bytes_of p )
            else (NonParam, [], 64))
    with
    | `Hit NonParam | `Miss NonParam | `Stale NonParam -> exact_path ()
    | `Hit (Param s) -> rebind `Hit s
    | `Miss (Param s) -> rebind `Miss s
    | `Stale (Param s) -> rebind `Stale s
    | `Hit (Exact _) | `Miss (Exact _) | `Stale (Exact _) ->
        assert false (* canonical keys never hold [Exact] *)
  end

let prepare ?(config = Optimizer.Config.full) ?must ?(record_trace = false)
    ?(verify = true) ?(use_cache = true) (t : t) (sql : string) : prepared =
  match t.caches with
  | Some c when use_cache && must = None && (not record_trace) && verify ->
      cached_prepare c ~config t sql
  | _ ->
      prepare_bound ~config ?must ~record_trace ~verify t ~sql
        (Sqlfront.Binder.bind_sql t.db.Storage.Database.catalog sql)

(* Execute a prepared query.  Returns the rows plus execution counters
   (Apply invocations, rows processed) for the benches. *)
type execution = {
  result : Exec.Executor.result;
  apply_invocations : int;
  rows_processed : int;
  bridge_crossings : int;  (** vector mode: subtrees run on the row engine *)
  apply_batches : int;  (** vector mode: batched-Apply outer batches *)
  apply_bindings : int;  (** vector mode: distinct correlation bindings evaluated *)
  apply_dedup_hits : int;  (** vector mode: outer rows that reused a binding *)
  elapsed_s : float;
  metrics : Exec.Metrics.node option;  (** per-operator tree, when collected *)
}

type exec_mode = [ `Row | `Vector ]

let exec_mode_name = function `Row -> "row" | `Vector -> "vector"

let execute ?budget ?faults ?(collect_metrics = false) ?(property_check = false)
    ?(mode = `Row) (t : t) (p : prepared) : execution =
  let metrics = if collect_metrics then Some (Exec.Metrics.create p.plan) else None in
  let ctx = Exec.Executor.make_ctx ?budget ?faults ?metrics t.db in
  (* CseScan leaves resolve through the engine's CSE store; the store
     re-materializes stale entries with a plain row-engine context
     (entry plans are CseScan-free, so this cannot re-enter) *)
  (match t.caches with
  | Some c ->
      let exec plan =
        Exec.Executor.run (Exec.Executor.make_ctx t.db) Exec.Executor.empty_lookup plan
      in
      ctx.cse <- Some (fun id -> Cache.Cse.fetch c.cse ~exec ~current_gen:(current_gen t) id)
  | None -> ());
  let t0 = Unix.gettimeofday () in
  let rows =
    match mode with
    | `Row -> Exec.Executor.run ctx Exec.Executor.empty_lookup p.plan
    | `Vector -> Vexec.run ctx p.plan
  in
  let schema = Op.schema p.plan in
  (* Runtime property cross-check: every fact the symbolic engine
     inferred for the plan root (derived keys, non-nullability, the
     cardinality interval) must hold on the actual result bag — before
     ORDER BY / LIMIT / projection narrowing touch it.  A violation is
     a soundness bug in the property engine or a rewrite, never a data
     problem, so it is reported as an invalid plan. *)
  if property_check then begin
    let fd = Fd.analyze ~env:t.props_env p.plan in
    match Fd.check_rows fd ~schema rows with
    | [] -> ()
    | vs ->
        raise
          (Errors.Error
             (Errors.make ~sql:p.sql Errors.Invalid_plan
                (Printf.sprintf "property cross-check failed (%d violation%s): %s"
                   (List.length vs)
                   (if List.length vs = 1 then "" else "s")
                   (String.concat "; " vs))))
  end;
  let rows = Exec.Executor.sort_rows schema p.bound.order rows in
  let rows = Exec.Executor.truncate p.bound.limit rows in
  let visible = List.length p.bound.outputs in
  let rows =
    if List.length schema > visible then List.map (fun r -> Array.sub r 0 visible) rows
    else rows
  in
  let t1 = Unix.gettimeofday () in
  { result = { col_names = List.map fst p.bound.outputs; rows };
    apply_invocations = ctx.apply_invocations;
    rows_processed = ctx.rows_processed;
    bridge_crossings = ctx.bridge_crossings;
    apply_batches = ctx.apply_batches;
    apply_bindings = ctx.apply_bindings;
    apply_dedup_hits = ctx.apply_dedup_hits;
    elapsed_s = t1 -. t0;
    metrics = Option.map Exec.Metrics.root metrics;
  }

let query ?config ?budget ?faults ?mode ?use_cache (t : t) (sql : string) :
    Exec.Executor.result =
  (execute ?budget ?faults ?mode t (prepare ?config ?use_cache t sql)).result

(* ------------------------------------------------------------------ *)
(* Cache statistics and the batch entry point.                        *)
(* ------------------------------------------------------------------ *)

type cache_stats = {
  plan_hits : int;
  plan_misses : int;
  plan_invalidations : int;
  plan_evictions : int;
  plan_single_flight_waits : int;
  plan_entries : int;
  plan_bytes : int;
  verify_skips : int;
  cse_hits : int;
  cse_materializations : int;
  cse_invalidations : int;
  cse_evictions : int;
  cse_entries : int;
  cse_bytes : int;
}

let cache_stats (t : t) : cache_stats option =
  match t.caches with
  | None -> None
  | Some c ->
      let p = Cache.Plan_cache.stats c.plans in
      let s = Cache.Cse.stats c.cse in
      Some
        { plan_hits = p.hits;
          plan_misses = p.misses;
          plan_invalidations = p.invalidations;
          plan_evictions = p.evictions;
          plan_single_flight_waits = p.single_flight_waits;
          plan_entries = p.entries;
          plan_bytes = p.bytes;
          verify_skips = Atomic.get c.verify_skips;
          cse_hits = s.hits;
          cse_materializations = s.materializations;
          cse_invalidations = s.invalidations;
          cse_evictions = s.evictions;
          cse_entries = s.entries;
          cse_bytes = s.bytes;
        }

(* CSE planning for a batch: tally closed subtrees across all plans by
   structural fingerprint (the store's own identity), score each
   shared one with the greedy benefit heuristic — k occurrences save
   k·cost(subplan) against k·cost(scanning the materialization) plus
   one materialization unless the store already holds rows — and
   replace the winners' occurrences with [CseScan] leaves, outermost
   first.  Substituted plans are re-verified defensively; a plan whose
   substitution fails verification keeps its original form. *)
let plan_batch_cse (c : caches) (t : t) (preps : prepared list) :
    prepared list * int * int =
  let tally : (string, Algebra.op * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : prepared) ->
      List.iter
        (fun (fp, sub) ->
          match Hashtbl.find_opt tally fp with
          | Some (s, n) -> Hashtbl.replace tally fp (s, n + 1)
          | None -> Hashtbl.add tally fp (sub, 1))
        (Cache.Cse.candidates p.plan))
    preps;
  let scored =
    Hashtbl.fold
      (fun fp (sub, k) acc ->
        let known = Cache.Cse.status c.cse fp in
        if k < 2 && known = `Absent then acc
        else
          let cost = Optimizer.Cost.of_plan t.stats sub in
          let rows_hint =
            let env = Optimizer.Card.make_env t.stats sub in
            max 1 (int_of_float (Optimizer.Card.estimate env sub))
          in
          let scan =
            Optimizer.Cost.of_plan t.stats
              (Algebra.CseScan { id = "?"; cols = Op.schema sub; rows_hint })
          in
          let mat = match known with `Materialized -> 0.0 | _ -> cost in
          let k' = float_of_int k in
          let benefit = (k' *. cost) -. (k' *. scan) -. mat in
          if benefit > 0.0 then (benefit, fp, sub, cost, rows_hint) :: acc else acc)
      tally []
  in
  (* Chosen winners, keyed by fingerprint.  Scored subtrees overlap
     (a winner can sit inside another winner): substitution is
     top-down, so only the outermost match in each plan is planted —
     entries are interned and materialized lazily, on first actual
     substitution, never for a shadowed inner winner. *)
  let chosen : (string, Algebra.op * float * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, fp, sub, cost, rows_hint) ->
      Hashtbl.replace chosen fp (sub, cost, rows_hint))
    scored;
  if Hashtbl.length chosen = 0 then (preps, 0, 0)
  else begin
    let used : (string, string * int) Hashtbl.t = Hashtbl.create 8 in
    let nsub = ref 0 in
    let rec subst (o : Algebra.op) : Algebra.op =
      match o with
      | Algebra.TableScan _ | Algebra.ConstTable _ | Algebra.SegmentHole _
      | Algebra.CseScan _ ->
          o
      | _ -> (
          let fp = Cache.Cse.fingerprint o in
          match Hashtbl.find_opt chosen fp with
          | Some (sub, cost, rows_hint) ->
              let id, rows_hint =
                match Hashtbl.find_opt used fp with
                | Some cached -> cached
                | None ->
                    let id = Cache.Cse.intern c.cse ~plan:sub ~cost ~rows_hint in
                    Hashtbl.replace used fp (id, rows_hint);
                    (id, rows_hint)
              in
              incr nsub;
              Algebra.CseScan { id; cols = Op.schema o; rows_hint }
          | None -> Op.with_children o (List.map subst (Op.children o)))
    in
    let preps' =
      List.map
        (fun (p : prepared) ->
          let before = !nsub in
          let plan' = subst p.plan in
          if !nsub = before then p
          else
            match Verify.check ~expect_schema:(Op.schema p.plan) plan' with
            | [] -> { p with plan = plan' }
            | _ ->
                nsub := before;
                p)
        preps
    in
    (* pre-materialize every planted entry so statement execution only
       scans *)
    let exec plan =
      Exec.Executor.run (Exec.Executor.make_ctx t.db) Exec.Executor.empty_lookup plan
    in
    Hashtbl.iter
      (fun _ (id, _) ->
        ignore (Cache.Cse.fetch c.cse ~exec ~current_gen:(current_gen t) id))
      used;
    (preps', Hashtbl.length used, !nsub)
  end

type batch_item = {
  item_sql : string;
  item_prepared : prepared;
  item_execution : execution;
}

type batch = {
  items : batch_item list;
  cse_count : int;  (** CSE entries selected for this batch *)
  cse_substitutions : int;  (** CseScan occurrences planted across the batch *)
  batch_elapsed_s : float;
}

(* Batch entry point: prepare the whole workload (through the plan
   cache when enabled), pick common subexpressions jointly, then
   execute in order — materializations first (inside
   [plan_batch_cse]), statements after, so every CseScan reads rows
   that already exist. *)
let query_many ?config ?budget ?faults ?mode ?(use_cache = true) (t : t)
    (sqls : string list) : batch =
  let t0 = Unix.gettimeofday () in
  let preps = List.map (prepare ?config ~use_cache t) sqls in
  let preps, cse_count, cse_substitutions =
    match t.caches with
    | Some c when use_cache -> plan_batch_cse c t preps
    | _ -> (preps, 0, 0)
  in
  let items =
    List.map2
      (fun sql p ->
        { item_sql = sql;
          item_prepared = p;
          item_execution = execute ?budget ?faults ?mode t p;
        })
      sqls preps
  in
  { items; cse_count; cse_substitutions; batch_elapsed_s = Unix.gettimeofday () -. t0 }

(* ------------------------------------------------------------------ *)
(* Checked entry points: typed diagnostics instead of exceptions.     *)
(* ------------------------------------------------------------------ *)

let prepare_checked ?config ?must (t : t) (sql : string) : (prepared, Errors.t) result =
  Errors.protect ~sql (fun () -> prepare ?config ?must t sql)

let execute_checked ?budget ?faults (t : t) (p : prepared) : (execution, Errors.t) result =
  Errors.protect ~sql:p.sql (fun () -> execute ?budget ?faults t p)

let query_checked ?config ?budget ?faults (t : t) (sql : string) :
    (Exec.Executor.result, Errors.t) result =
  Errors.protect ~sql (fun () -> query ?config ?budget ?faults t sql)

(* ------------------------------------------------------------------ *)
(* Graceful degradation: the correlated plan as a fallback replica.   *)
(* ------------------------------------------------------------------ *)

(* The correlated (Apply-as-written) plan is a built-in semantic twin
   of every decorrelated plan — the orthogonality of the paper.  When
   the optimized plan dies at runtime (executor error, budget trip,
   injected fault) or fails to normalize/plan, retry the same SQL under
   [fallback] and report which path served the result. *)
type resilient = {
  execution : execution;
  served_by : string;  (** "config/engine" that produced the result *)
  degraded : bool;  (** true when the fallback path served *)
  primary_error : Errors.t option;  (** why the primary path failed *)
}

let query_resilient ?(config = Optimizer.Config.full)
    ?(fallback = Optimizer.Config.correlated_only) ?budget ?faults ?(mode = `Row) (t : t)
    (sql : string) : resilient =
  let attempt config mode = execute ?budget ?faults ~mode t (prepare ~config t sql) in
  match Errors.protect ~sql (fun () -> attempt config mode) with
  | Ok e ->
      { execution = e;
        served_by = Optimizer.Config.name_of config ^ "/" ^ exec_mode_name mode;
        degraded = false;
        primary_error = None;
      }
  | Result.Error err
    when Errors.recoverable err && (config <> fallback || mode <> `Row) -> (
      (* the fallback is always the row engine: the semantic oracle *)
      match Errors.protect ~sql (fun () -> attempt fallback `Row) with
      | Ok e ->
          { execution = e;
            served_by = Optimizer.Config.name_of fallback ^ "/" ^ exec_mode_name `Row;
            degraded = true;
            primary_error = Some err;
          }
      | Result.Error err2 -> raise (Errors.Error err2))
  | Result.Error err -> raise (Errors.Error err)

let query_resilient_checked ?config ?fallback ?budget ?faults ?mode (t : t) (sql : string)
    : (resilient, Errors.t) result =
  Errors.protect ~sql (fun () -> query_resilient ?config ?fallback ?budget ?faults ?mode t sql)

(* ------------------------------------------------------------------ *)
(* Differential checking: candidate plan vs the correlated oracle.    *)
(* ------------------------------------------------------------------ *)

type check_report = {
  check_sql : string;
  candidate : string;  (** config name of the plan under test *)
  reference : string;  (** config name of the oracle *)
  agree : bool;
  candidate_rows : int;
  reference_rows : int;
  only_candidate : string list;  (** sample rows missing from the reference (≤ 5) *)
  only_reference : string list;  (** sample rows missing from the candidate (≤ 5) *)
  lint_errors : string list;
      (** rendered ERROR-severity lint findings on the candidate plan;
          non-empty means the plan is statically broken even if the
          result bags agree *)
}

(* [float_digits] rounds floats to that many significant digits before
   comparison: plans that differ in join order sum floats in different
   orders, and bit-exact equality would flag the resulting last-ulp
   drift as a semantic disagreement. *)
let render_row ?float_digits (r : Exec.Executor.row) : string =
  let value_to_string v =
    match (v, float_digits) with
    | Value.Float f, Some d -> Printf.sprintf "%.*g" d f
    | _ -> Value.to_string v
  in
  String.concat "|" (Array.to_list (Array.map value_to_string r))

(* multiset difference of two sorted string lists: elements of [a] not
   matched by an occurrence in [b] *)
let rec bag_diff (a : string list) (b : string list) : string list =
  match (a, b) with
  | [], _ -> []
  | a, [] -> a
  | x :: a', y :: b' ->
      if x = y then bag_diff a' b'
      else if x < y then x :: bag_diff a' b
      else bag_diff a b'

let take n l =
  let rec go k = function x :: rest when k > 0 -> x :: go (k - 1) rest | _ -> [] in
  go n l

(* Run the same SQL under both configurations and compare result bags.
   Used by the CLI `check` subcommand and the differential tests: any
   disagreement is a semantic bug in normalization or optimization. *)
(* [mode] selects the engine for the candidate side only; the reference
   always runs row-at-a-time, so `~mode:\`Vector` doubles as the
   row-vs-vector differential harness (same config on both sides pins
   any disagreement on the vectorized engine alone). *)
let check ?(candidate = Optimizer.Config.full)
    ?(reference = Optimizer.Config.correlated_only) ?budget ?float_digits
    ?property_check ?(mode = `Row) (t : t) (sql : string) : check_report =
  let pc = prepare ~config:candidate t sql in
  let c = (execute ?budget ?property_check ~mode t pc).result in
  let r = (execute ?budget t (prepare ~config:reference t sql)).result in
  let cb = List.sort compare (List.map (render_row ?float_digits) c.rows) in
  let rb = List.sort compare (List.map (render_row ?float_digits) r.rows) in
  { check_sql = sql;
    candidate =
      (Optimizer.Config.name_of candidate
      ^ match mode with `Row -> "" | `Vector -> "/vector");
    reference = Optimizer.Config.name_of reference;
    agree = cb = rb;
    candidate_rows = List.length cb;
    reference_rows = List.length rb;
    only_candidate = take 5 (bag_diff cb rb);
    only_reference = take 5 (bag_diff rb cb);
    lint_errors =
      List.map Analysis.Lint.finding_to_string (Analysis.Lint.errors pc.lint);
  }

let format_check_report (r : check_report) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %s (%d rows) vs %s (%d rows): %s\n" r.check_sql r.candidate
       r.candidate_rows r.reference r.reference_rows
       (if r.agree then "AGREE" else "MISMATCH"));
  List.iter
    (fun l -> Buffer.add_string b (Printf.sprintf "  lint: %s\n" l))
    r.lint_errors;
  if not r.agree then begin
    List.iter
      (fun row -> Buffer.add_string b (Printf.sprintf "  only in %s: %s\n" r.candidate row))
      r.only_candidate;
    List.iter
      (fun row -> Buffer.add_string b (Printf.sprintf "  only in %s: %s\n" r.reference row))
      r.only_reference
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

(* Per-node property annotations for EXPLAIN: the plan tree again, one
   line per operator, carrying what the symbolic engine proved about
   its output — cardinality interval, derived keys, FD count, the
   non-nullable column set. *)
let plan_properties ~(env : Props.env) (plan : Algebra.op) : string =
  let memo = Fd.create_memo () in
  let b = Buffer.create 512 in
  let rec walk depth o =
    let fd = Fd.analyze ~env ~memo o in
    Buffer.add_string b
      (Printf.sprintf "%s%s  %s\n"
         (String.make (2 * depth) ' ')
         (Pp.label o)
         (Fd.summary fd ~schema:(Op.schema o)));
    List.iter (walk (depth + 1)) (Op.children o)
  in
  walk 0 plan;
  Buffer.contents b

let plan_properties_json ~(env : Props.env) (plan : Algebra.op) : string =
  let memo = Fd.create_memo () in
  let items = ref [] in
  let rec walk depth o =
    let fd = Fd.analyze ~env ~memo o in
    let keys = Fd.derived_keys fd ~schema:(Op.schema o) in
    items :=
      Printf.sprintf
        "{\"node\":%s,\"depth\":%d,\"card\":%s,\"keys\":[%s],\"fds\":%d,\"nonnull\":%s,\"contradiction\":%b}"
        (Exec.Metrics.json_string (Pp.label o))
        depth
        (Exec.Metrics.json_string (Fd.interval_to_string fd.Fd.card))
        (String.concat ","
           (List.map (fun k -> Exec.Metrics.json_string (Fd.cols_to_string k)) keys))
        (List.length fd.Fd.fds)
        (Exec.Metrics.json_string (Fd.cols_to_string fd.Fd.nonnull))
        (Fd.contradiction fd)
      :: !items;
    List.iter (walk (depth + 1)) (Op.children o)
  in
  walk 0 plan;
  "[" ^ String.concat "," (List.rev !items) ^ "]"

(* Cache provenance of a prepared statement, for EXPLAIN output. *)
let plan_source (p : prepared) : string =
  match p.cache with
  | None -> "optimizer (cache bypassed)"
  | Some `Hit -> "plan cache hit (template rebound, verification skipped)"
  | Some `Miss -> "optimizer (plan cache miss, template inserted)"
  | Some `Stale -> "optimizer (cached plan stale, recomputed)"

let explain ?config ?(properties = true) (t : t) (sql : string) : string =
  let p = prepare ?config t sql in
  let b = Buffer.create 1024 in
  if t.caches <> None then
    Buffer.add_string b (Printf.sprintf "== plan source ==\n%s\n" (plan_source p));
  Buffer.add_string b "== subquery class ==\n";
  Buffer.add_string b (Normalize.Classify.to_string p.stages.subquery_class);
  Buffer.add_string b "\n== normalized ==\n";
  Buffer.add_string b (Pp.to_string p.stages.normalized);
  Buffer.add_string b
    (Printf.sprintf "== chosen plan (cost %.0f, seed %.0f, %d alternatives) ==\n"
       p.plan_cost p.seed_cost p.explored);
  Buffer.add_string b (Pp.to_string p.plan);
  if properties then begin
    Buffer.add_string b "== plan properties ==\n";
    Buffer.add_string b (plan_properties ~env:t.props_env p.plan)
  end;
  Buffer.add_string b "== lint ==\n";
  Buffer.add_string b (Analysis.Lint.render p.lint);
  Buffer.contents b

(* EXPLAIN ANALYZE: compile with the search trace on, execute with the
   per-operator metrics tree, and render both.  [times:false] drops
   wall-clock figures so tests can compare output verbatim. *)
let explain_analyze ?config ?budget ?(times = true) ?(properties = true) ?(mode = `Row)
    (t : t) (sql : string) : string =
  let p = prepare ?config ~record_trace:true t sql in
  let e = execute ?budget ~collect_metrics:true ~mode t p in
  let b = Buffer.create 2048 in
  Buffer.add_string b "== subquery class ==\n";
  Buffer.add_string b (Normalize.Classify.to_string p.stages.subquery_class);
  (* row-mode output is unchanged so golden tests stay stable; vector
     mode announces itself since batch counters appear in the tree *)
  (match mode with
  | `Row -> ()
  | `Vector -> Buffer.add_string b "\n== execution mode: vector ==");
  Buffer.add_string b
    (Printf.sprintf "\n== chosen plan, analyzed (cost %.0f, seed %.0f, %d alternatives) ==\n"
       p.plan_cost p.seed_cost p.explored);
  (match e.metrics with
  | Some m -> Buffer.add_string b (Exec.Metrics.render ~times m)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "\n%d rows, %d rows processed, %d apply invocations%s\n"
       (List.length e.result.rows)
       e.rows_processed e.apply_invocations
       (if times then Printf.sprintf ", %.3fs" e.elapsed_s else ""));
  Buffer.add_string b "\n== optimizer trace ==\n";
  (match p.trace with
  | Some tr -> Buffer.add_string b (Optimizer.Search.trace_to_string tr)
  | None -> Buffer.add_string b "(cost-based search disabled)\n");
  if properties then begin
    Buffer.add_string b "\n== plan properties ==\n";
    Buffer.add_string b (plan_properties ~env:t.props_env p.plan)
  end;
  Buffer.add_string b "\n== lint (chosen plan) ==\n";
  Buffer.add_string b (Analysis.Lint.render p.lint);
  Buffer.contents b

(* Machine-readable EXPLAIN: plan, costs and trace; with [analyze] also
   the execution counters and the per-operator metrics tree. *)
let explain_json ?config ?budget ?(analyze = false) ?(properties = true) ?(mode = `Row)
    (t : t) (sql : string) : string =
  (* recording a trace forces a fresh search, so only ask for one when
     no caching tier could serve the plan instead *)
  let p = prepare ?config ~record_trace:(t.caches = None) t sql in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{";
  Buffer.add_string b (Printf.sprintf "\"sql\":%s," (Exec.Metrics.json_string sql));
  Buffer.add_string b
    (Printf.sprintf "\"plan_source\":%s," (Exec.Metrics.json_string (plan_source p)));
  Buffer.add_string b
    (Printf.sprintf "\"config\":%s,"
       (Exec.Metrics.json_string (Optimizer.Config.name_of p.config)));
  Buffer.add_string b
    (Printf.sprintf "\"subquery_class\":%s,"
       (Exec.Metrics.json_string (Normalize.Classify.to_string p.stages.subquery_class)));
  Buffer.add_string b
    (Printf.sprintf "\"plan_cost\":%.2f,\"seed_cost\":%.2f,\"explored\":%d," p.plan_cost
       p.seed_cost p.explored);
  Buffer.add_string b
    (Printf.sprintf "\"plan\":%s," (Exec.Metrics.json_string (Pp.to_string p.plan)));
  Buffer.add_string b
    (Printf.sprintf "\"trace\":%s,"
       (match p.trace with
       | Some tr -> Optimizer.Search.trace_to_json tr
       | None -> "null"));
  Buffer.add_string b (Printf.sprintf "\"lint\":%s," (Analysis.Lint.to_json p.lint));
  Buffer.add_string b
    (Printf.sprintf "\"properties\":%s,"
       (if properties then plan_properties_json ~env:t.props_env p.plan else "null"));
  (if analyze then begin
     let e = execute ?budget ~collect_metrics:true ~mode t p in
     Buffer.add_string b
       (Printf.sprintf
          "\"execution\":{\"exec_mode\":%s,\"elapsed_s\":%.6f,\"rows\":%d,\"rows_processed\":%d,\"apply_invocations\":%d,\"metrics\":%s}"
          (Exec.Metrics.json_string (exec_mode_name mode))
          e.elapsed_s
          (List.length e.result.rows)
          e.rows_processed e.apply_invocations
          (match e.metrics with Some m -> Exec.Metrics.to_json m | None -> "null"))
   end
   else Buffer.add_string b "\"execution\":null");
  Buffer.add_string b "}";
  Buffer.contents b

let explain_stages ?config (t : t) (sql : string) : string =
  let p = prepare ?config t sql in
  let b = Buffer.create 2048 in
  let stage name op =
    Buffer.add_string b ("== " ^ name ^ " ==\n");
    Buffer.add_string b (Pp.to_string op)
  in
  stage "bound (mutual recursion)" p.stages.bound;
  stage "apply introduced" p.stages.applied;
  stage "decorrelated" p.stages.decorrelated;
  stage "outerjoin simplified" p.stages.oj_simplified;
  stage "normalized" p.stages.normalized;
  stage "chosen plan" p.plan;
  Buffer.contents b

(* Print a result as an aligned table (CLI / examples). *)
let format_result (r : Exec.Executor.result) : string =
  let cells =
    r.col_names
    :: List.map (fun row -> List.map Value.to_string (Array.to_list row)) r.rows
  in
  let ncols = List.length r.col_names in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i s -> if i < ncols then widths.(i) <- max widths.(i) (String.length s)))
    cells;
  let line l =
    String.concat " | " (List.mapi (fun i s -> Printf.sprintf "%-*s" widths.(i) s) l)
  in
  let sep =
    String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  match cells with
  | header :: rows ->
      String.concat "\n" ((line header :: sep :: List.map line rows) @ [])
      ^ Printf.sprintf "\n(%d rows)" (List.length rows)
  | [] -> "(empty)"
