(** Typed errors for the whole query pipeline.

    Every failure a query can hit is classified into one structured
    value, so the engine's checked entry points can return diagnostics
    instead of leaking ad-hoc exceptions, and the degradation logic can
    decide which failures are worth retrying on the correlated plan.

    Recoverability is the key split: {!Runtime}/{!Budget}/{!Fault}
    errors are properties of the chosen plan or its execution, so a
    different plan for the same SQL may succeed; {!Lex}/{!Parse}/
    {!Bind} errors are properties of the query text and retrying is
    pointless. *)

type phase =
  | Lex  (** tokenizer rejection *)
  | Parse  (** grammar rejection *)
  | Bind  (** name resolution / typing *)
  | Normalize  (** Apply introduction / removal, simplification *)
  | Plan  (** cost-based search *)
  | Invalid_plan
      (** a plan failed the integrity verifier ({!Relalg.Verify}) *)
  | Runtime  (** executor error (e.g. Max1row violation) *)
  | Budget  (** budget exhausted mid-execution *)
  | Fault  (** injected fault (testing harness) *)
  | Storage
      (** durable-store corruption ({!Storage.Codec.Storage_corrupt}):
          the on-disk state cannot be restored to an exact committed
          prefix — unrecoverable *)

type t = {
  phase : phase;
  message : string;
  position : int option;  (** character offset into the SQL text, when known *)
  sql : string option;  (** the offending query text, when known *)
}

exception Error of t

val make : ?position:int -> ?sql:string -> phase -> string -> t
val phase_to_string : phase -> string

(** Excerpt of [sql] around a character position, with a caret line. *)
val context_snippet : string -> int -> string

val to_string : t -> string

(** A recoverable error may vanish under a different plan for the same
    SQL; an unrecoverable one is wrong however it is planned. *)
val recoverable : t -> bool

(** Classify any exception the pipeline can raise; [None] for
    exceptions outside the pipeline vocabulary. *)
val of_exn : ?sql:string -> exn -> t option

(** Run the thunk, converting every pipeline exception into
    [Result.Error].  Foreign exceptions still propagate. *)
val protect : ?sql:string -> (unit -> 'a) -> ('a, t) result
