(* Typed errors for the whole query pipeline.

   Every failure a query can hit — lexing, parsing, binding,
   normalization, planning, execution, budget exhaustion, injected
   faults — is classified into one structured value, so the engine's
   checked entry points ([Engine.prepare_checked], [execute_checked],
   [query_checked]) can return diagnostics instead of leaking ad-hoc
   exceptions, and the degradation logic can decide which failures are
   worth retrying on the correlated plan.

   Recoverability is the key split: [Runtime]/[Budget]/[Fault] errors
   are properties of the *chosen plan or its execution*, so a different
   plan for the same SQL may succeed; [Lex]/[Parse]/[Bind] errors are
   properties of the query text and retrying is pointless. *)

type phase =
  | Lex  (** tokenizer rejection *)
  | Parse  (** grammar rejection *)
  | Bind  (** name resolution / typing *)
  | Normalize  (** Apply introduction / removal, simplification *)
  | Plan  (** cost-based search *)
  | Invalid_plan
      (** a plan failed the integrity verifier ({!Relalg.Verify}) *)
  | Runtime  (** executor error (e.g. Max1row violation) *)
  | Budget  (** budget exhausted mid-execution *)
  | Fault  (** injected fault (testing harness) *)
  | Storage
      (** durable-store corruption ({!Storage.Codec.Storage_corrupt}):
          the on-disk state cannot be restored to an exact committed
          prefix *)

type t = {
  phase : phase;
  message : string;
  position : int option;  (** character offset into the SQL text, when known *)
  sql : string option;  (** the offending query text, when known *)
}

exception Error of t

let make ?position ?sql phase message = { phase; message; position; sql }

let phase_to_string = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Bind -> "bind"
  | Normalize -> "normalize"
  | Plan -> "plan"
  | Invalid_plan -> "invalid-plan"
  | Runtime -> "runtime"
  | Budget -> "budget"
  | Fault -> "fault"
  | Storage -> "storage"

(* Point at the offending character:  "select 1 ^ 2"  with a caret line. *)
let context_snippet (sql : string) (pos : int) : string =
  let n = String.length sql in
  let pos = max 0 (min pos (max 0 (n - 1))) in
  let from = max 0 (pos - 30) and upto = min n (pos + 30) in
  let excerpt = String.sub sql from (upto - from) in
  let excerpt = String.map (function '\n' | '\t' -> ' ' | c -> c) excerpt in
  Printf.sprintf "%s\n%s^" excerpt (String.make (pos - from) ' ')

let to_string (e : t) : string =
  let base = Printf.sprintf "%s error: %s" (phase_to_string e.phase) e.message in
  match (e.position, e.sql) with
  | Some p, Some sql -> Printf.sprintf "%s\n  at position %d:\n%s" base p (context_snippet sql p)
  | Some p, None -> Printf.sprintf "%s (at position %d)" base p
  | None, _ -> base

(* A recoverable error may vanish under a different plan for the same
   SQL; an unrecoverable one is wrong however it is planned. *)
let recoverable (e : t) : bool =
  match e.phase with
  | Runtime | Budget | Fault | Normalize | Plan | Invalid_plan -> true
  (* a corrupt store is wrong however the query is planned *)
  | Lex | Parse | Bind | Storage -> false

(* Classify any exception the pipeline can raise.  [sql] enriches the
   diagnostic with source context when available. *)
let of_exn ?sql (exn : exn) : t option =
  match exn with
  | Error e -> Some { e with sql = (match e.sql with None -> sql | s -> s) }
  | Sqlfront.Lexer.Lex_error (m, pos) -> Some (make ~position:pos ?sql Lex m)
  | Sqlfront.Parser.Parse_error m -> Some (make ?sql Parse m)
  | Sqlfront.Binder.Bind_error m -> Some (make ?sql Bind m)
  | Normalize.Decorrelate.Internal_error m -> Some (make ?sql Normalize m)
  | Exec.Executor.Runtime_error m -> Some (make ?sql Runtime m)
  | Exec.Budget.Exceeded (trip, progress) ->
      Some (make ?sql Budget (Exec.Budget.to_string trip progress))
  | Exec.Faults.Injected { kind; call } ->
      Some (make ?sql Fault (Exec.Faults.injected_to_string kind call))
  | Storage.Codec.Storage_corrupt m -> Some (make ?sql Storage m)
  | Storage.Io_faults.Crash { kind; op } ->
      Some (make ?sql Fault (Storage.Io_faults.crash_to_string kind op))
  | _ -> None

(* Run [f], converting every pipeline exception into [Result.Error].
   Exceptions outside the pipeline vocabulary (Stack_overflow,
   Out_of_memory, asserts) still propagate. *)
let protect ?sql (f : unit -> 'a) : ('a, t) result =
  try Ok (f ()) with
  | exn -> ( match of_exn ?sql exn with Some e -> Result.Error e | None -> raise exn)
