(** The query engine facade: parse → bind → normalize → cost-based
    optimization → execution (the compilation pipeline of the paper's
    Section 4). *)

open Relalg

(** Typed pipeline errors (see {!Errors.t}); the checked entry points
    below return them instead of raising. *)
module Errors = Errors

type t

val create : Storage.Database.t -> t

(** {2 Durability}

    An engine can be backed by a {!Storage.Durable} store: mutations
    are journaled to a write-ahead log before they apply, and
    {!snapshot} writes a checksummed full-state anchor.  [open_db]
    runs crash recovery (newest valid snapshot, WAL replay up to the
    first torn record, declared-index rebuild) before serving. *)

(** Open a durable engine rooted at [dir].  [io_env] routes storage
    I/O through the fault-injection layer (chaos harness only).
    @raise Errors.Error with phase [Storage] when the on-disk state
    cannot be restored to an exact committed prefix. *)
val open_db : ?io_env:Storage.Io_faults.env -> dir:string -> Catalog.t -> t

val database : t -> Storage.Database.t

(** The durable backing, when opened with {!open_db}. *)
val store : t -> Storage.Durable.t option

(** Recovery report from {!open_db}; [None] for in-memory engines. *)
val recovery : t -> Storage.Durable.recovery option

(** Replace a table's contents.  Durable engines journal (write +
    fsync) before applying; declared indexes are maintained. *)
val load_table : t -> string -> Relalg.Value.t array list -> unit

(** Append one row; same durability contract as {!load_table}. *)
val append_row : t -> string -> Relalg.Value.t array -> unit

(** Write a snapshot of the current state and rotate the WAL; returns
    the new epoch.
    @raise Errors.Error with phase [Storage] on in-memory engines. *)
val snapshot : t -> int

val close_store : t -> unit

type prepared = {
  sql : string;
  bound : Sqlfront.Binder.bound;
  stages : Normalize.stages;  (** normalization pipeline snapshots *)
  plan : Algebra.op;  (** the chosen plan *)
  plan_cost : float;
  seed_cost : float;
  explored : int;  (** alternatives considered by the search *)
  config : Optimizer.Config.t;
  trace : Optimizer.Search.trace option;  (** rule firings, when requested *)
  quarantined : (string * string) list;
      (** rules the verifier disabled during the search (rule, violation) *)
  lint : Analysis.Lint.finding list;
      (** static findings on the chosen plan, most severe first *)
  cache : [ `Hit | `Miss | `Stale ] option;
      (** plan-cache outcome; [None] when the statement bypassed the
          cache (cache disabled, [use_cache:false], or a non-default
          prepare such as [must]/[record_trace]/[verify:false]) *)
}

(** Compile a SQL string.  [config] selects the optimizer technology
    level (default {!Optimizer.Config.full}); [must] restricts the
    chosen plan (see {!Optimizer.Search.optimize}); [record_trace]
    keeps the per-round rule-firing trace of the search.

    When the engine's caching tier is enabled ({!enable_cache}) and
    [use_cache] is [true] (the default), the statement is normalized
    to a parameterized canonical form and looked up in the plan cache:
    a hit skips parse-to-search and rebinds the cached template's
    parameter slots with this statement's literals.  Cached templates
    were verified at insert, so verification is skipped on hits (the
    skip is counted in {!cache_stats}).

    [verify] (default [true]) runs the {!Relalg.Verify} integrity
    checker at three points: on the normalized plan, across the
    outerjoin-simplification step, and on the final chosen plan (against
    the normalized schema).  Each rule-emitted search candidate is also
    verified (see {!Optimizer.Search.optimize}).  A failure raises a
    typed {!Errors.t} with phase [Invalid_plan] — recoverable, so
    [query_resilient] degrades to the correlated fallback plan instead
    of executing a broken tree.
    @raise Sqlfront.Parser.Parse_error / Sqlfront.Binder.Bind_error *)
val prepare :
  ?config:Optimizer.Config.t ->
  ?must:(Algebra.op -> bool) ->
  ?record_trace:bool ->
  ?verify:bool ->
  ?use_cache:bool ->
  t ->
  string ->
  prepared

(** {2 Caching tier}

    An engine can carry a shared caching tier: a parameterized plan
    cache (canonical form → optimized template, generation-vector
    invalidation, LRU + byte budget, single-flight computation) and a
    CSE store of materialized common subexpressions served through the
    [CseScan] access path. *)

(** Switch the caching tier on.  [plan_bytes] (default 8 MiB) budgets
    the plan cache, [cse_bytes] (default 64 MiB) the materialized
    rows.  Idempotent: calling it again keeps the existing caches. *)
val enable_cache : ?plan_bytes:int -> ?cse_bytes:int -> t -> unit

val cache_enabled : t -> bool

type cache_stats = {
  plan_hits : int;
  plan_misses : int;
  plan_invalidations : int;  (** entries dropped because a table generation moved *)
  plan_evictions : int;  (** entries dropped by the byte budget *)
  plan_single_flight_waits : int;  (** lookups served by a concurrent compute *)
  plan_entries : int;
  plan_bytes : int;
  verify_skips : int;  (** verifier runs skipped on plan-cache hits *)
  cse_hits : int;
  cse_materializations : int;
  cse_invalidations : int;
  cse_evictions : int;
  cse_entries : int;
  cse_bytes : int;
}

(** [None] until {!enable_cache}. *)
val cache_stats : t -> cache_stats option

type execution = {
  result : Exec.Executor.result;
  apply_invocations : int;  (** correlated inner evaluations performed *)
  rows_processed : int;
  bridge_crossings : int;
      (** vector mode: subtrees handed to the row interpreter; 0 means
          the plan ran fully vectorized *)
  apply_batches : int;  (** vector mode: batched-Apply outer batches *)
  apply_bindings : int;  (** vector mode: distinct correlation bindings evaluated *)
  apply_dedup_hits : int;  (** vector mode: outer rows that reused a binding *)
  elapsed_s : float;
  metrics : Exec.Metrics.node option;  (** per-operator tree, when collected *)
}

(** Execution engine selector: [`Row] is the materializing row
    interpreter (the semantic oracle), [`Vector] the batch-at-a-time
    columnar engine of {!Vexec}, which bridges unsupported subtrees
    back to the row interpreter.  Both produce the same bags on every
    plan. *)
type exec_mode = [ `Row | `Vector ]

val exec_mode_name : exec_mode -> string

(** [collect_metrics] attributes invocations, rows and wall time to a
    per-operator metrics tree returned in {!execution.metrics};
    [mode] (default [`Row]) selects the execution engine.
    [property_check] asserts every property the symbolic engine
    ({!Relalg.Fd}) inferred for the plan — derived keys,
    non-nullability, the cardinality interval — against the actual
    result bag before ORDER BY / LIMIT / narrowing; a violation raises
    a typed [Invalid_plan] error (it is a soundness bug, not a data
    problem).
    @raise Exec.Executor.Runtime_error for Max1row violations.
    @raise Exec.Budget.Exceeded when a budget limit trips.
    @raise Exec.Faults.Injected under an armed fault plan. *)
val execute :
  ?budget:Exec.Budget.t ->
  ?faults:Exec.Faults.t ->
  ?collect_metrics:bool ->
  ?property_check:bool ->
  ?mode:exec_mode ->
  t ->
  prepared ->
  execution

(** [prepare] + [execute]. *)
val query :
  ?config:Optimizer.Config.t ->
  ?budget:Exec.Budget.t ->
  ?faults:Exec.Faults.t ->
  ?mode:exec_mode ->
  ?use_cache:bool ->
  t ->
  string ->
  Exec.Executor.result

(** {2 Multi-query optimization} *)

type batch_item = {
  item_sql : string;
  item_prepared : prepared;
  item_execution : execution;
}

type batch = {
  items : batch_item list;  (** one per input statement, same order *)
  cse_count : int;  (** common subexpressions selected for this batch *)
  cse_substitutions : int;  (** [CseScan] leaves planted across the batch *)
  batch_elapsed_s : float;
}

(** Optimize and execute a workload jointly.  All statements are
    prepared (through the plan cache when enabled), closed subtrees
    shared across the batch are tallied by structural fingerprint, and
    the ones whose greedy benefit — occurrences × (subplan cost −
    scan cost) − materialization cost — is positive are materialized
    once in the CSE store and replaced by [CseScan] leaves everywhere
    they occur.  Materializations run before any statement, so
    execution order within the batch is free.  Without an enabled
    cache (or with [use_cache:false]) this degenerates to sequential
    prepare + execute. *)
val query_many :
  ?config:Optimizer.Config.t ->
  ?budget:Exec.Budget.t ->
  ?faults:Exec.Faults.t ->
  ?mode:exec_mode ->
  ?use_cache:bool ->
  t ->
  string list ->
  batch

(** {2 Checked entry points}

    Same pipeline, but every failure the pipeline vocabulary knows
    about (lex/parse/bind/normalize/plan/runtime/budget/fault) comes
    back as a structured {!Errors.t} instead of an exception. *)

val prepare_checked :
  ?config:Optimizer.Config.t ->
  ?must:(Algebra.op -> bool) ->
  t ->
  string ->
  (prepared, Errors.t) result

val execute_checked :
  ?budget:Exec.Budget.t -> ?faults:Exec.Faults.t -> t -> prepared -> (execution, Errors.t) result

val query_checked :
  ?config:Optimizer.Config.t ->
  ?budget:Exec.Budget.t ->
  ?faults:Exec.Faults.t ->
  t ->
  string ->
  (Exec.Executor.result, Errors.t) result

(** {2 Graceful degradation}

    The correlated (Apply-as-written) plan is a built-in semantic twin
    of every optimized plan; when the optimized plan fails recoverably
    (runtime error, budget trip, injected fault, normalize/plan bug)
    the same SQL is retried under [fallback]. *)

type resilient = {
  execution : execution;
  served_by : string;  (** "config/engine" that produced the result *)
  degraded : bool;  (** true when the fallback path served *)
  primary_error : Errors.t option;  (** why the primary path failed *)
}

(** [mode] (default [`Row]) selects the engine for the primary path
    only; the fallback always runs the row engine — the semantic
    oracle — so degradation steps down both the plan and the engine.
    @raise Errors.Error when the primary failure is unrecoverable or
    the fallback fails too. *)
val query_resilient :
  ?config:Optimizer.Config.t ->
  ?fallback:Optimizer.Config.t ->
  ?budget:Exec.Budget.t ->
  ?faults:Exec.Faults.t ->
  ?mode:exec_mode ->
  t ->
  string ->
  resilient

val query_resilient_checked :
  ?config:Optimizer.Config.t ->
  ?fallback:Optimizer.Config.t ->
  ?budget:Exec.Budget.t ->
  ?faults:Exec.Faults.t ->
  ?mode:exec_mode ->
  t ->
  string ->
  (resilient, Errors.t) result

(** {2 Differential checking} *)

type check_report = {
  check_sql : string;
  candidate : string;  (** config name of the plan under test *)
  reference : string;  (** config name of the oracle *)
  agree : bool;  (** bag-equality of the two result sets *)
  candidate_rows : int;
  reference_rows : int;
  only_candidate : string list;  (** sample rows missing from the reference (≤ 5) *)
  only_reference : string list;  (** sample rows missing from the candidate (≤ 5) *)
  lint_errors : string list;
      (** rendered ERROR-severity lint findings on the candidate plan *)
}

(** Run the same SQL under [candidate] (default full) and [reference]
    (default correlated-only) and compare result bags.

    [float_digits] rounds floats to that many significant digits before
    comparing (differently-ordered plans sum floats in different orders;
    bit-exact comparison would report the last-ulp drift as a
    disagreement).  Omitted = exact comparison.

    [mode] selects the engine for the candidate side only; the
    reference always runs row-at-a-time.  With the same config on both
    sides, [~mode:`Vector] is the row-vs-vector differential harness.

    [property_check] additionally asserts the symbolic engine's
    inferred properties against the candidate's result bag (see
    {!execute}). *)
val check :
  ?candidate:Optimizer.Config.t ->
  ?reference:Optimizer.Config.t ->
  ?budget:Exec.Budget.t ->
  ?float_digits:int ->
  ?property_check:bool ->
  ?mode:exec_mode ->
  t ->
  string ->
  check_report

val format_check_report : check_report -> string

(** Per-node property annotations (same tree shape as the plan
    rendering): cardinality interval, derived keys, FD count and
    non-nullable columns per operator, as inferred by {!Relalg.Fd}. *)
val plan_properties : env:Props.env -> Algebra.op -> string

(** Normalized tree, chosen plan, costs and subquery class.
    [properties] (default true) appends the per-node property
    section. *)
val explain : ?config:Optimizer.Config.t -> ?properties:bool -> t -> string -> string

(** EXPLAIN ANALYZE: execute the chosen plan with per-operator metrics
    and render the annotated plan, execution counters and the
    optimizer's rule-firing trace.  [times:false] omits wall-clock
    figures (stable output for golden tests); [properties] (default
    true) appends the per-node property section. *)
val explain_analyze :
  ?config:Optimizer.Config.t ->
  ?budget:Exec.Budget.t ->
  ?times:bool ->
  ?properties:bool ->
  ?mode:exec_mode ->
  t ->
  string ->
  string

(** Machine-readable EXPLAIN as a JSON object: plan, costs, search
    trace, per-node properties (unless [properties:false], which emits
    [null]), and (with [analyze]) execution counters plus the
    per-operator metrics tree. *)
val explain_json :
  ?config:Optimizer.Config.t ->
  ?budget:Exec.Budget.t ->
  ?analyze:bool ->
  ?properties:bool ->
  ?mode:exec_mode ->
  t ->
  string ->
  string

(** Every pipeline stage (the paper's Figures 2/3/5 for the query). *)
val explain_stages : ?config:Optimizer.Config.t -> t -> string -> string

(** Render a result as an aligned text table. *)
val format_result : Exec.Executor.result -> string
