(* Property-proven rewrites: each rule's side condition is a fact
   derived by the symbolic property engine (Fd) — FD closure, derived
   keys, cardinality intervals — rather than a syntactic pattern.

   Each rule is a partial function [op -> op option] matching at the
   root; the optimizer applies rules at every node, the verifier
   re-derives each side condition (Verify.check_rewrite), and the
   smallscope prover checks bag equivalence over all small databases.

   Soundness arguments (DESIGN.md Section 15):

   - [eliminate_groupby_on_key]: if the grouping set covers a derived
     key of the input, every group holds exactly one row, so the
     GroupBy is a projection computing each aggregate's single-row
     value.  The replacement expressions reproduce the executor's
     aggregate semantics exactly: sum/min/max of one row is the value
     itself (NULL input gives NULL), count* is 1, count(e) is 1 or 0
     by e's nullness, and avg divides by the literal count 1 — which,
     like the executor's division, promotes Int to Float and is
     NULL-strict.

   - [elide_max1row]: if the input is proven to yield at most one row,
     the runtime cardinality check can never fire and the operator is
     the identity.

   - [semijoin_to_inner]: if the predicate pins a derived key of the
     right side (each right key column equated to a left column or a
     constant), each left row matches at most one right row, so
     "exists a match" (semi) and "count the matches" (inner, then drop
     the right columns) agree on multiplicities.

   - [prune_unused_outerjoin]: a left outerjoin emits exactly one row
     per left row when the right side is key-unique on the pinned join
     columns (matched or NULL-padded); if the projection above uses no
     right column, the join is invisible and the right side can be
     dropped. *)

open Relalg
open Relalg.Algebra

type env = Props.env

let project_restore (cols : Col.t list) (o : op) : op =
  Project (List.map (fun c -> { expr = ColRef c; out = c }) cols, o)

(* The single-row value of an aggregate, mirroring the executor. *)
let single_row_agg (fn : agg_fn) : expr =
  match fn with
  | CountStar -> Const (Value.Int 1)
  | Count e ->
      Case ([ (Not (IsNull e), Const (Value.Int 1)) ], Some (Const (Value.Int 0)))
  | Sum e | Min e | Max e -> e
  | Avg e ->
      (* the executor computes sum/count with SQL division: Int inputs
         promote to Float, NULL input stays NULL — dividing by literal
         1 reproduces both *)
      Arith (Div, e, Const (Value.Int 1))

(* G_{A,F}(R)  =  π_{A, F(single row)}(R)   when A covers a derived key
   of R (FD closure), i.e. every group is a singleton.  Also eliminates
   DISTINCT (aggregate-free GroupBy). *)
let eliminate_groupby_on_key ~(env : env) (o : op) : op option =
  match o with
  | GroupBy { keys; aggs; input } when keys <> [] ->
      let props = Fd.analyze ~env input in
      if Fd.covers_key props (Col.Set.of_list keys) then
        let key_projs = List.map (fun k -> { expr = ColRef k; out = k }) keys in
        let agg_projs =
          List.map (fun (a : agg) -> { expr = single_row_agg a.fn; out = a.out }) aggs
        in
        Some (Project (key_projs @ agg_projs, input))
      else None
  | _ -> None

(* Max1row(R) = R  when R is proven to yield at most one row — the
   runtime check is dead and the decorrelated scalar-subquery plan
   sheds an operator. *)
let elide_max1row ~(env : env) (o : op) : op option =
  match o with
  | Max1row i -> if Fd.max_one (Fd.analyze ~env i) then Some i else None
  | _ -> None

(* R ⋉p S  =  π_{cols(R)}(R ⋈p S)  when p pins a derived key of S: at
   most one match per left row makes the semijoin's existence test and
   the inner join's multiplicity agree. *)
let semijoin_to_inner ~(env : env) (o : op) : op option =
  match o with
  | Join { kind = Semi; pred; left; right } ->
      let rp = Fd.analyze ~env right in
      let pinned =
        Fd.pinned_right (Op.schema_set left) (Op.schema_set right) (conjuncts pred)
      in
      if Fd.covers_key rp pinned then
        Some
          (project_restore (Op.schema left)
             (Join { kind = Inner; pred; left; right }))
      else None
  | _ -> None

(* π_projs(R ⟕p S) = π_projs(R)  when no projection references S and S
   is key-unique on the pinned join columns (each left row yields
   exactly one output row, so the outerjoin neither filters nor
   duplicates). *)
let prune_unused_outerjoin ~(env : env) (o : op) : op option =
  match o with
  | Project (projs, Join { kind = LeftOuter; pred; left; right }) ->
      let rset = Op.schema_set right in
      let clean =
        List.for_all
          (fun p ->
            (not (Expr.has_subquery p.expr))
            && Col.Set.disjoint (Expr.cols p.expr) rset)
          projs
      in
      if clean then
        let rp = Fd.analyze ~env right in
        let pinned = Fd.pinned_right (Op.schema_set left) rset (conjuncts pred) in
        if Fd.covers_key rp pinned then Some (Project (projs, left)) else None
      else None
  | _ -> None
