(** Property-proven rewrites: side conditions derived by the symbolic
    property engine ({!Relalg.Fd}) — FD closure, derived candidate
    keys, and cardinality intervals — rather than syntactic patterns.

    Each rule is a partial function matching at the root of a tree; the
    optimizer applies rules at every node, the verifier re-derives each
    side condition, and the smallscope prover checks bag equivalence. *)

open Relalg
open Relalg.Algebra

type env = Props.env

(** The single-row value of an aggregate, mirroring the executor's
    semantics exactly (including avg's Int-to-Float promotion). *)
val single_row_agg : agg_fn -> expr

(** G_{A,F}(R) = π_{A, F(single row)}(R) when A covers a derived key of
    R: every group is a singleton.  Also eliminates DISTINCT. *)
val eliminate_groupby_on_key : env:env -> op -> op option

(** Max1row(R) = R when R is proven to yield at most one row. *)
val elide_max1row : env:env -> op -> op option

(** R ⋉p S = π_{cols(R)}(R ⋈p S) when p pins a derived key of S. *)
val semijoin_to_inner : env:env -> op -> op option

(** π(R ⟕p S) = π(R) when the projection uses no column of S and S is
    key-unique on the pinned join columns. *)
val prune_unused_outerjoin : env:env -> op -> op option
