(* Local aggregates (paper Section 3.3).

   An aggregate f splits into a local part fl and a global part fg with
   f(∪Si) = fg(∪ fl(Si)).  The standard SQL aggregates split as:

       sum   -> local sum,   global sum
       count -> local count, global sum
       min   -> local min,   global min
       max   -> local max,   global max
       avg   -> local (sum, count), global sum/sum + computing project

   [split] introduces LocalGroupBy below a GroupBy; [eager_*] push the
   LocalGroupBy below a join input (eager aggregation, Yan & Larson),
   extending its grouping columns with the join predicate's columns —
   the freedom Section 3.3 highlights. *)

open Relalg
open Relalg.Algebra

let split_aggs (aggs : agg list) : (agg list * agg list * proj list) option =
  (* returns (local aggs, global aggs, computing projections keyed by
     original output ids) *)
  let locals = ref [] and globals = ref [] and projs = ref [] in
  let ok =
    List.for_all
      (fun (a : agg) ->
        match a.fn with
        | CountStar ->
            let l = { fn = CountStar; out = Col.fresh "lcnt" Value.TInt } in
            let g = { fn = Sum (ColRef l.out); out = Col.fresh "gcnt" Value.TInt } in
            locals := l :: !locals;
            globals := g :: !globals;
            projs := { expr = ColRef g.out; out = a.out } :: !projs;
            true
        | Count e ->
            let l = { fn = Count e; out = Col.fresh "lcnt" Value.TInt } in
            let g = { fn = Sum (ColRef l.out); out = Col.fresh "gcnt" Value.TInt } in
            locals := l :: !locals;
            globals := g :: !globals;
            projs := { expr = ColRef g.out; out = a.out } :: !projs;
            true
        | Sum e ->
            let l = { fn = Sum e; out = Col.fresh "lsum" Value.TFloat } in
            let g = { fn = Sum (ColRef l.out); out = Col.fresh "gsum" Value.TFloat } in
            locals := l :: !locals;
            globals := g :: !globals;
            projs := { expr = ColRef g.out; out = a.out } :: !projs;
            true
        | Min e ->
            let l = { fn = Min e; out = Col.fresh "lmin" Value.TFloat } in
            let g = { fn = Min (ColRef l.out); out = Col.fresh "gmin" Value.TFloat } in
            locals := l :: !locals;
            globals := g :: !globals;
            projs := { expr = ColRef g.out; out = a.out } :: !projs;
            true
        | Max e ->
            let l = { fn = Max e; out = Col.fresh "lmax" Value.TFloat } in
            let g = { fn = Max (ColRef l.out); out = Col.fresh "gmax" Value.TFloat } in
            locals := l :: !locals;
            globals := g :: !globals;
            projs := { expr = ColRef g.out; out = a.out } :: !projs;
            true
        | Avg e ->
            (* composite: decompose into primitive local/global parts
               (paper, footnote 3) *)
            let ls = { fn = Sum e; out = Col.fresh "lsum" Value.TFloat } in
            let lc = { fn = Count e; out = Col.fresh "lcnt" Value.TInt } in
            let gs = { fn = Sum (ColRef ls.out); out = Col.fresh "gsum" Value.TFloat } in
            let gc = { fn = Sum (ColRef lc.out); out = Col.fresh "gcnt" Value.TInt } in
            locals := lc :: ls :: !locals;
            globals := gc :: gs :: !globals;
            (* division by a zero count yields NULL in this engine,
               which is exactly avg's empty/all-NULL result *)
            projs :=
              { expr = Arith (Div, ColRef gs.out, ColRef gc.out); out = a.out } :: !projs;
            true)
      aggs
  in
  if ok then Some (List.rev !locals, List.rev !globals, List.rev !projs) else None

(* G_{A,F} R  =  π (G_{A,Fg} (LG_{A,Fl} R)) *)
let split (o : op) : op option =
  match o with
  | GroupBy { input = LocalGroupBy _; _ } -> None  (* already split *)
  | GroupBy { keys; aggs; input } when aggs <> [] -> (
      match split_aggs aggs with
      | None -> None
      | Some (locals, globals, projs) ->
          let lg = LocalGroupBy { keys; aggs = locals; input } in
          let g = GroupBy { keys; aggs = globals; input = lg } in
          let pass = List.map (fun c -> { expr = ColRef c; out = c }) keys in
          Some (Project (pass @ projs, g)))
  | _ -> None

(* Push a LocalGroupBy below one input of a join, extending its
   grouping columns by the join predicate's columns on that side.
   Requires the local aggregate inputs to come from that side. *)
let push_local_below_join (o : op) : op option =
  match o with
  | LocalGroupBy { keys; aggs; input = Join { kind = Inner; pred; left = s; right = r } } ->
      let rcols = Op.schema_set r and scols = Op.schema_set s in
      let a = Col.Set.of_list keys in
      let pcols = Expr.cols pred in
      let agg_cols =
        List.fold_left
          (fun acc (ag : agg) ->
            match agg_input_expr ag.fn with
            | None -> acc
            | Some e -> Col.Set.union acc (Expr.cols e))
          Col.Set.empty aggs
      in
      if Col.Set.subset agg_cols rcols then begin
        (* push onto the right input *)
        let rkeys =
          Col.Set.elements
            (Col.Set.union (Col.Set.inter a rcols) (Col.Set.inter pcols rcols))
        in
        let lg = LocalGroupBy { keys = rkeys; aggs; input = r } in
        Some (Join { kind = Inner; pred; left = s; right = lg })
      end
      else if Col.Set.subset agg_cols scols then begin
        let skeys =
          Col.Set.elements
            (Col.Set.union (Col.Set.inter a scols) (Col.Set.inter pcols scols))
        in
        let lg = LocalGroupBy { keys = skeys; aggs; input = s } in
        Some (Join { kind = Inner; pred; left = lg; right = r })
      end
      else None
  | _ -> None

(* Composite rule: eager aggregation in one step —
   G_{A,F}(S ⋈p R) with aggregate inputs from R becomes
   π (G_{A,Fg} (S ⋈p (LG_{(A∪cols p)∩cols R, Fl} R))).
   Unlike the full GroupBy pushdown of Section 3.1 this needs NO key on
   S and no condition on A: the global GroupBy recombines partials. *)
let eager_aggregate (o : op) : op option =
  match o with
  | GroupBy { input = Join { left = LocalGroupBy _; _ }; _ }
  | GroupBy { input = Join { right = LocalGroupBy _; _ }; _ } ->
      None  (* already eager *)
  | GroupBy { keys; aggs; input = Join { kind = Inner; pred; left = s; right = r } }
    when aggs <> [] -> (
      match split_aggs aggs with
      | None -> None
      | Some (locals, globals, projs) ->
          let rcols = Op.schema_set r and scols = Op.schema_set s in
          let local_cols =
            List.fold_left
              (fun acc (ag : agg) ->
                match agg_input_expr ag.fn with
                | None -> acc
                | Some e -> Col.Set.union acc (Expr.cols e))
              Col.Set.empty locals
          in
          let a = Col.Set.of_list keys and pcols = Expr.cols pred in
          let build side_cols mk =
            let lkeys =
              Col.Set.elements
                (Col.Set.union (Col.Set.inter a side_cols) (Col.Set.inter pcols side_cols))
            in
            let g = GroupBy { keys; aggs = globals; input = mk lkeys } in
            let pass = List.map (fun c -> { expr = ColRef c; out = c }) keys in
            Some (Project (pass @ projs, g))
          in
          if Col.Set.subset local_cols rcols then
            build rcols (fun lkeys ->
                Join
                  { kind = Inner; pred; left = s;
                    right = LocalGroupBy { keys = lkeys; aggs = locals; input = r }
                  })
          else if Col.Set.subset local_cols scols && not (Col.Set.is_empty local_cols) then
            build scols (fun lkeys ->
                Join
                  { kind = Inner; pred;
                    left = LocalGroupBy { keys = lkeys; aggs = locals; input = s };
                    right = r
                  })
          else None)
  | _ -> None

(* Inverse cleanup: a global GroupBy directly atop a LocalGroupBy on
   the same grouping keys recombines exactly one partial row per group
   (the LocalGroupBy already produced one row per key combination), so
   the pair collapses to a single GroupBy composing the aggregate
   functions: sum∘sum e = sum e, sum∘count e = count e,
   sum∘count* = count*, min∘min e = min e, max∘max e = max e.  The
   shape arises when the GroupBy pushdown of Section 3.1 lands a global
   GroupBy on top of the LocalGroupBy the eager split introduced; the
   linter flags it as redundant-groupby.  Output columns keep the
   global's ids, so the plan schema is unchanged. *)
let collapse_global (o : op) : op option =
  match o with
  | GroupBy
      { keys;
        aggs = globals;
        input = LocalGroupBy { keys = lkeys; aggs = locals; input }
      }
    when globals <> []
         && Col.Set.equal (Col.Set.of_list keys) (Col.Set.of_list lkeys) ->
      let local_out c =
        List.find_opt (fun (l : agg) -> Col.equal l.out c) locals
      in
      let compose (g : agg) =
        match g.fn with
        | Sum (ColRef c) -> (
            match local_out c with
            | Some { fn = (Sum _ | Count _ | CountStar) as lf; _ } ->
                Some { g with fn = lf }
            | _ -> None)
        | Min (ColRef c) -> (
            match local_out c with
            | Some { fn = Min _ as lf; _ } -> Some { g with fn = lf }
            | _ -> None)
        | Max (ColRef c) -> (
            match local_out c with
            | Some { fn = Max _ as lf; _ } -> Some { g with fn = lf }
            | _ -> None)
        | _ -> None
      in
      let composed = List.filter_map compose globals in
      if List.length composed = List.length globals then
        Some (GroupBy { keys; aggs = composed; input })
      else None
  | _ -> None
