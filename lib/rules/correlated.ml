(* Re-introduction of correlated execution during cost-based
   optimization (paper Section 4: "introduction of correlated execution
   (the simplest and most common being index-lookup-join)").

   Normalization removes correlations; when the outer side is small and
   an index exists on the inner join column, a correlated nested-loops
   plan with index lookups beats the set-oriented plan.  The rule turns
   a join whose right side is a (possibly filtered/projected) base-table
   scan with an index on an equijoin column back into an Apply; the
   executor's index fast path then probes per outer row. *)

open Relalg
open Relalg.Algebra

(* does the table have a declared single-column index on [col]? *)
let has_index (cat : Catalog.t) table col =
  match Catalog.find_table cat table with
  | None -> false
  | Some def ->
      List.exists (function [ c ] -> c = col | _ -> false) def.indexes
      || def.primary_key = [ col ]

let rec scan_of (o : op) : (string * Col.t list) option =
  match o with
  | TableScan { table; cols } -> Some (table, cols)
  | Select (_, i) -> scan_of i
  | Project (_, i) -> scan_of i
  | _ -> None

let join_to_apply ~(cat : Catalog.t) (o : op) : op option =
  match o with
  | Join { kind; pred; left; right } -> (
      match scan_of right with
      | None -> None
      | Some (table, cols) ->
          let lcols = Op.schema_set left in
          let scan_cols = Col.Set.of_list cols in
          (* find an equi conjunct left-expr = indexed scan column; when
             both sides are column references an or-pattern would commit
             to the first binding, so try both orientations explicitly *)
          let probe rc e =
            Col.Set.mem rc scan_cols
            && Col.Set.subset (Expr.cols e) lcols
            && has_index cat table rc.Col.name
          in
          let indexed_eq =
            List.exists
              (fun c ->
                match c with
                | Cmp (Eq, ColRef a, ColRef b) ->
                    probe a (ColRef b) || probe b (ColRef a)
                | Cmp (Eq, ColRef rc, e) | Cmp (Eq, e, ColRef rc) -> probe rc e
                | _ -> false)
              (conjuncts pred)
          in
          if indexed_eq then
            (* the predicate moves into the inner expression, where the
               executor recognizes the index probe *)
            let right' =
              match right with
              | Select (p, i) -> Select (conj pred p, i)
              | i -> Select (pred, i)
            in
            Some (Apply { kind; pred = true_; left; right = right' })
          else None)
  | _ -> None

(* The inverse: execute a decorrelatable Apply as a join (covered by the
   normalizer; provided for completeness in the rule set). *)
let apply_to_join (o : op) : op option =
  match o with
  | Apply { kind; pred; left; right } when not (Op.correlated_with right left) ->
      Some (Join { kind; pred; left; right })
  | _ -> None
