(** Classic join reordering rules (commute / associate) plus the
    filter and project pull-ups that expose reorderable joins.

    All rules preserve the tree's output schema: commute wraps the
    swapped join in a restoring projection, and associate derives the
    equality conjunct the new inner join needs from the transitive
    closure of the predicate's equalities. *)

open Relalg
open Relalg.Algebra

(** Wrap [o] in a pass-through projection restoring column order. *)
val project_restore : Col.t list -> op -> op

(** Union-find over the column equalities of a conjunct list: a map
    from column id to class representative, and a witness column per
    class member. *)
val equality_classes : expr list -> (int, int) Hashtbl.t * (int, Col.t) Hashtbl.t

(** Equalities between [xs] and [ys] implied by the conjuncts'
    transitive closure but not stated directly. *)
val implied_equalities : expr list -> Col.Set.t -> Col.Set.t -> expr list

(** A ⋈ B → B ⋈ A (inner joins only), schema restored. *)
val commute : op -> op option

(** (A ⋈ B) ⋈ C → (A ⋈ C) ⋈ B and (B ⋈ C) ⋈ A, when a usable
    equality conjunct for the new inner join exists or is implied. *)
val associate : op -> op option list

(** First result of {!associate}, for rule-table registration. *)
val associate_one : op -> op option

(** Select under a join input → Select above the join. *)
val filter_pullup : op -> op option

(** Project under a join input → Project above the join, predicate
    rewritten through the projection's substitution. *)
val project_pullup : op -> op option
