(* Reordering GroupBy around joins, outerjoins, semijoins and filters
   (paper Sections 3.1 and 3.2).

   Each rule is a partial function [op -> op option] matching at the
   root; the optimizer applies rules at every node.

   Push conditions (paper, Section 3.1), for pushing the GroupBy of
   G_{A,F}(S ⋈p R) below the join onto R:
     1. every column of p defined by R is a grouping column;
     2. some key of S is contained in the grouping columns;
     3. the aggregate expressions use only columns of R.

   Pulling a GroupBy above a join needs only that the other side has a
   key and the predicate does not use aggregate results.

   For outerjoins (Section 3.2), pushing below additionally compensates
   aggregates whose value on the single padded row is not NULL: counts.
   The compensating project recomputes the count output as
       CASE WHEN g IS NOT NULL THEN cnt ELSE <agg on one NULL row> END
   where g is a non-nullable grouping column of the pushed aggregate
   (NULL exactly on padded rows).  Note count-star on the padded
   singleton group is 1 (the padded row is a real row of the outerjoin
   result), count(e) for strict e is 0. *)

open Relalg
open Relalg.Algebra

type env = Props.env

let cols_of_pred p = Expr.cols p

let agg_uses_only (aggs : agg list) (allowed : Col.Set.t) =
  List.for_all
    (fun a ->
      match agg_input_expr a.fn with
      | None -> true
      | Some e -> Col.Set.subset (Expr.cols e) allowed)
    aggs

let pred_uses_agg_outputs pred (aggs : agg list) =
  let outs = Col.Set.of_list (List.map (fun (a : agg) -> a.out) aggs) in
  not (Col.Set.is_empty (Col.Set.inter (Expr.cols pred) outs))

let project_restore (cols : Col.t list) (o : op) : op =
  Project (List.map (fun c -> { expr = ColRef c; out = c }) cols, o)

(* ------------------------------------------------------------------ *)
(* Pull GroupBy above a join:                                         *)
(*   S ⋈p (G_{A,F} R)  =  G_{A∪cols(S),F} (S ⋈p R)                    *)
(* ------------------------------------------------------------------ *)

let pull_above_join ~(env : env) (o : op) : op option =
  match o with
  | Join { kind = Inner; pred; left = s; right = GroupBy { keys; aggs; input = r } }
    when (not (pred_uses_agg_outputs pred aggs)) && Props.has_key ~env s ->
      let g = GroupBy { keys = keys @ Op.schema s; aggs; input = Join { kind = Inner; pred; left = s; right = r } } in
      Some (project_restore (Op.schema o) g)
  | Join { kind = Inner; pred; left = GroupBy { keys; aggs; input = r }; right = s }
    when (not (pred_uses_agg_outputs pred aggs)) && Props.has_key ~env s ->
      let g = GroupBy { keys = keys @ Op.schema s; aggs; input = Join { kind = Inner; pred; left = r; right = s } } in
      Some (project_restore (Op.schema o) g)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Push GroupBy below a join (onto the right input):                  *)
(*   G_{A,F}(S ⋈p R)  =  π (S ⋈p (G_{A∩cols(R) ∪ pcols(R), F} R))     *)
(* ------------------------------------------------------------------ *)

(* Checks conditions 1-3 for pushing the GroupBy onto [r], and computes
   the pushed grouping columns.  Condition 1 is relaxed the way the
   paper's formula (A ∪ columns(p) − columns(S)) implies: an R-column
   of the predicate that is NOT a grouping column is admitted when the
   conjunct equates it with an S-side expression — within one joined
   row it is then functionally determined by S, so grouping R by it
   does not split the final groups. *)
let push_below_join_keys ~env keys (aggs : agg list) pred s r : Col.t list option =
  let a = Col.Set.of_list keys in
  let rcols = Op.schema_set r in
  let scols = Op.schema_set s in
  let extras = ref Col.Set.empty in
  let conj_ok c =
    let rc = Col.Set.inter (Expr.cols c) rcols in
    if Col.Set.subset rc a then true
    else
      match c with
      | Cmp (Eq, ColRef x, e)
        when Col.Set.mem x rcols && Col.Set.subset (Expr.cols e) scols ->
          extras := Col.Set.add x !extras;
          true
      | Cmp (Eq, e, ColRef x)
        when Col.Set.mem x rcols && Col.Set.subset (Expr.cols e) scols ->
          extras := Col.Set.add x !extras;
          true
      | _ -> false
  in
  if
    List.for_all conj_ok (conjuncts pred)
    (* 2: the S-side grouping columns cover a key of S — first the
       direct superset test, then the strictly stronger FD-closure
       derivation (a grouping set that *determines* a key suffices) *)
    && (let scover = Col.Set.inter a scols in
        Props.covers_key ~env s scover
        || Fd.covers_key (Fd.analyze ~env s) scover)
    (* 3 *)
    && agg_uses_only aggs rcols
    && Col.Set.subset a (Col.Set.union rcols scols)
  then
    Some (Col.Set.elements (Col.Set.union (Col.Set.inter a rcols) !extras))
  else None

let push_below_join ~(env : env) (o : op) : op option =
  match o with
  | GroupBy { keys; aggs; input = Join { kind = Inner; pred; left = s; right = r } } -> (
      match push_below_join_keys ~env keys aggs pred s r with
      | Some rkeys ->
          let pushed = GroupBy { keys = rkeys; aggs; input = r } in
          let j = Join { kind = Inner; pred; left = s; right = pushed } in
          Some (project_restore (Op.schema o) j)
      | None -> (
          (* symmetric: aggregate the left input *)
          match push_below_join_keys ~env keys aggs pred r s with
          | Some skeys ->
              let pushed = GroupBy { keys = skeys; aggs; input = s } in
              let j = Join { kind = Inner; pred; left = pushed; right = r } in
              Some (project_restore (Op.schema o) j)
          | None -> None))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Push GroupBy below a left outerjoin, with compensation (3.2)       *)
(* ------------------------------------------------------------------ *)

let push_below_outerjoin ~(env : env) (o : op) : op option =
  match o with
  | GroupBy { keys; aggs; input = Join { kind = LeftOuter; pred; left = s; right = r } }
    when push_below_join_keys ~env keys aggs pred s r <> None ->
      let rkeys = Option.get (push_below_join_keys ~env keys aggs pred s r) in
      (* need a non-nullable match detector among the pushed grouping
         columns *)
      let nn = Props.nonnullable ~env r in
      (match List.find_opt (fun c -> Col.Set.mem c nn) rkeys with
      | None -> None
      | Some match_col ->
          (* pushed aggregate gets fresh output ids; the compensating
             project restores the original ids *)
          let fresh_aggs = List.map (fun (a : agg) -> { a with out = Col.clone a.out }) aggs in
          let pushed = GroupBy { keys = rkeys; aggs = fresh_aggs; input = r } in
          let j = Join { kind = LeftOuter; pred; left = s; right = pushed } in
          let matched = Not (IsNull (ColRef match_col)) in
          let compensate (orig : agg) (fresh : agg) =
            let padded_value =
              (* the aggregate applied to the single all-NULL padded row *)
              match orig.fn with
              | CountStar -> Some (Value.Int 1)
              | Count _ -> Some (Value.Int 0)
              | Sum _ | Min _ | Max _ | Avg _ -> None  (* NULL: padding suffices *)
            in
            match padded_value with
            | None -> { expr = ColRef fresh.out; out = orig.out }
            | Some v ->
                { expr = Case ([ (matched, ColRef fresh.out) ], Some (Const v));
                  out = orig.out
                }
          in
          let projs =
            List.map (fun c -> { expr = ColRef c; out = c }) keys
            @ List.map2 compensate aggs fresh_aggs
          in
          Some (Project (projs, j)))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pull GroupBy above a left outerjoin (the reverse; useful when the  *)
(* join is selective)                                                 *)
(*   S LOJp (G_{A,F} R) = π_c? — only the join-preserving direction   *)
(*   is implemented: G above, no compensation needed when pulling is  *)
(*   not semantics-preserving for padded rows, so we restrict to the  *)
(*   inner-join pull above. *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Semijoin / antijoin through GroupBy (Section 3.1, last paragraph): *)
(*   (G_{A,F} R) ⋉p S  =  G_{A,F} (R ⋉p S)                            *)
(* when p does not use aggregate outputs and p's non-S columns are    *)
(* grouping columns.                                                  *)
(* ------------------------------------------------------------------ *)

let push_semijoin_below_groupby (o : op) : op option =
  match o with
  | Join { kind = (Semi | Anti) as kind; pred; left = GroupBy { keys; aggs; input = r }; right = s }
    when (not (pred_uses_agg_outputs pred aggs))
         && Col.Set.subset
              (Col.Set.diff (cols_of_pred pred) (Op.schema_set s))
              (Col.Set.of_list keys) ->
      Some
        (GroupBy
           { keys; aggs; input = Join { kind; pred; left = r; right = s } })
  | _ -> None

(* The reverse: pull a semijoin above a GroupBy. *)
let pull_semijoin_above_groupby (o : op) : op option =
  match o with
  | GroupBy { keys; aggs; input = Join { kind = (Semi | Anti) as kind; pred; left = r; right = s } }
    when (not (pred_uses_agg_outputs pred aggs))
         && Col.Set.subset
              (Col.Set.diff (cols_of_pred pred) (Op.schema_set s))
              (Col.Set.of_list keys) ->
      Some
        (Join { kind; pred; left = GroupBy { keys; aggs; input = r }; right = s })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Filter / GroupBy reordering (Section 3.1, opening): a filter       *)
(* commutes with a GroupBy iff its columns are functionally           *)
(* determined by the grouping columns — we use the sound              *)
(* approximation "are grouping columns".                              *)
(* ------------------------------------------------------------------ *)

let push_filter_below_groupby (o : op) : op option =
  match o with
  | Select (p, GroupBy { keys; aggs; input })
    when Col.Set.subset (Expr.cols p) (Col.Set.of_list keys) ->
      Some (GroupBy { keys; aggs; input = Select (p, input) })
  | _ -> None

let pull_filter_above_groupby (o : op) : op option =
  match o with
  | GroupBy { keys; aggs; input = Select (p, input) }
    when Col.Set.subset (Expr.cols p) (Col.Set.of_list keys) ->
      Some (Select (p, GroupBy { keys; aggs; input }))
  | _ -> None
