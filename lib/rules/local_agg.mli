(** Local aggregates (paper Section 3.3): split an aggregate into a
    local (partial) part and a global (recombining) part, then push the
    LocalGroupBy below joins — eager aggregation. *)

open Relalg.Algebra

(** Split every aggregate of a GroupBy into local/global pairs:
    G_{A,F} R = π (G_{A,Fg} (LG_{A,Fl} R)).  [None] when already split.
    avg decomposes into (sum, count) with a computing projection. *)
val split : op -> op option

(** Push a LocalGroupBy below one input of an inner join, extending its
    grouping columns with the join predicate's columns on that side. *)
val push_local_below_join : op -> op option

(** One-step eager aggregation: G_{A,F}(S ⋈p R) with aggregate inputs
    from R becomes π (G_{A,Fg} (S ⋈p (LG_{(A∪cols p)∩cols R, Fl} R))).
    Needs no key on S: the global GroupBy recombines partials. *)
val eager_aggregate : op -> op option

(** Collapse a global GroupBy sitting directly on a same-key
    LocalGroupBy into a single GroupBy with composed aggregates
    (sum∘sum = sum, sum∘count = count, sum∘count* = count*,
    min∘min = min, max∘max = max): each global group holds exactly one
    partial row.  [None] when any global aggregate is not such a
    composition over a local output. *)
val collapse_global : op -> op option
