(* Table statistics for cardinality estimation: row counts and
   per-column distinct counts (exact, computed on demand and cached).

   The NDV cache is tagged with the table's mutation generation: a
   [Storage.Table.load]/[append] after stats were first read would
   otherwise leave the optimizer costing plans against distinct counts
   for rows that no longer exist.

   One [t] is shared by every concurrent compilation in a service, so
   the cache is mutex-guarded: an unguarded [Hashtbl] corrupts its
   bucket structure under parallel insertion, and even a lost update
   would let two sessions race a refresh after a generation bump. *)

type t = {
  db : Storage.Database.t;
  ndv_cache : (string * string, int * int) Hashtbl.t;
      (** (table, column) -> (generation when computed, ndv) *)
  lock : Mutex.t;
}

let create db = { db; ndv_cache = Hashtbl.create 64; lock = Mutex.create () }

let row_count t table =
  match Storage.Database.table_opt t.db table with
  | Some tb -> Storage.Table.row_count tb
  | None -> 0

let ndv t table col =
  match Storage.Database.table_opt t.db table with
  | None -> 0
  | Some tb ->
      Mutex.protect t.lock (fun () ->
          let gen = Storage.Table.generation tb in
          match Hashtbl.find_opt t.ndv_cache (table, col) with
          | Some (g, n) when g = gen -> n
          | _ ->
              let n = Storage.Table.distinct_count tb col in
              Hashtbl.replace t.ndv_cache (table, col) (gen, n);
              n)

let catalog t = t.db.Storage.Database.catalog
