(* Cardinality estimation over logical trees.

   Column provenance: a map from column id to (table, column) built by
   walking the tree once (through scans, pass-through projections and
   grouping keys).  Distinct counts come from Stats; selectivities use
   the classic System-R defaults. *)

open Relalg
open Relalg.Algebra

type env = {
  stats : Stats.t;
  origins : (int, string * string) Hashtbl.t;
  mutable hole_card : float;  (** estimated rows of the current segment *)
  props : Props.env;  (** base-table keys/nullability for the property engine *)
  fd_memo : Fd.memo;  (** per-plan memo so interval clamping stays linear *)
}

let build_origins (o : op) : (int, string * string) Hashtbl.t =
  let h = Hashtbl.create 64 in
  let rec walk o =
    (match o with
    | TableScan { table; cols } ->
        List.iter (fun (c : Col.t) -> Hashtbl.replace h c.id (table, c.name)) cols
    | Project (ps, _) ->
        List.iter
          (fun p ->
            match p.expr with
            | ColRef c -> (
                match Hashtbl.find_opt h c.Col.id with
                | Some o -> Hashtbl.replace h p.out.Col.id o
                | None -> ())
            | _ -> ())
          ps
    | SegmentHole { cols; src } ->
        List.iter2
          (fun (c : Col.t) (s : Col.t) ->
            match Hashtbl.find_opt h s.id with
            | Some o -> Hashtbl.replace h c.id o
            | None -> ())
          cols src
    | _ -> ());
    List.iter walk (Op.children o)
  in
  (* two passes so that SegmentHole src columns defined by a later
     sibling still resolve *)
  walk o;
  walk o;
  h

let make_env stats (o : op) =
  { stats;
    origins = build_origins o;
    hole_card = 1000.;
    props = Catalog.props_env (Stats.catalog stats);
    fd_memo = Fd.create_memo ();
  }

let ndv_of env (c : Col.t) : float option =
  match Hashtbl.find_opt env.origins c.id with
  | Some (table, col) ->
      let n = Stats.ndv env.stats table col in
      if n > 0 then Some (float_of_int n) else None
  | None -> None

(* selectivity of a predicate used as a filter *)
let rec selectivity env (p : expr) : float =
  match p with
  | Const (Value.Bool true) -> 1.0
  | Const (Value.Bool false) -> 0.0
  | And (a, b) -> selectivity env a *. selectivity env b
  | Or (a, b) ->
      let sa = selectivity env a and sb = selectivity env b in
      sa +. sb -. (sa *. sb)
  | Not a -> 1.0 -. selectivity env a
  | Cmp (Eq, ColRef a, ColRef b) -> (
      match ndv_of env a, ndv_of env b with
      | Some na, Some nb -> 1.0 /. Float.max na nb
      | Some n, None | None, Some n -> 1.0 /. n
      | None, None -> 0.1)
  | Cmp (Eq, ColRef a, _) | Cmp (Eq, _, ColRef a) -> (
      match ndv_of env a with Some n -> 1.0 /. n | None -> 0.1)
  | Cmp (Eq, _, _) -> 0.1
  | Cmp (Ne, _, _) -> 0.9
  | Cmp (_, _, _) -> 1.0 /. 3.0
  | Like _ -> 0.15
  | IsNull _ -> 0.05
  | Case _ -> 0.5
  | _ -> 0.5

let group_card env (keys : Col.t list) (input_card : float) : float =
  if keys = [] then 1.0
  else
    let prod =
      List.fold_left
        (fun acc c ->
          match ndv_of env c with Some n -> acc *. n | None -> acc *. 100.)
        1.0 keys
    in
    Float.max 1.0 (Float.min prod (Float.max 1.0 (input_card /. 1.5)))

(* Interval clamping: the symbolic property engine proves a per-node
   cardinality interval [lo, hi]; the System-R arithmetic below is only
   an estimate, so whenever the two disagree the proof wins.  A Max1row
   caps its subtree at one row, a ScalarAgg is pinned to exactly one, a
   key-equality point select cannot exceed one — whatever the
   selectivity defaults would otherwise claim. *)
let clamp env (o : op) (est : float) : float =
  let fd = Fd.analyze ~env:env.props ~memo:env.fd_memo o in
  let { Fd.lo; hi } = fd.Fd.card in
  let est =
    match hi with Some h when est > float_of_int h -> float_of_int h | _ -> est
  in
  Float.max (float_of_int lo) est

let rec estimate env (o : op) : float = clamp env o (estimate_raw env o)

and estimate_raw env (o : op) : float =
  match o with
  | TableScan { table; _ } -> float_of_int (Stats.row_count env.stats table)
  | ConstTable { rows; _ } -> float_of_int (List.length rows)
  | CseScan { rows_hint; _ } -> float_of_int rows_hint
  | SegmentHole _ -> env.hole_card
  | Select (p, i) -> estimate env i *. selectivity env p
  | Project (_, i) | Rownum { input = i; _ } | Max1row i -> estimate env i
  | Join { kind; pred; left; right } | Apply { kind; pred; left; right } -> (
      let cl = estimate env left and cr = estimate env right in
      let sel = selectivity env pred in
      match kind with
      | Inner -> Float.max 1.0 (cl *. cr *. sel)
      | LeftOuter -> Float.max cl (cl *. cr *. sel)
      | Semi -> Float.max 1.0 (cl *. Float.min 1.0 (cr *. sel))
      | Anti -> Float.max 1.0 (cl *. Float.max 0.1 (1.0 -. (cr *. sel))))
  | SegmentApply { seg_cols; outer; inner } ->
      let co = estimate env outer in
      let nseg = group_card env seg_cols co in
      let saved = env.hole_card in
      env.hole_card <- Float.max 1.0 (co /. nseg);
      let ci = estimate env inner in
      env.hole_card <- saved;
      nseg *. ci
  | GroupBy
      { keys;
        input = (GroupBy { keys = ikeys; _ } | LocalGroupBy { keys = ikeys; _ }) as i;
        _
      }
    when Col.Set.equal (Col.Set.of_list keys) (Col.Set.of_list ikeys) ->
      (* the input already has one row per key combination, so grouping
         again is the identity on cardinality; without this the generic
         damping below would credit the redundant stack with fewer rows
         than the single equivalent GroupBy *)
      estimate env i
  | GroupBy { keys; input; _ } | LocalGroupBy { keys; input; _ } ->
      group_card env keys (estimate env input)
  | ScalarAgg _ -> 1.0
  | UnionAll (l, r) -> estimate env l +. estimate env r
  | Except (l, _) -> estimate env l
