(** Optimizer configuration: every orthogonal technique of the paper
    toggles independently, which is how the benches re-create the
    "query processor technology levels" of DESIGN.md and how the
    ablations isolate one primitive. *)

type t = {
  decorrelate : bool;  (** Apply removal during normalization (§2.3) *)
  simplify_oj : bool;  (** outerjoin simplification (§1.2) *)
  class2 : bool;  (** identities (5)-(7): duplicate common subexpressions *)
  groupby_reorder : bool;  (** §3.1/3.2 reorderings *)
  local_agg : bool;  (** §3.3 eager local aggregation *)
  segment_apply : bool;  (** §3.4 segmented execution *)
  correlated_exec : bool;  (** re-introduce index-lookup Apply (§4) *)
  join_reorder : bool;  (** inner-join commute/associate/pull-ups *)
  property_rewrites : bool;
      (** rewrites proven by the symbolic property engine (FD-derived
          keys, cardinality intervals) *)
  max_alternatives : int;  (** plan-space exploration budget *)
  max_rounds : int;  (** 0 disables cost-based search entirely *)
}

(** All techniques on. *)
val full : t

(** Subqueries execute exactly as written — the Section 1.1 baseline. *)
val correlated_only : t

(** Flattening + outerjoin simplification only: a Dayal/Kim-era
    processor. *)
val decorrelated_only : t

val name_of : t -> string

(** Injective rendering of every field — the plan cache's config key
    component.  [name_of] collapses modified records to "custom" and
    must not be used for keying. *)
val fingerprint : t -> string
