(** Cardinality estimation over logical trees.

    Column provenance: a map from column id to (table, column) built by
    walking the tree once (through scans, pass-through projections and
    grouping keys).  Distinct counts come from {!Stats}; selectivities
    use the classic System-R defaults. *)

open Relalg
open Relalg.Algebra

type env = {
  stats : Stats.t;
  origins : (int, string * string) Hashtbl.t;
  mutable hole_card : float;  (** estimated rows of the current segment *)
  props : Props.env;  (** base-table keys/nullability for the property engine *)
  fd_memo : Fd.memo;  (** per-plan memo so interval clamping stays linear *)
}

(** Column provenance of a tree (two passes, so SegmentHole source
    columns defined by a later sibling still resolve). *)
val build_origins : op -> (int, string * string) Hashtbl.t

val make_env : Stats.t -> op -> env

(** Distinct count of a column, when its base-table origin is known. *)
val ndv_of : env -> Col.t -> float option

(** Selectivity of a predicate used as a filter, in [0, 1]. *)
val selectivity : env -> expr -> float

(** Expected group count for grouping columns over [n] input rows. *)
val group_card : env -> Col.t list -> float -> float

(** Estimated output rows of a tree, clamped to the cardinality
    interval proven by the symbolic property engine ({!Relalg.Fd}):
    the interval is a hard bound, the selectivity arithmetic only an
    estimate. *)
val estimate : env -> op -> float
