(** Cost-based plan search.

    A beam-directed transformation closure with memoized deduplication:
    a compact stand-in for the Volcano/Cascades engine of the paper's
    Section 4, preserving its architecture (orthogonal local rules +
    cost-based choice). *)

open Relalg
open Relalg.Algebra

type rule = { name : string; apply : op -> op list }

(** The rule set enabled by a configuration. *)
val rules_for : Config.t -> env:Props.env -> cat:Catalog.t -> rule list

(** Id-insensitive canonical rendering: column ids renumbered by first
    occurrence.  Two trees equal up to column identity share a
    canonical form. *)
val canonical : op -> string

(** Fire a rule at every node, returning one whole tree per firing. *)
val apply_everywhere : rule -> op -> op list

(** One rule firing, with the local subtrees it rewrote — the evidence
    the integrity verifier needs to re-check the rewrite's side
    conditions ({!Relalg.Verify.check_rewrite}). *)
type firing = {
  site_before : op;  (** the subtree the rule matched *)
  site_after : op;  (** what the rule put in its place *)
  result : op;  (** the whole tree with the site replaced *)
}

(** Like {!apply_everywhere}, but keeps the rewrite sites. *)
val apply_everywhere_sites : rule -> op -> firing list

(** {2 Search trace}

    What the beam search did, round by round — which rules fired, how
    many products the memo rejected as duplicates, how many survivors
    the beam kept, and how the best cost moved.  Recorded only under
    [optimize ~record_trace:true]. *)

type rule_stat = {
  rule : string;
  fired : int;  (** trees the rule produced this round *)
  kept : int;  (** accepted into the memo (new alternatives) *)
  dups : int;  (** rejected as duplicates of memoized trees *)
  invalid : int;  (** rejected by the plan integrity verifier *)
}

type round_trace = {
  round : int;
  stats : rule_stat list;  (** per-rule counts; rules that never fired omitted *)
  survivors : int;  (** beam width actually kept for the next round *)
  best_cost_after : float;
}

type trace = {
  rounds : round_trace list;
  total_fired : int;
  total_duplicates : int;
  total_invalid : int;  (** candidates dropped by the integrity verifier *)
  quarantined : (string * string) list;
      (** rules disabled mid-search, with the violation that disabled them *)
  exhausted : bool;  (** the [max_alternatives] budget stopped the search *)
}

val trace_to_string : trace -> string
val trace_to_json : trace -> string

type outcome = {
  best : op;
  best_cost : float;
  explored : int;  (** number of distinct alternatives considered *)
  seed_cost : float;
  trace : trace option;  (** present when [optimize ~record_trace:true] *)
  quarantined : (string * string) list;
      (** rules the verifier disabled mid-search (rule, violation) —
          non-empty means a transformation emitted a broken plan and was
          cut off; always populated, trace or not *)
}

(** Explore from [seed] and return the cheapest plan.  [must] restricts
    the final choice (not the exploration) to plans satisfying a
    predicate — benches use it to force one strategy of the paper's
    lattice; falls back to the seed if nothing qualifies.
    [record_trace] additionally returns the per-round rule-firing
    trace.

    [verify] (default [true]) runs {!Relalg.Verify} over every
    rule-emitted candidate: structural/semantic invariants on the whole
    tree plus rewrite-specific side conditions at the firing site.  A
    candidate with violations is dropped before it is ever costed, and
    the offending rule is quarantined — skipped for the rest of this
    search — so one broken transformation cannot poison the plan space.
    [extra_rules] appends caller-supplied rules to the configured set
    (tests use it to exercise quarantine with a deliberately unsound
    rule). *)
val optimize :
  ?must:(op -> bool) ->
  ?record_trace:bool ->
  ?verify:bool ->
  ?extra_rules:rule list ->
  Config.t ->
  Stats.t ->
  env:Props.env ->
  op ->
  outcome
