(* Cost-based plan search.

   The architecture follows the paper's Section 4: normalization
   produces a canonical tree, then transformation rules generate
   execution alternatives and the cheapest estimated plan wins.  The
   search is a bounded transformation closure with memoized
   deduplication — a simplification of the Volcano/Cascades engine the
   paper's system uses, preserving its essential structure (orthogonal
   local rules + cost-based choice among all derivable trees).

   Deduplication canonicalizes column ids (rules mint fresh ids on each
   firing, so textual identity would never fire). *)

open Relalg
open Relalg.Algebra

type rule = { name : string; apply : op -> op list }

let rules_for (cfg : Config.t) ~(env : Props.env) ~(cat : Catalog.t) : rule list =
  let r name f = { name; apply = (fun o -> match f o with Some t -> [ t ] | None -> []) } in
  let rmulti name f = { name; apply = f } in
  List.concat
    [ (if cfg.groupby_reorder then
         [ r "groupby-pull-above-join" (Rules.Groupby_reorder.pull_above_join ~env);
           r "groupby-push-below-join" (Rules.Groupby_reorder.push_below_join ~env);
           r "groupby-push-below-outerjoin" (Rules.Groupby_reorder.push_below_outerjoin ~env);
           r "semijoin-below-groupby" Rules.Groupby_reorder.push_semijoin_below_groupby;
           r "semijoin-above-groupby" Rules.Groupby_reorder.pull_semijoin_above_groupby;
           r "filter-below-groupby" Rules.Groupby_reorder.push_filter_below_groupby;
           r "filter-above-groupby" Rules.Groupby_reorder.pull_filter_above_groupby
         ]
       else []);
      (if cfg.local_agg then
         [ r "eager-local-aggregate" Rules.Local_agg.eager_aggregate;
           r "local-groupby-below-join" Rules.Local_agg.push_local_below_join;
           r "local-groupby-collapse" Rules.Local_agg.collapse_global
         ]
       else []);
      (if cfg.segment_apply then
         [ r "segment-apply-intro" Rules.Segment_apply.introduce;
           r "segment-apply-join-pushdown" Rules.Segment_apply.push_join_below
         ]
       else []);
      (if cfg.correlated_exec then
         [ r "join-to-indexed-apply" (Rules.Correlated.join_to_apply ~cat) ]
       else []);
      (if cfg.property_rewrites then
         [ r "groupby-eliminate-key" (Rules.Property_rules.eliminate_groupby_on_key ~env);
           r "max1row-elide" (Rules.Property_rules.elide_max1row ~env);
           r "semijoin-to-inner" (Rules.Property_rules.semijoin_to_inner ~env);
           r "outerjoin-prune" (Rules.Property_rules.prune_unused_outerjoin ~env)
         ]
       else []);
      (if cfg.join_reorder then
         [ r "join-commute" Rules.Join_rules.commute;
           rmulti "join-associate"
             (fun o -> List.filter_map (fun x -> x) (Rules.Join_rules.associate o));
           r "filter-pullup" Rules.Join_rules.filter_pullup;
           r "project-pullup" Rules.Join_rules.project_pullup
         ]
       else [])
    ]

(* id-insensitive canonical form: renumber #ids by first occurrence in
   the printed tree *)
let canonical (o : op) : string =
  let s = Pp.to_string o in
  let buf = Buffer.create (String.length s) in
  let map = Hashtbl.create 64 in
  let next = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '#' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j > !i + 1 then begin
        let id = String.sub s (!i + 1) (!j - !i - 1) in
        let canon =
          match Hashtbl.find_opt map id with
          | Some c -> c
          | None ->
              incr next;
              let c = string_of_int !next in
              Hashtbl.replace map id c;
              c
        in
        Buffer.add_char buf '#';
        Buffer.add_string buf canon;
        i := !j
      end
      else begin
        Buffer.add_char buf '#';
        incr i
      end
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* One rule firing: the matched subtree, what the rule turned it into,
   and the whole rebuilt tree.  The verifier needs the site pair (to
   re-derive rule preconditions) and the result (to check global
   invariants). *)
type firing = { site_before : op; site_after : op; result : op }

(* apply [rule] at every node of [t], producing one firing per position *)
let apply_everywhere_sites (rule : rule) (t : op) : firing list =
  let results = ref [] in
  let rec go (node : op) (rebuild : op -> op) =
    List.iter
      (fun node' ->
        results := { site_before = node; site_after = node'; result = rebuild node' } :: !results)
      (rule.apply node);
    let children = Op.children node in
    List.iteri
      (fun idx child ->
        let rebuild_child c' =
          rebuild
            (Op.with_children node
               (List.mapi (fun j ch -> if j = idx then c' else ch) children))
        in
        go child rebuild_child)
      children
  in
  go t (fun x -> x);
  !results

let apply_everywhere (rule : rule) (t : op) : op list =
  List.map (fun f -> f.result) (apply_everywhere_sites rule t)

(* --- search trace ---------------------------------------------------- *)

(* What the beam search did, round by round: which rules fired (and how
   many of their products the memo rejected as duplicates), how many
   survivors the beam kept, and how the best cost moved.  Recorded only
   when requested — the hot path pays one [match] per rule firing. *)

type rule_stat = {
  rule : string;
  fired : int;  (** trees the rule produced this round *)
  kept : int;  (** accepted into the memo (new alternatives) *)
  dups : int;  (** rejected as duplicates of memoized trees *)
  invalid : int;  (** rejected by the plan integrity verifier *)
}

type round_trace = {
  round : int;
  stats : rule_stat list;  (** per-rule counts; rules that never fired omitted *)
  survivors : int;  (** beam width actually kept for the next round *)
  best_cost_after : float;
}

type trace = {
  rounds : round_trace list;
  total_fired : int;
  total_duplicates : int;
  total_invalid : int;  (** candidates dropped by the integrity verifier *)
  quarantined : (string * string) list;
      (** rules disabled mid-search: (rule, first violation) *)
  exhausted : bool;  (** the [max_alternatives] budget stopped the search *)
}

type outcome = {
  best : op;
  best_cost : float;
  explored : int;  (** number of distinct alternatives considered *)
  seed_cost : float;
  trace : trace option;  (** present when [optimize ~record_trace:true] *)
  quarantined : (string * string) list;
      (** rules the verifier disabled this search: (rule, first violation) *)
}

let trace_to_string (t : trace) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "search trace: %d rounds, %d firings, %d duplicates%s%s\n"
       (List.length t.rounds) t.total_fired t.total_duplicates
       (if t.total_invalid > 0 then Printf.sprintf ", %d invalid" t.total_invalid else "")
       (if t.exhausted then " (alternatives budget exhausted)" else ""));
  List.iter
    (fun (rule, why) ->
      Buffer.add_string b (Printf.sprintf "  QUARANTINED %s: %s\n" rule why))
    t.quarantined;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  round %d: %d survivors, best cost %.0f\n" r.round r.survivors
           r.best_cost_after);
      List.iter
        (fun s ->
          Buffer.add_string b
            (Printf.sprintf "    %-32s fired=%-4d kept=%-4d dup=%d%s\n" s.rule s.fired
               s.kept s.dups
               (if s.invalid > 0 then Printf.sprintf " invalid=%d" s.invalid else "")))
        r.stats)
    t.rounds;
  Buffer.contents b

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let trace_to_json (t : trace) : string =
  let round_json (r : round_trace) =
    Printf.sprintf
      "{\"round\":%d,\"survivors\":%d,\"best_cost_after\":%.2f,\"rules\":[%s]}" r.round
      r.survivors r.best_cost_after
      (String.concat ","
         (List.map
            (fun s ->
              Printf.sprintf
                "{\"rule\":\"%s\",\"fired\":%d,\"kept\":%d,\"dups\":%d,\"invalid\":%d}"
                s.rule s.fired s.kept s.dups s.invalid)
            r.stats))
  in
  Printf.sprintf
    "{\"rounds\":[%s],\"total_fired\":%d,\"total_duplicates\":%d,\"total_invalid\":%d,\"quarantined\":[%s],\"exhausted\":%b}"
    (String.concat "," (List.map round_json t.rounds))
    t.total_fired t.total_duplicates t.total_invalid
    (String.concat ","
       (List.map
          (fun (rule, why) ->
            Printf.sprintf "{\"rule\":\"%s\",\"violation\":\"%s\"}" (json_escape rule)
              (json_escape why))
          t.quarantined))
    t.exhausted

(* Beam-directed transformation closure: every candidate is
   cleanup-normalized (merging/eliding trivial projections, so
   syntactic debris from rule firings neither pollutes the memo nor
   hides duplicates), costed once, and only the most promising
   [beam_width] trees of each round are expanded further. *)
let beam_width = 64

let optimize ?(must = fun (_ : op) -> true) ?(record_trace = false) ?(verify = true)
    ?(extra_rules = []) (cfg : Config.t) (stats : Stats.t) ~(env : Props.env) (seed : op) :
    outcome =
  (* [must]: restrict the final choice to plans satisfying a predicate
     (used by the benches to force one strategy of the lattice);
     exploration itself is unrestricted.  Falls back to the seed when no
     explored plan qualifies.
     [verify]: run every candidate a rule emits through the plan
     integrity verifier; invalid candidates are dropped (never costed)
     and the offending rule is quarantined for the rest of this search,
     so one bad rule degrades plan quality instead of correctness.
     [extra_rules] extends the configured rule set (tests use it to
     inject deliberately broken rules). *)
  let cat = Stats.catalog stats in
  let rules = rules_for cfg ~env ~cat @ extra_rules in
  (* rule name -> first violation summary; consulted before every firing *)
  let quarantine : (string, string) Hashtbl.t = Hashtbl.create 4 in
  (* all rules preserve the root schema (interior rewrites are rebuilt
     into the same context; root rewrites restore their output), so
     every candidate must produce the seed's schema — the executor
     slices result rows positionally *)
  let expect_schema = Op.schema seed in
  let seen = Hashtbl.create 128 in
  let best = ref seed in
  let best_cost = ref infinity in
  let add t =
    let t = Normalize.Simplify.cleanup t in
    let key = canonical t in
    if Hashtbl.mem seen key then None
    else begin
      Hashtbl.replace seen key ();
      let c = Cost.of_plan stats t in
      if c < !best_cost && must t then begin
        best := t;
        best_cost := c
      end;
      Some (c, t)
    end
  in
  let seed_cost =
    match add seed with Some (c, _) -> c | None -> Cost.of_plan stats seed
  in
  let frontier = ref [ (seed_cost, seed) ] in
  let round = ref 0 in
  (* trace accumulation; all of it is dead weight unless [record_trace] *)
  let rounds = ref [] in
  let total_fired = ref 0 in
  let total_dups = ref 0 in
  let total_invalid = ref 0 in
  let exhausted = ref false in
  let round_stats : (string, rule_stat) Hashtbl.t = Hashtbl.create 16 in
  let bump name ~fired ~kept ~dups ~invalid =
    let s =
      match Hashtbl.find_opt round_stats name with
      | Some s -> s
      | None -> { rule = name; fired = 0; kept = 0; dups = 0; invalid = 0 }
    in
    Hashtbl.replace round_stats name
      { s with
        fired = s.fired + fired;
        kept = s.kept + kept;
        dups = s.dups + dups;
        invalid = s.invalid + invalid
      };
    total_fired := !total_fired + fired;
    total_dups := !total_dups + dups
  in
  let close_round survivors =
    if record_trace then begin
      let stats =
        List.sort
          (fun a b -> compare a.rule b.rule)
          (Hashtbl.fold (fun _ s acc -> s :: acc) round_stats [])
      in
      let best_cost_after = if !best_cost = infinity then seed_cost else !best_cost in
      rounds := { round = !round; stats; survivors; best_cost_after } :: !rounds;
      Hashtbl.reset round_stats
    end
  in
  let exception Budget_exhausted in
  (try
     while !round < cfg.max_rounds && !frontier <> [] do
       incr round;
       let next = ref [] in
       List.iter
         (fun (_, t) ->
           List.iter
             (fun rule ->
               if not (Hashtbl.mem quarantine rule.name) then
                 List.iter
                   (fun (f : firing) ->
                     if Hashtbl.length seen >= cfg.max_alternatives then
                       raise Budget_exhausted;
                     (* a firing earlier in this list may have just
                        quarantined the rule: skip its remaining output *)
                     if not (Hashtbl.mem quarantine rule.name) then begin
                       let violations =
                         if verify then
                           match Verify.check ~expect_schema f.result with
                           | [] ->
                               Verify.check_rewrite ~env ~rule:rule.name
                                 ~before:f.site_before ~after:f.site_after
                           | vs -> vs
                         else []
                       in
                       match violations with
                       | v :: _ ->
                           Hashtbl.replace quarantine rule.name
                             (Verify.violation_summary v);
                           incr total_invalid;
                           if record_trace then
                             bump rule.name ~fired:1 ~kept:0 ~dups:0 ~invalid:1
                       | [] -> (
                           match add f.result with
                           | Some entry ->
                               next := entry :: !next;
                               if record_trace then
                                 bump rule.name ~fired:1 ~kept:1 ~dups:0 ~invalid:0
                           | None ->
                               if record_trace then
                                 bump rule.name ~fired:1 ~kept:0 ~dups:1 ~invalid:0)
                     end)
                   (apply_everywhere_sites rule t))
             rules)
         !frontier;
       let ranked = List.sort (fun (a, _) (b, _) -> Float.compare a b) !next in
       frontier := List.filteri (fun i _ -> i < beam_width) ranked;
       close_round (List.length !frontier)
     done
   with Budget_exhausted ->
     exhausted := true;
     close_round 0);
  let best_cost = if !best_cost = infinity then Cost.of_plan stats seed else !best_cost in
  let quarantined =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) quarantine [])
  in
  let trace =
    if record_trace then
      Some
        { rounds = List.rev !rounds;
          total_fired = !total_fired;
          total_duplicates = !total_dups;
          total_invalid = !total_invalid;
          quarantined;
          exhausted = !exhausted;
        }
    else None
  in
  { best = !best; best_cost; explored = Hashtbl.length seen; seed_cost; trace; quarantined }
