(** Cost model, in abstract work units (roughly: rows touched).

    Mirrors the executor's strategy selection: joins with equi-conjuncts
    run as hash joins, other joins as nested loops; Apply runs the inner
    expression once per outer row, except when the inner is a filtered
    base-table scan with an index on an equality column — then it
    costs an index probe per outer row. *)

open Relalg
open Relalg.Algebra

(** Per-row work-unit constants used by the formulas. *)

val touch : float
val hash_build : float
val probe_cost : float

(** Does the predicate contain an equi conjunct usable by a hash join
    between the two column sets? *)
val has_equi : expr -> Col.Set.t -> Col.Set.t -> bool

(** Index fast path for Apply, mirroring the executor's probe
    detection: a (possibly projected) filtered base-table scan with a
    declared index on an equality column.  Returns (table, column). *)
val apply_index_path : Catalog.t -> Col.Set.t -> op -> (string * string) option

(** Cost of a tree under a cardinality environment. *)
val cost : Card.env -> Catalog.t -> op -> float

(** Convenience: build the environment from statistics and cost. *)
val of_plan : Stats.t -> op -> float
