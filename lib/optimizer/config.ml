(* Optimizer configuration: each orthogonal technique can be toggled
   independently, which is how the benchmark harness re-creates the
   "query processor technology levels" compared in the paper's Section 5
   and how the ablation benches isolate one primitive at a time. *)

type t = {
  decorrelate : bool;  (** Apply removal during normalization (Section 2.3) *)
  simplify_oj : bool;  (** outerjoin simplification (Section 1.2) *)
  class2 : bool;  (** identities (5)-(7): duplicate common subexpressions *)
  groupby_reorder : bool;  (** Section 3.1/3.2 reorderings *)
  local_agg : bool;  (** Section 3.3 eager local aggregation *)
  segment_apply : bool;  (** Section 3.4 segmented execution *)
  correlated_exec : bool;  (** re-introduce index-lookup Apply (Section 4) *)
  join_reorder : bool;  (** inner-join commute/associate (exposes patterns) *)
  property_rewrites : bool;
      (** rewrites proven by the symbolic property engine: FD-derived
          keys, cardinality intervals (GroupBy elimination, Max1row
          elision, semijoin-to-inner, outerjoin pruning) *)
  max_alternatives : int;  (** plan-space exploration budget *)
  max_rounds : int;
}

let full =
  { decorrelate = true;
    simplify_oj = true;
    class2 = false;
    groupby_reorder = true;
    local_agg = true;
    segment_apply = true;
    correlated_exec = true;
    join_reorder = true;
    property_rewrites = true;
    max_alternatives = 400;
    max_rounds = 6;
  }

(* A processor that executes subqueries exactly as written: no
   flattening, no aggregate optimization.  The "correlated execution"
   baseline of Section 1.1. *)
let correlated_only =
  { full with
    decorrelate = false;
    simplify_oj = false;
    groupby_reorder = false;
    local_agg = false;
    segment_apply = false;
    correlated_exec = false;
    max_rounds = 0;
  }

(* Flattening and outerjoin simplification only — roughly the
   Dayal/Kim-era processor: subqueries normalized, but no GroupBy
   reordering or segmented execution. *)
let decorrelated_only =
  { full with
    groupby_reorder = false;
    local_agg = false;
    segment_apply = false;
    correlated_exec = false;
    max_rounds = 0;
  }

let name_of c =
  if c = full then "full"
  else if c = correlated_only then "correlated"
  else if c = decorrelated_only then "decorrelated"
  else "custom"

(* Unlike [name_of] (which collapses every modified record to
   "custom"), the fingerprint enumerates every field, so two configs
   compare equal iff their fingerprints do.  The plan cache keys on it:
   a plan optimized under one technique mix must never serve a request
   made under another. *)
let fingerprint c =
  Printf.sprintf "%b%b%b%b%b%b%b%b%b:%d:%d" c.decorrelate c.simplify_oj c.class2
    c.groupby_reorder c.local_agg c.segment_apply c.correlated_exec c.join_reorder
    c.property_rewrites c.max_alternatives c.max_rounds
