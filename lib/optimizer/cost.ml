(* Cost model.

   Mirrors the executor's strategy selection: joins with equi-conjuncts
   run as hash joins, other joins as nested loops; Apply runs the inner
   expression once per outer row, except when the inner is a filtered
   base-table scan with an index on an equality column — then it costs
   an index probe per outer row.  Costs are abstract work units
   (roughly: rows touched). *)

open Relalg
open Relalg.Algebra

let touch = 1.0
let hash_build = 1.6
let probe_cost = 2.5

(* does the predicate contain a usable equi conjunct between sides? *)
let has_equi pred (lcols : Col.Set.t) (rcols : Col.Set.t) =
  List.exists
    (fun c ->
      match c with
      | Cmp (Eq, a, b) ->
          (Col.Set.subset (Expr.cols a) lcols && Col.Set.subset (Expr.cols b) rcols)
          || (Col.Set.subset (Expr.cols b) lcols && Col.Set.subset (Expr.cols a) rcols)
      | _ -> false)
    (conjuncts pred)

(* index fast path detection, mirroring Exec's [index_probe_path] *)
let rec apply_index_path (cat : Catalog.t) (lcols : Col.Set.t) (right : op) :
    (string * string) option =
  match right with
  | Project (_, i) -> apply_index_path cat lcols i
  | Select (p, TableScan { table; cols }) ->
      let scan_cols = Col.Set.of_list cols in
      List.find_map
        (fun c ->
          match c with
          | Cmp (Eq, ColRef rc, e) | Cmp (Eq, e, ColRef rc) ->
              if
                Col.Set.mem rc scan_cols
                && Col.Set.is_empty (Col.Set.inter (Expr.cols e) scan_cols)
                && Rules.Correlated.has_index cat table rc.Col.name
              then Some (table, rc.Col.name)
              else None
          | _ -> None)
        (conjuncts p)
  | _ -> None

let rec cost (env : Card.env) (cat : Catalog.t) (o : op) : float =
  let card = Card.estimate env in
  match o with
  | TableScan _ -> card o *. touch
  | ConstTable _ | SegmentHole _ | CseScan _ -> card o *. touch
  | Select (p, i) ->
      let n = float_of_int (List.length (conjuncts p)) in
      cost env cat i +. (card i *. 0.3 *. n)
  | Project (_, i) -> cost env cat i +. (card i *. 0.2)
  | Rownum { input = i; _ } -> cost env cat i +. (card i *. 0.1)
  | Max1row i -> cost env cat i
  | Join { kind; pred; left; right } ->
      let cl = cost env cat left and cr = cost env cat right in
      let nl = card left and nr = card right in
      let out = card o in
      let lset = Op.schema_set left and rset = Op.schema_set right in
      if has_equi pred lset rset then
        cl +. cr +. (hash_build *. nr) +. (1.2 *. nl) +. (0.5 *. out)
      else begin
        ignore kind;
        cl +. cr +. (nl *. Float.max 1.0 nr *. 0.8) +. (0.5 *. out)
      end
  | Apply { left; right; _ } -> (
      let cl = cost env cat left in
      let nl = card left in
      match apply_index_path cat (Op.schema_set left) right with
      | Some (table, col) ->
          let matched =
            let rows = float_of_int (Stats.row_count env.stats table) in
            let nd = float_of_int (max 1 (Stats.ndv env.stats table col)) in
            rows /. nd
          in
          cl +. (nl *. (probe_cost +. matched))
      | None ->
          (* re-execute the inner expression per outer row *)
          let ci = cost env cat right in
          cl +. (nl *. Float.max 1.0 ci) +. (0.5 *. card o))
  | SegmentApply { seg_cols; outer; inner } ->
      let co = cost env cat outer in
      let no = card outer in
      let nseg = Card.group_card env seg_cols no in
      let saved = env.hole_card in
      env.hole_card <- Float.max 1.0 (no /. nseg);
      let ci = cost env cat inner in
      env.hole_card <- saved;
      co +. (hash_build *. no) +. (nseg *. Float.max 1.0 ci)
  | GroupBy { input; _ } | LocalGroupBy { input; _ } ->
      cost env cat input +. (hash_build *. card input) +. (0.5 *. card o)
  | ScalarAgg { input; _ } -> cost env cat input +. card input
  | UnionAll (l, r) -> cost env cat l +. cost env cat r
  | Except (l, r) -> cost env cat l +. cost env cat r +. (hash_build *. card r) +. card l

let of_plan (stats : Stats.t) (o : op) : float =
  let env = Card.make_env stats o in
  cost env (Stats.catalog stats) o
