(* Bounded rule-soundness prover (small-scope checking, in the style of
   Cosette): for every registered rewrite rule, enumerate ALL databases
   with at most [k] rows per table over a tiny value domain (including
   NULLs for nullable columns), fire the rule everywhere its own
   precondition matches on a schema template, and check bag equivalence
   of the before/after trees by direct interpretation.

   The small-scope hypothesis is the argument for the bound: the
   rewrite identities in this engine (paper Sections 2-3) are built
   from per-row and per-group reasoning — join predicates see one row
   pair, groups are bags of rows — so a violation, if any, already
   shows up on a database with very few rows and values drawn from a
   domain just rich enough to exercise equality, inequality and NULL
   (two distinct values + NULL).  Every historical bug class the
   verifier knows about (lost padded rows, count-vs-NULL confusion on
   empty groups, duplicate (non-)preservation) manifests with k = 2.

   Templates live here, next to the rule registry consumers: a rule
   registered in [Optimizer.Search.rules_for] with no template below is
   reported as a failure, so adding a rule forces adding its proof
   obligation. *)

open Relalg
open Relalg.Algebra

(* ------------------------------------------------------------------ *)
(* The prover schema: four tiny tables exercising the static           *)
(* preconditions rules test — keys, NOT NULL, declared indexes.        *)
(*   s(sa int PRIMARY KEY, sb int NULL)                                *)
(*   r(rc int NOT NULL, rd int NULL)         -- keyless               *)
(*   t(te int NULL, tf int NULL)             -- keyless, all nullable *)
(*   u(ug int PRIMARY KEY, uh int NULL)      -- index target          *)
(* ------------------------------------------------------------------ *)

let prover_catalog () : Catalog.t =
  let open Value in
  let cat = Catalog.create () in
  Catalog.add_table cat
    { name = "s";
      columns = [ Catalog.col "sa" TInt; Catalog.col ~nullable:true "sb" TInt ];
      primary_key = [ "sa" ];
      indexes = []
    };
  Catalog.add_table cat
    { name = "r";
      columns = [ Catalog.col "rc" TInt; Catalog.col ~nullable:true "rd" TInt ];
      primary_key = [];
      indexes = []
    };
  Catalog.add_table cat
    { name = "t";
      columns = [ Catalog.col ~nullable:true "te" TInt; Catalog.col ~nullable:true "tf" TInt ];
      primary_key = [];
      indexes = []
    };
  Catalog.add_table cat
    { name = "u";
      columns = [ Catalog.col "ug" TInt; Catalog.col ~nullable:true "uh" TInt ];
      primary_key = [ "ug" ];
      indexes = []
    };
  cat

let scan (cat : Catalog.t) (name : string) : op * Col.t list =
  match Catalog.find_table cat name with
  | None -> failwith ("prover catalog has no table " ^ name)
  | Some def ->
      let cols =
        List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty) def.columns
      in
      (TableScan { table = name; cols }, cols)

(* ------------------------------------------------------------------ *)
(* Templates: one or more pattern trees per rule name, built so the    *)
(* rule's own precondition fires on them.                              *)
(* ------------------------------------------------------------------ *)

let eq a b = Cmp (Eq, ColRef a, ColRef b)
let gt0 a = Cmp (Gt, ColRef a, Const (Value.Int 0))
let sum_of c = { fn = Sum (ColRef c); out = Col.fresh "sm" Value.TFloat }

let templates_for (cat : Catalog.t) (rule : string) : (string * op) list =
  let t label o = (label, o) in
  (* common building blocks, fresh columns per template *)
  let s_r_join ?(kind = Inner) () =
    let s, scols = scan cat "s" and r, rcols = scan cat "r" in
    let sa = List.nth scols 0 and sb = List.nth scols 1 in
    let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
    (Join { kind; pred = eq sb rc; left = s; right = r }, sa, sb, rc, rd)
  in
  match rule with
  | "groupby-pull-above-join" ->
      (* S ⋈ (G R) with a key on S, both orientations *)
      let mk flip =
        let s, _ = scan cat "s" and r, rcols = scan cat "r" in
        let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
        let sb = List.nth (Op.schema s) 1 in
        let g = GroupBy { keys = [ rc ]; aggs = [ sum_of rd ]; input = r } in
        let left, right = if flip then (g, s) else (s, g) in
        Join { kind = Inner; pred = eq sb rc; left; right }
      in
      [ t "join s (groupby r)" (mk false); t "join (groupby r) s" (mk true) ]
  | "groupby-push-below-join" ->
      (* the three-condition push (3.1), plus the equated-column
         relaxation where the R-side predicate column is not grouped *)
      let j, sa, _, rc, rd = s_r_join () in
      let direct = GroupBy { keys = [ sa; rc ]; aggs = [ sum_of rd ]; input = j } in
      let j2, sa2, _, _, rd2 = s_r_join () in
      let equated = GroupBy { keys = [ sa2 ]; aggs = [ sum_of rd2 ]; input = j2 } in
      [ t "groupby (s join r), grouped join col" direct;
        t "groupby (s join r), equated join col" equated
      ]
  | "groupby-push-below-outerjoin" ->
      (* Section 3.2: every compensation class at once — NULL-padding
         suffices for sum, count-star compensates to 1, count(e) to 0 *)
      let j, sa, _, rc, rd = s_r_join ~kind:LeftOuter () in
      let aggs =
        [ sum_of rd;
          { fn = CountStar; out = Col.fresh "cstar" Value.TInt };
          { fn = Count (ColRef rd); out = Col.fresh "cnt" Value.TInt };
          { fn = Max (ColRef rd); out = Col.fresh "mx" Value.TInt }
        ]
      in
      [ t "groupby (s loj r)" (GroupBy { keys = [ sa; rc ]; aggs; input = j }) ]
  | "semijoin-below-groupby" | "semijoin-above-groupby" ->
      let mk kind above =
        let s, scols = scan cat "s" and r, rcols = scan cat "r" in
        let sa = List.hd scols in
        let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
        if above then
          GroupBy
            { keys = [ rc ];
              aggs = [ sum_of rd ];
              input = Join { kind; pred = eq rc sa; left = r; right = s }
            }
        else
          Join
            { kind;
              pred = eq rc sa;
              left = GroupBy { keys = [ rc ]; aggs = [ sum_of rd ]; input = r };
              right = s
            }
      in
      let above = rule = "semijoin-above-groupby" in
      [ t "semijoin" (mk Semi above); t "antijoin" (mk Anti above) ]
  | "filter-below-groupby" ->
      let r, rcols = scan cat "r" in
      let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
      [ t "filter (groupby r)"
          (Select (gt0 rc, GroupBy { keys = [ rc ]; aggs = [ sum_of rd ]; input = r }))
      ]
  | "filter-above-groupby" ->
      let r, rcols = scan cat "r" in
      let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
      [ t "groupby (filter r)"
          (GroupBy { keys = [ rc ]; aggs = [ sum_of rd ]; input = Select (gt0 rc, r) })
      ]
  | "eager-local-aggregate" ->
      (* every split in the local/global table of Section 3.3, including
         avg's composite (sum, count) decomposition *)
      let j, sa, _, _, rd = s_r_join () in
      let aggs =
        [ sum_of rd;
          { fn = CountStar; out = Col.fresh "cstar" Value.TInt };
          { fn = Count (ColRef rd); out = Col.fresh "cnt" Value.TInt };
          { fn = Avg (ColRef rd); out = Col.fresh "av" Value.TFloat };
          { fn = Min (ColRef rd); out = Col.fresh "mn" Value.TInt };
          { fn = Max (ColRef rd); out = Col.fresh "mx" Value.TInt }
        ]
      in
      [ t "groupby (s join r), all agg classes"
          (GroupBy { keys = [ sa ]; aggs; input = j })
      ]
  | "local-groupby-below-join" ->
      (* the local aggregate alone changes its own output; it is only
         sound under the recombining global GroupBy, so the template
         carries the whole eager stack *)
      let j, sa, _, _, rd = s_r_join () in
      let lsum = Col.fresh "lsum" Value.TFloat in
      let lg =
        LocalGroupBy { keys = [ sa ]; aggs = [ { fn = Sum (ColRef rd); out = lsum } ]; input = j }
      in
      [ t "groupby (localgroupby (s join r))"
          (GroupBy
             { keys = [ sa ];
               aggs = [ { fn = Sum (ColRef lsum); out = Col.fresh "gs" Value.TFloat } ];
               input = lg
             })
      ]
  | "local-groupby-collapse" ->
      (* one composition per class the rule knows: sum∘sum, sum∘count,
         sum∘count*, min∘min, max∘max — all over the same grouping key,
         so each global group holds exactly one partial row *)
      let r, rcols = scan cat "r" in
      let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
      let lsum = Col.fresh "lsum" Value.TFloat in
      let lcnt = Col.fresh "lcnt" Value.TInt in
      let lstar = Col.fresh "lstar" Value.TInt in
      let lmn = Col.fresh "lmn" Value.TInt in
      let lmx = Col.fresh "lmx" Value.TInt in
      let lg =
        LocalGroupBy
          { keys = [ rc ];
            aggs =
              [ { fn = Sum (ColRef rd); out = lsum };
                { fn = Count (ColRef rd); out = lcnt };
                { fn = CountStar; out = lstar };
                { fn = Min (ColRef rd); out = lmn };
                { fn = Max (ColRef rd); out = lmx }
              ];
            input = r
          }
      in
      [ t "groupby (same-key localgroupby r), all compositions"
          (GroupBy
             { keys = [ rc ];
               aggs =
                 [ { fn = Sum (ColRef lsum); out = Col.fresh "gsum" Value.TFloat };
                   { fn = Sum (ColRef lcnt); out = Col.fresh "gcnt" Value.TInt };
                   { fn = Sum (ColRef lstar); out = Col.fresh "gstar" Value.TInt };
                   { fn = Min (ColRef lmn); out = Col.fresh "gmn" Value.TInt };
                   { fn = Max (ColRef lmx); out = Col.fresh "gmx" Value.TInt }
                 ];
               input = lg
             })
      ]
  | "segment-apply-intro" ->
      (* X ⋈ G(X'): two isomorphic scans of r, the join equating the
         grouping column with its image, plus a residual comparison
         against the aggregate *)
      let x, xcols = scan cat "r" in
      let core, ccols = scan cat "r" in
      let rc = List.nth xcols 0 and rd = List.nth xcols 1 in
      let rc' = List.nth ccols 0 and rd' = List.nth ccols 1 in
      let mx = Col.fresh "mx" Value.TInt in
      let g =
        GroupBy { keys = [ rc' ]; aggs = [ { fn = Max (ColRef rd'); out = mx } ]; input = core }
      in
      [ t "r join (groupby r') on seg col"
          (Join
             { kind = Inner;
               pred = And (eq rc rc', Cmp (Lt, ColRef rd, ColRef mx));
               left = x;
               right = g
             })
      ]
  | "segment-apply-join-pushdown" ->
      (* build an introduced SegmentApply (via the intro rule itself),
         then join it with an unrelated table on a segmenting column *)
      let x, xcols = scan cat "r" in
      let core, ccols = scan cat "r" in
      let rc = List.nth xcols 0 and rd = List.nth xcols 1 in
      let rc' = List.nth ccols 0 and rd' = List.nth ccols 1 in
      let mx = Col.fresh "mx" Value.TInt in
      let g =
        GroupBy { keys = [ rc' ]; aggs = [ { fn = Max (ColRef rd'); out = mx } ]; input = core }
      in
      let j =
        Join
          { kind = Inner;
            pred = And (eq rc rc', Cmp (Le, ColRef rd, ColRef mx));
            left = x;
            right = g
          }
      in
      let sa =
        match Rules.Segment_apply.introduce j with
        | Some sa -> sa
        | None -> failwith "segment-apply-intro refused the pushdown template seed"
      in
      let tt, tcols = scan cat "t" in
      let te = List.hd tcols in
      [ t "(segmentapply) join t on seg col"
          (Join { kind = Inner; pred = eq rc te; left = sa; right = tt })
      ]
  | "join-to-indexed-apply" ->
      (* u carries a primary-key index on ug: the rule's static
         precondition; checked for plain and semijoin variants *)
      let mk kind =
        let s, scols = scan cat "s" and u, ucols = scan cat "u" in
        let sb = List.nth scols 1 and ug = List.hd ucols in
        Join { kind; pred = eq sb ug; left = s; right = u }
      in
      [ t "s join u on pk" (mk Inner); t "s semijoin u on pk" (mk Semi) ]
  | "join-commute" ->
      let j, _, _, _, _ = s_r_join () in
      [ t "s join r" j ]
  | "join-associate" ->
      let j, _, _, _, rd = s_r_join () in
      let tt, tcols = scan cat "t" in
      let te = List.hd tcols in
      [ t "(s join r) join t" (Join { kind = Inner; pred = eq rd te; left = j; right = tt }) ]
  | "filter-pullup" ->
      let s, scols = scan cat "s" and r, rcols = scan cat "r" in
      let sb = List.nth scols 1 in
      let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
      [ t "s join (filter r)"
          (Join { kind = Inner; pred = eq sb rc; left = s; right = Select (gt0 rd, r) })
      ]
  | "project-pullup" ->
      let s, scols = scan cat "s" and r, rcols = scan cat "r" in
      let sb = List.nth scols 1 in
      let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
      let p1 = Col.fresh "p1" Value.TInt and p2 = Col.fresh "p2" Value.TInt in
      let proj =
        Project
          ( [ { expr = ColRef rc; out = p1 };
              { expr = Arith (Add, ColRef rd, Const (Value.Int 1)); out = p2 }
            ],
            r )
      in
      [ t "s join (project r)"
          (Join { kind = Inner; pred = eq sb p1; left = s; right = proj })
      ]
  | "oj-simplify" ->
      (* a null-rejecting filter above the outerjoin, directly and
         through a GroupBy *)
      let j, _, _, _, rd = s_r_join ~kind:LeftOuter () in
      let direct = Select (gt0 rd, j) in
      let j2, sa2, _, rc2, rd2 = s_r_join ~kind:LeftOuter () in
      let g =
        GroupBy { keys = [ sa2; rc2 ]; aggs = [ sum_of rd2 ]; input = j2 }
      in
      [ t "filter (s loj r)" direct; t "filter (groupby (s loj r))" (Select (gt0 rc2, g)) ]
  | "simplify" ->
      (* cleanup + heuristic pushdown: a movable filter above a join and
         stacked projections *)
      let j, _, _, _, rd = s_r_join () in
      let pushable = Select (gt0 rd, j) in
      let r, rcols = scan cat "r" in
      let rc = List.nth rcols 0 in
      let p1 = Col.fresh "p1" Value.TInt in
      let p2 = Col.fresh "p2" Value.TInt in
      let stacked =
        Project
          ( [ { expr = Arith (Add, ColRef p1, Const (Value.Int 1)); out = p2 } ],
            Project ([ { expr = ColRef rc; out = p1 } ], r) )
      in
      [ t "filter (s join r)" pushable; t "project (project r)" stacked ]
  | "groupby-eliminate-key" ->
      (* grouping on a derived key: directly on the primary key with
         every aggregate class (the rewrite substitutes a single-row
         expression per class), as DISTINCT over a key superset, and
         through the FD closure — the grouping column is merely
         *equated* to the key by a filter underneath *)
      let s, scols = scan cat "s" in
      let sa = List.nth scols 0 and sb = List.nth scols 1 in
      let aggs =
        [ sum_of sb;
          { fn = CountStar; out = Col.fresh "cstar" Value.TInt };
          { fn = Count (ColRef sb); out = Col.fresh "cnt" Value.TInt };
          { fn = Avg (ColRef sb); out = Col.fresh "av" Value.TFloat };
          { fn = Min (ColRef sb); out = Col.fresh "mn" Value.TInt };
          { fn = Max (ColRef sb); out = Col.fresh "mx" Value.TInt }
        ]
      in
      let direct = GroupBy { keys = [ sa ]; aggs; input = s } in
      let s2, scols2 = scan cat "s" in
      let sa2 = List.nth scols2 0 and sb2 = List.nth scols2 1 in
      let distinct = GroupBy { keys = [ sa2; sb2 ]; aggs = []; input = s2 } in
      let s3, scols3 = scan cat "s" in
      let sa3 = List.nth scols3 0 and sb3 = List.nth scols3 1 in
      let closure =
        GroupBy
          { keys = [ sb3 ];
            aggs = [ { fn = Min (ColRef sa3); out = Col.fresh "mn" Value.TInt } ];
            input = Select (eq sb3 sa3, s3)
          }
      in
      [ t "groupby s on pk, all agg classes" direct;
        t "distinct s on pk superset" distinct;
        t "groupby on column equated to pk (closure)" closure
      ]
  | "max1row-elide" ->
      (* inputs proven [_,1]: a ScalarAgg (exactly one row) and a
         primary-key point select (at most one row) *)
      let r, rcols = scan cat "r" in
      let rd = List.nth rcols 1 in
      let u, ucols = scan cat "u" in
      let ug = List.hd ucols in
      [ t "max1row (scalaragg r)" (Max1row (ScalarAgg { aggs = [ sum_of rd ]; input = r }));
        t "max1row (pk point select u)"
          (Max1row (Select (Cmp (Eq, ColRef ug, Const (Value.Int 0)), u)))
      ]
  | "semijoin-to-inner" ->
      (* the join predicate pins u's primary key to a left column, so
         each left row matches at most one u row; checked with a
         nullable and a non-nullable left join column *)
      let mk leftcol_idx =
        let s, scols = scan cat "s" and u, ucols = scan cat "u" in
        let lc = List.nth scols leftcol_idx and ug = List.hd ucols in
        Join { kind = Semi; pred = eq lc ug; left = s; right = u }
      in
      [ t "s semijoin u on nullable=pk" (mk 1); t "s semijoin u on pk=pk" (mk 0) ]
  | "outerjoin-prune" ->
      (* the projection above the outerjoin references only left
         columns, and the right side is key-unique per left row: the
         join can't drop rows (outer) nor duplicate them (key) *)
      let s, scols = scan cat "s" and u, ucols = scan cat "u" in
      let sa = List.nth scols 0 and sb = List.nth scols 1 in
      let ug = List.hd ucols in
      let p1 = Col.fresh "p1" Value.TInt and p2 = Col.fresh "p2" Value.TInt in
      [ t "project-left (s loj u on pk)"
          (Project
             ( [ { expr = ColRef sa; out = p1 };
                 { expr = Arith (Add, ColRef sb, Const (Value.Int 1)); out = p2 }
               ],
               Join { kind = LeftOuter; pred = eq sb ug; left = s; right = u } ))
      ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Database enumeration                                                *)
(* ------------------------------------------------------------------ *)

(* all rows over the per-column domains: {0, 1} plus NULL when the
   column is nullable *)
let rows_for (def : Catalog.table) : Value.t array list =
  let domain (c : Catalog.column) =
    let base = [ Value.Int 0; Value.Int 1 ] in
    if c.col_nullable then Value.Null :: base else base
  in
  List.fold_right
    (fun c acc ->
      List.concat_map (fun v -> List.map (fun row -> v :: row) acc) (domain c))
    def.columns [ [] ]
  |> List.map Array.of_list

(* multisets of at most [k] rows (order-insensitive: non-decreasing
   index sequences), keeping only those that respect the primary key *)
let multisets (def : Catalog.table) (k : int) : Value.t array list list =
  let rows = rows_for def in
  let rec combos pool len =
    if len = 0 then [ [] ]
    else
      match pool with
      | [] -> []
      | x :: xs -> List.map (fun c -> x :: c) (combos pool (len - 1)) @ combos xs len
  in
  let all = List.concat_map (fun n -> combos rows n) (List.init (k + 1) (fun i -> i)) in
  match def.primary_key with
  | [] -> all
  | pk ->
      let positions =
        List.map
          (fun name ->
            let rec idx i = function
              | [] -> failwith "pk column missing"
              | (c : Catalog.column) :: _ when c.col_name = name -> i
              | _ :: rest -> idx (i + 1) rest
            in
            idx 0 def.columns)
          pk
      in
      let key (row : Value.t array) = List.map (fun i -> row.(i)) positions in
      List.filter
        (fun rows ->
          let ks = List.map key rows in
          List.length (List.sort_uniq compare ks) = List.length ks)
        all

let tables_of (o : op) : string list =
  let acc = ref [] in
  let rec walk o =
    (match o with
    | TableScan { table; _ } -> if not (List.mem table !acc) then acc := table :: !acc
    | _ -> ());
    List.iter walk (Op.children o)
  in
  walk o;
  List.sort compare !acc

(* every assignment of a row multiset to each table, in increasing
   total-row order — the first failing database is then minimal *)
let databases (cat : Catalog.t) (tables : string list) (k : int) :
    (string * Value.t array list) list list =
  let per_table =
    List.map
      (fun name ->
        match Catalog.find_table cat name with
        | None -> failwith ("prover catalog has no table " ^ name)
        | Some def -> List.map (fun ms -> (name, ms)) (multisets def k))
      tables
  in
  let all =
    List.fold_right
      (fun choices acc ->
        List.concat_map (fun db -> List.map (fun c -> c :: db) choices) acc)
      per_table [ [] ]
  in
  let total db = List.fold_left (fun n (_, rows) -> n + List.length rows) 0 db in
  List.stable_sort (fun a b -> compare (total a) (total b)) all

(* ------------------------------------------------------------------ *)
(* Interpretation                                                      *)
(* ------------------------------------------------------------------ *)

let render_row (r : Value.t array) : string =
  String.concat "|"
    (Array.to_list
       (Array.map
          (function Value.Float f -> Printf.sprintf "%.6g" f | v -> Value.to_string v)
          r))

(* the bag an operator tree denotes on a database, as sorted rendered
   rows; executor failures become a distinguished bag so that a rewrite
   turning a working plan into a crashing one (or vice versa) counts as
   a counterexample *)
let interpret (cat : Catalog.t) (db : (string * Value.t array list) list) (o : op) :
    string list =
  try
    let store = Storage.Database.create cat in
    List.iter (fun (name, rows) -> Storage.Table.load (Storage.Database.table store name) rows) db;
    Storage.Database.build_declared_indexes store;
    let ctx = Exec.Executor.make_ctx store in
    let rows = Exec.Executor.run ctx Exec.Executor.empty_lookup o in
    List.sort compare (List.map render_row rows)
  with e -> [ "<executor error: " ^ Printexc.to_string e ^ ">" ]

let render_db (db : (string * Value.t array list) list) : string =
  String.concat "; "
    (List.map
       (fun (name, rows) ->
         Printf.sprintf "%s = {%s}" name
           (String.concat ", "
              (List.map
                 (fun r ->
                   "("
                   ^ String.concat ", " (Array.to_list (Array.map Value.to_string r))
                   ^ ")")
                 rows)))
       db)

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

type rule_spec = {
  sp_rule : Optimizer.Search.rule;
  sp_templates : (string * op) list;  (** (label, pattern tree) *)
}

type counterexample = {
  cx_template : string;
  cx_db : string;  (** the minimal database, rendered *)
  cx_before : op;
  cx_after : op;
  cx_before_bag : string list;
  cx_after_bag : string list;
  cx_total_rows : int;
}

type report = {
  rp_rule : string;
  rp_templates : int;
  rp_firings : int;  (** distinct valid rewrites proven *)
  rp_databases : int;  (** databases interpreted *)
  rp_vacuous : string list;
      (** labels of templates on which the rule never fired — dead proof
          obligations worth tightening *)
  rp_counterexample : counterexample option;
}

let passed_report (r : report) =
  r.rp_counterexample = None && r.rp_firings > 0 && r.rp_templates > 0

let check_rule ?(k = 2) (cat : Catalog.t) (spec : rule_spec) : report =
  let firings = ref 0 and dbs_run = ref 0 and cx = ref None in
  let vacuous = ref [] in
  List.iter
    (fun (label, tmpl) ->
      if !cx = None then begin
        (match Verify.check tmpl with
        | [] -> ()
        | v :: _ ->
            failwith
              (Printf.sprintf "template %s for %s is malformed: %s" label
                 spec.sp_rule.name
                 (Verify.violation_to_string v)));
        let expect = Op.schema tmpl in
        (* fire the rule at every site; keep only structurally valid,
           schema-preserving products — the same gate the search applies *)
        let afters =
          List.filter_map
            (fun (f : Optimizer.Search.firing) ->
              match Verify.check ~expect_schema:expect f.result with
              | [] -> Some f.result
              | _ -> None)
            (Optimizer.Search.apply_everywhere_sites spec.sp_rule tmpl)
        in
        (* a rule may derive the same tree from several sites *)
        let afters =
          let seen = Hashtbl.create 4 in
          List.filter
            (fun a ->
              let c = Optimizer.Search.canonical a in
              if Hashtbl.mem seen c then false
              else begin
                Hashtbl.add seen c ();
                true
              end)
            afters
        in
        firings := !firings + List.length afters;
        if afters = [] then vacuous := label :: !vacuous;
        if afters <> [] then
          let tables = tables_of tmpl in
          (* afters may scan tables the template does not (none today,
             but keep the enumeration honest) *)
          let tables =
            List.sort_uniq compare (tables @ List.concat_map tables_of afters)
          in
          List.iter
            (fun db ->
              if !cx = None then begin
                incr dbs_run;
                let before_bag = interpret cat db tmpl in
                List.iter
                  (fun after ->
                    if !cx = None then
                      let after_bag = interpret cat db after in
                      if after_bag <> before_bag then
                        cx :=
                          Some
                            { cx_template = label;
                              cx_db = render_db db;
                              cx_before = tmpl;
                              cx_after = after;
                              cx_before_bag = before_bag;
                              cx_after_bag = after_bag;
                              cx_total_rows =
                                List.fold_left
                                  (fun n (_, rows) -> n + List.length rows)
                                  0 db
                            })
                  afters
              end)
            (databases cat tables k)
      end)
    spec.sp_templates;
  { rp_rule = spec.sp_rule.name;
    rp_templates = List.length spec.sp_templates;
    rp_firings = !firings;
    rp_databases = !dbs_run;
    rp_vacuous = List.rev !vacuous;
    rp_counterexample = !cx;
  }

(* ------------------------------------------------------------------ *)
(* The registry: every rule the optimizer can fire, plus the two       *)
(* whole-tree normalization passes, each with its proof obligations.   *)
(* ------------------------------------------------------------------ *)

let pass_rule name (f : op -> op) : Optimizer.Search.rule =
  { name; apply = (fun o -> let o' = f o in if o' = o then [] else [ o' ]) }

let builtin_specs () : Catalog.t * rule_spec list =
  let cat = prover_catalog () in
  let env = Catalog.props_env cat in
  let rules = Optimizer.Search.rules_for Optimizer.Config.full ~env ~cat in
  let rule_specs =
    List.map
      (fun (r : Optimizer.Search.rule) ->
        { sp_rule = r; sp_templates = templates_for cat r.name })
      rules
  in
  let passes =
    [ pass_rule "oj-simplify" Normalize.Oj_simplify.simplify;
      pass_rule "simplify" Normalize.Simplify.simplify
    ]
  in
  let pass_specs =
    List.map (fun r -> { sp_rule = r; sp_templates = templates_for cat r.Optimizer.Search.name }) passes
  in
  (cat, rule_specs @ pass_specs)

let check_all ?k () : report list =
  let cat, specs = builtin_specs () in
  List.map (check_rule ?k cat) specs

let report_to_string (r : report) : string =
  if r.rp_templates = 0 then
    Printf.sprintf "FAIL  %-28s no templates registered — add proof obligations in Smallscope.templates_for\n"
      r.rp_rule
  else
    match r.rp_counterexample with
    | None when r.rp_firings = 0 ->
        Printf.sprintf
          "FAIL  %-28s vacuous: no template produced a valid firing (%d templates)\n"
          r.rp_rule r.rp_templates
    | None ->
        let vac =
          match r.rp_vacuous with
          | [] -> ""
          | ls ->
              Printf.sprintf "  [%d vacuous: %s]" (List.length ls)
                (String.concat "; " ls)
        in
        Printf.sprintf "ok    %-28s %d rewrites over %d databases, %d templates%s\n"
          r.rp_rule r.rp_firings r.rp_databases r.rp_templates vac
    | Some cx ->
        Printf.sprintf
          "FAIL  %-28s COUNTEREXAMPLE (template %s, %d total rows)\n\
             database: %s\n\
           before:\n%s  bag: [%s]\n\
           after:\n%s  bag: [%s]\n"
          r.rp_rule cx.cx_template cx.cx_total_rows cx.cx_db
          (Pp.to_string cx.cx_before)
          (String.concat "; " cx.cx_before_bag)
          (Pp.to_string cx.cx_after)
          (String.concat "; " cx.cx_after_bag)

let passed (rs : report list) = List.for_all passed_report rs

(* Aggregate coverage over a whole prover run: how much of the rewrite
   surface the small-scope sweep actually exercised.  Written verbatim
   to the CI artifact so a coverage regression (a rule going vacuous, a
   database count collapsing) is visible in the build output. *)
let coverage_to_string (rs : report list) : string =
  let buf = Buffer.create 512 in
  let sum f = List.fold_left (fun n r -> n + f r) 0 rs in
  let vacuous = sum (fun r -> List.length r.rp_vacuous) in
  Buffer.add_string buf
    (Printf.sprintf
       "prover coverage: %d rules, %d templates (%d vacuous), %d proven rewrites, %d databases interpreted\n"
       (List.length rs)
       (sum (fun r -> r.rp_templates))
       vacuous
       (sum (fun r -> r.rp_firings))
       (sum (fun r -> r.rp_databases)));
  Buffer.add_string buf
    (Printf.sprintf "%-28s %9s %8s %9s %8s  %s\n" "rule" "templates" "firings"
       "databases" "vacuous" "status");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %9d %8d %9d %8d  %s\n" r.rp_rule r.rp_templates
           r.rp_firings r.rp_databases
           (List.length r.rp_vacuous)
           (if passed_report r then "ok" else "FAIL")))
    rs;
  Buffer.contents buf
