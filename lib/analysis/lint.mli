(** Plan linter: a static bottom-up pass over optimized plans, built on
    the derived properties in {!Relalg.Props}.  Every finding is a sound
    consequence of the plan's structure, not a heuristic.

    Checks and severities:

    - [cross-type-cmp] (ERROR): a comparison whose operand types can
      never match — FALSE/NULL on every row.  The pipeline never
      produces one, so an ERROR means a pipeline bug; the fuzzer treats
      it as a failure.
    - [contradictory-pred] (WARNING): a filter provably never satisfied.
    - [oj-simplifiable] (WARNING): outerjoins that provably reject NULL
      downstream and could run as inner joins.
    - [redundant-groupby] (WARNING): grouping columns (plus equivalent
      and constant-bound columns) cover a key of the input.
    - [residual-apply] (WARNING when the configuration promises full
      decorrelation, INFO otherwise) and [residual-segment-apply].
    - [tautological-pred], [dead-columns], [max1row-elidable] (INFO). *)

open Relalg
open Relalg.Algebra

type severity = Error | Warning | Info

val severity_rank : severity -> int
val severity_label : severity -> string

type finding = {
  severity : severity;
  code : string;  (** stable kebab-case identifier of the check *)
  node : string;  (** one-line label of the operator it anchors to *)
  detail : string;
}

(** What the optimizer configuration promises about the plan shape. *)
type expectations = {
  no_residual_apply : bool;
  no_residual_segment_apply : bool;
}

(** No shape expectations (residual Apply is INFO, not WARNING). *)
val relaxed : expectations

(** Derive expectations from an optimizer configuration: decorrelation
    without correlated execution promises an Apply-free plan. *)
val of_config : Optimizer.Config.t -> expectations

(** Lint a plan.  [env] supplies catalog keys and nullability.  The
    result is sorted most severe first. *)
val run : ?expect:expectations -> env:Props.env -> op -> finding list

val errors : finding list -> finding list
val finding_to_string : finding -> string

(** Multi-line rendering; ["clean\n"] when there are no findings. *)
val render : finding list -> string

(** One line: ["clean"] or e.g. ["1 WARNING (oj-simplifiable), 2 INFO (dead-columns)"]. *)
val summary : finding list -> string

val to_json : finding list -> string
