(* Plan linter: a bottom-up static pass over final (optimized) plans.

   Each check is a sound consequence of the derived properties in
   [Relalg.Props] — when a finding fires, the reported fact is true of
   the plan, not a heuristic guess.  Severities:

   ERROR    the plan computes something statically nonsensical; the
            binder and the rewrite rules never produce it, so an ERROR
            on an optimized plan is a bug in the pipeline (the fuzzer
            treats it as a failure).
   WARNING  the plan is correct but leaves provable work on the table
            (simplifiable outerjoin, redundant GroupBy, contradictory
            filter) or violates a configuration expectation (residual
            Apply after full decorrelation).
   INFO     worth a look, routinely benign (dead columns, elidable
            Max1row, tautological conjunct). *)

open Relalg
open Relalg.Algebra

type severity = Error | Warning | Info

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let severity_label = function Error -> "ERROR" | Warning -> "WARNING" | Info -> "INFO"

type finding = {
  severity : severity;
  code : string;  (** stable kebab-case identifier of the check *)
  node : string;  (** one-line label of the operator it anchors to *)
  detail : string;
}

(* What the optimizer configuration promises about the plan shape. *)
type expectations = {
  no_residual_apply : bool;
      (** decorrelation on, correlated execution off: any Apply left in
          the plan is a decorrelation gap *)
  no_residual_segment_apply : bool;
}

let relaxed = { no_residual_apply = false; no_residual_segment_apply = false }

let of_config (cfg : Optimizer.Config.t) =
  { no_residual_apply = cfg.decorrelate && not cfg.correlated_exec;
    no_residual_segment_apply = cfg.decorrelate && not cfg.segment_apply;
  }

(* ------------------------------------------------------------------ *)

(* Static type of a scalar expression, where determinable without
   context.  Int and Float are mutually comparable (the executor
   compares them numerically); every other type only matches itself. *)
let static_ty (e : expr) : Value.ty option =
  match e with ColRef c -> Some c.Col.ty | Const v -> Value.type_of v | _ -> None

let tys_comparable (a : Value.ty) (b : Value.ty) =
  match (a, b) with
  | Value.TInt, Value.TFloat | Value.TFloat, Value.TInt -> true
  | _ -> a = b

(* every comparison in [e] whose operand types can never match: such a
   comparison is FALSE or NULL on every row *)
let rec cross_type_cmps (e : expr) : (Value.ty * Value.ty) list =
  let sub = List.concat_map cross_type_cmps in
  match e with
  | Cmp (_, a, b) ->
      let here =
        match (static_ty a, static_ty b) with
        | Some ta, Some tb when not (tys_comparable ta tb) -> [ (ta, tb) ]
        | _ -> []
      in
      here @ sub [ a; b ]
  | Arith (_, a, b) | And (a, b) | Or (a, b) -> sub [ a; b ]
  | Not a | IsNull a | Like (a, _) -> sub [ a ]
  | Case (arms, els) ->
      sub (List.concat_map (fun (c, v) -> [ c; v ]) arms)
      @ (match els with Some e -> sub [ e ] | None -> [])
  | ColRef _ | Const _ -> []
  (* relational-valued scalar operators are binder output; the linter
     runs on optimized plans where they no longer occur *)
  | Subquery _ | Exists _ | InSub _ | QuantCmp _ -> []

(* the scalar expressions evaluated by one operator (children excluded) *)
let node_exprs (o : op) : expr list =
  let agg_exprs aggs =
    List.filter_map (fun (a : agg) -> agg_input_expr a.fn) aggs
  in
  match o with
  | Select (p, _) -> [ p ]
  | Project (ps, _) -> List.map (fun p -> p.expr) ps
  | Join { pred; _ } | Apply { pred; _ } -> [ pred ]
  | GroupBy { aggs; _ } | LocalGroupBy { aggs; _ } | ScalarAgg { aggs; _ } ->
      agg_exprs aggs
  | TableScan _ | ConstTable _ | CseScan _ | SegmentApply _ | SegmentHole _
  | UnionAll _ | Except _ | Max1row _ | Rownum _ ->
      []

let count_outerjoins (o : op) : int =
  let n = ref 0 in
  let rec walk o =
    (match o with
    | Join { kind = LeftOuter; _ } | Apply { kind = LeftOuter; _ } -> incr n
    | _ -> ());
    List.iter walk (Op.children o)
  in
  walk o;
  !n

(* ------------------------------------------------------------------ *)
(* The dead-column walk: top-down with the set of columns the context  *)
(* requires, mirroring the column-pruning pass (Normalize.Prune) but   *)
(* reporting instead of rewriting.  Base-table scans are exempt — they *)
(* are full-width by design (storage rows are never narrowed).         *)
(* ------------------------------------------------------------------ *)

let dead_columns (root : op) : (string * Col.t list) list =
  let found = ref [] in
  let report child required =
    match child with
    | TableScan _ | ConstTable _ | SegmentHole _ -> ()
    | _ ->
        let dead =
          List.filter (fun c -> not (Col.Set.mem c required)) (Op.schema child)
        in
        if dead <> [] then found := (Pp.label child, dead) :: !found
  in
  let rec walk (required : Col.Set.t) (o : op) =
    let visit child req =
      let req = Col.Set.inter req (Op.schema_set child) in
      report child req;
      walk req child
    in
    match o with
    | TableScan _ | ConstTable _ | SegmentHole _ | CseScan _ -> ()
    | Select (p, i) -> visit i (Col.Set.union required (Expr.cols p))
    | Project (projs, i) ->
        let used = List.filter (fun pr -> Col.Set.mem pr.out required) projs in
        let below =
          List.fold_left
            (fun acc pr -> Col.Set.union acc (Expr.cols pr.expr))
            Col.Set.empty used
        in
        visit i below
    | Join { pred; left; right; _ } ->
        let req = Col.Set.union required (Expr.cols pred) in
        visit left req;
        visit right req
    | Apply { pred; left; right; _ } ->
        (* the right side's correlated references must survive in the left *)
        let req =
          Col.Set.union required (Col.Set.union (Expr.cols pred) (Op.free_cols right))
        in
        visit left req;
        visit right req
    | SegmentApply { seg_cols; outer; inner } ->
        let hole_srcs =
          let acc = ref Col.Set.empty in
          let rec srcs o =
            (match o with
            | SegmentHole { src; _ } -> acc := Col.Set.union !acc (Col.Set.of_list src)
            | _ -> ());
            List.iter srcs (Op.children o)
          in
          srcs inner;
          !acc
        in
        visit outer
          (Col.Set.union required (Col.Set.union (Col.Set.of_list seg_cols) hole_srcs));
        visit inner required
    | GroupBy { keys; aggs; input } | LocalGroupBy { keys; aggs; input } ->
        let used_aggs =
          List.filter (fun (a : agg) -> Col.Set.mem a.out required) aggs
        in
        let below =
          List.fold_left
            (fun acc (a : agg) ->
              match agg_input_expr a.fn with
              | None -> acc
              | Some e -> Col.Set.union acc (Expr.cols e))
            (Col.Set.of_list keys) used_aggs
        in
        visit input below
    | ScalarAgg { aggs; input } ->
        let used_aggs =
          List.filter (fun (a : agg) -> Col.Set.mem a.out required) aggs
        in
        let below =
          List.fold_left
            (fun acc (a : agg) ->
              match agg_input_expr a.fn with
              | None -> acc
              | Some e -> Col.Set.union acc (Expr.cols e))
            Col.Set.empty used_aggs
        in
        visit input below
    | UnionAll (l, r) | Except (l, r) ->
        (* positional operators: full width on both sides *)
        visit l (Op.schema_set l);
        visit r (Op.schema_set r)
    | Max1row i -> visit i required
    | Rownum { input; _ } -> visit input required
  in
  walk (Op.schema_set root) root;
  List.rev !found

(* ------------------------------------------------------------------ *)

let run ?(expect = relaxed) ~(env : Props.env) (plan : op) : finding list =
  let findings = ref [] in
  let add severity code node detail =
    findings := { severity; code; node; detail } :: !findings
  in
  (* per-node checks, bottom-up *)
  let rec walk (o : op) =
    List.iter walk (Op.children o);
    let label = Pp.label o in
    (* 0. contradictory cardinality interval: lo > hi means the node can
       never execute successfully — today this arises exactly when a
       Max1row guard sits over an input proven to hold two or more rows,
       so the plan is statically guaranteed to raise *)
    (let fd = Fd.analyze ~env o in
     if Fd.contradiction fd then
       add Error "contradictory-interval" label
         (Printf.sprintf
            "inferred cardinality %s is contradictory: this operator always fails"
            (Fd.interval_to_string fd.Fd.card)));
    (* 1. comparisons whose operand types can never match *)
    List.iter
      (fun e ->
        List.iter
          (fun (ta, tb) ->
            add Error "cross-type-cmp" label
              (Printf.sprintf
                 "comparison between %s and %s is FALSE or NULL on every row"
                 (Value.ty_name ta) (Value.ty_name tb)))
          (cross_type_cmps e))
      (node_exprs o);
    (* 2/3. predicate verdicts on filtering operators *)
    let pred_checks pred inputs =
      let nonnull =
        List.fold_left
          (fun acc i -> Col.Set.union acc (Props.nonnullable ~env i))
          Col.Set.empty inputs
      in
      let consts =
        List.fold_left
          (fun acc i ->
            Col.IdMap.union (fun _ v _ -> Some v) acc (Props.const_bindings i))
          Col.IdMap.empty inputs
      in
      match Props.pred_verdict ~nonnull ~consts pred with
      | Props.Contradiction ->
          add Warning "contradictory-pred" label
            (Printf.sprintf "predicate %s is never satisfied: the operator %s"
               (Expr.to_string pred)
               (match o with
               | Join { kind = LeftOuter; _ } | Apply { kind = LeftOuter; _ } ->
                   "pads every outer row"
               | Join { kind = Anti; _ } | Apply { kind = Anti; _ } ->
                   "passes every left row"
               | _ -> "produces no rows"))
      | Props.Tautology ->
          if not (is_true_const pred) then
            add Info "tautological-pred" label
              (Printf.sprintf "predicate %s is true on every row" (Expr.to_string pred))
      | Props.Unknown -> ()
    in
    (match o with
    | Select (p, i) -> pred_checks p [ i ]
    | Join { pred; left; right; _ } | Apply { pred; left; right; _ } ->
        (* the predicate is evaluated against raw left x right pairs,
           before any outer padding, so both sides' properties apply *)
        if not (is_true_const pred) then pred_checks pred [ left; right ]
    | _ -> ());
    (* 4. residual correlated operators *)
    (match o with
    | Apply _ ->
        let sev = if expect.no_residual_apply then Warning else Info in
        add sev "residual-apply" label
          (if expect.no_residual_apply then
             "Apply survived in a plan configured for full decorrelation"
           else "plan re-executes the inner expression per outer row")
    | SegmentApply _ when expect.no_residual_segment_apply ->
        add Warning "residual-segment-apply" label
          "SegmentApply survived although segmented execution is disabled"
    | _ -> ());
    (* 5. GroupBy whose groups are provably singletons.  The FD-closure
       derivation is strictly stronger than the old equivalence-class
       expansion and also yields the proving chain for the diagnostic;
       the Props path is kept as a belt-and-braces fallback. *)
    (match o with
    | GroupBy { keys; input; _ } -> (
        let fd = Fd.analyze ~env input in
        let kset = Col.Set.of_list keys in
        match Fd.cover_chain fd kset with
        | Some (unique, chain) ->
            add Warning "redundant-groupby" label
              (Printf.sprintf
                 "grouping columns %s determine key %s%s: every group has exactly one row"
                 (Fd.cols_to_string kset)
                 (if Col.Set.is_empty unique then "{} (input has at most one row)"
                  else Fd.cols_to_string unique)
                 (match chain with
                 | [] -> ""
                 | fds ->
                     " via " ^ String.concat ", " (List.map Fd.fd_to_string fds)))
        | None ->
            let classes = Props.equiv_classes input in
            let consts = Props.const_bindings input in
            let const_cols =
              List.filter
                (fun (c : Col.t) -> Col.IdMap.mem c.id consts)
                (Op.schema input)
            in
            let covered =
              Col.Set.union (Props.equate classes kset) (Col.Set.of_list const_cols)
            in
            if Props.covers_key ~env input covered then
              add Warning "redundant-groupby" label
                "grouping columns cover a key of the input: every group has exactly one row")
    | _ -> ());
    (* 6. Max1row over a provably single-row input *)
    match o with
    | Max1row i ->
        let fd = Fd.analyze ~env i in
        if Fd.max_one fd then
          add Info "max1row-elidable" label
            (Printf.sprintf
               "input provably has at most one row (card %s); the guard can be elided"
               (Fd.interval_to_string fd.Fd.card))
        else if Props.max_one_row ~env i then
          add Info "max1row-elidable" label
            "input provably has at most one row; the guard can be elided"
    | _ -> ()
  in
  walk plan;
  (* whole-plan checks *)
  let before = count_outerjoins plan in
  if before > 0 then begin
    let after = count_outerjoins (Normalize.Oj_simplify.simplify plan) in
    if after < before then
      add Warning "oj-simplifiable" "plan"
        (Printf.sprintf
           "%d of %d outerjoin(s) provably reject NULL downstream and can run as inner joins"
           (before - after) before)
  end;
  List.iter
    (fun (node, dead) ->
      add Info "dead-columns" node
        (Printf.sprintf "computes %s never used above"
           (Pp.cols_to_string dead)))
    (dead_columns plan);
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> compare a.code b.code
      | n -> n)
    (List.rev !findings)

let errors fs = List.filter (fun f -> f.severity = Error) fs

let finding_to_string (f : finding) : string =
  Printf.sprintf "%-7s %-22s at %s: %s" (severity_label f.severity) f.code f.node
    f.detail

let render (fs : finding list) : string =
  match fs with
  | [] -> "clean\n"
  | fs -> String.concat "" (List.map (fun f -> finding_to_string f ^ "\n") fs)

(* a one-line summary: "clean" or "2 WARNING (code, code), 1 INFO (code)" *)
let summary (fs : finding list) : string =
  if fs = [] then "clean"
  else
    let bucket sev =
      let codes =
        List.sort_uniq compare
          (List.filter_map (fun f -> if f.severity = sev then Some f.code else None) fs)
      in
      let n = List.length (List.filter (fun f -> f.severity = sev) fs) in
      if n = 0 then None
      else
        Some
          (Printf.sprintf "%d %s (%s)" n (severity_label sev) (String.concat ", " codes))
    in
    String.concat ", " (List.filter_map bucket [ Error; Warning; Info ])

let to_json (fs : finding list) : string =
  let item f =
    Printf.sprintf "{\"severity\":%s,\"code\":%s,\"node\":%s,\"detail\":%s}"
      (Exec.Metrics.json_string (severity_label f.severity))
      (Exec.Metrics.json_string f.code)
      (Exec.Metrics.json_string f.node)
      (Exec.Metrics.json_string f.detail)
  in
  "[" ^ String.concat "," (List.map item fs) ^ "]"
