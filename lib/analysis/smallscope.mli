(** Bounded rule-soundness prover (small-scope checking).

    For every rewrite rule registered with the optimizer, this module
    enumerates {e all} databases with at most [k] rows per table over a
    tiny value domain ({0, 1}, plus NULL for nullable columns), fires
    the rule everywhere its own precondition matches on one or more
    schema templates, and checks bag equivalence of the before/after
    trees by direct interpretation through the executor.

    Databases are visited in increasing total-row order, so the first
    failure reported is a minimal counterexample.  A registered rule
    with no template, or whose templates produce no valid firing, is
    reported as a failure too — every rule must carry at least one
    live proof obligation. *)

open Relalg
open Relalg.Algebra

(** The four-table prover schema: [s(sa PK, sb NULL)], keyless
    [r(rc NOT NULL, rd NULL)], all-nullable [t(te, tf)], and
    [u(ug PK, uh NULL)] as an index target. *)
val prover_catalog : unit -> Catalog.t

(** Fresh-column scan of a prover table; returns the scan and its
    columns in declaration order. *)
val scan : Catalog.t -> string -> op * Col.t list

(** Built-in templates for a registered rule name; [[]] if none. *)
val templates_for : Catalog.t -> string -> (string * op) list

type rule_spec = {
  sp_rule : Optimizer.Search.rule;
  sp_templates : (string * op) list;  (** (label, pattern tree) *)
}

type counterexample = {
  cx_template : string;
  cx_db : string;  (** the minimal database, rendered *)
  cx_before : op;
  cx_after : op;
  cx_before_bag : string list;
  cx_after_bag : string list;
  cx_total_rows : int;
}

type report = {
  rp_rule : string;
  rp_templates : int;
  rp_firings : int;  (** distinct valid rewrites proven *)
  rp_databases : int;  (** databases interpreted *)
  rp_vacuous : string list;
      (** labels of templates on which the rule never fired — dead proof
          obligations worth tightening *)
  rp_counterexample : counterexample option;
}

(** No counterexample, at least one template, at least one firing. *)
val passed_report : report -> bool

(** Exhaustively check one rule at bound [k] (default 2). *)
val check_rule : ?k:int -> Catalog.t -> rule_spec -> report

(** The prover catalog plus one spec per registered optimizer rule and
    per whole-tree normalization pass (oj-simplify, simplify). *)
val builtin_specs : unit -> Catalog.t * rule_spec list

(** Check every built-in spec. *)
val check_all : ?k:int -> unit -> report list

val report_to_string : report -> string
val passed : report list -> bool

(** Aggregate coverage over a whole run: rules, templates, vacuity
    counts, firings and databases interpreted, one summary header plus
    one line per rule.  The prove-rules driver writes this to the CI
    coverage artifact. *)
val coverage_to_string : report list -> string
