(* Keyed plan cache: LRU + byte budget, generation-vector
   invalidation, single-flight computation.

   Polymorphic in the stored value — the engine stores plan templates,
   the tests store whatever makes the scenario observable.  Every
   entry carries the generation of each table its plan reads, captured
   by [compute]; a lookup whose generations have moved discards the
   entry and recomputes ([`Stale]).  Concurrent misses on one key are
   deduplicated: the first caller computes while the rest wait on the
   in-flight slot and receive the computed value directly.

   Locking: the cache mutex is released around [compute] (which may
   optimize for milliseconds) and may be held across [current_gen]
   (which only reads a table's generation counter). *)

type 'a entry = {
  value : 'a;
  gens : (string * int) list;  (** table -> generation when computed *)
  bytes : int;
  mutable tick : int;  (** LRU clock at last use *)
}

type 'a flight = { mutable outcome : ('a, exn) result option }

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** entries discarded because a generation moved *)
  evictions : int;  (** entries discarded by the byte budget *)
  single_flight_waits : int;  (** lookups served by a concurrent compute *)
  entries : int;
  bytes : int;
}

type 'a t = {
  mu : Mutex.t;
  cond : Condition.t;
  tbl : (string, 'a entry) Hashtbl.t;
  inflight : (string, 'a flight) Hashtbl.t;
  max_bytes : int;
  mutable bytes : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable waits : int;
}

let create ?(max_bytes = 8 * 1024 * 1024) () : 'a t =
  { mu = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 64;
    inflight = Hashtbl.create 8;
    max_bytes;
    bytes = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
    waits = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stats (t : 'a t) : stats =
  locked t (fun () ->
      { hits = t.hits;
        misses = t.misses;
        invalidations = t.invalidations;
        evictions = t.evictions;
        single_flight_waits = t.waits;
        entries = Hashtbl.length t.tbl;
        bytes = t.bytes;
      })

let drop t key (e : 'a entry) =
  Hashtbl.remove t.tbl key;
  t.bytes <- t.bytes - e.bytes

(* Evict least-recently-used entries (never [keep]) until the budget
   holds; if [keep] alone still overflows, it goes too — an oversized
   plan is returned to its caller but not retained. *)
let enforce_budget t ~(keep : string) =
  let lru () =
    Hashtbl.fold
      (fun k (e : 'a entry) acc ->
        if k = keep then acc
        else
          match acc with
          | Some (_, best) when best.tick <= e.tick -> acc
          | _ -> Some (k, e))
      t.tbl None
  in
  let rec go () =
    if t.bytes > t.max_bytes then
      match lru () with
      | Some (k, e) ->
          drop t k e;
          t.evictions <- t.evictions + 1;
          go ()
      | None -> (
          match Hashtbl.find_opt t.tbl keep with
          | Some e ->
              drop t keep e;
              t.evictions <- t.evictions + 1
          | None -> ())
  in
  go ()

let gens_current current_gen (e : 'a entry) =
  List.for_all (fun (table, g) -> current_gen table = g) e.gens

(* Runs [compute] with the lock released, publishes the outcome to any
   waiters, and installs the entry.  [stale] only flavours the return
   tag. *)
let compute_inflight (t : 'a t) ~key ~stale
    ~(compute : unit -> 'a * (string * int) list * int) =
  let fl = { outcome = None } in
  Hashtbl.replace t.inflight key fl;
  if stale then t.invalidations <- t.invalidations + 1
  else t.misses <- t.misses + 1;
  Mutex.unlock t.mu;
  let outcome = try Ok (compute ()) with e -> Error e in
  Mutex.lock t.mu;
  Hashtbl.remove t.inflight key;
  (match outcome with
  | Ok (v, gens, bytes) ->
      fl.outcome <- Some (Ok v);
      (match Hashtbl.find_opt t.tbl key with
      | Some old -> drop t key old  (* a racing insert; last writer wins *)
      | None -> ());
      t.clock <- t.clock + 1;
      Hashtbl.replace t.tbl key { value = v; gens; bytes; tick = t.clock };
      t.bytes <- t.bytes + bytes;
      enforce_budget t ~keep:key
  | Error e -> fl.outcome <- Some (Error e));
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  match outcome with
  | Ok (v, _, _) -> if stale then `Stale v else `Miss v
  | Error e -> raise e

let find_or_compute (t : 'a t) ~(key : string) ~(current_gen : string -> int)
    ~(compute : unit -> 'a * (string * int) list * int) :
    [ `Hit of 'a | `Miss of 'a | `Stale of 'a ] =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.tbl key with
  | Some e when gens_current current_gen e ->
      t.hits <- t.hits + 1;
      t.clock <- t.clock + 1;
      e.tick <- t.clock;
      let v = e.value in
      Mutex.unlock t.mu;
      `Hit v
  | Some e ->
      drop t key e;
      compute_inflight t ~key ~stale:true ~compute
  | None -> (
      match Hashtbl.find_opt t.inflight key with
      | Some fl -> (
          t.waits <- t.waits + 1;
          while fl.outcome = None do
            Condition.wait t.cond t.mu
          done;
          match fl.outcome with
          | Some (Ok v) ->
              t.hits <- t.hits + 1;
              Mutex.unlock t.mu;
              `Hit v
          | Some (Error e) ->
              Mutex.unlock t.mu;
              raise e
          | None -> assert false)
      | None -> compute_inflight t ~key ~stale:false ~compute)

(* Test hook: does the cache currently hold a live entry for [key]? *)
let mem (t : 'a t) (key : string) : bool = locked t (fun () -> Hashtbl.mem t.tbl key)
