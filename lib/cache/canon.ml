(* Canonical parameterized form of a parsed query — the plan cache's
   key.

   [analyze] serializes a query with (a) every literal in a
   value-liftable position replaced by a typed placeholder ?Nt, and
   (b) every table/derived-table alias renamed to a1, a2, ... in
   syntactic order.  Two queries that differ only in those literals or
   in alias spelling therefore share a key, and a cached plan for one
   can serve the other after rebinding the literals.

   What lifts: EInt/EFloat/EStr/EDate in SELECT items, WHERE, HAVING
   and join ON conditions (recursively through subqueries and derived
   tables).  What does NOT lift: booleans and NULL (their value changes
   the plan shape through constant folding far too often to be worth a
   slot), LIKE patterns (compiled into the plan, not a Const), and
   literals under GROUP BY / ORDER BY / LIMIT (they select columns or
   bound the cursor; rebinding them would change bound structure, not a
   Const in the plan).  Non-lifted literals serialize into the key
   verbatim and are reported in [opaque] so the engine can refuse
   sentinel values that collide with them.

   [with_literals] substitutes a fresh literal vector along the exact
   same traversal, which is how the engine builds the sentinel template
   (distinct recognizable values per slot) and how the fuzzer perturbs
   a query while preserving its canonical form. *)

open Sqlfront

type lit = LInt of int | LFloat of float | LStr of string | LDate of string

type analysis = {
  key : string;  (** canonical form; equal keys = same parameterized query *)
  literals : lit list;  (** lifted literals, in traversal order *)
  opaque : lit list;
      (** literals kept verbatim in the key (ORDER BY, GROUP BY);
          sentinels must not collide with these values *)
}

let lit_tag = function LInt _ -> "i" | LFloat _ -> "f" | LStr _ -> "s" | LDate _ -> "d"

let arith_name (o : Relalg.Algebra.arithop) =
  match o with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"

let cmp_name (o : Relalg.Algebra.cmpop) =
  match o with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

(* The clause traversal order — FROM (with ON conditions and derived
   queries inline), SELECT, WHERE, GROUP BY, HAVING, UNION ALL blocks,
   ORDER BY, LIMIT — is shared verbatim by [analyze] and
   [with_literals]: slot i in one is slot i in the other. *)

let analyze (q : Ast.query) : analysis =
  let buf = Buffer.create 256 in
  let add = Buffer.add_string buf in
  let literals = ref [] in
  let opaque = ref [] in
  let nslot = ref 0 in
  let nalias = ref 0 in
  let fresh_alias () =
    incr nalias;
    Printf.sprintf "a%d" !nalias
  in
  let lift l =
    add (Printf.sprintf "?%d%s" !nslot (lit_tag l));
    incr nslot;
    literals := l :: !literals
  in
  let keep l =
    opaque := l :: !opaque;
    add
      (match l with
      | LInt n -> string_of_int n
      | LFloat f -> Printf.sprintf "%h" f
      | LStr s -> Printf.sprintf "%S" s
      | LDate s -> Printf.sprintf "date%S" s)
  in
  (* [env]: alias scopes, innermost first.  An unresolvable qualifier
     serializes raw (prefixed to stay distinct from canonical names):
     stability under renaming is lost for that query but keys stay
     collision-free. *)
  let resolve (env : (string * string) list list) (a : string) : string =
    let rec go = function
      | [] -> "'" ^ a
      | s :: rest -> ( match List.assoc_opt a s with Some c -> c | None -> go rest)
    in
    go env
  in
  let rec expr env ~lift:l (e : Ast.expr) =
    let sub = expr env ~lift:l in
    match e with
    | Ast.EInt n -> if l then lift (LInt n) else keep (LInt n)
    | Ast.EFloat f -> if l then lift (LFloat f) else keep (LFloat f)
    | Ast.EStr s -> if l then lift (LStr s) else keep (LStr s)
    | Ast.EDate s -> if l then lift (LDate s) else keep (LDate s)
    | Ast.EBool b -> add (if b then "true" else "false")
    | Ast.ENull -> add "null"
    | Ast.ECol (None, n) -> add ("col:" ^ n)
    | Ast.ECol (Some q, n) -> add (Printf.sprintf "col:%s.%s" (resolve env q) n)
    | Ast.EArith (o, a, b) ->
        add ("(" ^ arith_name o ^ " ");
        sub a;
        add " ";
        sub b;
        add ")"
    | Ast.ENeg a ->
        add "(neg ";
        sub a;
        add ")"
    | Ast.ECmp (o, a, b) ->
        add ("(" ^ cmp_name o ^ " ");
        sub a;
        add " ";
        sub b;
        add ")"
    | Ast.EAnd (a, b) ->
        add "(and ";
        sub a;
        add " ";
        sub b;
        add ")"
    | Ast.EOr (a, b) ->
        add "(or ";
        sub a;
        add " ";
        sub b;
        add ")"
    | Ast.ENot a ->
        add "(not ";
        sub a;
        add ")"
    | Ast.EIsNull (neg, a) ->
        add (if neg then "(isnotnull " else "(isnull ");
        sub a;
        add ")"
    | Ast.EBetween (neg, a, lo, hi) ->
        add (if neg then "(notbetween " else "(between ");
        sub a;
        add " ";
        sub lo;
        add " ";
        sub hi;
        add ")"
    | Ast.ELike (neg, a, pat) ->
        add (if neg then "(notlike " else "(like ");
        sub a;
        add (Printf.sprintf " %S)" pat)
    | Ast.EInList (neg, a, es) ->
        add (if neg then "(notin " else "(in ");
        sub a;
        List.iter
          (fun e ->
            add " ";
            sub e)
          es;
        add ")"
    | Ast.EInSub (neg, a, q) ->
        add (if neg then "(notinsub " else "(insub ");
        sub a;
        add " ";
        query env q;
        add ")"
    | Ast.EExists q ->
        add "(exists ";
        query env q;
        add ")"
    | Ast.EScalarSub q ->
        add "(scalar ";
        query env q;
        add ")"
    | Ast.EQuant (o, qu, a, q) ->
        add
          (Printf.sprintf "(%s%s " (cmp_name o)
             (match qu with Relalg.Algebra.Any -> "any" | Relalg.Algebra.All -> "all"));
        sub a;
        add " ";
        query env q;
        add ")"
    | Ast.ECase (branches, els) ->
        add "(case";
        List.iter
          (fun (c, v) ->
            add " [";
            sub c;
            add " ";
            sub v;
            add "]")
          branches;
        (match els with
        | Some e ->
            add " else ";
            sub e
        | None -> ());
        add ")"
    | Ast.EAgg (name, distinct, arg) ->
        add (Printf.sprintf "(agg:%s%s" name (if distinct then ":d" else ""));
        (match arg with
        | Some a ->
            add " ";
            sub a
        | None -> add " *");
        add ")"
  (* Serializes the item, extends the block scope.  ON conditions see
     the aliases accumulated so far plus the outer environment, exactly
     like SQL name resolution. *)
  and table_ref env scope tr =
    match tr with
    | Ast.TTable (t, alias) ->
        let canon = fresh_alias () in
        add (Printf.sprintf "(t:%s=%s)" t canon);
        (Option.value alias ~default:t, canon) :: scope
    | Ast.TDerived (q, alias) ->
        let canon = fresh_alias () in
        add "(d:";
        query env q;
        add ("=" ^ canon ^ ")");
        (alias, canon) :: scope
    | Ast.TJoin (l, jt, r, on) ->
        add (match jt with Ast.JInner -> "(join " | Ast.JLeft -> "(leftjoin ");
        let scope = table_ref env scope l in
        let scope = table_ref env scope r in
        add " on ";
        expr (scope :: env) ~lift:true on;
        add ")";
        scope
  and query env (q : Ast.query) =
    add "{from:";
    let scope = List.fold_left (fun sc tr -> table_ref env sc tr) [] q.from in
    let env' = scope :: env in
    add ";select:";
    if q.distinct then add "distinct ";
    List.iter
      (function
        | Ast.SStar -> add "*;"
        | Ast.SExpr (e, alias) ->
            expr env' ~lift:true e;
            (match alias with Some a -> add (Printf.sprintf "=%S" a) | None -> ());
            add ";")
      q.select;
    (match q.where with
    | Some e ->
        add ";where:";
        expr env' ~lift:true e
    | None -> ());
    if q.group_by <> [] then begin
      add ";group:";
      List.iter
        (fun e ->
          expr env' ~lift:false e;
          add ";")
        q.group_by
    end;
    (match q.having with
    | Some e ->
        add ";having:";
        expr env' ~lift:true e
    | None -> ());
    List.iter
      (fun uq ->
        add ";union:";
        query env uq)
      q.union_all;
    if q.order_by <> [] then begin
      add ";order:";
      List.iter
        (fun (e, desc) ->
          expr env' ~lift:false e;
          add (if desc then " desc;" else " asc;"))
        q.order_by
    end;
    (match q.limit with Some n -> add (Printf.sprintf ";limit:%d" n) | None -> ());
    add "}"
  in
  query [] q;
  { key = Buffer.contents buf; literals = List.rev !literals; opaque = List.rev !opaque }

exception Arity of int * int
(** [with_literals] received a vector whose length differs from the
    query's slot count — a caller bug, not a user error. *)

let with_literals (q : Ast.query) (ls : lit list) : Ast.query =
  let arr = Array.of_list ls in
  let i = ref 0 in
  let next () =
    if !i >= Array.length arr then raise (Arity (Array.length arr, !i + 1));
    let l = arr.(!i) in
    incr i;
    match l with
    | LInt n -> Ast.EInt n
    | LFloat f -> Ast.EFloat f
    | LStr s -> Ast.EStr s
    | LDate s -> Ast.EDate s
  in
  let rec expr ~lift (e : Ast.expr) : Ast.expr =
    let sub = expr ~lift in
    match e with
    | Ast.EInt _ | Ast.EFloat _ | Ast.EStr _ | Ast.EDate _ -> if lift then next () else e
    | Ast.EBool _ | Ast.ENull | Ast.ECol _ -> e
    | Ast.EArith (o, a, b) ->
        let a = sub a in
        Ast.EArith (o, a, sub b)
    | Ast.ENeg a -> Ast.ENeg (sub a)
    | Ast.ECmp (o, a, b) ->
        let a = sub a in
        Ast.ECmp (o, a, sub b)
    | Ast.EAnd (a, b) ->
        let a = sub a in
        Ast.EAnd (a, sub b)
    | Ast.EOr (a, b) ->
        let a = sub a in
        Ast.EOr (a, sub b)
    | Ast.ENot a -> Ast.ENot (sub a)
    | Ast.EIsNull (neg, a) -> Ast.EIsNull (neg, sub a)
    | Ast.EBetween (neg, a, lo, hi) ->
        let a = sub a in
        let lo = sub lo in
        Ast.EBetween (neg, a, lo, sub hi)
    | Ast.ELike (neg, a, pat) -> Ast.ELike (neg, sub a, pat)
    | Ast.EInList (neg, a, es) ->
        let a = sub a in
        Ast.EInList (neg, a, List.map sub es)
    | Ast.EInSub (neg, a, q) ->
        let a = sub a in
        Ast.EInSub (neg, a, query q)
    | Ast.EExists q -> Ast.EExists (query q)
    | Ast.EScalarSub q -> Ast.EScalarSub (query q)
    | Ast.EQuant (o, qu, a, q) ->
        let a = sub a in
        Ast.EQuant (o, qu, a, query q)
    | Ast.ECase (branches, els) ->
        let branches =
          List.map
            (fun (c, v) ->
              let c = sub c in
              (c, sub v))
            branches
        in
        Ast.ECase (branches, Option.map sub els)
    | Ast.EAgg (name, distinct, arg) -> Ast.EAgg (name, distinct, Option.map sub arg)
  and table_ref tr =
    match tr with
    | Ast.TTable _ -> tr
    | Ast.TDerived (q, alias) -> Ast.TDerived (query q, alias)
    | Ast.TJoin (l, jt, r, on) ->
        let l = table_ref l in
        let r = table_ref r in
        Ast.TJoin (l, jt, r, expr ~lift:true on)
  and query (q : Ast.query) : Ast.query =
    let from = List.map table_ref q.from in
    let select =
      List.map
        (function
          | Ast.SStar -> Ast.SStar
          | Ast.SExpr (e, alias) -> Ast.SExpr (expr ~lift:true e, alias))
        q.select
    in
    let where = Option.map (expr ~lift:true) q.where in
    let having = Option.map (expr ~lift:true) q.having in
    let union_all = List.map query q.union_all in
    { q with from; select; where; having; union_all }
  in
  let q' = query q in
  if !i <> Array.length arr then raise (Arity (Array.length arr, !i));
  q'

(* --- literal order abstraction and sentinels ----------------------- *)

(* The optimizer reasons about literal VALUES, not just positions:
   [Props.bounds_unsat] proves [x < c1 AND x >= c2] empty when
   c1 <= c2, constant folding compares literals to literals, and the
   property rewrites then exploit the resulting cardinality facts to
   change plan shape.  A template compiled with arbitrary sentinel
   values would bake such value-dependent conclusions into the cached
   plan and serve them to literal vectors for which they do not hold.

   The defence is two-sided and exact for literal-vs-literal
   reasoning:

   - sentinels are assigned by RANK, not by slot: within each
     comparison class (numerics: ints and floats together, SQL-style;
     strings; dates) the distinct literal values are sorted, ties
     share a rank, and the sentinel grid realizes exactly that order
     and equality pattern.  Every comparison the optimizer can make
     between two sentinel constants therefore has the same outcome as
     between the two real constants;

   - [order_pattern] serializes that rank vector, and the engine makes
     it part of the cache key, so a template is only ever rebound to a
     literal vector with the SAME pairwise-comparison structure.

   The one relation the grid cannot realize is an int slot numerically
   equal to a float slot (the int sentinel sits strictly below the
   float sentinel of the same rank); [mixed_numeric_tie] detects this
   and the engine falls back to exact-key caching for such queries.

   Grid values sit far outside any realistic literal range, and below
   2^52 so the float grid (int grid + 0.5) is exactly representable. *)

let grid_base = 4_000_000_000_000_000
let grid_step = 1_000_003

let num_val = function
  | LInt n -> float_of_int n
  | LFloat f -> f
  | _ -> invalid_arg "num_val"

(* SQL-style numeric order with ints strictly before floats on a tie:
   the tie itself is refused via [mixed_numeric_tie], the tiebreak just
   keeps the ranking total. *)
let cmp_in_class (a : lit) (b : lit) : int =
  match (a, b) with
  | LInt x, LInt y -> compare x y
  | (LInt _ | LFloat _), (LInt _ | LFloat _) ->
      let c = compare (num_val a) (num_val b) in
      if c <> 0 then c
      else
        compare
          (match a with LInt _ -> 0 | _ -> 1)
          (match b with LInt _ -> 0 | _ -> 1)
  | LStr x, LStr y -> compare x y
  | LDate x, LDate y -> (
      match (Relalg.Value.date_of_string x, Relalg.Value.date_of_string y) with
      | Some dx, Some dy -> compare dx dy
      | _ -> compare x y)
  | _ -> invalid_arg "cmp_in_class"

let cls = function LInt _ | LFloat _ -> 'n' | LStr _ -> 's' | LDate _ -> 'd'

(* Rank of each slot among the distinct values of its class. *)
let ranks (ls : lit list) : int list =
  let rank_in (c : char) (l : lit) : int =
    let distinct =
      List.sort_uniq cmp_in_class (List.filter (fun l' -> cls l' = c) ls)
    in
    let rec idx i = function
      | [] -> assert false
      | d :: rest -> if cmp_in_class d l = 0 then i else idx (i + 1) rest
    in
    idx 0 distinct
  in
  List.map (fun l -> rank_in (cls l) l) ls

let order_pattern (ls : lit list) : string =
  String.concat ","
    (List.map2 (fun l r -> Printf.sprintf "%c%d" (cls l) r) ls (ranks ls))

let mixed_numeric_tie (ls : lit list) : bool =
  List.exists
    (fun a ->
      match a with
      | LInt _ ->
          List.exists
            (fun b ->
              match b with LFloat f -> num_val a = f | _ -> false)
            ls
      | _ -> false)
    ls

let sentinels (ls : lit list) : lit list =
  List.map2
    (fun l rank ->
      match l with
      | LInt _ -> LInt (grid_base + (rank * grid_step))
      | LFloat _ -> LFloat (float_of_int (grid_base + (rank * grid_step)) +. 0.5)
      | LStr _ -> LStr (Printf.sprintf "\x01?s%06d\x01" rank)
      | LDate _ -> LDate (Printf.sprintf "%04d-06-15" (5000 + rank)))
    ls (ranks ls)

(* The runtime value a literal binds to ([None]: unparseable date — the
   engine then prepares the query verbatim so the binder reports it). *)
let value_of_lit (l : lit) : Relalg.Value.t option =
  match l with
  | LInt n -> Some (Relalg.Value.Int n)
  | LFloat f -> Some (Relalg.Value.Float f)
  | LStr s -> Some (Relalg.Value.Str s)
  | LDate s -> Option.map (fun d -> Relalg.Value.Date d) (Relalg.Value.date_of_string s)

(* Exact-key component for non-parameterizable queries: the literal
   vector rendered injectively. *)
let signature (ls : lit list) : string =
  String.concat ","
    (List.map
       (function
         | LInt n -> "i" ^ string_of_int n
         | LFloat f -> Printf.sprintf "f%h" f
         | LStr s -> Printf.sprintf "s%S" s
         | LDate s -> Printf.sprintf "d%S" s)
       ls)
