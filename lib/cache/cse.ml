(* Common-subexpression store: materialized shared subplans.

   A batch (Engine.query_many) detects subplans that occur several
   times — across statements, within one statement, or across batches
   via entries already interned here — and materializes the beneficial
   ones once.  Occurrences are then replaced by [CseScan] leaves whose
   id names an entry.

   Identity is the structural fingerprint below: column ids are
   numbered by first occurrence, so two subtrees that differ only in
   fresh column identities (every base-table occurrence gets fresh ids)
   fingerprint equal, and their schemas correspond positionally — which
   is exactly the contract [CseScan] needs.

   Invalidation is generation-based and checked on every read: [fetch]
   compares the generation vector captured just before the last
   materialization against the live counters and re-materializes on any
   movement.  Generations are captured BEFORE executing the subplan, so
   a mutation that lands mid-materialization invalidates the next read
   rather than being lost.  Eviction under the byte budget drops an
   entry's rows only; the metadata stays, so an id embedded in a plan
   never dangles — the next fetch simply re-materializes. *)

open Relalg
open Relalg.Algebra

(* --- structural fingerprint ---------------------------------------- *)

let fingerprint (o : op) : string =
  let buf = Buffer.create 256 in
  let add = Buffer.add_string buf in
  let ids : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let col (c : Col.t) =
    let n =
      match Hashtbl.find_opt ids c.id with
      | Some n -> n
      | None ->
          let n = Hashtbl.length ids in
          Hashtbl.add ids c.id n;
          n
    in
    add (Printf.sprintf "#%d:%s" n (Value.ty_name c.ty))
  in
  let value (v : Value.t) =
    add
      (match v with
      | Value.Null -> "null"
      | Value.Int n -> "i" ^ string_of_int n
      | Value.Float f -> Printf.sprintf "f%h" f
      | Value.Str s -> Printf.sprintf "s%S" s
      | Value.Bool b -> if b then "bt" else "bf"
      | Value.Date d -> "d" ^ string_of_int d)
  in
  let rec expr (e : expr) =
    match e with
    | ColRef c -> col c
    | Const v -> value v
    | Arith (o, a, b) ->
        add
          ("("
          ^ (match o with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%")
          ^ " ");
        expr a;
        add " ";
        expr b;
        add ")"
    | Cmp (o, a, b) ->
        add
          ("("
          ^ (match o with
            | Eq -> "="
            | Ne -> "<>"
            | Lt -> "<"
            | Le -> "<="
            | Gt -> ">"
            | Ge -> ">=")
          ^ " ");
        expr a;
        add " ";
        expr b;
        add ")"
    | And (a, b) ->
        add "(and ";
        expr a;
        add " ";
        expr b;
        add ")"
    | Or (a, b) ->
        add "(or ";
        expr a;
        add " ";
        expr b;
        add ")"
    | Not a ->
        add "(not ";
        expr a;
        add ")"
    | IsNull a ->
        add "(isnull ";
        expr a;
        add ")"
    | Like (a, p) ->
        add "(like ";
        expr a;
        add (Printf.sprintf " %S)" p)
    | Case (branches, els) ->
        add "(case";
        List.iter
          (fun (c, v) ->
            add " [";
            expr c;
            add " ";
            expr v;
            add "]")
          branches;
        (match els with
        | Some e ->
            add " else ";
            expr e
        | None -> ());
        add ")"
    | Subquery o ->
        add "(sub ";
        walk o;
        add ")"
    | Exists o ->
        add "(exists ";
        walk o;
        add ")"
    | InSub (a, o) ->
        add "(in ";
        expr a;
        add " ";
        walk o;
        add ")"
    | QuantCmp (c, q, a, o) ->
        add
          (Printf.sprintf "(quant%s%s "
             (match c with
             | Eq -> "="
             | Ne -> "<>"
             | Lt -> "<"
             | Le -> "<="
             | Gt -> ">"
             | Ge -> ">=")
             (match q with Any -> "any" | All -> "all"));
        expr a;
        add " ";
        walk o;
        add ")"
  and agg (a : agg) =
    add
      ("("
      ^ (match a.fn with
        | CountStar -> "count*"
        | Count _ -> "count"
        | Sum _ -> "sum"
        | Min _ -> "min"
        | Max _ -> "max"
        | Avg _ -> "avg")
      ^ " ");
    (match agg_input_expr a.fn with Some e -> expr e | None -> ());
    add "->";
    col a.out;
    add ")"
  and cols cs = List.iter col cs
  and walk (o : op) =
    match o with
    | TableScan { table; cols = cs } ->
        add ("(scan:" ^ table ^ " ");
        cols cs;
        add ")"
    | ConstTable { cols = cs; rows } ->
        add "(const ";
        cols cs;
        List.iter
          (fun r ->
            add "[";
            Array.iter value r;
            add "]")
          rows;
        add ")"
    | CseScan { id; cols = cs; _ } ->
        add ("(cse:" ^ id ^ " ");
        cols cs;
        add ")"
    | SegmentHole { cols = cs; src } ->
        add "(hole ";
        cols cs;
        add "<-";
        cols src;
        add ")"
    | Select (p, i) ->
        add "(select ";
        expr p;
        add " ";
        walk i;
        add ")"
    | Project (ps, i) ->
        add "(project";
        List.iter
          (fun p ->
            add " ";
            expr p.expr;
            add "->";
            col p.out)
          ps;
        add " ";
        walk i;
        add ")"
    | Join { kind; pred; left; right } ->
        add ("(join:" ^ join_kind_name kind ^ " ");
        expr pred;
        add " ";
        walk left;
        add " ";
        walk right;
        add ")"
    | Apply { kind; pred; left; right } ->
        add ("(apply:" ^ join_kind_name kind ^ " ");
        expr pred;
        add " ";
        walk left;
        add " ";
        walk right;
        add ")"
    | SegmentApply { seg_cols; outer; inner } ->
        add "(segapply ";
        cols seg_cols;
        add " ";
        walk outer;
        add " ";
        walk inner;
        add ")"
    | GroupBy { keys; aggs; input } ->
        add "(groupby ";
        cols keys;
        List.iter agg aggs;
        add " ";
        walk input;
        add ")"
    | LocalGroupBy { keys; aggs; input } ->
        add "(localgroupby ";
        cols keys;
        List.iter agg aggs;
        add " ";
        walk input;
        add ")"
    | ScalarAgg { aggs; input } ->
        add "(scalaragg ";
        List.iter agg aggs;
        add " ";
        walk input;
        add ")"
    | UnionAll (l, r) ->
        add "(unionall ";
        walk l;
        add " ";
        walk r;
        add ")"
    | Except (l, r) ->
        add "(except ";
        walk l;
        add " ";
        walk r;
        add ")"
    | Max1row i ->
        add "(max1row ";
        walk i;
        add ")"
    | Rownum { out; input } ->
        add "(rownum ";
        col out;
        add " ";
        walk input;
        add ")"
  in
  walk o;
  Buffer.contents buf

let id_of_fingerprint (fp : string) : string =
  "cse_" ^ String.sub (Digest.to_hex (Digest.string fp)) 0 16

(* --- candidate enumeration ----------------------------------------- *)

(* Closed, materializable subtrees: no free columns (not correlated
   into their context), no SegmentHole (reads the enclosing segment),
   no CseScan (entry plans must stay store-independent), at least one
   base-table scan (a constant computation is not worth a slot), and
   not a bare leaf.  ALL closed subtrees qualify, not only maximal
   ones: the shared part of two plans is often an inner aggregate under
   differing projections. *)
let candidates (o : op) : (string * op) list =
  let acc = ref [] in
  let rec walk o =
    (match o with
    | TableScan _ | ConstTable _ | SegmentHole _ | CseScan _ -> ()
    | _ ->
        if
          Col.Set.is_empty (Op.free_cols o)
          && (not
                (Op.exists_op
                   (function SegmentHole _ | CseScan _ -> true | _ -> false)
                   o))
          && Op.exists_op (function TableScan _ -> true | _ -> false) o
        then acc := (fingerprint o, o) :: !acc);
    List.iter walk (Op.children o)
  in
  walk o;
  List.rev !acc

let tables_of (o : op) : string list =
  let acc = ref [] in
  let rec walk o =
    (match o with
    | TableScan { table; _ } -> if not (List.mem table !acc) then acc := table :: !acc
    | _ -> ());
    List.iter walk (Op.children o)
  in
  walk o;
  List.rev !acc

(* --- the store ----------------------------------------------------- *)

type entry = {
  id : string;
  plan : op;  (** CseScan-free by construction *)
  schema : Col.t list;
  tables : string list;
  cost : float;  (** optimizer cost of recomputing [plan] *)
  rows_hint : int;
  mutable rows : Value.t array list option;  (** None: not materialized / evicted *)
  mutable gens : (string * int) list;
  mutable bytes : int;
  mutable tick : int;
}

type stats = {
  hits : int;
  materializations : int;
  invalidations : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type t = {
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  max_bytes : int;
  mutable bytes : int;
  mutable clock : int;
  mutable hits : int;
  mutable materializations : int;
  mutable invalidations : int;
  mutable evictions : int;
}

let create ?(max_bytes = 64 * 1024 * 1024) () : t =
  { mu = Mutex.create ();
    tbl = Hashtbl.create 16;
    max_bytes;
    bytes = 0;
    clock = 0;
    hits = 0;
    materializations = 0;
    invalidations = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stats (t : t) : stats =
  locked t (fun () ->
      { hits = t.hits;
        materializations = t.materializations;
        invalidations = t.invalidations;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
        bytes = t.bytes;
      })

(* Is a fingerprint already interned (counts as an extra occurrence in
   the batch benefit heuristic)?  And does it currently hold rows
   (materialization already paid)? *)
let status (t : t) (fp : string) : [ `Absent | `Known | `Materialized ] =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (id_of_fingerprint fp) with
      | None -> `Absent
      | Some e -> if e.rows = None then `Known else `Materialized)

let intern (t : t) ~(plan : op) ~(cost : float) ~(rows_hint : int) : string =
  let id = id_of_fingerprint (fingerprint plan) in
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl id) then
        Hashtbl.add t.tbl id
          { id;
            plan;
            schema = Op.schema plan;
            tables = tables_of plan;
            cost;
            rows_hint;
            rows = None;
            gens = [];
            bytes = 0;
            tick = 0;
          };
      id)

let row_bytes (rows : Value.t array list) : int =
  List.fold_left
    (fun acc r ->
      Array.fold_left
        (fun acc v ->
          acc + match v with Value.Str s -> 16 + String.length s | _ -> 16)
        (acc + 16) r)
    0 rows

(* Drop materialized rows (metadata stays) until the budget holds,
   least-recently-used first, never touching [keep]. *)
let enforce_budget t ~(keep : string) =
  let lru () =
    Hashtbl.fold
      (fun _ (e : entry) acc ->
        if e.id = keep || e.rows = None then acc
        else
          match acc with
          | Some best when best.tick <= e.tick -> acc
          | _ -> Some e)
      t.tbl None
  in
  let rec go () =
    if t.bytes > t.max_bytes then
      match lru () with
      | Some e ->
          e.rows <- None;
          t.bytes <- t.bytes - e.bytes;
          e.bytes <- 0;
          t.evictions <- t.evictions + 1;
          go ()
      | None -> ()
  in
  go ()

exception Unknown_id of string

(* Read an entry's rows, re-materializing when absent or stale.  The
   generation vector is captured BEFORE running the subplan and the
   whole operation holds the store lock: entry plans contain no
   CseScan, so [exec] cannot re-enter. *)
let fetch (t : t) ~(exec : op -> Value.t array list) ~(current_gen : string -> int)
    (id : string) : Value.t array list =
  locked t (fun () ->
      let e =
        match Hashtbl.find_opt t.tbl id with
        | Some e -> e
        | None -> raise (Unknown_id id)
      in
      let live = List.for_all (fun (table, g) -> current_gen table = g) e.gens in
      match e.rows with
      | Some rows when live ->
          t.hits <- t.hits + 1;
          t.clock <- t.clock + 1;
          e.tick <- t.clock;
          rows
      | had ->
          if had <> None then t.invalidations <- t.invalidations + 1;
          let gens = List.map (fun table -> (table, current_gen table)) e.tables in
          let rows = exec e.plan in
          t.bytes <- t.bytes - e.bytes;
          e.rows <- Some rows;
          e.gens <- gens;
          e.bytes <- row_bytes rows;
          t.bytes <- t.bytes + e.bytes;
          t.clock <- t.clock + 1;
          e.tick <- t.clock;
          t.materializations <- t.materializations + 1;
          enforce_budget t ~keep:id;
          rows)

(* Test hook: the entry's live row count, when materialized. *)
let materialized_rows (t : t) (id : string) : int option =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | Some { rows = Some rs; _ } -> Some (List.length rs)
      | _ -> None)
