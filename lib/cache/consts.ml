(* Constant substitution and scanning over optimized plans.

   The plan cache compiles a template with per-slot sentinel literals;
   a hit rewrites every surviving sentinel [Const] (and ConstTable
   cell) to the caller's value.  [count] is the soundness gate at
   insert time: a slot whose sentinel no longer appears anywhere was
   consumed by a value-dependent rewrite (constant folding, range
   merging, contradiction detection), so the template's shape depends
   on the literal's value and the query must be cached under its exact
   literal vector instead. *)

open Relalg
open Relalg.Algebra

let rec map_expr (f : Value.t -> Value.t option) (e : expr) : expr =
  let sub = map_expr f in
  match e with
  | Const v -> ( match f v with Some v' -> Const v' | None -> e)
  | ColRef _ -> e
  | Arith (o, a, b) ->
      let a = sub a in
      Arith (o, a, sub b)
  | Cmp (o, a, b) ->
      let a = sub a in
      Cmp (o, a, sub b)
  | And (a, b) ->
      let a = sub a in
      And (a, sub b)
  | Or (a, b) ->
      let a = sub a in
      Or (a, sub b)
  | Not a -> Not (sub a)
  | IsNull a -> IsNull (sub a)
  | Like (a, p) -> Like (sub a, p)
  | Case (branches, els) ->
      let branches =
        List.map
          (fun (c, v) ->
            let c = sub c in
            (c, sub v))
          branches
      in
      Case (branches, Option.map sub els)
  | Subquery o -> Subquery (map_op f o)
  | Exists o -> Exists (map_op f o)
  | InSub (a, o) ->
      let a = sub a in
      InSub (a, map_op f o)
  | QuantCmp (c, q, a, o) ->
      let a = sub a in
      QuantCmp (c, q, a, map_op f o)

and map_agg f (a : agg) : agg = { a with fn = map_agg_fn f a.fn }

and map_agg_fn f = function
  | CountStar -> CountStar
  | Count e -> Count (map_expr f e)
  | Sum e -> Sum (map_expr f e)
  | Min e -> Min (map_expr f e)
  | Max e -> Max (map_expr f e)
  | Avg e -> Avg (map_expr f e)

and map_op (f : Value.t -> Value.t option) (o : op) : op =
  let go = map_op f in
  let ex = map_expr f in
  match o with
  | TableScan _ | SegmentHole _ | CseScan _ -> o
  | ConstTable { cols; rows } ->
      ConstTable
        { cols;
          rows =
            List.map
              (Array.map (fun v -> match f v with Some v' -> v' | None -> v))
              rows
        }
  | Select (p, i) -> Select (ex p, go i)
  | Project (ps, i) -> Project (List.map (fun p -> { p with expr = ex p.expr }) ps, go i)
  | Join { kind; pred; left; right } ->
      Join { kind; pred = ex pred; left = go left; right = go right }
  | Apply { kind; pred; left; right } ->
      Apply { kind; pred = ex pred; left = go left; right = go right }
  | SegmentApply { seg_cols; outer; inner } ->
      SegmentApply { seg_cols; outer = go outer; inner = go inner }
  | GroupBy { keys; aggs; input } ->
      GroupBy { keys; aggs = List.map (map_agg f) aggs; input = go input }
  | LocalGroupBy { keys; aggs; input } ->
      LocalGroupBy { keys; aggs = List.map (map_agg f) aggs; input = go input }
  | ScalarAgg { aggs; input } ->
      ScalarAgg { aggs = List.map (map_agg f) aggs; input = go input }
  | UnionAll (l, r) ->
      let l = go l in
      UnionAll (l, go r)
  | Except (l, r) ->
      let l = go l in
      Except (l, go r)
  | Max1row i -> Max1row (go i)
  | Rownum { out; input } -> Rownum { out; input = go input }

(* Visit every Const value in the tree, ConstTable cells included. *)
let iter_consts (f : Value.t -> unit) (o : op) : unit =
  ignore
    (map_op
       (fun v ->
         f v;
         None)
       o)

(* Occurrence count of each probe value in the plan. *)
let count (probes : Value.t list) (o : op) : int list =
  let arr = Array.of_list probes in
  let counts = Array.make (Array.length arr) 0 in
  iter_consts
    (fun v ->
      Array.iteri (fun i p -> if Value.equal p v then counts.(i) <- counts.(i) + 1) arr)
    o;
  Array.to_list counts
