(* Data generator tests: determinism, cardinalities, key uniqueness and
   referential integrity. *)

open Relalg

let db = lazy (Datagen.Tpch_gen.database ~sf:0.002 ())

let table name = Storage.Database.table (Lazy.force db) name

let col_values tname cname =
  let tb = table tname in
  let pos = Option.get (Storage.Table.column_position tb cname) in
  List.map (fun r -> r.(pos)) (Storage.Table.to_rows tb)

let test_row_counts () =
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int) name expected (Storage.Table.row_count (table name)))
    (Datagen.Tpch_gen.expected_rows 0.002);
  (* lineitem has 1..7 lines per order *)
  let li = Storage.Table.row_count (table "lineitem") in
  let orders = Storage.Table.row_count (table "orders") in
  Alcotest.(check bool) "lineitem within bounds" true (li >= orders && li <= 7 * orders)

let test_determinism () =
  let db2 = Datagen.Tpch_gen.database ~sf:0.002 () in
  let t1 = table "orders" and t2 = Storage.Database.table db2 "orders" in
  Alcotest.(check int) "same count" (Storage.Table.row_count t1) (Storage.Table.row_count t2);
  let logical tb = Storage.Table.to_rows tb in
  Alcotest.(check bool) "same rows" true
    (List.for_all2 (fun a b -> Array.for_all2 Value.equal a b) (logical t1) (logical t2));
  (* a different seed changes the data *)
  let db3 = Datagen.Tpch_gen.database ~seed:7 ~sf:0.002 () in
  let t3 = Storage.Database.table db3 "orders" in
  Alcotest.(check bool) "different seed differs" false
    (List.for_all2 (fun a b -> Array.for_all2 Value.equal a b) (logical t1) (logical t3))

let test_primary_keys_unique () =
  List.iter
    (fun (tname, cname) ->
      let vs = col_values tname cname in
      let distinct = List.sort_uniq Value.compare vs in
      Alcotest.(check int) (tname ^ " pk unique") (List.length vs) (List.length distinct))
    [ ("region", "r_regionkey"); ("nation", "n_nationkey"); ("supplier", "s_suppkey");
      ("customer", "c_custkey"); ("part", "p_partkey"); ("orders", "o_orderkey")
    ]

let test_referential_integrity () =
  let keyset tname cname =
    let tbl = Hashtbl.create 64 in
    List.iter (fun v -> Hashtbl.replace tbl v ()) (col_values tname cname);
    tbl
  in
  let check_fk (child, ccol) (parent, pcol) =
    let parents = keyset parent pcol in
    List.iter
      (fun v ->
        if not (Hashtbl.mem parents v) then
          Alcotest.failf "%s.%s = %s has no parent in %s.%s" child ccol (Value.to_string v)
            parent pcol)
      (col_values child ccol)
  in
  check_fk ("nation", "n_regionkey") ("region", "r_regionkey");
  check_fk ("supplier", "s_nationkey") ("nation", "n_nationkey");
  check_fk ("customer", "c_nationkey") ("nation", "n_nationkey");
  check_fk ("orders", "o_custkey") ("customer", "c_custkey");
  check_fk ("lineitem", "l_orderkey") ("orders", "o_orderkey");
  check_fk ("lineitem", "l_partkey") ("part", "p_partkey");
  check_fk ("lineitem", "l_suppkey") ("supplier", "s_suppkey");
  check_fk ("partsupp", "ps_partkey") ("part", "p_partkey");
  check_fk ("partsupp", "ps_suppkey") ("supplier", "s_suppkey")

let test_value_domains () =
  List.iter
    (fun v ->
      match v with
      | Value.Float q -> Alcotest.(check bool) "quantity 1..50" true (q >= 1. && q <= 50.)
      | _ -> Alcotest.fail "quantity type")
    (col_values "lineitem" "l_quantity");
  List.iter
    (fun v ->
      match v with
      | Value.Str b ->
          Alcotest.(check bool) "brand format" true
            (String.length b = 8 && String.sub b 0 6 = "Brand#")
      | _ -> Alcotest.fail "brand type")
    (col_values "part" "p_brand");
  (* every part has exactly 4 partsupp rows *)
  let ps = col_values "partsupp" "ps_partkey" in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace counts v (1 + try Hashtbl.find counts v with Not_found -> 0))
    ps;
  Hashtbl.iter (fun _ c -> Alcotest.(check int) "4 suppliers per part" 4 c) counts

let test_indexes_built () =
  let tb = table "orders" in
  Alcotest.(check bool) "pk index" true (Storage.Table.find_index tb "o_orderkey" <> None);
  Alcotest.(check bool) "fk index" true (Storage.Table.find_index tb "o_custkey" <> None);
  (* index lookups return the right rows *)
  match Storage.Table.find_index tb "o_orderkey" with
  | Some ix ->
      let rows = Storage.Table.index_lookup ix tb (Value.Int 1) in
      Alcotest.(check int) "one row for pk 1" 1 (List.length rows)
  | None -> Alcotest.fail "no index"

let suite =
  [ Alcotest.test_case "row counts" `Quick test_row_counts;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "primary keys unique" `Quick test_primary_keys_unique;
    Alcotest.test_case "referential integrity" `Quick test_referential_integrity;
    Alcotest.test_case "value domains" `Quick test_value_domains;
    Alcotest.test_case "indexes" `Quick test_indexes_built
  ]
