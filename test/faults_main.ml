(* Fault-injection sweep, run by `dune build @faults`.

   For each seed given on the command line, executes every TPC-H
   workload query under probabilistic fault injection and under
   deterministic join-kill schedules, through the resilient entry
   point.  The invariant checked is the availability contract of the
   resilience layer:

     a fault-injected query either returns exactly the rows the clean
     (unfaulted) correlated oracle returns — possibly after degrading
     to the fallback plan — or dies with a *typed* error; it never
     returns wrong rows and never escapes with an untyped exception.

   Exit status 0 iff the invariant holds for every (seed, query). *)

let sf = 0.002

let render rows =
  List.sort compare
    (List.map
       (fun r ->
         String.concat "|" (Array.to_list (Array.map Relalg.Value.to_string r)))
       rows)

let () =
  let seeds =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ 1; 2; 3 ]
    | args -> List.map int_of_string args
  in
  Printf.printf "fault sweep: SF %.3f, seeds [%s]\n%!" sf
    (String.concat "; " (List.map string_of_int seeds));
  let db = Datagen.Tpch_gen.database ~sf () in
  let eng = Engine.create db in
  (* clean correlated results are the oracle *)
  let oracle =
    List.map
      (fun (name, sql) ->
        (name, sql, render (Engine.query ~config:Optimizer.Config.correlated_only eng sql).rows))
      Workloads.all_named
  in
  let failures = ref 0 in
  let trial ~label ~spec (name, sql, expect) =
    match
      Engine.query_resilient_checked ~config:Optimizer.Config.full
        ~faults:(Exec.Faults.create spec) eng sql
    with
    | Ok r ->
        let got = render r.execution.result.rows in
        if got <> expect then begin
          incr failures;
          Printf.printf "FAIL %-12s %-22s wrong rows (served by %s, %d vs %d)\n%!" name
            label r.served_by (List.length got) (List.length expect)
        end
        else
          Printf.printf "ok   %-12s %-22s %s%s\n%!" name label r.served_by
            (if r.degraded then " (degraded)" else "")
    | Error e ->
        (* both paths were killed: acceptable, but must be typed *)
        Printf.printf "ok   %-12s %-22s killed (%s)\n%!" name label
          (Engine.Errors.phase_to_string e.Engine.Errors.phase)
    | exception e ->
        incr failures;
        Printf.printf "FAIL %-12s %-22s untyped escape: %s\n%!" name label
          (Printexc.to_string e)
  in
  List.iter
    (fun seed ->
      Printf.printf "--- seed %d ---\n%!" seed;
      List.iter
        (fun q ->
          (* random operator deaths, reproducible per seed *)
          trial ~label:(Printf.sprintf "any:p:0.02:seed:%d" seed)
            ~spec:{ Exec.Faults.target = Exec.Faults.Any; mode = Probabilistic 0.02; seed }
            q;
          (* kill the nth join evaluation: the decorrelated plan dies,
             the Apply-shaped fallback survives *)
          trial ~label:(Printf.sprintf "join:nth:%d" seed)
            ~spec:{ Exec.Faults.target = Kind Exec.Faults.Join; mode = Nth seed; seed }
            q)
        oracle)
    seeds;
  if !failures > 0 then begin
    Printf.printf "%d FAILURES\n%!" !failures;
    exit 1
  end
  else Printf.printf "all fault trials upheld the availability contract\n%!"
