(* The resilience layer: typed errors, budgets, fault injection,
   graceful degradation, and differential checking.

   The load-bearing property throughout: the correlated (Apply-as-
   written) plan is a semantic twin of every optimized plan, so it can
   serve both as a fallback replica when the optimized plan dies and as
   an oracle for differential checks. *)

let db = lazy (Support.toy_db ())
let tpch = lazy (Datagen.Tpch_gen.database ~sf:0.002 ())

(* the motivating query on the toy schema — decorrelates to a Join
   under [full], stays an Apply-free-scan shape under [correlated] *)
let lattice_sql =
  "select did from dept where 250 < (select sum(salary) from emp where dept = did)"

let engine () = Engine.create (Lazy.force db)

let phase_of = function
  | Ok _ -> "ok"
  | Error (e : Engine.Errors.t) -> Engine.Errors.phase_to_string e.phase

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- typed errors ----------------------------------------------------- *)

let test_checked_phases () =
  let eng = engine () in
  Alcotest.(check string) "parse" "parse" (phase_of (Engine.query_checked eng "select from"));
  Alcotest.(check string) "bind" "bind"
    (phase_of (Engine.query_checked eng "select nosuch from emp"));
  Alcotest.(check string) "lex surfaces as parse" "parse"
    (phase_of (Engine.query_checked eng "select ? from emp"));
  Alcotest.(check string) "ok" "ok" (phase_of (Engine.query_checked eng "select eid from emp"))

let test_max1row_through_engine () =
  (* Max1row violation reaches Engine.execute as a typed runtime error:
     dept 1 has two employees, so the scalar subquery is ambiguous *)
  let eng = engine () in
  let sql = "select (select eid from emp where dept = 1) from dept where did = 1" in
  (match Engine.query_checked ~config:Optimizer.Config.correlated_only eng sql with
  | Error e ->
      Alcotest.(check string) "phase" "runtime" (Engine.Errors.phase_to_string e.phase);
      Alcotest.(check bool) "message mentions Max1row" true
        (contains ~sub:"Max1row" e.message || contains ~sub:"more than one row" e.message)
  | Ok _ -> Alcotest.fail "expected Max1row runtime error");
  (* and the raw exception path still works for direct callers *)
  Alcotest.check_raises "raw exception"
    (Exec.Executor.Runtime_error "subquery returned more than one row (Max1row)")
    (fun () ->
      ignore (Engine.query ~config:Optimizer.Config.correlated_only eng sql))

let test_error_rendering () =
  let e = Engine.Errors.make ~position:7 ~sql:"select ? from emp" Engine.Errors.Lex "bad" in
  let s = Engine.Errors.to_string e in
  Alcotest.(check bool) "mentions position" true (contains ~sub:"position 7" s);
  Alcotest.(check bool) "has caret" true (contains ~sub:"^" s)

(* --- budgets ---------------------------------------------------------- *)

let test_budget_rows () =
  let eng = engine () in
  let budget = Exec.Budget.make ~max_rows:2 () in
  (match Engine.query_checked ~budget eng "select eid from emp" with
  | Error e -> Alcotest.(check string) "phase" "budget" (Engine.Errors.phase_to_string e.phase)
  | Ok _ -> Alcotest.fail "expected row-budget trip");
  (* partial progress counters are reported *)
  try ignore (Engine.query ~budget eng "select eid from emp")
  with Exec.Budget.Exceeded (trip, p) ->
    Alcotest.(check bool) "tripped on rows" true (trip = Exec.Budget.Rows);
    Alcotest.(check bool) "progress counted" true (p.rows_processed > 2)

let test_budget_apply () =
  let eng = engine () in
  let budget = Exec.Budget.make ~max_apply:1 () in
  let sql = "select dname, (select sum(salary) from emp where dept = did) from dept" in
  match Engine.query_checked ~config:Optimizer.Config.correlated_only ~budget eng sql with
  | Error e -> Alcotest.(check string) "phase" "budget" (Engine.Errors.phase_to_string e.phase)
  | Ok _ -> Alcotest.fail "expected apply-budget trip"

let test_budget_timeout () =
  let eng = engine () in
  let budget = Exec.Budget.make ~timeout_s:0.0 () in
  match Engine.query_checked ~budget eng "select eid from emp" with
  | Error e -> Alcotest.(check string) "phase" "budget" (Engine.Errors.phase_to_string e.phase)
  | Ok _ -> Alcotest.fail "expected timeout trip"

let test_budget_unlimited_is_free () =
  let eng = engine () in
  let budget = Exec.Budget.unlimited in
  let r = Engine.query ~budget eng "select eid from emp" in
  Alcotest.(check int) "all rows" 4 (List.length r.rows)

(* --- fault injection -------------------------------------------------- *)

let test_fault_deterministic () =
  let eng = engine () in
  let spec = { Exec.Faults.target = Kind Exec.Faults.Scan; mode = Nth 1; seed = 0 } in
  let outcome () =
    Engine.query_checked ~faults:(Exec.Faults.create spec) eng "select eid from emp"
  in
  (match outcome () with
  | Error e -> Alcotest.(check string) "phase" "fault" (Engine.Errors.phase_to_string e.phase)
  | Ok _ -> Alcotest.fail "expected injected fault");
  (* deterministic: the same spec fails identically on a fresh plan *)
  Alcotest.(check string) "reproducible" (phase_of (outcome ())) (phase_of (outcome ()))

let test_fault_seeded_probabilistic () =
  let eng = engine () in
  let run seed =
    let spec = { Exec.Faults.target = Exec.Faults.Any; mode = Probabilistic 0.3; seed } in
    phase_of (Engine.query_checked ~faults:(Exec.Faults.create spec) eng lattice_sql)
  in
  (* the stream is a pure function of the seed *)
  Alcotest.(check string) "seed 1 reproducible" (run 1) (run 1);
  Alcotest.(check string) "seed 2 reproducible" (run 2) (run 2)

let test_fault_spec_parsing () =
  let roundtrip s =
    match Exec.Faults.parse s with
    | Ok spec -> Exec.Faults.spec_to_string spec
    | Error m -> "error: " ^ m
  in
  Alcotest.(check string) "nth" "join:nth:3" (roundtrip "join:nth:3");
  Alcotest.(check string) "every" "groupby:every:10" (roundtrip "groupby:every:10");
  Alcotest.(check string) "prob" "any:p:0.01:seed:7" (roundtrip "any:p:0.01:seed:7");
  Alcotest.(check bool) "bad kind rejected" true
    (match Exec.Faults.parse "warp:nth:1" with Error _ -> true | Ok _ -> false)

(* --- graceful degradation --------------------------------------------- *)

let test_resilient_degrades_on_join_fault () =
  (* kill the decorrelated plan's first Join evaluation: the correlated
     fallback executes no Join operator, so it survives and must return
     the same rows the clean query does *)
  let eng = engine () in
  let spec = { Exec.Faults.target = Kind Exec.Faults.Join; mode = Nth 1; seed = 0 } in
  let r =
    Engine.query_resilient ~config:Optimizer.Config.decorrelated_only
      ~faults:(Exec.Faults.create spec) eng lattice_sql
  in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check string) "served by fallback" "correlated/row" r.served_by;
  (match r.primary_error with
  | Some e -> Alcotest.(check string) "fault error" "fault" (Engine.Errors.phase_to_string e.phase)
  | None -> Alcotest.fail "expected a primary error");
  let clean = Engine.query eng lattice_sql in
  Support.check_same_bag "fallback result correct" clean.rows r.execution.result.rows

let test_resilient_clean_run_not_degraded () =
  let eng = engine () in
  let r = Engine.query_resilient eng lattice_sql in
  Alcotest.(check bool) "not degraded" false r.degraded;
  Alcotest.(check string) "served by primary" "full/row" r.served_by;
  Alcotest.(check bool) "no error" true (r.primary_error = None)

let test_resilient_budget_trip_degrades () =
  (* an apply-invocation cap only the correlated path can trip: the
     decorrelated plan runs no Apply, so it is not degraded... *)
  let eng = engine () in
  let budget = Exec.Budget.make ~max_apply:0 () in
  let r =
    Engine.query_resilient ~config:Optimizer.Config.decorrelated_only ~budget eng lattice_sql
  in
  Alcotest.(check bool) "decorrelated plan unaffected" false r.degraded;
  (* ...whereas a 1-row budget trips both paths: the typed budget error
     from the fallback attempt must surface *)
  let tiny = Exec.Budget.make ~max_rows:1 () in
  match
    Engine.query_resilient_checked ~config:Optimizer.Config.decorrelated_only ~budget:tiny
      eng lattice_sql
  with
  | Error e -> Alcotest.(check string) "budget" "budget" (Engine.Errors.phase_to_string e.phase)
  | Ok _ -> Alcotest.fail "expected both paths to trip the 1-row budget"

let test_resilient_unrecoverable_not_retried () =
  let eng = engine () in
  match Engine.query_resilient_checked eng "select from where" with
  | Error e -> Alcotest.(check string) "parse not retried" "parse" (Engine.Errors.phase_to_string e.phase)
  | Ok _ -> Alcotest.fail "expected parse error"

(* --- differential checking -------------------------------------------- *)

let test_check_agree_toy () =
  let eng = engine () in
  let r = Engine.check eng lattice_sql in
  Alcotest.(check bool) "agree" true r.Engine.agree;
  Alcotest.(check string) "candidate" "full" r.Engine.candidate;
  Alcotest.(check string) "reference" "correlated" r.Engine.reference

let test_check_detects_mismatch () =
  (* candidate == reference trivially agrees; a deliberately different
     pair of queries cannot be compared through [check], so instead
     assert the bag-diff machinery itself via differing limits *)
  let eng = engine () in
  let r =
    Engine.check ~candidate:Optimizer.Config.correlated_only
      ~reference:Optimizer.Config.correlated_only eng "select eid from emp"
  in
  Alcotest.(check bool) "identical configs agree" true r.Engine.agree;
  Alcotest.(check int) "rows counted" 4 r.Engine.candidate_rows

let test_check_workloads_tpch () =
  (* the acceptance criterion: full and correlated plans agree on every
     TPC-H workload query in the bench suite *)
  let eng = Engine.create (Lazy.force tpch) in
  List.iter
    (fun (name, sql) ->
      let r = Engine.check eng sql in
      Alcotest.(check bool)
        (Printf.sprintf "%s agrees (%s)" name (Engine.format_check_report r))
        true r.Engine.agree)
    Workloads.all_named

let suite =
  [ Alcotest.test_case "typed error phases" `Quick test_checked_phases;
    Alcotest.test_case "max1row through engine" `Quick test_max1row_through_engine;
    Alcotest.test_case "error rendering" `Quick test_error_rendering;
    Alcotest.test_case "budget: rows" `Quick test_budget_rows;
    Alcotest.test_case "budget: applies" `Quick test_budget_apply;
    Alcotest.test_case "budget: timeout" `Quick test_budget_timeout;
    Alcotest.test_case "budget: unlimited" `Quick test_budget_unlimited_is_free;
    Alcotest.test_case "fault: deterministic nth" `Quick test_fault_deterministic;
    Alcotest.test_case "fault: seeded probabilistic" `Quick test_fault_seeded_probabilistic;
    Alcotest.test_case "fault: spec parsing" `Quick test_fault_spec_parsing;
    Alcotest.test_case "degrade: join fault" `Quick test_resilient_degrades_on_join_fault;
    Alcotest.test_case "degrade: clean run" `Quick test_resilient_clean_run_not_degraded;
    Alcotest.test_case "degrade: budgets" `Quick test_resilient_budget_trip_degrades;
    Alcotest.test_case "degrade: unrecoverable" `Quick test_resilient_unrecoverable_not_retried;
    Alcotest.test_case "check: toy lattice" `Quick test_check_agree_toy;
    Alcotest.test_case "check: bag machinery" `Quick test_check_detects_mismatch;
    Alcotest.test_case "check: TPC-H workloads" `Slow test_check_workloads_tpch
  ]
