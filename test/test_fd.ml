(* Unit tests for the symbolic plan-property engine (Relalg.Fd):
   closure corner cases — NULL introduction under LeftOuter padding,
   UnionAll weakening, Except preservation, correlation parameters as
   invocation constants — plus interval arithmetic, the runtime
   cross-check, and a golden asserting which bench workloads lose an
   operator under the property-proven rewrites. *)

open Relalg
open Relalg.Algebra

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* two keyed tables: s(sa PK, sb) and r(rc PK, rd) *)
let sa = Col.fresh "sa" Value.TInt
let sb = Col.fresh "sb" Value.TInt
let rc = Col.fresh "rc" Value.TInt
let rd = Col.fresh "rd" Value.TInt

let scan_s = TableScan { table = "s"; cols = [ sa; sb ] }
let scan_r = TableScan { table = "r"; cols = [ rc; rd ] }

(* sb and rd may be NULL; the keys may not *)
let env =
  { Props.table_key = (function "s" -> [ "sa" ] | "r" -> [ "rc" ] | _ -> []);
    table_nullable = (function "s" -> [ "sb" ] | "r" -> [ "rd" ] | _ -> []);
  }

(* r with a NULLABLE key: the TableScan still reports the uniqueness
   fact, but the key columns drop out of nonnull *)
let env_nullable_key =
  { env with
    Props.table_nullable = (function "r" -> [ "rc"; "rd" ] | t -> env.Props.table_nullable t);
  }

let analyze ?(env = env) o = Fd.analyze ~env o

let eq a b = Cmp (Eq, ColRef a, ColRef b)
let s1 c = Col.Set.singleton c
let const_table cols rows = ConstTable { cols; rows }

let t_int i = Value.Int i

(* --- closure and key derivation ---------------------------------------- *)

let test_scan_key () =
  let t = analyze scan_s in
  check "sa is a key" true (Fd.covers_key t (s1 sa));
  check "sb is not" false (Fd.covers_key t (s1 sb));
  let cl = Fd.closure t (s1 sa) in
  check "closure of the key covers the row" true (Col.Set.mem sb cl);
  check "key is non-null" true (Col.Set.mem sa t.Fd.nonnull);
  check "nullable column is not" false (Col.Set.mem sb t.Fd.nonnull)

let test_select_equality_closure () =
  (* sb = sa makes sb a derived key through the FD closure, even though
     sb is not a superset of any declared key *)
  let t = analyze (Select (eq sb sa, scan_s)) in
  check "sb reaches the key through sb=sa" true (Fd.covers_key t (s1 sb));
  (match Fd.cover_chain t (s1 sb) with
  | Some (u, chain) ->
      check "the covered unique is {sa}" true (Col.Set.equal u (s1 sa));
      check "the proof chain is non-empty" true (chain <> [])
  | None -> Alcotest.fail "cover_chain returned None");
  (* the predicate also proves sb non-null on surviving rows *)
  check "sb null-rejected by the equality" true (Col.Set.mem sb t.Fd.nonnull)

let test_select_const_on_key () =
  let t = analyze (Select (Cmp (Eq, ColRef sa, Const (t_int 7)), scan_s)) in
  check "equality on the key pins at most one row" true (Fd.max_one t);
  check "no contradiction" false (Fd.contradiction t)

(* --- LeftOuter padding -------------------------------------------------- *)

let test_leftouter_nulls_right () =
  (* join on the NON-key right column: right rows may repeat, padded
     rows NULL the right side — every right fact must be dropped *)
  let t = analyze (Join { kind = LeftOuter; pred = eq sb rd; left = scan_s; right = scan_r }) in
  check "right key no longer unique" false (Fd.covers_key t (s1 rc));
  check "left key lost too (left rows may multiply)" false (Fd.covers_key t (s1 sa));
  check "right non-null column may now be NULL" false (Col.Set.mem rc t.Fd.nonnull);
  check "left non-null survives" true (Col.Set.mem sa t.Fd.nonnull)

let test_leftouter_pinned_key () =
  (* join pinning the right key: each left row matches at most one
     right row, so the left key survives *)
  let t = analyze (Join { kind = LeftOuter; pred = eq sb rc; left = scan_s; right = scan_r }) in
  check "left key survives a key-pinned LOJ" true (Fd.covers_key t (s1 sa));
  check "right columns still nullable (padding)" false (Col.Set.mem rc t.Fd.nonnull)

let test_leftouter_nullable_right_key () =
  (* the right key is declared nullable: grouping-sense uniqueness of
     the padded output cannot ride on it (NULL ≡ NULL would alias a
     padded row with a NULL-keyed matched row), so the key product is
     dropped even though the scan itself is unique on rc *)
  let t =
    analyze ~env:env_nullable_key
      (Join { kind = LeftOuter; pred = eq sb rd; left = scan_s; right = scan_r })
  in
  check "no product key through a nullable right key" false
    (Fd.covers_key t (Col.Set.of_list [ sa; rc ]))

(* --- UnionAll weakening ------------------------------------------------- *)

let test_unionall_weakens () =
  let x = Col.fresh "x" Value.TInt and y = Col.fresh "y" Value.TInt in
  let l = const_table [ x ] [ [| t_int 1 |]; [| t_int 2 |] ] in
  let r = const_table [ y ] [ [| t_int 3 |]; [| Value.Null |] ] in
  let t = analyze (UnionAll (l, r)) in
  check_int "interval lo adds" 4 t.Fd.card.Fd.lo;
  check "interval hi adds" true (t.Fd.card.Fd.hi = Some 4);
  check "uniqueness does not survive the union" true (t.Fd.uniques = []);
  check "FDs do not survive the union" true (t.Fd.fds = []);
  check "nonnull is positional: a NULL branch poisons it" false
    (Col.Set.mem x t.Fd.nonnull);
  (* both branches non-null => the (left-named) output column is *)
  let r' = const_table [ y ] [ [| t_int 3 |] ] in
  let t' = analyze (UnionAll (l, r')) in
  check "nonnull survives when both branches are" true (Col.Set.mem x t'.Fd.nonnull)

(* --- Except preservation ------------------------------------------------ *)

let test_except_preserves_left () =
  let scan_s2 = TableScan { table = "s"; cols = [ Col.fresh "sa" Value.TInt; Col.fresh "sb" Value.TInt ] } in
  let t = analyze (Except (scan_s, scan_s2)) in
  check "left key survives bag difference" true (Fd.covers_key t (s1 sa));
  check "left nonnull survives" true (Col.Set.mem sa t.Fd.nonnull);
  check_int "lower bound drops to zero" 0 t.Fd.card.Fd.lo

let test_except_interval () =
  let x = Col.fresh "x" Value.TInt in
  let l = const_table [ x ] [ [| t_int 1 |]; [| t_int 2 |]; [| t_int 3 |] ] in
  let r = const_table [ Col.fresh "x" Value.TInt ] [ [| t_int 2 |] ] in
  let t = analyze (Except (l, r)) in
  check_int "lo = left lo - right hi" 2 t.Fd.card.Fd.lo;
  check "hi = left hi" true (t.Fd.card.Fd.hi = Some 3)

(* --- Apply correlation parameters --------------------------------------- *)

let test_apply_correlation_param () =
  (* inside the Apply's right side, rc = sa equates rc to a correlation
     parameter — an invocation constant, pinning one row per binding;
     the left key then survives the Apply *)
  let right = Select (eq rc sa, scan_r) in
  let t = analyze (Apply { kind = Inner; pred = true_; left = scan_s; right }) in
  check "left key survives key-pinned Apply" true (Fd.covers_key t (s1 sa));
  (* the inner's per-invocation FDs must NOT be exported across
     bindings: rc is constant per invocation, not across the output *)
  check "no cross-binding constant for rc" false
    (List.exists
       (fun f -> Col.Set.is_empty f.Fd.det && Col.Set.mem rc f.Fd.dep)
       t.Fd.fds)

(* --- interval arithmetic ------------------------------------------------ *)

let test_max1row_contradiction () =
  let x = Col.fresh "x" Value.TInt in
  let two = const_table [ x ] [ [| t_int 1 |]; [| t_int 2 |] ] in
  let t = analyze (Max1row two) in
  check "Max1row over 2 rows is contradictory" true (Fd.contradiction t);
  let one = const_table [ Col.fresh "x" Value.TInt ] [ [| t_int 1 |] ] in
  let t1 = analyze (Max1row one) in
  check "Max1row over 1 row is fine" false (Fd.contradiction t1);
  check "and provably single-row" true (Fd.max_one t1)

let test_groupby_on_key_interval () =
  let x = Col.fresh "x" Value.TInt in
  let rn = Col.fresh "rn" Value.TInt in
  let three = const_table [ x ] [ [| t_int 1 |]; [| t_int 1 |]; [| t_int 2 |] ] in
  let keyed = Rownum { out = rn; input = three } in
  (* grouping by a key: every row is its own group, interval unchanged *)
  let t = analyze (GroupBy { keys = [ rn ]; aggs = []; input = keyed }) in
  check "card [3,3] preserved when grouping by a key" true
    (t.Fd.card.Fd.lo = 3 && t.Fd.card.Fd.hi = Some 3);
  (* grouping by a non-key: anywhere between 1 group and all rows *)
  let t' = analyze (GroupBy { keys = [ x ]; aggs = []; input = keyed }) in
  check "card [1,3] when grouping by a non-key" true
    (t'.Fd.card.Fd.lo = 1 && t'.Fd.card.Fd.hi = Some 3);
  check "grouping columns become a key" true (Fd.covers_key t' (s1 x))

let test_scalar_agg_interval () =
  let out = Col.fresh "cnt" Value.TInt in
  let t = analyze (ScalarAgg { aggs = [ { fn = CountStar; out } ]; input = scan_s }) in
  check "ScalarAgg is exactly one row" true
    (t.Fd.card.Fd.lo = 1 && t.Fd.card.Fd.hi = Some 1);
  check "COUNT(*) is non-null" true (Col.Set.mem out t.Fd.nonnull)

let test_rownum_manufactures_key () =
  let x = Col.fresh "x" Value.TInt in
  let rn = Col.fresh "rn" Value.TInt in
  let t = analyze (Rownum { out = rn; input = const_table [ x ] [ [| Value.Null |]; [| Value.Null |] ] }) in
  check "rownum column is a key" true (Fd.covers_key t (s1 rn));
  check "rownum column is non-null" true (Col.Set.mem rn t.Fd.nonnull)

(* --- runtime cross-check ------------------------------------------------ *)

let test_check_rows () =
  let t = analyze scan_s in
  let schema = [ sa; sb ] in
  let ok = [ [| t_int 1; t_int 10 |]; [| t_int 2; Value.Null |] ] in
  check "conforming bag passes" true (Fd.check_rows t ~schema ok = []);
  let dup_key = [ [| t_int 1; t_int 10 |]; [| t_int 1; t_int 20 |] ] in
  check "duplicate key caught" true (Fd.check_rows t ~schema dup_key <> []);
  let null_key = [ [| Value.Null; t_int 10 |] ] in
  check "NULL in a non-null column caught" true (Fd.check_rows t ~schema null_key <> []);
  (* interval: a ConstTable's [n,n] bound *)
  let x = Col.fresh "x" Value.TInt in
  let t2 = analyze (const_table [ x ] [ [| t_int 1 |]; [| t_int 2 |] ]) in
  check "cardinality below the interval caught" true
    (Fd.check_rows t2 ~schema:[ x ] [ [| t_int 1 |] ] <> [])

(* --- golden: bench workloads that lose an operator ---------------------- *)

let db = lazy (Datagen.Tpch_gen.database ~sf:0.002 ())

let census o =
  let groupbys = ref 0 and outerjoins = ref 0 in
  let rec walk o =
    (match o with
    | GroupBy _ -> incr groupbys
    | Join { kind = LeftOuter; _ } | Apply { kind = LeftOuter; _ } -> incr outerjoins
    | _ -> ());
    List.iter walk (Op.children o)
  in
  walk o;
  (!groupbys, !outerjoins)

let bag (e : Engine.execution) =
  List.sort compare
    (List.map
       (fun r -> String.concat "|" (Array.to_list (Array.map Value.to_string r)))
       e.Engine.result.rows)

let rewrite_delta sql =
  let eng = Engine.create (Lazy.force db) in
  let before_cfg = { Optimizer.Config.full with property_rewrites = false } in
  let pb = Engine.prepare ~config:before_cfg eng sql in
  let pa = Engine.prepare ~config:Optimizer.Config.full eng sql in
  let eb = Engine.execute eng pb and ea = Engine.execute eng pa in
  Alcotest.(check (list string)) "bags agree across the rewrite" (bag eb) (bag ea);
  (census pb.Engine.plan, census pa.Engine.plan)

let test_workload_groupby_on_key () =
  (* bench workload "groupby-key": GroupBy on the orders PK collapses *)
  let (gb0, _), (gb1, _) =
    rewrite_delta
      "select o_orderkey, sum(o_totalprice) as t from orders group by o_orderkey \
       order by t desc limit 5"
  in
  check_int "GroupBy present without property rewrites" 1 gb0;
  check_int "GroupBy eliminated by the derived-key rewrite" 0 gb1

let test_workload_unused_lookup_join () =
  (* bench workload "lookup-join": an unreferenced key-unique LEFT
     OUTER JOIN against nation is dropped whole *)
  let (_, oj0), (_, oj1) =
    rewrite_delta
      "select c_custkey, c_name from customer left outer join nation on \
       n_nationkey = c_nationkey order by c_custkey limit 10"
  in
  check_int "outer join present without property rewrites" 1 oj0;
  check_int "outer join pruned by the property rewrite" 0 oj1

let suite =
  [ Alcotest.test_case "scan key and closure" `Quick test_scan_key;
    Alcotest.test_case "select equality extends the closure" `Quick
      test_select_equality_closure;
    Alcotest.test_case "constant on a key pins one row" `Quick test_select_const_on_key;
    Alcotest.test_case "leftouter NULLs the right side" `Quick test_leftouter_nulls_right;
    Alcotest.test_case "leftouter with pinned right key" `Quick test_leftouter_pinned_key;
    Alcotest.test_case "leftouter with nullable right key" `Quick
      test_leftouter_nullable_right_key;
    Alcotest.test_case "unionall weakens facts, adds intervals" `Quick
      test_unionall_weakens;
    Alcotest.test_case "except preserves left facts" `Quick test_except_preserves_left;
    Alcotest.test_case "except interval arithmetic" `Quick test_except_interval;
    Alcotest.test_case "apply correlation params pin per-invocation" `Quick
      test_apply_correlation_param;
    Alcotest.test_case "max1row interval and contradiction" `Quick
      test_max1row_contradiction;
    Alcotest.test_case "groupby-on-key interval" `Quick test_groupby_on_key_interval;
    Alcotest.test_case "scalar agg interval" `Quick test_scalar_agg_interval;
    Alcotest.test_case "rownum manufactures a key" `Quick test_rownum_manufactures_key;
    Alcotest.test_case "check_rows catches violations" `Quick test_check_rows;
    Alcotest.test_case "workload: groupby-on-key loses its GroupBy" `Quick
      test_workload_groupby_on_key;
    Alcotest.test_case "workload: unused lookup join is pruned" `Quick
      test_workload_unused_lookup_join
  ]
