(* Observability layer tests: 3VL AND/OR/NOT semantics (truth tables and
   type errors), budget row-accounting in aggregation/set operators, the
   per-operator metrics tree, the optimizer search trace, and golden
   EXPLAIN ANALYZE output over bench workloads. *)

open Relalg
open Relalg.Algebra
module E = Exec.Executor

let db = lazy (Support.toy_db ())

let eval e =
  let ctx = E.make_ctx (Lazy.force db) in
  E.eval ctx E.empty_lookup e

let b v = Const (Value.Bool v)
let u = Const Value.Null
let i n = Const (Value.Int n)

let check_v msg expected e =
  Alcotest.(check string) msg (Value.to_string expected) (Value.to_string (eval e))

let check_type_error msg e =
  match eval e with
  | exception E.Runtime_error _ -> ()
  | v -> Alcotest.failf "%s: expected Runtime_error, got %s" msg (Value.to_string v)

(* --- Kleene three-valued logic ---------------------------------------- *)

let test_and_truth_table () =
  let t = Value.Bool true and f = Value.Bool false and n = Value.Null in
  (* the full 3x3 table *)
  check_v "T and T" t (And (b true, b true));
  check_v "T and F" f (And (b true, b false));
  check_v "T and U" n (And (b true, u));
  check_v "F and T" f (And (b false, b true));
  check_v "F and F" f (And (b false, b false));
  check_v "F and U" f (And (b false, u));
  check_v "U and T" n (And (u, b true));
  check_v "U and F" f (And (u, b false));
  check_v "U and U" n (And (u, u))

let test_or_truth_table () =
  let t = Value.Bool true and f = Value.Bool false and n = Value.Null in
  check_v "T or T" t (Or (b true, b true));
  check_v "T or F" t (Or (b true, b false));
  check_v "T or U" t (Or (b true, u));
  check_v "F or T" t (Or (b false, b true));
  check_v "F or F" f (Or (b false, b false));
  check_v "F or U" n (Or (b false, u));
  check_v "U or T" t (Or (u, b true));
  check_v "U or F" n (Or (u, b false));
  check_v "U or U" n (Or (u, u))

let test_not_truth_table () =
  check_v "not T" (Value.Bool false) (Not (b true));
  check_v "not F" (Value.Bool true) (Not (b false));
  check_v "not U" Value.Null (Not u)

let test_connective_type_errors () =
  (* non-boolean non-null operands are runtime type errors, matching
     [Not] — previously AND/OR silently coerced them to TRUE *)
  check_type_error "int and int" (And (i 1, i 2));
  check_type_error "true and int" (And (b true, i 1));
  check_type_error "null and int" (And (u, i 1));
  check_type_error "int or int" (Or (i 1, i 2));
  check_type_error "false or int" (Or (b false, i 1));
  check_type_error "null or int" (Or (u, i 1));
  check_type_error "not int" (Not (i 1));
  (* a decided left operand still short-circuits without evaluating
     (or type-checking) the right *)
  check_v "F and <bad>" (Value.Bool false) (And (b false, i 1));
  check_v "T or <bad>" (Value.Bool true) (Or (b true, i 1))

(* --- budget row accounting --------------------------------------------- *)

let budget_trips sql ~max_rows =
  let eng = Engine.create (Lazy.force db) in
  let budget = Exec.Budget.make ~max_rows () in
  match Engine.query ~budget eng sql with
  | exception Exec.Budget.Exceeded (Exec.Budget.Rows, p) ->
      Alcotest.(check bool)
        "progress counted past the cap" true
        (p.Exec.Budget.rows_processed > max_rows)
  | _ -> Alcotest.failf "max_rows=%d did not trip on %s" max_rows sql

let test_budget_counts_groupby () =
  (* scan 4 + select 4 = 8 stays under the cap; the GroupBy input rows
     push past it.  Before the fix only TableScan/Join/Apply advanced the
     counter, so this query ran to completion. *)
  let sql = "select dept, sum(salary) from emp where salary > 0 group by dept" in
  let eng = Engine.create (Lazy.force db) in
  Alcotest.(check int) "query works unbudgeted" 3 (List.length (Engine.query eng sql).rows);
  budget_trips sql ~max_rows:9

let test_budget_counts_scalar_agg () =
  budget_trips "select sum(salary) from emp" ~max_rows:5

let test_budget_counts_union_all () =
  (* two scans of bag account 3 + 3; the UnionAll inputs trip the cap *)
  budget_trips "select x from bag union all select x from bag" ~max_rows:8

(* --- per-operator metrics tree ----------------------------------------- *)

let rec tree_nodes (n : Exec.Metrics.node) : Exec.Metrics.node list =
  n :: List.concat_map tree_nodes n.children

let find_node label nodes =
  match
    List.find_opt
      (fun (n : Exec.Metrics.node) -> Support.contains (Lazy.force n.label) label)
      nodes
  with
  | Some n -> n
  | None ->
      Alcotest.failf "no metrics node labeled %s among [%s]" label
        (String.concat "; "
           (List.map (fun (n : Exec.Metrics.node) -> Lazy.force n.label) nodes))

let test_metrics_tree_counters () =
  let eng = Engine.create (Lazy.force db) in
  let p = Engine.prepare eng "select name from emp where salary > 150" in
  let e = Engine.execute ~collect_metrics:true eng p in
  let root =
    match e.Engine.metrics with
    | Some r -> r
    | None -> Alcotest.fail "collect_metrics:true returned no tree"
  in
  let nodes = tree_nodes root in
  let scan = find_node "Scan(emp)" nodes in
  Alcotest.(check int) "scan invocations" 1 scan.invocations;
  Alcotest.(check int) "scan rows out" 4 scan.rows_out;
  let sel = find_node "Select" nodes in
  Alcotest.(check int) "select rows in" 4 sel.rows_in;
  Alcotest.(check int) "select rows out" 3 sel.rows_out;
  Alcotest.(check int) "root rows out" 3 root.rows_out;
  (* execution without collect_metrics returns no tree *)
  let e2 = Engine.execute eng p in
  Alcotest.(check bool) "disabled by default" true (e2.Engine.metrics = None)

let test_metrics_hash_build_and_render () =
  let eng = Engine.create (Lazy.force db) in
  let p = Engine.prepare eng "select dept, sum(salary) from emp group by dept" in
  let e = Engine.execute ~collect_metrics:true eng p in
  let root = Option.get e.Engine.metrics in
  let gb = find_node "GroupBy" (tree_nodes root) in
  Alcotest.(check int) "groups built" 3 gb.hash_build_rows;
  Alcotest.(check int) "groupby rows in" 4 gb.rows_in;
  let text = Exec.Metrics.render ~times:false root in
  Alcotest.(check bool) "render shows counters" true
    (Support.contains text "(inv=1 in=4 out=3 hash-build=3)");
  Alcotest.(check bool) "render omits times" true (not (Support.contains text "time="));
  let json = Exec.Metrics.to_json root in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " in json") true (Support.contains json field))
    [ "\"op\""; "\"invocations\""; "\"rows_in\""; "\"rows_out\""; "\"children\"" ]

let test_metrics_apply_fast_path () =
  let eng = Engine.create (Lazy.force db) in
  (* correlated execution: Apply probes dept's primary-key index once
     per emp row; the inner tree itself is never evaluated *)
  let p =
    Engine.prepare ~config:Optimizer.Config.correlated_only eng
      "select name from emp where exists (select did from dept where did = dept)"
  in
  let e = Engine.execute ~collect_metrics:true eng p in
  let nodes = tree_nodes (Option.get e.Engine.metrics) in
  let apply = find_node "Apply" nodes in
  Alcotest.(check int) "one probe per outer row" 4 apply.fast_path_hits;
  let inner_scan = find_node "Scan(dept)" nodes in
  Alcotest.(check int) "inner tree bypassed" 0 inner_scan.invocations;
  Alcotest.(check bool) "bypassed operators rendered as such" true
    (Support.contains (Exec.Metrics.render ~times:false apply) "[not executed]")

(* --- optimizer search trace -------------------------------------------- *)

let test_search_trace () =
  let eng = Engine.create (Lazy.force db) in
  let sql = "select dept, sum(salary) from emp, dept where dept = did group by dept" in
  let p = Engine.prepare ~record_trace:true eng sql in
  let tr =
    match p.Engine.trace with
    | Some tr -> tr
    | None -> Alcotest.fail "record_trace:true returned no trace"
  in
  Alcotest.(check bool) "rounds recorded" true (List.length tr.Optimizer.Search.rounds > 0);
  let fired_sum =
    List.fold_left
      (fun acc (r : Optimizer.Search.round_trace) ->
        List.fold_left (fun a (s : Optimizer.Search.rule_stat) -> a + s.fired) acc r.stats)
      0 tr.Optimizer.Search.rounds
  in
  Alcotest.(check int) "per-round stats sum to total" tr.Optimizer.Search.total_fired
    fired_sum;
  List.iter
    (fun (r : Optimizer.Search.round_trace) ->
      List.iter
        (fun (s : Optimizer.Search.rule_stat) ->
          Alcotest.(check int)
            ("kept+dups+invalid=fired for " ^ s.rule)
            s.fired
            (s.kept + s.dups + s.invalid))
        r.stats)
    tr.Optimizer.Search.rounds;
  Alcotest.(check bool) "text rendering" true
    (Support.contains (Optimizer.Search.trace_to_string tr) "search trace:");
  Alcotest.(check bool) "json rendering" true
    (Support.contains (Optimizer.Search.trace_to_json tr) "\"total_fired\"");
  (* tracing is not free-running: off by default, and absent entirely
     when the configuration disables the search *)
  Alcotest.(check bool) "off by default" true ((Engine.prepare eng sql).Engine.trace = None);
  let p0 =
    Engine.prepare ~config:Optimizer.Config.correlated_only ~record_trace:true eng sql
  in
  Alcotest.(check bool) "no search, no trace" true (p0.Engine.trace = None)

(* --- EXPLAIN ANALYZE golden output ------------------------------------- *)

(* The analyzed-plan section (everything up to the optimizer trace,
   which later PRs will legitimately change as rules are added) for two
   bench workloads at SF 0.01, seed 42.  Row counts, operator shapes,
   fast-path hits and hash-build sizes are all deterministic;
   [times:false] omits the wall-clock figures. *)

let tpch = lazy (Datagen.Tpch_gen.database ~seed:42 ~sf:0.01 ())

(* Column ids come from a process-global counter, so their absolute
   values depend on which tests ran earlier in the binary; renumber
   [#id]s by first occurrence (as [Optimizer.Search.canonical] does for
   plans) to make the rendering position-independent. *)
let renumber (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let map = Hashtbl.create 16 in
  let next = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '#' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      let id = String.sub s (!i + 1) (!j - !i - 1) in
      let canon =
        match Hashtbl.find_opt map id with
        | Some c -> c
        | None ->
            incr next;
            let c = string_of_int !next in
            Hashtbl.replace map id c;
            c
      in
      Buffer.add_char buf '#';
      Buffer.add_string buf (if id = "" then "" else canon);
      i := !j
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let analyzed_section (s : string) : string =
  let marker = "\n== optimizer trace ==" in
  let n = String.length s and m = String.length marker in
  let rec find i =
    if i + m > n then n else if String.sub s i m = marker then i else find (i + 1)
  in
  String.sub s 0 (find 0)

let golden_exists =
  "== subquery class ==\n\
   class 1 (fully flattened)\n\
   == chosen plan, analyzed (cost 837, seed 2109, 2 alternatives) ==\n\
   Project[s_name#1:=s_name#2]  (inv=1 in=10 out=10)\n\
  \  Apply(semi)  (inv=1 in=10 out=10 fast-path=10)\n\
  \    Scan(supplier)  (inv=1 in=0 out=10)\n\
  \    Select[((ps_suppkey#3 = s_suppkey#4) AND (ps_availqty#5 > 9000))]  [not executed]\n\
  \      Scan(partsupp)  [not executed]\n\n\
   10 rows, 30 rows processed, 10 apply invocations\n"

let golden_q1 =
  "== subquery class ==\n\
   class 1 (fully flattened)\n\
   == chosen plan, analyzed (cost 4555, seed 7510, 50 alternatives) ==\n\
   Project[c_custkey#1:=c_custkey#2]  (inv=1 in=99 out=99)\n\
  \  Select[(500000 < sum#3)]  (inv=1 in=150 out=99)\n\
  \    GroupBy[c_custkey#2][sum#3:=sum(o_totalprice#4)]  (inv=1 in=1500 out=150 hash-build=150)\n\
  \      Apply(inner)  (inv=1 in=150 out=1500 fast-path=150)\n\
  \        Scan(customer)  (inv=1 in=0 out=150)\n\
  \        Select[(o_custkey#5 = c_custkey#2)]  [not executed]\n\
  \          Scan(orders)  [not executed]\n\n\
   99 rows, 2049 rows processed, 150 apply invocations\n"

let test_explain_analyze_golden () =
  let eng = Engine.create (Lazy.force tpch) in
  let check_workload name sql golden =
    let out = Engine.explain_analyze ~times:false eng sql in
    Alcotest.(check string) (name ^ " analyzed plan") golden (renumber (analyzed_section out));
    Alcotest.(check bool) (name ^ " includes trace") true
      (Support.contains out "== optimizer trace ==\nsearch trace:")
  in
  check_workload "exists" Workloads.exists_workload golden_exists;
  check_workload "q1" Workloads.q1_subquery golden_q1

let test_explain_analyze_times_stable () =
  (* two runs differ only in wall-clock figures; with [times:false] the
     output is bit-identical *)
  let eng = Engine.create (Lazy.force tpch) in
  let once () = renumber (Engine.explain_analyze ~times:false eng Workloads.exists_workload) in
  Alcotest.(check string) "deterministic" (once ()) (once ())

let suite =
  [ Alcotest.test_case "AND truth table" `Quick test_and_truth_table;
    Alcotest.test_case "OR truth table" `Quick test_or_truth_table;
    Alcotest.test_case "NOT truth table" `Quick test_not_truth_table;
    Alcotest.test_case "connective type errors" `Quick test_connective_type_errors;
    Alcotest.test_case "budget counts GroupBy input" `Quick test_budget_counts_groupby;
    Alcotest.test_case "budget counts ScalarAgg input" `Quick test_budget_counts_scalar_agg;
    Alcotest.test_case "budget counts UnionAll input" `Quick test_budget_counts_union_all;
    Alcotest.test_case "metrics tree counters" `Quick test_metrics_tree_counters;
    Alcotest.test_case "metrics hash-build + render" `Quick test_metrics_hash_build_and_render;
    Alcotest.test_case "metrics Apply fast path" `Quick test_metrics_apply_fast_path;
    Alcotest.test_case "optimizer search trace" `Quick test_search_trace;
    Alcotest.test_case "explain analyze golden" `Quick test_explain_analyze_golden;
    Alcotest.test_case "explain analyze stable sans times" `Quick test_explain_analyze_times_stable
  ]
