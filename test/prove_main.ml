(* `make prove-rules`: run the bounded rule-soundness prover over every
   registered rewrite rule and normalization pass.  Exit 1 on any
   counterexample, vacuous rule, or missing template.

   Usage: prove_main.exe [k] [--coverage-out FILE]
     k               row bound per table, default 2
     --coverage-out  also write the aggregate coverage table to FILE
                     (uploaded as a CI artifact) *)

let () =
  let k = ref 2 and coverage_out = ref None in
  let rec parse = function
    | [] -> ()
    | "--coverage-out" :: f :: rest ->
        coverage_out := Some f;
        parse rest
    | a :: rest ->
        (match int_of_string_opt a with
        | Some n -> k := n
        | None -> failwith ("prove_main: unknown argument " ^ a));
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let k = !k in
  let t0 = Unix.gettimeofday () in
  let reports = Analysis.Smallscope.check_all ~k () in
  List.iter (fun r -> print_string (Analysis.Smallscope.report_to_string r)) reports;
  let coverage = Analysis.Smallscope.coverage_to_string reports in
  print_newline ();
  print_string coverage;
  (match !coverage_out with
  | None -> ()
  | Some f ->
      let oc = open_out f in
      output_string oc coverage;
      close_out oc;
      Printf.printf "coverage report written to %s\n" f);
  let failed = List.filter (fun r -> not (Analysis.Smallscope.passed_report r)) reports in
  Printf.printf "\n%d rules checked at k=%d in %.1fs: %d ok, %d failed\n"
    (List.length reports) k
    (Unix.gettimeofday () -. t0)
    (List.length reports - List.length failed)
    (List.length failed);
  if failed <> [] then exit 1
