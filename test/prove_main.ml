(* `make prove-rules`: run the bounded rule-soundness prover over every
   registered rewrite rule and normalization pass.  Exit 1 on any
   counterexample, vacuous rule, or missing template.

   Usage: prove_main.exe [k]   (row bound per table, default 2) *)

let () =
  let k =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  let t0 = Unix.gettimeofday () in
  let reports = Analysis.Smallscope.check_all ~k () in
  List.iter (fun r -> print_string (Analysis.Smallscope.report_to_string r)) reports;
  let failed = List.filter (fun r -> not (Analysis.Smallscope.passed_report r)) reports in
  Printf.printf "\n%d rules checked at k=%d in %.1fs: %d ok, %d failed\n"
    (List.length reports) k
    (Unix.gettimeofday () -. t0)
    (List.length reports - List.length failed)
    (List.length failed);
  if failed <> [] then exit 1
