(* Generator for the checked-in corrupt-snapshot corpus (test/corpus).

   Writes one valid snapshot of a tiny deterministic TPC-H database
   plus a family of doctored variants; test_storage.ml asserts that
   the valid file parses and that every doctored sibling is rejected
   with [Storage_corrupt].  The corpus is committed so the reader is
   exercised against fixed historical bytes — a format change that
   breaks compatibility fails loudly instead of silently regenerating
   both sides.

   Regenerate with:  dune exec test/corpus_main.exe -- test/corpus *)

open Relalg

let v_int i = Value.Int i
let v_str s = Value.Str s

let build_db () : Storage.Database.t =
  let db = Storage.Database.create (Catalog.tpch ()) in
  Storage.Table.load
    (Storage.Database.table db "region")
    [ [| v_int 0; v_str "AFRICA"; v_str "r0" |];
      [| v_int 1; v_str "EUROPE"; v_str "r1" |]
    ];
  Storage.Table.load
    (Storage.Database.table db "nation")
    [ [| v_int 0; v_str "ALGERIA"; v_int 0; v_str "n0" |];
      [| v_int 1; v_str "FRANCE"; v_int 1; v_str "n1" |];
      [| v_int 2; v_str "GERMANY"; v_int 1; v_str "n2" |]
    ];
  db

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let flip (s : string) (off : int) : string =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
  Bytes.to_string b

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/corpus" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let db = build_db () in
  let valid_path =
    Storage.Snapshot.write (Storage.Io_faults.env ()) ~dir ~epoch:7 db
  in
  let valid = read_file valid_path in
  Sys.rename valid_path (Filename.concat dir "valid.snap");
  let n = String.length valid in
  let emit name s = write_file (Filename.concat dir name) s in
  emit "empty.snap" "";
  emit "bad-magic.snap" (flip valid 0);
  emit "truncated-header.snap" (String.sub valid 0 11);
  emit "torn-page.snap" (flip valid (n / 2));
  emit "bad-footer.snap" (flip valid (n - 3));
  emit "truncated-tail.snap" (String.sub valid 0 (n - (n / 3)));
  emit "trailing-garbage.snap" (valid ^ "\000\255garbage");
  Printf.printf "corpus written to %s (%d bytes valid snapshot)\n" dir n
