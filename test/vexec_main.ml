(* Row-vs-vector differential smoke: `make vexec-smoke`.

   Part 1 runs every bench workload under every optimizer config with
   the vectorized engine as candidate and the row interpreter (same
   config) as reference — any disagreement is a vexec bug, since the
   plan is identical on both sides.

   Part 2 sweeps generated queries (Testgen.Qgen) through the same
   differential in vector mode, once with the full optimizer (mostly
   decorrelated plans) and once with the correlated-only candidate so
   the Apply-retaining plans drive the batched-Apply paths.  Usage:

     vexec_main.exe [CASES] [SEED...]      (default: 200 cases, seed 1) *)

let sf = 0.01
let fuzz_sf = 0.002

let configs =
  [ ("correlated", Optimizer.Config.correlated_only);
    ("decorrelated", Optimizer.Config.decorrelated_only);
    ("full", Optimizer.Config.full)
  ]

let () =
  let args = Array.to_list Sys.argv in
  let cases, seeds =
    match args with
    | _ :: c :: rest when rest <> [] ->
        (int_of_string c, List.map int_of_string rest)
    | _ :: c :: _ -> (int_of_string c, [ 1 ])
    | _ -> (200, [ 1 ])
  in
  let failures = ref 0 in

  (* part 1: workloads x configs *)
  let db = Datagen.Tpch_gen.database ~sf () in
  let eng = Engine.create db in
  List.iter
    (fun (qname, sql) ->
      List.iter
        (fun (cname, cfg) ->
          let r =
            Engine.check ~candidate:cfg ~reference:cfg ~mode:`Vector ~float_digits:12 eng
              sql
          in
          Printf.printf "workload %-14s %-13s %s (%d rows)\n%!" qname cname
            (if r.Engine.agree then "AGREE" else "MISMATCH")
            r.Engine.candidate_rows;
          if not r.Engine.agree then begin
            incr failures;
            print_string (Engine.format_check_report r)
          end)
        configs)
    Workloads.all_named;

  (* part 2: generated-query sweep, vector candidate *)
  let fdb = Datagen.Tpch_gen.database ~sf:fuzz_sf () in
  let feng = Engine.create fdb in
  let budget = Exec.Budget.make ~max_rows:5_000_000 () in
  let sweep ~label ~candidate seed =
    let cfg =
      { (Testgen.Fuzz.default_config ~seed ~cases) with
        Testgen.Fuzz.budget = Some budget;
        exec_mode = `Vector;
        candidate;
      }
    in
    let s = Testgen.Fuzz.run cfg feng in
    Printf.printf "fuzz[vector/%s] seed %d: %d cases, %d agreed, %d skipped, %d failures\n%!"
      label seed s.Testgen.Fuzz.total s.agreed s.skipped
      (List.length s.failures);
    List.iter
      (fun (f : Testgen.Fuzz.case_result) ->
        incr failures;
        Printf.printf "  case %d: %s\n%s\n" f.case f.sql
          (match f.outcome with
          | Testgen.Fuzz.Mismatch m | Testgen.Fuzz.Failed m -> m
          | _ -> ""))
      s.failures
  in
  List.iter
    (fun seed ->
      sweep ~label:"full" ~candidate:Optimizer.Config.full seed;
      sweep ~label:"correlated" ~candidate:Optimizer.Config.correlated_only seed)
    seeds;

  if !failures > 0 then begin
    Printf.printf "vexec-smoke: %d failure(s)\n" !failures;
    exit 1
  end
  else print_endline "vexec-smoke: all row-vs-vector checks agree"
