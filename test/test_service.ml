(* Concurrent query service tests: admission control, deadlines at
   both stages, retry/backoff, the per-session circuit breaker,
   crash-only workers with poisoning, the inflight-cost gate, and a
   multi-domain differential sweep against the single-threaded row
   oracle.  Also the domain-safety regression for the shared stats
   cache.

   Timing discipline: tests never assert that something happened
   *within* a wall-clock bound (flaky under load); they only assert
   state machines reached the right states, using blocking gates and
   generous sleeps for the few cases that need real time to pass. *)

open Support

exception Kaboom (* outside the pipeline's typed vocabulary: crashes workers *)

(* A gate the tests use to hold a worker hostage: the chaos hook blocks
   until the test releases it. *)
module Gate = struct
  type t = { lock : Mutex.t; cond : Condition.t; mutable open_ : bool }

  let create () = { lock = Mutex.create (); cond = Condition.create (); open_ = false }

  let wait g =
    Mutex.protect g.lock (fun () ->
        while not g.open_ do
          Condition.wait g.cond g.lock
        done)

  let release g =
    Mutex.protect g.lock (fun () ->
        g.open_ <- true;
        Condition.broadcast g.cond)
end

let config ?(domains = 1) ?(max_queue = 8) ?max_inflight_cost ?default_deadline_s
    ?(retry = Service.Backoff.default) ?(breaker = Service.Breaker.default_config)
    ?(poison_threshold = 2) () =
  { Service.default_config with
    domains;
    max_queue;
    max_inflight_cost;
    default_deadline_s;
    retry;
    breaker;
    poison_threshold;
  }

let ok_rows (r : Service.reply) : Relalg.Value.t array list =
  match r.outcome with
  | Ok e -> e.Engine.result.Exec.Executor.rows
  | Error e -> Alcotest.failf "expected success, got: %s" (Service.error_to_string e)

let fast_retry =
  { Service.Backoff.default with base_delay_s = 0.0005; max_delay_s = 0.002 }

let simple_sql = "select eid from emp where salary > 150"

(* --- admission ------------------------------------------------------- *)

let test_admission_rejects_at_capacity () =
  let gate = Gate.create () in
  let t = Service.create ~config:(config ~domains:1 ~max_queue:2 ()) (toy_db ()) in
  (* the lone worker blocks on the gate; two more requests fill the queue *)
  let blocker =
    Service.submit t (Service.request ~chaos:(fun () -> Gate.wait gate) simple_sql)
  in
  let blocker = match blocker with Ok tk -> tk | Error _ -> Alcotest.fail "blocker shed" in
  (* the worker may not have dequeued the blocker yet; admission capacity
     2 means at least two of the next three submissions are rejected *)
  let tickets = List.init 3 (fun _ -> Service.submit t (Service.request simple_sql)) in
  let shed =
    List.filter (function Error (Service.Overloaded _) -> true | _ -> false) tickets
  in
  Alcotest.(check bool) "at least 2 of 3 rejected" true (List.length shed >= 2);
  (match shed with
  | Error (Service.Overloaded { retry_after_s; _ }) :: _ ->
      Alcotest.(check bool) "retry_after positive" true (retry_after_s > 0.)
  | _ -> Alcotest.fail "expected an Overloaded rejection");
  Gate.release gate;
  ignore (Service.await t blocker);
  List.iter (function Ok tk -> ignore (Service.await t tk) | Error _ -> ()) tickets;
  let s = Service.stats t in
  Alcotest.(check bool) "sheds counted" true (s.Service.Stats.shed >= 2);
  Alcotest.(check bool) "high water reached" true (s.Service.Stats.queue_high_water >= 2);
  Service.shutdown t

let test_shutdown_rejects () =
  let t = Service.create ~config:(config ()) (toy_db ()) in
  Service.shutdown t;
  (match Service.submit t (Service.request simple_sql) with
  | Error Service.Shut_down -> ()
  | _ -> Alcotest.fail "expected Shut_down");
  let r = Service.run t (Service.request simple_sql) in
  (match r.Service.outcome with
  | Error Service.Shut_down -> ()
  | _ -> Alcotest.fail "run after shutdown should carry Shut_down")

(* --- deadlines ------------------------------------------------------- *)

let test_deadline_queued () =
  let gate = Gate.create () in
  let t = Service.create ~config:(config ~domains:1 ()) (toy_db ()) in
  let blocker =
    Service.submit t (Service.request ~chaos:(fun () -> Gate.wait gate) simple_sql)
  in
  (* queued behind the blocker with a deadline that expires in the queue *)
  let doomed = Service.submit t (Service.request ~deadline_s:0.02 simple_sql) in
  Unix.sleepf 0.08;
  Gate.release gate;
  (match blocker with Ok tk -> ignore (Service.await t tk) | Error _ -> ());
  (match doomed with
  | Ok tk -> (
      let r = Service.await t tk in
      match r.Service.outcome with
      | Error (Service.Deadline { stage = `Queued; overdue_s }) ->
          Alcotest.(check bool) "overdue positive" true (overdue_s > 0.)
      | Error e -> Alcotest.failf "expected queued-deadline, got %s" (Service.error_to_string e)
      | Ok _ -> Alcotest.fail "expected queued-deadline, got success")
  | Error _ -> Alcotest.fail "doomed request was shed");
  let s = Service.stats t in
  Alcotest.(check int) "deadline_queued counted" 1 s.Service.Stats.deadline_queued;
  Service.shutdown t

let test_deadline_running () =
  let t = Service.create ~config:(config ~domains:1 ()) (toy_db ()) in
  (* the chaos hook burns the deadline after pickup but before execution,
     so the budget's deadline check trips cooperatively mid-query *)
  let r =
    Service.run t
      (Service.request ~deadline_s:0.02 ~chaos:(fun () -> Unix.sleepf 0.06) simple_sql)
  in
  (match r.Service.outcome with
  | Error (Service.Deadline { stage = `Running; overdue_s }) ->
      Alcotest.(check bool) "overdue positive" true (overdue_s > 0.)
  | Error e -> Alcotest.failf "expected running-deadline, got %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected running-deadline, got success");
  let s = Service.stats t in
  Alcotest.(check int) "deadline_running counted" 1 s.Service.Stats.deadline_running;
  Service.shutdown t

(* --- backoff --------------------------------------------------------- *)

let test_backoff_envelope () =
  let p =
    { Service.Backoff.max_retries = 5;
      base_delay_s = 0.010;
      multiplier = 2.0;
      max_delay_s = 0.050;
      jitter = 0.5;
    }
  in
  Alcotest.(check (float 1e-9)) "attempt 0" 0.010 (Service.Backoff.envelope p ~attempt:0);
  Alcotest.(check (float 1e-9)) "attempt 1" 0.020 (Service.Backoff.envelope p ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.040 (Service.Backoff.envelope p ~attempt:2);
  (* capped thereafter *)
  Alcotest.(check (float 1e-9)) "attempt 3 capped" 0.050 (Service.Backoff.envelope p ~attempt:3);
  Alcotest.(check (float 1e-9)) "attempt 9 capped" 0.050 (Service.Backoff.envelope p ~attempt:9)

let test_backoff_jitter_bounded () =
  let p =
    { Service.Backoff.max_retries = 5;
      base_delay_s = 0.010;
      multiplier = 2.0;
      max_delay_s = 0.100;
      jitter = 0.5;
    }
  in
  let rng = Service.Rng.create 7 in
  let distinct = Hashtbl.create 16 in
  for attempt = 0 to 3 do
    let cap = Service.Backoff.envelope p ~attempt in
    for _ = 1 to 50 do
      let d = Service.Backoff.delay p rng ~attempt in
      Alcotest.(check bool) "within jitter floor" true (d >= cap *. 0.5 -. 1e-12);
      Alcotest.(check bool) "below envelope" true (d <= cap +. 1e-12);
      Hashtbl.replace distinct d ()
    done
  done;
  (* jittered: the draws are not all identical *)
  Alcotest.(check bool) "delays vary" true (Hashtbl.length distinct > 10)

(* --- circuit breaker (deterministic clock) --------------------------- *)

let test_breaker_lifecycle () =
  let now = ref 0.0 in
  let cfg = { Service.Breaker.failure_threshold = 3; cooldown_s = 1.0 } in
  let b = Service.Breaker.create ~now:(fun () -> !now) cfg in
  let open Service.Breaker in
  Alcotest.(check bool) "starts closed, allows" true (allow b);
  Alcotest.(check bool) "failure 1 no trip" false (record_failure b);
  Alcotest.(check bool) "failure 2 no trip" false (record_failure b);
  Alcotest.(check string) "still closed" "closed" (state_to_string (state b));
  Alcotest.(check bool) "failure 3 trips" true (record_failure b);
  Alcotest.(check string) "open" "open" (state_to_string (state b));
  Alcotest.(check bool) "open refuses" false (allow b);
  now := 0.5;
  Alcotest.(check bool) "still cooling" false (allow b);
  now := 1.1;
  Alcotest.(check bool) "half-open admits one trial" true (allow b);
  Alcotest.(check string) "half-open" "half-open" (state_to_string (state b));
  Alcotest.(check bool) "no second trial" false (allow b);
  record_success b;
  Alcotest.(check string) "trial success closes" "closed" (state_to_string (state b));
  (* success resets the consecutive-failure count *)
  Alcotest.(check bool) "f1" false (record_failure b);
  record_success b;
  Alcotest.(check bool) "f1 again" false (record_failure b);
  Alcotest.(check bool) "f2" false (record_failure b);
  Alcotest.(check bool) "f3 trips again" true (record_failure b);
  now := 2.5;
  Alcotest.(check bool) "half-open again" true (allow b);
  Alcotest.(check bool) "trial failure re-trips" true (record_failure b);
  Alcotest.(check string) "re-opened" "open" (state_to_string (state b));
  Alcotest.(check int) "three opens total" 3 (opens b)

(* A half-open trial that ends without a health verdict must be aborted
   back to open — not leaked, which would pin the session half-open
   forever (allow refuses everyone and no record_* is ever reachable). *)
let test_breaker_abort_trial () =
  let now = ref 0.0 in
  let cfg = { Service.Breaker.failure_threshold = 1; cooldown_s = 1.0 } in
  let b = Service.Breaker.create ~now:(fun () -> !now) cfg in
  let open Service.Breaker in
  Alcotest.(check bool) "trips open" true (record_failure b);
  now := 1.5;
  Alcotest.(check bool) "half-open admits trial" true (allow b);
  Alcotest.(check string) "half-open" "half-open" (state_to_string (state b));
  abort_trial b;
  Alcotest.(check string) "aborted back to open" "open" (state_to_string (state b));
  (* the elapsed cooldown is not restarted: the next caller is the new trial *)
  Alcotest.(check bool) "new trial admitted immediately" true (allow b);
  record_success b;
  Alcotest.(check string) "trial success closes" "closed" (state_to_string (state b));
  (* abort outside half-open is a no-op *)
  abort_trial b;
  Alcotest.(check string) "still closed" "closed" (state_to_string (state b));
  Alcotest.(check int) "abort counted no extra opens" 1 (opens b)

(* --- retry of transient faults --------------------------------------- *)

let test_transient_fault_retried () =
  let t =
    Service.create ~config:(config ~domains:1 ~retry:fast_retry ()) (toy_db ())
  in
  (* nth:1 kills the first operator evaluation; the armed fault state is
     shared across attempts, so the retry sails through *)
  let fault = { Exec.Faults.target = Exec.Faults.Any; mode = Exec.Faults.Nth 1; seed = 0 } in
  let r = Service.run t (Service.request ~fault simple_sql) in
  let rows = ok_rows r in
  Alcotest.(check bool) "retried at least once" true (r.Service.retries >= 1);
  Alcotest.(check bool) "not degraded" false r.Service.degraded;
  check_same_bag "same rows as oracle" rows (run_sql (toy_db ()) simple_sql);
  let s = Service.stats t in
  Alcotest.(check bool) "retries counted" true (s.Service.Stats.retried >= 1);
  Service.shutdown t

(* --- breaker integration: degrade, pin, recover ---------------------- *)

let test_breaker_pins_session_then_recovers () =
  let breaker = { Service.Breaker.failure_threshold = 2; cooldown_s = 0.15 } in
  let retry = { fast_retry with Service.Backoff.max_retries = 0 } in
  let t =
    Service.create ~config:(config ~domains:1 ~retry ~breaker ()) (toy_db ())
  in
  (* every operator evaluation dies: primary and fallback both fail,
     each request feeds the breaker one primary-path failure *)
  let always = { Exec.Faults.target = Exec.Faults.Any; mode = Exec.Faults.Every 1; seed = 0 } in
  for _ = 1 to 2 do
    let r = Service.run t (Service.request ~session:"s1" ~fault:always simple_sql) in
    match r.Service.outcome with
    | Error (Service.Failed _) -> ()
    | _ -> Alcotest.fail "expected Failed under total fault injection"
  done;
  Alcotest.(check string) "breaker open after threshold" "open"
    (Service.Breaker.state_to_string (Service.breaker_state t "s1"));
  (* while open, a clean request is pinned to the degraded path *)
  let r = Service.run t (Service.request ~session:"s1" simple_sql) in
  Alcotest.(check bool) "served degraded" true r.Service.degraded;
  check_same_bag "degraded result still correct" (ok_rows r) (run_sql (toy_db ()) simple_sql);
  (* other sessions are unaffected *)
  let r2 = Service.run t (Service.request ~session:"s2" simple_sql) in
  Alcotest.(check bool) "other session not degraded" false r2.Service.degraded;
  (* after the cooldown, the half-open trial succeeds and closes it *)
  Unix.sleepf 0.2;
  let r3 = Service.run t (Service.request ~session:"s1" simple_sql) in
  Alcotest.(check bool) "trial served by primary" false r3.Service.degraded;
  Alcotest.(check string) "breaker closed again" "closed"
    (Service.Breaker.state_to_string (Service.breaker_state t "s1"));
  let s = Service.stats t in
  Alcotest.(check bool) "trip counted" true (s.Service.Stats.breaker_trips >= 1);
  Alcotest.(check bool) "degrades counted" true (s.Service.Stats.degraded >= 1);
  Service.shutdown t

(* Service-level regression for the stuck-half-open bug: a fatal (parse)
   request consumes the half-open trial without a verdict; the trial
   must be aborted so the next clean request can close the breaker. *)
let test_breaker_fatal_trial_not_leaked () =
  let breaker = { Service.Breaker.failure_threshold = 2; cooldown_s = 0.1 } in
  let retry = { fast_retry with Service.Backoff.max_retries = 0 } in
  let t =
    Service.create ~config:(config ~domains:1 ~retry ~breaker ()) (toy_db ())
  in
  let always = { Exec.Faults.target = Exec.Faults.Any; mode = Exec.Faults.Every 1; seed = 0 } in
  for _ = 1 to 2 do
    ignore (Service.run t (Service.request ~session:"s1" ~fault:always simple_sql))
  done;
  Alcotest.(check string) "open after threshold" "open"
    (Service.Breaker.state_to_string (Service.breaker_state t "s1"));
  Unix.sleepf 0.15;
  (* the half-open trial goes to a request that cannot parse *)
  let r = Service.run t (Service.request ~session:"s1" "select from (") in
  (match r.Service.outcome with
  | Error (Service.Failed _) -> ()
  | _ -> Alcotest.fail "expected parse failure");
  Alcotest.(check string) "trial aborted back to open" "open"
    (Service.Breaker.state_to_string (Service.breaker_state t "s1"));
  (* the next clean request becomes the new trial and closes it *)
  let r2 = Service.run t (Service.request ~session:"s1" simple_sql) in
  Alcotest.(check bool) "new trial served by primary" false r2.Service.degraded;
  check_same_bag "trial result correct" (ok_rows r2) (run_sql (toy_db ()) simple_sql);
  Alcotest.(check string) "breaker closed again" "closed"
    (Service.Breaker.state_to_string (Service.breaker_state t "s1"));
  Service.shutdown t

(* --- crash-only workers and poisoning -------------------------------- *)

let test_poisoned_request_quarantined () =
  let t = Service.create ~config:(config ~domains:2 ~poison_threshold:2 ()) (toy_db ()) in
  let r = Service.run t (Service.request ~chaos:(fun () -> raise Kaboom) simple_sql) in
  (match r.Service.outcome with
  | Error (Service.Poisoned { kills; last_error }) ->
      Alcotest.(check int) "poisoned after two kills" 2 kills;
      Alcotest.(check bool) "kill cause recorded" true (contains last_error "Kaboom")
  | Error e -> Alcotest.failf "expected Poisoned, got %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Poisoned, got success");
  (* the pool healed: respawned workers still serve clean requests *)
  Alcotest.(check int) "pool back to size" 2 (Service.live_workers t);
  let clean = Service.run t (Service.request simple_sql) in
  check_same_bag "service still serves" (ok_rows clean) (run_sql (toy_db ()) simple_sql);
  let s = Service.stats t in
  Alcotest.(check int) "two worker kills" 2 s.Service.Stats.worker_kills;
  Alcotest.(check int) "two respawns" 2 s.Service.Stats.worker_respawns;
  Alcotest.(check int) "one poisoned request" 1 s.Service.Stats.poisoned;
  (* the first kill re-enqueued the victim; that is not a new admission *)
  Alcotest.(check int) "one requeue" 1 s.Service.Stats.requeued;
  Alcotest.(check int) "victim admitted once" 2 s.Service.Stats.admitted;
  Service.shutdown t

(* Crash racing shutdown: the victim must be re-enqueued before the
   replacement spawns, or the replacement (and every idle worker) can
   observe empty+closed and retire first — stranding the job in a
   drained queue with zero live workers and hanging its await forever. *)
let test_crash_during_shutdown_no_hang () =
  let gate = Gate.create () in
  let t = Service.create ~config:(config ~domains:1 ~poison_threshold:2 ()) (toy_db ()) in
  let tk =
    Service.submit t
      (Service.request ~chaos:(fun () -> Gate.wait gate; raise Kaboom) simple_sql)
  in
  let tk = match tk with Ok tk -> tk | Error _ -> Alcotest.fail "request shed" in
  (* shutdown concurrently: it closes admission, then joins workers *)
  let closer = Domain.spawn (fun () -> Service.shutdown t) in
  Unix.sleepf 0.05;
  Gate.release gate;
  (* first crash re-enqueues; the replacement must pick the victim up
     even though the service is closed, crash again, and poison it *)
  let r = Service.await t tk in
  (match r.Service.outcome with
  | Error (Service.Poisoned { kills; _ }) -> Alcotest.(check int) "two kills" 2 kills
  | Error e -> Alcotest.failf "expected Poisoned, got %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Poisoned, got success");
  Domain.join closer

(* --- inflight cost gate ---------------------------------------------- *)

let test_cost_gate_sheds () =
  (* capacity below any plan's cost: every request is shed at dispatch,
     and the gate releases its reservation (no wedge, no leak) *)
  let t =
    Service.create ~config:(config ~domains:2 ~max_inflight_cost:1e-9 ()) (toy_db ())
  in
  List.iter
    (fun (r : Service.reply) ->
      match r.Service.outcome with
      | Error (Service.Overloaded _) -> ()
      | _ -> Alcotest.fail "expected cost-gate shed")
    (Service.run_many t (List.init 4 (fun _ -> Service.request simple_sql)));
  (* dispatch-time sheds are counted apart from admission sheds, so
     submitted = admitted + shed still holds *)
  let s = Service.stats t in
  Alcotest.(check int) "all admitted" 4 s.Service.Stats.admitted;
  Alcotest.(check int) "all shed at dispatch" 4 s.Service.Stats.shed_dispatch;
  Alcotest.(check int) "no admission sheds" 0 s.Service.Stats.shed;
  Service.shutdown t;
  (* generous capacity: everything runs *)
  let t = Service.create ~config:(config ~domains:2 ~max_inflight_cost:1e12 ()) (toy_db ()) in
  let r = Service.run t (Service.request simple_sql) in
  check_same_bag "admitted under large cap" (ok_rows r) (run_sql (toy_db ()) simple_sql);
  Service.shutdown t

(* --- multi-domain differential sweep --------------------------------- *)

let tpch = lazy (Datagen.Tpch_gen.database ~seed:42 ~sf:0.005 ())

let test_concurrent_differential_sweep () =
  let db = Lazy.force tpch in
  (* single-threaded row-engine oracle, full optimizer *)
  let eng = Engine.create db in
  let oracle =
    List.map
      (fun (name, sql) -> (name, bag (Engine.query ~mode:`Row eng sql).Exec.Executor.rows))
      Workloads.all_named
  in
  let t = Service.create ~config:(config ~domains:4 ~max_queue:256 ()) db in
  (* every workload twice, spread over four sessions *)
  let reqs =
    List.concat_map
      (fun i ->
        List.map
          (fun (name, sql) ->
            (name, Service.request ~session:(Printf.sprintf "s%d" (i mod 4)) sql))
          Workloads.all_named)
      [ 0; 1; 2; 3 ]
  in
  let replies = Service.run_many t (List.map snd reqs) in
  List.iter2
    (fun (name, _) (r : Service.reply) ->
      let rows = ok_rows r in
      let expected = List.assoc name oracle in
      Alcotest.(check (list string)) (name ^ " matches row oracle") expected (bag rows))
    reqs replies;
  let s = Service.stats t in
  Alcotest.(check int) "all completed" (List.length reqs) s.Service.Stats.completed;
  Alcotest.(check int) "none failed" 0 s.Service.Stats.failed;
  Service.shutdown t

(* --- shared stats cache under concurrent compilation ----------------- *)

let test_stats_cache_domain_safety () =
  let db = toy_db () in
  let stats = Optimizer.Stats.create db in
  let pairs =
    [ ("emp", "eid"); ("emp", "dept"); ("emp", "salary"); ("dept", "did");
      ("dept", "dname"); ("bag", "x"); ("bag", "y")
    ]
  in
  let expected = List.map (fun (t, c) -> Optimizer.Stats.ndv stats t c) pairs in
  (* hammer the shared cache from four domains; a racy Hashtbl would
     corrupt its buckets or serve stale generations *)
  let worker () =
    for _ = 1 to 500 do
      List.iter2
        (fun (t, c) e ->
          let n = Optimizer.Stats.ndv stats t c in
          if n <> e then Alcotest.failf "ndv(%s.%s) raced: %d <> %d" t c n e)
        pairs expected
    done
  in
  let ds = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  (* generation bump invalidates concurrently-served entries *)
  Storage.Table.append (Storage.Database.table db "bag") [| v_int 9; v_int 90 |];
  let n = Optimizer.Stats.ndv stats "bag" "x" in
  Alcotest.(check int) "refreshed after append" 3 n

(* --- per-session stats stay bounded under session-name churn ---------- *)

let test_stats_session_overflow_bounded () =
  let st = Service.Stats.create () in
  for i = 1 to 1200 do
    Service.Stats.note_finished st
      ~session:(Printf.sprintf "churn%d" i)
      ~latency_s:0.001 Service.Stats.Completed
  done;
  let s = Service.Stats.snapshot st in
  (* 1024 tracked series plus the overflow bucket *)
  Alcotest.(check bool) "series bounded" true
    (List.length s.Service.Stats.per_session <= 1025);
  Alcotest.(check bool) "overflow pooled under (other)" true
    (List.mem_assoc "(other)" s.Service.Stats.per_session);
  let recorded =
    List.fold_left
      (fun acc (_, p) -> acc + p.Service.Stats.count)
      0 s.Service.Stats.per_session
  in
  Alcotest.(check int) "no finish lost to the bound" 1200 recorded

(* --- fresh column ids under concurrent compilation ------------------- *)

let test_fresh_cols_distinct_across_domains () =
  let spawn () =
    Domain.spawn (fun () -> List.init 2000 (fun _ -> (Relalg.Col.fresh "c" Relalg.Value.TInt).Relalg.Col.id))
  in
  let ds = List.init 4 (fun _ -> spawn ()) in
  let ids = List.concat_map Domain.join ds in
  let tbl = Hashtbl.create 8192 in
  List.iter
    (fun id ->
      if Hashtbl.mem tbl id then Alcotest.failf "duplicate fresh column id %d" id;
      Hashtbl.replace tbl id ())
    ids

let suite =
  [ Alcotest.test_case "admission rejects at capacity" `Quick test_admission_rejects_at_capacity;
    Alcotest.test_case "shutdown rejects new work" `Quick test_shutdown_rejects;
    Alcotest.test_case "deadline expires while queued" `Quick test_deadline_queued;
    Alcotest.test_case "deadline cancels mid-query" `Quick test_deadline_running;
    Alcotest.test_case "backoff envelope" `Quick test_backoff_envelope;
    Alcotest.test_case "backoff jitter bounded" `Quick test_backoff_jitter_bounded;
    Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
    Alcotest.test_case "breaker abort_trial unsticks half-open" `Quick test_breaker_abort_trial;
    Alcotest.test_case "transient fault retried" `Quick test_transient_fault_retried;
    Alcotest.test_case "breaker pins session, recovers" `Quick test_breaker_pins_session_then_recovers;
    Alcotest.test_case "fatal trial does not leak half-open" `Quick test_breaker_fatal_trial_not_leaked;
    Alcotest.test_case "poisoned request quarantined" `Quick test_poisoned_request_quarantined;
    Alcotest.test_case "crash during shutdown does not hang" `Quick test_crash_during_shutdown_no_hang;
    Alcotest.test_case "cost gate sheds" `Quick test_cost_gate_sheds;
    Alcotest.test_case "concurrent differential sweep" `Quick test_concurrent_differential_sweep;
    Alcotest.test_case "stats session overflow bounded" `Quick test_stats_session_overflow_bounded;
    Alcotest.test_case "stats cache domain safety" `Quick test_stats_cache_domain_safety;
    Alcotest.test_case "fresh column ids distinct" `Quick test_fresh_cols_distinct_across_domains
  ]
