(* Chaos soak for the concurrent query service.

   Hammers a multi-domain service from several client domains across
   every bench workload, with injected executor faults, tight
   deadlines, row budgets, worker-killing chaos hooks and forced
   overload (client bursts larger than the admission queue) — then
   differentially checks every successful reply against a
   single-threaded row-engine oracle.

   Success criteria (the robustness contract, ISSUE acceptance):
     - zero wrong bags: every Ok reply matches the oracle exactly
     - zero hangs: every submission gets a reply before the watchdog
       fires (the watchdog exits 3 if the soak wedges)
     - the pool heals: live workers = configured domains at the end

   Usage: soak_main.exe [requests] [domains] [seed]
     default 2000 requests, 4 domains, seed 1 — `make soak-smoke`. *)

exception Chaos_monkey (* untyped on purpose: exercises crash-only workers *)

let () =
  let argv = Sys.argv in
  let arg i d = if Array.length argv > i then int_of_string argv.(i) else d in
  let n_requests = arg 1 2000 in
  let n_domains = arg 2 4 in
  let seed = arg 3 1 in
  let n_clients = 4 in
  (* generous: plan search dominates (~50ms/request single-threaded)
     and a 1-core host runs all domains interleaved; a healthy soak
     finishes well inside this, a wedged one does not finish at all *)
  let time_limit_s = 480. in

  (* watchdog: a wedged soak is an automatic failure, not a CI timeout *)
  let (_ : unit Domain.t) =
    Domain.spawn (fun () ->
        Unix.sleepf time_limit_s;
        prerr_endline "SOAK HANG: watchdog fired, service wedged";
        exit 3)
  in

  let db = Datagen.Tpch_gen.database ~seed:42 ~sf:0.002 () in
  let workloads = Array.of_list Workloads.all_named in

  (* single-threaded row-engine oracle, computed before any chaos *)
  let bag rows =
    List.sort compare
      (List.map
         (fun r -> String.concat "|" (Array.to_list (Array.map Relalg.Value.to_string r)))
         rows)
  in
  let oracle_eng = Engine.create db in
  let oracle =
    Array.map
      (fun (name, sql) -> (name, bag (Engine.query ~mode:`Row oracle_eng sql).rows))
      workloads
  in

  let config =
    { Service.default_config with
      domains = n_domains;
      max_queue = 32;  (* small on purpose: client bursts force sheds *)
      retry = { Service.Backoff.default with base_delay_s = 0.0005; max_delay_s = 0.004 };
      breaker = { Service.Breaker.failure_threshold = 4; cooldown_s = 0.05 };
      seed;
    }
  in
  let t = Service.create ~config db in

  (* one request in [kill_every] crashes its worker (twice → poisoned) *)
  let kill_every = 150 in

  let build_request rng i =
    let w = Service.Rng.int rng (Array.length workloads) in
    let _, sql = workloads.(w) in
    let session = Printf.sprintf "s%d" (Service.Rng.int rng 8) in
    let fault =
      match Service.Rng.int rng 100 with
      | r when r < 25 ->
          (* transient: dies once, the retry continues past it *)
          Some
            { Exec.Faults.target = Exec.Faults.Any;
              mode = Exec.Faults.Nth (1 + Service.Rng.int rng 200);
              seed = i;
            }
      | r when r < 35 ->
          (* persistent flakiness: may exhaust retries and degrade *)
          Some
            { Exec.Faults.target = Exec.Faults.Any;
              mode = Exec.Faults.Probabilistic 0.0005;
              seed = i;
            }
      | _ -> None
    in
    let deadline_s =
      match Service.Rng.int rng 100 with
      | r when r < 10 -> Some (0.001 +. Service.Rng.float rng *. 0.004)  (* tight *)
      | r when r < 30 -> Some (0.05 +. Service.Rng.float rng *. 0.1)
      | _ -> None
    in
    let budget =
      if Service.Rng.int rng 100 < 8 then
        Some (Exec.Budget.make ~max_rows:(50 + Service.Rng.int rng 200) ())
      else None
    in
    let chaos = if i mod kill_every = kill_every - 1 then Some (fun () -> raise Chaos_monkey) else None in
    (w, Service.request ~session ?deadline_s ?budget ?fault ?chaos sql)
  in

  (* outcome tally, merged across client domains at the end *)
  let wrong = Atomic.make 0 in
  let ok = Atomic.make 0 in
  let shed = Atomic.make 0 in
  let deadline = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let poisoned = Atomic.make 0 in

  let classify w (r : Service.reply) =
    match r.Service.outcome with
    | Ok e ->
        let name, _ = workloads.(w) in
        let expected = List.assoc name (Array.to_list oracle) in
        if bag e.Engine.result.Exec.Executor.rows <> expected then begin
          Printf.eprintf "WRONG BAG for %s (served_by %s, degraded %b)\n%!" name
            r.Service.served_by r.Service.degraded;
          Atomic.incr wrong
        end
        else Atomic.incr ok
    | Error (Service.Overloaded _) -> Atomic.incr shed
    | Error (Service.Deadline _) -> Atomic.incr deadline
    | Error (Service.Poisoned _) -> Atomic.incr poisoned
    | Error (Service.Failed _) -> Atomic.incr failed
    | Error Service.Shut_down -> Atomic.incr failed
  in

  (* each client drives its slice in bursts of 16: 4 clients × 16 >
     max_queue + inflight, so admission control genuinely engages *)
  let client c =
    let rng = Service.Rng.create (seed + (7919 * c)) in
    let burst = 16 in
    let i = ref c in
    while !i < n_requests do
      let batch = ref [] in
      let count = ref 0 in
      while !i < n_requests && !count < burst do
        batch := build_request rng !i :: !batch;
        i := !i + n_clients;
        incr count
      done;
      let batch = List.rev !batch in
      let tickets =
        List.map (fun (w, req) -> (w, Service.submit t req)) batch
      in
      List.iter
        (fun (w, tk) ->
          match tk with
          | Ok tk -> classify w (Service.await t tk)
          | Error e -> classify w { Service.outcome = Error e; served_by = "-";
                                    degraded = false; retries = 0; queued_s = 0.;
                                    total_s = 0. })
        tickets
    done
  in
  let started = Unix.gettimeofday () in
  let clients = List.init n_clients (fun c -> Domain.spawn (fun () -> client c)) in
  List.iter Domain.join clients;
  let elapsed = Unix.gettimeofday () -. started in

  let live = Service.live_workers t in
  Service.shutdown t;
  let s = Service.stats t in
  print_string (Service.Stats.render s);
  Printf.printf
    "soak: %d requests in %.1fs (%.0f req/s, %d domains)\n\
     ok %d  wrong %d  shed %d  deadline %d  failed %d  poisoned %d\n"
    n_requests elapsed (float_of_int n_requests /. elapsed) n_domains
    (Atomic.get ok) (Atomic.get wrong) (Atomic.get shed) (Atomic.get deadline)
    (Atomic.get failed) (Atomic.get poisoned);
  let total =
    Atomic.get ok + Atomic.get wrong + Atomic.get shed + Atomic.get deadline
    + Atomic.get failed + Atomic.get poisoned
  in
  let fail = ref false in
  if total <> n_requests then begin
    Printf.eprintf "SOAK FAIL: %d replies for %d requests (lost work)\n" total n_requests;
    fail := true
  end;
  if Atomic.get wrong > 0 then begin
    Printf.eprintf "SOAK FAIL: %d wrong bags\n" (Atomic.get wrong);
    fail := true
  end;
  if Atomic.get ok = 0 then begin
    Printf.eprintf "SOAK FAIL: no request succeeded\n";
    fail := true
  end;
  if live <> n_domains then begin
    Printf.eprintf "SOAK FAIL: %d live workers, expected %d (pool did not heal)\n" live
      n_domains;
    fail := true
  end;
  if !fail then exit 1;
  print_endline "soak: OK (zero wrong bags, zero hangs, pool healed)"
