(* Vectorized-executor edge cases.  Every check runs the same plan on
   the row interpreter (the semantic oracle) and on the columnar
   engine and compares result bags: batch boundaries (size 1, counts
   that are exact multiples of the batch size), empty inputs, all-NULL
   aggregate columns, selection vectors that empty mid-pipeline, and
   the kernel fallbacks (mixed-type columns, multi-key grouping).
   Plan-level workload coverage lives in test/vexec_main.ml. *)

open Relalg
open Relalg.Algebra

let vec ?batch_size db o = Vexec.run ?batch_size (Exec.Executor.make_ctx db) o

let check_modes ?batch_size msg db o =
  Alcotest.(check (list string))
    msg
    (Support.bag (Support.run_op db o))
    (Support.bag (vec ?batch_size db o))

(* emp scan with fresh per-occurrence columns, as the binder would make *)
let emp_scan () =
  let eid = Col.fresh "eid" Value.TInt in
  let name = Col.fresh "name" Value.TStr in
  let dept = Col.fresh "dept" Value.TInt in
  let salary = Col.fresh "salary" Value.TFloat in
  (TableScan { table = "emp"; cols = [ eid; name; dept; salary ] }, eid, name, dept, salary)

let bag_scan () =
  let x = Col.fresh "x" Value.TInt in
  let y = Col.fresh "y" Value.TInt in
  (TableScan { table = "bag"; cols = [ x; y ] }, x, y)

(* filter + grouped count over emp: enough pipeline to cross batch
   boundaries in every operator *)
let emp_pipeline () =
  let scan, _, _, dept, salary = emp_scan () in
  let cnt = { fn = CountStar; out = Col.fresh "cnt" Value.TInt } in
  let total = { fn = Sum (ColRef salary); out = Col.fresh "total" Value.TFloat } in
  GroupBy
    { keys = [ dept ];
      aggs = [ cnt; total ];
      input = Select (Cmp (Gt, ColRef salary, Const (Value.Float 150.)), scan)
    }

let test_batch_boundaries () =
  let db = Support.toy_db () in
  (* emp has 4 rows: size 1 (one row per batch), 2 and 4 (exact
     multiples — the last batch is exactly full), 3 (ragged tail),
     1024 (everything in one batch) *)
  List.iter
    (fun bs ->
      check_modes ~batch_size:bs (Printf.sprintf "pipeline at batch size %d" bs) db
        (emp_pipeline ()))
    [ 1; 2; 3; 4; 1024 ]

let test_join_across_batches () =
  let db = Support.toy_db () in
  let scan, _, name, dept, _ = emp_scan () in
  let did = Col.fresh "did" Value.TInt in
  let dname = Col.fresh "dname" Value.TStr in
  let dscan = TableScan { table = "dept"; cols = [ did; dname ] } in
  let join kind =
    Project
      ( [ { expr = ColRef name; out = Col.clone name };
          { expr = ColRef dname; out = Col.clone dname }
        ],
        Join { kind; pred = Cmp (Eq, ColRef dept, ColRef did); left = scan; right = dscan }
      )
  in
  List.iter
    (fun bs ->
      check_modes ~batch_size:bs "inner join" db (join Inner);
      check_modes ~batch_size:bs "left outer join" db (join LeftOuter))
    [ 1; 2; 1024 ]

let test_empty_table () =
  let db = Support.toy_db () in
  Storage.Table.load (Storage.Database.table db "bag") [];
  let scan, x, _ = bag_scan () in
  (* grouped aggregation over no rows: no groups *)
  check_modes "groupby over empty table" db
    (GroupBy
       { keys = [ x ];
         aggs = [ { fn = CountStar; out = Col.fresh "cnt" Value.TInt } ];
         input = scan
       });
  (* scalar aggregation over no rows: exactly one row (count 0, sum NULL) *)
  let scan2, x2, _ = bag_scan () in
  check_modes "scalar agg over empty table" db
    (ScalarAgg
       { aggs =
           [ { fn = CountStar; out = Col.fresh "cnt" Value.TInt };
             { fn = Sum (ColRef x2); out = Col.fresh "s" Value.TInt }
           ];
         input = scan2
       })

let test_all_null_aggregates () =
  let db = Support.toy_db () in
  let x = Col.fresh "x" Value.TInt in
  let k = Col.fresh "k" Value.TInt in
  let tbl =
    ConstTable
      { cols = [ k; x ];
        rows =
          [ [| Value.Int 1; Value.Null |];
            [| Value.Int 1; Value.Null |];
            [| Value.Int 2; Value.Null |]
          ]
      }
  in
  let aggs () =
    [ { fn = Count (ColRef x); out = Col.fresh "c" Value.TInt };
      { fn = Sum (ColRef x); out = Col.fresh "s" Value.TInt };
      { fn = Min (ColRef x); out = Col.fresh "mn" Value.TInt };
      { fn = Max (ColRef x); out = Col.fresh "mx" Value.TInt };
      { fn = Avg (ColRef x); out = Col.fresh "av" Value.TFloat }
    ]
  in
  check_modes "scalar aggs over all-NULL column" db (ScalarAgg { aggs = aggs (); input = tbl });
  check_modes ~batch_size:2 "grouped aggs over all-NULL column" db
    (GroupBy { keys = [ k ]; aggs = aggs (); input = tbl })

let test_selection_empties_midpipeline () =
  let db = Support.toy_db () in
  let scan, _, _, dept, salary = emp_scan () in
  let dead = Select (Cmp (Lt, ColRef salary, Const (Value.Float 0.)), scan) in
  let did = Col.fresh "did" Value.TInt in
  let dname = Col.fresh "dname" Value.TStr in
  let dscan = TableScan { table = "dept"; cols = [ did; dname ] } in
  (* the probe side goes empty after the filter; join and aggregation
     above must still produce the oracle's answer at every batch size *)
  let o =
    GroupBy
      { keys = [ dname ];
        aggs = [ { fn = CountStar; out = Col.fresh "cnt" Value.TInt } ];
        input =
          Join
            { kind = Inner; pred = Cmp (Eq, ColRef dept, ColRef did); left = dead; right = dscan }
      }
  in
  List.iter (fun bs -> check_modes ~batch_size:bs "join+agg over emptied input" db o) [ 1; 2; 1024 ];
  (* scalar agg over the emptied input still emits its one row *)
  let scan2, _, _, _, salary2 = emp_scan () in
  check_modes "scalar agg over emptied input" db
    (ScalarAgg
       { aggs = [ { fn = Sum (ColRef salary2); out = Col.fresh "s" Value.TFloat } ];
         input = Select (Const (Value.Bool false), scan2)
       })

let test_mixed_type_columns () =
  let db = Support.toy_db () in
  (* grouping key mixes Int/Float/Str/NULL (defeats the int fast path),
     aggregate input mixes Int and Float (defeats the typed kernels) *)
  let k = Col.fresh "k" Value.TInt in
  let v = Col.fresh "v" Value.TFloat in
  let tbl =
    ConstTable
      { cols = [ k; v ];
        rows =
          [ [| Value.Int 1; Value.Int 10 |];
            [| Value.Float 1.5; Value.Float 0.5 |];
            [| Value.Str "a"; Value.Int 3 |];
            [| Value.Int 1; Value.Float 2.5 |];
            [| Value.Null; Value.Null |];
            [| Value.Null; Value.Int 7 |]
          ]
      }
  in
  check_modes ~batch_size:2 "mixed-type keys and agg inputs" db
    (GroupBy
       { keys = [ k ];
         aggs =
           [ { fn = Sum (ColRef v); out = Col.fresh "s" Value.TFloat };
             { fn = Min (ColRef v); out = Col.fresh "mn" Value.TFloat };
             { fn = Avg (ColRef v); out = Col.fresh "av" Value.TFloat }
           ];
         input = tbl
       })

let test_multi_key_groupby () =
  let db = Support.toy_db () in
  let scan, x, y = bag_scan () in
  check_modes ~batch_size:2 "multi-key groupby" db
    (GroupBy
       { keys = [ x; y ];
         aggs = [ { fn = CountStar; out = Col.fresh "cnt" Value.TInt } ];
         input = scan
       })

let test_bag_operators () =
  let db = Support.toy_db () in
  let s1, _, _ = bag_scan () in
  let s2, _, _ = bag_scan () in
  let s3, x3, _ = bag_scan () in
  check_modes ~batch_size:2 "union all keeps duplicates" db (UnionAll (s1, s2));
  let ones = Select (Cmp (Eq, ColRef x3, Const (Value.Int 1)), s3) in
  (* EXCEPT ALL: bag of 3 minus the two x=1 rows *)
  let s4, _, _ = bag_scan () in
  check_modes ~batch_size:1 "except all subtracts multiplicities" db (Except (s4, ones))

(* --- batched Apply / SegmentApply ----------------------------------- *)

(* a correlated Apply: for each outer row, filter dept on did = <param> *)
let dept_probe param =
  let did = Col.fresh "did" Value.TInt in
  let dname = Col.fresh "dname" Value.TStr in
  Select
    ( Cmp (Eq, ColRef did, ColRef param),
      TableScan { table = "dept"; cols = [ did; dname ] } )

let apply_kinds = [ ("inner", Inner); ("leftouter", LeftOuter); ("semi", Semi); ("anti", Anti) ]

let test_apply_empty_outer () =
  (* the outer side vanishes before the Apply: zero batches reach it,
     and every kind must still produce the oracle's (empty) answer *)
  let db = Support.toy_db () in
  List.iter
    (fun (kname, kind) ->
      let scan, _, _, dept, _ = emp_scan () in
      let left = Select (Const (Value.Bool false), scan) in
      let o = Apply { kind; pred = true_; left; right = dept_probe dept } in
      List.iter
        (fun bs ->
          check_modes ~batch_size:bs (Printf.sprintf "%s apply over empty outer" kname) db o)
        [ 1; 2; 1024 ])
    apply_kinds

let test_apply_all_null_params () =
  (* every correlation binding is NULL: the batched dedup must place
     them all in one class (NULL groups with NULL, per Value.equal) and
     the probe must come back empty — NULL = did is UNKNOWN *)
  let db = Support.toy_db () in
  let mk_outer () =
    let p = Col.fresh "p" Value.TInt in
    ( p,
      ConstTable
        { cols = [ p ];
          rows = [ [| Value.Null |]; [| Value.Null |]; [| Value.Null |] ]
        } )
  in
  List.iter
    (fun (kname, kind) ->
      let p, outer = mk_outer () in
      let o = Apply { kind; pred = true_; left = outer; right = dept_probe p } in
      check_modes ~batch_size:2 (Printf.sprintf "%s apply, all-NULL params" kname) db o)
    apply_kinds

let test_apply_duplicate_params_across_batches () =
  (* the same binding recurs inside a batch and again in later batches:
     per-batch dedup must reuse evaluations without dropping duplicate
     outer rows (bag semantics) or conflating the NULL class with 1 *)
  let db = Support.toy_db () in
  let mk_outer () =
    let p = Col.fresh "p" Value.TInt in
    let r v = [| v |] in
    ( p,
      ConstTable
        { cols = [ p ];
          rows =
            List.map r
              [ Value.Int 1; Value.Int 2; Value.Int 1; Value.Int 1; Value.Null;
                Value.Int 2; Value.Int 3; Value.Int 1 ]
        } )
  in
  List.iter
    (fun (kname, kind) ->
      let p, outer = mk_outer () in
      let o = Apply { kind; pred = true_; left = outer; right = dept_probe p } in
      List.iter
        (fun bs ->
          check_modes ~batch_size:bs
            (Printf.sprintf "%s apply, duplicate params at batch size %d" kname bs)
            db o)
        [ 1; 2; 3; 1024 ])
    apply_kinds

let test_outer_apply_null_padding () =
  (* LeftOuter Apply where some bindings find no inner row (dept 99
     does not exist): the scatter must emit the outer row padded with
     NULLs at the inner schema's width, including under a Project
     wrapper on the inner side *)
  let db = Support.toy_db () in
  let mk o =
    List.iter
      (fun bs -> check_modes ~batch_size:bs "outer apply NULL padding" db o)
      [ 1; 2; 1024 ]
  in
  let scan, _, _, dept, _ = emp_scan () in
  mk (Apply { kind = LeftOuter; pred = true_; left = scan; right = dept_probe dept });
  (* projected inner: the padded width is the projection's, not the scan's *)
  let scan2, _, _, dept2, _ = emp_scan () in
  let probe = dept_probe dept2 in
  let dname = List.nth (Op.schema probe) 1 in
  let projected =
    Project ([ { expr = ColRef dname; out = Col.clone dname } ], probe)
  in
  mk (Apply { kind = LeftOuter; pred = true_; left = scan2; right = projected })

let test_segment_apply_batch_boundaries () =
  (* segments larger than the batch: the vectorized SegmentApply must
     stitch a segment that starts in one batch and ends in another
     before running the inner over it *)
  let db = Support.toy_db () in
  let mk_plan () =
    let g = Col.fresh "g" Value.TInt in
    let v = Col.fresh "v" Value.TInt in
    let r a b = [| Value.Int a; Value.Int b |] in
    let outer =
      ConstTable
        { cols = [ g; v ];
          rows = [ r 1 10; r 1 11; r 1 12; r 2 20; r 2 21; r 3 30 ]
        }
    in
    let hole_cols = List.map Col.clone [ g; v ] in
    let hole = SegmentHole { cols = hole_cols; src = [ g; v ] } in
    let hv = List.nth hole_cols 1 in
    let inner =
      ScalarAgg
        { aggs =
            [ { fn = CountStar; out = Col.fresh "cnt" Value.TInt };
              { fn = Sum (ColRef hv); out = Col.fresh "s" Value.TInt }
            ];
          input = hole
        }
    in
    SegmentApply { seg_cols = [ g ]; outer; inner }
  in
  List.iter
    (fun bs ->
      check_modes ~batch_size:bs
        (Printf.sprintf "segment apply at batch size %d" bs)
        db (mk_plan ()))
    [ 1; 2; 3; 4; 1024 ]

(* Regression: NDV estimates must not survive a table reload.  The
   stats cache is tagged with the table's mutation generation, so a
   load (which bumps the generation) invalidates the cached count. *)
let test_ndv_tracks_table_generation () =
  let db = Support.toy_db () in
  let stats = Optimizer.Stats.create db in
  Alcotest.(check int) "ndv before reload" 2 (Optimizer.Stats.ndv stats "bag" "x");
  Storage.Table.load
    (Storage.Database.table db "bag")
    [ [| Value.Int 1; Value.Int 1 |];
      [| Value.Int 2; Value.Int 1 |];
      [| Value.Int 3; Value.Int 1 |];
      [| Value.Int 4; Value.Int 1 |]
    ];
  Alcotest.(check int) "ndv after reload" 4 (Optimizer.Stats.ndv stats "bag" "x");
  Alcotest.(check int) "row count after reload" 4 (Optimizer.Stats.row_count stats "bag")

let suite =
  [ Alcotest.test_case "batch boundaries" `Quick test_batch_boundaries;
    Alcotest.test_case "join across batches" `Quick test_join_across_batches;
    Alcotest.test_case "empty table" `Quick test_empty_table;
    Alcotest.test_case "all-NULL aggregates" `Quick test_all_null_aggregates;
    Alcotest.test_case "selection empties mid-pipeline" `Quick
      test_selection_empties_midpipeline;
    Alcotest.test_case "mixed-type columns" `Quick test_mixed_type_columns;
    Alcotest.test_case "multi-key groupby" `Quick test_multi_key_groupby;
    Alcotest.test_case "bag operators" `Quick test_bag_operators;
    Alcotest.test_case "apply: empty outer" `Quick test_apply_empty_outer;
    Alcotest.test_case "apply: all-NULL params" `Quick test_apply_all_null_params;
    Alcotest.test_case "apply: duplicate params across batches" `Quick
      test_apply_duplicate_params_across_batches;
    Alcotest.test_case "apply: outer NULL padding" `Quick test_outer_apply_null_padding;
    Alcotest.test_case "segment apply: batch boundaries" `Quick
      test_segment_apply_batch_boundaries;
    Alcotest.test_case "ndv tracks table generation" `Quick test_ndv_tracks_table_generation
  ]
