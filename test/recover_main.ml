(* Crash-recovery chaos harness, run by `dune build @recover` (or
   `make recover-smoke`).

   A scripted writer journals a deterministic mutation sequence — the
   eight TPC-H table loads, then marker-row appends with two snapshot
   rotations in between — through the fault-injectable I/O layer.  The
   sweep kills the writer at *every* I/O operation under each fault
   kind (short write, torn write, bit flip, lying fsync), simulates
   the post-crash filesystem, reopens the store with honest I/O, and
   checks the recovery contract:

     the recovered database equals the row-level oracle applied to
     exactly a committed prefix of the mutation sequence — verified by
     bag-comparing all eight benchmark workloads — and the prefix
     length sits in the fault kind's acknowledgment window:

       short/torn write : exactly the acknowledged mutations (an acked
                          mutation was fsync'd; the crashed one never
                          acked)
       fsync lie        : acked or acked-1 (the lied-to mutation was
                          acknowledged but never durable)
       bit flip         : silent corruption; recovery either restores
                          all-or-all-but-the-final mutation (flip in
                          the final WAL record is truncated as a torn
                          tail) or refuses with the typed
                          [Storage_corrupt] — never a wrong bag.

   Exit status 0 iff every (kind, crash point) run satisfies the
   contract. *)

module Io = Storage.Io_faults
module Durable = Storage.Durable
module Table = Storage.Table
module Database = Storage.Database
module Codec = Storage.Codec
module Value = Relalg.Value

let sf = 0.002
let marker_base = 10_000_000

type mutation =
  | Load of string * Value.t array list
  | Append of string * Value.t array

type step = Mut of mutation | Rotate

let catalog = Catalog.tpch ()

let load_order =
  [ "region"; "nation"; "supplier"; "customer"; "part"; "partsupp"; "orders";
    "lineitem"
  ]

let base_rows : (string * Value.t array list) list =
  let db = Datagen.Tpch_gen.database ~sf () in
  List.map (fun t -> (t, Table.to_rows (Database.table db t))) load_order

(* marker orders are big enough to move the lattice / big-orders
   workloads, so a lost or phantom append shows up in the bags *)
let marker_row i =
  [| Value.Int (marker_base + i); Value.Int (((i - 1) mod 30) + 1); Value.Str "F";
     Value.Float (600_000. +. (1000. *. float_of_int i)); Value.Date 9000;
     Value.Str "1-URGENT"
  |]

let script : step list =
  List.map (fun (t, rows) -> Mut (Load (t, rows))) base_rows
  @ [ Mut (Append ("orders", marker_row 1));
      Mut (Append ("orders", marker_row 2));
      Rotate;
      Mut (Append ("orders", marker_row 3));
      Mut (Append ("orders", marker_row 4));
      Rotate;
      Mut (Append ("orders", marker_row 5));
      Mut (Append ("orders", marker_row 6))
    ]

let mutations_only =
  List.filter_map (function Mut m -> Some m | Rotate -> None) script

let total_mutations = List.length mutations_only

(* ---------------- filesystem scratch ------------------------------- *)

let base_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sq-recover-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf (path : string) : unit =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* ---------------- oracle ------------------------------------------- *)

let bag rows =
  List.sort compare
    (List.map
       (fun r -> String.concat "|" (Array.to_list (Array.map Value.to_string r)))
       rows)

let query_bags (db : Database.t) : (string * string list) list =
  let eng = Engine.create db in
  List.map
    (fun (name, sql) ->
      let res : Exec.Executor.result = Engine.query eng sql in
      (name, bag res.Exec.Executor.rows))
    Workloads.all_named

(* workload bags after applying exactly the first [k] mutations *)
let oracle_cache = Array.make (total_mutations + 1) None

let oracle (k : int) : (string * string list) list =
  match oracle_cache.(k) with
  | Some o -> o
  | None ->
      let db = Database.create catalog in
      List.iteri
        (fun i m ->
          if i < k then
            match m with
            | Load (t, rows) -> Table.load (Database.table db t) rows
            | Append (t, row) -> Table.append (Database.table db t) row)
        mutations_only;
      Database.build_declared_indexes db;
      let o = query_bags db in
      oracle_cache.(k) <- Some o;
      o

(* ---------------- one sweep point ---------------------------------- *)

let failures = ref 0

let fail_msg fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

(* run the scripted writer under [env]; returns mutations acknowledged
   before the (possible) crash, with post-crash semantics applied *)
let run_writer (env : Io.env) (dir : string) : int =
  let acked = ref 0 in
  (try
     let st = Durable.open_db ~env ~dir catalog in
     List.iter
       (fun step ->
         match step with
         | Mut (Load (t, rows)) ->
             Durable.load st t rows;
             incr acked
         | Mut (Append (t, row)) ->
             Durable.append st t row;
             incr acked
         | Rotate -> ignore (Durable.rotate st))
       script;
     Durable.close st
   with Io.Crash _ -> ());
  Io.crash_cleanup env;
  !acked

(* Infer which prefix the recovered database holds: loads applied (the
   load order is fixed, so non-empty tables must form a prefix of it)
   plus marker appends (which must be the markers 1..m, in order). *)
let infer_prefix ~(label : string) (db : Database.t) : int option =
  let counts =
    List.map (fun t -> Table.row_count (Database.table db t)) load_order
  in
  let loaded = List.length (List.filter (fun c -> c > 0) counts) in
  let prefix_ok =
    List.for_all2
      (fun i c -> (c > 0) = (i < loaded))
      (List.init (List.length counts) Fun.id)
      counts
  in
  if not prefix_ok then begin
    fail_msg "%s: loaded tables are not a prefix of the load order [%s]" label
      (String.concat ";" (List.map string_of_int counts));
    None
  end
  else
    let markers =
      if loaded < List.length load_order then []
      else
        Table.to_rows (Database.table db "orders")
        |> List.filter_map (fun r ->
               match r.(0) with
               | Value.Int k when k >= marker_base -> Some (k - marker_base)
               | _ -> None)
    in
    let m = List.length markers in
    if markers <> List.init m (fun i -> i + 1) then begin
      fail_msg "%s: marker appends are not the contiguous prefix [%s]" label
        (String.concat ";" (List.map string_of_int markers));
      None
    end
    else if loaded < List.length load_order && m > 0 then begin
      fail_msg "%s: appends present but loads incomplete" label;
      None
    end
    else Some (loaded + m)

type outcome = Recovered of int | Refused

(* reopen with honest I/O and verify the recovery contract *)
let check_run ~(label : string) (kind : Io.kind) ~(acked : int) (dir : string) :
    outcome =
  match Durable.open_db ~dir catalog with
  | exception Codec.Storage_corrupt msg ->
      (* only silent media corruption may make recovery refuse; every
         crash-shaped fault must recover *)
      if kind <> Io.Bit_flip then
        fail_msg "%s: recovery refused after a crash fault (%s)" label msg;
      Refused
  | st ->
      let db = Durable.db st in
      (match infer_prefix ~label db with
      | None -> ()
      | Some k ->
          let window_ok =
            match kind with
            | Io.Short_write | Io.Torn_write -> k = acked
            | Io.Fsync_lie -> k = acked || k = acked - 1
            | Io.Bit_flip -> k = acked || k = acked - 1
          in
          if not window_ok then
            fail_msg "%s: recovered prefix %d outside the %s window (acked %d)"
              label k (Io.kind_to_string kind) acked
          else begin
            let expect = oracle k in
            let got = query_bags db in
            List.iter2
              (fun (name, want) (_, have) ->
                if want <> have then
                  fail_msg "%s: workload %s bag mismatch at prefix %d (%d vs %d rows)"
                    label name k (List.length have) (List.length want))
              expect got
          end);
      Durable.close st;
      Recovered (Table.row_count (Database.table db "orders"))

(* ---------------- driver ------------------------------------------- *)

let () =
  let t0 = Unix.gettimeofday () in
  (* dry run: count the I/O ops of a clean pass and sanity-check it *)
  let dry_dir = Filename.concat base_dir "dry" in
  let denv = Io.env () in
  let dry_acked = run_writer denv dry_dir in
  let total_ops = Io.op_count denv in
  assert (dry_acked = total_mutations);
  (match check_run ~label:"dry-run" Io.Short_write ~acked:total_mutations dry_dir with
  | Recovered _ -> ()
  | Refused -> fail_msg "dry-run: clean store refused to open");
  rm_rf dry_dir;
  Printf.printf
    "recover sweep: SF %.3f, %d mutations (%d rotations), %d I/O ops per pass\n%!"
    sf total_mutations
    (List.length (List.filter (fun s -> s = Rotate) script))
    total_ops;
  let kinds = [ Io.Short_write; Io.Torn_write; Io.Bit_flip; Io.Fsync_lie ] in
  List.iter
    (fun kind ->
      let refused = ref 0 in
      let kmin = ref max_int and kmax = ref (-1) and recovered = ref 0 in
      for op = 1 to total_ops do
        let dir =
          Filename.concat base_dir
            (Printf.sprintf "%s-%d" (Io.kind_to_string kind) op)
        in
        let env = Io.env ~spec:{ Io.kind; at_op = op; seed = (op * 7919) + 13 } () in
        let acked = run_writer env dir in
        let label = Printf.sprintf "%s@op%d" (Io.kind_to_string kind) op in
        (match check_run ~label kind ~acked dir with
        | Refused -> incr refused
        | Recovered _ ->
            incr recovered;
            kmin := min !kmin acked;
            kmax := max !kmax acked);
        rm_rf dir
      done;
      Printf.printf
        "%-12s %3d crash points: %3d recovered (acked window %d..%d), %d refused\n%!"
        (Io.kind_to_string kind) total_ops !recovered
        (if !recovered = 0 then 0 else !kmin)
        !kmax !refused)
    kinds;
  rm_rf base_dir;
  let dt = Unix.gettimeofday () -. t0 in
  if !failures = 0 then
    Printf.printf "recover-smoke PASS: %d crash points x %d kinds in %.1fs\n"
      total_ops (List.length kinds) dt
  else begin
    Printf.printf "recover-smoke: %d FAILURES in %.1fs\n" !failures dt;
    exit 1
  end
