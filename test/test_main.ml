let () =
  Alcotest.run "subquery_opt"
    [ ("value", Test_value.suite);
      ("relalg", Test_relalg.suite);
      ("sql", Test_sql.suite);
      ("exec", Test_exec.suite);
      ("normalize", Test_normalize.suite);
      ("decorrelate", Test_decorrelate.suite);
      ("simplify", Test_simplify.suite);
      ("paper-features", Test_paper_features.suite);
      ("integration", Test_integration.suite);
      ("rules", Test_rules.suite);
      ("optimizer", Test_optimizer.suite);
      ("engine", Test_engine.suite);
      ("datagen", Test_datagen.suite);
      ("resilience", Test_resilience.suite);
      ("vexec", Test_vexec.suite);
      ("metrics", Test_metrics.suite);
      ("property", Test_property.suite);
      ("fd", Test_fd.suite);
      ("property-analysis", Test_property_analysis.suite);
      ("verify", Test_verify.suite);
      ("analysis", Test_analysis.suite);
      ("service", Test_service.suite);
      ("storage", Test_storage.suite);
      ("cache", Test_cache.suite)
    ]
