(* Static analysis: the plan linter (per-check positive/negative
   cases), the bounded rule-soundness prover (all shipped rules proven
   at k = 2; a deliberately unsound rule refuted with a minimal
   counterexample), and a golden sweep: every bench workload lints
   clean of ERROR findings. *)

open Relalg
open Relalg.Algebra

let cat () = Analysis.Smallscope.prover_catalog ()

let ops () =
  let c = cat () in
  let env = Catalog.props_env c in
  let s, scols = Analysis.Smallscope.scan c "s" in
  let r, rcols = Analysis.Smallscope.scan c "r" in
  (env, s, scols, r, rcols)

let lint ?expect env o = Analysis.Lint.run ?expect ~env o
let has code fs = List.exists (fun (f : Analysis.Lint.finding) -> f.code = code) fs

let severity_of code fs =
  List.find_map
    (fun (f : Analysis.Lint.finding) -> if f.code = code then Some f.severity else None)
    fs

let eq a b = Cmp (Eq, ColRef a, ColRef b)
let gt0 a = Cmp (Gt, ColRef a, Const (Value.Int 0))

(* --- linter: one positive and one negative case per check ----------- *)

let cross_type_cmp () =
  let env, _, _, r, rcols = ops () in
  let rc = List.hd rcols in
  let bad = Select (Cmp (Eq, ColRef rc, Const (Value.Str "x")), r) in
  Alcotest.(check bool) "int = str flagged" true (has "cross-type-cmp" (lint env bad));
  Alcotest.(check bool)
    "it is the only ERROR-severity check" true
    (severity_of "cross-type-cmp" (lint env bad) = Some Analysis.Lint.Error);
  let ok = Select (Cmp (Eq, ColRef rc, Const (Value.Int 3)), r) in
  Alcotest.(check bool) "int = int clean" false (has "cross-type-cmp" (lint env ok))

let contradictory_pred () =
  let env, _, _, r, rcols = ops () in
  let rc = List.hd rcols in
  let unsat =
    Select (And (gt0 rc, Cmp (Lt, ColRef rc, Const (Value.Int 0))), r)
  in
  Alcotest.(check bool) "x>0 and x<0 flagged" true
    (has "contradictory-pred" (lint env unsat));
  let isnull = Select (IsNull (ColRef rc), r) in
  Alcotest.(check bool) "IS NULL on NOT NULL col flagged" true
    (has "contradictory-pred" (lint env isnull));
  Alcotest.(check bool) "x>0 alone clean" false
    (has "contradictory-pred" (lint env (Select (gt0 rc, r))))

let tautological_pred () =
  let env, _, _, r, rcols = ops () in
  let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
  let taut = Select (Not (IsNull (ColRef rc)), r) in
  Alcotest.(check bool) "NOT NULL col IS NOT NULL flagged" true
    (has "tautological-pred" (lint env taut));
  (* rd is nullable: the same shape is not a tautology *)
  let open_ = Select (Not (IsNull (ColRef rd)), r) in
  Alcotest.(check bool) "nullable col clean" false
    (has "tautological-pred" (lint env open_))

let redundant_groupby () =
  let env, s, scols, r, rcols = ops () in
  let sa = List.nth scols 0 and sb = List.nth scols 1 in
  let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
  let agg c = [ { fn = Sum (ColRef c); out = Col.fresh "sm" Value.TFloat } ] in
  let on_key = GroupBy { keys = [ sa ]; aggs = agg sb; input = s } in
  Alcotest.(check bool) "grouping the PK flagged" true
    (has "redundant-groupby" (lint env on_key));
  (* sb = sa below: the equivalence class extends {sb} to cover the key *)
  let via_equiv =
    GroupBy { keys = [ sb ]; aggs = agg sa; input = Select (eq sb sa, s) }
  in
  Alcotest.(check bool) "key coverage through equivalence class" true
    (has "redundant-groupby" (lint env via_equiv));
  let keyless = GroupBy { keys = [ rc ]; aggs = agg rd; input = r } in
  Alcotest.(check bool) "keyless input clean" false
    (has "redundant-groupby" (lint env keyless))

let residual_apply () =
  let env, s, scols, r, rcols = ops () in
  let sb = List.nth scols 1 and rc = List.hd rcols in
  let apply =
    Apply { kind = Semi; pred = true_; left = s; right = Select (eq rc sb, r) }
  in
  let relaxed = lint env apply in
  Alcotest.(check bool) "reported" true (has "residual-apply" relaxed);
  Alcotest.(check bool) "INFO when nothing promised" true
    (severity_of "residual-apply" relaxed = Some Analysis.Lint.Info);
  let strict =
    lint
      ~expect:
        { Analysis.Lint.no_residual_apply = true; no_residual_segment_apply = true }
      env apply
  in
  Alcotest.(check bool) "WARNING when decorrelation was promised" true
    (severity_of "residual-apply" strict = Some Analysis.Lint.Warning)

let oj_simplifiable () =
  let env, s, scols, r, rcols = ops () in
  let sb = List.nth scols 1 in
  let rc = List.nth rcols 0 and rd = List.nth rcols 1 in
  let loj = Join { kind = LeftOuter; pred = eq sb rc; left = s; right = r } in
  Alcotest.(check bool) "null-rejecting filter above LOJ flagged" true
    (has "oj-simplifiable" (lint env (Select (gt0 rd, loj))));
  Alcotest.(check bool) "bare LOJ clean" false (has "oj-simplifiable" (lint env loj))

let dead_columns () =
  let env, s, scols, r, rcols = ops () in
  let sa = List.nth scols 0 and sb = List.nth scols 1 in
  let rc = List.hd rcols in
  let j = Join { kind = Inner; pred = eq sb rc; left = s; right = r } in
  let narrow = Project ([ { expr = ColRef sa; out = Col.fresh "x" Value.TInt } ], j) in
  Alcotest.(check bool) "unprojected join outputs flagged" true
    (has "dead-columns" (lint env narrow));
  Alcotest.(check bool) "full-width use clean" false (has "dead-columns" (lint env j))

let max1row_elidable () =
  let env, _, _, r, rcols = ops () in
  let rd = List.nth rcols 1 in
  let one =
    ScalarAgg { aggs = [ { fn = Sum (ColRef rd); out = Col.fresh "sm" Value.TFloat } ]; input = r }
  in
  Alcotest.(check bool) "Max1row over ScalarAgg flagged" true
    (has "max1row-elidable" (lint env (Max1row one)));
  Alcotest.(check bool) "Max1row over a bag kept" false
    (has "max1row-elidable" (lint env (Max1row r)))

(* --- prover ---------------------------------------------------------- *)

(* every shipped rule is proven at k = 2, within the CI time budget *)
let prover_all_rules () =
  let t0 = Unix.gettimeofday () in
  let reports = Analysis.Smallscope.check_all ~k:2 () in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "at least a dozen rules registered" true
    (List.length reports >= 12);
  List.iter
    (fun (r : Analysis.Smallscope.report) ->
      if not (Analysis.Smallscope.passed_report r) then
        Alcotest.fail (Analysis.Smallscope.report_to_string r))
    reports;
  Alcotest.(check bool) "k=2 sweep under 60s" true (dt < 60.)

(* a deliberately unsound rewrite — outerjoin demoted to inner join
   unconditionally — must be refuted, and by a tiny database *)
let unsound_rule_refuted () =
  let c = cat () in
  let s, scols = Analysis.Smallscope.scan c "s" in
  let r, rcols = Analysis.Smallscope.scan c "r" in
  let sb = List.nth scols 1 and rc = List.hd rcols in
  let tmpl = Join { kind = LeftOuter; pred = eq sb rc; left = s; right = r } in
  let rule : Optimizer.Search.rule =
    { name = "bogus-loj-to-inner";
      apply =
        (function
        | Join { kind = LeftOuter; pred; left; right } ->
            [ Join { kind = Inner; pred; left; right } ]
        | _ -> []);
    }
  in
  let report =
    Analysis.Smallscope.check_rule c
      { sp_rule = rule; sp_templates = [ ("s loj r", tmpl) ] }
  in
  match report.rp_counterexample with
  | None -> Alcotest.fail "unsound rule was not refuted"
  | Some cx ->
      Alcotest.(check bool) "counterexample is minimal (<= 3 rows)" true
        (cx.cx_total_rows <= 3);
      Alcotest.(check bool) "bags differ" true (cx.cx_before_bag <> cx.cx_after_bag)

(* missing proof obligations are themselves a failure *)
let vacuous_rule_fails () =
  let c = cat () in
  let rule : Optimizer.Search.rule = { name = "never-fires"; apply = (fun _ -> []) } in
  let s, _ = Analysis.Smallscope.scan c "s" in
  let report =
    Analysis.Smallscope.check_rule c { sp_rule = rule; sp_templates = [ ("s", s) ] }
  in
  Alcotest.(check bool) "no firing = not passed" false
    (Analysis.Smallscope.passed_report report);
  let no_templates =
    Analysis.Smallscope.check_rule c { sp_rule = rule; sp_templates = [] }
  in
  Alcotest.(check bool) "no template = not passed" false
    (Analysis.Smallscope.passed_report no_templates)

(* --- golden sweep: bench workloads lint clean of errors -------------- *)

let bench_workloads_lint_clean () =
  let db = Datagen.Tpch_gen.database ~seed:42 ~sf:0.002 () in
  let eng = Engine.create db in
  List.iter
    (fun (name, sql) ->
      let p = Engine.prepare eng sql in
      (match Analysis.Lint.errors p.Engine.lint with
      | [] -> ()
      | e :: _ ->
          Alcotest.fail
            (Printf.sprintf "%s: %s" name (Analysis.Lint.finding_to_string e)));
      (* the one-line summary renders without ERROR too *)
      let s = Analysis.Lint.summary p.Engine.lint in
      Alcotest.(check bool) (name ^ " summary has no ERROR") true
        (not
           (String.length s >= 5
           && List.exists
                (fun i -> String.sub s i 5 = "ERROR")
                (List.init (String.length s - 4) (fun i -> i)))))
    Workloads.all_named

let suite =
  [ Alcotest.test_case "lint: cross-type-cmp" `Quick cross_type_cmp;
    Alcotest.test_case "lint: contradictory-pred" `Quick contradictory_pred;
    Alcotest.test_case "lint: tautological-pred" `Quick tautological_pred;
    Alcotest.test_case "lint: redundant-groupby" `Quick redundant_groupby;
    Alcotest.test_case "lint: residual-apply severity" `Quick residual_apply;
    Alcotest.test_case "lint: oj-simplifiable" `Quick oj_simplifiable;
    Alcotest.test_case "lint: dead-columns" `Quick dead_columns;
    Alcotest.test_case "lint: max1row-elidable" `Quick max1row_elidable;
    Alcotest.test_case "prover: all shipped rules at k=2" `Slow prover_all_rules;
    Alcotest.test_case "prover: unsound rule refuted" `Quick unsound_rule_refuted;
    Alcotest.test_case "prover: vacuous rules fail" `Quick vacuous_rule_fails;
    Alcotest.test_case "bench workloads lint clean" `Slow bench_workloads_lint_clean
  ]
