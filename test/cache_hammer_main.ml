(* Cache-coherence hammer: race table mutations against cached-plan
   hits and CSE reads across 4 domains, then prove the caching tier
   never served a stale bag.

   Layout:
     - 2 mutator domains append rows to their own table (append-only,
       so every monotone aggregate is an envelope invariant);
     - 1 reader domain loops cached single-statement queries with
       varying literals (plan-cache hits + rebinds + invalidations);
     - 1 reader domain loops [Engine.query_many] over a batch sharing
       a subexpression (CSE materialization + invalidation).

   During the race, every cached read is sandwiched between two fresh
   uncached reads of the same monotone aggregate: the cached value
   must lie within [before, after], or the cache served a bag from a
   generation that no longer exists.  After the mutators quiesce,
   every query is bag-compared exactly against a fresh no-cache
   engine over the same database.

   Success criteria (ISSUE acceptance):
     - zero envelope violations during the race
     - zero wrong bags after quiescing
     - the plan cache recorded invalidations (the race was real)

   Usage: cache_hammer_main.exe [appends-per-mutator] [seed]
     default 400 appends, seed 1 — `make cache-hammer`. *)

let () =
  let argv = Sys.argv in
  let arg i d = if Array.length argv > i then int_of_string argv.(i) else d in
  let n_appends = arg 1 400 in
  let seed = arg 2 1 in

  let (_ : unit Domain.t) =
    Domain.spawn (fun () ->
        Unix.sleepf 300.;
        prerr_endline "CACHE HAMMER HANG: watchdog fired";
        exit 3)
  in

  (* two append-only tables, one per mutator domain *)
  let cat = Catalog.create () in
  let col n ty = Catalog.col n ty in
  List.iter
    (fun name ->
      Catalog.add_table cat
        { Catalog.name;
          columns = [ col "k" Relalg.Value.TInt; col "v" Relalg.Value.TInt ];
          primary_key = [];
          indexes = []
        })
    [ "ta"; "tb" ];
  let db = Storage.Database.create cat in
  let eng = Engine.create db in
  Engine.enable_cache eng;

  (* seed rows so cold plans see data *)
  List.iter
    (fun t ->
      for i = 1 to 16 do
        Engine.append_row eng t [| Relalg.Value.Int i; Relalg.Value.Int (i * 10) |]
      done)
    [ "ta"; "tb" ];

  let failures = Atomic.make 0 in
  let envelope_checks = Atomic.make 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Atomic.incr failures;
        Printf.eprintf "FAIL: %s\n%!" m)
      fmt
  in

  let int_of_agg (r : Exec.Executor.result) : int =
    match r.Exec.Executor.rows with
    | [ [| Relalg.Value.Int n |] ] -> n
    | [ [| Relalg.Value.Null |] ] -> 0
    | rows -> List.length rows
  in
  let fresh sql = int_of_agg (Engine.query ~use_cache:false eng sql) in

  (* the monotone envelope: under append-only mutation, a cached count
     observed between two fresh counts must lie between them *)
  let check_envelope what sql (cached : int) (before : int) (after : int) =
    Atomic.incr envelope_checks;
    if cached < before || cached > after then
      fail "%s: cached %d outside [%d, %d] for %s" what cached before after sql
  in

  let mutators_done = Atomic.make 0 in
  let mutator table salt =
    Domain.spawn (fun () ->
        let st = ref (((seed + salt) * 2654435761) land 0x3FFFFFFF) in
        let next n =
          st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
          !st mod n
        in
        for i = 1 to n_appends do
          Engine.append_row eng table
            [| Relalg.Value.Int (100 + i); Relalg.Value.Int (next 1000) |];
          if i mod 50 = 0 then Domain.cpu_relax ()
        done;
        Atomic.incr mutators_done)
  in

  let racing () = Atomic.get mutators_done < 2 in

  (* reader 1: cached single statements, varying literals so warm hits
     rebind templates under concurrent invalidation *)
  let reader_plans =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while racing () do
          incr i;
          let table = if !i mod 2 = 0 then "ta" else "tb" in
          let sql =
            Printf.sprintf "select count(*) from %s where v >= %d" table
              (!i mod 7 * 100)
          in
          let before = fresh sql in
          let cached = int_of_agg (Engine.query eng sql) in
          let after = fresh sql in
          check_envelope "plan-cache read" sql cached before after
        done)
  in

  (* reader 2: batches sharing a subexpression, so CSE entries
     materialize and invalidate under the same churn *)
  let reader_batches =
    Domain.spawn (fun () ->
        let batch =
          [ "select k from ta where v > 0.5 * (select sum(v) from ta)";
            "select k from ta where v > 0.25 * (select sum(v) from ta)"
          ]
        in
        let probe = "select sum(v) from ta" in
        while racing () do
          let before = fresh probe in
          let b = Engine.query_many eng batch in
          let after = fresh probe in
          (* every batch item ran against SOME generation between
             before and after; its rows all satisfy the predicate
             against that snapshot's sum, which we cannot recompute —
             but the materialized CSE itself is the probe aggregate,
             so check the envelope through a cached read of it *)
          ignore b;
          let cached = int_of_agg (Engine.query eng probe) in
          let after2 = fresh probe in
          check_envelope "cse-batch read" probe cached before
            (max after after2)
        done)
  in

  let ma = mutator "ta" 17 and mb = mutator "tb" 71 in
  Domain.join ma;
  Domain.join mb;
  Domain.join reader_plans;
  Domain.join reader_batches;

  (* quiesced: every query must now agree exactly with a fresh engine
     over the same database *)
  let oracle = Engine.create db in
  let bag (r : Exec.Executor.result) =
    List.sort compare
      (List.map
         (fun row ->
           String.concat "|" (Array.to_list (Array.map Relalg.Value.to_string row)))
         r.Exec.Executor.rows)
  in
  let final_queries =
    [ "select count(*) from ta";
      "select count(*) from tb";
      "select k from ta where v >= 300";
      "select k from tb where v >= 600";
      "select k from ta where v > 0.5 * (select sum(v) from ta)";
      "select k from ta where v > 0.25 * (select sum(v) from ta)"
    ]
  in
  List.iter
    (fun sql ->
      let cached = bag (Engine.query eng sql) in
      let fresh = bag (Engine.query oracle sql) in
      if cached <> fresh then
        fail "quiesced bag mismatch for %s: cached %d rows, oracle %d rows" sql
          (List.length cached) (List.length fresh))
    final_queries;
  let b = Engine.query_many eng final_queries in
  List.iter2
    (fun sql (it : Engine.batch_item) ->
      let cached = bag it.Engine.item_execution.Engine.result in
      let fresh = bag (Engine.query oracle sql) in
      if cached <> fresh then
        fail "quiesced batch bag mismatch for %s" sql)
    final_queries b.Engine.items;

  let s = Option.get (Engine.cache_stats eng) in
  Printf.printf
    "cache hammer: %d envelope checks, %d appends/mutator\n\
     plan cache: %d hits, %d misses, %d invalidations, %d single-flight waits\n\
     cse: %d hits, %d materializations, %d invalidations\n"
    (Atomic.get envelope_checks) n_appends s.Engine.plan_hits s.Engine.plan_misses
    s.Engine.plan_invalidations s.Engine.plan_single_flight_waits s.Engine.cse_hits
    s.Engine.cse_materializations s.Engine.cse_invalidations;
  if s.Engine.plan_invalidations = 0 then
    fail "the race never invalidated a cached plan — hammer too weak";
  if Atomic.get failures > 0 then begin
    Printf.eprintf "cache hammer: %d FAILURES\n%!" (Atomic.get failures);
    exit 1
  end;
  print_endline "cache hammer: OK (zero stale bags)"
