(* Caching-tier tests: canonicalization (stability under literal and
   alias renaming, no collisions between distinct queries), the plan
   cache's LRU/byte-budget eviction and generation-vector
   invalidation, single-flight deduplication under real domains, the
   engine-level hit/rebind path (including the value-dependent-rewrite
   fallback), CSE fingerprinting, and [query_many] batch planning. *)

open Support

let parse = Sqlfront.Parser.parse
let analyze sql = Cache.Canon.analyze (parse sql)

(* --- canonicalization ------------------------------------------------ *)

let test_canon_literal_stability () =
  let a = analyze "select eid from emp where salary > 100 and dept = 3" in
  let b = analyze "select eid from emp where salary > 99999 and dept = 7" in
  Alcotest.(check string) "same canonical key" a.Cache.Canon.key b.Cache.Canon.key;
  Alcotest.(check int) "two lifted literals" 2 (List.length a.Cache.Canon.literals)

let test_canon_alias_stability () =
  let a = analyze "select e.eid from emp e where e.salary > 100" in
  let b = analyze "select worker.eid from emp worker where worker.salary > 100" in
  Alcotest.(check string) "alias renaming is canonical" a.Cache.Canon.key
    b.Cache.Canon.key

let test_canon_no_collisions () =
  let queries =
    [ "select eid from emp";
      "select eid from emp where salary > 100";
      "select eid from emp where salary > 100 and dept = 3";
      "select name from emp where salary > 100";
      "select eid from emp order by eid";
      "select eid from emp order by eid desc";
      "select eid from emp limit 3";
      "select eid from emp limit 4";
      "select dept, sum(salary) from emp group by dept";
      "select dept, sum(salary) from emp group by dept having sum(salary) > 100";
      "select eid from emp where exists (select did from dept where did = dept)";
      "select eid from emp where salary > (select sum(salary) from emp)"
    ]
  in
  let keys = List.map (fun q -> (analyze q).Cache.Canon.key) queries in
  let distinct = List.sort_uniq compare keys in
  Alcotest.(check int) "all keys distinct" (List.length queries) (List.length distinct)

(* Round-trip: substituting fresh literals into the analyzed form and
   re-analyzing reproduces the canonical key, for generated queries. *)
let test_canon_roundtrip_generated () =
  for case = 0 to 39 do
    let sql = Testgen.Qgen.sql_of ~seed:11 ~case in
    let ast = parse sql in
    let a = Cache.Canon.analyze ast in
    let sent = Cache.Canon.sentinels a.Cache.Canon.literals in
    let ast' = Cache.Canon.with_literals ast sent in
    let b = Cache.Canon.analyze ast' in
    Alcotest.(check string)
      (Printf.sprintf "case %d key stable under literal substitution" case)
      a.Cache.Canon.key b.Cache.Canon.key;
    Alcotest.(check int)
      (Printf.sprintf "case %d slot count stable" case)
      (List.length a.Cache.Canon.literals)
      (List.length b.Cache.Canon.literals)
  done

(* --- plan cache ------------------------------------------------------ *)

let no_gens = fun (_ : string) -> 0

let insert cache key v ~bytes =
  match
    Cache.Plan_cache.find_or_compute cache ~key ~current_gen:no_gens ~compute:(fun () ->
        (v, [], bytes))
  with
  | `Hit v | `Miss v | `Stale v -> v

let test_plan_cache_lru_eviction () =
  let c = Cache.Plan_cache.create ~max_bytes:100 () in
  ignore (insert c "k1" 1 ~bytes:40);
  ignore (insert c "k2" 2 ~bytes:40);
  (* touch k1 so k2 is the LRU entry *)
  ignore (insert c "k1" 99 ~bytes:40);
  ignore (insert c "k3" 3 ~bytes:40);
  Alcotest.(check bool) "k1 retained (recently used)" true (Cache.Plan_cache.mem c "k1");
  Alcotest.(check bool) "k2 evicted (LRU)" false (Cache.Plan_cache.mem c "k2");
  Alcotest.(check bool) "k3 retained" true (Cache.Plan_cache.mem c "k3");
  let s = Cache.Plan_cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.Plan_cache.evictions;
  Alcotest.(check int) "bytes within budget" 80 s.Cache.Plan_cache.bytes

let test_plan_cache_oversized_entry () =
  let c = Cache.Plan_cache.create ~max_bytes:100 () in
  let v = insert c "big" 42 ~bytes:150 in
  Alcotest.(check int) "oversized value still returned" 42 v;
  Alcotest.(check bool) "but not retained" false (Cache.Plan_cache.mem c "big")

let test_plan_cache_generation_invalidation () =
  let gen = ref 0 in
  let current_gen (_ : string) = !gen in
  let c = Cache.Plan_cache.create () in
  let lookup v =
    Cache.Plan_cache.find_or_compute c ~key:"k" ~current_gen ~compute:(fun () ->
        (v, [ ("t", !gen) ], 10))
  in
  (match lookup 1 with
  | `Miss 1 -> ()
  | _ -> Alcotest.fail "expected a miss");
  (match lookup 2 with
  | `Hit 1 -> ()
  | _ -> Alcotest.fail "expected a hit serving the first value");
  incr gen;
  (match lookup 3 with
  | `Stale 3 -> ()
  | _ -> Alcotest.fail "expected stale recompute after the generation moved");
  (match lookup 4 with
  | `Hit 3 -> ()
  | _ -> Alcotest.fail "expected a hit on the recomputed entry");
  let s = Cache.Plan_cache.stats c in
  Alcotest.(check int) "one invalidation" 1 s.Cache.Plan_cache.invalidations

let test_plan_cache_single_flight () =
  let c = Cache.Plan_cache.create () in
  let computes = Atomic.make 0 in
  let computing = Atomic.make false in
  let lookup () =
    Cache.Plan_cache.find_or_compute c ~key:"k" ~current_gen:no_gens
      ~compute:(fun () ->
        Atomic.incr computes;
        Atomic.set computing true;
        Unix.sleepf 0.1;
        (7, [], 10))
  in
  let d0 = Domain.spawn lookup in
  (* wait until the first lookup is inside its compute, then pile on *)
  while not (Atomic.get computing) do
    Domain.cpu_relax ()
  done;
  let rest = List.init 3 (fun _ -> Domain.spawn lookup) in
  let results = List.map Domain.join (d0 :: rest) in
  List.iter
    (fun r ->
      match r with
      | `Hit 7 | `Miss 7 | `Stale 7 -> ()
      | _ -> Alcotest.fail "every waiter must receive the computed value")
    results;
  Alcotest.(check int) "compute ran once" 1 (Atomic.get computes);
  let s = Cache.Plan_cache.stats c in
  Alcotest.(check int) "three deduplicated lookups" 3 s.Cache.Plan_cache.hits;
  Alcotest.(check int) "three single-flight waits" 3
    s.Cache.Plan_cache.single_flight_waits

(* --- engine-level plan caching --------------------------------------- *)

let cached_engine () =
  let eng = Engine.create (toy_db ()) in
  Engine.enable_cache eng;
  eng

let cache_status (p : Engine.prepared) : string =
  match p.Engine.cache with
  | Some `Hit -> "hit"
  | Some `Miss -> "miss"
  | Some `Stale -> "stale"
  | None -> "none"

let check_cached_vs_fresh eng sql =
  let cached = (Engine.query eng sql).Exec.Executor.rows in
  let fresh = (Engine.query ~use_cache:false eng sql).Exec.Executor.rows in
  check_same_bag (sql ^ ": cached bag = fresh bag") cached fresh

let test_engine_hit_rebinds_literals () =
  let eng = cached_engine () in
  let q v = Printf.sprintf "select eid from emp where salary > %d" v in
  let p1 = Engine.prepare eng (q 150) in
  Alcotest.(check string) "first prepare misses" "miss" (cache_status p1);
  let p2 = Engine.prepare eng (q 250) in
  Alcotest.(check string) "same form with a new literal hits" "hit" (cache_status p2);
  check_cached_vs_fresh eng (q 150);
  check_cached_vs_fresh eng (q 250);
  check_cached_vs_fresh eng (q 0);
  let s = Option.get (Engine.cache_stats eng) in
  Alcotest.(check bool) "hits counted" true (s.Engine.plan_hits >= 3);
  Alcotest.(check bool) "verifier skipped on hits" true
    (s.Engine.verify_skips = s.Engine.plan_hits)

let test_engine_generation_bump_invalidates () =
  let eng = cached_engine () in
  let sql = "select eid from emp where salary > 150" in
  let n0 = List.length (Engine.query eng sql).Exec.Executor.rows in
  Alcotest.(check string) "warm" "hit" (cache_status (Engine.prepare eng sql));
  Engine.append_row eng "emp"
    [| v_int 9; v_str "eve"; v_int 1; v_f 9000. |];
  let p = Engine.prepare eng sql in
  Alcotest.(check string) "append invalidates the entry" "stale" (cache_status p);
  let n1 = List.length (Engine.query eng sql).Exec.Executor.rows in
  Alcotest.(check int) "the new row is visible through the cache" (n0 + 1) n1;
  let s = Option.get (Engine.cache_stats eng) in
  Alcotest.(check bool) "invalidation counted" true (s.Engine.plan_invalidations >= 1)

(* Constant folding consumes the sentinel (100 + 100 folds to one
   constant), so the canonical form is value-dependent and the query
   must fall back to exact-literal keying — still cached, still
   correct. *)
let test_engine_value_dependent_fallback () =
  let eng = cached_engine () in
  let sql = "select eid from emp where salary > 100 + 100" in
  check_cached_vs_fresh eng sql;
  let p = Engine.prepare eng sql in
  Alcotest.(check string) "identical text re-served from the exact entry" "hit"
    (cache_status p);
  (* different literals under the same form must not share the folded plan *)
  check_cached_vs_fresh eng "select eid from emp where salary > 100 + 250"

(* Regression: [Props.bounds_unsat] proves [x < lo AND x >= hi] empty
   from the literal values alone, and the property rewrites then
   exploit the emptiness (e.g. a dedup-free Apply for IN).  Sentinels
   replicate the real literals' order pattern and the pattern is part
   of the cache key, so a satisfiable range and a contradictory range
   of the same parameterized shape never share a template. *)
let test_engine_order_pattern_separates_ranges () =
  let eng = cached_engine () in
  let q hi lo =
    Printf.sprintf "select eid from emp where salary < %s and salary >= %s" hi lo
  in
  let sat = q "2000.0" "100.0" and unsat = q "100.0" "2000.0" in
  check_cached_vs_fresh eng sat;
  let p = Engine.prepare eng unsat in
  Alcotest.(check string) "flipped range does not hit the sat template" "miss"
    (cache_status p);
  check_cached_vs_fresh eng unsat;
  Alcotest.(check int) "the contradictory range is empty" 0
    (List.length (Engine.query eng unsat).Exec.Executor.rows);
  (* same order pattern, different magnitudes: shares the template *)
  Alcotest.(check string) "same-pattern range hits" "hit"
    (cache_status (Engine.prepare eng (q "750.5" "10.25")));
  check_cached_vs_fresh eng (q "750.5" "10.25")

(* An int slot numerically equal to a float slot: the sentinel grid
   cannot realize the equality, so the query must take the exact-key
   path (still cached, still correct). *)
let test_engine_mixed_numeric_tie_exact_path () =
  let eng = cached_engine () in
  let sql = "select eid from emp where salary >= 150 and salary < 150.0" in
  check_cached_vs_fresh eng sql;
  Alcotest.(check string) "identical text re-hits the exact entry" "hit"
    (cache_status (Engine.prepare eng sql))

let test_engine_cache_off_is_none () =
  let eng = Engine.create (toy_db ()) in
  let p = Engine.prepare eng "select eid from emp" in
  Alcotest.(check string) "no caching tier: no provenance" "none" (cache_status p);
  Alcotest.(check bool) "no stats either" true (Engine.cache_stats eng = None)

(* --- CSE store ------------------------------------------------------- *)

let plan_of eng sql = (Engine.prepare ~use_cache:false eng sql).Engine.plan

let test_cse_fingerprint_alpha_equivalence () =
  let eng = Engine.create (toy_db ()) in
  (* two separately bound plans of the same text differ in column ids
     but must share a fingerprint *)
  let sql = "select dept, sum(salary) from emp group by dept" in
  let fa = Cache.Cse.fingerprint (plan_of eng sql) in
  let fb = Cache.Cse.fingerprint (plan_of eng sql) in
  Alcotest.(check string) "alpha-equivalent plans share a fingerprint" fa fb;
  let fc = Cache.Cse.fingerprint (plan_of eng "select dept, sum(eid) from emp group by dept") in
  Alcotest.(check bool) "different aggregate, different fingerprint" true (fa <> fc)

let test_cse_candidates_closed_only () =
  let eng = Engine.create (toy_db ()) in
  (* correlated subquery: the inner subtree references outer columns,
     so only fully closed subtrees may be offered as candidates *)
  let plan =
    plan_of eng
      "select eid from emp where salary > (select sum(salary) from emp e2 where e2.dept = emp.dept)"
  in
  List.iter
    (fun (_, sub) ->
      Alcotest.(check bool) "candidate has no free columns" true
        (Relalg.Col.Set.is_empty (Relalg.Op.free_cols sub)))
    (Cache.Cse.candidates plan)

(* --- query_many ------------------------------------------------------ *)

let test_query_many_empty_and_singleton () =
  let eng = cached_engine () in
  let b = Engine.query_many eng [] in
  Alcotest.(check int) "empty batch: no items" 0 (List.length b.Engine.items);
  let sql = "select eid from emp where salary > 150" in
  let b = Engine.query_many eng [ sql ] in
  (match b.Engine.items with
  | [ it ] ->
      check_same_bag "singleton batch matches direct execution"
        it.Engine.item_execution.Engine.result.Exec.Executor.rows
        (Engine.query ~use_cache:false eng sql).Exec.Executor.rows
  | _ -> Alcotest.fail "expected one item")

let shared_batch =
  [ "select eid from emp where salary > 0.5 * (select sum(salary) from emp)";
    "select name from emp where salary < 2.0 * (select sum(salary) from emp)";
    "select eid from emp where salary > 0.1 * (select sum(salary) from emp)"
  ]

let test_query_many_materializes_shared_subplan () =
  let eng = cached_engine () in
  let b = Engine.query_many eng shared_batch in
  Alcotest.(check bool) "at least one CSE selected" true (b.Engine.cse_count >= 1);
  Alcotest.(check bool) "replaced in several statements" true
    (b.Engine.cse_substitutions >= 2);
  List.iter2
    (fun sql (it : Engine.batch_item) ->
      check_same_bag (sql ^ ": batch bag = sequential bag")
        it.Engine.item_execution.Engine.result.Exec.Executor.rows
        (Engine.query ~use_cache:false eng sql).Exec.Executor.rows)
    shared_batch b.Engine.items;
  let s = Option.get (Engine.cache_stats eng) in
  Alcotest.(check bool) "materialization counted" true
    (s.Engine.cse_materializations >= 1)

let test_query_many_generation_bump_between_batches () =
  let eng = cached_engine () in
  let sum_all () =
    match (Engine.query ~use_cache:false eng "select sum(salary) from emp").rows with
    | [ [| v |] ] -> v
    | _ -> Alcotest.fail "expected one aggregate row"
  in
  let b0 = Engine.query_many eng shared_batch in
  ignore b0;
  let before = sum_all () in
  Engine.append_row eng "emp" [| v_int 10; v_str "fay"; v_int 2; v_f 5000. |];
  (* the batch after the append must see the new row: its CSE entry is
     re-materialized, not served stale *)
  let b1 = Engine.query_many eng shared_batch in
  List.iter2
    (fun sql (it : Engine.batch_item) ->
      check_same_bag (sql ^ ": post-append batch bag is fresh")
        it.Engine.item_execution.Engine.result.Exec.Executor.rows
        (Engine.query ~use_cache:false eng sql).Exec.Executor.rows)
    shared_batch b1.Engine.items;
  let after = sum_all () in
  Alcotest.(check bool) "the append really moved the aggregate" true (before <> after)

let test_query_many_without_cache_degenerates () =
  let eng = Engine.create (toy_db ()) in
  let b = Engine.query_many eng shared_batch in
  Alcotest.(check int) "no CSEs without a cache" 0 b.Engine.cse_count;
  List.iter2
    (fun sql (it : Engine.batch_item) ->
      check_same_bag (sql ^ ": uncached batch still correct")
        it.Engine.item_execution.Engine.result.Exec.Executor.rows
        (Engine.query eng sql).Exec.Executor.rows)
    shared_batch b.Engine.items

(* --- service wiring --------------------------------------------------- *)

let test_service_cache_stats_surface () =
  let t =
    Service.create
      ~config:{ Service.default_config with domains = 1; enable_cache = true }
      (toy_db ())
  in
  let sql = "select eid from emp where salary > 150" in
  let r1 = Service.run t (Service.request sql) in
  let r2 = Service.run t (Service.request sql) in
  (match (r1.Service.outcome, r2.Service.outcome) with
  | Ok _, Ok _ -> ()
  | _ -> Alcotest.fail "cached service must serve both requests");
  let s = Service.stats t in
  Service.shutdown t;
  match s.Service.Stats.cache with
  | None -> Alcotest.fail "service stats must surface cache counters"
  | Some c ->
      Alcotest.(check bool) "a hit or a miss was recorded" true
        (c.Engine.plan_hits + c.Engine.plan_misses >= 2);
      Alcotest.(check bool) "rendered stats mention the cache" true
        (contains (Service.Stats.render s) "cache:")

let suite =
  [ Alcotest.test_case "canon: literal stability" `Quick test_canon_literal_stability;
    Alcotest.test_case "canon: alias stability" `Quick test_canon_alias_stability;
    Alcotest.test_case "canon: no collisions" `Quick test_canon_no_collisions;
    Alcotest.test_case "canon: generated round-trip" `Quick
      test_canon_roundtrip_generated;
    Alcotest.test_case "plan cache: LRU eviction" `Quick test_plan_cache_lru_eviction;
    Alcotest.test_case "plan cache: oversized entry" `Quick
      test_plan_cache_oversized_entry;
    Alcotest.test_case "plan cache: generation invalidation" `Quick
      test_plan_cache_generation_invalidation;
    Alcotest.test_case "plan cache: single flight" `Quick test_plan_cache_single_flight;
    Alcotest.test_case "engine: hit rebinds literals" `Quick
      test_engine_hit_rebinds_literals;
    Alcotest.test_case "engine: generation bump invalidates" `Quick
      test_engine_generation_bump_invalidates;
    Alcotest.test_case "engine: value-dependent fallback" `Quick
      test_engine_value_dependent_fallback;
    Alcotest.test_case "engine: order pattern separates ranges" `Quick
      test_engine_order_pattern_separates_ranges;
    Alcotest.test_case "engine: mixed numeric tie exact path" `Quick
      test_engine_mixed_numeric_tie_exact_path;
    Alcotest.test_case "engine: cache off" `Quick test_engine_cache_off_is_none;
    Alcotest.test_case "cse: fingerprint alpha-equivalence" `Quick
      test_cse_fingerprint_alpha_equivalence;
    Alcotest.test_case "cse: candidates are closed" `Quick
      test_cse_candidates_closed_only;
    Alcotest.test_case "query_many: empty and singleton" `Quick
      test_query_many_empty_and_singleton;
    Alcotest.test_case "query_many: materializes shared subplan" `Quick
      test_query_many_materializes_shared_subplan;
    Alcotest.test_case "query_many: generation bump between batches" `Quick
      test_query_many_generation_bump_between_batches;
    Alcotest.test_case "query_many: without cache" `Quick
      test_query_many_without_cache_degenerates;
    Alcotest.test_case "service: cache stats surface" `Quick
      test_service_cache_stats_surface
  ]
