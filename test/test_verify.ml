(* The plan integrity verifier (Relalg.Verify), its wiring into the
   optimizer search (candidate rejection + rule quarantine) and into
   Engine.prepare (Invalid_plan, correlated fallback), and the seeded
   fuzz generator (Testgen.Qgen) with its regression corpus. *)

open Relalg
open Relalg.Algebra

let kinds vs = List.map (fun (v : Verify.violation) -> v.kind) vs

let has_kind pred vs = List.exists pred (kinds vs)

(* a two-column scan with fresh ids *)
let scan () =
  let a = Col.fresh "a" Value.TInt and b = Col.fresh "b" Value.TInt in
  (TableScan { table = "t"; cols = [ a; b ] }, a, b)

(* ------------------------------------------------------------------ *)
(* Per-invariant unit tests on hand-broken trees.                      *)
(* ------------------------------------------------------------------ *)

let test_clean_tree () =
  let t, a, b = scan () in
  let tree = Select (Cmp (Lt, ColRef a, ColRef b), t) in
  Alcotest.(check int) "no violations" 0 (List.length (Verify.check tree));
  Alcotest.(check int) "expected schema ok" 0
    (List.length (Verify.check ~expect_schema:[ a; b ] tree))

let test_unresolved_column () =
  let t, _, _ = scan () in
  let ghost = Col.fresh "ghost" Value.TInt in
  let tree = Select (Cmp (Eq, ColRef ghost, Const (Value.Int 1)), t) in
  Alcotest.(check bool) "unresolved flagged" true
    (has_kind (function Verify.Unresolved_column c -> Col.equal c ghost | _ -> false)
       (Verify.check tree))

let test_type_clash () =
  let t, a, _ = scan () in
  let wrong = { a with ty = Value.TStr } in
  let tree = Select (Cmp (Eq, ColRef wrong, Const (Value.Str "x")), t) in
  Alcotest.(check bool) "type clash flagged" true
    (has_kind (function Verify.Type_clash _ -> true | _ -> false) (Verify.check tree))

let test_duplicate_column () =
  let t, a, b = scan () in
  let out = Col.fresh "o" Value.TInt in
  let tree = Project ([ { expr = ColRef a; out }; { expr = ColRef b; out } ], t) in
  Alcotest.(check bool) "duplicate flagged" true
    (has_kind (function Verify.Duplicate_column c -> Col.equal c out | _ -> false)
       (Verify.check tree))

let test_correlated_join () =
  let l, la, _ = scan () in
  let r, ra, _ = scan () in
  (* the right side references the left's column: legal under Apply,
     illegal under Join *)
  let right = Select (Cmp (Eq, ColRef ra, ColRef la), r) in
  let bad = Join { kind = Inner; pred = true_; left = l; right } in
  Alcotest.(check bool) "correlated join flagged" true
    (has_kind (function Verify.Correlated_join _ -> true | _ -> false) (Verify.check bad));
  let ok = Apply { kind = Inner; pred = true_; left = l; right } in
  Alcotest.(check int) "same tree as Apply is legal" 0 (List.length (Verify.check ok))

let test_illegal_apply () =
  let l, la, _ = scan () in
  let r, ra, _ = scan () in
  (* the LEFT side referencing the right is never legal *)
  let left = Select (Cmp (Eq, ColRef la, ColRef ra), l) in
  let bad = Apply { kind = Inner; pred = true_; left; right = r } in
  Alcotest.(check bool) "left->right reference flagged" true
    (has_kind (function Verify.Illegal_apply _ -> true | _ -> false) (Verify.check bad))

let test_orphan_hole () =
  let _, a, b = scan () in
  let hole =
    SegmentHole { cols = [ Col.fresh "h1" Value.TInt; Col.fresh "h2" Value.TInt ];
                  src = [ a; b ] }
  in
  Alcotest.(check bool) "orphan hole flagged" true
    (has_kind (function Verify.Orphan_hole -> true | _ -> false) (Verify.check hole))

let test_union_mismatch () =
  let l, _, _ = scan () in
  let c = Col.fresh "c" Value.TInt in
  let one = ConstTable { cols = [ c ]; rows = [ [| Value.Int 1 |] ] } in
  let bad = UnionAll (l, one) in
  Alcotest.(check bool) "arity mismatch flagged" true
    (has_kind (function Verify.Union_mismatch _ -> true | _ -> false) (Verify.check bad))

let test_groupby_key_unbound () =
  let t, _, _ = scan () in
  let ghost = Col.fresh "ghost" Value.TInt in
  let bad = GroupBy { keys = [ ghost ]; aggs = []; input = t } in
  Alcotest.(check bool) "unbound key flagged" true
    (has_kind (function Verify.Unresolved_column _ -> true | _ -> false) (Verify.check bad))

let test_schema_mismatch () =
  let t, a, _ = scan () in
  Alcotest.(check bool) "root schema drift flagged" true
    (has_kind (function Verify.Schema_mismatch _ -> true | _ -> false)
       (Verify.check ~expect_schema:[ a ] t))

(* ------------------------------------------------------------------ *)
(* Rewrite side-condition re-checks.                                   *)
(* ------------------------------------------------------------------ *)

let test_oj_simplification_replay () =
  let l, la, _ = scan () in
  let r, ra, _ = scan () in
  let pred = Cmp (Eq, ColRef la, ColRef ra) in
  let before k = Join { kind = k; pred; left = l; right = r } in
  (* unjustified flip: no enclosing predicate rejects NULL on the right *)
  Alcotest.(check bool) "unjustified flip flagged" true
    (Verify.check_oj_simplification ~before:(before LeftOuter) ~after:(before Inner) <> []);
  (* justified: an enclosing filter rejects NULL on a right-side column *)
  let guard o = Select (Cmp (Gt, ColRef ra, Const (Value.Int 0)), o) in
  Alcotest.(check int) "justified flip passes" 0
    (List.length
       (Verify.check_oj_simplification ~before:(guard (before LeftOuter))
          ~after:(guard (before Inner))));
  (* no flip at all is vacuously fine *)
  Alcotest.(check int) "identity passes" 0
    (List.length
       (Verify.check_oj_simplification ~before:(before LeftOuter) ~after:(before LeftOuter)))

let test_filter_groupby_recheck () =
  let env = { Props.default_env with table_key = (fun _ -> [ "a" ]) } in
  let t, a, b = scan () in
  let out = Col.fresh "s" Value.TFloat in
  let g = GroupBy { keys = [ a ]; aggs = [ { fn = Sum (ColRef b); out } ]; input = t } in
  let ok_pred = Cmp (Gt, ColRef a, Const (Value.Int 0)) in
  let bad_pred = Cmp (Gt, ColRef b, Const (Value.Int 0)) in
  (* commuting a filter on the grouping column is sound *)
  Alcotest.(check int) "key filter passes" 0
    (List.length
       (Verify.check_rewrite ~env ~rule:"filter-below-groupby"
          ~before:(Select (ok_pred, g))
          ~after:(GroupBy
                    { keys = [ a ];
                      aggs = [ { fn = Sum (ColRef b); out } ];
                      input = Select (ok_pred, t);
                    })));
  (* a filter over a non-grouping column must not commute *)
  Alcotest.(check bool) "non-key filter flagged" true
    (Verify.check_rewrite ~env ~rule:"filter-below-groupby" ~before:(Select (bad_pred, g))
       ~after:g
    <> []);
  (* unknown rules pass vacuously *)
  Alcotest.(check int) "unknown rule vacuous" 0
    (List.length
       (Verify.check_rewrite ~env ~rule:"no-such-rule" ~before:(Select (bad_pred, g)) ~after:g))

(* ------------------------------------------------------------------ *)
(* Search integration: invalid candidates dropped, rule quarantined.   *)
(* ------------------------------------------------------------------ *)

let test_quarantine () =
  let db = Support.toy_db () in
  let cat = db.Storage.Database.catalog in
  let env = Catalog.props_env cat in
  let stats = Optimizer.Stats.create db in
  let sql = "select eid from emp where salary > 150 and dept = 1" in
  let bound = Sqlfront.Binder.bind_sql cat sql in
  let stages = Normalize.run (Normalize.default_options env) bound.op in
  let seed = stages.normalized in
  (* a deliberately unsound rule: rewrites any Select into one whose
     predicate references a column no child produces *)
  let bad_rule =
    { Optimizer.Search.name = "bad-ghost-filter";
      apply =
        (fun o ->
          match o with
          | Select (_, input) ->
              [ Select (Cmp (Eq, ColRef (Col.fresh "ghost" Value.TInt), Const (Value.Int 0)),
                        input)
              ]
          | _ -> []);
    }
  in
  let outcome =
    Optimizer.Search.optimize ~record_trace:true ~extra_rules:[ bad_rule ]
      Optimizer.Config.full stats ~env seed
  in
  Alcotest.(check bool) "rule quarantined" true
    (List.mem_assoc "bad-ghost-filter" outcome.quarantined);
  Alcotest.(check int) "chosen plan is valid" 0 (List.length (Verify.check outcome.best));
  (* the quarantined rule's output never reached the plan space: the
     chosen plan still computes the right rows *)
  Support.check_same_bag "best computes seed's bag" (Support.run_op db seed)
    (Support.run_op db outcome.best);
  (match outcome.trace with
  | None -> Alcotest.fail "trace requested but absent"
  | Some tr ->
      Alcotest.(check bool) "trace counts invalid candidates" true (tr.total_invalid >= 1);
      Alcotest.(check bool) "trace records quarantine" true
        (List.mem_assoc "bad-ghost-filter" tr.quarantined);
      Alcotest.(check bool) "trace renders quarantine" true
        (Support.contains (Optimizer.Search.trace_to_string tr) "QUARANTINED");
      Alcotest.(check bool) "json renders quarantine" true
        (Support.contains (Optimizer.Search.trace_to_json tr) "\"quarantined\""));
  (* with verification off the bad candidates survive into the memo *)
  let unverified =
    Optimizer.Search.optimize ~verify:false ~extra_rules:[ bad_rule ] Optimizer.Config.full
      stats ~env seed
  in
  Alcotest.(check int) "no quarantine without verification" 0
    (List.length unverified.quarantined)

(* ------------------------------------------------------------------ *)
(* Engine integration: typed Invalid_plan, recoverable.                *)
(* ------------------------------------------------------------------ *)

let test_error_classification () =
  Alcotest.(check bool) "Invalid_plan is recoverable" true
    (Engine.Errors.recoverable (Engine.Errors.make Engine.Errors.Invalid_plan "x"));
  Alcotest.(check string) "phase renders" "invalid-plan"
    (Engine.Errors.phase_to_string Engine.Errors.Invalid_plan);
  (match Engine.Errors.of_exn (Normalize.Decorrelate.Internal_error "boom") with
  | Some e ->
      Alcotest.(check string) "decorrelate internal error -> normalize phase" "normalize"
        (Engine.Errors.phase_to_string e.phase);
      Alcotest.(check bool) "and recoverable" true (Engine.Errors.recoverable e)
  | None -> Alcotest.fail "Internal_error not classified")

(* every workload plan, under every optimizer level, passes the
   verifier and quarantines nothing *)
let test_workloads_clean () =
  let db = Datagen.Tpch_gen.database ~sf:0.002 () in
  let eng = Engine.create db in
  List.iter
    (fun (name, sql) ->
      List.iter
        (fun config ->
          (* prepare itself verifies (and would raise Invalid_plan) *)
          let p = Engine.prepare ~config eng sql in
          Alcotest.(check int)
            (name ^ "/" ^ Optimizer.Config.name_of config ^ " plan clean")
            0
            (List.length (Verify.check p.Engine.plan));
          Alcotest.(check int)
            (name ^ "/" ^ Optimizer.Config.name_of config ^ " no quarantine")
            0
            (List.length p.Engine.quarantined))
        [ Optimizer.Config.full;
          Optimizer.Config.decorrelated_only;
          Optimizer.Config.correlated_only
        ])
    Workloads.all_named

(* ------------------------------------------------------------------ *)
(* Fuzz generator: determinism, corpus goldens, differential agreement *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Exec.Faults.Rng.create 7 and b = Exec.Faults.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Exec.Faults.Rng.int a 1000)
      (Exec.Faults.Rng.int b 1000)
  done

(* Minimized fuzz findings and representative generator output, pinned
   as goldens: a change to the generator silently invalidates every
   recorded replay id, so drift must be deliberate. *)
let corpus =
  [ (1, 0,
     "select s_suppkey, s_acctbal from supplier where s_acctbal <= 1310.10 and s_acctbal \
      < 9844.20 and s_nationkey in (select x1.n_nationkey from nation x1 where \
      x1.n_nationkey <= 11 and x1.n_nationkey < 3) and s_acctbal <= (select \
      max(x2.l_extendedprice) from lineitem x2 where x2.l_discount < 0.01)");
    (* found by the first long sweep: avg() last-ulp drift between join
       orders; kept as the regression witness for float-rounded
       differential comparison *)
    (1, 41,
     "select s_suppkey, avg(ps_supplycost) as agg0 from supplier join partsupp on \
      ps_suppkey = s_suppkey where ps_partkey in (select x1.p_partkey from part x1 where \
      x1.p_size > 18 and x1.p_retailprice < 1527.69) group by s_suppkey having 180.18 <= \
      avg(ps_supplycost)");
    (42, 13,
     "select c_custkey, c_acctbal from customer where c_custkey > 42 and c_acctbal < \
      1504.85 and c_custkey in (select x1.o_custkey from orders x1)");
    (7, 99,
     "select s_suppkey, s_acctbal from supplier where s_acctbal >= 3957.04 and not \
      exists (select x1.ps_partkey from partsupp x1 where x1.ps_suppkey = s_suppkey) and \
      s_acctbal > (select avg(x2.l_quantity) from lineitem x2 where x2.l_discount < 0.03 \
      and x2.l_extendedprice > 38258.43)")
  ]

let test_corpus_stable () =
  List.iter
    (fun (seed, case, golden) ->
      Alcotest.(check string)
        (Printf.sprintf "sql_of %d:%d stable" seed case)
        golden
        (Testgen.Qgen.sql_of ~seed ~case))
    corpus

let test_corpus_agrees () =
  let db = Datagen.Tpch_gen.database ~sf:0.002 () in
  let eng = Engine.create db in
  List.iter
    (fun (seed, case, sql) ->
      let r = Engine.check ~float_digits:6 eng sql in
      Alcotest.(check bool) (Printf.sprintf "corpus %d:%d agrees" seed case) true
        r.Engine.agree)
    corpus

let test_shrink_soundness () =
  (* every one-step shrink of a generated spec must still render to SQL
     the pipeline accepts (shrinking must never introduce new failures) *)
  let db = Datagen.Tpch_gen.database ~sf:0.002 () in
  let eng = Engine.create db in
  let budget = Exec.Budget.make ~max_rows:2_000_000 () in
  List.iter
    (fun case ->
      let spec = Testgen.Qgen.spec_of ~seed:11 ~case in
      List.iter
        (fun s ->
          let sql = Testgen.Qgen.render s in
          match Engine.query_checked ~budget eng sql with
          | Ok _ -> ()
          | Error e -> (
              match e.Engine.Errors.phase with
              | Budget -> ()
              | _ ->
                  Alcotest.failf "shrink of 11:%d broke the query: %s\n%s" case
                    (Engine.Errors.to_string e) sql))
        (Testgen.Qgen.shrink_spec spec))
    [ 0; 1; 2; 3; 4 ]

let suite =
  [ Alcotest.test_case "clean tree" `Quick test_clean_tree;
    Alcotest.test_case "unresolved column" `Quick test_unresolved_column;
    Alcotest.test_case "type clash" `Quick test_type_clash;
    Alcotest.test_case "duplicate column" `Quick test_duplicate_column;
    Alcotest.test_case "correlated join" `Quick test_correlated_join;
    Alcotest.test_case "illegal apply" `Quick test_illegal_apply;
    Alcotest.test_case "orphan segment hole" `Quick test_orphan_hole;
    Alcotest.test_case "union mismatch" `Quick test_union_mismatch;
    Alcotest.test_case "groupby key unbound" `Quick test_groupby_key_unbound;
    Alcotest.test_case "schema mismatch" `Quick test_schema_mismatch;
    Alcotest.test_case "oj simplification replay" `Quick test_oj_simplification_replay;
    Alcotest.test_case "filter/groupby recheck" `Quick test_filter_groupby_recheck;
    Alcotest.test_case "rule quarantine" `Quick test_quarantine;
    Alcotest.test_case "error classification" `Quick test_error_classification;
    Alcotest.test_case "workload plans clean" `Quick test_workloads_clean;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "fuzz corpus stable" `Quick test_corpus_stable;
    Alcotest.test_case "fuzz corpus agrees" `Quick test_corpus_agrees;
    Alcotest.test_case "shrink soundness" `Quick test_shrink_soundness
  ]
