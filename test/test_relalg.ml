(* Tests for the algebra: schemas, free references, keys, cardinality
   bounds, non-nullability, strictness, cloning, isomorphism. *)

open Relalg
open Relalg.Algebra

let mkcol name = Col.fresh name Value.TInt

let scan name cols = TableScan { table = name; cols }

let test_schema_shapes () =
  let a = mkcol "a" and b = mkcol "b" and c = mkcol "c" in
  let t1 = scan "t1" [ a; b ] and t2 = scan "t2" [ c ] in
  let j = Join { kind = Inner; pred = true_; left = t1; right = t2 } in
  Alcotest.(check int) "join schema width" 3 (List.length (Op.schema j));
  let semi = Join { kind = Semi; pred = true_; left = t1; right = t2 } in
  Alcotest.(check int) "semijoin keeps left only" 2 (List.length (Op.schema semi));
  let g = GroupBy { keys = [ a ]; aggs = [ { fn = Sum (ColRef b); out = mkcol "s" } ]; input = t1 } in
  Alcotest.(check int) "groupby schema" 2 (List.length (Op.schema g));
  let sa = ScalarAgg { aggs = [ { fn = CountStar; out = mkcol "n" } ]; input = t1 } in
  Alcotest.(check int) "scalaragg schema" 1 (List.length (Op.schema sa));
  let rn = Rownum { out = mkcol "rn"; input = t1 } in
  Alcotest.(check int) "rownum appends" 3 (List.length (Op.schema rn))

let test_free_cols_correlation () =
  let a = mkcol "a" and b = mkcol "b" and x = mkcol "x" in
  let outer = scan "outer" [ a; b ] in
  let inner = Select (Cmp (Eq, ColRef x, ColRef a), scan "inner" [ x ]) in
  Alcotest.(check bool) "inner references a" true (Op.correlated_with inner outer);
  let uncorr = Select (Cmp (Eq, ColRef x, Const (Value.Int 1)), scan "inner2" [ Col.fresh "x" Value.TInt ]) in
  Alcotest.(check bool) "no correlation" false (Op.correlated_with uncorr outer);
  (* free refs inside a subquery scalar child count too *)
  let e = Subquery inner in
  let sel = Select (Cmp (Lt, Const (Value.Int 0), e), scan "t" [ mkcol "z" ]) in
  Alcotest.(check bool) "free through scalar child" true
    (Col.Set.mem a (Op.free_cols sel))

let env_with_key table key : Props.env =
  { Props.default_env with table_key = (fun t -> if t = table then key else []) }

let test_keys () =
  let a = mkcol "a" and b = mkcol "b" in
  let t = scan "t" [ a; b ] in
  let env = env_with_key "t" [ "a" ] in
  Alcotest.(check bool) "pk is key" true (Props.covers_key ~env t (Col.Set.singleton a));
  Alcotest.(check bool) "b is not key" false (Props.covers_key ~env t (Col.Set.singleton b));
  (* groupby keys are a key of its output *)
  let g = GroupBy { keys = [ b ]; aggs = []; input = t } in
  Alcotest.(check bool) "grouping cols key" true (Props.covers_key ~env g (Col.Set.singleton b));
  (* join multiplies keys *)
  let c = mkcol "c" in
  let u = scan "u" [ c ] in
  let env2 : Props.env =
    { Props.default_env with
      table_key = (function "t" -> [ "a" ] | "u" -> [ "c" ] | _ -> [])
    }
  in
  let j = Join { kind = Inner; pred = true_; left = t; right = u } in
  Alcotest.(check bool) "join key = union" true
    (Props.covers_key ~env:env2 j (Col.Set.of_list [ a; c ]));
  Alcotest.(check bool) "half not key" false
    (Props.covers_key ~env:env2 j (Col.Set.singleton a));
  (* rownum manufactures a key *)
  let rn_col = Col.fresh "rn" Value.TInt in
  let rn = Rownum { out = rn_col; input = scan "nokey" [ mkcol "z" ] } in
  Alcotest.(check bool) "rownum key" true (Props.covers_key rn (Col.Set.singleton rn_col))

let test_max_one_row () =
  let a = mkcol "a" and b = mkcol "b" in
  let t = scan "t" [ a; b ] in
  let env = env_with_key "t" [ "a" ] in
  Alcotest.(check bool) "scan not single" false (Props.max_one_row ~env t);
  Alcotest.(check bool) "scalar agg single" true
    (Props.max_one_row ~env (ScalarAgg { aggs = []; input = t }));
  (* equality on the full key with an outer value pins one row *)
  let outer_col = mkcol "o" in
  let sel = Select (Cmp (Eq, ColRef a, ColRef outer_col), t) in
  Alcotest.(check bool) "key equality single" true (Props.max_one_row ~env sel);
  let sel2 = Select (Cmp (Eq, ColRef b, ColRef outer_col), t) in
  Alcotest.(check bool) "non-key equality not single" false (Props.max_one_row ~env sel2)

let test_nonnullable () =
  let a = mkcol "a" in
  let t = scan "t" [ a ] in
  Alcotest.(check bool) "base col non-null" true (Col.Set.mem a (Props.nonnullable t));
  let b = mkcol "b" in
  let u = scan "u" [ b ] in
  let loj = Join { kind = LeftOuter; pred = true_; left = t; right = u } in
  Alcotest.(check bool) "outerjoin inner side nullable" false
    (Col.Set.mem b (Props.nonnullable loj));
  Alcotest.(check bool) "outerjoin outer side non-null" true
    (Col.Set.mem a (Props.nonnullable loj));
  let cnt = { fn = CountStar; out = mkcol "n" } in
  let sagg = ScalarAgg { aggs = [ cnt ]; input = t } in
  Alcotest.(check bool) "count non-null" true (Col.Set.mem cnt.out (Props.nonnullable sagg));
  let s = { fn = Sum (ColRef a); out = mkcol "s" } in
  let sagg2 = ScalarAgg { aggs = [ s ]; input = t } in
  Alcotest.(check bool) "scalar sum nullable (empty input)" false
    (Col.Set.mem s.out (Props.nonnullable sagg2))

let test_strictness () =
  let a = mkcol "a" in
  Alcotest.(check bool) "col strict" true (Expr.strict (ColRef a));
  Alcotest.(check bool) "const not strict" false (Expr.strict (Const (Value.Int 1)));
  Alcotest.(check bool) "scaled col strict" true
    (Expr.strict (Arith (Mul, Const (Value.Float 0.2), ColRef a)));
  Alcotest.(check bool) "case not strict" false
    (Expr.strict (Case ([ (IsNull (ColRef a), Const (Value.Int 0)) ], None)));
  Alcotest.(check bool) "is-null not strict" false (Expr.strict (IsNull (ColRef a)));
  let sc = Expr.strict_cols (Arith (Add, ColRef a, Const (Value.Int 1))) in
  Alcotest.(check bool) "strict cols" true (Col.Set.mem a sc)

let test_null_rejection () =
  let a = mkcol "a" and b = mkcol "b" in
  let r p = Expr.null_rejected_cols p in
  Alcotest.(check bool) "comparison rejects" true
    (Col.Set.mem a (r (Cmp (Lt, Const (Value.Int 0), ColRef a))));
  Alcotest.(check bool) "and unions" true
    (let s = r (And (Cmp (Eq, ColRef a, Const (Value.Int 1)), Cmp (Eq, ColRef b, Const (Value.Int 2)))) in
     Col.Set.mem a s && Col.Set.mem b s);
  Alcotest.(check bool) "or intersects" false
    (Col.Set.mem a
       (r (Or (Cmp (Eq, ColRef a, Const (Value.Int 1)), Cmp (Eq, ColRef b, Const (Value.Int 2))))));
  Alcotest.(check bool) "or same col kept" true
    (Col.Set.mem a
       (r (Or (Cmp (Eq, ColRef a, Const (Value.Int 1)), Cmp (Eq, ColRef a, Const (Value.Int 2))))));
  Alcotest.(check bool) "is null does not reject" false
    (Col.Set.mem a (r (IsNull (ColRef a))))

let test_clone_fresh () =
  let a = mkcol "a" in
  let outer_ref = mkcol "outer" in
  let t = Select (Cmp (Eq, ColRef a, ColRef outer_ref), scan "t" [ a ]) in
  let t', m = Op.clone_fresh t in
  (* produced column renamed *)
  let a' = Col.IdMap.find a.Col.id m in
  Alcotest.(check bool) "fresh id" true (a'.Col.id <> a.Col.id);
  Alcotest.(check bool) "clone schema renamed" true
    (List.for_all (fun (c : Col.t) -> c.Col.id <> a.Col.id) (Op.schema t'));
  (* outer reference untouched *)
  Alcotest.(check bool) "outer ref kept" true (Col.Set.mem outer_ref (Op.free_cols t'))

let test_iso () =
  let a = mkcol "a" in
  let t1 = Select (Cmp (Gt, ColRef a, Const (Value.Int 5)), scan "t" [ a ]) in
  let b = mkcol "a2" in
  let t2 = Select (Cmp (Gt, ColRef b, Const (Value.Int 5)), scan "t" [ b ]) in
  (match Op.iso t1 t2 with
  | Some m -> Alcotest.(check bool) "maps a->b" true (Col.equal (Col.IdMap.find a.Col.id m) b)
  | None -> Alcotest.fail "expected isomorphic");
  let t3 = Select (Cmp (Gt, ColRef b, Const (Value.Int 6)), scan "t" [ b ]) in
  Alcotest.(check bool) "different constant" true (Op.iso t1 t3 = None);
  let c = mkcol "c" in
  let t4 = Select (Cmp (Gt, ColRef c, Const (Value.Int 5)), scan "u" [ c ]) in
  Alcotest.(check bool) "different table" true (Op.iso t1 t4 = None)

let test_conjuncts () =
  let a = mkcol "a" in
  let p1 = Cmp (Eq, ColRef a, Const (Value.Int 1)) in
  let p2 = Cmp (Gt, ColRef a, Const (Value.Int 0)) in
  Alcotest.(check int) "split" 2 (List.length (conjuncts (And (p1, p2))));
  Alcotest.(check bool) "conj absorbs true" true (conj true_ p1 = p1);
  Alcotest.(check bool) "conj_list empty" true (is_true_const (conj_list []))

let suite =
  [ Alcotest.test_case "schema shapes" `Quick test_schema_shapes;
    Alcotest.test_case "free cols / correlation" `Quick test_free_cols_correlation;
    Alcotest.test_case "key derivation" `Quick test_keys;
    Alcotest.test_case "max one row" `Quick test_max_one_row;
    Alcotest.test_case "nonnullable" `Quick test_nonnullable;
    Alcotest.test_case "strictness" `Quick test_strictness;
    Alcotest.test_case "null rejection" `Quick test_null_rejection;
    Alcotest.test_case "clone fresh" `Quick test_clone_fresh;
    Alcotest.test_case "isomorphism" `Quick test_iso;
    Alcotest.test_case "conjuncts" `Quick test_conjuncts
  ]
