(* Durability layer: codec round-trips, CRC vectors, WAL tail
   classification, snapshot corruption rejection (including a
   checked-in corpus of doctored files), durable-store recovery, and
   the stale-index / quadratic-append regressions. *)

open Relalg
module Checksum = Storage.Checksum
module Codec = Storage.Codec
module Wal = Storage.Wal
module Snapshot = Storage.Snapshot
module Durable = Storage.Durable
module Io = Storage.Io_faults
module Table = Storage.Table
module Database = Storage.Database

(* --- scratch-directory and byte-surgery helpers ----------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sqstore-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf (path : string) : unit =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir (f : string -> unit) : unit =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* copy of [path] with the byte at [off] xor'ed with 0x01 *)
let flipped (s : string) (off : int) : string =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
  Bytes.to_string b

let expect_corrupt what (f : unit -> 'a) : unit =
  match f () with
  | exception Codec.Storage_corrupt _ -> ()
  | _ -> Alcotest.fail (what ^ ": expected Storage_corrupt")

let env () = Io.env ()

(* --- checksum ---------------------------------------------------------- *)

(* the CRC-32 (IEEE 802.3) check vector, plus chaining *)
let test_crc_vector () =
  Alcotest.(check int) "crc(123456789)" 0xCBF43926 (Checksum.of_string "123456789");
  Alcotest.(check int) "crc(empty)" 0 (Checksum.of_string "");
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Checksum.of_string s in
  let half = Checksum.string s ~pos:0 ~len:20 in
  let chained = Checksum.string ~init:half s ~pos:20 ~len:(String.length s - 20) in
  Alcotest.(check int) "chained regions" whole chained;
  Alcotest.(check bool) "flip changes crc" true
    (Checksum.of_string (flipped s 7) <> whole)

(* --- codec ------------------------------------------------------------- *)

(* NaN payloads and -0.0 must survive, so floats compare by bit pattern *)
let value_bits_equal (a : Value.t) (b : Value.t) : bool =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> Stdlib.compare a b = 0

let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [ (1, return Value.Null);
      (3, map (fun i -> Value.Int i) (oneof [ int; oneofl [ min_int; max_int; 0; -1 ] ]));
      ( 3,
        map
          (fun f -> Value.Float f)
          (oneof [ float; oneofl [ 0.0; -0.0; infinity; neg_infinity; nan; 4e-320 ] ]) );
      (3, map (fun s -> Value.Str s) (string_size ~gen:char (0 -- 12)));
      (1, map (fun b -> Value.Bool b) bool);
      (2, map (fun d -> Value.Date d) (-800_000 -- 800_000))
    ]

let prop_codec_row_roundtrip =
  QCheck.Test.make ~name:"codec row round-trip (all variants, bit-exact)" ~count:500
    (QCheck.make
       ~print:(fun vs -> String.concat "," (List.map Value.to_string vs))
       (QCheck.Gen.list_size QCheck.Gen.(0 -- 8) value_gen))
    (fun vs ->
      let row = Array.of_list vs in
      let b = Buffer.create 64 in
      Codec.add_row b row;
      let cur = Codec.cursor (Buffer.contents b) in
      let row' = Codec.get_row cur in
      Codec.remaining cur = 0
      && Array.length row = Array.length row'
      && Array.for_all2 value_bits_equal row row')

let test_codec_edge_values () =
  let tricky =
    [| Value.Null; Value.Int min_int; Value.Int max_int; Value.Float (-0.0);
       Value.Float nan; Value.Str ""; Value.Str "a\000b\255"; Value.Bool false;
       Value.Date (-719162)
    |]
  in
  let b = Buffer.create 64 in
  Codec.add_row b tricky;
  let cur = Codec.cursor (Buffer.contents b) in
  let back = Codec.get_row cur in
  Alcotest.(check bool) "bit-exact round-trip" true (Array.for_all2 value_bits_equal tricky back);
  (match back.(3) with
  | Value.Float z -> Alcotest.(check bool) "-0.0 keeps its sign" true (1.0 /. z = neg_infinity)
  | _ -> Alcotest.fail "expected a float back");
  (* truncation and unknown tags raise the typed error, never Invalid_argument *)
  let enc =
    let b = Buffer.create 16 in
    Codec.add_value b (Value.Str "hello");
    Buffer.contents b
  in
  expect_corrupt "truncated value" (fun () ->
      Codec.get_value (Codec.cursor (String.sub enc 0 (String.length enc - 1))));
  expect_corrupt "unknown tag" (fun () -> Codec.get_value (Codec.cursor "\009"));
  expect_corrupt "empty input" (fun () -> Codec.get_value (Codec.cursor ""))

(* --- WAL --------------------------------------------------------------- *)

let sample_rows =
  [ [| Value.Int 1; Value.Str "ann" |]; [| Value.Int 2; Value.Str "bob" |] ]

(* write a 3-record log and return (path, byte offset after each record) *)
let write_sample_wal (dir : string) : string * int array =
  let path = Filename.concat dir "wal-test.log" in
  let w = Wal.create (env ()) ~path ~epoch:0 ~next_seq:1 in
  let sizes = ref [] in
  let note () = sizes := (Unix.stat path).Unix.st_size :: !sizes in
  ignore (Wal.append w ~gen:1 (Wal.Load ("emp", sample_rows)));
  note ();
  ignore (Wal.append w ~gen:2 (Wal.Append ("emp", [| Value.Int 3; Value.Str "cid" |])));
  note ();
  ignore (Wal.append w ~gen:3 (Wal.Append ("emp", [| Value.Int 4; Value.Str "dan" |])));
  note ();
  Wal.close w;
  (path, Array.of_list (List.rev !sizes))

let test_wal_roundtrip () =
  with_dir (fun dir ->
      let path, _ = write_sample_wal dir in
      let log = Wal.read path in
      Alcotest.(check int) "epoch" 0 log.Wal.log_epoch;
      Alcotest.(check int) "start seq" 1 log.Wal.log_start_seq;
      Alcotest.(check (list int)) "dense seqs" [ 1; 2; 3 ]
        (List.map (fun e -> e.Wal.seq) log.Wal.log_entries);
      Alcotest.(check (list int)) "generation tags" [ 1; 2; 3 ]
        (List.map (fun e -> e.Wal.gen) log.Wal.log_entries);
      Alcotest.(check bool) "clean tail" true (log.Wal.log_tail = Wal.Clean);
      match (List.hd log.Wal.log_entries).Wal.op with
      | Wal.Load ("emp", rows) ->
          Support.check_same_bag "load payload" sample_rows rows
      | _ -> Alcotest.fail "expected a Load record first")

let test_wal_torn_tail () =
  with_dir (fun dir ->
      let path, after = write_sample_wal dir in
      (* a crashed append: only part of record 3 reached the disk *)
      Unix.truncate path (after.(1) + 7);
      let log = Wal.read path in
      Alcotest.(check int) "surviving records" 2 (List.length log.Wal.log_entries);
      Alcotest.(check bool) "tail torn at record 3's start" true
        (log.Wal.log_tail = Wal.Torn after.(1)))

let test_wal_midlog_corrupt () =
  with_dir (fun dir ->
      let path, after = write_sample_wal dir in
      (* corrupt record 1's payload: acknowledged records follow, so
         truncating would lose acked data — must refuse, not resync *)
      write_file path (flipped (read_file path) (after.(0) - 1));
      expect_corrupt "mid-log corruption" (fun () -> Wal.read path))

let test_wal_bitflip_final_record () =
  with_dir (fun dir ->
      let path, after = write_sample_wal dir in
      (* a bit flip in the final record is indistinguishable from a torn
         append (documented ambiguity): classified Torn, not corrupt *)
      write_file path (flipped (read_file path) (after.(2) - 1));
      let log = Wal.read path in
      Alcotest.(check int) "surviving records" 2 (List.length log.Wal.log_entries);
      Alcotest.(check bool) "final record truncated as torn" true
        (log.Wal.log_tail = Wal.Torn after.(1)))

let test_wal_bad_header () =
  with_dir (fun dir ->
      let path, _ = write_sample_wal dir in
      write_file path (flipped (read_file path) 3);
      expect_corrupt "flipped header magic" (fun () -> Wal.read path))

(* --- snapshots --------------------------------------------------------- *)

let test_snapshot_roundtrip () =
  with_dir (fun dir ->
      let db = Support.toy_db () in
      let path = Snapshot.write (env ()) ~dir ~epoch:3 db in
      Alcotest.(check string) "named by epoch" (Snapshot.snapshot_name 3)
        (Filename.basename path);
      let epoch, states = Snapshot.read (Support.toy_catalog ()) path in
      Alcotest.(check int) "epoch" 3 epoch;
      Alcotest.(check int) "all tables present" 3 (List.length states);
      List.iter
        (fun (st : Snapshot.table_state) ->
          let tb = Database.table db st.Snapshot.ts_name in
          Alcotest.(check int)
            (st.Snapshot.ts_name ^ " generation")
            (Table.generation tb) st.Snapshot.ts_generation;
          Support.check_same_bag
            (st.Snapshot.ts_name ^ " rows")
            (Table.to_rows tb)
            (Array.to_list st.Snapshot.ts_rows))
        states)

(* every single-byte flip anywhere in the file must be caught: the page
   CRCs, section/header CRCs and the whole-file footer CRC leave no
   unprotected byte *)
let test_snapshot_every_byte_flip_rejected () =
  with_dir (fun dir ->
      let db = Support.toy_db () in
      let path = Snapshot.write (env ()) ~dir ~epoch:1 db in
      let cat = Support.toy_catalog () in
      let original = read_file path in
      let doctored = Filename.concat dir "doctored.snap" in
      for off = 0 to String.length original - 1 do
        write_file doctored (flipped original off);
        expect_corrupt
          (Printf.sprintf "flip at byte %d/%d" off (String.length original))
          (fun () -> Snapshot.read cat doctored)
      done)

let test_snapshot_truncation_and_garbage () =
  with_dir (fun dir ->
      let db = Support.toy_db () in
      let path = Snapshot.write (env ()) ~dir ~epoch:1 db in
      let cat = Support.toy_catalog () in
      let original = read_file path in
      let n = String.length original in
      let case name s =
        let p = Filename.concat dir "case.snap" in
        write_file p s;
        expect_corrupt name (fun () -> Snapshot.read cat p)
      in
      case "empty file" "";
      case "truncated header" (String.sub original 0 11);
      case "half the file" (String.sub original 0 (n / 2));
      case "missing footer byte" (String.sub original 0 (n - 1));
      case "trailing garbage" (original ^ "extra");
      case "wrong magic" ("XXSNAP01" ^ String.sub original 8 (n - 8)))

(* the checked-in corpus of doctored snapshots (test/corpus, generated
   by corpus_main.ml): the valid one parses, every sibling is rejected *)
let test_snapshot_corpus () =
  let dir = "corpus" in
  let cat = Catalog.tpch () in
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".snap")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus is present" true (List.length entries >= 6);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      if f = "valid.snap" then begin
        let epoch, states = Snapshot.read cat path in
        Alcotest.(check int) "valid.snap epoch" 7 epoch;
        let nation =
          List.find (fun s -> s.Snapshot.ts_name = "nation") states
        in
        Alcotest.(check int) "valid.snap nation rows" 3
          (Array.length nation.Snapshot.ts_rows)
      end
      else expect_corrupt f (fun () -> Snapshot.read cat path))
    entries

(* --- durable store ----------------------------------------------------- *)

let emp_rows =
  [ [| Value.Int 1; Value.Str "ann"; Value.Int 1; Value.Float 100. |];
    [| Value.Int 2; Value.Str "bob"; Value.Int 1; Value.Float 200. |];
    [| Value.Int 3; Value.Str "cid"; Value.Int 2; Value.Float 300. |]
  ]

let emp_row eid dept =
  [| Value.Int eid; Value.Str (Printf.sprintf "e%d" eid); Value.Int dept;
     Value.Float (float_of_int (100 * eid))
  |]

let emp_state (st : Durable.t) = Table.to_rows (Database.table (Durable.db st) "emp")

let test_durable_reopen_preserves_state () =
  with_dir (fun dir ->
      let cat = Support.toy_catalog () in
      let st = Durable.open_db ~dir cat in
      let r = Durable.recovery_info st in
      Alcotest.(check bool) "fresh dir starts empty" true
        (r.Durable.rec_snapshot_epoch = None && r.Durable.rec_wal_recreated);
      Durable.load st "emp" emp_rows;
      Durable.load st "dept"
        [ [| Value.Int 1; Value.Str "eng" |]; [| Value.Int 2; Value.Str "ops" |] ];
      Durable.append st "emp" (emp_row 4 2);
      Alcotest.(check int) "mutations journaled" 3 (Durable.mutations st);
      let before = emp_state st in
      let gen_before = Table.generation (Database.table (Durable.db st) "emp") in
      Durable.close st;
      let st2 = Durable.open_db ~dir cat in
      let r2 = Durable.recovery_info st2 in
      Alcotest.(check int) "all mutations replayed" 3 r2.Durable.rec_entries_replayed;
      Alcotest.(check (list (list string))) "rows survive in order"
        (List.map (Array.to_list) (List.map (Array.map Value.to_string) before))
        (List.map (Array.to_list) (List.map (Array.map Value.to_string) (emp_state st2)));
      let tb2 = Database.table (Durable.db st2) "emp" in
      Alcotest.(check int) "generation survives" gen_before (Table.generation tb2);
      (* declared indexes were rebuilt and see the appended row *)
      (match Table.find_index tb2 "dept" with
      | None -> Alcotest.fail "declared index missing after recovery"
      | Some ix ->
          Support.check_same_bag "index sees replayed append"
            [ [| Value.Int 3; Value.Str "cid"; Value.Int 2; Value.Float 300. |];
              emp_row 4 2
            ]
            (Table.index_lookup ix tb2 (Value.Int 2)));
      (* the store keeps accepting acknowledged work after recovery *)
      Durable.append st2 "emp" (emp_row 5 1);
      Alcotest.(check int) "rows after post-recovery append" 5
        (Table.row_count tb2);
      Durable.close st2)

let test_durable_rotation_prunes () =
  with_dir (fun dir ->
      let cat = Support.toy_catalog () in
      let st = Durable.open_db ~dir cat in
      Durable.load st "emp" emp_rows;
      Alcotest.(check int) "first rotation" 1 (Durable.rotate st);
      Durable.append st "emp" (emp_row 4 2);
      Alcotest.(check int) "second rotation" 2 (Durable.rotate st);
      Durable.append st "emp" (emp_row 5 2);
      Alcotest.(check int) "third rotation" 3 (Durable.rotate st);
      Alcotest.(check int) "snapshots taken" 3 (Durable.snapshots_taken st);
      Durable.close st;
      (* epochs older than the previous pair are pruned; the previous
         pair is retained as the doctored-snapshot fallback *)
      Alcotest.(check (list int)) "snapshots on disk" [ 2; 3 ] (Snapshot.list_epochs ~dir);
      let st2 = Durable.open_db ~dir cat in
      Alcotest.(check bool) "recovered from newest snapshot" true
        ((Durable.recovery_info st2).Durable.rec_snapshot_epoch = Some 3);
      Alcotest.(check int) "full state back" 5
        (Table.row_count (Database.table (Durable.db st2) "emp"));
      Durable.close st2)

let test_durable_doctored_snapshot_fallback () =
  with_dir (fun dir ->
      let cat = Support.toy_catalog () in
      let st = Durable.open_db ~dir cat in
      Durable.load st "emp" emp_rows;
      ignore (Durable.rotate st);
      Durable.append st "emp" (emp_row 4 2);
      ignore (Durable.rotate st);
      let before = emp_state st in
      Durable.close st;
      (* doctor the newest snapshot; recovery must reject it and rebuild
         the exact same state from epoch 1 plus its WAL *)
      let newest = Snapshot.snapshot_path ~dir 2 in
      write_file newest (flipped (read_file newest) (String.length (read_file newest) / 2));
      let st2 = Durable.open_db ~dir cat in
      let r = Durable.recovery_info st2 in
      Alcotest.(check bool) "fell back to epoch 1" true
        (r.Durable.rec_snapshot_epoch = Some 1);
      Alcotest.(check int) "newest snapshot rejected" 2
        (fst (List.hd r.Durable.rec_snapshots_rejected));
      Support.check_same_bag "state identical to pre-doctoring" before (emp_state st2);
      Durable.close st2)

(* --- table regressions ------------------------------------------------- *)

(* stale-index regression: an existing hash index must see appended
   rows without an explicit rebuild *)
let test_index_maintained_on_append () =
  let db = Support.toy_db () in
  let tb = Database.table db "emp" in
  let ix = Option.get (Table.find_index tb "dept") in
  Support.check_same_bag "before append"
    [ [| Value.Int 3; Value.Str "cid"; Value.Int 2; Value.Float 300. |] ]
    (Table.index_lookup ix tb (Value.Int 2));
  Table.append tb (emp_row 9 2);
  Support.check_same_bag "append is visible through the index"
    [ [| Value.Int 3; Value.Str "cid"; Value.Int 2; Value.Float 300. |]; emp_row 9 2 ]
    (Table.index_lookup ix tb (Value.Int 2));
  (* a key introduced by the append alone *)
  Table.append tb (emp_row 10 77);
  Support.check_same_bag "fresh key via append" [ emp_row 10 77 ]
    (Table.index_lookup ix tb (Value.Int 77));
  (* full reload drops indexes (they would be stale wholesale) *)
  Table.load tb emp_rows;
  Alcotest.(check bool) "load drops indexes" true (Table.find_index tb "dept" = None)

(* capacity-doubling: heavy appends stay amortized O(N) and no derived
   view ever reads past the logical row count *)
let test_append_capacity_and_views () =
  let cat = Support.toy_catalog () in
  let tb = Table.create (Option.get (Catalog.find_table cat "bag")) in
  let n = 5000 in
  for i = 0 to n - 1 do
    Table.append tb [| Value.Int (i mod 37); Value.Int i |]
  done;
  Alcotest.(check int) "row count" n (Table.row_count tb);
  Alcotest.(check int) "to_rows bounded" n (List.length (Table.to_rows tb));
  let rows, live = Table.rows_view tb in
  Alcotest.(check bool) "backing array over-allocates" true (Array.length rows >= live);
  Alcotest.(check int) "view count" n live;
  Alcotest.(check bool) "last logical row is real" true
    (rows.(live - 1).(1) = Value.Int (n - 1));
  let cols = Table.columns tb in
  Alcotest.(check int) "column height" n (Array.length cols.(0));
  Alcotest.(check int) "ndv sees only live rows" 37 (Table.distinct_count tb "x")

(* snapshot → reload → derived state: columnar cache, NDV and the
   mutation generation all cohere with the recovered rows *)
let test_derived_state_coherent_after_recovery () =
  with_dir (fun dir ->
      let cat = Support.toy_catalog () in
      let st = Durable.open_db ~dir cat in
      Durable.load st "emp" emp_rows;
      Durable.append st "emp" (emp_row 4 2);
      let tb = Database.table (Durable.db st) "emp" in
      let cols_before = Table.columns tb in
      let ndv_before = Table.distinct_count tb "dept" in
      let gen_before = Table.generation tb in
      ignore (Durable.rotate st);
      Durable.close st;
      let st2 = Durable.open_db ~dir cat in
      let tb2 = Database.table (Durable.db st2) "emp" in
      Alcotest.(check int) "generation restored" gen_before (Table.generation tb2);
      Alcotest.(check int) "ndv recomputed identically" ndv_before
        (Table.distinct_count tb2 "dept");
      let cols_after = Table.columns tb2 in
      Array.iteri
        (fun c col ->
          Alcotest.(check (list string))
            (Printf.sprintf "column %d identical" c)
            (List.map Value.to_string (Array.to_list col))
            (List.map Value.to_string (Array.to_list cols_after.(c))))
        cols_before;
      (* the restored generation keeps the WAL's continuity check happy *)
      Durable.append st2 "emp" (emp_row 6 1);
      Alcotest.(check int) "generation advances from the restored point"
        (gen_before + 1)
        (Table.generation tb2);
      Durable.close st2)

let suite =
  [ Alcotest.test_case "crc-32 check vector and chaining" `Quick test_crc_vector;
    Support.qtest prop_codec_row_roundtrip;
    Alcotest.test_case "codec edge values and typed corruption" `Quick test_codec_edge_values;
    Alcotest.test_case "wal round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal torn tail truncates" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal mid-log corruption refuses" `Quick test_wal_midlog_corrupt;
    Alcotest.test_case "wal bit flip in final record is torn" `Quick
      test_wal_bitflip_final_record;
    Alcotest.test_case "wal bad header refuses" `Quick test_wal_bad_header;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot: every byte flip rejected" `Slow
      test_snapshot_every_byte_flip_rejected;
    Alcotest.test_case "snapshot truncation and trailing garbage" `Quick
      test_snapshot_truncation_and_garbage;
    Alcotest.test_case "doctored snapshot corpus" `Quick test_snapshot_corpus;
    Alcotest.test_case "durable reopen preserves state" `Quick
      test_durable_reopen_preserves_state;
    Alcotest.test_case "durable rotation prunes old epochs" `Quick
      test_durable_rotation_prunes;
    Alcotest.test_case "doctored newest snapshot falls back" `Quick
      test_durable_doctored_snapshot_fallback;
    Alcotest.test_case "append maintains existing indexes" `Quick
      test_index_maintained_on_append;
    Alcotest.test_case "append capacity and derived views" `Quick
      test_append_capacity_and_views;
    Alcotest.test_case "derived state coheres after recovery" `Quick
      test_derived_state_coherent_after_recovery
  ]
