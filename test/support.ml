(* Shared test helpers: a small hand-built database with known contents,
   bag comparison of results, and pipeline shortcuts. *)

open Relalg

let v_int i = Value.Int i
let v_str s = Value.Str s
let v_f f = Value.Float f
let v_null = Value.Null

(* A two-table toy schema: emp(eid, name, dept, salary), dept(did, dname).
   Employee 4 has no department (dept 99 does not exist); dept 3 has no
   employees. *)
let toy_catalog () : Catalog.t =
  let open Value in
  let c n ty = Catalog.col n ty in
  let cat = Catalog.create () in
  Catalog.add_table cat
    { name = "emp";
      columns = [ c "eid" TInt; c "name" TStr; c "dept" TInt; c "salary" TFloat ];
      primary_key = [ "eid" ];
      indexes = [ [ "dept" ] ]
    };
  Catalog.add_table cat
    { name = "dept";
      columns = [ c "did" TInt; c "dname" TStr ];
      primary_key = [ "did" ];
      indexes = []
    };
  (* a keyless table for the manufactured-key paths *)
  Catalog.add_table cat
    { name = "bag"; columns = [ c "x" TInt; c "y" TInt ]; primary_key = []; indexes = [] };
  cat

let toy_db () : Storage.Database.t =
  let cat = toy_catalog () in
  let db = Storage.Database.create cat in
  Storage.Table.load
    (Storage.Database.table db "emp")
    [ [| v_int 1; v_str "ann"; v_int 1; v_f 100. |];
      [| v_int 2; v_str "bob"; v_int 1; v_f 200. |];
      [| v_int 3; v_str "cid"; v_int 2; v_f 300. |];
      [| v_int 4; v_str "dan"; v_int 99; v_f 400. |]
    ];
  Storage.Table.load
    (Storage.Database.table db "dept")
    [ [| v_int 1; v_str "eng" |]; [| v_int 2; v_str "ops" |]; [| v_int 3; v_str "hr" |] ];
  Storage.Table.load
    (Storage.Database.table db "bag")
    [ [| v_int 1; v_int 10 |]; [| v_int 1; v_int 10 |]; [| v_int 2; v_int 20 |] ];
  Storage.Database.build_declared_indexes db;
  db

(* run a logical tree against a db, no order/limit *)
let run_op (db : Storage.Database.t) (o : Algebra.op) : Value.t array list =
  let ctx = Exec.Executor.make_ctx db in
  Exec.Executor.run ctx Exec.Executor.empty_lookup o

(* bag comparison via sorted string rendering *)
let bag (rows : Value.t array list) : string list =
  List.sort compare
    (List.map
       (fun r -> String.concat "|" (Array.to_list (Array.map Value.to_string r)))
       rows)

let check_same_bag msg a b = Alcotest.(check (list string)) msg (bag a) (bag b)

(* run a SQL query end-to-end under a given optimizer config *)
let run_sql ?config (db : Storage.Database.t) (sql : string) : Value.t array list =
  let eng = Engine.create db in
  (Engine.query ?config eng sql).rows

let rows_to_strings rows =
  List.map (fun r -> Array.to_list (Array.map Value.to_string r)) rows

(* the four stages of normalization all produce the same bag *)
let check_stages_equivalent (db : Storage.Database.t) (sql : string) =
  let cat = db.Storage.Database.catalog in
  let env = Catalog.props_env cat in
  let b = Sqlfront.Binder.bind_sql cat sql in
  let st = Normalize.run (Normalize.default_options env) b.op in
  let visible = List.length b.outputs in
  let narrow rows = List.map (fun r -> Array.sub r 0 (min visible (Array.length r))) rows in
  let r0 = narrow (run_op db st.bound) in
  let r1 = narrow (run_op db st.applied) in
  let r2 = narrow (run_op db st.decorrelated) in
  let r3 = narrow (run_op db st.normalized) in
  check_same_bag "bound = applied" r0 r1;
  check_same_bag "applied = decorrelated" r1 r2;
  check_same_bag "decorrelated = normalized" r2 r3;
  st

let qtest = QCheck_alcotest.to_alcotest

(* substring search *)
let contains (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0
