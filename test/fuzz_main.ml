(* Differential fuzz sweep, run by `dune build @fuzz` (long sweep) and
   `make fuzz-smoke` (fixed seeds, bounded cases, part of `make verify`).

   Usage: fuzz_main.exe [--property-check] [--cache] [CASES [SEED...]]

   For each seed, runs CASES generated correlated-subquery queries
   through the differential checker (full optimizer vs the correlated
   oracle).  Failures print a minimized reproducer and its replay id.
   Exit status 0 iff no mismatches and no crashes.

   With --property-check, every case additionally asserts the symbolic
   property engine's inferred facts (derived keys, non-nullability,
   cardinality intervals) against the candidate's actual result bag.

   With --cache, the differential check is replaced by the
   caching-tier contract: every case runs cold and then warm with
   perturbed literals against a cache-enabled engine, each run
   bag-compared to a fresh uncached optimization of the same SQL.

   A deterministic row budget bounds each case: the correlated oracle
   executes uncorrelated nested subqueries quadratically, and a fuzzer
   must not hang on the (legitimate) expensive tail.  Budget trips
   classify as skipped, not failed. *)

let sf = 0.002

let max_rows_per_case = 5_000_000

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let property_check = List.mem "--property-check" args in
  let cache = List.mem "--cache" args in
  let args = List.filter (fun a -> a <> "--property-check" && a <> "--cache") args in
  let cases, seeds =
    match args with
    | [] -> (40, [ 1; 2; 3; 4; 5 ])
    | [ c ] -> (int_of_string c, [ 1; 2; 3; 4; 5 ])
    | c :: rest -> (int_of_string c, List.map int_of_string rest)
  in
  Printf.printf "fuzz sweep: SF %.3f, %d cases x seeds [%s]%s%s\n%!" sf cases
    (String.concat "; " (List.map string_of_int seeds))
    (if property_check then ", property cross-check on" else "")
    (if cache then ", caching-tier contract" else "");
  let db = Datagen.Tpch_gen.database ~sf () in
  let eng = Engine.create db in
  let failures = ref 0 in
  List.iter
    (fun seed ->
      let cfg =
        { (Testgen.Fuzz.default_config ~seed ~cases) with
          Testgen.Fuzz.budget = Some (Exec.Budget.make ~max_rows:max_rows_per_case ());
          property_check;
          cache;
        }
      in
      let summary =
        Testgen.Fuzz.run
          ~on_case:(fun r ->
            if Testgen.Fuzz.is_failure r.outcome then
              print_string (Testgen.Fuzz.format_case r))
          cfg eng
      in
      failures := !failures + List.length summary.failures;
      Printf.printf "seed %d: %s\n%!" seed (Testgen.Fuzz.format_summary summary))
    seeds;
  if !failures > 0 then begin
    Printf.printf "FUZZ FAILED: %d failing cases\n" !failures;
    exit 1
  end
  else print_endline "fuzz sweep passed"
