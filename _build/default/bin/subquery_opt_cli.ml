(* Command-line interface: load a TPC-H database at a scale factor and
   run SQL against it, with plan inspection.

   Examples:
     subquery_opt run --sf 0.01 "select count(*) from orders"
     subquery_opt explain --sf 0.01 --stages \
       "select c_custkey from customer where 1000 < (select sum(o_totalprice) \
        from orders where o_custkey = c_custkey)"
     subquery_opt repl --sf 0.01 --level correlated
*)

open Cmdliner

let level_conv =
  let parse = function
    | "correlated" -> Ok Optimizer.Config.correlated_only
    | "decorrelated" -> Ok Optimizer.Config.decorrelated_only
    | "full" -> Ok Optimizer.Config.full
    | s -> Error (`Msg ("unknown optimizer level: " ^ s))
  in
  let print fmtr c = Format.pp_print_string fmtr (Optimizer.Config.name_of c) in
  Arg.conv (parse, print)

let sf_arg =
  let doc = "TPC-H scale factor for the generated database." in
  Arg.(value & opt float 0.01 & info [ "sf" ] ~docv:"SF" ~doc)

let seed_arg =
  let doc = "Data generator seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let level_arg =
  let doc =
    "Optimizer level: correlated (execute subqueries as written), decorrelated \
     (flattening + outerjoin simplification), or full (all techniques)."
  in
  Arg.(value & opt level_conv Optimizer.Config.full & info [ "level" ] ~docv:"LEVEL" ~doc)

let sql_arg =
  let doc = "The SQL query." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let with_engine sf seed f =
  Printf.eprintf "loading TPC-H at SF %.3f (seed %d)...\n%!" sf seed;
  let db = Datagen.Tpch_gen.database ~seed ~sf () in
  f (Engine.create db)

let run_cmd =
  let action sf seed config sql =
    with_engine sf seed (fun eng ->
        let p = Engine.prepare ~config eng sql in
        let e = Engine.execute eng p in
        print_endline (Engine.format_result e.result);
        Printf.printf "\nelapsed: %.3fs   plan cost: %.0f   alternatives: %d\n"
          e.elapsed_s p.plan_cost p.explored)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a SQL query and print the result.")
    Term.(const action $ sf_arg $ seed_arg $ level_arg $ sql_arg)

let explain_cmd =
  let stages_arg =
    let doc = "Show every normalization stage (Figures 2/3/5 of the paper)." in
    Arg.(value & flag & info [ "stages" ] ~doc)
  in
  let action sf seed config stages sql =
    with_engine sf seed (fun eng ->
        if stages then print_string (Engine.explain_stages ~config eng sql)
        else print_string (Engine.explain ~config eng sql))
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the normalized tree and the chosen plan.")
    Term.(const action $ sf_arg $ seed_arg $ level_arg $ stages_arg $ sql_arg)

let repl_cmd =
  let action sf seed config =
    with_engine sf seed (fun eng ->
        print_endline "subquery_opt repl — terminate statements with ';', exit with \\q";
        let buf = Buffer.create 256 in
        let rec loop () =
          print_string (if Buffer.length buf = 0 then "sql> " else "  -> ");
          flush stdout;
          match input_line stdin with
          | exception End_of_file -> ()
          | line when String.trim line = "\\q" -> ()
          | line ->
              Buffer.add_string buf line;
              Buffer.add_char buf ' ';
              let s = Buffer.contents buf in
              (if String.contains line ';' then begin
                 Buffer.clear buf;
                 let sql = String.trim s in
                 let sql = String.sub sql 0 (String.index sql ';') in
                 try
                   if String.length sql >= 8 && String.sub sql 0 8 = "explain " then
                     print_string
                       (Engine.explain ~config eng
                          (String.sub sql 8 (String.length sql - 8)))
                   else print_endline (Engine.format_result (Engine.query ~config eng sql))
                 with
                 | Sqlfront.Parser.Parse_error m -> Printf.printf "parse error: %s\n" m
                 | Sqlfront.Binder.Bind_error m -> Printf.printf "bind error: %s\n" m
                 | Exec.Executor.Runtime_error m -> Printf.printf "runtime error: %s\n" m
               end);
              loop ()
        in
        loop ())
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL shell over the generated database.")
    Term.(const action $ sf_arg $ seed_arg $ level_arg)

let () =
  let info =
    Cmd.info "subquery_opt"
      ~doc:
        "A query processor reproducing 'Orthogonal Optimization of Subqueries and \
         Aggregation' (Galindo-Legaria & Joshi, SIGMOD 2001)."
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; explain_cmd; repl_cmd ]))
