bench/main.mli:
