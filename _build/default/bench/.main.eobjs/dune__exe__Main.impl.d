bench/main.ml: Analyze Array Bechamel Benchmark Datagen Engine Float Hashtbl List Measure Optimizer Printf Relalg Staged Storage String Sys Test Time Toolkit Workloads
