bench/workloads.ml: Printf
