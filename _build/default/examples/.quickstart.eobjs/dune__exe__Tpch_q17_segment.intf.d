examples/tpch_q17_segment.mli:
