examples/subquery_classes.mli:
