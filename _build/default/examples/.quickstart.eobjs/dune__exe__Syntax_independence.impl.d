examples/syntax_independence.ml: Array Datagen Engine List Optimizer Printf Relalg
