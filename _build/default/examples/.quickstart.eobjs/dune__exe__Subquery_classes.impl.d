examples/subquery_classes.ml: Catalog Datagen Engine Exec Normalize Printf Relalg Sqlfront Storage
