examples/quickstart.mli:
