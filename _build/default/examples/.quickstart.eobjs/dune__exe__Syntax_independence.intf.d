examples/syntax_independence.mli:
