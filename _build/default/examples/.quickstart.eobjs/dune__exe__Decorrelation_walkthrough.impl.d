examples/decorrelation_walkthrough.ml: Array Catalog Datagen Engine Exec List Normalize Printf Relalg Sqlfront Storage
