examples/tpch_q17_segment.ml: Datagen Engine List Optimizer Printf Relalg Unix
