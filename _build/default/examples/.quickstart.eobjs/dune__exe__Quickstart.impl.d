examples/quickstart.ml: Catalog Engine Printf Relalg Storage
